#include "serve/server.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <future>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hh"
#include "sample/sampler.hh"
#include "sim/cell_key.hh"
#include "sim/config.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"
#include "trace/trace_workload.hh"

namespace ltp {

namespace {

/** Outcome of one computed (or failed) cell, shared between the
 *  computing request and any deduped waiters. */
struct ComputedCell
{
    Metrics metrics;
    std::string error; ///< non-empty = the simulation threw
};

/** One client connection: the line pipe + its progress counters. */
struct Conn
{
    explicit Conn(int fd) : pipe(fd) {}

    LineConn pipe;
    std::atomic<std::uint64_t> total{0}; ///< run requests received
    std::atomic<std::uint64_t> done{0};  ///< results sent
    std::atomic<std::uint64_t> hits{0};  ///< of those, hit || deduped
};

JsonValue
errorFrame(std::uint64_t id, const std::string &message)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    JsonValue idv;
    idv.kind = JsonValue::Kind::Number;
    idv.num = double(id);
    idv.str = std::to_string(id);
    frame.object["id"] = idv;
    JsonValue type;
    type.kind = JsonValue::Kind::String;
    type.str = "error";
    frame.object["type"] = type;
    JsonValue msg;
    msg.kind = JsonValue::Kind::String;
    msg.str = message;
    frame.object["message"] = msg;
    return frame;
}

JsonValue
jsonStr(const std::string &s)
{
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.str = s;
    return v;
}

JsonValue
jsonU64(std::uint64_t n)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.num = double(n);
    v.str = std::to_string(n);
    return v;
}

JsonValue
jsonBool(bool b)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
objectFrame(std::uint64_t id, const std::string &type)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["id"] = jsonU64(id);
    frame.object["type"] = jsonStr(type);
    return frame;
}

/** Exact u64 out of a number field (frames carry ids and lengths as
 *  integers; reject anything else loudly). */
std::uint64_t
frameU64(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    if (it == obj.object.end() || !it->second.isNumber())
        throw std::runtime_error("frame missing numeric '" + key + "'");
    std::uint64_t out = 0;
    if (!u64FromLexeme(it->second.str, &out))
        throw std::runtime_error("frame field '" + key +
                                 "' is not an exact u64: " +
                                 it->second.str);
    return out;
}

std::string
frameStr(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    if (it == obj.object.end() || !it->second.isString())
        throw std::runtime_error("frame missing string '" + key + "'");
    return it->second.str;
}

/**
 * Reject unresolvable workload names before they reach the pool:
 * makeKernel() treats an unknown name as a user error and fatal()s
 * (exits), which is right for the CLI but must not let one bad
 * request take down the daemon and every other client with it.
 */
void
validateWorkload(const std::string &name)
{
    if (isSmtName(name)) {
        for (const std::string &member : smtMembers(name))
            validateWorkload(member);
        return;
    }
    if (isTraceName(name)) {
        // Throws std::runtime_error on a missing/corrupt trace file.
        loadTraceCached(tracePath(name));
        return;
    }
    for (const SuiteEntry &e : kernelSuite())
        if (e.name == name)
            return;
    throw std::runtime_error("unknown workload '" + name + "'");
}

} // namespace

struct ServerImpl
{
    explicit ServerImpl(const ServeOptions &o)
        : opts(o), listener(o.port),
          cache(o.useCache
                    ? std::make_unique<ResultCache>(o.cacheDir)
                    : nullptr),
          pool(o.threads)
    {
    }

    ServeOptions opts;
    Listener listener;
    std::unique_ptr<ResultCache> cache;
    ThreadPool pool;

    std::thread acceptThread;
    std::mutex connMutex;
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<std::thread> connThreads;

    // In-flight dedupe: key hex -> the future of the request computing
    // it.  An entry exists only while its computing task is running on
    // a pool thread, so a waiter (itself a pool task) always has an
    // active computer to wait on — no idle-deadlock for any pool size.
    std::mutex inflightMutex;
    std::map<std::string, std::shared_future<std::shared_ptr<ComputedCell>>>
        inflight;

    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> computed{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> deduped{0};

    std::mutex stateMutex;
    std::condition_variable stateCv;
    bool stopping = false;
    bool stopped = false;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Conn> conn);
    void handleFrame(const std::shared_ptr<Conn> &conn,
                     const std::string &line);
    void handleRun(const std::shared_ptr<Conn> &conn, std::uint64_t id,
                   const JsonValue &frame);
    void requestStop();

    void
    note(const char *fmt, ...) const
    {
        if (opts.quiet)
            return;
        va_list ap;
        va_start(ap, fmt);
        std::fprintf(stderr, "ltp serve: ");
        std::vfprintf(stderr, fmt, ap);
        std::fprintf(stderr, "\n");
        va_end(ap);
    }
};

void
ServerImpl::acceptLoop()
{
    for (;;) {
        int fd = listener.accept();
        if (fd < 0)
            return; // listener closed: shutting down
        auto conn = std::make_shared<Conn>(fd);
        std::lock_guard<std::mutex> lock(connMutex);
        conns.push_back(conn);
        connThreads.emplace_back(
            [this, conn]() { connectionLoop(conn); });
    }
}

void
ServerImpl::connectionLoop(std::shared_ptr<Conn> conn)
{
    std::string line;
    while (conn->pipe.readLine(line))
        handleFrame(conn, line);
}

void
ServerImpl::handleFrame(const std::shared_ptr<Conn> &conn,
                        const std::string &line)
{
    std::uint64_t id = 0;
    try {
        JsonValue frame = parseJson(line);
        if (!frame.isObject())
            throw std::runtime_error("frame is not an object");
        id = frameU64(frame, "id");
        std::string type = frameStr(frame, "type");
        requests.fetch_add(1, std::memory_order_relaxed);

        if (type == "run") {
            handleRun(conn, id, frame);
            return;
        }
        if (type == "ping") {
            JsonValue reply = objectFrame(id, "pong");
            reply.object["version"] =
                jsonU64(std::uint64_t(kServeProtocolVersion));
            conn->pipe.writeFrame(reply);
            return;
        }
        if (type == "stats") {
            JsonValue reply = objectFrame(id, "stats");
            reply.object["requests"] = jsonU64(requests.load());
            reply.object["computed"] = jsonU64(computed.load());
            reply.object["cacheHits"] = jsonU64(cacheHits.load());
            reply.object["deduped"] = jsonU64(deduped.load());
            reply.object["threads"] =
                jsonU64(std::uint64_t(pool.threadCount()));
            if (cache) {
                CacheStats cs = cache->stats();
                reply.object["cacheEntries"] = jsonU64(cs.entries);
                reply.object["cacheBytes"] = jsonU64(cs.bytes);
                reply.object["cacheDir"] = jsonStr(cache->dir());
            }
            conn->pipe.writeFrame(reply);
            return;
        }
        if (type == "shutdown") {
            conn->pipe.writeFrame(objectFrame(id, "ok"));
            note("shutdown requested");
            requestStop();
            return;
        }
        throw std::runtime_error("unknown request type '" + type + "'");
    } catch (const std::exception &e) {
        conn->pipe.writeFrame(errorFrame(id, e.what()));
    }
}

void
ServerImpl::handleRun(const std::shared_ptr<Conn> &conn, std::uint64_t id,
                      const JsonValue &frame)
{
    // Parse on the reader thread so malformed requests fail fast (and
    // the pool only ever sees well-formed work).
    auto cfgIt = frame.object.find("config");
    if (cfgIt == frame.object.end() || !cfgIt->second.isObject())
        throw std::runtime_error("run frame missing 'config' object");
    SimConfig cfg = configFromJson(writeJsonCompact(cfgIt->second));

    std::string workload = frameStr(frame, "workload");
    validateWorkload(workload);

    auto lenIt = frame.object.find("lengths");
    if (lenIt == frame.object.end() || !lenIt->second.isObject())
        throw std::runtime_error("run frame missing 'lengths' object");
    RunLengths lengths;
    lengths.funcWarm = frameU64(lenIt->second, "funcWarm");
    lengths.pipeWarm = frameU64(lenIt->second, "pipeWarm");
    lengths.detail = frameU64(lenIt->second, "detail");

    // Optional interval-sampling plan (protocol v2); absent = full
    // detail, exactly as v1 clients expect.
    SamplePlan sampling;
    auto spIt = frame.object.find("sampling");
    if (spIt != frame.object.end()) {
        if (!spIt->second.isObject())
            throw std::runtime_error(
                "run frame 'sampling' is not an object");
        sampling.fastForward = frameU64(spIt->second, "fastForward");
        sampling.warmup = frameU64(spIt->second, "warmup");
        sampling.detail = frameU64(spIt->second, "detail");
        sampling.samples = int(frameU64(spIt->second, "samples"));
    }

    // Clients normally send the key they derived; a raw client may
    // omit it, in which case the server derives the identical one.
    std::string key;
    auto keyIt = frame.object.find("key");
    if (keyIt != frame.object.end() && keyIt->second.isString())
        key = keyIt->second.str;
    if (key.empty())
        key = cellKeyFor(cfg, workload, lengths, &sampling).hex;

    conn->total.fetch_add(1, std::memory_order_relaxed);

    pool.submit([this, conn, id, key, cfg = std::move(cfg),
                 workload = std::move(workload), lengths, sampling]() {
        bool hit = false;
        bool was_deduped = false;
        std::shared_ptr<ComputedCell> cell;
        CellKey cellKey{key, workload};

        // Claim the key BEFORE looking at the cache: whoever wins the
        // in-flight race is the only request that may touch the cache
        // or the simulator for this key, so identical concurrent cells
        // compute exactly once (the cache store happens before the
        // claim is released, so a late request either dedupes onto
        // the running computation or hits the cache — never re-runs).
        std::promise<std::shared_ptr<ComputedCell>> mine;
        std::shared_future<std::shared_ptr<ComputedCell>> theirs;
        {
            std::lock_guard<std::mutex> lock(inflightMutex);
            auto it = inflight.find(key);
            if (it != inflight.end())
                theirs = it->second;
            else
                inflight.emplace(key, mine.get_future().share());
        }
        if (theirs.valid()) {
            // An entry exists only while its owner runs on another
            // pool thread, so this wait always has an active computer
            // to wait on — no idle-deadlock for any pool size.
            was_deduped = true;
            deduped.fetch_add(1, std::memory_order_relaxed);
            cell = theirs.get();
        } else {
            cell = std::make_shared<ComputedCell>();
            Metrics cached;
            if (cache && cache->lookup(cellKey, &cached)) {
                hit = true;
                cell->metrics = cached;
                cacheHits.fetch_add(1, std::memory_order_relaxed);
            } else {
                try {
                    cell->metrics =
                        sampling.enabled()
                            ? Sampler::runOnce(cfg, workload, sampling)
                            : Simulator::runOnce(cfg, workload,
                                                 lengths);
                    computed.fetch_add(1, std::memory_order_relaxed);
                    if (cache)
                        cache->store(cellKey, cfg, lengths,
                                     cell->metrics);
                } catch (const std::exception &e) {
                    cell->error = e.what();
                }
            }
            {
                std::lock_guard<std::mutex> lock(inflightMutex);
                inflight.erase(key);
            }
            mine.set_value(cell);
        }

        std::uint64_t d =
            conn->done.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t h =
            hit || was_deduped
                ? conn->hits.fetch_add(1, std::memory_order_relaxed) + 1
                : conn->hits.load(std::memory_order_relaxed);

        // Streamed progress: this connection's counters after each
        // completed cell (the newline framing keeps it one frame).
        // Written BEFORE the result so a client that has observed N
        // results has, by TCP ordering, already received N progress
        // pushes — the count is deterministic, not racy.
        JsonValue prog;
        prog.kind = JsonValue::Kind::Object;
        prog.object["type"] = jsonStr("progress");
        prog.object["done"] = jsonU64(d);
        prog.object["total"] =
            jsonU64(conn->total.load(std::memory_order_relaxed));
        prog.object["hits"] = jsonU64(h);
        conn->pipe.writeFrame(prog);

        if (!cell->error.empty()) {
            conn->pipe.writeFrame(errorFrame(id, cell->error));
        } else {
            JsonValue reply = objectFrame(id, "result");
            reply.object["hit"] = jsonBool(hit);
            reply.object["deduped"] = jsonBool(was_deduped);
            reply.object["metrics"] =
                parseJson(metricsToJson(cell->metrics));
            conn->pipe.writeFrame(reply);
        }
    });
}

void
ServerImpl::requestStop()
{
    std::lock_guard<std::mutex> lock(stateMutex);
    stopping = true;
    stateCv.notify_all();
}

Server::Server(const ServeOptions &opts)
    : impl_(std::make_unique<ServerImpl>(opts))
{
}

Server::~Server()
{
    stop();
}

int
Server::port() const
{
    return impl_->listener.port();
}

void
Server::start()
{
    impl_->note("listening on port %d (%d worker threads, cache %s)",
                port(), impl_->pool.threadCount(),
                impl_->cache ? impl_->cache->dir().c_str()
                             : "disabled");
    impl_->acceptThread =
        std::thread([this]() { impl_->acceptLoop(); });
}

void
Server::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(impl_->stateMutex);
    impl_->stateCv.wait(lock, [this]() { return impl_->stopping; });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(impl_->stateMutex);
        if (impl_->stopped) {
            return;
        }
        impl_->stopped = true;
        impl_->stopping = true;
        impl_->stateCv.notify_all();
    }

    // Unblock and join the accept loop first so no new connections
    // arrive while the existing ones drain.
    impl_->listener.close();
    if (impl_->acceptThread.joinable())
        impl_->acceptThread.join();

    // Unblock every connection reader stuck in recv(); in-flight pool
    // tasks still hold shared_ptrs to their Conn, so late responses
    // hit a closed socket harmlessly instead of a dangling pointer.
    std::lock_guard<std::mutex> lock(impl_->connMutex);
    for (const auto &conn : impl_->conns)
        conn->pipe.shutdown();
    for (std::thread &t : impl_->connThreads)
        if (t.joinable())
            t.join();
    // ~ThreadPool drains the queue when impl_ is destroyed.
}

} // namespace ltp
