#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <future>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hh"
#include "sample/sampler.hh"
#include "serve/worker_pool.hh"
#include "sim/cell_key.hh"
#include "sim/config.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"
#include "trace/trace_workload.hh"

namespace ltp {

namespace {

/** Outcome of one computed (or failed) cell, shared between the
 *  computing request and any deduped waiters. */
struct ComputedCell
{
    Metrics metrics;
    std::string error; ///< non-empty = the simulation threw
};

/** What one execCell() produced, and where the answer came from. */
struct ExecOutcome
{
    Metrics metrics;
    std::string error; ///< non-empty = the cell failed
    bool hit = false;  ///< local cache, peer cache, or worker cache
    bool deduped = false;
};

/** One client connection: the line pipe + its progress counters. */
struct Conn
{
    explicit Conn(int fd) : pipe(fd) {}

    LineConn pipe;
    std::atomic<std::uint64_t> total{0}; ///< run requests received
    std::atomic<std::uint64_t> done{0};  ///< results sent
    std::atomic<std::uint64_t> hits{0};  ///< of those, hit || deduped
};

JsonValue
errorFrame(std::uint64_t id, const std::string &message)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    JsonValue idv;
    idv.kind = JsonValue::Kind::Number;
    idv.num = double(id);
    idv.str = std::to_string(id);
    frame.object["id"] = idv;
    JsonValue type;
    type.kind = JsonValue::Kind::String;
    type.str = "error";
    frame.object["type"] = type;
    JsonValue msg;
    msg.kind = JsonValue::Kind::String;
    msg.str = message;
    frame.object["message"] = msg;
    return frame;
}

JsonValue
jsonStr(const std::string &s)
{
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.str = s;
    return v;
}

JsonValue
jsonU64(std::uint64_t n)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.num = double(n);
    v.str = std::to_string(n);
    return v;
}

JsonValue
jsonBool(bool b)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
}

JsonValue
objectFrame(std::uint64_t id, const std::string &type)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["id"] = jsonU64(id);
    frame.object["type"] = jsonStr(type);
    return frame;
}

/** Exact u64 out of a number field (frames carry ids and lengths as
 *  integers; reject anything else loudly). */
std::uint64_t
frameU64(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    if (it == obj.object.end() || !it->second.isNumber())
        throw std::runtime_error("frame missing numeric '" + key + "'");
    std::uint64_t out = 0;
    if (!u64FromLexeme(it->second.str, &out))
        throw std::runtime_error("frame field '" + key +
                                 "' is not an exact u64: " +
                                 it->second.str);
    return out;
}

std::string
frameStr(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    if (it == obj.object.end() || !it->second.isString())
        throw std::runtime_error("frame missing string '" + key + "'");
    return it->second.str;
}

/**
 * Reject unresolvable workload names before they reach the pool:
 * makeKernel() treats an unknown name as a user error and fatal()s
 * (exits), which is right for the CLI but must not let one bad
 * request take down the daemon and every other client with it.
 */
void
validateWorkload(const std::string &name)
{
    if (isSmtName(name)) {
        for (const std::string &member : smtMembers(name))
            validateWorkload(member);
        return;
    }
    if (isTraceName(name)) {
        // Throws std::runtime_error on a missing/corrupt trace file.
        loadTraceCached(tracePath(name));
        return;
    }
    for (const SuiteEntry &e : kernelSuite())
        if (e.name == name)
            return;
    throw std::runtime_error("unknown workload '" + name + "'");
}

/**
 * Pool size for the daemon.  In worker mode the pool's tasks mostly
 * block on remote replies, so it is oversized past the local core
 * count — queued cells must reach the WorkerPool's cost-ordered queue
 * (where LPT picks the longest first) rather than sit invisibly in
 * the FIFO task queue behind it.
 */
int
poolThreads(const ServeOptions &o, const WorkerPool *workers)
{
    if (o.threads > 0 || !workers)
        return o.threads;
    return std::max(ThreadPool::defaultThreads(),
                    2 * workers->totalCapacity());
}

} // namespace

struct ServerImpl
{
    explicit ServerImpl(const ServeOptions &o)
        : opts(o), listener(o.port),
          cache(o.useCache
                    ? std::make_unique<ResultCache>(o.cacheDir)
                    : nullptr),
          workers(o.workers.empty()
                      ? nullptr
                      : std::make_unique<WorkerPool>(
                            o.workers, ServeClientOptions{}, o.quiet)),
          pool(poolThreads(o, workers.get()))
    {
    }

    ServeOptions opts;
    Listener listener;
    std::unique_ptr<ResultCache> cache;
    std::unique_ptr<WorkerPool> workers; ///< null = compute locally
    ThreadPool pool;

    std::thread acceptThread;
    std::mutex connMutex;
    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<std::thread> connThreads;

    // In-flight dedupe: key hex -> the future of the request computing
    // it.  An entry exists only while its computing task is running on
    // a pool thread, so a waiter (itself a pool task) always has an
    // active computer to wait on — no idle-deadlock for any pool size.
    std::mutex inflightMutex;
    std::map<std::string, std::shared_future<std::shared_ptr<ComputedCell>>>
        inflight;

    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> computed{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> deduped{0};
    std::atomic<std::uint64_t> peerHits{0};

    // Cells currently executing (local compute, worker dispatch, or
    // dedupe-wait), whatever path submitted them — what a graceful
    // shutdown drains.
    std::mutex activeMutex;
    std::condition_variable activeCv;
    std::size_t activeCells = 0;

    std::mutex stateMutex;
    std::condition_variable stateCv;
    bool stopping = false;
    bool stopped = false;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Conn> conn);
    void handleFrame(const std::shared_ptr<Conn> &conn,
                     const std::string &line);
    void handleRun(const std::shared_ptr<Conn> &conn, std::uint64_t id,
                   const JsonValue &frame);
    void handleScenario(const std::shared_ptr<Conn> &conn,
                        std::uint64_t id, const JsonValue &frame);
    ExecOutcome execCell(const std::string &key, const SimConfig &cfg,
                         const std::string &workload,
                         const RunLengths &lengths,
                         const SamplePlan &sampling);
    std::size_t drainActive(int deadlineMs);
    void requestStop();

    void
    beginCell()
    {
        std::lock_guard<std::mutex> lock(activeMutex);
        activeCells += 1;
    }

    void
    endCell()
    {
        std::lock_guard<std::mutex> lock(activeMutex);
        activeCells -= 1;
        activeCv.notify_all();
    }

    void
    note(const char *fmt, ...) const
    {
        if (opts.quiet)
            return;
        va_list ap;
        va_start(ap, fmt);
        std::fprintf(stderr, "ltp serve: ");
        std::vfprintf(stderr, fmt, ap);
        std::fprintf(stderr, "\n");
        va_end(ap);
    }
};

namespace {

/** Scope guard around one executing cell (exception-safe drain
 *  accounting). */
struct ActiveGuard
{
    explicit ActiveGuard(ServerImpl &s) : srv(s) { srv.beginCell(); }
    ~ActiveGuard() { srv.endCell(); }
    ActiveGuard(const ActiveGuard &) = delete;
    ActiveGuard &operator=(const ActiveGuard &) = delete;
    ServerImpl &srv;
};

/**
 * The daemon's own exec path as an ExecBackend, so a submitted
 * scenario runs through the stock Runner (identical sharding and
 * group reduction to a local sweep) while every cell still gets the
 * full dedupe → cache → peer-lookup → worker-dispatch treatment.
 */
class DaemonBackend : public ExecBackend
{
  public:
    explicit DaemonBackend(ServerImpl &srv) : srv_(srv) {}

    std::string name() const override { return "daemon"; }

    bool wantsKey() const override { return true; }

    CellResult
    runCell(const CellKey &key, const SimConfig &cfg,
            const std::string &workload, const RunLengths &lengths,
            const SamplePlan &sampling) override
    {
        std::string hex =
            key.hex.empty()
                ? cellKeyFor(cfg, workload, lengths, &sampling).hex
                : key.hex;
        ExecOutcome out =
            srv_.execCell(hex, cfg, workload, lengths, sampling);
        if (!out.error.empty())
            throw std::runtime_error(out.error);
        CellResult r;
        r.metrics = out.metrics;
        r.cacheHit = out.hit || out.deduped;
        return r;
    }

  private:
    ServerImpl &srv_;
};

} // namespace

void
ServerImpl::acceptLoop()
{
    for (;;) {
        int fd = listener.accept();
        if (fd < 0)
            return; // listener closed: shutting down
        auto conn = std::make_shared<Conn>(fd);
        std::lock_guard<std::mutex> lock(connMutex);
        conns.push_back(conn);
        connThreads.emplace_back(
            [this, conn]() { connectionLoop(conn); });
    }
}

void
ServerImpl::connectionLoop(std::shared_ptr<Conn> conn)
{
    std::string line;
    while (conn->pipe.readLine(line))
        handleFrame(conn, line);
}

void
ServerImpl::handleFrame(const std::shared_ptr<Conn> &conn,
                        const std::string &line)
{
    std::uint64_t id = 0;
    try {
        JsonValue frame = parseJson(line);
        if (!frame.isObject())
            throw std::runtime_error("frame is not an object");
        id = frameU64(frame, "id");
        std::string type = frameStr(frame, "type");
        requests.fetch_add(1, std::memory_order_relaxed);

        if (type == "run") {
            handleRun(conn, id, frame);
            return;
        }
        if (type == "scenario") {
            // Runs to completion on this connection's reader thread:
            // a long scenario blocks only its submitter, never the
            // pool or other clients.
            handleScenario(conn, id, frame);
            return;
        }
        if (type == "lookup") {
            std::string key = frameStr(frame, "key");
            JsonValue reply = objectFrame(id, "lookup");
            Metrics m;
            bool found =
                cache && cache->lookup(CellKey{key, ""}, &m);
            reply.object["found"] = jsonBool(found);
            if (found)
                reply.object["metrics"] = parseJson(metricsToJson(m));
            conn->pipe.writeFrame(reply);
            return;
        }
        if (type == "ping") {
            JsonValue reply = objectFrame(id, "pong");
            reply.object["version"] =
                jsonU64(std::uint64_t(kServeProtocolVersion));
            conn->pipe.writeFrame(reply);
            return;
        }
        if (type == "stats") {
            JsonValue reply = objectFrame(id, "stats");
            reply.object["requests"] = jsonU64(requests.load());
            reply.object["computed"] = jsonU64(computed.load());
            reply.object["cacheHits"] = jsonU64(cacheHits.load());
            reply.object["deduped"] = jsonU64(deduped.load());
            reply.object["threads"] =
                jsonU64(std::uint64_t(pool.threadCount()));
            {
                std::lock_guard<std::mutex> alock(activeMutex);
                reply.object["activeCells"] =
                    jsonU64(std::uint64_t(activeCells));
            }
            if (workers) {
                reply.object["peerHits"] = jsonU64(peerHits.load());
                JsonValue arr;
                arr.kind = JsonValue::Kind::Array;
                for (const WorkerStats &w : workers->stats()) {
                    JsonValue ws;
                    ws.kind = JsonValue::Kind::Object;
                    ws.object["worker"] = jsonStr(w.address);
                    ws.object["capacity"] =
                        jsonU64(std::uint64_t(w.capacity));
                    ws.object["up"] = jsonBool(w.up);
                    ws.object["dispatched"] = jsonU64(w.dispatched);
                    ws.object["completed"] = jsonU64(w.completed);
                    ws.object["retried"] = jsonU64(w.retried);
                    ws.object["failed"] = jsonU64(w.failed);
                    ws.object["peerHits"] = jsonU64(w.peerHits);
                    arr.array.push_back(std::move(ws));
                }
                reply.object["workers"] = std::move(arr);
            }
            if (cache) {
                CacheStats cs = cache->stats();
                reply.object["cacheEntries"] = jsonU64(cs.entries);
                reply.object["cacheBytes"] = jsonU64(cs.bytes);
                reply.object["cacheDir"] = jsonStr(cache->dir());
            }
            conn->pipe.writeFrame(reply);
            return;
        }
        if (type == "shutdown") {
            // Drain before acknowledging: the reply's `drained` count
            // tells the operator how many in-flight cells finished
            // (instead of dying) thanks to the graceful window.
            std::size_t drained = drainActive(opts.drainTimeoutMs);
            JsonValue reply = objectFrame(id, "ok");
            reply.object["drained"] =
                jsonU64(std::uint64_t(drained));
            conn->pipe.writeFrame(reply);
            note("shutdown requested (%zu in-flight cell(s) drained)",
                 drained);
            requestStop();
            return;
        }
        throw std::runtime_error("unknown request type '" + type + "'");
    } catch (const std::exception &e) {
        conn->pipe.writeFrame(errorFrame(id, e.what()));
    }
}

void
ServerImpl::handleRun(const std::shared_ptr<Conn> &conn, std::uint64_t id,
                      const JsonValue &frame)
{
    // Parse on the reader thread so malformed requests fail fast (and
    // the pool only ever sees well-formed work).
    auto cfgIt = frame.object.find("config");
    if (cfgIt == frame.object.end() || !cfgIt->second.isObject())
        throw std::runtime_error("run frame missing 'config' object");
    SimConfig cfg = configFromJson(writeJsonCompact(cfgIt->second));

    std::string workload = frameStr(frame, "workload");
    validateWorkload(workload);

    auto lenIt = frame.object.find("lengths");
    if (lenIt == frame.object.end() || !lenIt->second.isObject())
        throw std::runtime_error("run frame missing 'lengths' object");
    RunLengths lengths;
    lengths.funcWarm = frameU64(lenIt->second, "funcWarm");
    lengths.pipeWarm = frameU64(lenIt->second, "pipeWarm");
    lengths.detail = frameU64(lenIt->second, "detail");

    // Optional interval-sampling plan (protocol v2); absent = full
    // detail, exactly as v1 clients expect.
    SamplePlan sampling;
    auto spIt = frame.object.find("sampling");
    if (spIt != frame.object.end()) {
        if (!spIt->second.isObject())
            throw std::runtime_error(
                "run frame 'sampling' is not an object");
        sampling.fastForward = frameU64(spIt->second, "fastForward");
        sampling.warmup = frameU64(spIt->second, "warmup");
        sampling.detail = frameU64(spIt->second, "detail");
        sampling.samples = int(frameU64(spIt->second, "samples"));
    }

    // Clients normally send the key they derived; a raw client may
    // omit it, in which case the server derives the identical one.
    std::string key;
    auto keyIt = frame.object.find("key");
    if (keyIt != frame.object.end() && keyIt->second.isString())
        key = keyIt->second.str;
    if (key.empty())
        key = cellKeyFor(cfg, workload, lengths, &sampling).hex;

    conn->total.fetch_add(1, std::memory_order_relaxed);

    pool.submit([this, conn, id, key, cfg = std::move(cfg),
                 workload = std::move(workload), lengths, sampling]() {
        ExecOutcome out =
            execCell(key, cfg, workload, lengths, sampling);

        std::uint64_t d =
            conn->done.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t h =
            out.hit || out.deduped
                ? conn->hits.fetch_add(1, std::memory_order_relaxed) + 1
                : conn->hits.load(std::memory_order_relaxed);

        // Streamed progress: this connection's counters after each
        // completed cell (the newline framing keeps it one frame).
        // Written BEFORE the result so a client that has observed N
        // results has, by TCP ordering, already received N progress
        // pushes — the count is deterministic, not racy.
        JsonValue prog;
        prog.kind = JsonValue::Kind::Object;
        prog.object["type"] = jsonStr("progress");
        prog.object["done"] = jsonU64(d);
        prog.object["total"] =
            jsonU64(conn->total.load(std::memory_order_relaxed));
        prog.object["hits"] = jsonU64(h);
        conn->pipe.writeFrame(prog);

        if (!out.error.empty()) {
            conn->pipe.writeFrame(errorFrame(id, out.error));
        } else {
            JsonValue reply = objectFrame(id, "result");
            reply.object["hit"] = jsonBool(out.hit);
            reply.object["deduped"] = jsonBool(out.deduped);
            reply.object["metrics"] =
                parseJson(metricsToJson(out.metrics));
            conn->pipe.writeFrame(reply);
        }
    });
}

ExecOutcome
ServerImpl::execCell(const std::string &key, const SimConfig &cfg,
                     const std::string &workload,
                     const RunLengths &lengths,
                     const SamplePlan &sampling)
{
    ActiveGuard active(*this);
    ExecOutcome out;
    std::shared_ptr<ComputedCell> cell;
    CellKey cellKey{key, workload};

    // Claim the key BEFORE looking at the cache: whoever wins the
    // in-flight race is the only request that may touch the cache,
    // the workers, or the simulator for this key, so identical
    // concurrent cells compute exactly once (the cache store happens
    // before the claim is released, so a late request either dedupes
    // onto the running computation or hits the cache — never re-runs).
    std::promise<std::shared_ptr<ComputedCell>> mine;
    std::shared_future<std::shared_ptr<ComputedCell>> theirs;
    {
        std::lock_guard<std::mutex> lock(inflightMutex);
        auto it = inflight.find(key);
        if (it != inflight.end())
            theirs = it->second;
        else
            inflight.emplace(key, mine.get_future().share());
    }
    if (theirs.valid()) {
        // An entry exists only while its owner runs on another
        // thread, so this wait always has an active computer to wait
        // on — no idle-deadlock for any pool size.
        out.deduped = true;
        deduped.fetch_add(1, std::memory_order_relaxed);
        cell = theirs.get();
    } else {
        cell = std::make_shared<ComputedCell>();
        Metrics cached;
        if (cache && cache->lookup(cellKey, &cached)) {
            out.hit = true;
            cell->metrics = cached;
            cacheHits.fetch_add(1, std::memory_order_relaxed);
        } else if (workers &&
                   workers->peerLookup(cellKey, &cached)) {
            // A peer worker already has this cell: answer from its
            // cache and replicate into the local one, so the next
            // probe for a hot cell never leaves this host.
            out.hit = true;
            cell->metrics = cached;
            cacheHits.fetch_add(1, std::memory_order_relaxed);
            peerHits.fetch_add(1, std::memory_order_relaxed);
            if (cache)
                cache->store(cellKey, cfg, lengths, cell->metrics);
        } else {
            try {
                bool remote_hit = false;
                cell->metrics =
                    workers ? workers->runCell(cellKey, cfg, workload,
                                               lengths, sampling,
                                               &remote_hit)
                    : sampling.enabled()
                        ? Sampler::runOnce(cfg, workload, sampling)
                        : Simulator::runOnce(cfg, workload, lengths);
                if (remote_hit) {
                    out.hit = true;
                    cacheHits.fetch_add(1, std::memory_order_relaxed);
                } else {
                    computed.fetch_add(1, std::memory_order_relaxed);
                }
                // Store-back: the computing worker cached its copy on
                // its own run path; this store replicates the result
                // to the frontend.
                if (cache)
                    cache->store(cellKey, cfg, lengths, cell->metrics);
            } catch (const std::exception &e) {
                cell->error = e.what();
            }
        }
        {
            std::lock_guard<std::mutex> lock(inflightMutex);
            inflight.erase(key);
        }
        mine.set_value(cell);
    }

    out.metrics = cell->metrics;
    out.error = cell->error;
    return out;
}

void
ServerImpl::handleScenario(const std::shared_ptr<Conn> &conn,
                           std::uint64_t id, const JsonValue &frame)
{
    auto scIt = frame.object.find("scenario");
    if (scIt == frame.object.end() || !scIt->second.isObject())
        throw std::runtime_error(
            "scenario frame missing 'scenario' object");
    // Compile server-side: relative trace paths resolve against the
    // daemon's --trace-dir, so the client ships scenario text, never
    // trace files.
    Scenario scenario =
        scenarioFromJson(writeJsonCompact(scIt->second), opts.traceDir);

    // Run through the stock Runner over the daemon's own exec path —
    // the grid and its group reduction are bit-identical to a local
    // sweep of the same scenario, while each cell still dedupes,
    // caches, and fans out to workers.  The Runner spawns its own
    // pool, so the daemon's task pool is never deadlocked by this
    // long-running request (which deliberately occupies only the
    // submitting connection's reader thread).
    auto backend = std::make_shared<DaemonBackend>(*this);
    int threads = pool.threadCount();
    SweepSpec spec = scenario.compile(threads, backend);

    // Streamed progress keeps the client's silence timeout fed during
    // long runs (the Runner throttles to ~4 frames/s).
    ProgressFn progress = [&conn](const Progress &p) {
        JsonValue prog;
        prog.kind = JsonValue::Kind::Object;
        prog.object["type"] = jsonStr("progress");
        prog.object["done"] = jsonU64(p.done);
        prog.object["total"] = jsonU64(p.total);
        prog.object["hits"] = jsonU64(p.hits);
        conn->pipe.writeFrame(prog);
    };
    SweepResult res = Runner(threads, backend).run(spec, progress);

    JsonValue reply = objectFrame(id, "sweep");
    reply.object["name"] = jsonStr(res.name);
    reply.object["threads"] = jsonU64(std::uint64_t(res.threads));
    reply.object["simulations"] = jsonU64(res.simulations);
    reply.object["cacheHits"] = jsonU64(res.cacheHits);
    JsonValue wall;
    wall.kind = JsonValue::Kind::Number;
    wall.num = res.wallMs;
    wall.str = jsonNum(res.wallMs);
    reply.object["wall_ms"] = wall;
    JsonValue results;
    results.kind = JsonValue::Kind::Array;
    for (const std::string &row : res.grid.rows())
        for (const std::string &series : res.grid.series(row)) {
            JsonValue cell;
            cell.kind = JsonValue::Kind::Object;
            cell.object["row"] = jsonStr(row);
            cell.object["series"] = jsonStr(series);
            cell.object["metrics"] =
                parseJson(metricsToJson(res.grid.at(row, series)));
            results.array.push_back(std::move(cell));
        }
    reply.object["results"] = std::move(results);
    conn->pipe.writeFrame(reply);
}

std::size_t
ServerImpl::drainActive(int deadlineMs)
{
    std::unique_lock<std::mutex> lock(activeMutex);
    std::size_t before = activeCells;
    if (before == 0)
        return 0;
    note("draining %zu in-flight cell(s), deadline %d ms", before,
         deadlineMs);
    activeCv.wait_for(lock, std::chrono::milliseconds(deadlineMs),
                      [this]() { return activeCells == 0; });
    return activeCells < before ? before - activeCells : 0;
}

void
ServerImpl::requestStop()
{
    std::lock_guard<std::mutex> lock(stateMutex);
    stopping = true;
    stateCv.notify_all();
}

Server::Server(const ServeOptions &opts)
    : impl_(std::make_unique<ServerImpl>(opts))
{
}

Server::~Server()
{
    stop();
}

int
Server::port() const
{
    return impl_->listener.port();
}

void
Server::start()
{
    impl_->note("listening on port %d (%d worker threads, cache %s)",
                port(), impl_->pool.threadCount(),
                impl_->cache ? impl_->cache->dir().c_str()
                             : "disabled");
    if (impl_->workers)
        impl_->note("frontend mode: %zu remote worker(s), "
                    "%d total remote slots",
                    impl_->workers->workerCount(),
                    impl_->workers->totalCapacity());
    impl_->acceptThread =
        std::thread([this]() { impl_->acceptLoop(); });
}

void
Server::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(impl_->stateMutex);
    impl_->stateCv.wait(lock, [this]() { return impl_->stopping; });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(impl_->stateMutex);
        if (impl_->stopped) {
            return;
        }
        impl_->stopped = true;
        impl_->stopping = true;
        impl_->stateCv.notify_all();
    }

    // Unblock and join the accept loop first so no new connections
    // arrive while the existing ones drain.
    impl_->listener.close();
    if (impl_->acceptThread.joinable())
        impl_->acceptThread.join();

    // Unblock every connection reader stuck in recv(); in-flight pool
    // tasks still hold shared_ptrs to their Conn, so late responses
    // hit a closed socket harmlessly instead of a dangling pointer.
    std::lock_guard<std::mutex> lock(impl_->connMutex);
    for (const auto &conn : impl_->conns)
        conn->pipe.shutdown();
    for (std::thread &t : impl_->connThreads)
        if (t.joinable())
            t.join();
    // ~ThreadPool drains the queue when impl_ is destroyed.
}

} // namespace ltp
