/**
 * @file
 * The `ltp serve` daemon: a shared simulation service answering sweep
 * cells over TCP so many clients (or repeated CI runs) share one
 * result cache and one thread pool.
 *
 * Protocol (one compact-JSON frame per line, see serve/wire.hh):
 *
 *   → {"id":N,"type":"run","key":"<64-hex>","workload":"<name>",
 *      "config":{...},"lengths":{"funcWarm":F,"pipeWarm":P,"detail":D},
 *      "sampling":{"fastForward":F,"warmup":W,"detail":D,"samples":N}}
 *      (the optional "sampling" object selects interval sampling)
 *   ← {"id":N,"type":"result","hit":B,"deduped":B,"metrics":{...}}
 *   ← {"type":"progress","done":D,"total":T,"hits":H}   (per connection)
 *   → {"id":N,"type":"ping"}       ← {"id":N,"type":"pong","version":V}
 *   → {"id":N,"type":"stats"}      ← {"id":N,"type":"stats",...}
 *   → {"id":N,"type":"shutdown"}   ← {"id":N,"type":"ok"}  (then exits)
 *   ← {"id":N,"type":"error","message":"..."}            (any failure)
 *
 * Requests are pipelined: each connection has one reader thread that
 * parses frames and submits `run` cells to the shared pool, so
 * responses can arrive out of submission order — clients match them by
 * id.  Identical cells in flight at the same moment (same CellKey hex,
 * possibly from different clients) are deduped: one computes, the rest
 * wait on its shared_future and reply with deduped=true.  Results are
 * answered from — and persisted to — the same on-disk ResultCache the
 * local CachedBackend uses, so a warm serve daemon and a warm local
 * cache are interchangeable.
 */

#ifndef LTP_SERVE_SERVER_HH
#define LTP_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hh"

namespace ltp {

class ResultCache;
class ThreadPool;
struct ServerImpl;

/** Bump when the frame schema changes incompatibly.  v2 added the
 *  optional `sampling` object to `run` frames (interval sampling);
 *  frames without it behave exactly as v1. */
inline constexpr int kServeProtocolVersion = 2;

/** `ltp serve` configuration. */
struct ServeOptions
{
    int port = kDefaultServePort; ///< 0 = ephemeral (tests read port())
    int threads = 0;         ///< pool size; <= 0 = hardware concurrency
    std::string cacheDir;    ///< "" = ResultCache::defaultDir()
    bool useCache = true;    ///< false = compute-only (still dedupes)
    bool quiet = false;      ///< suppress per-connection stderr notes
};

/** The daemon: accept loop + per-connection readers + shared pool. */
class Server
{
  public:
    /** Binds and listens immediately (so port() is valid), but serves
     *  nothing until start().  @throws std::runtime_error on bind
     *  failure. */
    explicit Server(const ServeOptions &opts);

    /** Stops and joins everything still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (resolves an ephemeral request). */
    int port() const;

    /** Spawn the accept loop; returns immediately. */
    void start();

    /** Block until a client sends `shutdown` (or stop() is called). */
    void waitForShutdown();

    /** Initiate shutdown: close the listener, unblock readers, drain
     *  the pool, join all threads.  Idempotent. */
    void stop();

  private:
    std::unique_ptr<ServerImpl> impl_;
};

} // namespace ltp

#endif // LTP_SERVE_SERVER_HH
