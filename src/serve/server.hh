/**
 * @file
 * The `ltp serve` daemon: a shared simulation service answering sweep
 * cells over TCP so many clients (or repeated CI runs) share one
 * result cache and one thread pool.
 *
 * Protocol (one compact-JSON frame per line, see serve/wire.hh):
 *
 *   → {"id":N,"type":"run","key":"<64-hex>","workload":"<name>",
 *      "config":{...},"lengths":{"funcWarm":F,"pipeWarm":P,"detail":D},
 *      "sampling":{"fastForward":F,"warmup":W,"detail":D,"samples":N}}
 *      (the optional "sampling" object selects interval sampling)
 *   ← {"id":N,"type":"result","hit":B,"deduped":B,"metrics":{...}}
 *   ← {"type":"progress","done":D,"total":T,"hits":H}   (per connection)
 *   → {"id":N,"type":"scenario","scenario":{...}}       (whole scenario)
 *   ← {"id":N,"type":"sweep","name":S,"threads":T,"simulations":N,
 *      "cacheHits":H,"wall_ms":W,"results":[{"row":R,"series":S,
 *      "metrics":{...}},...]}
 *   → {"id":N,"type":"lookup","key":"<64-hex>"}         (cache probe)
 *   ← {"id":N,"type":"lookup","found":B,"metrics":{...}} (if found)
 *   → {"id":N,"type":"ping"}       ← {"id":N,"type":"pong","version":V}
 *   → {"id":N,"type":"stats"}      ← {"id":N,"type":"stats",...}
 *   → {"id":N,"type":"shutdown"}   ← {"id":N,"type":"ok","drained":D}
 *                                     (after draining, then exits)
 *   ← {"id":N,"type":"error","message":"..."}            (any failure)
 *
 * Distributed mode: started with --worker=host:port (repeatable) the
 * daemon becomes a frontend that schedules cells onto remote worker
 * daemons through a WorkerPool (serve/worker_pool.hh) — LPT dispatch,
 * re-dispatch on worker failure, cache peer lookup via the `lookup`
 * frame, and in-process fallback when every worker is down.  The
 * `scenario` frame compiles and runs a whole scenario server-side
 * (trace paths resolved against --trace-dir), so a client sends one
 * frame per study instead of one per cell.
 *
 * Requests are pipelined: each connection has one reader thread that
 * parses frames and submits `run` cells to the shared pool, so
 * responses can arrive out of submission order — clients match them by
 * id.  Identical cells in flight at the same moment (same CellKey hex,
 * possibly from different clients) are deduped: one computes, the rest
 * wait on its shared_future and reply with deduped=true.  Results are
 * answered from — and persisted to — the same on-disk ResultCache the
 * local CachedBackend uses, so a warm serve daemon and a warm local
 * cache are interchangeable.
 */

#ifndef LTP_SERVE_SERVER_HH
#define LTP_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hh"

namespace ltp {

class ResultCache;
class ThreadPool;
struct ServerImpl;

/** Bump when the frame schema changes incompatibly.  v2 added the
 *  optional `sampling` object to `run` frames (interval sampling).
 *  v3 added `scenario` (whole-scenario submission) and `lookup`
 *  (cache peer probe) requests, the `drained` field on the shutdown
 *  reply, and the `workers` array in stats; v1/v2 clients are
 *  unaffected — every v2 frame behaves exactly as before. */
inline constexpr int kServeProtocolVersion = 3;

/** `ltp serve` configuration. */
struct ServeOptions
{
    int port = kDefaultServePort; ///< 0 = ephemeral (tests read port())
    int threads = 0;         ///< pool size; <= 0 = hardware concurrency
    std::string cacheDir;    ///< "" = ResultCache::defaultDir()
    bool useCache = true;    ///< false = compute-only (still dedupes)
    bool quiet = false;      ///< suppress per-connection stderr notes
    /** Remote worker daemons ("host:port"); non-empty turns this
     *  daemon into a frontend that dispatches cells to them. */
    std::vector<std::string> workers;
    /** Base directory for resolving relative trace paths in submitted
     *  scenarios ("" = the daemon's working directory). */
    std::string traceDir;
    /** Max wait for in-flight cells to finish on shutdown. */
    int drainTimeoutMs = 10000;
};

/** The daemon: accept loop + per-connection readers + shared pool. */
class Server
{
  public:
    /** Binds and listens immediately (so port() is valid), but serves
     *  nothing until start().  @throws std::runtime_error on bind
     *  failure. */
    explicit Server(const ServeOptions &opts);

    /** Stops and joins everything still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (resolves an ephemeral request). */
    int port() const;

    /** Spawn the accept loop; returns immediately. */
    void start();

    /** Block until a client sends `shutdown` (or stop() is called). */
    void waitForShutdown();

    /** Initiate shutdown: close the listener, unblock readers, drain
     *  the pool, join all threads.  Idempotent. */
    void stop();

  private:
    std::unique_ptr<ServerImpl> impl_;
};

} // namespace ltp

#endif // LTP_SERVE_SERVER_HH
