/**
 * @file
 * Client side of the `ltp serve` protocol: an ExecBackend that sends
 * every cell to the daemon, plus the one-shot control RPCs the CLI
 * uses (`ltp serve ping|stats|stop`).
 *
 * One TCP connection is shared by all of the Runner's pool workers:
 * runCell() frames the request with a fresh id, registers a promise,
 * and blocks on its future; a single reader thread demultiplexes the
 * (possibly out-of-order) response stream back to the waiting ids.
 * Server-streamed progress frames are counted but otherwise dropped —
 * the Runner derives its own client-side progress from completed
 * futures.
 */

#ifndef LTP_SERVE_CLIENT_HH
#define LTP_SERVE_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/wire.hh"
#include "sim/exec_backend.hh"
#include "sim/runner.hh"

namespace ltp {

/**
 * Transport robustness knobs.  Every limit exists so a hung or
 * unreachable daemon fails the sweep with an error naming the server,
 * instead of blocking a pool worker forever:
 *
 *  - connect: each attempt is bounded, and attempts are bounded;
 *  - replies: a request times out after `replyTimeoutMs` with no
 *    traffic AT ALL from the server.  Any received frame — another
 *    caller's result, a streamed progress line — resets the clock, so
 *    a busy daemon grinding through a deep queue is never mistaken
 *    for a dead one, while an accept-and-go-silent daemon is caught
 *    within one timeout.
 */
struct ServeClientOptions
{
    int connectTimeoutMs = 5000; ///< per connect attempt
    int connectAttempts = 3;     ///< bounded retry, then fail
    int connectRetryDelayMs = 200;
    int replyTimeoutMs = 300000; ///< max server silence per request
};

/** ExecBackend running every cell on an `ltp serve` daemon. */
class ServeBackend : public ExecBackend
{
  public:
    /** Connects (bounded attempts) and starts the reader thread.
     *  @throws std::runtime_error naming @p host:@p port when the
     *  daemon stays unreachable. */
    ServeBackend(const std::string &host, int port,
                 const ServeClientOptions &opts = {});

    /** Closes the connection; pending requests fail. */
    ~ServeBackend() override;

    std::string name() const override { return "serve"; }

    /** Keys are derived client-side (trace CRCs come from the
     *  client's files) and sent with each request. */
    bool wantsKey() const override { return true; }

    CellResult runCell(const CellKey &key, const SimConfig &cfg,
                       const std::string &workload,
                       const RunLengths &lengths,
                       const SamplePlan &sampling) override;

    /** Probe the daemon's result cache for @p key without computing
     *  anything (the cache peer-lookup frame).  @return true and fill
     *  @p out on a hit. */
    bool lookup(const CellKey &key, Metrics *out);

    /**
     * Whole-scenario submission: send the scenario JSON in ONE
     * `scenario` frame; the daemon compiles and runs it server-side
     * (trace paths resolve against its --trace-dir) and replies with
     * the complete grid.  Server-streamed progress frames keep the
     * silence timeout fed during long runs — see setProgressHandler.
     * @throws on transport failure or an `error` reply.
     */
    SweepResult submitScenario(const JsonValue &scenario);

    /** Send a bare `{"type":<type>}` request and return the reply
     *  frame (ping/stats/shutdown).  @throws on transport failure or
     *  an `error` reply. */
    JsonValue rpc(const std::string &type);

    /** Progress frames received from the server (observability). */
    std::uint64_t progressFrames() const;

    /** Install a callback invoked (from the reader thread) for every
     *  server-streamed progress frame: (done, total, hits). */
    void setProgressHandler(
        std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>
            fn);

  private:
    void readerLoop();
    JsonValue call(JsonValue frame);
    std::string address() const;

    ServeClientOptions opts_;
    std::string host_;
    int port_;
    std::unique_ptr<LineConn> conn_;
    std::thread reader_;

    mutable std::mutex mutex_;
    std::uint64_t nextId_ = 1;
    std::map<std::uint64_t, std::promise<JsonValue>> pending_;
    bool dead_ = false;
    std::string deadReason_;
    std::uint64_t progressFrames_ = 0;
    std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>
        progressHandler_;
    /** Lines received, ever: the liveness signal behind the per-
     *  request reply timeout. */
    std::atomic<std::uint64_t> framesSeen_{0};
};

/** Parse --server=host:port ("" / ":7461" / "host" forms allowed). */
void parseHostPort(const std::string &spec, std::string *host,
                   int *port);

} // namespace ltp

#endif // LTP_SERVE_CLIENT_HH
