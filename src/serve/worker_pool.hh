/**
 * @file
 * Worker fan-out for the serve daemon: persistent client connections to
 * N remote `ltp serve` daemons plus a cost-aware dispatcher, turning
 * one frontend daemon into a scheduler over a pool of machines.
 *
 * Dispatch is LPT (longest-processing-time) list scheduling: callers
 * block in runCell() while their cell waits in a queue ordered by
 * estimated cost (config class × detailed instructions × SMT width,
 * see cellCost); whenever a worker slot frees, the *longest* queued
 * cell is assigned to the worker with the most free capacity.  LTP
 * configs simulate ~2× slower than baseline (BENCH_simspeed.json), so
 * longest-first placement keeps the makespan near the LPT bound
 * instead of letting a late heavyweight cell serialize the tail.
 *
 * Failure model: a transport error (worker died, hung, unreachable)
 * marks the worker down and re-dispatches the cell to another worker;
 * a `serve error:` reply is the cell's own fault (unknown workload,
 * bad config) and propagates without retry.  When every worker is
 * down, runCell() computes the cell in-process so the sweep still
 * completes.  Downed workers stay down — reconnecting is the
 * operator's job (restart the frontend).
 *
 * Each worker also acts as a cache peer: peerLookup() probes the
 * up workers' result caches via the `lookup` frame, so a cell any
 * worker has ever computed is never re-simulated by the pool.
 */

#ifndef LTP_SERVE_WORKER_POOL_HH
#define LTP_SERVE_WORKER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/client.hh"

namespace ltp {

/** Snapshot of one worker's lifetime counters (`ltp serve stats`). */
struct WorkerStats
{
    std::string address; ///< host:port
    int capacity = 0;    ///< concurrent cells (the worker's pool size)
    bool up = true;
    std::uint64_t dispatched = 0; ///< cells sent to this worker
    std::uint64_t completed = 0;  ///< successful replies
    std::uint64_t retried = 0;    ///< dispatches that were re-dispatches
    std::uint64_t failed = 0; ///< transport, workload, or probe failures
    std::uint64_t peerHits = 0;   ///< cache peer-lookup hits answered
};

/**
 * Estimated relative wall cost of one cell, the LPT ordering key:
 * detailed instructions (per sample under a sampling plan), doubled
 * for LTP-enabled configs (they simulate ~2× slower), scaled by the
 * SMT thread count.  Only the ordering matters, not the unit.
 */
double cellCost(const SimConfig &cfg, const RunLengths &lengths,
                const SamplePlan &sampling);

/** Persistent connections to N worker daemons + the LPT dispatcher. */
class WorkerPool
{
  public:
    /**
     * Connect to every worker (bounded attempts each) and read its
     * capacity from a stats RPC.  @throws std::runtime_error naming
     * the first unreachable worker.
     */
    explicit WorkerPool(const std::vector<std::string> &specs,
                        const ServeClientOptions &opts = {},
                        bool quiet = false);

    std::size_t workerCount() const { return workers_.size(); }

    /** Sum of worker capacities (fixed after construction). */
    int totalCapacity() const { return totalCapacity_; }

    /** Workers not yet marked down. */
    std::size_t upCount() const;

    /**
     * Run one cell on a worker: wait for a slot (LPT order), dispatch,
     * and on transport failure mark the worker down and re-dispatch
     * elsewhere.  Falls back to an in-process simulation when every
     * worker is down.  @p remoteHit reports whether the answer came
     * from a worker's cache (or dedupe) rather than a fresh compute.
     * Thread-safe; blocking.
     * @throws std::runtime_error for workload errors (never retried).
     */
    Metrics runCell(const CellKey &key, const SimConfig &cfg,
                    const std::string &workload,
                    const RunLengths &lengths, const SamplePlan &sampling,
                    bool *remoteHit);

    /** Probe the up workers' caches for @p key (no compute anywhere).
     *  @return true and fill @p out on the first hit. */
    bool peerLookup(const CellKey &key, Metrics *out);

    std::vector<WorkerStats> stats() const;

  private:
    struct Worker
    {
        std::string address;
        std::unique_ptr<ServeBackend> client;
        int capacity = 1;
        // All mutable state below is guarded by the pool mutex.
        int inflight = 0;
        bool up = true;
        std::uint64_t dispatched = 0;
        std::uint64_t completed = 0;
        std::uint64_t retried = 0;
        std::uint64_t failed = 0;
        std::uint64_t peerHits = 0;
    };

    /** Queue position: highest cost first, FIFO within equal cost. */
    struct QueueKey
    {
        double cost;
        std::uint64_t seq;
        bool
        operator<(const QueueKey &o) const
        {
            if (cost != o.cost)
                return cost > o.cost; // longest-processing-time first
            return seq < o.seq;
        }
    };

    struct Waiter
    {
        Worker *assigned = nullptr;
    };

    /** Block until a slot is granted (LPT order) or every worker is
     *  down (returns nullptr: caller computes locally). */
    Worker *acquireSlot(double cost);
    void releaseSlot(Worker *w);
    void markDown(Worker *w, const std::string &why);
    /** Assign queued waiters to free slots, longest cell to the
     *  least-loaded worker, until one side runs out.  Lock held. */
    void tryAdmitLocked();
    std::size_t upCountLocked() const;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::map<QueueKey, Waiter *> waiters_;
    std::uint64_t nextSeq_ = 0;
    int totalCapacity_ = 0;
    bool quiet_ = false;
};

/** Parse a --workers file: one host:port per line, '#' comments and
 *  blank lines skipped.  @throws on an unreadable file. */
std::vector<std::string> loadWorkerSpecs(const std::string &path);

} // namespace ltp

#endif // LTP_SERVE_WORKER_POOL_HH
