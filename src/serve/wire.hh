/**
 * @file
 * Transport for the `ltp serve` protocol: newline-delimited compact
 * JSON frames over TCP.
 *
 * One frame per line, rendered by writeJsonCompact (whose string
 * escaping guarantees no raw newline can appear inside a frame), so
 * the stream is trivially resynchronizable and debuggable with nc(1).
 * This header wraps the POSIX socket calls in three small pieces:
 *
 *  - Listener    — bind/listen on a port (0 = ephemeral, for tests),
 *                  accept() yielding connected fds;
 *  - connectTcp  — client-side connect to host:port;
 *  - LineConn    — a buffered, bidirectional line pipe over one fd
 *                  with a write mutex so concurrent responders (pool
 *                  workers finishing out of order) interleave whole
 *                  frames, never bytes.
 *
 * The frame schema itself lives in server.cc/client.cc; see the
 * "serve wire protocol" section of README.md.
 */

#ifndef LTP_SERVE_WIRE_HH
#define LTP_SERVE_WIRE_HH

#include <mutex>
#include <string>

#include "common/json.hh"

namespace ltp {

/** Default `ltp serve` port (an unassigned registry hole). */
inline constexpr int kDefaultServePort = 7461;

/** Connect to @p host:@p port.  @p timeoutMs > 0 bounds the connect
 *  itself (non-blocking connect + poll); 0 keeps the OS default.
 *  @return the connected fd.
 *  @throws std::runtime_error naming host/port on failure/timeout. */
int connectTcp(const std::string &host, int port, int timeoutMs = 0);

/** Listening TCP socket (loopback-reachable; all interfaces). */
class Listener
{
  public:
    /** Bind + listen.  @p port 0 picks an ephemeral port (tests).
     *  @throws std::runtime_error on bind/listen failure. */
    explicit Listener(int port);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** The actually-bound port (resolves port 0). */
    int port() const { return port_; }

    /** Block for one connection.  @return the connected fd, or -1
     *  once close() has been called (the accept loop's exit signal). */
    int accept();

    /** Close the listening socket, unblocking accept(). */
    void close();

  private:
    int fd_ = -1;
    int port_ = 0;
};

/**
 * One connected socket carrying newline-delimited frames.  readLine is
 * single-consumer (one reader thread per connection); writeLine is
 * safe from any number of threads.
 */
class LineConn
{
  public:
    /** Takes ownership of @p fd. */
    explicit LineConn(int fd) : fd_(fd) {}
    ~LineConn();

    LineConn(const LineConn &) = delete;
    LineConn &operator=(const LineConn &) = delete;

    /** Read one line (without the '\n').  @return false on EOF or
     *  error — the connection is done either way. */
    bool readLine(std::string &out);

    /** Write @p line + '\n' atomically w.r.t. other writers.
     *  @return false when the peer is gone. */
    bool writeLine(const std::string &line);

    /** writeLine of a compact-rendered JSON frame. */
    bool writeFrame(const JsonValue &frame);

    /** Half-close both directions, unblocking a reader stuck in
     *  recv() (used to tear down connection threads). */
    void shutdown();

  private:
    int fd_;
    std::string buf_;        ///< bytes received past the last line
    std::mutex writeMutex_;
};

} // namespace ltp

#endif // LTP_SERVE_WIRE_HH
