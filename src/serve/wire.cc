#include "serve/wire.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/logging.hh"

namespace ltp {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/** Frames are tiny; Nagle would add 40ms hiccups to the request/
 *  response ping-pong. */
void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

namespace {

/**
 * connect() bounded by @p timeoutMs: flip the socket non-blocking,
 * start the connect, poll for writability, then read SO_ERROR for the
 * real outcome.  @return true on success; on failure @p err is set
 * (blocking mode is restored for the caller either way).
 */
bool
connectWithTimeout(int fd, const struct sockaddr *addr, socklen_t len,
                   int timeoutMs, std::string &err)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        err = std::strerror(errno);
        return false;
    }
    bool ok = false;
    if (::connect(fd, addr, len) == 0) {
        ok = true;
    } else if (errno == EINPROGRESS) {
        struct pollfd pfd = {fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc == 0) {
            err = "connect timed out after " +
                  std::to_string(timeoutMs) + " ms";
        } else if (rc < 0) {
            err = std::strerror(errno);
        } else {
            int so_err = 0;
            socklen_t so_len = sizeof(so_err);
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err, &so_len);
            if (so_err == 0)
                ok = true;
            else
                err = std::strerror(so_err);
        }
    } else {
        err = std::strerror(errno);
    }
    ::fcntl(fd, F_SETFL, flags);
    return ok;
}

} // namespace

int
connectTcp(const std::string &host, int port, int timeoutMs)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    std::string service = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0)
        throw std::runtime_error("cannot resolve " + host + ":" +
                                 service + ": " + gai_strerror(rc));

    int fd = -1;
    std::string err = "no addresses";
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = std::strerror(errno);
            continue;
        }
        bool connected =
            timeoutMs > 0
                ? connectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                     timeoutMs, err)
                : ::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0;
        if (connected)
            break;
        if (timeoutMs <= 0)
            err = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 service + ": " + err +
                                 " (is `ltp serve` running?)");
    setNoDelay(fd);
    return fd;
}

Listener::Listener(int port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throwErrno("socket");
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int e = errno;
        ::close(fd_);
        fd_ = -1;
        errno = e;
        throwErrno("bind port " + std::to_string(port));
    }
    if (::listen(fd_, 64) != 0) {
        int e = errno;
        ::close(fd_);
        fd_ = -1;
        errno = e;
        throwErrno("listen");
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
}

Listener::~Listener()
{
    close();
}

int
Listener::accept()
{
    if (fd_ < 0)
        return -1;
    int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0)
        setNoDelay(conn);
    return conn; // -1 after close() (EBADF/EINVAL) ends the loop
}

void
Listener::close()
{
    if (fd_ >= 0) {
        // shutdown() first: close() alone does not unblock a thread
        // already parked in accept() on Linux.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

LineConn::~LineConn()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
LineConn::readLine(std::string &out)
{
    for (;;) {
        auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
LineConn::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        // MSG_NOSIGNAL: a vanished peer must surface as a false
        // return, not a process-killing SIGPIPE.
        ssize_t n = ::send(fd_, framed.data() + sent,
                           framed.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineConn::writeFrame(const JsonValue &frame)
{
    return writeLine(writeJsonCompact(frame));
}

void
LineConn::shutdown()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

} // namespace ltp
