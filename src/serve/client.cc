#include "serve/client.hh"

#include <future>
#include <stdexcept>
#include <utility>

#include "sim/report.hh"

namespace ltp {

namespace {

JsonValue
jsonStr(const std::string &s)
{
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.str = s;
    return v;
}

JsonValue
jsonU64(std::uint64_t n)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.num = double(n);
    v.str = std::to_string(n);
    return v;
}

} // namespace

ServeBackend::ServeBackend(const std::string &host, int port)
    : conn_(std::make_unique<LineConn>(connectTcp(host, port)))
{
    reader_ = std::thread([this]() { readerLoop(); });
}

ServeBackend::~ServeBackend()
{
    conn_->shutdown();
    if (reader_.joinable())
        reader_.join();
}

void
ServeBackend::readerLoop()
{
    std::string line;
    while (conn_->readLine(line)) {
        JsonValue frame;
        try {
            frame = parseJson(line);
        } catch (const std::exception &) {
            continue; // tolerate garbage between valid frames
        }
        if (!frame.isObject())
            continue;

        auto idIt = frame.object.find("id");
        if (idIt == frame.object.end()) {
            // Unaddressed frames are server-push events; today that
            // is only the progress stream.
            std::lock_guard<std::mutex> lock(mutex_);
            progressFrames_ += 1;
            continue;
        }
        std::uint64_t id = 0;
        if (!idIt->second.isNumber() ||
            !u64FromLexeme(idIt->second.str, &id))
            continue;

        std::promise<JsonValue> promise;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = pending_.find(id);
            if (it == pending_.end())
                continue; // response to a caller that gave up
            promise = std::move(it->second);
            pending_.erase(it);
        }
        promise.set_value(std::move(frame));
    }

    // Connection gone: every waiter gets the reason instead of a hang.
    std::lock_guard<std::mutex> lock(mutex_);
    dead_ = true;
    if (deadReason_.empty())
        deadReason_ = "serve connection closed by peer";
    for (auto &[id, promise] : pending_)
        promise.set_exception(std::make_exception_ptr(
            std::runtime_error(deadReason_)));
    pending_.clear();
}

JsonValue
ServeBackend::call(JsonValue frame)
{
    std::uint64_t id = 0;
    std::future<JsonValue> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (dead_)
            throw std::runtime_error(deadReason_);
        id = nextId_++;
        future = pending_[id].get_future();
    }
    frame.object["id"] = jsonU64(id);

    if (!conn_->writeFrame(frame)) {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.erase(id);
        throw std::runtime_error("serve connection lost mid-request");
    }

    JsonValue reply = future.get();
    auto typeIt = reply.object.find("type");
    if (typeIt != reply.object.end() && typeIt->second.isString() &&
        typeIt->second.str == "error") {
        auto msgIt = reply.object.find("message");
        throw std::runtime_error(
            "serve error: " + (msgIt != reply.object.end()
                                   ? msgIt->second.str
                                   : std::string("(no message)")));
    }
    return reply;
}

CellResult
ServeBackend::runCell(const CellKey &key, const SimConfig &cfg,
                      const std::string &workload,
                      const RunLengths &lengths,
                      const SamplePlan &sampling)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["type"] = jsonStr("run");
    if (!key.empty())
        frame.object["key"] = jsonStr(key.hex);
    frame.object["workload"] = jsonStr(workload);
    frame.object["config"] = parseJson(configToJson(cfg));
    JsonValue len;
    len.kind = JsonValue::Kind::Object;
    len.object["funcWarm"] = jsonU64(lengths.funcWarm);
    len.object["pipeWarm"] = jsonU64(lengths.pipeWarm);
    len.object["detail"] = jsonU64(lengths.detail);
    frame.object["lengths"] = len;
    // Omitted when disabled: non-sampled clients stay wire-compatible
    // with protocol-v1 daemons.
    if (sampling.enabled()) {
        JsonValue sp;
        sp.kind = JsonValue::Kind::Object;
        sp.object["fastForward"] = jsonU64(sampling.fastForward);
        sp.object["warmup"] = jsonU64(sampling.warmup);
        sp.object["detail"] = jsonU64(sampling.detail);
        sp.object["samples"] = jsonU64(std::uint64_t(sampling.samples));
        frame.object["sampling"] = sp;
    }

    JsonValue reply = call(std::move(frame));

    auto metricsIt = reply.object.find("metrics");
    if (metricsIt == reply.object.end() ||
        !metricsIt->second.isObject())
        throw std::runtime_error("serve result frame missing metrics");

    CellResult out;
    out.metrics =
        metricsFromJson(writeJsonCompact(metricsIt->second));
    auto flag = [&reply](const char *name) {
        auto it = reply.object.find(name);
        return it != reply.object.end() && it->second.isBool() &&
               it->second.boolean;
    };
    // A dedupe is a hit from the sweep's point of view: the cell was
    // not re-simulated on this run's behalf.
    out.cacheHit = flag("hit") || flag("deduped");
    return out;
}

JsonValue
ServeBackend::rpc(const std::string &type)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["type"] = jsonStr(type);
    return call(std::move(frame));
}

std::uint64_t
ServeBackend::progressFrames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return progressFrames_;
}

void
parseHostPort(const std::string &spec, std::string *host, int *port)
{
    // Defaults (loopback, the ServeOptions port) survive empty parts:
    // "", "host", ":7500", and "host:7500" are all valid.
    auto colon = spec.rfind(':');
    std::string h = colon == std::string::npos ? spec
                                               : spec.substr(0, colon);
    std::string p =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (!h.empty())
        *host = h;
    if (!p.empty())
        *port = std::stoi(p);
}

} // namespace ltp
