#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/report.hh"

namespace ltp {

namespace {

JsonValue
jsonStr(const std::string &s)
{
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.str = s;
    return v;
}

JsonValue
jsonU64(std::uint64_t n)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.num = double(n);
    v.str = std::to_string(n);
    return v;
}

} // namespace

ServeBackend::ServeBackend(const std::string &host, int port,
                           const ServeClientOptions &opts)
    : opts_(opts), host_(host), port_(port)
{
    // Bounded connect: each attempt is individually timed out, and a
    // daemon that stays unreachable fails the construction with its
    // address — never an indefinite block inside connect(2).
    int attempts = std::max(1, opts_.connectAttempts);
    std::string last_err;
    for (int i = 0; i < attempts && !conn_; ++i) {
        if (i > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                opts_.connectRetryDelayMs));
        try {
            conn_ = std::make_unique<LineConn>(
                connectTcp(host, port, opts_.connectTimeoutMs));
        } catch (const std::exception &e) {
            last_err = e.what();
        }
    }
    if (!conn_)
        throw std::runtime_error(
            last_err + " [after " + std::to_string(attempts) +
            " attempt(s) to " + address() + "]");
    reader_ = std::thread([this]() { readerLoop(); });
}

std::string
ServeBackend::address() const
{
    return host_ + ":" + std::to_string(port_);
}

ServeBackend::~ServeBackend()
{
    conn_->shutdown();
    if (reader_.joinable())
        reader_.join();
}

void
ServeBackend::readerLoop()
{
    std::string line;
    while (conn_->readLine(line)) {
        framesSeen_.fetch_add(1, std::memory_order_relaxed);
        JsonValue frame;
        try {
            frame = parseJson(line);
        } catch (const std::exception &) {
            continue; // tolerate garbage between valid frames
        }
        if (!frame.isObject())
            continue;

        auto idIt = frame.object.find("id");
        if (idIt == frame.object.end()) {
            // Unaddressed frames are server-push events; today that
            // is only the progress stream.
            std::function<void(std::uint64_t, std::uint64_t,
                               std::uint64_t)>
                handler;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                progressFrames_ += 1;
                handler = progressHandler_;
            }
            if (handler) {
                auto u64 = [&frame](const char *key) -> std::uint64_t {
                    auto it = frame.object.find(key);
                    std::uint64_t out = 0;
                    if (it != frame.object.end() &&
                        it->second.isNumber())
                        u64FromLexeme(it->second.str, &out);
                    return out;
                };
                handler(u64("done"), u64("total"), u64("hits"));
            }
            continue;
        }
        std::uint64_t id = 0;
        if (!idIt->second.isNumber() ||
            !u64FromLexeme(idIt->second.str, &id))
            continue;

        std::promise<JsonValue> promise;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = pending_.find(id);
            if (it == pending_.end())
                continue; // response to a caller that gave up
            promise = std::move(it->second);
            pending_.erase(it);
        }
        promise.set_value(std::move(frame));
    }

    // Connection gone: every waiter gets the reason instead of a hang.
    std::lock_guard<std::mutex> lock(mutex_);
    dead_ = true;
    if (deadReason_.empty())
        deadReason_ = "serve connection closed by peer";
    for (auto &[id, promise] : pending_)
        promise.set_exception(std::make_exception_ptr(
            std::runtime_error(deadReason_)));
    pending_.clear();
}

JsonValue
ServeBackend::call(JsonValue frame)
{
    std::uint64_t id = 0;
    std::future<JsonValue> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (dead_)
            throw std::runtime_error(deadReason_);
        id = nextId_++;
        future = pending_[id].get_future();
    }
    frame.object["id"] = jsonU64(id);

    if (!conn_->writeFrame(frame)) {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.erase(id);
        throw std::runtime_error("serve connection to " + address() +
                                 " lost mid-request");
    }

    // Wait with a liveness deadline: any frame from the server (a
    // result for another worker, streamed progress) proves it is
    // alive and resets the clock; `replyTimeoutMs` of total silence
    // means a hung daemon, and the request fails instead of wedging
    // the sweep.
    using Clock = std::chrono::steady_clock;
    auto deadline =
        Clock::now() + std::chrono::milliseconds(opts_.replyTimeoutMs);
    std::uint64_t seen = framesSeen_.load(std::memory_order_relaxed);
    for (;;) {
        if (future.wait_for(std::chrono::milliseconds(50)) ==
            std::future_status::ready)
            break;
        std::uint64_t now_seen =
            framesSeen_.load(std::memory_order_relaxed);
        if (now_seen != seen) {
            seen = now_seen;
            deadline = Clock::now() +
                       std::chrono::milliseconds(opts_.replyTimeoutMs);
        } else if (Clock::now() >= deadline) {
            bool still_pending = false;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                still_pending = pending_.erase(id) > 0;
            }
            // Lost the race: the reader fulfilled the promise while
            // we were deciding to give up — take the reply after all.
            if (!still_pending &&
                future.wait_for(std::chrono::milliseconds(0)) ==
                    std::future_status::ready)
                break;
            throw std::runtime_error(
                "no response from serve daemon at " + address() +
                " after " + std::to_string(opts_.replyTimeoutMs) +
                " ms of silence (hung daemon?)");
        }
    }

    JsonValue reply = future.get();
    auto typeIt = reply.object.find("type");
    if (typeIt != reply.object.end() && typeIt->second.isString() &&
        typeIt->second.str == "error") {
        auto msgIt = reply.object.find("message");
        throw std::runtime_error(
            "serve error: " + (msgIt != reply.object.end()
                                   ? msgIt->second.str
                                   : std::string("(no message)")));
    }
    return reply;
}

CellResult
ServeBackend::runCell(const CellKey &key, const SimConfig &cfg,
                      const std::string &workload,
                      const RunLengths &lengths,
                      const SamplePlan &sampling)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["type"] = jsonStr("run");
    if (!key.empty())
        frame.object["key"] = jsonStr(key.hex);
    frame.object["workload"] = jsonStr(workload);
    frame.object["config"] = parseJson(configToJson(cfg));
    JsonValue len;
    len.kind = JsonValue::Kind::Object;
    len.object["funcWarm"] = jsonU64(lengths.funcWarm);
    len.object["pipeWarm"] = jsonU64(lengths.pipeWarm);
    len.object["detail"] = jsonU64(lengths.detail);
    frame.object["lengths"] = len;
    // Omitted when disabled: non-sampled clients stay wire-compatible
    // with protocol-v1 daemons.
    if (sampling.enabled()) {
        JsonValue sp;
        sp.kind = JsonValue::Kind::Object;
        sp.object["fastForward"] = jsonU64(sampling.fastForward);
        sp.object["warmup"] = jsonU64(sampling.warmup);
        sp.object["detail"] = jsonU64(sampling.detail);
        sp.object["samples"] = jsonU64(std::uint64_t(sampling.samples));
        frame.object["sampling"] = sp;
    }

    JsonValue reply = call(std::move(frame));

    auto metricsIt = reply.object.find("metrics");
    if (metricsIt == reply.object.end() ||
        !metricsIt->second.isObject())
        throw std::runtime_error("serve result frame missing metrics");

    CellResult out;
    out.metrics =
        metricsFromJson(writeJsonCompact(metricsIt->second));
    auto flag = [&reply](const char *name) {
        auto it = reply.object.find(name);
        return it != reply.object.end() && it->second.isBool() &&
               it->second.boolean;
    };
    // A dedupe is a hit from the sweep's point of view: the cell was
    // not re-simulated on this run's behalf.
    out.cacheHit = flag("hit") || flag("deduped");
    return out;
}

bool
ServeBackend::lookup(const CellKey &key, Metrics *out)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["type"] = jsonStr("lookup");
    frame.object["key"] = jsonStr(key.hex);

    JsonValue reply = call(std::move(frame));
    auto foundIt = reply.object.find("found");
    if (foundIt == reply.object.end() || !foundIt->second.isBool())
        throw std::runtime_error("serve lookup reply missing 'found'");
    if (!foundIt->second.boolean)
        return false;
    auto metricsIt = reply.object.find("metrics");
    if (metricsIt == reply.object.end() ||
        !metricsIt->second.isObject())
        throw std::runtime_error("serve lookup hit missing metrics");
    *out = metricsFromJson(writeJsonCompact(metricsIt->second));
    return true;
}

SweepResult
ServeBackend::submitScenario(const JsonValue &scenario)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["type"] = jsonStr("scenario");
    frame.object["scenario"] = scenario;

    JsonValue reply = call(std::move(frame));

    auto field = [&reply](const char *key) -> const JsonValue & {
        auto it = reply.object.find(key);
        if (it == reply.object.end())
            throw std::runtime_error(
                std::string("serve sweep reply missing '") + key + "'");
        return it->second;
    };
    auto u64 = [&field](const char *key) {
        const JsonValue &v = field(key);
        std::uint64_t out = 0;
        if (!v.isNumber() || !u64FromLexeme(v.str, &out))
            throw std::runtime_error(
                std::string("serve sweep reply field '") + key +
                "' is not a u64");
        return out;
    };

    SweepResult out;
    out.name = field("name").str;
    out.backend = "serve";
    out.threads = int(u64("threads"));
    out.simulations = std::size_t(u64("simulations"));
    out.cacheHits = std::size_t(u64("cacheHits"));
    const JsonValue &wall = field("wall_ms");
    if (wall.isNumber())
        out.wallMs = wall.num;

    const JsonValue &results = field("results");
    if (!results.isArray())
        throw std::runtime_error(
            "serve sweep reply 'results' is not an array");
    for (const JsonValue &cell : results.array) {
        if (!cell.isObject())
            throw std::runtime_error(
                "serve sweep reply has a non-object result cell");
        auto at = [&cell](const char *key) -> const JsonValue & {
            auto it = cell.object.find(key);
            if (it == cell.object.end())
                throw std::runtime_error(
                    std::string("serve sweep result cell missing '") +
                    key + "'");
            return it->second;
        };
        out.grid.put(at("row").str, at("series").str,
                     metricsFromJson(writeJsonCompact(at("metrics"))));
    }
    return out;
}

JsonValue
ServeBackend::rpc(const std::string &type)
{
    JsonValue frame;
    frame.kind = JsonValue::Kind::Object;
    frame.object["type"] = jsonStr(type);
    return call(std::move(frame));
}

std::uint64_t
ServeBackend::progressFrames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return progressFrames_;
}

void
ServeBackend::setProgressHandler(
    std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    progressHandler_ = std::move(fn);
}

void
parseHostPort(const std::string &spec, std::string *host, int *port)
{
    // Defaults (loopback, the ServeOptions port) survive empty parts:
    // "", "host", ":7500", and "host:7500" are all valid.
    auto colon = spec.rfind(':');
    std::string h = colon == std::string::npos ? spec
                                               : spec.substr(0, colon);
    std::string p =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (!h.empty())
        *host = h;
    if (!p.empty())
        *port = std::stoi(p);
}

} // namespace ltp
