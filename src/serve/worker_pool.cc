#include "serve/worker_pool.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "sample/sampler.hh"

namespace ltp {

double
cellCost(const SimConfig &cfg, const RunLengths &lengths,
         const SamplePlan &sampling)
{
    double insts =
        sampling.enabled()
            ? double(sampling.samples) *
                  double(sampling.warmup + sampling.detail)
            : double(lengths.pipeWarm + lengths.detail);
    double ltp = cfg.core.ltp.mode != LtpMode::Off ? 2.0 : 1.0;
    return insts * ltp * double(std::max(1, cfg.core.numThreads));
}

WorkerPool::WorkerPool(const std::vector<std::string> &specs,
                       const ServeClientOptions &opts, bool quiet)
    : quiet_(quiet)
{
    if (specs.empty())
        throw std::runtime_error(
            "worker pool needs at least one --worker=host:port");
    for (const std::string &spec : specs) {
        std::string host = "127.0.0.1";
        int port = kDefaultServePort;
        auto w = std::make_unique<Worker>();
        try {
            parseHostPort(spec, &host, &port);
            w->address = host + ":" + std::to_string(port);
            w->client = std::make_unique<ServeBackend>(host, port, opts);
            // The worker's pool size is its concurrency: dispatching
            // more cells than that would just queue remotely, hidden
            // from the LPT dispatcher.
            JsonValue st = w->client->rpc("stats");
            auto it = st.object.find("threads");
            if (it != st.object.end() && it->second.isNumber())
                w->capacity = std::max(1, int(it->second.num));
        } catch (const std::exception &e) {
            throw std::runtime_error("worker " +
                                     (w->address.empty() ? spec
                                                         : w->address) +
                                     ": " + e.what());
        }
        totalCapacity_ += w->capacity;
        workers_.push_back(std::move(w));
    }
}

std::size_t
WorkerPool::upCountLocked() const
{
    std::size_t n = 0;
    for (const auto &w : workers_)
        n += w->up ? 1 : 0;
    return n;
}

std::size_t
WorkerPool::upCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return upCountLocked();
}

void
WorkerPool::tryAdmitLocked()
{
    while (!waiters_.empty()) {
        Worker *best = nullptr;
        int best_free = 0;
        for (const auto &w : workers_) {
            if (!w->up)
                continue;
            int free = w->capacity - w->inflight;
            if (free > best_free) {
                best_free = free;
                best = w.get();
            }
        }
        if (!best)
            return; // no free slot anywhere (or no worker up)
        auto it = waiters_.begin(); // the longest queued cell
        it->second->assigned = best;
        best->inflight += 1;
        waiters_.erase(it);
        cv_.notify_all();
    }
}

WorkerPool::Worker *
WorkerPool::acquireSlot(double cost)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Waiter me;
    QueueKey qk{cost, nextSeq_++};
    waiters_.emplace(qk, &me);
    tryAdmitLocked();
    cv_.wait(lock, [&]() {
        return me.assigned != nullptr || upCountLocked() == 0;
    });
    if (!me.assigned)
        waiters_.erase(qk); // every worker died while we queued
    return me.assigned;
}

void
WorkerPool::releaseSlot(Worker *w)
{
    std::lock_guard<std::mutex> lock(mutex_);
    w->inflight -= 1;
    tryAdmitLocked();
}

void
WorkerPool::markDown(Worker *w, const std::string &why)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!w->up)
        return;
    w->up = false;
    if (!quiet_)
        std::fprintf(stderr, "ltp serve: worker %s marked down (%s)\n",
                     w->address.c_str(), why.c_str());
    // Waiters re-check: with no worker up they fall back to local
    // compute instead of queueing forever.
    cv_.notify_all();
}

Metrics
WorkerPool::runCell(const CellKey &key, const SimConfig &cfg,
                    const std::string &workload,
                    const RunLengths &lengths, const SamplePlan &sampling,
                    bool *remoteHit)
{
    double cost = cellCost(cfg, lengths, sampling);
    int attempt = 0;
    for (;;) {
        Worker *w = acquireSlot(cost);
        if (!w) {
            // Every worker is down: compute in-process so the sweep
            // still completes (bit-identically — the simulation is a
            // pure function of its inputs wherever it runs).
            *remoteHit = false;
            return sampling.enabled()
                       ? Sampler::runOnce(cfg, workload, sampling)
                       : Simulator::runOnce(cfg, workload, lengths);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            w->dispatched += 1;
            if (attempt > 0)
                w->retried += 1;
        }
        try {
            CellResult r =
                w->client->runCell(key, cfg, workload, lengths, sampling);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                w->completed += 1;
            }
            releaseSlot(w);
            *remoteHit = r.cacheHit;
            return r.metrics;
        } catch (const std::exception &e) {
            std::string msg = e.what();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                w->failed += 1;
            }
            releaseSlot(w);
            // A `serve error:` reply means the worker answered: the
            // cell itself is bad (unknown workload, invalid config)
            // and would fail identically anywhere — propagate.
            if (msg.rfind("serve error:", 0) == 0)
                throw;
            // Transport failure: the worker is gone or hung.  Mark it
            // down and re-dispatch this cell to whoever is left.
            markDown(w, msg);
            attempt += 1;
        }
    }
}

bool
WorkerPool::peerLookup(const CellKey &key, Metrics *out)
{
    std::vector<Worker *> ups;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &w : workers_)
            if (w->up)
                ups.push_back(w.get());
    }
    for (Worker *w : ups) {
        try {
            if (w->client->lookup(key, out)) {
                std::lock_guard<std::mutex> lock(mutex_);
                w->peerHits += 1;
                return true;
            }
        } catch (const std::exception &e) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                w->failed += 1;
            }
            markDown(w, e.what());
        }
    }
    return false;
}

std::vector<WorkerStats>
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<WorkerStats> out;
    out.reserve(workers_.size());
    for (const auto &w : workers_) {
        WorkerStats s;
        s.address = w->address;
        s.capacity = w->capacity;
        s.up = w->up;
        s.dispatched = w->dispatched;
        s.completed = w->completed;
        s.retried = w->retried;
        s.failed = w->failed;
        s.peerHits = w->peerHits;
        out.push_back(s);
    }
    return out;
}

std::vector<std::string>
loadWorkerSpecs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open workers file '" + path +
                                 "'");
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        auto last = line.find_last_not_of(" \t\r");
        out.push_back(line.substr(first, last - first + 1));
    }
    if (out.empty())
        throw std::runtime_error("workers file '" + path +
                                 "' names no workers");
    return out;
}

} // namespace ltp
