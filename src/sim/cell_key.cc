#include "sim/cell_key.hh"

#include "common/binio.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/sha256.hh"
#include "sim/metrics.hh"
#include "trace/trace_workload.hh"

namespace ltp {

std::string
canonicalJson(const std::string &text)
{
    return writeJsonCompact(parseJson(text));
}

std::string
workloadIdentity(const std::string &name)
{
    if (isSmtName(name)) {
        // Per-thread decomposition: each member contributes its own
        // content identity, order preserved (tid assignment matters).
        std::string out = "smt[";
        bool first = true;
        for (const std::string &member : smtMembers(name)) {
            if (!first)
                out += "+";
            first = false;
            out += workloadIdentity(member);
        }
        return out + "]";
    }
    if (isTraceName(name)) {
        // Identity by content, not by path: the CRC-32 stored in the
        // `.lttr` footer covers header + records, so two files with
        // the same recording key identically wherever they live.
        // (The footer itself must be excluded from any whole-file
        // checksum: crc(data || crc(data)) is the same residue
        // constant for EVERY valid file, which would alias all
        // traces.)  TraceReader already verified footer == content
        // CRC, so reading it back is both exact and free.
        std::string path = tracePath(name);
        std::shared_ptr<const TraceReader> trace = loadTraceCached(path);
        const std::string &bytes = trace->bytes();
        std::uint32_t content_crc =
            ByteReader(bytes, bytes.size() - 4).u32();
        return strprintf("trace/%s@crc32:%08x",
                         trace->info().kernel.c_str(), content_crc);
    }
    return "kernel/" + name;
}

CellKey
cellKeyFor(const SimConfig &cfg, const std::string &workload,
           const RunLengths &lengths, const SamplePlan *sampling)
{
    CellKey key;
    key.workload = workloadIdentity(workload);

    Sha256 h;
    h.update(strprintf("ltp-cell-v%d\n", kCellKeyVersion));
    h.update("config: " + canonicalJson(configToJson(cfg)) + "\n");
    h.update("workload: " + key.workload + "\n");
    h.update(strprintf("staging: %llu/%llu/%llu\n",
                       static_cast<unsigned long long>(lengths.funcWarm),
                       static_cast<unsigned long long>(lengths.pipeWarm),
                       static_cast<unsigned long long>(lengths.detail)));
    h.update(strprintf("metricsSchema: %d\n", kMetricsSchemaVersion));
    // Appended only when enabled: full-detail keys are byte-identical
    // to the pre-sampling derivation, so existing caches stay valid.
    if (sampling && sampling->enabled())
        h.update("sampling: " + sampling->toString() + "\n");
    key.hex = h.hex();
    return key;
}

} // namespace ltp
