#include "sim/report.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace ltp {

namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/** Shortest representation that parses back to the identical double. */
std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

/** Flat key → JSON-fragment map keeping insertion order. */
class JsonObject
{
  public:
    void
    field(const std::string &key, const std::string &fragment)
    {
        fields_.emplace_back(key, fragment);
    }

    void str(const std::string &k, const std::string &v)
    {
        field(k, jsonStr(v));
    }
    void num(const std::string &k, double v) { field(k, jsonNum(v)); }
    void
    u64(const std::string &k, std::uint64_t v)
    {
        field(k, std::to_string(v));
    }

    std::string
    render(int indent) const
    {
        std::string pad(static_cast<std::size_t>(indent), ' ');
        std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
        std::string out = "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            out += inner + jsonStr(fields_[i].first) + ": " +
                   fields_[i].second;
            if (i + 1 < fields_.size())
                out += ",";
            out += "\n";
        }
        out += pad + "}";
        return out;
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

JsonObject
metricsObject(const Metrics &m, int indent)
{
    JsonObject o;
    o.str("config", m.config);
    o.str("workload", m.workload);
    o.u64("insts", m.insts);
    o.u64("cycles", m.cycles);
    o.num("ipc", m.ipc);
    o.num("cpi", m.cpi);
    o.num("avgOutstanding", m.avgOutstanding);
    o.num("avgLoadLatency", m.avgLoadLatency);
    o.u64("dramReads", m.dramReads);
    o.num("iqOcc", m.iqOcc);
    o.num("robOcc", m.robOcc);
    o.num("lqOcc", m.lqOcc);
    o.num("sqOcc", m.sqOcc);
    o.num("rfOcc", m.rfOcc);
    o.num("ltpOcc", m.ltpOcc);
    o.num("ltpRegsOcc", m.ltpRegsOcc);
    o.num("ltpLoadsOcc", m.ltpLoadsOcc);
    o.num("ltpStoresOcc", m.ltpStoresOcc);
    o.num("ltpEnabledFrac", m.ltpEnabledFrac);
    o.num("parkedFrac", m.parkedFrac);
    o.u64("parked", m.parked);
    o.u64("unparked", m.unparked);
    o.u64("forcedUnparks", m.forcedUnparks);
    o.u64("pressureUnparks", m.pressureUnparks);
    o.num("llpredAccuracy", m.llpredAccuracy);
    o.num("bpAccuracy", m.bpAccuracy);

    JsonObject energy;
    energy.num("iq", m.energy.iq);
    energy.num("rf", m.energy.rf);
    energy.num("ltp", m.energy.ltp);
    o.field("energy", energy.render(indent + 2));

    o.num("ed2p", m.ed2p);
    o.num("edp", m.edp);
    return o;
}

// ---------------------------------------------------------------------------
// Parsing: a minimal recursive-descent JSON reader for the dialect
// this file emits (objects, strings, numbers).
// ---------------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { String, Number, Object };

    Kind kind = Kind::Number;
    std::string str;
    double num = 0.0;
    std::map<std::string, JsonValue> object;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_ += 1;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_ += 1;
    }

    JsonValue
    value()
    {
        char c = peek();
        if (c == '{')
            return objectValue();
        if (c == '"')
            return stringValue();
        return numberValue();
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            pos_ += 1;
            return v;
        }
        for (;;) {
            JsonValue key = stringValue();
            expect(':');
            v.object[key.str] = value();
            char c = peek();
            pos_ += 1;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    JsonValue
    stringValue()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 1;
                if (pos_ >= text_.size())
                    fail("bad escape");
                switch (text_[pos_]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default: fail("unsupported escape");
                }
            }
            v.str += c;
            pos_ += 1;
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        pos_ += 1; // closing quote
        return v;
    }

    JsonValue
    numberValue()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == 'n' ||
                text_[pos_] == 'i' || text_[pos_] == 'f' ||
                text_[pos_] == 'a'))
            pos_ += 1;
        if (pos_ == start)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            v.num = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("bad number '" + text_.substr(start, pos_ - start) + "'");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

double
numAt(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    return it != obj.object.end() ? it->second.num : 0.0;
}

std::uint64_t
u64At(const JsonValue &obj, const std::string &key)
{
    return static_cast<std::uint64_t>(numAt(obj, key));
}

std::string
strAt(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    return it != obj.object.end() ? it->second.str : std::string();
}

} // namespace

std::string
metricsToJson(const Metrics &m, int indent)
{
    return metricsObject(m, indent).render(indent);
}

Metrics
metricsFromJson(const std::string &json)
{
    JsonValue root = JsonParser(json).parse();
    if (root.kind != JsonValue::Kind::Object)
        throw std::runtime_error("metricsFromJson: not a JSON object");

    Metrics m;
    m.config = strAt(root, "config");
    m.workload = strAt(root, "workload");
    m.insts = u64At(root, "insts");
    m.cycles = u64At(root, "cycles");
    m.ipc = numAt(root, "ipc");
    m.cpi = numAt(root, "cpi");
    m.avgOutstanding = numAt(root, "avgOutstanding");
    m.avgLoadLatency = numAt(root, "avgLoadLatency");
    m.dramReads = u64At(root, "dramReads");
    m.iqOcc = numAt(root, "iqOcc");
    m.robOcc = numAt(root, "robOcc");
    m.lqOcc = numAt(root, "lqOcc");
    m.sqOcc = numAt(root, "sqOcc");
    m.rfOcc = numAt(root, "rfOcc");
    m.ltpOcc = numAt(root, "ltpOcc");
    m.ltpRegsOcc = numAt(root, "ltpRegsOcc");
    m.ltpLoadsOcc = numAt(root, "ltpLoadsOcc");
    m.ltpStoresOcc = numAt(root, "ltpStoresOcc");
    m.ltpEnabledFrac = numAt(root, "ltpEnabledFrac");
    m.parkedFrac = numAt(root, "parkedFrac");
    m.parked = u64At(root, "parked");
    m.unparked = u64At(root, "unparked");
    m.forcedUnparks = u64At(root, "forcedUnparks");
    m.pressureUnparks = u64At(root, "pressureUnparks");
    m.llpredAccuracy = numAt(root, "llpredAccuracy");
    m.bpAccuracy = numAt(root, "bpAccuracy");

    auto energy = root.object.find("energy");
    if (energy != root.object.end()) {
        m.energy.iq = numAt(energy->second, "iq");
        m.energy.rf = numAt(energy->second, "rf");
        m.energy.ltp = numAt(energy->second, "ltp");
    }

    m.ed2p = numAt(root, "ed2p");
    m.edp = numAt(root, "edp");
    return m;
}

std::string
reportToJson(const SweepResult &result)
{
    std::string out = "{\n";
    out += "  \"sweep\": " + jsonStr(result.name) + ",\n";
    out += "  \"threads\": " + std::to_string(result.threads) + ",\n";
    out += "  \"simulations\": " + std::to_string(result.simulations) +
           ",\n";
    out += "  \"wall_ms\": " +
           strprintf("%.3f", result.wallMs) + ",\n";
    out += "  \"results\": [\n";

    bool first = true;
    for (const std::string &row : result.grid.rows()) {
        for (const std::string &series : result.grid.series(row)) {
            if (!first)
                out += ",\n";
            first = false;
            out += "    {\n";
            out += "      \"row\": " + jsonStr(row) + ",\n";
            out += "      \"series\": " + jsonStr(series) + ",\n";
            out += "      \"metrics\": " +
                   metricsToJson(result.grid.at(row, series), 6) + "\n";
            out += "    }";
        }
    }
    out += "\n  ]\n}\n";
    return out;
}

namespace {

/** RFC 4180 quoting for fields that contain a delimiter. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
reportToCsv(const SweepResult &result)
{
    std::ostringstream out;
    out << "row,series,config,workload,insts,cycles,ipc,cpi,"
        << "avgOutstanding,avgLoadLatency,dramReads,iqOcc,rfOcc,ltpOcc,"
        << "parkedFrac,ed2p,edp\n";
    for (const std::string &row : result.grid.rows()) {
        for (const std::string &series : result.grid.series(row)) {
            const Metrics &m = result.grid.at(row, series);
            out << csvField(row) << ',' << csvField(series) << ','
                << csvField(m.config) << ',' << csvField(m.workload)
                << ',' << m.insts << ',' << m.cycles << ','
                << m.ipc << ',' << m.cpi << ',' << m.avgOutstanding << ','
                << m.avgLoadLatency << ',' << m.dramReads << ','
                << m.iqOcc << ',' << m.rfOcc << ',' << m.ltpOcc << ','
                << m.parkedFrac << ',' << m.ed2p << ',' << m.edp << '\n';
        }
    }
    return out.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << text;
}

} // namespace ltp
