#include "sim/report.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/logging.hh"

namespace ltp {

namespace {

// Writing uses the shared ordered builder (common/json.hh) so field
// order matches the Metrics declaration rather than map order.

JsonObjectBuilder
metricsObject(const Metrics &m, int indent)
{
    JsonObjectBuilder o;
    o.u64("schemaVersion", kMetricsSchemaVersion);
    o.str("config", m.config);
    o.str("workload", m.workload);
    o.u64("insts", m.insts);
    o.u64("cycles", m.cycles);
    o.num("ipc", m.ipc);
    o.num("cpi", m.cpi);
    o.num("avgOutstanding", m.avgOutstanding);
    o.num("avgLoadLatency", m.avgLoadLatency);
    o.u64("dramReads", m.dramReads);
    o.num("iqOcc", m.iqOcc);
    o.num("robOcc", m.robOcc);
    o.num("lqOcc", m.lqOcc);
    o.num("sqOcc", m.sqOcc);
    o.num("rfOcc", m.rfOcc);
    o.num("ltpOcc", m.ltpOcc);
    o.num("ltpRegsOcc", m.ltpRegsOcc);
    o.num("ltpLoadsOcc", m.ltpLoadsOcc);
    o.num("ltpStoresOcc", m.ltpStoresOcc);
    o.num("ltpEnabledFrac", m.ltpEnabledFrac);
    o.num("parkedFrac", m.parkedFrac);
    o.u64("parked", m.parked);
    o.u64("unparked", m.unparked);
    o.u64("forcedUnparks", m.forcedUnparks);
    o.u64("pressureUnparks", m.pressureUnparks);
    o.num("llpredAccuracy", m.llpredAccuracy);
    o.num("bpAccuracy", m.bpAccuracy);

    JsonObjectBuilder energy;
    energy.num("iq", m.energy.iq);
    energy.num("rf", m.energy.rf);
    energy.num("ltp", m.energy.ltp);
    o.field("energy", energy.render(indent + 2));

    o.num("ed2p", m.ed2p);
    o.num("edp", m.edp);

    // SMT breakdown: emitted only for genuinely multi-context runs so
    // single-threaded Metrics JSON (and the committed golden
    // snapshots) is byte-identical to the pre-SMT format.
    if (m.threads.size() > 1) {
        std::string arr = "[\n";
        for (std::size_t i = 0; i < m.threads.size(); ++i) {
            const ThreadMetrics &tm = m.threads[i];
            JsonObjectBuilder to;
            to.str("workload", tm.workload);
            to.u64("insts", tm.insts);
            to.u64("cycles", tm.cycles);
            to.num("ipc", tm.ipc);
            arr += std::string(indent + 4, ' ') + to.render(indent + 4);
            if (i + 1 < m.threads.size())
                arr += ",";
            arr += "\n";
        }
        arr += std::string(indent + 2, ' ') + "]";
        JsonObjectBuilder smt;
        smt.num("weightedSpeedup", m.weightedSpeedup);
        smt.field("threads", arr);
        o.field("smt", smt.render(indent + 2));
    }

    // Sampling summary: emitted only for sampled runs, so full-detail
    // Metrics JSON (and golden snapshots) is byte-identical to the
    // pre-sampling format.
    if (m.sampling.enabled()) {
        const SamplingStats &s = m.sampling;
        JsonObjectBuilder so;
        so.u64("samples", std::uint64_t(s.samples));
        so.u64("fastForward", s.fastForward);
        so.u64("warmup", s.warmup);
        so.u64("detail", s.detail);
        so.num("meanIpc", s.meanIpc);
        // A CI-less run (--samples=1) omits the dispersion keys
        // entirely: "unavailable" must not round-trip as a number.
        if (s.hasCi()) {
            so.num("ipcStdDev", s.ipcStdDev);
            so.num("ci95Half", s.ci95Half);
        }
        so.num("ffKips", s.ffKips);
        std::string ipcs = "[";
        for (std::size_t i = 0; i < s.sampleIpcs.size(); ++i) {
            if (i)
                ipcs += ", ";
            ipcs += jsonNum(s.sampleIpcs[i]);
        }
        ipcs += "]";
        so.field("sampleIpcs", ipcs);
        o.field("sampling", so.render(indent + 2));
    }
    return o;
}

// Parsing uses the shared reader (common/json.hh); missing keys keep
// their zero defaults so old archives stay readable.

double
numAt(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    return it != obj.object.end() ? it->second.num : 0.0;
}

std::uint64_t
u64At(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    if (it == obj.object.end())
        return 0;
    // Prefer the source lexeme: exact for integers above 2^53.
    const JsonValue &v = it->second;
    std::uint64_t exact = 0;
    if (v.isNumber() && u64FromLexeme(v.str, &exact))
        return exact;
    return static_cast<std::uint64_t>(v.num);
}

std::string
strAt(const JsonValue &obj, const std::string &key)
{
    auto it = obj.object.find(key);
    return it != obj.object.end() ? it->second.str : std::string();
}

} // namespace

std::string
metricsToJson(const Metrics &m, int indent)
{
    return metricsObject(m, indent).render(indent);
}

Metrics
metricsFromJson(const std::string &json)
{
    JsonValue root = parseJson(json);
    if (root.kind != JsonValue::Kind::Object)
        throw std::runtime_error("metricsFromJson: not a JSON object");

    // Tolerant versioning: a missing field is the unversioned v1
    // format; anything newer than this reader must be rejected rather
    // than half-read with silently-defaulted fields.
    std::uint64_t version =
        root.object.count("schemaVersion") ? u64At(root, "schemaVersion")
                                           : 1;
    if (version < 1 || version > std::uint64_t(kMetricsSchemaVersion))
        throw std::runtime_error(strprintf(
            "metricsFromJson: unsupported schemaVersion %llu (this "
            "reader supports 1..%d)",
            static_cast<unsigned long long>(version),
            kMetricsSchemaVersion));

    Metrics m;
    m.config = strAt(root, "config");
    m.workload = strAt(root, "workload");
    m.insts = u64At(root, "insts");
    m.cycles = u64At(root, "cycles");
    m.ipc = numAt(root, "ipc");
    m.cpi = numAt(root, "cpi");
    m.avgOutstanding = numAt(root, "avgOutstanding");
    m.avgLoadLatency = numAt(root, "avgLoadLatency");
    m.dramReads = u64At(root, "dramReads");
    m.iqOcc = numAt(root, "iqOcc");
    m.robOcc = numAt(root, "robOcc");
    m.lqOcc = numAt(root, "lqOcc");
    m.sqOcc = numAt(root, "sqOcc");
    m.rfOcc = numAt(root, "rfOcc");
    m.ltpOcc = numAt(root, "ltpOcc");
    m.ltpRegsOcc = numAt(root, "ltpRegsOcc");
    m.ltpLoadsOcc = numAt(root, "ltpLoadsOcc");
    m.ltpStoresOcc = numAt(root, "ltpStoresOcc");
    m.ltpEnabledFrac = numAt(root, "ltpEnabledFrac");
    m.parkedFrac = numAt(root, "parkedFrac");
    m.parked = u64At(root, "parked");
    m.unparked = u64At(root, "unparked");
    m.forcedUnparks = u64At(root, "forcedUnparks");
    m.pressureUnparks = u64At(root, "pressureUnparks");
    m.llpredAccuracy = numAt(root, "llpredAccuracy");
    m.bpAccuracy = numAt(root, "bpAccuracy");

    auto energy = root.object.find("energy");
    if (energy != root.object.end()) {
        m.energy.iq = numAt(energy->second, "iq");
        m.energy.rf = numAt(energy->second, "rf");
        m.energy.ltp = numAt(energy->second, "ltp");
    }

    m.ed2p = numAt(root, "ed2p");
    m.edp = numAt(root, "edp");

    auto sampling = root.object.find("sampling");
    if (sampling != root.object.end() && sampling->second.isObject()) {
        SamplingStats &s = m.sampling;
        s.samples = int(u64At(sampling->second, "samples"));
        s.fastForward = u64At(sampling->second, "fastForward");
        s.warmup = u64At(sampling->second, "warmup");
        s.detail = u64At(sampling->second, "detail");
        s.meanIpc = numAt(sampling->second, "meanIpc");
        // Absent dispersion keys mean "CI unavailable" (a n=1 run),
        // which reads back as NaN — not as a zero-width interval.
        double nan = std::numeric_limits<double>::quiet_NaN();
        s.ipcStdDev = sampling->second.object.count("ipcStdDev")
                          ? numAt(sampling->second, "ipcStdDev")
                          : nan;
        s.ci95Half = sampling->second.object.count("ci95Half")
                         ? numAt(sampling->second, "ci95Half")
                         : nan;
        s.ffKips = numAt(sampling->second, "ffKips");
        auto ipcs = sampling->second.object.find("sampleIpcs");
        if (ipcs != sampling->second.object.end() &&
            ipcs->second.isArray()) {
            for (const JsonValue &v : ipcs->second.array)
                s.sampleIpcs.push_back(v.num);
        }
    }

    auto smt = root.object.find("smt");
    if (smt != root.object.end() && smt->second.isObject()) {
        m.weightedSpeedup = numAt(smt->second, "weightedSpeedup");
        auto threads = smt->second.object.find("threads");
        if (threads != smt->second.object.end() &&
            threads->second.isArray()) {
            for (const JsonValue &tv : threads->second.array) {
                ThreadMetrics tm;
                tm.workload = strAt(tv, "workload");
                tm.insts = u64At(tv, "insts");
                tm.cycles = u64At(tv, "cycles");
                tm.ipc = numAt(tv, "ipc");
                m.threads.push_back(tm);
            }
        }
    }
    return m;
}

std::string
reportToJson(const SweepResult &result)
{
    std::string out = "{\n";
    out += "  \"sweep\": " + jsonQuote(result.name) + ",\n";
    out += "  \"threads\": " + std::to_string(result.threads) + ",\n";
    out += "  \"simulations\": " + std::to_string(result.simulations) +
           ",\n";
    out += "  \"wall_ms\": " +
           strprintf("%.3f", result.wallMs) + ",\n";
    out += "  \"results\": [\n";

    bool first = true;
    for (const std::string &row : result.grid.rows()) {
        for (const std::string &series : result.grid.series(row)) {
            if (!first)
                out += ",\n";
            first = false;
            out += "    {\n";
            out += "      \"row\": " + jsonQuote(row) + ",\n";
            out += "      \"series\": " + jsonQuote(series) + ",\n";
            out += "      \"metrics\": " +
                   metricsToJson(result.grid.at(row, series), 6) + "\n";
            out += "    }";
        }
    }
    out += "\n  ]\n}\n";
    return out;
}

namespace {

/** RFC 4180 quoting for fields that contain a delimiter. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
reportToCsv(const SweepResult &result)
{
    // Per-thread breakdowns ride along as semicolon-joined lists in
    // tid order, so the table stays rectangular whatever mix of
    // single-threaded and SMT cells a sweep produces.
    auto joinThreads = [](const Metrics &m, auto &&field) {
        std::string out;
        for (std::size_t i = 0; i < m.threads.size(); ++i) {
            if (i)
                out += ';';
            out += field(m.threads[i]);
        }
        return out;
    };
    std::ostringstream out;
    out << "row,series,config,workload,insts,cycles,ipc,cpi,"
        << "avgOutstanding,avgLoadLatency,dramReads,iqOcc,rfOcc,ltpOcc,"
        << "parkedFrac,ed2p,edp,"
        << "threads,threadWorkloads,threadInsts,threadCycles,"
        << "threadIpcs,weightedSpeedup,samples,ipcCi95\n";
    for (const std::string &row : result.grid.rows()) {
        for (const std::string &series : result.grid.series(row)) {
            const Metrics &m = result.grid.at(row, series);
            out << csvField(row) << ',' << csvField(series) << ','
                << csvField(m.config) << ',' << csvField(m.workload)
                << ',' << m.insts << ',' << m.cycles << ','
                << m.ipc << ',' << m.cpi << ',' << m.avgOutstanding << ','
                << m.avgLoadLatency << ',' << m.dramReads << ','
                << m.iqOcc << ',' << m.rfOcc << ',' << m.ltpOcc << ','
                << m.parkedFrac << ',' << m.ed2p << ',' << m.edp << ','
                << m.threads.size() << ','
                << csvField(joinThreads(
                       m, [](const ThreadMetrics &t) {
                           return t.workload;
                       }))
                << ','
                << joinThreads(m,
                               [](const ThreadMetrics &t) {
                                   return std::to_string(t.insts);
                               })
                << ','
                << joinThreads(m,
                               [](const ThreadMetrics &t) {
                                   return std::to_string(t.cycles);
                               })
                << ','
                << joinThreads(m,
                               [](const ThreadMetrics &t) {
                                   std::ostringstream v;
                                   v << t.ipc;
                                   return v.str();
                               })
                << ',' << m.weightedSpeedup << ','
                << m.sampling.samples << ',';
            // Empty CI field = unavailable (non-sampled row, or a
            // sampled run with too few samples for an interval).
            if (m.sampling.hasCi())
                out << m.sampling.ci95Half;
            out << '\n';
        }
    }
    return out.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << text;
}

std::string
writeJsonReport(const SweepResult &result, const std::string &path)
{
    std::string target =
        path == "1" ? "BENCH_" + result.name + ".json" : path;
    writeFile(target, reportToJson(result));
    std::printf("json report (%zu sims, %d threads, %.0f ms) written "
                "to %s\n",
                result.simulations, result.threads, result.wallMs,
                target.c_str());
    return target;
}

std::string
writeCsvReport(const SweepResult &result, const std::string &path)
{
    std::string target =
        path == "1" ? "BENCH_" + result.name + ".csv" : path;
    writeFile(target, reportToCsv(result));
    std::printf("csv written to %s\n", target.c_str());
    return target;
}

} // namespace ltp
