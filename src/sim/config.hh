/**
 * @file
 * Whole-simulation configuration: core + memory + trace staging, with
 * the named presets every bench builds from.
 *
 *  - baseline():    Table 1 — IQ 64, RF 128+128, LQ 64, SQ 32, ROB 256,
 *                   3-level caches, stride prefetcher, LTP off.
 *  - ltpProposal(): the paper's proposal — IQ 32, RF 96+96, plus a
 *                   128-entry 4-port queue-based Non-Urgent LTP with
 *                   learned classification (UIT 256) and the DRAM-timer
 *                   monitor.
 *  - limitStudy():  Section 4 — every resource effectively unlimited
 *                   except the ones a bench sweeps, infinite LTP with
 *                   oracle classification, LQ/SQ late allocation.
 */

#ifndef LTP_SIM_CONFIG_HH
#define LTP_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "cpu/core.hh"
#include "mem/mem_system.hh"

namespace ltp {

/** Complete configuration of one simulation run. */
struct SimConfig
{
    std::string name = "baseline";
    CoreConfig core;
    MemConfig mem;
    std::uint64_t seed = 1;

    /// @name Presets
    /// @{
    static SimConfig baseline();
    static SimConfig ltpProposal(LtpMode mode = LtpMode::NU);
    static SimConfig limitStudy(LtpMode mode);
    /// @}

    /// @name Fluent mutators (return *this for chaining)
    /// @{
    SimConfig &withName(const std::string &n);
    SimConfig &withIq(int entries);
    SimConfig &withRegs(int per_class);
    SimConfig &withLq(int entries);
    SimConfig &withSq(int entries);
    SimConfig &withRob(int entries);
    SimConfig &withLtp(LtpMode mode, int entries, int ports);
    SimConfig &withLtpOff();
    SimConfig &withOracle();
    SimConfig &withLearned();
    SimConfig &withUit(int entries);
    SimConfig &withTickets(int n);
    SimConfig &withMonitor(bool on);
    SimConfig &withPrefetcher(bool on);
    SimConfig &withSeed(std::uint64_t s);
    /// @}
};

/// @name Serialization
///
/// Every core, memory, and LTP field of a SimConfig is reachable by a
/// dotted path ("core.iq", "core.ltp.mode", "mem.l1d.sizeKB", ...).
/// One field registry drives JSON emission, JSON application, and the
/// command-line override setter, so the three can never disagree.
/// @{

/** Serialize @p cfg as a nested JSON object (round-trip exact). */
std::string configToJson(const SimConfig &cfg, int indent = 0);

/**
 * Build a SimConfig from JSON: defaults, then every present key
 * applied.  Partial objects are fine; unknown keys or wrong value
 * types throw std::runtime_error naming the offending path.
 */
SimConfig configFromJson(const std::string &json);

/**
 * Apply a parsed (possibly partial) JSON object onto @p cfg.
 * @param where  path prefix named in errors (e.g. "configs[2].set").
 */
void applyConfigJson(SimConfig &cfg, const JsonValue &v,
                     const std::string &where = "");

/**
 * Set one field by dotted path from its string spelling, e.g.
 * applyOverride(cfg, "core.iq", "32").  Sizes accept "inf"; enums
 * accept their printed names (case-insensitive).
 * @throws std::runtime_error naming the path on unknown paths or
 *         unparseable values.
 */
void applyOverride(SimConfig &cfg, const std::string &path,
                   const std::string &value);

/** Every dotted path applyOverride accepts, in declaration order. */
std::vector<std::string> configPaths();

/**
 * Parse an LtpMode name ("off" | "NU" | "NR" | "NR+NU",
 * case-insensitive).  @throws std::runtime_error naming @p where.
 */
LtpMode parseLtpMode(const std::string &s, const std::string &where);

/// @}

} // namespace ltp

#endif // LTP_SIM_CONFIG_HH
