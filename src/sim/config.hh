/**
 * @file
 * Whole-simulation configuration: core + memory + trace staging, with
 * the named presets every bench builds from.
 *
 *  - baseline():    Table 1 — IQ 64, RF 128+128, LQ 64, SQ 32, ROB 256,
 *                   3-level caches, stride prefetcher, LTP off.
 *  - ltpProposal(): the paper's proposal — IQ 32, RF 96+96, plus a
 *                   128-entry 4-port queue-based Non-Urgent LTP with
 *                   learned classification (UIT 256) and the DRAM-timer
 *                   monitor.
 *  - limitStudy():  Section 4 — every resource effectively unlimited
 *                   except the ones a bench sweeps, infinite LTP with
 *                   oracle classification, LQ/SQ late allocation.
 */

#ifndef LTP_SIM_CONFIG_HH
#define LTP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cpu/core.hh"
#include "mem/mem_system.hh"

namespace ltp {

/** Complete configuration of one simulation run. */
struct SimConfig
{
    std::string name = "baseline";
    CoreConfig core;
    MemConfig mem;
    std::uint64_t seed = 1;

    /// @name Presets
    /// @{
    static SimConfig baseline();
    static SimConfig ltpProposal(LtpMode mode = LtpMode::NU);
    static SimConfig limitStudy(LtpMode mode);
    /// @}

    /// @name Fluent mutators (return *this for chaining)
    /// @{
    SimConfig &withName(const std::string &n);
    SimConfig &withIq(int entries);
    SimConfig &withRegs(int per_class);
    SimConfig &withLq(int entries);
    SimConfig &withSq(int entries);
    SimConfig &withRob(int entries);
    SimConfig &withLtp(LtpMode mode, int entries, int ports);
    SimConfig &withLtpOff();
    SimConfig &withOracle();
    SimConfig &withLearned();
    SimConfig &withUit(int entries);
    SimConfig &withTickets(int n);
    SimConfig &withMonitor(bool on);
    SimConfig &withPrefetcher(bool on);
    SimConfig &withSeed(std::uint64_t s);
    /// @}
};

} // namespace ltp

#endif // LTP_SIM_CONFIG_HH
