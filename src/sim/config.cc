#include "sim/config.hh"

namespace ltp {

SimConfig
SimConfig::baseline()
{
    SimConfig cfg;
    cfg.name = "base-iq64-rf128";
    // CoreConfig/MemConfig defaults already encode Table 1.
    cfg.core.ltp.mode = LtpMode::Off;
    return cfg;
}

SimConfig
SimConfig::ltpProposal(LtpMode mode)
{
    SimConfig cfg;
    cfg.name = std::string("ltp-") + ltpModeName(mode) + "-iq32-rf96";
    cfg.core.iqSize = 32;
    cfg.core.intRegs = 96;
    cfg.core.fpRegs = 96;
    cfg.core.ltp.mode = mode;
    cfg.core.ltp.classifier = ClassifierKind::Learned;
    cfg.core.ltp.entries = 128;
    cfg.core.ltp.insertPorts = 4;
    cfg.core.ltp.extractPorts = 4;
    cfg.core.ltp.uitEntries = 256;
    cfg.core.ltp.useMonitor = true;
    return cfg;
}

SimConfig
SimConfig::limitStudy(LtpMode mode)
{
    SimConfig cfg;
    cfg.name = std::string("limit-") + ltpModeName(mode);
    cfg.core.iqSize = kInfiniteSize;
    cfg.core.intRegs = kInfiniteSize;
    cfg.core.fpRegs = kInfiniteSize;
    cfg.core.lqSize = kInfiniteSize;
    cfg.core.sqSize = kInfiniteSize;
    cfg.core.ltp.mode = mode;
    cfg.core.ltp.classifier =
        mode == LtpMode::Off ? ClassifierKind::Learned
                             : ClassifierKind::Oracle;
    cfg.core.ltp.entries = kInfiniteSize;
    cfg.core.ltp.insertPorts = 8;
    cfg.core.ltp.extractPorts = 8;
    cfg.core.ltp.numTickets = kMaxTickets;
    cfg.core.ltp.useMonitor = true;
    cfg.core.ltp.delayLqSq = true;
    cfg.mem.l1dMshrs = kInfiniteSize;
    return cfg;
}

SimConfig &
SimConfig::withName(const std::string &n)
{
    name = n;
    return *this;
}

SimConfig &
SimConfig::withIq(int entries)
{
    core.iqSize = entries;
    return *this;
}

SimConfig &
SimConfig::withRegs(int per_class)
{
    core.intRegs = per_class;
    core.fpRegs = per_class;
    return *this;
}

SimConfig &
SimConfig::withLq(int entries)
{
    core.lqSize = entries;
    return *this;
}

SimConfig &
SimConfig::withSq(int entries)
{
    core.sqSize = entries;
    return *this;
}

SimConfig &
SimConfig::withRob(int entries)
{
    core.robSize = entries;
    return *this;
}

SimConfig &
SimConfig::withLtp(LtpMode mode, int entries, int ports)
{
    core.ltp.mode = mode;
    core.ltp.entries = entries;
    core.ltp.insertPorts = ports;
    core.ltp.extractPorts = ports;
    return *this;
}

SimConfig &
SimConfig::withLtpOff()
{
    core.ltp.mode = LtpMode::Off;
    return *this;
}

SimConfig &
SimConfig::withOracle()
{
    core.ltp.classifier = ClassifierKind::Oracle;
    return *this;
}

SimConfig &
SimConfig::withLearned()
{
    core.ltp.classifier = ClassifierKind::Learned;
    return *this;
}

SimConfig &
SimConfig::withUit(int entries)
{
    core.ltp.uitEntries = entries;
    return *this;
}

SimConfig &
SimConfig::withTickets(int n)
{
    core.ltp.numTickets = n;
    return *this;
}

SimConfig &
SimConfig::withMonitor(bool on)
{
    core.ltp.useMonitor = on;
    return *this;
}

SimConfig &
SimConfig::withPrefetcher(bool on)
{
    mem.prefetchEnabled = on;
    return *this;
}

SimConfig &
SimConfig::withSeed(std::uint64_t s)
{
    seed = s;
    return *this;
}

} // namespace ltp
