#include "sim/config.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ltp {

SimConfig
SimConfig::baseline()
{
    SimConfig cfg;
    cfg.name = "base-iq64-rf128";
    // CoreConfig/MemConfig defaults already encode Table 1.
    cfg.core.ltp.mode = LtpMode::Off;
    return cfg;
}

SimConfig
SimConfig::ltpProposal(LtpMode mode)
{
    SimConfig cfg;
    cfg.name = std::string("ltp-") + ltpModeName(mode) + "-iq32-rf96";
    cfg.core.iqSize = 32;
    cfg.core.intRegs = 96;
    cfg.core.fpRegs = 96;
    cfg.core.ltp.mode = mode;
    cfg.core.ltp.classifier = ClassifierKind::Learned;
    cfg.core.ltp.entries = 128;
    cfg.core.ltp.insertPorts = 4;
    cfg.core.ltp.extractPorts = 4;
    cfg.core.ltp.uitEntries = 256;
    cfg.core.ltp.useMonitor = true;
    return cfg;
}

SimConfig
SimConfig::limitStudy(LtpMode mode)
{
    SimConfig cfg;
    cfg.name = std::string("limit-") + ltpModeName(mode);
    cfg.core.iqSize = kInfiniteSize;
    cfg.core.intRegs = kInfiniteSize;
    cfg.core.fpRegs = kInfiniteSize;
    cfg.core.lqSize = kInfiniteSize;
    cfg.core.sqSize = kInfiniteSize;
    cfg.core.ltp.mode = mode;
    cfg.core.ltp.classifier =
        mode == LtpMode::Off ? ClassifierKind::Learned
                             : ClassifierKind::Oracle;
    cfg.core.ltp.entries = kInfiniteSize;
    cfg.core.ltp.insertPorts = 8;
    cfg.core.ltp.extractPorts = 8;
    cfg.core.ltp.numTickets = kMaxTickets;
    cfg.core.ltp.useMonitor = true;
    cfg.core.ltp.delayLqSq = true;
    cfg.mem.l1dMshrs = kInfiniteSize;
    return cfg;
}

SimConfig &
SimConfig::withName(const std::string &n)
{
    name = n;
    return *this;
}

SimConfig &
SimConfig::withIq(int entries)
{
    core.iqSize = entries;
    return *this;
}

SimConfig &
SimConfig::withRegs(int per_class)
{
    core.intRegs = per_class;
    core.fpRegs = per_class;
    return *this;
}

SimConfig &
SimConfig::withLq(int entries)
{
    core.lqSize = entries;
    return *this;
}

SimConfig &
SimConfig::withSq(int entries)
{
    core.sqSize = entries;
    return *this;
}

SimConfig &
SimConfig::withRob(int entries)
{
    core.robSize = entries;
    return *this;
}

SimConfig &
SimConfig::withLtp(LtpMode mode, int entries, int ports)
{
    core.ltp.mode = mode;
    core.ltp.entries = entries;
    core.ltp.insertPorts = ports;
    core.ltp.extractPorts = ports;
    return *this;
}

SimConfig &
SimConfig::withLtpOff()
{
    core.ltp.mode = LtpMode::Off;
    return *this;
}

SimConfig &
SimConfig::withOracle()
{
    core.ltp.classifier = ClassifierKind::Oracle;
    return *this;
}

SimConfig &
SimConfig::withLearned()
{
    core.ltp.classifier = ClassifierKind::Learned;
    return *this;
}

SimConfig &
SimConfig::withUit(int entries)
{
    core.ltp.uitEntries = entries;
    return *this;
}

SimConfig &
SimConfig::withTickets(int n)
{
    core.ltp.numTickets = n;
    return *this;
}

SimConfig &
SimConfig::withMonitor(bool on)
{
    core.ltp.useMonitor = on;
    return *this;
}

SimConfig &
SimConfig::withPrefetcher(bool on)
{
    mem.prefetchEnabled = on;
    return *this;
}

SimConfig &
SimConfig::withSeed(std::uint64_t s)
{
    seed = s;
    return *this;
}

// ---------------------------------------------------------------------------
// Serialization: one field registry drives configToJson, configFromJson,
// and applyOverride.
// ---------------------------------------------------------------------------

namespace {

enum class FieldKind { Int, U64, Double, Bool, String, Mode, Classifier,
                       Wakeup, Fetch };

/** One serializable field: dotted path + typed pointer into a config. */
struct Field
{
    const char *path;
    FieldKind kind;
    void *p;
};

/** The full registry, in emission order (paths group into objects). */
std::vector<Field>
fieldsOf(SimConfig &c)
{
    CoreConfig &co = c.core;
    LtpConfig &lt = co.ltp;
    FuConfig &fu = co.fu;
    MemConfig &me = c.mem;
    auto I = [](const char *n, int &v) {
        return Field{n, FieldKind::Int, &v};
    };
    auto U = [](const char *n, std::uint64_t &v) {
        return Field{n, FieldKind::U64, &v};
    };
    auto D = [](const char *n, double &v) {
        return Field{n, FieldKind::Double, &v};
    };
    auto B = [](const char *n, bool &v) {
        return Field{n, FieldKind::Bool, &v};
    };
    return {
        {"name", FieldKind::String, &c.name},
        U("seed", c.seed),

        I("core.fetchWidth", co.fetchWidth),
        I("core.decodeWidth", co.decodeWidth),
        I("core.renameWidth", co.renameWidth),
        I("core.issueWidth", co.issueWidth),
        I("core.wbWidth", co.wbWidth),
        I("core.commitWidth", co.commitWidth),
        I("core.rob", co.robSize),
        I("core.iq", co.iqSize),
        I("core.lq", co.lqSize),
        I("core.sq", co.sqSize),
        I("core.intRegs", co.intRegs),
        I("core.fpRegs", co.fpRegs),
        I("core.frontendDepth", co.frontendDepth),
        I("core.fetchQueueCap", co.fetchQueueCap),
        I("core.redirectPenalty", co.redirectPenalty),
        I("core.bpTableBits", co.bpTableBits),
        I("core.btbEntries", co.btbEntries),
        I("core.sqDrainWidth", co.sqDrainWidth),
        I("core.numThreads", co.numThreads),
        {"core.fetchPolicy", FieldKind::Fetch, &co.fetchPolicy},
        I("core.fu.alu", fu.alu),
        I("core.fu.mul", fu.mul),
        I("core.fu.fp", fu.fp),
        I("core.fu.ld", fu.ld),
        I("core.fu.st", fu.st),
        {"core.ltp.mode", FieldKind::Mode, &lt.mode},
        {"core.ltp.classifier", FieldKind::Classifier, &lt.classifier},
        I("core.ltp.entries", lt.entries),
        I("core.ltp.insertPorts", lt.insertPorts),
        I("core.ltp.extractPorts", lt.extractPorts),
        I("core.ltp.uitEntries", lt.uitEntries),
        I("core.ltp.uitAssoc", lt.uitAssoc),
        I("core.ltp.tickets", lt.numTickets),
        B("core.ltp.monitor", lt.useMonitor),
        {"core.ltp.wakeup", FieldKind::Wakeup, &lt.wakeup},
        B("core.ltp.delayLqSq", lt.delayLqSq),
        I("core.ltp.reservedRegs", lt.reservedRegs),
        I("core.ltp.reservedLqSq", lt.reservedLqSq),

        I("mem.l1i.sizeKB", me.l1i.sizeKB),
        I("mem.l1i.assoc", me.l1i.assoc),
        U("mem.l1i.hitLatency", me.l1i.hitLatency),
        I("mem.l1d.sizeKB", me.l1d.sizeKB),
        I("mem.l1d.assoc", me.l1d.assoc),
        U("mem.l1d.hitLatency", me.l1d.hitLatency),
        I("mem.l2.sizeKB", me.l2.sizeKB),
        I("mem.l2.assoc", me.l2.assoc),
        U("mem.l2.hitLatency", me.l2.hitLatency),
        I("mem.l3.sizeKB", me.l3.sizeKB),
        I("mem.l3.assoc", me.l3.assoc),
        U("mem.l3.hitLatency", me.l3.hitLatency),
        I("mem.dram.channels", me.dram.channels),
        I("mem.dram.banks", me.dram.banks),
        D("mem.dram.cpuCyclesPerDramCycle",
          me.dram.cpuCyclesPerDramCycle),
        I("mem.dram.clCk", me.dram.clCk),
        I("mem.dram.rcdCk", me.dram.rcdCk),
        I("mem.dram.rpCk", me.dram.rpCk),
        I("mem.dram.burstCk", me.dram.burstCk),
        I("mem.dram.rowBytes", me.dram.rowBytes),
        U("mem.dram.controllerLatency", me.dram.controllerLatency),
        B("mem.prefetchEnabled", me.prefetchEnabled),
        I("mem.prefetchDegree", me.prefetchDegree),
        I("mem.l1dMshrs", me.l1dMshrs),
        U("mem.earlyLead", me.earlyLead),
        U("mem.llThreshold", me.llThreshold),
    };
}

[[noreturn]] void
badConfig(const std::string &what)
{
    throw std::runtime_error("config: " + what);
}

std::string
lowered(const std::string &s)
{
    std::string out;
    for (char c : s)
        if (c != '+' && c != '-' && c != '_' && c != ' ')
            out += char(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

LtpMode
parseMode(const std::string &s, const std::string &where)
{
    std::string t = lowered(s);
    if (t == "off")
        return LtpMode::Off;
    if (t == "nu")
        return LtpMode::NU;
    if (t == "nr")
        return LtpMode::NR;
    if (t == "nrnu" || t == "nunr")
        return LtpMode::NRNU;
    badConfig("bad LTP mode '" + s + "' at " + where +
              " (expected off|NU|NR|NR+NU)");
}

const char *
classifierName(ClassifierKind k)
{
    return k == ClassifierKind::Oracle ? "oracle" : "learned";
}

ClassifierKind
parseClassifier(const std::string &s, const std::string &where)
{
    std::string t = lowered(s);
    if (t == "learned")
        return ClassifierKind::Learned;
    if (t == "oracle")
        return ClassifierKind::Oracle;
    badConfig("bad classifier '" + s + "' at " + where +
              " (expected learned|oracle)");
}

const char *
wakeupName(WakeupPolicy p)
{
    switch (p) {
      case WakeupPolicy::RobProximity: return "robProximity";
      case WakeupPolicy::Eager: return "eager";
      case WakeupPolicy::Lazy: return "lazy";
    }
    return "?";
}

WakeupPolicy
parseWakeup(const std::string &s, const std::string &where)
{
    std::string t = lowered(s);
    if (t == "robproximity")
        return WakeupPolicy::RobProximity;
    if (t == "eager")
        return WakeupPolicy::Eager;
    if (t == "lazy")
        return WakeupPolicy::Lazy;
    badConfig("bad wakeup policy '" + s + "' at " + where +
              " (expected robProximity|eager|lazy)");
}

FetchPolicy
parseFetch(const std::string &s, const std::string &where)
{
    std::string t = lowered(s);
    if (t == "roundrobin" || t == "rr")
        return FetchPolicy::RoundRobin;
    if (t == "icount")
        return FetchPolicy::ICount;
    badConfig("bad fetch policy '" + s + "' at " + where +
              " (expected roundRobin|icount)");
}

/** JSON fragment for one scalar field (sizes print kInfiniteSize as
 *  "inf", matching what the parsers accept). */
std::string
fieldFragment(const Field &f)
{
    switch (f.kind) {
      case FieldKind::Int: {
        int v = *static_cast<int *>(f.p);
        return v == kInfiniteSize ? "\"inf\"" : std::to_string(v);
      }
      case FieldKind::U64:
        return std::to_string(*static_cast<std::uint64_t *>(f.p));
      case FieldKind::Double:
        return jsonNum(*static_cast<double *>(f.p));
      case FieldKind::Bool:
        return *static_cast<bool *>(f.p) ? "true" : "false";
      case FieldKind::String:
        return jsonQuote(*static_cast<std::string *>(f.p));
      case FieldKind::Mode:
        return jsonQuote(ltpModeName(*static_cast<LtpMode *>(f.p)));
      case FieldKind::Classifier:
        return jsonQuote(
            classifierName(*static_cast<ClassifierKind *>(f.p)));
      case FieldKind::Wakeup:
        return jsonQuote(wakeupName(*static_cast<WakeupPolicy *>(f.p)));
      case FieldKind::Fetch:
        return jsonQuote(
            fetchPolicyName(*static_cast<FetchPolicy *>(f.p)));
    }
    return "null";
}

/** Nest [lo, hi) — all sharing @p prefix_len path prefix — into one
 *  ordered JSON object. */
JsonObjectBuilder
buildObject(const std::vector<Field> &fs, std::size_t lo, std::size_t hi,
            std::size_t prefix_len, int indent)
{
    JsonObjectBuilder o;
    std::size_t i = lo;
    while (i < hi) {
        const char *rest = fs[i].path + prefix_len;
        const char *dot = std::strchr(rest, '.');
        if (!dot) {
            o.field(rest, fieldFragment(fs[i]));
            i += 1;
            continue;
        }
        std::string seg(rest, static_cast<std::size_t>(dot - rest));
        std::size_t j = i;
        while (j < hi &&
               std::strncmp(fs[j].path + prefix_len, seg.c_str(),
                            seg.size()) == 0 &&
               fs[j].path[prefix_len + seg.size()] == '.')
            j += 1;
        o.field(seg, buildObject(fs, i, j, prefix_len + seg.size() + 1,
                                 indent + 2)
                         .render(indent + 2));
        i = j;
    }
    return o;
}

/** Whole-string signed integer parse; "inf" means kInfiniteSize. */
int
parseIntValue(const std::string &s, const std::string &where)
{
    // Exact spelling only: lowered() strips separators, which would
    // let "-inf" or "i n f" silently mean infinite.
    if (s == "inf" || s == "Inf" || s == "INF")
        return kInfiniteSize;
    char *end = nullptr;
    errno = 0;
    // Base 10: base 0 would read zero-padded values as octal.
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        badConfig("bad integer '" + s + "' at " + where);
    if (errno == ERANGE || v < INT_MIN || v > INT_MAX)
        badConfig("integer '" + s + "' out of range at " + where);
    return static_cast<int>(v);
}

/** Whole-string unsigned 64-bit parse (rejects sign/fraction). */
std::uint64_t
parseU64Value(const std::string &s, const std::string &where)
{
    std::uint64_t v = 0;
    if (!u64FromLexeme(s, &v))
        badConfig("bad unsigned integer '" + s + "' at " + where);
    return v;
}

/** Set one field from a parsed JSON value. */
void
setFromJson(const Field &f, const JsonValue &v, const std::string &where)
{
    auto wantNumber = [&]() {
        if (!v.isNumber())
            badConfig(std::string("expected a number at ") + where +
                      ", got " + JsonValue::kindName(v.kind));
    };
    switch (f.kind) {
      case FieldKind::Int:
        // Sizes additionally accept the string "inf".
        if (v.isString()) {
            *static_cast<int *>(f.p) = parseIntValue(v.str, where);
            return;
        }
        wantNumber();
        *static_cast<int *>(f.p) = parseIntValue(v.str, where);
        return;
      case FieldKind::U64:
        wantNumber();
        *static_cast<std::uint64_t *>(f.p) = parseU64Value(v.str, where);
        return;
      case FieldKind::Double:
        wantNumber();
        *static_cast<double *>(f.p) = v.num;
        return;
      case FieldKind::Bool:
        if (!v.isBool())
            badConfig(std::string("expected true/false at ") + where +
                      ", got " + JsonValue::kindName(v.kind));
        *static_cast<bool *>(f.p) = v.boolean;
        return;
      case FieldKind::String:
      case FieldKind::Mode:
      case FieldKind::Classifier:
      case FieldKind::Wakeup:
      case FieldKind::Fetch:
        if (!v.isString())
            badConfig(std::string("expected a string at ") + where +
                      ", got " + JsonValue::kindName(v.kind));
        if (f.kind == FieldKind::String)
            *static_cast<std::string *>(f.p) = v.str;
        else if (f.kind == FieldKind::Mode)
            *static_cast<LtpMode *>(f.p) = parseMode(v.str, where);
        else if (f.kind == FieldKind::Classifier)
            *static_cast<ClassifierKind *>(f.p) =
                parseClassifier(v.str, where);
        else if (f.kind == FieldKind::Wakeup)
            *static_cast<WakeupPolicy *>(f.p) = parseWakeup(v.str, where);
        else
            *static_cast<FetchPolicy *>(f.p) = parseFetch(v.str, where);
        return;
    }
}

/** Edit distance between two path spellings (classic Levenshtein). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

/**
 * " (did you mean 'X'?)" for the registry path(s) closest to the
 * mistyped @p path, or an empty string when nothing is plausibly
 * close (within ~a third of the spelling, minimum 2 edits).
 */
std::string
didYouMean(const std::string &path)
{
    SimConfig scratch;
    std::size_t best = std::max<std::size_t>(2, path.size() / 3);
    std::vector<std::string> nearest;
    for (const Field &f : fieldsOf(scratch)) {
        std::size_t d = editDistance(path, f.path);
        if (d < best) {
            best = d;
            nearest.assign(1, f.path);
        } else if (d == best) {
            nearest.push_back(f.path);
        }
    }
    if (nearest.empty() || nearest.size() > 3)
        return "";
    std::string out = " (did you mean ";
    for (std::size_t i = 0; i < nearest.size(); ++i) {
        if (i)
            out += i + 1 == nearest.size() ? " or " : ", ";
        out += "'" + nearest[i] + "'";
    }
    out += "?)";
    return out;
}

/** Recursively apply a JSON object's keys through the registry. */
void
applyObject(const std::vector<Field> &fs, const JsonValue &v,
            const std::string &reg_prefix, const std::string &err_prefix)
{
    for (const auto &[key, val] : v.object) {
        std::string reg_path =
            reg_prefix.empty() ? key : reg_prefix + "." + key;
        std::string err_path =
            err_prefix.empty() ? reg_path : err_prefix + "." + reg_path;

        const Field *exact = nullptr;
        bool is_group = false;
        std::string nested = reg_path + ".";
        for (const Field &f : fs) {
            if (reg_path == f.path) {
                exact = &f;
                break;
            }
            if (std::strncmp(f.path, nested.c_str(), nested.size()) == 0)
                is_group = true;
        }
        if (exact) {
            setFromJson(*exact, val, err_path);
        } else if (is_group) {
            if (!val.isObject())
                badConfig("expected an object at " + err_path + ", got " +
                          JsonValue::kindName(val.kind));
            applyObject(fs, val, reg_path, err_prefix);
        } else {
            badConfig("unknown config key '" + err_path + "'");
        }
    }
}

} // namespace

std::string
configToJson(const SimConfig &cfg, int indent)
{
    // The registry needs mutable pointers; emission never writes.
    SimConfig &c = const_cast<SimConfig &>(cfg);
    std::vector<Field> fs = fieldsOf(c);
    return buildObject(fs, 0, fs.size(), 0, indent).render(indent);
}

SimConfig
configFromJson(const std::string &json)
{
    JsonValue root = parseJson(json);
    SimConfig cfg;
    applyConfigJson(cfg, root);
    return cfg;
}

void
applyConfigJson(SimConfig &cfg, const JsonValue &v,
                const std::string &where)
{
    if (!v.isObject())
        badConfig("expected an object at " +
                  (where.empty() ? std::string("<top level>") : where) +
                  ", got " + JsonValue::kindName(v.kind));
    std::vector<Field> fs = fieldsOf(cfg);
    applyObject(fs, v, "", where);
}

void
applyOverride(SimConfig &cfg, const std::string &path,
              const std::string &value)
{
    std::vector<Field> fs = fieldsOf(cfg);
    for (const Field &f : fs) {
        if (path != f.path)
            continue;
        switch (f.kind) {
          case FieldKind::Int:
            *static_cast<int *>(f.p) = parseIntValue(value, path);
            return;
          case FieldKind::U64:
            *static_cast<std::uint64_t *>(f.p) =
                parseU64Value(value, path);
            return;
          case FieldKind::Double: {
            char *end = nullptr;
            double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                badConfig("bad number '" + value + "' at " + path);
            *static_cast<double *>(f.p) = v;
            return;
          }
          case FieldKind::Bool: {
            std::string t = lowered(value);
            if (t == "1" || t == "true" || t == "on")
                *static_cast<bool *>(f.p) = true;
            else if (t == "0" || t == "false" || t == "off")
                *static_cast<bool *>(f.p) = false;
            else
                badConfig("bad boolean '" + value + "' at " + path);
            return;
          }
          case FieldKind::String:
            *static_cast<std::string *>(f.p) = value;
            return;
          case FieldKind::Mode:
            *static_cast<LtpMode *>(f.p) = parseMode(value, path);
            return;
          case FieldKind::Classifier:
            *static_cast<ClassifierKind *>(f.p) =
                parseClassifier(value, path);
            return;
          case FieldKind::Wakeup:
            *static_cast<WakeupPolicy *>(f.p) = parseWakeup(value, path);
            return;
          case FieldKind::Fetch:
            *static_cast<FetchPolicy *>(f.p) = parseFetch(value, path);
            return;
        }
    }
    std::string hint = didYouMean(path);
    badConfig("unknown config path '" + path + "'" + hint +
              " (run `ltp print-config baseline` for the schema)");
}

std::vector<std::string>
configPaths()
{
    SimConfig scratch;
    std::vector<std::string> out;
    for (const Field &f : fieldsOf(scratch))
        out.push_back(f.path);
    return out;
}

LtpMode
parseLtpMode(const std::string &s, const std::string &where)
{
    return parseMode(s, where);
}

} // namespace ltp
