#include "sim/metrics.hh"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"

namespace ltp {

std::string
Metrics::toString() const
{
    std::ostringstream os;
    os << config << "/" << workload
       << strprintf(": ipc=%.3f cpi=%.3f", ipc, cpi)
       << strprintf(" mlp=%.2f", avgOutstanding)
       << strprintf(" iq=%.1f rf=%.1f lq=%.1f sq=%.1f", iqOcc, rfOcc,
                    lqOcc, sqOcc);
    if (ltpOcc > 0.0 || parked > 0)
        os << strprintf(" ltp=%.1f parked=%.0f%%", ltpOcc,
                        100.0 * parkedFrac);
    return os.str();
}

Metrics
averageMetrics(const std::vector<Metrics> &runs, const std::string &label)
{
    sim_assert(!runs.empty());
    Metrics avg;
    avg.config = runs.front().config;
    avg.workload = label;
    double n = double(runs.size());

    for (const Metrics &m : runs) {
        avg.insts += m.insts;
        avg.cycles += m.cycles;
        avg.ipc += m.ipc / n;
        avg.cpi += m.cpi / n;
        avg.avgOutstanding += m.avgOutstanding / n;
        avg.avgLoadLatency += m.avgLoadLatency / n;
        avg.dramReads += m.dramReads;
        avg.iqOcc += m.iqOcc / n;
        avg.robOcc += m.robOcc / n;
        avg.lqOcc += m.lqOcc / n;
        avg.sqOcc += m.sqOcc / n;
        avg.rfOcc += m.rfOcc / n;
        avg.ltpOcc += m.ltpOcc / n;
        avg.ltpRegsOcc += m.ltpRegsOcc / n;
        avg.ltpLoadsOcc += m.ltpLoadsOcc / n;
        avg.ltpStoresOcc += m.ltpStoresOcc / n;
        avg.ltpEnabledFrac += m.ltpEnabledFrac / n;
        avg.parkedFrac += m.parkedFrac / n;
        avg.parked += m.parked;
        avg.unparked += m.unparked;
        avg.forcedUnparks += m.forcedUnparks;
        avg.pressureUnparks += m.pressureUnparks;
        avg.llpredAccuracy += m.llpredAccuracy / n;
        avg.bpAccuracy += m.bpAccuracy / n;
        avg.energy.iq += m.energy.iq / n;
        avg.energy.rf += m.energy.rf / n;
        avg.energy.ltp += m.energy.ltp / n;
        avg.ed2p += m.ed2p / n;
        avg.edp += m.edp / n;
        avg.weightedSpeedup += m.weightedSpeedup / n;
    }

    // Per-thread breakdowns average slot-wise when every run has the
    // same SMT shape (the usual case: one group over one config);
    // mixed shapes have no meaningful per-thread average.
    bool same_shape = true;
    for (const Metrics &m : runs)
        same_shape = same_shape &&
                     m.threads.size() == runs.front().threads.size();
    if (same_shape && !runs.front().threads.empty()) {
        avg.threads.resize(runs.front().threads.size());
        for (std::size_t i = 0; i < avg.threads.size(); ++i) {
            ThreadMetrics &slot = avg.threads[i];
            slot.workload = runs.front().threads[i].workload;
            for (const Metrics &m : runs) {
                slot.insts += m.threads[i].insts;
                slot.cycles += m.threads[i].cycles;
                slot.ipc += m.threads[i].ipc / n;
            }
        }
    }
    // A group of sampled runs combines into a sampled aggregate: the
    // plan carries over (groups are uniform per scenario), the mean of
    // means is the group IPC estimate, and the independent per-cell
    // intervals combine in quadrature onto the mean of n cells:
    // halfwidth = sqrt(sum ci_i^2) / n.  Mixed groups (some cells
    // sampled, some not) have no coherent interval and stay disabled.
    bool all_sampled = true;
    for (const Metrics &m : runs)
        all_sampled = all_sampled && m.sampling.enabled();
    if (all_sampled) {
        // The quadrature combination only exists when every member
        // brings a real interval: a CI-less member (a --samples=1
        // cell, whose half-width is NaN) contributes zero dispersion
        // information, and folding it in as zero would silently
        // *shrink* the group interval.  Such a group reports its CI
        // (and dispersion) as unavailable instead.
        bool all_ci = true;
        double ci_sq = 0.0;
        double stddev = 0.0;
        for (const Metrics &m : runs) {
            avg.sampling.samples += m.sampling.samples;
            avg.sampling.meanIpc += m.sampling.meanIpc / n;
            avg.sampling.ffKips += m.sampling.ffKips / n;
            all_ci = all_ci && m.sampling.hasCi();
            stddev += m.sampling.ipcStdDev / n;
            ci_sq += m.sampling.ci95Half * m.sampling.ci95Half;
        }
        avg.sampling.fastForward = runs.front().sampling.fastForward;
        avg.sampling.warmup = runs.front().sampling.warmup;
        avg.sampling.detail = runs.front().sampling.detail;
        double nan = std::numeric_limits<double>::quiet_NaN();
        avg.sampling.ipcStdDev = all_ci ? stddev : nan;
        avg.sampling.ci95Half = all_ci ? std::sqrt(ci_sq) / n : nan;
    }
    return avg;
}

double
studentT95(int df)
{
    // Two-sided 95% critical values, df = 1..30; the asymptotic
    // normal value beyond (the standard printed table).
    static const double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    // No degrees of freedom means no dispersion estimate at all: the
    // honest answer is "no critical value", not 0.0 (which once turned
    // a single-observation run into a zero-width, perfectly-confident
    // interval downstream).
    if (df < 1)
        return std::numeric_limits<double>::quiet_NaN();
    if (df <= 30)
        return kTable[df - 1];
    return 1.960;
}

double
weightedSpeedup(const Metrics &smt, const std::vector<Metrics> &alone)
{
    if (smt.threads.size() != alone.size() || alone.empty())
        throw std::runtime_error(
            "weightedSpeedup: need one standalone run per SMT thread");
    double ws = 0.0;
    for (std::size_t i = 0; i < alone.size(); ++i) {
        if (alone[i].ipc == 0.0)
            throw std::runtime_error(
                "weightedSpeedup: standalone IPC is zero for thread " +
                std::to_string(i));
        ws += smt.threads[i].ipc / alone[i].ipc;
    }
    return ws;
}

} // namespace ltp
