#include "sim/metrics.hh"

#include <sstream>

#include "common/logging.hh"

namespace ltp {

std::string
Metrics::toString() const
{
    std::ostringstream os;
    os << config << "/" << workload
       << strprintf(": ipc=%.3f cpi=%.3f", ipc, cpi)
       << strprintf(" mlp=%.2f", avgOutstanding)
       << strprintf(" iq=%.1f rf=%.1f lq=%.1f sq=%.1f", iqOcc, rfOcc,
                    lqOcc, sqOcc);
    if (ltpOcc > 0.0 || parked > 0)
        os << strprintf(" ltp=%.1f parked=%.0f%%", ltpOcc,
                        100.0 * parkedFrac);
    return os.str();
}

Metrics
averageMetrics(const std::vector<Metrics> &runs, const std::string &label)
{
    sim_assert(!runs.empty());
    Metrics avg;
    avg.config = runs.front().config;
    avg.workload = label;
    double n = double(runs.size());

    for (const Metrics &m : runs) {
        avg.insts += m.insts;
        avg.cycles += m.cycles;
        avg.ipc += m.ipc / n;
        avg.cpi += m.cpi / n;
        avg.avgOutstanding += m.avgOutstanding / n;
        avg.avgLoadLatency += m.avgLoadLatency / n;
        avg.dramReads += m.dramReads;
        avg.iqOcc += m.iqOcc / n;
        avg.robOcc += m.robOcc / n;
        avg.lqOcc += m.lqOcc / n;
        avg.sqOcc += m.sqOcc / n;
        avg.rfOcc += m.rfOcc / n;
        avg.ltpOcc += m.ltpOcc / n;
        avg.ltpRegsOcc += m.ltpRegsOcc / n;
        avg.ltpLoadsOcc += m.ltpLoadsOcc / n;
        avg.ltpStoresOcc += m.ltpStoresOcc / n;
        avg.ltpEnabledFrac += m.ltpEnabledFrac / n;
        avg.parkedFrac += m.parkedFrac / n;
        avg.parked += m.parked;
        avg.unparked += m.unparked;
        avg.forcedUnparks += m.forcedUnparks;
        avg.pressureUnparks += m.pressureUnparks;
        avg.llpredAccuracy += m.llpredAccuracy / n;
        avg.bpAccuracy += m.bpAccuracy / n;
        avg.energy.iq += m.energy.iq / n;
        avg.energy.rf += m.energy.rf / n;
        avg.energy.ltp += m.energy.ltp / n;
        avg.ed2p += m.ed2p / n;
        avg.edp += m.edp / n;
    }
    return avg;
}

} // namespace ltp
