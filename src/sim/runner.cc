#include "sim/runner.hh"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hh"

namespace ltp {

SweepSpec &
SweepSpec::add(const std::string &row, const std::string &series,
               const SimConfig &cfg, const std::string &kernel)
{
    jobs.push_back(SweepJob{row, series, cfg, {kernel}, kernel});
    return *this;
}

SweepSpec &
SweepSpec::addGroup(const std::string &row, const std::string &series,
                    const SimConfig &cfg,
                    const std::vector<std::string> &kernels,
                    const std::string &label)
{
    jobs.push_back(SweepJob{row, series, cfg, kernels, label});
    return *this;
}

SweepSpec
SweepSpec::cross(const std::string &name,
                 const std::vector<SimConfig> &configs,
                 const std::vector<std::string> &kernels,
                 const RunLengths &lengths)
{
    SweepSpec spec;
    spec.name = name;
    spec.lengths = lengths;
    for (const std::string &kernel : kernels)
        for (const SimConfig &cfg : configs)
            spec.add(kernel, cfg.name, cfg, kernel);
    return spec;
}

std::size_t
SweepSpec::simulationCount() const
{
    std::size_t n = 0;
    for (const SweepJob &job : jobs)
        n += job.kernels.size();
    return n;
}

ResultGrid::ResultGrid(ResultGrid &&other) noexcept
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    grid_ = std::move(other.grid_);
}

ResultGrid &
ResultGrid::operator=(ResultGrid &&other) noexcept
{
    if (this != &other) {
        std::scoped_lock lock(mutex_, other.mutex_);
        grid_ = std::move(other.grid_);
    }
    return *this;
}

void
ResultGrid::put(const std::string &row, const std::string &series,
                const Metrics &m)
{
    std::lock_guard<std::mutex> lock(mutex_);
    grid_[row][series] = m;
}

const Metrics &
ResultGrid::at(const std::string &row, const std::string &series) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto r = grid_.find(row);
    if (r == grid_.end())
        throw std::out_of_range("ResultGrid: no results for row '" + row +
                                "'");
    auto c = r->second.find(series);
    if (c == r->second.end())
        throw std::out_of_range("ResultGrid: no results for series '" +
                                series + "' in row '" + row + "'");
    return c->second;
}

bool
ResultGrid::has(const std::string &row, const std::string &series) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto r = grid_.find(row);
    return r != grid_.end() && r->second.count(series) != 0;
}

std::vector<std::string>
ResultGrid::rows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(grid_.size());
    for (const auto &[row, series] : grid_)
        out.push_back(row);
    return out;
}

std::vector<std::string>
ResultGrid::series(const std::string &row) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    auto r = grid_.find(row);
    if (r == grid_.end())
        return out;
    out.reserve(r->second.size());
    for (const auto &[series, m] : r->second)
        out.push_back(series);
    return out;
}

std::size_t
ResultGrid::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &[row, series] : grid_)
        n += series.size();
    return n;
}

Runner::Runner(int threads, ExecBackendPtr backend)
    : threads_(threads > 0 ? threads : ThreadPool::defaultThreads()),
      backend_(backend ? std::move(backend) : LocalBackend::instance())
{
}

namespace {

/**
 * The unit of sharding: one (config, kernel) simulation.  Group jobs
 * expand to one shard per kernel and reduce with averageMetrics in
 * kernel order, so the average is bit-identical however the shards
 * were scheduled.
 */
struct Shard
{
    std::size_t job;
    std::size_t kernel;
};

CellResult
runShard(ExecBackend &backend, const SweepSpec &spec, const Shard &shard)
{
    const SweepJob &job = spec.jobs[shard.job];
    const std::string &workload = job.kernels[shard.kernel];
    // Key derivation (canonical config JSON + SHA-256) is skipped for
    // backends that don't address results by content, so the pure
    // local path pays nothing for the cache machinery.
    CellKey key;
    if (backend.wantsKey())
        key = cellKeyFor(job.cfg, workload, spec.lengths,
                         &spec.sampling);
    return backend.runCell(key, job.cfg, workload, spec.lengths,
                           spec.sampling);
}

} // namespace

SweepResult
Runner::run(const SweepSpec &spec, const ProgressFn &progress) const
{
    auto start = std::chrono::steady_clock::now();

    std::vector<Shard> shards;
    shards.reserve(spec.simulationCount());
    for (std::size_t j = 0; j < spec.jobs.size(); ++j)
        for (std::size_t k = 0; k < spec.jobs[j].kernels.size(); ++k)
            shards.push_back(Shard{j, k});

    // Per-shard Metrics, indexed like `shards` so reduction order is
    // independent of completion order.
    std::vector<Metrics> results(shards.size());
    std::size_t cache_hits = 0;

    if (threads_ == 1) {
        // The serial path reports through the same ProgressFn as the
        // sharded one: once per completed cell, hits included.
        for (std::size_t i = 0; i < shards.size(); ++i) {
            CellResult r = runShard(*backend_, spec, shards[i]);
            results[i] = std::move(r.metrics);
            cache_hits += r.cacheHit ? 1 : 0;
            if (progress)
                progress(Progress{i + 1, shards.size(), cache_hits,
                                  backend_->currentPhase()});
        }
    } else {
        // Workers bump `done`/`hits` as shards finish; the
        // coordinating thread polls them while waiting so the
        // heartbeat reflects out-of-order completions, not just the
        // next future in line.
        std::atomic<std::size_t> done{0};
        std::atomic<std::size_t> hits{0};
        ThreadPool pool(threads_);
        std::vector<std::future<Metrics>> futures;
        futures.reserve(shards.size());
        ExecBackend &backend = *backend_;
        for (const Shard &shard : shards)
            futures.push_back(
                pool.submit([&backend, &spec, shard, &done, &hits]() {
                    CellResult r = runShard(backend, spec, shard);
                    if (r.cacheHit)
                        hits.fetch_add(1, std::memory_order_relaxed);
                    done.fetch_add(1, std::memory_order_relaxed);
                    return std::move(r.metrics);
                }));
        for (std::size_t i = 0; i < futures.size(); ++i) {
            if (progress) {
                while (futures[i].wait_for(
                           std::chrono::milliseconds(250)) !=
                       std::future_status::ready)
                    progress(Progress{
                        done.load(std::memory_order_relaxed),
                        shards.size(),
                        hits.load(std::memory_order_relaxed),
                        backend.currentPhase()});
            }
            results[i] = futures[i].get();
        }
        cache_hits = hits.load(std::memory_order_relaxed);
        if (progress)
            progress(Progress{shards.size(), shards.size(),
                              cache_hits, std::string()});
    }

    SweepResult out;
    out.name = spec.name;
    out.threads = threads_;
    out.backend = backend_->name();
    out.simulations = shards.size();
    out.cacheHits = cache_hits;

    std::size_t next = 0;
    for (const SweepJob &job : spec.jobs) {
        if (job.kernels.size() == 1) {
            out.grid.put(job.row, job.series, results[next]);
            next += 1;
        } else {
            std::vector<Metrics> group(results.begin() + next,
                                       results.begin() + next +
                                           job.kernels.size());
            out.grid.put(job.row, job.series,
                         averageMetrics(group, job.label));
            next += job.kernels.size();
        }
    }

    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    return out;
}

} // namespace ltp
