/**
 * @file
 * Host-side simulator-throughput benchmark (the perf trajectory).
 *
 * Measures simulated kilo-instructions per wall-clock second (kIPS)
 * over representative suite kernels and whole scenario sweeps, always
 * single-threaded so the number tracks per-core cycle-kernel speed,
 * not host parallelism.  Reached via `ltp bench` and the standalone
 * `bench_simspeed` binary; results are archived as BENCH_simspeed.json
 * and gated in CI against bench/simspeed_baseline.json (fail on >25%
 * regression).
 *
 * "Simulated instructions" counts the detailed-model region only
 * (pipeline warm + measured detail); the functional cache warm runs
 * too — its cost is inside the wall time — but its instructions are
 * not credited, so kIPS is a conservative cycle-kernel throughput.
 */

#ifndef LTP_SIM_SIMSPEED_HH
#define LTP_SIM_SIMSPEED_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace ltp {

/** What to measure. */
struct SimSpeedOptions
{
    bool quick = false;      ///< fewer kernels, shorter staging
    /**
     * Attach a per-stage tick profiler to every kernel cell (the
     * `ltp bench --profile` mode): each cell's wall time is
     * attributed to pipeline stages (ticket events, wakeup, rename,
     * ...) so a throughput regression names its stage from the CI
     * artifact alone.  The clock reads perturb the measured kIPS a
     * few percent, so profiled runs are for diagnosis, not gating.
     */
    bool profile = false;
    /**
     * Best-of-N repetitions per cell: every cell is simulated @c reps
     * times and the fastest wall time is kept.  kIPS measures the
     * simulator, not the host scheduler, and min-of-N is the standard
     * way to strip scheduler/frequency noise from ~25 ms cells (the
     * committed BENCH_simspeed.json is produced with --reps=3).
     * Forced to 1 when @c profile is set: stage attribution
     * accumulates across runs and would mismatch a min wall time.
     */
    int reps = 1;
    std::uint64_t seed = 1;
    RunLengths lengths = RunLengths::bench(); ///< per-kernel cells
    /** Scenario files swept serially (their own staging plans). */
    std::vector<std::string> scenarios;
    /**
     * Scenarios measured and archived but excluded from the gated
     * total (new scenario classes — e.g. the SMT pairs sweep — record
     * a perf trajectory before they grow a regression gate).
     */
    std::vector<std::string> reportOnlyScenarios;
};

/** One measured cell: a (config, kernel) run or a whole scenario. */
struct SimSpeedCell
{
    std::string label;  ///< kernel name or scenario name
    std::string config; ///< config name, or "scenario"
    std::size_t simulations = 1;
    std::uint64_t detailedInsts = 0; ///< pipeWarm + detail, summed
    double wallMs = 0.0;
    double kips = 0.0; ///< detailedInsts / wall seconds / 1000
    /** Per-stage attribution, filled by SimSpeedOptions::profile on
     *  kernel cells (scenario cells run through the Runner and are
     *  not instrumented). */
    TickProfile profile;

    bool profiled() const { return profile.ticks > 0; }
};

/** Full benchmark result. */
struct SimSpeedReport
{
    bool quick = false;
    std::uint64_t seed = 1;
    int reps = 1; ///< best-of-N wall times (SimSpeedOptions::reps)
    std::vector<SimSpeedCell> kernelCells;
    std::vector<SimSpeedCell> scenarioCells;
    /** Measured but ungated (not part of totalKips). */
    std::vector<SimSpeedCell> reportOnlyCells;
    std::uint64_t totalInsts = 0;
    double totalWallMs = 0.0;
    double totalKips = 0.0;

    /**
     * Reference kIPS by cell label (e.g. the pre-refactor number for
     * fig6_IQ), copied from the baseline file; emitted alongside the
     * measured value with the resulting speedup.
     */
    std::map<std::string, double> referenceKips;

    /** The BENCH_simspeed.json document. */
    std::string toJson() const;
};

/** Run the benchmark (always single-threaded simulations). */
SimSpeedReport runSimSpeedBench(const SimSpeedOptions &opts);

/**
 * Gate against a baseline file ({"total_kips": N, ...}).  Prints the
 * verdict; returns false when measured total kIPS falls below
 * @p failBelowFrac of the baseline (the CI perf-smoke failure).
 * A missing/invalid baseline file is a hard error (throws).
 */
bool checkSimSpeedBaseline(const SimSpeedReport &report,
                           const std::string &baselinePath,
                           double failBelowFrac = 0.75);

/** The baseline's reference_kips map (empty if absent). */
std::map<std::string, double>
loadReferenceKips(const std::string &baselinePath);

} // namespace ltp

#endif // LTP_SIM_SIMSPEED_HH
