/**
 * @file
 * Result archiving for sweeps: JSON and CSV emission so benches and CI
 * can persist a SweepResult (the BENCH_*.json perf trajectory), plus a
 * Metrics JSON round-trip used when re-reading archived results.
 *
 * The JSON dialect is deliberately small — flat objects of numbers and
 * strings, one nested object for the energy breakdown — parsed by a
 * self-contained reader (no third-party dependency).
 */

#ifndef LTP_SIM_REPORT_HH
#define LTP_SIM_REPORT_HH

#include <string>

#include "sim/metrics.hh"
#include "sim/runner.hh"

namespace ltp {

/** Serialize one Metrics as a JSON object (round-trip exact). */
std::string metricsToJson(const Metrics &m, int indent = 0);

/**
 * Parse a JSON object produced by metricsToJson.
 * @throws std::runtime_error on malformed input.
 */
Metrics metricsFromJson(const std::string &json);

/**
 * Serialize a whole sweep: name, shard/thread counts, wall-clock, and
 * every (row, series) cell's Metrics.
 */
std::string reportToJson(const SweepResult &result);

/** Flat CSV: row, series, then one column per Metrics field. */
std::string reportToCsv(const SweepResult &result);

/** Write @p text to @p path; fatal() if the file cannot be opened. */
void writeFile(const std::string &path, const std::string &text);

/**
 * Archive the JSON report at @p path ("1" selects the conventional
 * BENCH_<sweep name>.json) and print the summary line; shared by the
 * bench harnesses and the ltp driver.  @return the path written.
 */
std::string writeJsonReport(const SweepResult &result,
                            const std::string &path);

/** CSV sibling of writeJsonReport ("1" → BENCH_<sweep name>.csv). */
std::string writeCsvReport(const SweepResult &result,
                           const std::string &path);

} // namespace ltp

#endif // LTP_SIM_REPORT_HH
