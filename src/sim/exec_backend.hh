/**
 * @file
 * Pluggable execution backends for the Runner.
 *
 * The Runner used to call Simulator::runOnce directly; it is now a
 * scheduler over an ExecBackend, so where a cell's Metrics come from is
 * interchangeable:
 *
 *  - LocalBackend  — in-process simulation (the old behaviour, and the
 *    zero-overhead default: no keys are computed, nothing touches disk);
 *  - CachedBackend — decorator adding the content-addressed on-disk
 *    result cache: a hit skips simulation entirely, a miss delegates to
 *    the inner backend and persists the result;
 *  - ServeBackend  (serve/client.hh) — submits cells to an `ltp serve`
 *    daemon over TCP, which schedules them on its own pool, dedupes
 *    identical in-flight cells across clients, and answers from the
 *    shared cache.
 *
 * runCell() must be thread-safe: the Runner invokes it concurrently
 * from pool workers.  The seed rides inside @p cfg (SimConfig::seed)
 * and is part of the cell key via the canonical config JSON.
 */

#ifndef LTP_SIM_EXEC_BACKEND_HH
#define LTP_SIM_EXEC_BACKEND_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "sample/sample_plan.hh"
#include "sim/cell_key.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/result_cache.hh"
#include "sim/simulator.hh"

namespace ltp {

/** What one cell execution produced, and whether it was recomputed. */
struct CellResult
{
    Metrics metrics;
    bool cacheHit = false; ///< answered from a cache (local or remote)
};

/** Where cells run: in-process, through the cache, or on a daemon. */
class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    /** Short name for logs and summaries ("local", "cache", "serve"). */
    virtual std::string name() const = 0;

    /**
     * True when the backend addresses results by CellKey; the Runner
     * only derives keys (config canonicalization + SHA-256) for
     * backends that use them, so the pure-local path stays free of
     * hashing overhead.
     */
    virtual bool wantsKey() const { return false; }

    /**
     * Produce the Metrics of one cell.  @p key is empty unless
     * wantsKey().  @p sampling selects interval sampling when
     * enabled(); the default (disabled) plan runs full detail.
     * Thread-safe; blocking.
     * @throws std::runtime_error on unknown workloads or, for remote
     *         backends, transport failures.
     */
    virtual CellResult runCell(const CellKey &key, const SimConfig &cfg,
                               const std::string &workload,
                               const RunLengths &lengths,
                               const SamplePlan &sampling) = 0;

    /**
     * The most recent sampling phase label ("fast-forward 3/8",
     * "warmup 3/8", "sample 3/8") reported by a cell this backend is
     * currently running, or "" outside sampled runs.  Thread-safe;
     * display-only (concurrent cells share one label, last write
     * wins).
     */
    virtual std::string currentPhase() const { return std::string(); }
};

using ExecBackendPtr = std::shared_ptr<ExecBackend>;

/** In-process simulation (the serial/thread-pool reference). */
class LocalBackend : public ExecBackend
{
  public:
    std::string name() const override { return "local"; }

    CellResult runCell(const CellKey &key, const SimConfig &cfg,
                       const std::string &workload,
                       const RunLengths &lengths,
                       const SamplePlan &sampling) override;

    std::string currentPhase() const override;

    /** The process-wide shared instance (the Runner's default). */
    static ExecBackendPtr instance();

  private:
    mutable std::mutex phase_mutex_;
    std::string phase_;
};

/** Content-addressed cache decorator over any inner backend. */
class CachedBackend : public ExecBackend
{
  public:
    CachedBackend(ExecBackendPtr inner,
                  std::shared_ptr<ResultCache> cache);

    std::string name() const override
    {
        return "cache(" + inner_->name() + ")";
    }

    bool wantsKey() const override { return true; }

    CellResult runCell(const CellKey &key, const SimConfig &cfg,
                       const std::string &workload,
                       const RunLengths &lengths,
                       const SamplePlan &sampling) override;

    std::string currentPhase() const override
    {
        return inner_->currentPhase();
    }

    const ResultCache &cache() const { return *cache_; }

    /// @name Lifetime hit/miss counters (thread-safe)
    /// @{
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    /// @}

  private:
    ExecBackendPtr inner_;
    std::shared_ptr<ResultCache> cache_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace ltp

#endif // LTP_SIM_EXEC_BACKEND_HH
