#include "sim/exec_backend.hh"

#include "sample/sampler.hh"

namespace ltp {

CellResult
LocalBackend::runCell(const CellKey &, const SimConfig &cfg,
                      const std::string &workload,
                      const RunLengths &lengths,
                      const SamplePlan &sampling)
{
    if (sampling.enabled()) {
        Metrics m = Sampler::runOnce(
            cfg, workload, sampling, [this](const std::string &p) {
                std::lock_guard<std::mutex> lock(phase_mutex_);
                phase_ = p;
            });
        {
            std::lock_guard<std::mutex> lock(phase_mutex_);
            phase_.clear();
        }
        return CellResult{std::move(m), false};
    }
    return CellResult{Simulator::runOnce(cfg, workload, lengths), false};
}

std::string
LocalBackend::currentPhase() const
{
    std::lock_guard<std::mutex> lock(phase_mutex_);
    return phase_;
}

ExecBackendPtr
LocalBackend::instance()
{
    static ExecBackendPtr shared = std::make_shared<LocalBackend>();
    return shared;
}

CachedBackend::CachedBackend(ExecBackendPtr inner,
                             std::shared_ptr<ResultCache> cache)
    : inner_(std::move(inner)), cache_(std::move(cache))
{
}

CellResult
CachedBackend::runCell(const CellKey &key, const SimConfig &cfg,
                       const std::string &workload,
                       const RunLengths &lengths,
                       const SamplePlan &sampling)
{
    Metrics cached;
    if (cache_->lookup(key, &cached)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return CellResult{std::move(cached), true};
    }
    CellResult fresh =
        inner_->runCell(key, cfg, workload, lengths, sampling);
    cache_->store(key, cfg, lengths, fresh.metrics);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
}

} // namespace ltp
