#include "sim/exec_backend.hh"

namespace ltp {

CellResult
LocalBackend::runCell(const CellKey &, const SimConfig &cfg,
                      const std::string &workload,
                      const RunLengths &lengths)
{
    return CellResult{Simulator::runOnce(cfg, workload, lengths), false};
}

ExecBackendPtr
LocalBackend::instance()
{
    static ExecBackendPtr shared = std::make_shared<LocalBackend>();
    return shared;
}

CachedBackend::CachedBackend(ExecBackendPtr inner,
                             std::shared_ptr<ResultCache> cache)
    : inner_(std::move(inner)), cache_(std::move(cache))
{
}

CellResult
CachedBackend::runCell(const CellKey &key, const SimConfig &cfg,
                       const std::string &workload,
                       const RunLengths &lengths)
{
    Metrics cached;
    if (cache_->lookup(key, &cached)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return CellResult{std::move(cached), true};
    }
    CellResult fresh = inner_->runCell(key, cfg, workload, lengths);
    cache_->store(key, cfg, lengths, fresh.metrics);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
}

} // namespace ltp
