/**
 * @file
 * Content-addressed identity of one sweep cell.
 *
 * A cell's Metrics are a pure function of (config, workload, staging,
 * seed) — PR 2's exact SimConfig JSON round-trip and PR 3's
 * golden/replay harness prove it bit for bit.  This module turns that
 * purity into a stable SHA-256 key:
 *
 *  - the config (seed included) is serialized and re-rendered in
 *    canonical form (sorted keys, compact), so the key is independent
 *    of field order and formatting;
 *  - the workload contributes a content identity, not a spelling:
 *    kernels by name, `trace:<path>` members by the kernel name and
 *    CRC-32 stored in the `.lttr` file (so a renamed or copied trace
 *    file keys identically, and a re-recorded one does not), `smt:`
 *    tuples decomposed per member;
 *  - the staging plan and the Metrics schema version round out the
 *    preimage, so staging changes and format bumps never alias.
 *
 * The preimage is kept alongside the hex digest for observability
 * (`ltp cache ls`, wire-protocol debugging).
 */

#ifndef LTP_SIM_CELL_KEY_HH
#define LTP_SIM_CELL_KEY_HH

#include <string>

#include "sample/sample_plan.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

namespace ltp {

/** Version salt of the key derivation itself: bump on any change to
 *  the preimage layout so old cache entries can never alias. */
inline constexpr int kCellKeyVersion = 1;

/** Stable identity of one (config, workload, staging, seed) cell. */
struct CellKey
{
    std::string hex;      ///< 64-char SHA-256 digest — the cache address
    std::string workload; ///< content identity (debugging / `cache ls`)

    bool empty() const { return hex.empty(); }
};

/** Canonical single-line rendering of a JSON text: parse + compact
 *  re-render with sorted keys, so field order and whitespace cannot
 *  affect a key.  @throws std::runtime_error on malformed input. */
std::string canonicalJson(const std::string &text);

/**
 * Content identity of a workload name: "kernel/<name>" for DSL
 * kernels, "trace/<kernel>@crc32:<hex>" for `trace:<path>` replays
 * (reads the file via the process-wide trace cache), and
 * "smt[<a>+<b>]" over member identities for `smt:` tuples.
 * @throws std::runtime_error on unreadable or malformed trace files.
 */
std::string workloadIdentity(const std::string &name);

/**
 * Derive the cell key.  @p cfg.seed rides in the config JSON.
 *
 * @p sampling, when non-null and enabled, contributes a `sampling:`
 * line to the preimage so a sampled run's (approximate) Metrics can
 * never alias the full-detail run of the same cell; a null or
 * disabled plan contributes nothing, keeping every pre-sampling key
 * (and cache entry) byte-identical.
 */
CellKey cellKeyFor(const SimConfig &cfg, const std::string &workload,
                   const RunLengths &lengths,
                   const SamplePlan *sampling = nullptr);

} // namespace ltp

#endif // LTP_SIM_CELL_KEY_HH
