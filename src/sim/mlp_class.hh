/**
 * @file
 * Section 4.1 MLP-sensitivity classification.
 *
 * "To identify the sensitive simulation points, we compared the
 *  speedup, average cache latency, and number of outstanding memory
 *  requests per cycle when run on a processor with a 32-entry IQ vs. a
 *  processor with a 256-entry IQ.  Simulation points that had an
 *  average cache latency greater than the L2 latency, and showed more
 *  than 5% speedup and 10% more outstanding memory requests with the
 *  larger IQ were categorized as MLP-sensitive."
 */

#ifndef LTP_SIM_MLP_CLASS_HH
#define LTP_SIM_MLP_CLASS_HH

#include <string>
#include <vector>

#include "sim/exec_backend.hh"
#include "sim/simulator.hh"

namespace ltp {

/** Outcome of classifying one kernel. */
struct MlpClassification
{
    std::string kernel;
    bool sensitive = false;
    double speedup = 0.0;          ///< IPC(IQ256) / IPC(IQ32)
    double outstandingRatio = 0.0; ///< outstanding(IQ256)/outstanding(IQ32)
    double avgLoadLatency = 0.0;   ///< at IQ256
};

/** Apply the Section 4.1 criteria to one kernel. */
MlpClassification classifyMlp(const std::string &kernel,
                              const RunLengths &lengths,
                              std::uint64_t seed = 1);

/** Derive the criteria outcome from the two already-run points. */
MlpClassification deriveMlpClassification(const std::string &kernel,
                                          const Metrics &m32,
                                          const Metrics &m256,
                                          double l2Latency);

/** The suite partitioned by the runtime classifier. */
struct SuiteGroups
{
    std::vector<std::string> sensitive;
    std::vector<std::string> insensitive;
    std::vector<MlpClassification> details;
};

/**
 * Classify every kernel in the registered suite.  The 2 × N-kernel
 * run matrix is sharded across @p threads workers (1 = serial,
 * <= 0 = hardware concurrency); grouping is identical either way.
 * @p backend routes the classification cells like any sweep cell
 * (null = in-process), so a cached or served run skips re-simulating
 * the classification matrix too.
 */
SuiteGroups classifySuite(const RunLengths &lengths,
                          std::uint64_t seed = 1, int threads = 1,
                          ExecBackendPtr backend = nullptr);

} // namespace ltp

#endif // LTP_SIM_MLP_CLASS_HH
