#include "sim/simspeed.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "trace/suite.hh"

namespace ltp {

namespace {

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
kips(std::uint64_t insts, double wall_ms)
{
    return wall_ms > 0.0 ? double(insts) / wall_ms : 0.0;
}

/** The per-kernel measurement set: representative, MLP-diverse. */
std::vector<std::string>
benchKernels(bool quick)
{
    if (quick)
        return {"paper_loop", "graph_walk", "sparse_gather",
                "dense_compute"};
    std::vector<std::string> all;
    for (const SuiteEntry &e : kernelSuite())
        all.push_back(e.name);
    return all;
}

std::string
cellJson(const SimSpeedCell &c,
         const std::map<std::string, double> &refs)
{
    JsonObjectBuilder o;
    o.str("label", c.label);
    o.str("config", c.config);
    o.num("simulations", double(c.simulations));
    o.num("detailed_insts", double(c.detailedInsts));
    o.num("wall_ms", c.wallMs);
    o.num("kips", c.kips);
    auto ref = refs.find(c.label);
    if (ref != refs.end()) {
        o.num("reference_kips", ref->second);
        if (ref->second > 0.0)
            o.num("speedup_vs_reference", c.kips / ref->second);
    }
    if (c.profiled()) {
        JsonObjectBuilder p;
        p.u64("ticks", c.profile.ticks);
        p.u64("total_ns", c.profile.totalNs());
        JsonObjectBuilder stages;
        for (int s = 0; s < TickProfile::kNumStages; ++s)
            stages.u64(TickProfile::stageName(s),
                       c.profile.ns[std::size_t(s)]);
        p.field("stage_ns", stages.render(8));
        o.field("profile", p.render(6));
    }
    return o.render(4);
}

} // namespace

std::string
SimSpeedReport::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"name\": \"simspeed\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"seed\": " << seed << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"threads\": 1,\n";
    auto emitCells = [&](const char *key,
                         const std::vector<SimSpeedCell> &cells) {
        out << "  \"" << key << "\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << "    " << cellJson(cells[i], referenceKips);
            out << (i + 1 < cells.size() ? ",\n" : "\n");
        }
        out << "  ],\n";
    };
    emitCells("kernels", kernelCells);
    emitCells("scenarios", scenarioCells);
    emitCells("report_only_scenarios", reportOnlyCells);
    out << "  \"total\": {\"detailed_insts\": " << totalInsts
        << ", \"wall_ms\": " << jsonNum(totalWallMs)
        << ", \"kips\": " << jsonNum(totalKips) << "}\n";
    out << "}\n";
    return out.str();
}

SimSpeedReport
runSimSpeedBench(const SimSpeedOptions &opts)
{
    SimSpeedReport report;
    report.quick = opts.quick;
    report.seed = opts.seed;
    // Profiled runs keep reps=1: stage times accumulate across runs
    // and would not match a best-of-N wall time.
    int reps = opts.profile ? 1 : std::max(1, opts.reps);
    report.reps = reps;

    std::uint64_t per_sim =
        opts.lengths.pipeWarm + opts.lengths.detail;
    std::vector<SimConfig> configs = {
        SimConfig::baseline(), SimConfig::ltpProposal(LtpMode::NRNU)};

    for (const std::string &kernel : benchKernels(opts.quick)) {
        for (const SimConfig &base : configs) {
            SimConfig cfg = base;
            cfg.seed = opts.seed;
            SimSpeedCell cell;
            cell.label = kernel;
            cell.config = cfg.name;
            cell.detailedInsts = per_sim;
            for (int r = 0; r < reps; ++r) {
                auto start = std::chrono::steady_clock::now();
                if (opts.profile) {
                    Simulator sim(cfg, kernel, opts.lengths);
                    sim.core().setProfiler(&cell.profile);
                    sim.run();
                } else {
                    Simulator::runOnce(cfg, kernel, opts.lengths);
                }
                double ms = msSince(start);
                if (r == 0 || ms < cell.wallMs)
                    cell.wallMs = ms;
            }
            cell.kips = kips(cell.detailedInsts, cell.wallMs);
            report.kernelCells.push_back(cell);
        }
    }

    // A multiprogrammed (smt:) cell commits its quota *per thread*;
    // crediting one quota keeps the number a conservative per-cell
    // throughput, consistent with the single-threaded cells.
    auto timeScenario = [reps](const std::string &path) {
        Scenario scenario = loadScenarioFile(path);
        SweepSpec spec = scenario.compile(/*threads=*/1);
        std::uint64_t per_cell =
            scenario.lengths.pipeWarm + scenario.lengths.detail;
        SimSpeedCell cell;
        for (int r = 0; r < reps; ++r) {
            auto start = std::chrono::steady_clock::now();
            Runner(/*threads=*/1).run(spec);
            double ms = msSince(start);
            if (r == 0 || ms < cell.wallMs)
                cell.wallMs = ms;
        }
        cell.label = spec.name;
        cell.config = "scenario";
        cell.simulations = spec.simulationCount();
        cell.detailedInsts = per_cell * cell.simulations;
        cell.kips = kips(cell.detailedInsts, cell.wallMs);
        return cell;
    };
    for (const std::string &path : opts.scenarios)
        report.scenarioCells.push_back(timeScenario(path));
    // Report-only cells are measured identically but stay out of the
    // gated total below.
    for (const std::string &path : opts.reportOnlyScenarios)
        report.reportOnlyCells.push_back(timeScenario(path));

    for (const auto &cells :
         {report.kernelCells, report.scenarioCells}) {
        for (const SimSpeedCell &c : cells) {
            report.totalInsts += c.detailedInsts;
            report.totalWallMs += c.wallMs;
        }
    }
    report.totalKips = kips(report.totalInsts, report.totalWallMs);
    return report;
}

namespace {

JsonValue
loadBaseline(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("simspeed baseline not readable: " +
                                 path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseJson(text.str());
}

} // namespace

std::map<std::string, double>
loadReferenceKips(const std::string &baselinePath)
{
    std::map<std::string, double> refs;
    JsonValue root = loadBaseline(baselinePath);
    auto it = root.object.find("reference_kips");
    if (it != root.object.end() && it->second.isObject())
        for (const auto &[label, v] : it->second.object)
            if (v.isNumber())
                refs[label] = v.num;
    return refs;
}

bool
checkSimSpeedBaseline(const SimSpeedReport &report,
                      const std::string &baselinePath,
                      double failBelowFrac)
{
    JsonValue root = loadBaseline(baselinePath);
    auto it = root.object.find("total_kips");
    if (it == root.object.end() || !it->second.isNumber())
        throw std::runtime_error(
            "simspeed baseline missing numeric total_kips: " +
            baselinePath);
    double baseline = it->second.num;
    double floor = baseline * failBelowFrac;
    bool ok = report.totalKips >= floor;
    std::printf("simspeed check: measured %.1f kIPS vs baseline %.1f "
                "(floor %.1f at %.0f%%): %s\n",
                report.totalKips, baseline, floor,
                failBelowFrac * 100.0, ok ? "OK" : "REGRESSION");
    return ok;
}

} // namespace ltp
