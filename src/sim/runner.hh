/**
 * @file
 * Parallel, sharded experiment runner.
 *
 * The paper's evaluation is a cross-product of configurations × kernels
 * (Table 1 baseline vs. proposal, the Figure 6 limit sweeps, the
 * Figure 10/11 trade-offs).  A SweepSpec names every cell of such a
 * study up front; the Runner shards the resulting jobs across a
 * ThreadPool and collects them into a thread-safe ResultGrid.
 *
 * Determinism contract: a job's Metrics are a pure function of
 * (config, kernel, lengths, seed).  Every Simulator owns its Rng,
 * seeded deterministically per job (see SweepSpec::add), so a parallel
 * run is bit-identical to a serial run of the same spec — asserted by
 * tests/test_runner.cc.
 */

#ifndef LTP_SIM_RUNNER_HH
#define LTP_SIM_RUNNER_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/exec_backend.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

namespace ltp {

/**
 * One cell of a sweep: run @p cfg over @p kernels (group-averaged when
 * more than one) and file the result under (row, series).
 */
struct SweepJob
{
    std::string row;    ///< grid row key (e.g. a resource size)
    std::string series; ///< grid series key (e.g. an LTP mode)
    SimConfig cfg;
    std::vector<std::string> kernels; ///< >1 => arithmetic group average
    std::string label; ///< Metrics::workload for group averages
};

/** A named cross-product of simulations sharing one staging plan. */
struct SweepSpec
{
    std::string name = "sweep";
    RunLengths lengths;

    /** Interval-sampling plan shared by every cell; the default
     *  (disabled) plan runs full detail.  When enabled it joins the
     *  cell-key preimage, so sampled results never alias full ones. */
    SamplePlan sampling;

    std::vector<SweepJob> jobs;

    /** Append a single-kernel job. */
    SweepSpec &add(const std::string &row, const std::string &series,
                   const SimConfig &cfg, const std::string &kernel);

    /** Append a group-average job over @p kernels, labelled @p label. */
    SweepSpec &addGroup(const std::string &row, const std::string &series,
                        const SimConfig &cfg,
                        const std::vector<std::string> &kernels,
                        const std::string &label);

    /**
     * Full cross-product: one row per kernel, one series per config
     * (keyed by SimConfig::name).
     */
    static SweepSpec cross(const std::string &name,
                           const std::vector<SimConfig> &configs,
                           const std::vector<std::string> &kernels,
                           const RunLengths &lengths);

    /** Total number of simulations (group jobs count one per kernel). */
    std::size_t simulationCount() const;
};

/**
 * Keyed result store for sweeps: results[row][series] = Metrics.
 * Rows are typically resource sizes, series the LTP modes.  put() is
 * safe to call concurrently from pool workers.
 */
class ResultGrid
{
  public:
    ResultGrid() = default;
    ResultGrid(ResultGrid &&other) noexcept;
    ResultGrid &operator=(ResultGrid &&other) noexcept;

    void put(const std::string &row, const std::string &series,
             const Metrics &m);

    /** @throws std::out_of_range naming the missing (row, series). */
    const Metrics &at(const std::string &row,
                      const std::string &series) const;

    bool has(const std::string &row, const std::string &series) const;

    /** Row keys in insertion-independent (sorted) order. */
    std::vector<std::string> rows() const;

    /** Series keys present in @p row, sorted. */
    std::vector<std::string> series(const std::string &row) const;

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::map<std::string, Metrics>> grid_;
};

/** Everything a sweep produced, plus how it was produced. */
struct SweepResult
{
    std::string name;
    int threads = 1;
    std::string backend = "local";
    std::size_t simulations = 0;
    std::size_t cacheHits = 0; ///< cells answered by a cache layer
    double wallMs = 0.0;
    ResultGrid grid;
};

/** One heartbeat sample: cells finished, cells total, cache hits so
 *  far.  `hits` generalizes the old (done, total) pair for the cached
 *  and serve backends; it stays 0 on the pure-local path. */
struct Progress
{
    std::size_t done = 0;
    std::size_t total = 0;
    std::size_t hits = 0;
    /** Sampling phase label of a currently running cell
     *  ("fast-forward 3/8", "warmup 3/8", "sample 3/8"), or "" outside
     *  sampled runs.  Display-only. */
    std::string phase;
};

/**
 * Heartbeat callback for long sweeps.  Called from the coordinating
 * thread only — implementations need no locking — on every completed
 * shard in serial (threads == 1) runs and every ~250 ms in threaded
 * runs (plus once at completion), so `--threads=1` sweeps report
 * progress through the exact same path as sharded ones.
 */
using ProgressFn = std::function<void(const Progress &)>;

/**
 * Schedules a SweepSpec's jobs over an ExecBackend, sharded across a
 * fixed-size thread pool.  threads == 1 runs fully inline (the serial
 * reference); threads <= 0 selects the hardware concurrency.  The
 * default backend is the shared in-process LocalBackend; pass a
 * CachedBackend or ServeBackend to make the same sweep hit the
 * content-addressed cache or an `ltp serve` daemon instead.
 */
class Runner
{
  public:
    explicit Runner(int threads = 0, ExecBackendPtr backend = nullptr);

    int threads() const { return threads_; }
    ExecBackend &backend() const { return *backend_; }

    /** Run every job; blocks until the grid is complete. */
    SweepResult run(const SweepSpec &spec,
                    const ProgressFn &progress = {}) const;

  private:
    int threads_;
    ExecBackendPtr backend_;
};

} // namespace ltp

#endif // LTP_SIM_RUNNER_HH
