#include "sim/mlp_class.hh"

#include "trace/suite.hh"

namespace ltp {

MlpClassification
classifyMlp(const std::string &kernel, const RunLengths &lengths,
            std::uint64_t seed)
{
    SimConfig small = SimConfig::baseline().withIq(32).withSeed(seed);
    SimConfig big = SimConfig::baseline().withIq(256).withSeed(seed);

    Metrics m32 = Simulator::runOnce(small, kernel, lengths);
    Metrics m256 = Simulator::runOnce(big, kernel, lengths);

    MlpClassification out;
    out.kernel = kernel;
    out.speedup = m32.ipc != 0.0 ? m256.ipc / m32.ipc : 0.0;
    out.outstandingRatio = m32.avgOutstanding > 1e-9
                               ? m256.avgOutstanding / m32.avgOutstanding
                               : (m256.avgOutstanding > 1e-9 ? 10.0 : 0.0);
    out.avgLoadLatency = m256.avgLoadLatency;

    Cycle l2_lat = big.mem.l2.hitLatency;
    out.sensitive = out.avgLoadLatency > double(l2_lat) &&
                    out.speedup > 1.05 && out.outstandingRatio > 1.10;
    return out;
}

SuiteGroups
classifySuite(const RunLengths &lengths, std::uint64_t seed)
{
    SuiteGroups groups;
    for (const std::string &name : allKernelNames()) {
        MlpClassification c = classifyMlp(name, lengths, seed);
        groups.details.push_back(c);
        if (c.sensitive)
            groups.sensitive.push_back(name);
        else
            groups.insensitive.push_back(name);
    }
    return groups;
}

} // namespace ltp
