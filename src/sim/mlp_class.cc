#include "sim/mlp_class.hh"

#include "sim/runner.hh"
#include "trace/suite.hh"

namespace ltp {

MlpClassification
deriveMlpClassification(const std::string &kernel, const Metrics &m32,
                        const Metrics &m256, double l2Latency)
{
    MlpClassification out;
    out.kernel = kernel;
    out.speedup = m32.ipc != 0.0 ? m256.ipc / m32.ipc : 0.0;
    out.outstandingRatio = m32.avgOutstanding > 1e-9
                               ? m256.avgOutstanding / m32.avgOutstanding
                               : (m256.avgOutstanding > 1e-9 ? 10.0 : 0.0);
    out.avgLoadLatency = m256.avgLoadLatency;
    out.sensitive = out.avgLoadLatency > l2Latency &&
                    out.speedup > 1.05 && out.outstandingRatio > 1.10;
    return out;
}

MlpClassification
classifyMlp(const std::string &kernel, const RunLengths &lengths,
            std::uint64_t seed)
{
    SimConfig small = SimConfig::baseline().withIq(32).withSeed(seed);
    SimConfig big = SimConfig::baseline().withIq(256).withSeed(seed);

    Metrics m32 = Simulator::runOnce(small, kernel, lengths);
    Metrics m256 = Simulator::runOnce(big, kernel, lengths);

    return deriveMlpClassification(kernel, m32, m256,
                                   double(big.mem.l2.hitLatency));
}

SuiteGroups
classifySuite(const RunLengths &lengths, std::uint64_t seed, int threads,
              ExecBackendPtr backend)
{
    SimConfig small =
        SimConfig::baseline().withIq(32).withSeed(seed).withName("IQ32");
    SimConfig big =
        SimConfig::baseline().withIq(256).withSeed(seed).withName("IQ256");

    SweepSpec spec = SweepSpec::cross("mlp_classification", {small, big},
                                      allKernelNames(), lengths);
    SweepResult result = Runner(threads, std::move(backend)).run(spec);

    SuiteGroups groups;
    for (const std::string &name : allKernelNames()) {
        MlpClassification c = deriveMlpClassification(
            name, result.grid.at(name, "IQ32"),
            result.grid.at(name, "IQ256"), double(big.mem.l2.hitLatency));
        groups.details.push_back(c);
        if (c.sensitive)
            groups.sensitive.push_back(name);
        else
            groups.insensitive.push_back(name);
    }
    return groups;
}

} // namespace ltp
