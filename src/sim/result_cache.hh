/**
 * @file
 * Content-addressed, on-disk Metrics store.
 *
 * Entries live under a cache root (default `~/.cache/ltp`, overridable
 * with --cache-dir or $LTP_CACHE_DIR), sharded by the first two digest
 * byte pairs — `aa/bb/<64-hex-key>.json` — so no directory ever holds
 * more than a few hundred files even at millions of entries.  Writes
 * go through a temp file + atomic rename, so concurrent writers
 * (pool workers, serve clients, parallel CI jobs) can never expose a
 * torn entry; the worst case is both computing the same cell and one
 * rename winning, which is harmless because entries are value-equal by
 * construction.
 *
 * Every entry is double schema-versioned: the envelope carries
 * kCacheSchemaVersion, the embedded Metrics its own schemaVersion.
 * Any mismatch, parse error, or key disagreement reads as a miss (and
 * is reclaimed by `ltp cache gc`), never as wrong data.
 */

#ifndef LTP_SIM_RESULT_CACHE_HH
#define LTP_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cell_key.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"

namespace ltp {

/** Envelope format version; bump on any layout change. */
inline constexpr int kCacheSchemaVersion = 1;

/** One on-disk entry, as listed by `ltp cache ls`. */
struct CacheEntryInfo
{
    std::string key;      ///< 64-hex cell key (file stem)
    std::string config;   ///< SimConfig::name at store time
    std::string workload; ///< content identity (cell_key.hh)
    std::uint64_t funcWarm = 0;
    std::uint64_t pipeWarm = 0;
    std::uint64_t detail = 0;
    std::uint64_t bytes = 0;
    bool valid = false;   ///< parses + schema versions accepted
};

/** Aggregate numbers for `ltp cache stat`. */
struct CacheStats
{
    std::uint64_t entries = 0;
    std::uint64_t invalid = 0; ///< unreadable or schema-mismatched
    std::uint64_t bytes = 0;
};

/** A content-addressed Metrics store rooted at one directory. */
class ResultCache
{
  public:
    /** @p dir empty selects defaultDir().  The directory is created
     *  lazily on first store, so a read-only sweep never mkdirs. */
    explicit ResultCache(const std::string &dir = "");

    /** $LTP_CACHE_DIR, else $XDG_CACHE_HOME/ltp, else ~/.cache/ltp. */
    static std::string defaultDir();

    const std::string &dir() const { return dir_; }

    /** @return true and fill @p out on a valid entry for @p key. */
    bool lookup(const CellKey &key, Metrics *out) const;

    /** Persist @p m under @p key (atomic rename; last writer wins). */
    void store(const CellKey &key, const SimConfig &cfg,
               const RunLengths &lengths, const Metrics &m) const;

    /** Every entry on disk, sorted by key; invalid ones flagged. */
    std::vector<CacheEntryInfo> list() const;

    CacheStats stats() const;

    /**
     * Remove invalid entries, plus valid ones older than @p maxAgeDays
     * (0 = no age limit), then — if @p maxBytes is nonzero and the
     * surviving entries still exceed it — evict oldest-mtime-first
     * until the total fits.  @return entries removed.
     */
    std::size_t gc(double maxAgeDays = 0.0,
                   std::uint64_t maxBytes = 0) const;

    /** Remove every entry.  @return entries removed. */
    std::size_t clear() const;

  private:
    std::string entryPath(const std::string &hexKey) const;

    std::string dir_;
};

} // namespace ltp

#endif // LTP_SIM_RESULT_CACHE_HH
