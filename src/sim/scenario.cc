#include "sim/scenario.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/suite.hh"
#include "trace/trace_workload.hh"

namespace ltp {

// ---------------------------------------------------------------------------
// Panels
// ---------------------------------------------------------------------------

Panels
classifyPanels(const RunLengths &lengths, std::uint64_t seed, int threads,
               ExecBackendPtr backend)
{
    Panels p;
    RunLengths quick = lengths;
    quick.detail = std::min<std::uint64_t>(lengths.detail, 20000);
    p.groups = classifySuite(quick, seed, threads, std::move(backend));
    return p;
}

std::vector<std::string>
panelKernels(const Panels &panels, const std::string &panel)
{
    if (panel == "mlp_sensitive")
        return panels.groups.sensitive;
    if (panel == "mlp_insensitive")
        return panels.groups.insensitive;
    return {panel};
}

std::vector<std::string>
panelNames(const Panels &p)
{
    return {p.astarLike, p.milcLike, "mlp_sensitive", "mlp_insensitive"};
}

std::string
panelRow(const std::string &panel, const std::string &point)
{
    return panel + "|" + point;
}

void
addPanelJob(SweepSpec &spec, const std::string &row,
            const std::string &series, const SimConfig &cfg,
            const Panels &panels, const std::string &panel)
{
    spec.addGroup(row, series, cfg, panelKernels(panels, panel), panel);
}

// ---------------------------------------------------------------------------
// Parsing helpers
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("scenario: " + what);
}

[[noreturn]] void
wrongKind(const JsonValue &v, const char *want, const std::string &path)
{
    bad(std::string("expected ") + want + " at " + path + ", got " +
        JsonValue::kindName(v.kind));
}

/** Reject keys outside @p known, naming the offending path. */
void
checkKeys(const JsonValue &obj, const std::vector<std::string> &known,
          const std::string &where)
{
    for (const auto &[key, val] : obj.object) {
        (void)val;
        if (std::find(known.begin(), known.end(), key) == known.end())
            bad("unknown key '" +
                (where.empty() ? key : where + "." + key) + "'");
    }
}

const JsonValue *
find(const JsonValue &obj, const char *key)
{
    auto it = obj.object.find(key);
    return it == obj.object.end() ? nullptr : &it->second;
}

std::string
strAt(const JsonValue &obj, const char *key, const std::string &where)
{
    const JsonValue *v = find(obj, key);
    if (!v)
        bad("missing required key '" + where + "." + key + "'");
    if (!v->isString())
        wrongKind(*v, "a string", where + "." + key);
    return v->str;
}

/** Checked non-negative integer from a JSON number (via its lexeme,
 *  so fractions and signs are rejected rather than truncated). */
std::uint64_t
u64FromJson(const JsonValue &v, const std::string &path)
{
    if (!v.isNumber())
        wrongKind(v, "a number", path);
    std::uint64_t out = 0;
    if (!u64FromLexeme(v.str, &out))
        bad("expected a non-negative integer at " + path + ", got '" +
            v.str + "'");
    return out;
}

/** A sweep value / axis label: a number lexeme or a plain string. */
std::string
scalarLexeme(const JsonValue &v, const std::string &path)
{
    if (v.isNumber())
        return v.str;
    if (v.isString())
        return v.str;
    wrongKind(v, "a number or string", path);
}

std::vector<std::string>
stringList(const JsonValue &v, const std::string &path)
{
    if (!v.isArray())
        wrongKind(v, "an array", path);
    std::vector<std::string> out;
    for (std::size_t i = 0; i < v.array.size(); ++i) {
        const JsonValue &e = v.array[i];
        if (!e.isString())
            wrongKind(e, "a string",
                      path + "[" + std::to_string(i) + "]");
        out.push_back(e.str);
    }
    return out;
}

bool
knownKernel(const std::string &name)
{
    for (const SuiteEntry &e : kernelSuite())
        if (e.name == name)
            return true;
    return false;
}

/** Resolve a (possibly relative) path against the scenario file dir. */
std::string
resolvePath(const std::string &baseDir, const std::string &path)
{
    if (baseDir.empty() || path.empty() || path[0] == '/')
        return path;
    return baseDir + "/" + path;
}

/** Validate (and cache) one `.lttr` file, naming @p where on errors. */
void
checkTraceFile(const std::string &path, const std::string &where)
{
    try {
        loadTraceCached(path);
    } catch (const std::runtime_error &e) {
        bad(std::string(e.what()) + " (at " + where + ")");
    }
}

/**
 * Validate a workload-name list: registered kernels, or `trace:<path>`
 * replays, whose relative paths are resolved in place against
 * @p baseDir and whose files must load.
 */
void
checkKernels(std::vector<std::string> &names, const std::string &where,
             const std::string &baseDir)
{
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::string at = where + "[" + std::to_string(i) + "]";
        if (isTraceName(names[i])) {
            names[i] =
                traceName(resolvePath(baseDir, tracePath(names[i])));
            checkTraceFile(tracePath(names[i]), at);
        } else if (!knownKernel(names[i])) {
            bad("unknown kernel '" + names[i] + "' at " + at);
        }
    }
}

RunLengths
parseLengths(const JsonValue &v, const std::string &where)
{
    if (v.isString()) {
        if (v.str == "default")
            return RunLengths{};
        if (v.str == "quick")
            return RunLengths::quick();
        if (v.str == "bench")
            return RunLengths::bench();
        bad("unknown lengths preset '" + v.str + "' at " + where +
            " (expected default|quick|bench or an object)");
    }
    if (!v.isObject())
        wrongKind(v, "an object or preset name", where);
    checkKeys(v, {"funcWarm", "pipeWarm", "detail"}, where);
    RunLengths out;
    auto u64At = [&](const char *key, std::uint64_t dflt) {
        const JsonValue *f = find(v, key);
        return f ? u64FromJson(*f, where + "." + key) : dflt;
    };
    out.funcWarm = u64At("funcWarm", out.funcWarm);
    out.pipeWarm = u64At("pipeWarm", out.pipeWarm);
    out.detail = u64At("detail", out.detail);
    return out;
}

/** The `sampling` block: interval-sampling plan for every cell. */
SamplePlan
parseSampling(const JsonValue &v, const std::string &where)
{
    if (v.isString()) {
        if (v.str == "default")
            return SamplePlan::defaults();
        bad("unknown sampling preset '" + v.str + "' at " + where +
            " (expected \"default\" or an object)");
    }
    if (!v.isObject())
        wrongKind(v, "an object or preset name", where);
    checkKeys(v, {"fastForward", "warmup", "detail", "samples"}, where);
    SamplePlan out = SamplePlan::defaults();
    auto u64At = [&](const char *key, std::uint64_t dflt) {
        const JsonValue *f = find(v, key);
        return f ? u64FromJson(*f, where + "." + key) : dflt;
    };
    out.fastForward = u64At("fastForward", out.fastForward);
    out.warmup = u64At("warmup", out.warmup);
    out.detail = u64At("detail", out.detail);
    out.samples = int(u64At("samples", std::uint64_t(out.samples)));
    if (out.samples <= 0)
        bad(where + ".samples must be positive");
    if (out.detail == 0)
        bad(where + ".detail must be positive");
    return out;
}

void
parseWorkloads(Scenario &sc, const JsonValue &v,
               const std::string &baseDir)
{
    if (!v.isObject())
        wrongKind(v, "an object", "workloads");
    checkKeys(v, {"kernels", "panels", "groups", "traces", "pairs"},
              "workloads");
    int forms = int(find(v, "kernels") != nullptr) +
                int(find(v, "panels") != nullptr) +
                int(find(v, "groups") != nullptr) +
                int(find(v, "traces") != nullptr) +
                int(find(v, "pairs") != nullptr);
    if (forms != 1)
        bad("workloads needs exactly one of kernels|panels|groups|"
            "traces|pairs");

    if (const JsonValue *k = find(v, "kernels")) {
        sc.workloadKind = Scenario::WorkloadKind::Kernels;
        sc.kernels = stringList(*k, "workloads.kernels");
        if (sc.kernels.empty())
            bad("workloads.kernels must not be empty");
        checkKernels(sc.kernels, "workloads.kernels", baseDir);
    } else if (const JsonValue *t = find(v, "traces")) {
        sc.workloadKind = Scenario::WorkloadKind::Traces;
        sc.traces = stringList(*t, "workloads.traces");
        if (sc.traces.empty())
            bad("workloads.traces must not be empty");
        for (std::size_t i = 0; i < sc.traces.size(); ++i) {
            sc.traces[i] =
                resolvePath(baseDir, tracePath(sc.traces[i]));
            checkTraceFile(sc.traces[i], "workloads.traces[" +
                                             std::to_string(i) + "]");
        }
    } else if (const JsonValue *p = find(v, "panels")) {
        sc.workloadKind = Scenario::WorkloadKind::Panels;
        if (p->isBool() && p->boolean)
            return; // all four paper panels
        sc.panels = stringList(*p, "workloads.panels");
        if (sc.panels.empty())
            bad("workloads.panels must not be empty");
        for (std::size_t i = 0; i < sc.panels.size(); ++i) {
            const std::string &name = sc.panels[i];
            if (name != "mlp_sensitive" && name != "mlp_insensitive" &&
                !knownKernel(name))
                bad("unknown panel '" + name + "' at workloads.panels[" +
                    std::to_string(i) +
                    "] (a kernel name, mlp_sensitive, or "
                    "mlp_insensitive)");
        }
    } else if (const JsonValue *p = find(v, "pairs")) {
        sc.workloadKind = Scenario::WorkloadKind::Pairs;
        if (!p->isArray() || p->array.empty())
            bad("workloads.pairs must be a non-empty array of kernel "
                "tuples");
        for (std::size_t i = 0; i < p->array.size(); ++i) {
            std::string at = "workloads.pairs[" + std::to_string(i) +
                             "]";
            std::vector<std::string> members = stringList(p->array[i],
                                                          at);
            if (members.size() < 2)
                bad(at + " needs at least two co-running workloads");
            checkKernels(members, at, baseDir);
            // '+' is the smt:<a>+<b> separator; a resolved member
            // containing one (a trace under a '+'-named directory)
            // could not be re-parsed from the tuple name.
            for (const std::string &member : members)
                if (member.find('+') != std::string::npos)
                    bad(at + " member '" + member +
                        "' contains '+', which the smt: tuple syntax "
                        "reserves as its separator (rename the path)");
            sc.pairs.push_back(std::move(members));
        }
    } else if (const JsonValue *g = find(v, "groups")) {
        sc.workloadKind = Scenario::WorkloadKind::Groups;
        if (!g->isObject())
            wrongKind(*g, "an object", "workloads.groups");
        for (const auto &[label, list] : g->object) {
            std::vector<std::string> ks =
                stringList(list, "workloads.groups." + label);
            if (ks.empty())
                bad("workloads.groups." + label + " must not be empty");
            checkKernels(ks, "workloads.groups." + label, baseDir);
            sc.groups.emplace_back(label, ks);
        }
        if (sc.groups.empty())
            bad("workloads.groups must not be empty");
    }
}

ScenarioConfig
parseConfig(const JsonValue &v, std::size_t index)
{
    std::string where = "configs[" + std::to_string(index) + "]";
    if (!v.isObject())
        wrongKind(v, "an object", where);
    checkKeys(v, {"series", "preset", "mode", "name", "set"}, where);

    ScenarioConfig sc;
    sc.where = where;
    sc.series = strAt(v, "series", where);
    if (const JsonValue *p = find(v, "preset")) {
        if (!p->isString())
            wrongKind(*p, "a string", where + ".preset");
        sc.preset = p->str;
        if (sc.preset != "baseline" && sc.preset != "ltpProposal" &&
            sc.preset != "limitStudy")
            bad("unknown preset '" + sc.preset + "' at " + where +
                ".preset (expected baseline|ltpProposal|limitStudy)");
    }
    if (const JsonValue *m = find(v, "mode")) {
        if (!m->isString())
            wrongKind(*m, "a string", where + ".mode");
        sc.mode = parseLtpMode(m->str, where + ".mode");
        sc.hasMode = true;
    }
    if (sc.preset == "limitStudy" && !sc.hasMode)
        bad("preset limitStudy requires a mode at " + where);
    if (sc.preset == "baseline" && sc.hasMode)
        bad("mode at " + where +
            ".mode is only valid with preset ltpProposal or limitStudy "
            "(use \"set\": {\"core.ltp.mode\": ...} to force it on the "
            "baseline)");
    if (const JsonValue *n = find(v, "name")) {
        if (!n->isString())
            wrongKind(*n, "a string", where + ".name");
        sc.nameOverride = n->str;
    }
    if (const JsonValue *s = find(v, "set")) {
        if (!s->isObject())
            wrongKind(*s, "an object", where + ".set");
        sc.set = *s;
    }
    return sc;
}

ScenarioSweep
parseSweep(const JsonValue &v, const std::vector<ScenarioConfig> &configs)
{
    if (!v.isObject())
        wrongKind(v, "an object", "sweep");
    checkKeys(v, {"path", "values", "baseline"}, "sweep");

    ScenarioSweep sw;
    sw.path = strAt(v, "path", "sweep");
    {
        std::vector<std::string> paths = configPaths();
        if (std::find(paths.begin(), paths.end(), sw.path) == paths.end())
            bad("unknown config path '" + sw.path + "' at sweep.path");
    }
    const JsonValue *vals = find(v, "values");
    if (!vals)
        bad("missing required key 'sweep.values'");
    if (!vals->isArray() || vals->array.empty())
        bad("sweep.values must be a non-empty array");
    for (std::size_t i = 0; i < vals->array.size(); ++i)
        sw.values.push_back(scalarLexeme(
            vals->array[i], "sweep.values[" + std::to_string(i) + "]"));

    if (const JsonValue *b = find(v, "baseline")) {
        if (!b->isObject())
            wrongKind(*b, "an object", "sweep.baseline");
        checkKeys(*b, {"series", "value"}, "sweep.baseline");
        sw.hasBaseline = true;
        sw.baselineSeries = strAt(*b, "series", "sweep.baseline");
        const JsonValue *val = find(*b, "value");
        if (!val)
            bad("missing required key 'sweep.baseline.value'");
        sw.baselineValue = scalarLexeme(*val, "sweep.baseline.value");
        bool found = false;
        for (const ScenarioConfig &c : configs)
            found = found || c.series == sw.baselineSeries;
        if (!found)
            bad("sweep.baseline.series '" + sw.baselineSeries +
                "' does not name any configs[].series");
    }
    return sw;
}

SweepJob
parseJob(const JsonValue &v, std::size_t index,
         const std::string &baseDir)
{
    std::string where = "jobs[" + std::to_string(index) + "]";
    if (!v.isObject())
        wrongKind(v, "an object", where);
    checkKeys(v, {"row", "series", "label", "kernels", "config"}, where);

    SweepJob job;
    job.row = strAt(v, "row", where);
    job.series = strAt(v, "series", where);
    const JsonValue *ks = find(v, "kernels");
    if (!ks)
        bad("missing required key '" + where + ".kernels'");
    job.kernels = stringList(*ks, where + ".kernels");
    if (job.kernels.empty())
        bad(where + ".kernels must not be empty");
    checkKernels(job.kernels, where + ".kernels", baseDir);
    if (const JsonValue *l = find(v, "label")) {
        if (!l->isString())
            wrongKind(*l, "a string", where + ".label");
        job.label = l->str;
    } else if (job.kernels.size() == 1) {
        job.label = job.kernels[0];
    } else {
        bad("missing required key '" + where +
            ".label' (required for multi-kernel jobs)");
    }
    const JsonValue *cfg = find(v, "config");
    if (!cfg)
        bad("missing required key '" + where + ".config'");
    applyConfigJson(job.cfg, *cfg, where + ".config");
    return job;
}

} // namespace

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

SimConfig
Scenario::buildConfig(const ScenarioConfig &sc) const
{
    SimConfig cfg;
    if (sc.preset == "baseline")
        cfg = SimConfig::baseline();
    else if (sc.preset == "ltpProposal")
        cfg = SimConfig::ltpProposal(sc.hasMode ? sc.mode : LtpMode::NU);
    else
        cfg = SimConfig::limitStudy(sc.mode);
    cfg.seed = seed;
    if (sc.set.isObject())
        applyConfigJson(cfg, sc.set, sc.where + ".set");
    if (!sc.nameOverride.empty())
        cfg.name = sc.nameOverride;
    return cfg;
}

SweepSpec
Scenario::compile(int threads, ExecBackendPtr backend) const
{
    SweepSpec spec;
    spec.name = name;
    spec.lengths = lengths;
    spec.sampling = sampling;

    if (explicitJobs) {
        spec.jobs = jobs;
        // Exported jobs carry their own seeds; an explicit scenario or
        // driver seed overrides them all.
        if (hasSeed)
            for (SweepJob &job : spec.jobs)
                job.cfg.seed = seed;
        return spec;
    }

    // Expand workloads into (label, kernel list) pairs, paper order.
    std::vector<std::pair<std::string, std::vector<std::string>>> work;
    switch (workloadKind) {
      case WorkloadKind::Kernels:
        for (const std::string &k : kernels)
            work.emplace_back(isTraceName(k) ? traceLabel(tracePath(k))
                                             : k,
                              std::vector<std::string>{k});
        break;
      case WorkloadKind::Traces:
        for (const std::string &path : traces)
            work.emplace_back(traceLabel(path),
                              std::vector<std::string>{traceName(path)});
        break;
      case WorkloadKind::Groups:
        for (const auto &[label, ks] : groups)
            work.emplace_back(label, ks);
        break;
      case WorkloadKind::Pairs:
        // One multiprogrammed simulation per tuple: the smt: name
        // carries the whole co-schedule (the Simulator raises
        // core.numThreads to the tuple size), and the row label is
        // the '+'-joined member list.
        for (const std::vector<std::string> &members : pairs) {
            std::string label = members[0];
            for (std::size_t i = 1; i < members.size(); ++i)
                label += "+" + members[i];
            work.emplace_back(label,
                              std::vector<std::string>{smtName(members)});
        }
        break;
      case WorkloadKind::Panels: {
        Panels p = classifyPanels(lengths, seed, threads, backend);
        std::vector<std::string> ids =
            panels.empty() ? panelNames(p) : panels;
        for (const std::string &id : ids)
            work.emplace_back(id, panelKernels(p, id));
        break;
      }
      case WorkloadKind::None:
        bad("no workloads to compile");
    }

    // Row labels key the ResultGrid; a duplicate (e.g. two trace files
    // with the same stem) would silently overwrite cells.
    for (std::size_t i = 0; i < work.size(); ++i)
        for (std::size_t j = i + 1; j < work.size(); ++j)
            if (work[i].first == work[j].first)
                bad("duplicate workload row label '" + work[i].first +
                    "' (rename one of the colliding trace files or "
                    "kernels)");

    auto withValue = [&](const ScenarioConfig &sc,
                         const std::string &value) {
        SimConfig cfg = buildConfig(sc);
        applyOverride(cfg, sweep.path, value);
        return cfg;
    };

    for (const auto &[label, ks] : work) {
        if (hasSweep && sweep.hasBaseline) {
            for (const ScenarioConfig &sc : configs)
                if (sc.series == sweep.baselineSeries)
                    spec.addGroup(panelRow(label, "base"), sc.series,
                                  withValue(sc, sweep.baselineValue), ks,
                                  label);
        }
        if (!hasSweep) {
            for (const ScenarioConfig &sc : configs)
                spec.addGroup(label, sc.series, buildConfig(sc), ks,
                              label);
            continue;
        }
        for (const std::string &value : sweep.values)
            for (const ScenarioConfig &sc : configs)
                spec.addGroup(panelRow(label, value), sc.series,
                              withValue(sc, value), ks, label);
    }
    return spec;
}

Scenario
scenarioFromJson(const std::string &text, const std::string &baseDir)
{
    JsonValue root = parseJson(text);
    if (!root.isObject())
        wrongKind(root, "an object", "<top level>");
    checkKeys(root,
              {"name", "lengths", "sampling", "seed", "workloads",
               "configs", "sweep", "jobs"},
              "");

    Scenario sc;
    sc.name = strAt(root, "name", "<top level>");
    if (const JsonValue *l = find(root, "lengths"))
        sc.lengths = parseLengths(*l, "lengths");
    if (const JsonValue *sp = find(root, "sampling"))
        sc.sampling = parseSampling(*sp, "sampling");
    if (const JsonValue *s = find(root, "seed")) {
        sc.seed = u64FromJson(*s, "seed");
        sc.hasSeed = true;
    }

    if (const JsonValue *jobs = find(root, "jobs")) {
        for (const char *key : {"workloads", "configs", "sweep"})
            if (find(root, key))
                bad(std::string("'jobs' and '") + key +
                    "' are mutually exclusive");
        if (!jobs->isArray() || jobs->array.empty())
            bad("jobs must be a non-empty array");
        sc.explicitJobs = true;
        for (std::size_t i = 0; i < jobs->array.size(); ++i)
            sc.jobs.push_back(parseJob(jobs->array[i], i, baseDir));
        return sc;
    }

    const JsonValue *w = find(root, "workloads");
    if (!w)
        bad("missing required key 'workloads' (or an explicit 'jobs' "
            "array)");
    parseWorkloads(sc, *w, baseDir);

    const JsonValue *configs = find(root, "configs");
    if (!configs)
        bad("missing required key 'configs'");
    if (!configs->isArray() || configs->array.empty())
        bad("configs must be a non-empty array");
    for (std::size_t i = 0; i < configs->array.size(); ++i) {
        ScenarioConfig c = parseConfig(configs->array[i], i);
        for (const ScenarioConfig &prev : sc.configs)
            if (prev.series == c.series)
                bad("duplicate series '" + c.series + "' at " + c.where);
        sc.configs.push_back(std::move(c));
    }

    if (const JsonValue *sweep = find(root, "sweep")) {
        sc.hasSweep = true;
        sc.sweep = parseSweep(*sweep, sc.configs);
    }

    // Validate every config template and sweep value eagerly so errors
    // surface at parse time, naming their path, not mid-run.
    for (const ScenarioConfig &c : sc.configs) {
        SimConfig cfg = sc.buildConfig(c);
        if (sc.hasSweep)
            for (const std::string &v : sc.sweep.values) {
                try {
                    applyOverride(cfg, sc.sweep.path, v);
                } catch (const std::runtime_error &e) {
                    throw std::runtime_error(std::string(e.what()) +
                                             " (in sweep.values)");
                }
            }
    }
    if (sc.hasSweep && sc.sweep.hasBaseline) {
        SimConfig cfg = sc.buildConfig(sc.configs.front());
        try {
            applyOverride(cfg, sc.sweep.path, sc.sweep.baselineValue);
        } catch (const std::runtime_error &e) {
            throw std::runtime_error(std::string(e.what()) +
                                     " (in sweep.baseline.value)");
        }
    }
    return sc;
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("scenario: cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    // Trace paths inside the file resolve relative to the file itself.
    std::size_t slash = path.find_last_of("/\\");
    std::string base_dir =
        slash == std::string::npos ? "" : path.substr(0, slash);
    try {
        return scenarioFromJson(text.str(), base_dir);
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

std::string
sweepSpecToJson(const SweepSpec &spec)
{
    std::string out = "{\n";
    out += "  \"name\": " + jsonQuote(spec.name) + ",\n";
    out += "  \"lengths\": {\"funcWarm\": " +
           std::to_string(spec.lengths.funcWarm) +
           ", \"pipeWarm\": " + std::to_string(spec.lengths.pipeWarm) +
           ", \"detail\": " + std::to_string(spec.lengths.detail) +
           "},\n";
    if (spec.sampling.enabled()) {
        out += "  \"sampling\": {\"fastForward\": " +
               std::to_string(spec.sampling.fastForward) +
               ", \"warmup\": " + std::to_string(spec.sampling.warmup) +
               ", \"detail\": " + std::to_string(spec.sampling.detail) +
               ", \"samples\": " + std::to_string(spec.sampling.samples) +
               "},\n";
    }
    out += "  \"jobs\": [\n";
    for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
        const SweepJob &job = spec.jobs[i];
        out += "    {\n";
        out += "      \"row\": " + jsonQuote(job.row) + ",\n";
        out += "      \"series\": " + jsonQuote(job.series) + ",\n";
        out += "      \"label\": " + jsonQuote(job.label) + ",\n";
        out += "      \"kernels\": [";
        for (std::size_t k = 0; k < job.kernels.size(); ++k) {
            if (k)
                out += ", ";
            out += jsonQuote(job.kernels[k]);
        }
        out += "],\n";
        out += "      \"config\": " + configToJson(job.cfg, 6) + "\n";
        out += "    }";
        if (i + 1 < spec.jobs.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace ltp
