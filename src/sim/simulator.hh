/**
 * @file
 * Simulation driver: wires workload → core → memory, runs the paper's
 * three-phase staging (functional cache warm → detailed pipeline warm →
 * measured detail region), and extracts Metrics.
 *
 * Staging mirrors Section 4.1: "caches are warmed for 250M
 * instructions, followed by 100k instructions of detailed pipeline
 * warming, and then a detailed simulation of 10M instructions" — with
 * instruction counts scaled for the synthetic kernels, which reach
 * steady state quickly.
 */

#ifndef LTP_SIM_SIMULATOR_HH
#define LTP_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>

#include "common/ring.hh"
#include "cpu/core.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "trace/workload.hh"

namespace ltp {

/** Instruction staging plan for one run. */
struct RunLengths
{
    std::uint64_t funcWarm = 100000; ///< functional cache warm
    std::uint64_t pipeWarm = 10000;  ///< detailed, stats discarded
    std::uint64_t detail = 50000;    ///< measured region

    static RunLengths
    quick()
    {
        return RunLengths{30000, 4000, 20000};
    }

    /** Default staging of the bench binaries (scaled Section 4.1). */
    static RunLengths
    bench()
    {
        return RunLengths{60000, 5000, 30000};
    }
};

/**
 * Ring-buffered trace window with random access (squash rewind).
 *
 * The window spans [oldest uncommitted, youngest fetched]: commit trims
 * the front, fetch extends the back.  With a finite ROB that span is
 * bounded by ROB + fetch queue + one fetch group, so the window is a
 * fixed-capacity ring and the bound is asserted — unbounded growth here
 * means retire stopped trimming (a simulator bug), not a big workload.
 * @p max_window 0 (infinite-ROB limit studies) lifts the cap.
 */
class TraceWindow : public InstSource
{
  public:
    TraceWindow(Workload &w, std::size_t max_window)
        : w_(w), max_window_(max_window),
          buf_(max_window ? max_window : 1024)
    {
    }

    MicroOp
    fetch(SeqNum seq) override
    {
        sim_assert(seq >= base_);
        while (seq >= base_ + buf_.size()) {
            sim_assert(max_window_ == 0 || buf_.size() < max_window_);
            buf_.push_back(w_.next());
        }
        return buf_[seq - base_];
    }

    void
    retire(SeqNum upto) override
    {
        while (base_ <= upto && !buf_.empty()) {
            buf_.pop_front();
            base_ += 1;
        }
    }

  private:
    Workload &w_;
    std::size_t max_window_; ///< 0 = uncapped (infinite ROB)
    Ring<MicroOp> buf_;
    SeqNum base_ = 0;
};

/**
 * Owns one complete simulation instance (memory, core, trace, oracle).
 * Construct, run(), read the metrics; or use the one-shot helper.
 */
class Simulator
{
  public:
    Simulator(const SimConfig &cfg, const std::string &kernel,
              const RunLengths &lengths = RunLengths{});

    /** Execute all three phases and return the detail-region metrics. */
    Metrics run();

    /** One-shot convenience used by benches and tests. */
    static Metrics runOnce(const SimConfig &cfg, const std::string &kernel,
                           const RunLengths &lengths = RunLengths{});

    /// @name Mid-run access for tests and the inspector example
    /// @{
    Core &core() { return *core_; }
    MemSystem &mem() { return *mem_; }
    const OracleClassification &oracle() const { return oracle_; }
    /// @}

  private:
    Metrics extractMetrics(Cycle detail_cycles);

    SimConfig cfg_;
    RunLengths lengths_;
    WorkloadPtr workload_;
    OracleClassification oracle_;
    std::unique_ptr<MemSystem> mem_;
    std::unique_ptr<TraceWindow> source_;
    std::unique_ptr<Core> core_;
};

} // namespace ltp

#endif // LTP_SIM_SIMULATOR_HH
