/**
 * @file
 * Simulation driver: wires workload(s) → core → memory, runs the
 * paper's three-phase staging (functional cache warm → detailed
 * pipeline warm → measured detail region), and extracts Metrics.
 *
 * Staging mirrors Section 4.1: "caches are warmed for 250M
 * instructions, followed by 100k instructions of detailed pipeline
 * warming, and then a detailed simulation of 10M instructions" — with
 * instruction counts scaled for the synthetic kernels, which reach
 * steady state quickly.
 *
 * Multiprogrammed SMT runs use `smt:<a>+<b>[+...]` workload names: one
 * member kernel (or `trace:<path>` replay) per hardware thread, each
 * with its own trace window and per-thread staging quota.  The detail
 * region ends when the *last* thread commits its quota; each thread's
 * own slice is measured the cycle it reaches its quota (the standard
 * fixed-instruction-sample methodology), reported in
 * Metrics::threads.  A thread that reaches its phase quota stops
 * fetching and drains while co-runners finish, so bounded `trace:`
 * members stay within their recorded fetch-ahead slack.  A
 * single-member name is bit-identical to running the member directly.
 */

#ifndef LTP_SIM_SIMULATOR_HH
#define LTP_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ring.hh"
#include "cpu/core.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "trace/workload.hh"

namespace ltp {

/** Instruction staging plan for one run (per thread under SMT). */
struct RunLengths
{
    std::uint64_t funcWarm = 100000; ///< functional cache warm
    std::uint64_t pipeWarm = 10000;  ///< detailed, stats discarded
    std::uint64_t detail = 50000;    ///< measured region

    static RunLengths
    quick()
    {
        return RunLengths{30000, 4000, 20000};
    }

    /** Default staging of the bench binaries (scaled Section 4.1). */
    static RunLengths
    bench()
    {
        return RunLengths{60000, 5000, 30000};
    }
};

/// @name SMT workload-tuple names
///
/// `smt:graph_walk+dense_compute` names a multiprogrammed workload:
/// one member (kernel or `trace:<path>`) per hardware thread, joined
/// with '+'.  Like `trace:` names, the convention flows through every
/// string-keyed surface (SweepSpec kernels, scenario files, `ltp run`).
/// @{

/** Prefix of an SMT workload-tuple name. */
inline constexpr const char *kSmtNamePrefix = "smt:";

/** True if @p name is an `smt:<a>+<b>` workload-tuple name. */
bool isSmtName(const std::string &name);

/** The member workload names inside an smt: tuple, tid order. */
std::vector<std::string> smtMembers(const std::string &name);

/** The `smt:` tuple name for @p members (also their row label with
 *  the prefix stripped). */
std::string smtName(const std::vector<std::string> &members);

/// @}

/**
 * Ring-buffered trace window with random access (squash rewind).
 *
 * The window spans [oldest uncommitted, youngest fetched]: commit trims
 * the front, fetch extends the back.  With a finite ROB that span is
 * bounded by ROB + fetch queue + one fetch group, so the window is a
 * fixed-capacity ring and the bound is asserted — unbounded growth here
 * means retire stopped trimming (a simulator bug), not a big workload.
 * @p max_window 0 (infinite-ROB limit studies) lifts the cap.
 */
class TraceWindow : public InstSource
{
  public:
    TraceWindow(Workload &w, std::size_t max_window)
        : w_(w), max_window_(max_window),
          buf_(max_window ? max_window : 1024)
    {
    }

    MicroOp
    fetch(SeqNum seq) override
    {
        sim_assert(seq >= base_);
        while (seq >= base_ + buf_.size()) {
            sim_assert(max_window_ == 0 || buf_.size() < max_window_);
            buf_.push_back(w_.next());
        }
        return buf_[seq - base_];
    }

    void
    retire(SeqNum upto) override
    {
        while (base_ <= upto && !buf_.empty()) {
            buf_.pop_front();
            base_ += 1;
        }
    }

  private:
    Workload &w_;
    std::size_t max_window_; ///< 0 = uncapped (infinite ROB)
    Ring<MicroOp> buf_;
    SeqNum base_ = 0;
};

/**
 * Resolve a workload name into one member per hardware thread,
 * reconciling the tuple size with @p cfg.core.numThreads (which is
 * updated in place): an `smt:<a>+<b>` name carries one member per
 * context; a plain name runs on every context (homogeneous SMT).
 * @throws std::runtime_error on a tuple/threads mismatch.
 */
std::vector<std::string> resolveWorkloadMembers(SimConfig &cfg,
                                                const std::string &kernel);

/**
 * Run the detailed phases — pipeline warm (stats discarded) then the
 * measured fixed-instruction-sample detail region — on an
 * already-constructed core/memory pair, and extract the Metrics.
 *
 * This is the shared timing engine behind both a full `Simulator::run`
 * and each detailed sample of the interval-sampling controller
 * (src/sample/sampler.*): the core must be freshly warmed (functional
 * or checkpoint-restored state), and @p workloads provides per-thread
 * names for the report.  @p phase, when set, is called at the start of
 * each internal phase ("warmup", then "detail") for progress display.
 */
Metrics runDetailPhases(
    const SimConfig &cfg, Core &core, MemSystem &mem,
    const std::vector<Workload *> &workloads, std::uint64_t pipe_warm,
    std::uint64_t detail,
    const std::function<void(const char *)> &phase = {});

/**
 * Owns one complete simulation instance (memory, core, traces,
 * oracles — one workload pipeline per hardware thread).
 * Construct, run(), read the metrics; or use the one-shot helper.
 */
class Simulator
{
  public:
    Simulator(const SimConfig &cfg, const std::string &kernel,
              const RunLengths &lengths = RunLengths{});

    /** Execute all three phases and return the detail-region metrics. */
    Metrics run();

    /** One-shot convenience used by benches and tests. */
    static Metrics runOnce(const SimConfig &cfg, const std::string &kernel,
                           const RunLengths &lengths = RunLengths{});

    /// @name Mid-run access for tests and the inspector example
    /// @{
    Core &core() { return *core_; }
    MemSystem &mem() { return *mem_; }
    const OracleClassification &oracle(int tid = 0) const
    {
        return oracles_[std::size_t(tid)];
    }
    /// @}

  private:
    SimConfig cfg_;
    RunLengths lengths_;
    std::vector<WorkloadPtr> workloads_;   ///< one per thread
    std::vector<OracleClassification> oracles_;
    std::unique_ptr<MemSystem> mem_;
    std::vector<std::unique_ptr<TraceWindow>> sources_;
    std::unique_ptr<Core> core_;
};

} // namespace ltp

#endif // LTP_SIM_SIMULATOR_HH
