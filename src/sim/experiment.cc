#include "sim/experiment.hh"

#include "common/logging.hh"

namespace ltp {

std::vector<Metrics>
runSuite(const SimConfig &cfg, const std::vector<std::string> &kernels,
         const RunLengths &lengths)
{
    std::vector<Metrics> out;
    out.reserve(kernels.size());
    for (const std::string &k : kernels)
        out.push_back(Simulator::runOnce(cfg, k, lengths));
    return out;
}

Metrics
runGroupAverage(const SimConfig &cfg,
                const std::vector<std::string> &kernels,
                const std::string &label, const RunLengths &lengths)
{
    return averageMetrics(runSuite(cfg, kernels, lengths), label);
}

void
ResultGrid::put(const std::string &row, const std::string &series,
                const Metrics &m)
{
    grid_[row][series] = m;
}

const Metrics &
ResultGrid::at(const std::string &row, const std::string &series) const
{
    auto r = grid_.find(row);
    if (r == grid_.end())
        fatal("no results for row '%s'", row.c_str());
    auto c = r->second.find(series);
    if (c == r->second.end())
        fatal("no results for series '%s' in row '%s'", series.c_str(),
              row.c_str());
    return c->second;
}

bool
ResultGrid::has(const std::string &row, const std::string &series) const
{
    auto r = grid_.find(row);
    return r != grid_.end() && r->second.count(series) != 0;
}

std::string
sizeLabel(int entries)
{
    return isInfinite(entries) ? "inf" : std::to_string(entries);
}

} // namespace ltp
