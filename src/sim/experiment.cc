#include "sim/experiment.hh"

namespace ltp {

RunLengths
stagingLengths(const Cli &cli, const RunLengths &dflt)
{
    RunLengths lengths = dflt;
    lengths.funcWarm = cli.integer("warm", lengths.funcWarm);
    lengths.pipeWarm = cli.integer("pipewarm", lengths.pipeWarm);
    lengths.detail = cli.integer("detail", lengths.detail);
    return lengths;
}

std::vector<Metrics>
runSuite(const SimConfig &cfg, const std::vector<std::string> &kernels,
         const RunLengths &lengths, int threads)
{
    SweepSpec spec;
    spec.name = "suite:" + cfg.name;
    spec.lengths = lengths;
    for (const std::string &k : kernels)
        spec.add(k, cfg.name, cfg, k);

    SweepResult result = Runner(threads).run(spec);

    std::vector<Metrics> out;
    out.reserve(kernels.size());
    for (const std::string &k : kernels)
        out.push_back(result.grid.at(k, cfg.name));
    return out;
}

Metrics
runGroupAverage(const SimConfig &cfg,
                const std::vector<std::string> &kernels,
                const std::string &label, const RunLengths &lengths,
                int threads)
{
    return averageMetrics(runSuite(cfg, kernels, lengths, threads), label);
}

std::string
sizeLabel(int entries)
{
    return isInfinite(entries) ? "inf" : std::to_string(entries);
}

} // namespace ltp
