#include "sim/result_cache.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/report.hh"

namespace fs = std::filesystem;

namespace ltp {

namespace {

/** Monotone suffix so concurrent writers in one process never share a
 *  temp file; cross-process uniqueness comes from the pid. */
std::atomic<std::uint64_t> tmp_counter{0};

bool
isHexKey(const std::string &s)
{
    if (s.size() != 64)
        return false;
    for (char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

/** Parse one entry file; throws on any structural or version defect. */
CacheEntryInfo
parseEntry(const std::string &key, const std::string &text,
           Metrics *metrics_out)
{
    JsonValue root = parseJson(text);
    if (!root.isObject())
        throw std::runtime_error("entry is not a JSON object");
    auto field = [&](const char *name) -> const JsonValue & {
        auto it = root.object.find(name);
        if (it == root.object.end())
            throw std::runtime_error(std::string("missing field '") +
                                     name + "'");
        return it->second;
    };
    if (std::uint64_t(field("cacheSchema").num) !=
        std::uint64_t(kCacheSchemaVersion))
        throw std::runtime_error("cacheSchema version mismatch");
    if (field("key").str != key)
        throw std::runtime_error("stored key disagrees with file name");

    CacheEntryInfo info;
    info.key = key;
    info.config = field("config").str;
    info.workload = field("workload").str;
    const JsonValue &lengths = field("lengths");
    auto u64of = [&](const char *name) {
        auto it = lengths.object.find(name);
        return it == lengths.object.end()
                   ? std::uint64_t(0)
                   : std::uint64_t(it->second.num);
    };
    info.funcWarm = u64of("funcWarm");
    info.pipeWarm = u64of("pipeWarm");
    info.detail = u64of("detail");

    // metricsFromJson re-checks the embedded schemaVersion and throws
    // on anything newer than this reader.
    Metrics m = metricsFromJson(writeJson(field("metrics")));
    if (metrics_out)
        *metrics_out = m;
    info.valid = true;
    return info;
}

} // namespace

ResultCache::ResultCache(const std::string &dir)
    : dir_(dir.empty() ? defaultDir() : dir)
{
}

std::string
ResultCache::defaultDir()
{
    if (const char *env = std::getenv("LTP_CACHE_DIR"); env && *env)
        return env;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return std::string(xdg) + "/ltp";
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/ltp";
    return ".ltp-cache"; // homeless environments (some CI sandboxes)
}

std::string
ResultCache::entryPath(const std::string &hexKey) const
{
    return dir_ + "/" + hexKey.substr(0, 2) + "/" + hexKey.substr(2, 2) +
           "/" + hexKey + ".json";
}

bool
ResultCache::lookup(const CellKey &key, Metrics *out) const
{
    std::ifstream in(entryPath(key.hex), std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    try {
        parseEntry(key.hex, text.str(), out);
        return true;
    } catch (const std::runtime_error &) {
        return false; // corrupt or future-versioned: a miss, not data
    }
}

void
ResultCache::store(const CellKey &key, const SimConfig &cfg,
                   const RunLengths &lengths, const Metrics &m) const
{
    std::string path = entryPath(key.hex);
    fs::path target(path);

    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
        warn("result cache: cannot create %s: %s",
             target.parent_path().string().c_str(),
             ec.message().c_str());
        return; // caching is an optimization; never fail the run
    }

    JsonObjectBuilder o;
    o.u64("cacheSchema", kCacheSchemaVersion);
    o.str("key", key.hex);
    o.str("config", cfg.name);
    o.str("workload", key.workload);
    o.field("lengths",
            strprintf("{\"funcWarm\": %llu, \"pipeWarm\": %llu, "
                      "\"detail\": %llu}",
                      static_cast<unsigned long long>(lengths.funcWarm),
                      static_cast<unsigned long long>(lengths.pipeWarm),
                      static_cast<unsigned long long>(lengths.detail)));
    o.field("metrics", metricsToJson(m, 2));

    std::string tmp = path + strprintf(".tmp.%d.%llu", getpid(),
                                       static_cast<unsigned long long>(
                                           tmp_counter.fetch_add(1)));
    {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf) {
            warn("result cache: cannot write %s", tmp.c_str());
            return;
        }
        outf << o.render(0) << "\n";
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: rename to %s failed: %s", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
    }
}

std::vector<CacheEntryInfo>
ResultCache::list() const
{
    std::vector<CacheEntryInfo> out;
    std::error_code ec;
    fs::recursive_directory_iterator it(dir_, ec), end;
    if (ec)
        return out;
    for (; it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file())
            continue;
        fs::path p = it->path();
        if (p.extension() != ".json" || !isHexKey(p.stem().string()))
            continue; // temp files and strays are not entries
        CacheEntryInfo info;
        info.key = p.stem().string();
        info.bytes = std::uint64_t(fs::file_size(p, ec));
        std::ifstream in(p, std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        try {
            std::uint64_t bytes = info.bytes;
            info = parseEntry(info.key, text.str(), nullptr);
            info.bytes = bytes;
        } catch (const std::runtime_error &) {
            info.valid = false;
        }
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const CacheEntryInfo &a, const CacheEntryInfo &b) {
                  return a.key < b.key;
              });
    return out;
}

CacheStats
ResultCache::stats() const
{
    CacheStats s;
    for (const CacheEntryInfo &e : list()) {
        s.entries += 1;
        s.bytes += e.bytes;
        if (!e.valid)
            s.invalid += 1;
    }
    return s;
}

std::size_t
ResultCache::gc(double maxAgeDays, std::uint64_t maxBytes) const
{
    std::size_t removed = 0;
    std::error_code ec;
    auto now = fs::file_time_type::clock::now();

    // Survivors of the invalid/age pass, with mtime and size, so the
    // size pass can evict coldest-first without re-statting.
    struct Survivor
    {
        std::string key;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Survivor> kept;
    std::uint64_t kept_bytes = 0;

    for (const CacheEntryInfo &e : list()) {
        fs::path p(entryPath(e.key));
        bool drop = !e.valid;
        auto mtime = fs::last_write_time(p, ec);
        if (ec)
            mtime = now; // unstattable: treat as fresh, not evictable
        if (!drop && maxAgeDays > 0.0) {
            double age_days =
                std::chrono::duration<double>(now - mtime).count() /
                86400.0;
            drop = age_days > maxAgeDays;
        }
        if (drop) {
            if (fs::remove(p, ec) && !ec)
                removed += 1;
        } else {
            kept.push_back(Survivor{e.key, e.bytes, mtime});
            kept_bytes += e.bytes;
        }
    }

    if (maxBytes > 0 && kept_bytes > maxBytes) {
        // Least-recently-written first; key as tiebreak so the
        // eviction order is deterministic under equal mtimes.
        std::sort(kept.begin(), kept.end(),
                  [](const Survivor &a, const Survivor &b) {
                      if (a.mtime != b.mtime)
                          return a.mtime < b.mtime;
                      return a.key < b.key;
                  });
        for (const Survivor &s : kept) {
            if (kept_bytes <= maxBytes)
                break;
            if (fs::remove(entryPath(s.key), ec) && !ec) {
                removed += 1;
                kept_bytes -= s.bytes;
            }
        }
    }
    return removed;
}

std::size_t
ResultCache::clear() const
{
    std::size_t removed = 0;
    std::error_code ec;
    for (const CacheEntryInfo &e : list())
        if (fs::remove(entryPath(e.key), ec) && !ec)
            removed += 1;
    return removed;
}

} // namespace ltp
