/**
 * @file
 * Experiment helpers shared by the bench harnesses: run one config
 * across kernel lists, group-average the results (the paper reports
 * mlp-sensitive / mlp-insensitive averages), and keyed result lookup
 * for building the paper-shaped tables.
 *
 * These are thin wrappers over the sharded Runner (sim/runner.hh),
 * which also owns ResultGrid; pass threads > 1 to fan a suite out
 * across cores with bit-identical results.
 */

#ifndef LTP_SIM_EXPERIMENT_HH
#define LTP_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "common/cli.hh"
#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace ltp {

/** Apply the standard --warm/--pipewarm/--detail staging flags onto
 *  @p dflt (shared by the bench harnesses and the ltp driver). */
RunLengths stagingLengths(const Cli &cli, const RunLengths &dflt);

/** Run @p cfg on every kernel in @p kernels, @p threads at a time. */
std::vector<Metrics> runSuite(const SimConfig &cfg,
                              const std::vector<std::string> &kernels,
                              const RunLengths &lengths, int threads = 1);

/** Run @p cfg on @p kernels and return the group average. */
Metrics runGroupAverage(const SimConfig &cfg,
                        const std::vector<std::string> &kernels,
                        const std::string &label, const RunLengths &lengths,
                        int threads = 1);

/** "∞" for kInfiniteSize, the number otherwise (table axis labels). */
std::string sizeLabel(int entries);

} // namespace ltp

#endif // LTP_SIM_EXPERIMENT_HH
