/**
 * @file
 * Experiment helpers shared by the bench harnesses: run one config
 * across kernel lists, group-average the results (the paper reports
 * mlp-sensitive / mlp-insensitive averages), and keyed result lookup
 * for building the paper-shaped tables.
 */

#ifndef LTP_SIM_EXPERIMENT_HH
#define LTP_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

namespace ltp {

/** Run @p cfg on every kernel in @p kernels. */
std::vector<Metrics> runSuite(const SimConfig &cfg,
                              const std::vector<std::string> &kernels,
                              const RunLengths &lengths);

/** Run @p cfg on @p kernels and return the group average. */
Metrics runGroupAverage(const SimConfig &cfg,
                        const std::vector<std::string> &kernels,
                        const std::string &label,
                        const RunLengths &lengths);

/**
 * Keyed result store for sweeps: results[row][series] = Metrics.
 * Rows are typically resource sizes, series the LTP modes.
 */
class ResultGrid
{
  public:
    void put(const std::string &row, const std::string &series,
             const Metrics &m);
    const Metrics &at(const std::string &row,
                      const std::string &series) const;
    bool has(const std::string &row, const std::string &series) const;

  private:
    std::map<std::string, std::map<std::string, Metrics>> grid_;
};

/** "∞" for kInfiniteSize, the number otherwise (table axis labels). */
std::string sizeLabel(int entries);

} // namespace ltp

#endif // LTP_SIM_EXPERIMENT_HH
