#include "sim/simulator.hh"

#include "ltp/oracle.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace ltp {

Simulator::Simulator(const SimConfig &cfg, const std::string &kernel,
                     const RunLengths &lengths)
    : cfg_(cfg), lengths_(lengths)
{
    workload_ = makeKernel(kernel);

    // Oracle pre-pass (limit study): classify the whole region the
    // detailed phase can reach, including fetch-ahead slack.
    if (cfg_.core.ltp.mode != LtpMode::Off &&
        cfg_.core.ltp.classifier == ClassifierKind::Oracle) {
        WorkloadPtr oracle_wl = makeKernel(kernel);
        std::uint64_t n = lengths_.funcWarm + lengths_.pipeWarm +
                          lengths_.detail + kTraceFetchSlack;
        oracle_ = oracleClassify(*oracle_wl, cfg_.seed, n, cfg_.mem);
        oracle_.setBase(lengths_.funcWarm);
    }

    mem_ = std::make_unique<MemSystem>(cfg_.mem);

    // Phase 1: functional cache warm (Section 4.1's 250M equivalent).
    workload_->reset(cfg_.seed);
    for (std::uint64_t i = 0; i < lengths_.funcWarm; ++i) {
        MicroOp op = workload_->next();
        if (op.isMem())
            mem_->warmAccess(op.pc, op.effAddr, op.isStore(), 0);
    }

    // The trace window continues from the warm position: core seq 0 is
    // trace position funcWarm (the oracle is offset to match).
    // Window bound: ROB residency + fetch queue backlog + one fetch
    // group of intra-cycle fetch-ahead (uncapped for infinite ROBs).
    std::size_t max_window = 0;
    if (!isInfinite(cfg_.core.robSize) &&
        !isInfinite(cfg_.core.fetchQueueCap)) {
        max_window = std::size_t(cfg_.core.robSize) +
                     std::size_t(cfg_.core.fetchQueueCap) +
                     std::size_t(cfg_.core.fetchWidth);
    }
    source_ = std::make_unique<TraceWindow>(*workload_, max_window);
    core_ = std::make_unique<Core>(cfg_.core, *mem_, *source_,
                                   oracle_.valid() ? &oracle_ : nullptr);
}

Metrics
Simulator::run()
{
    // Phase 2: detailed pipeline warm (stats discarded).
    core_->runUntilCommitted(lengths_.pipeWarm);
    core_->resetStats();
    mem_->resetStats(core_->cycle());
    Cycle detail_start = core_->cycle();

    // Phase 3: measured detail region.
    core_->runUntilCommitted(lengths_.detail);
    return extractMetrics(core_->cycle() - detail_start);
}

Metrics
Simulator::runOnce(const SimConfig &cfg, const std::string &kernel,
                   const RunLengths &lengths)
{
    Simulator sim(cfg, kernel, lengths);
    return sim.run();
}

Metrics
Simulator::extractMetrics(Cycle detail_cycles)
{
    Metrics m;
    Core &core = *core_;
    CoreStats &cs = core.stats();
    Cycle now = core.cycle();

    m.config = cfg_.name;
    // The workload's own name, not the lookup key: a `trace:<path>`
    // replay reports the source kernel name embedded in the trace, so
    // its Metrics are bit-identical to the execute-mode run.
    m.workload = workload_->name();
    m.insts = cs.committed.value();
    m.cycles = detail_cycles;
    m.ipc = safeDiv(double(m.insts), double(m.cycles));
    m.cpi = safeDiv(double(m.cycles), double(m.insts));

    m.avgOutstanding = mem_->avgOutstanding(now);
    m.avgLoadLatency = mem_->avgLoadLatency();
    m.dramReads = mem_->dram().reads.value();

    m.iqOcc = core.iq().occupancy.mean(now);
    m.robOcc = core.rob().occupancy.mean(now);
    m.lqOcc = core.lsq().lqOccupancy.mean(now);
    m.sqOcc = core.lsq().sqOccupancy.mean(now);
    m.rfOcc = core.regs(RegClass::Int).occupancy.mean(now) +
              core.regs(RegClass::Fp).occupancy.mean(now);
    m.ltpOcc = core.ltpQueue().occupancy.mean(now);
    m.ltpRegsOcc = core.ltpQueue().parkedWithDest.mean(now);
    m.ltpLoadsOcc = core.ltpQueue().parkedLoads.mean(now);
    m.ltpStoresOcc = core.ltpQueue().parkedStores.mean(now);

    m.ltpEnabledFrac = cfg_.core.ltp.mode != LtpMode::Off
                           ? core.monitor().enabledFraction(now)
                           : 0.0;
    m.parked = cs.parked.value();
    m.unparked = cs.unparked.value();
    m.parkedFrac = safeDiv(double(m.parked), double(cs.renamed.value()));
    m.forcedUnparks = cs.forcedUnparks.value();
    m.pressureUnparks = cs.pressureUnparks.value();
    m.llpredAccuracy = core.llpred().accuracy();
    m.bpAccuracy = core.branchPred().accuracy();

    // ---- energy ----
    EnergyInputs ein;
    ein.cycles = m.cycles;
    // "Infinite" structures are modelled at a finite proxy size so the
    // limit-study points remain plottable (ratios are what matter).
    auto energySize = [](int entries, int cap) {
        return isInfinite(entries) ? cap : entries;
    };
    ein.iqEntries = energySize(cfg_.core.iqSize, 1024);
    ein.issueWidth = cfg_.core.issueWidth;
    ein.totalRegs = energySize(cfg_.core.intRegs, 1024) +
                    energySize(cfg_.core.fpRegs, 1024);
    if (cfg_.core.ltp.mode != LtpMode::Off) {
        ein.ltpEntries = energySize(cfg_.core.ltp.entries, 1024);
        ein.ltpPorts = cfg_.core.ltp.insertPorts;
        ein.uitEntries = energySize(cfg_.core.ltp.uitEntries, 4096);
        ein.ltpCam = cfg_.core.ltp.mode != LtpMode::NU;
        ein.ltpEnabledFraction = m.ltpEnabledFrac;
    }
    ein.iqInserts = core.iq().inserts.value();
    ein.iqIssues = cs.iqIssued.value();
    ein.wakeupBroadcasts = cs.wbWrites.value();
    ein.rfReads = cs.rfReads.value();
    ein.rfWrites = cs.rfWrites.value();
    ein.ltpPushes = core.ltpQueue().pushes.value();
    ein.ltpPops = core.ltpQueue().pops.value();
    ein.ticketBroadcasts = core.tickets().broadcasts.value();
    ein.uitLookups = core.uit().lookups.value();
    ein.uitInserts = core.uit().inserts.value();
    ein.predLookups = core.llpred().predictions.value();
    m.energy = computeEnergy(ein);
    m.ed2p = m.energy.ed2p(m.cycles);
    m.edp = m.energy.edp(m.cycles);

    return m;
}

} // namespace ltp
