#include "sim/simulator.hh"

#include <stdexcept>

#include "ltp/oracle.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace ltp {

// ---------------------------------------------------------------------------
// SMT workload-tuple names
// ---------------------------------------------------------------------------

bool
isSmtName(const std::string &name)
{
    return name.rfind(kSmtNamePrefix, 0) == 0;
}

std::vector<std::string>
smtMembers(const std::string &name)
{
    std::string body =
        isSmtName(name) ? name.substr(std::string(kSmtNamePrefix).size())
                        : name;
    std::vector<std::string> members;
    std::size_t pos = 0;
    while (pos <= body.size()) {
        std::size_t plus = body.find('+', pos);
        if (plus == std::string::npos)
            plus = body.size();
        // Reject empty members ("smt:", "smt:a+", "smt:a++b") rather
        // than silently running fewer contexts than were written.
        if (plus == pos)
            throw std::runtime_error(
                "empty member in smt: workload tuple '" + name + "'");
        members.push_back(body.substr(pos, plus - pos));
        pos = plus + 1;
    }
    if (members.empty())
        throw std::runtime_error("empty smt: workload tuple '" + name +
                                 "'");
    return members;
}

std::string
smtName(const std::vector<std::string> &members)
{
    std::string out = kSmtNamePrefix;
    for (std::size_t i = 0; i < members.size(); ++i) {
        // '+' is the tuple separator and cannot be escaped; a member
        // (e.g. a trace path under a directory with '+' in its name)
        // containing one would be split apart on the next parse.
        if (members[i].empty() ||
            members[i].find('+') != std::string::npos)
            throw std::runtime_error(
                "smt: tuple member '" + members[i] +
                "' is empty or contains '+' (unsupported in the "
                "smt:<a>+<b> syntax; rename the path)");
        if (i)
            out += '+';
        out += members[i];
    }
    return out;
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

std::vector<std::string>
resolveWorkloadMembers(SimConfig &cfg, const std::string &kernel)
{
    // Resolve the workload tuple: an smt:<a>+<b> name carries one
    // member per hardware thread; a plain name runs on every context
    // (homogeneous SMT) — which is just the kernel itself at N=1.
    std::vector<std::string> members =
        isSmtName(kernel) ? smtMembers(kernel)
                          : std::vector<std::string>{kernel};
    if (members.size() > 1) {
        if (cfg.core.numThreads <= 1)
            cfg.core.numThreads = static_cast<int>(members.size());
        else if (cfg.core.numThreads !=
                 static_cast<int>(members.size()))
            throw std::runtime_error(
                "workload '" + kernel + "' names " +
                std::to_string(members.size()) + " contexts but "
                "core.numThreads is " +
                std::to_string(cfg.core.numThreads));
    }
    int n = std::max(cfg.core.numThreads, 1);
    cfg.core.numThreads = n;
    while (static_cast<int>(members.size()) < n)
        members.push_back(members.front());
    return members;
}

Simulator::Simulator(const SimConfig &cfg, const std::string &kernel,
                     const RunLengths &lengths)
    : cfg_(cfg), lengths_(lengths)
{
    std::vector<std::string> members =
        resolveWorkloadMembers(cfg_, kernel);
    int n = cfg_.core.numThreads;

    for (const std::string &member : members)
        workloads_.push_back(makeKernel(member));

    // Oracle pre-pass (limit study): classify, per thread, the whole
    // region the detailed phase can reach, including fetch-ahead
    // slack.  Each thread's oracle replays that thread's own stream
    // (constant per-thread address offsets do not change a single
    // stream's cache behaviour, so the standalone pre-pass stays
    // valid).
    oracles_.resize(workloads_.size());
    if (cfg_.core.ltp.mode != LtpMode::Off &&
        cfg_.core.ltp.classifier == ClassifierKind::Oracle) {
        std::uint64_t region = lengths_.funcWarm + lengths_.pipeWarm +
                               lengths_.detail + kTraceFetchSlack;
        for (std::size_t tid = 0; tid < members.size(); ++tid) {
            WorkloadPtr oracle_wl = makeKernel(members[tid]);
            oracles_[tid] = oracleClassify(*oracle_wl, cfg_.seed, region,
                                           cfg_.mem);
            oracles_[tid].setBase(lengths_.funcWarm);
        }
    }

    mem_ = std::make_unique<MemSystem>(cfg_.mem);

    // Phase 1: functional cache warm (Section 4.1's 250M equivalent),
    // round-robin interleaved across contexts so the shared hierarchy
    // warms under the same multiprogrammed mix it will serve.
    for (auto &w : workloads_)
        w->reset(cfg_.seed);
    for (std::uint64_t i = 0; i < lengths_.funcWarm; ++i) {
        for (int tid = 0; tid < n; ++tid) {
            MicroOp op = workloads_[std::size_t(tid)]->next();
            if (op.isMem())
                mem_->warmAccess(op.pc + threadAddrBase(tid),
                                 op.effAddr + threadAddrBase(tid),
                                 op.isStore(), 0);
        }
    }

    // The trace windows continue from the warm position: core seq 0 is
    // trace position funcWarm (the oracles are offset to match).
    // Window bound: ROB residency + fetch queue backlog + one fetch
    // group of intra-cycle fetch-ahead (uncapped for infinite ROBs).
    std::size_t max_window = 0;
    if (!isInfinite(cfg_.core.robSize) &&
        !isInfinite(cfg_.core.fetchQueueCap)) {
        max_window = std::size_t(cfg_.core.robSize) +
                     std::size_t(cfg_.core.fetchQueueCap) +
                     std::size_t(cfg_.core.fetchWidth);
    }
    std::vector<InstSource *> sources;
    std::vector<const OracleClassification *> oracle_ptrs;
    for (std::size_t tid = 0; tid < workloads_.size(); ++tid) {
        sources_.push_back(std::make_unique<TraceWindow>(
            *workloads_[tid], max_window));
        sources.push_back(sources_.back().get());
        oracle_ptrs.push_back(oracles_[tid].valid() ? &oracles_[tid]
                                                    : nullptr);
    }
    core_ = std::make_unique<Core>(cfg_.core, *mem_, sources,
                                   oracle_ptrs);
}

Metrics
Simulator::run()
{
    std::vector<Workload *> workloads;
    for (const WorkloadPtr &w : workloads_)
        workloads.push_back(w.get());
    return runDetailPhases(cfg_, *core_, *mem_, workloads,
                           lengths_.pipeWarm, lengths_.detail);
}

Metrics
Simulator::runOnce(const SimConfig &cfg, const std::string &kernel,
                   const RunLengths &lengths)
{
    Simulator sim(cfg, kernel, lengths);
    return sim.run();
}

/** The detail-region stats harvest shared by full and sampled runs. */
static Metrics
extractMetrics(const SimConfig &cfg, Core &core, MemSystem &mem,
               const std::vector<Workload *> &workloads,
               const std::vector<Cycle> &cross_cycles,
               const std::vector<std::uint64_t> &cross_insts,
               Cycle detail_cycles)
{
    Metrics m;
    int n = core.numThreads();
    Cycle now = core.cycle();
    Cycle detail_start = now - detail_cycles;

    m.config = cfg.name;
    // The workload's own name, not the lookup key: a `trace:<path>`
    // replay reports the source kernel name embedded in the trace, so
    // its Metrics are bit-identical to the execute-mode run.  SMT runs
    // report the members joined in tid order ("a+b").
    m.workload = workloads[0]->name();
    for (int tid = 1; tid < n; ++tid)
        m.workload += "+" + workloads[std::size_t(tid)]->name();

    // Per-thread slices (fixed instruction samples).
    m.threads.resize(std::size_t(n));
    for (int tid = 0; tid < n; ++tid) {
        ThreadMetrics &tm = m.threads[std::size_t(tid)];
        tm.workload = workloads[std::size_t(tid)]->name();
        tm.insts = cross_insts[std::size_t(tid)];
        tm.cycles = cross_cycles[std::size_t(tid)] - detail_start;
        tm.ipc = safeDiv(double(tm.insts), double(tm.cycles));
    }

    // Aggregates credit exactly the per-thread samples over the whole
    // region (at N=1: the one thread's committed count over its own
    // region — the classic single-threaded numbers, bit for bit).
    m.insts = 0;
    for (const ThreadMetrics &tm : m.threads)
        m.insts += tm.insts;
    m.cycles = detail_cycles;
    m.ipc = safeDiv(double(m.insts), double(m.cycles));
    m.cpi = safeDiv(double(m.cycles), double(m.insts));

    m.avgOutstanding = mem.avgOutstanding(now);
    m.avgLoadLatency = mem.avgLoadLatency();
    m.dramReads = mem.dram().reads.value();

    // Shared structures report directly; thread-owned structures sum
    // across contexts (a per-context view lives in Metrics::threads).
    m.iqOcc = core.iq().occupancy.mean(now);
    m.rfOcc = core.regs(RegClass::Int).occupancy.mean(now) +
              core.regs(RegClass::Fp).occupancy.mean(now);
    std::uint64_t renamed = 0;
    for (int tid = 0; tid < n; ++tid) {
        CoreStats &cs = core.stats(tid);
        m.robOcc += core.rob(tid).occupancy.mean(now);
        m.lqOcc += core.lsq(tid).lqOccupancy.mean(now);
        m.sqOcc += core.lsq(tid).sqOccupancy.mean(now);
        m.ltpOcc += core.ltpQueue(tid).occupancy.mean(now);
        m.ltpRegsOcc += core.ltpQueue(tid).parkedWithDest.mean(now);
        m.ltpLoadsOcc += core.ltpQueue(tid).parkedLoads.mean(now);
        m.ltpStoresOcc += core.ltpQueue(tid).parkedStores.mean(now);
        m.parked += cs.parked.value();
        m.unparked += cs.unparked.value();
        m.forcedUnparks += cs.forcedUnparks.value();
        m.pressureUnparks += cs.pressureUnparks.value();
        renamed += cs.renamed.value();
        m.llpredAccuracy += core.llpred(tid).accuracy() / n;
        m.bpAccuracy += core.branchPred(tid).accuracy() / n;
        if (cfg.core.ltp.mode != LtpMode::Off)
            m.ltpEnabledFrac +=
                core.monitor(tid).enabledFraction(now) / n;
    }
    m.parkedFrac = safeDiv(double(m.parked), double(renamed));

    // ---- energy ----
    EnergyInputs ein;
    ein.cycles = m.cycles;
    // "Infinite" structures are modelled at a finite proxy size so the
    // limit-study points remain plottable (ratios are what matter).
    auto energySize = [](int entries, int cap) {
        return isInfinite(entries) ? cap : entries;
    };
    ein.iqEntries = energySize(cfg.core.iqSize, 1024);
    ein.issueWidth = cfg.core.issueWidth;
    ein.totalRegs = energySize(cfg.core.intRegs, 1024) +
                    energySize(cfg.core.fpRegs, 1024);
    if (cfg.core.ltp.mode != LtpMode::Off) {
        ein.ltpEntries = energySize(cfg.core.ltp.entries, 1024);
        ein.ltpPorts = cfg.core.ltp.insertPorts;
        ein.uitEntries = energySize(cfg.core.ltp.uitEntries, 4096);
        ein.ltpCam = cfg.core.ltp.mode != LtpMode::NU;
        ein.ltpEnabledFraction = m.ltpEnabledFrac;
    }
    ein.iqInserts = core.iq().inserts.value();
    for (int tid = 0; tid < n; ++tid) {
        CoreStats &cs = core.stats(tid);
        ein.iqIssues += cs.iqIssued.value();
        ein.wakeupBroadcasts += cs.wbWrites.value();
        ein.rfReads += cs.rfReads.value();
        ein.rfWrites += cs.rfWrites.value();
        ein.ltpPushes += core.ltpQueue(tid).pushes.value();
        ein.ltpPops += core.ltpQueue(tid).pops.value();
        ein.ticketBroadcasts += core.tickets(tid).broadcasts.value();
        ein.uitLookups += core.uit(tid).lookups.value();
        ein.uitInserts += core.uit(tid).inserts.value();
        ein.predLookups += core.llpred(tid).predictions.value();
    }
    m.energy = computeEnergy(ein);
    m.ed2p = m.energy.ed2p(m.cycles);
    m.edp = m.energy.edp(m.cycles);

    return m;
}

Metrics
runDetailPhases(const SimConfig &cfg, Core &core, MemSystem &mem,
                const std::vector<Workload *> &workloads,
                std::uint64_t pipe_warm, std::uint64_t detail,
                const std::function<void(const char *)> &phase)
{
    int n = core.numThreads();
    if (phase)
        phase("warmup");

    // A context that has committed its quota for the current phase
    // stops fetching and drains: co-runners keep contending until
    // their own quotas close, but a finished thread never runs
    // arbitrarily far ahead — which keeps bounded `trace:` members
    // inside their recorded fetch-ahead slack.
    std::vector<bool> done(std::size_t(n), false);
    auto gateOnQuota = [&](std::uint64_t quota) {
        for (int tid = 0; tid < n; ++tid) {
            if (!done[std::size_t(tid)] &&
                core.committedInsts(tid) >= quota) {
                done[std::size_t(tid)] = true;
                core.setFetchEnabled(tid, false);
            }
        }
    };
    auto reopenFetch = [&] {
        done.assign(std::size_t(n), false);
        for (int tid = 0; tid < n; ++tid)
            core.setFetchEnabled(tid, true);
    };

    // Phase 2: detailed pipeline warm — until every context has
    // committed its warm quota (stats discarded).
    if (n == 1) {
        core.runUntilCommitted(pipe_warm);
    } else {
        core.runUntilCommitted(pipe_warm, kCycleNever,
                               [&] { gateOnQuota(pipe_warm); });
        reopenFetch();
    }
    core.resetStats();
    mem.resetStats(core.cycle());
    Cycle detail_start = core.cycle();
    if (phase)
        phase("detail");

    // Phase 3: measured detail region, fixed instruction samples.
    // Each thread's slice closes the cycle it commits its quota; the
    // region runs until the last thread closes.  At N=1 this is
    // exactly the classic "run until n committed".
    std::vector<Cycle> cross_cycles(std::size_t(n), 0);
    std::vector<std::uint64_t> cross_insts(std::size_t(n), 0);
    std::vector<bool> crossed(std::size_t(n), false);
    auto noteCrossings = [&] {
        for (int tid = 0; tid < n; ++tid) {
            if (crossed[std::size_t(tid)])
                continue;
            if (core.committedInsts(tid) >= detail) {
                crossed[std::size_t(tid)] = true;
                cross_cycles[std::size_t(tid)] = core.cycle();
                cross_insts[std::size_t(tid)] =
                    core.committedInsts(tid);
            }
        }
    };

    if (n == 1) {
        // Single-threaded: the quota check is the run loop's own stop
        // condition — no per-tick crossing scan (or fetch gating) on
        // the hot path.
        core.runUntilCommitted(detail);
        noteCrossings();
    } else {
        auto onTick = [&] {
            noteCrossings();
            gateOnQuota(detail);
        };
        onTick();
        core.runUntilCommitted(detail, kCycleNever, onTick);
        reopenFetch();
    }
    return extractMetrics(cfg, core, mem, workloads, cross_cycles,
                          cross_insts, core.cycle() - detail_start);
}

} // namespace ltp
