/**
 * @file
 * Declarative experiment scenarios: a JSON schema describing presets +
 * overrides, kernel lists / panel groups, run lengths, seeds, and the
 * row×series sweep shape, compiled into the Runner's SweepSpec — so new
 * experiments ship as files under scenarios/ instead of bench
 * binaries.
 *
 * Two forms:
 *
 *  - **Declarative** — `workloads` (kernels | panels | groups | traces)
 *    crossed with `configs` (preset + mode + dotted `set` overrides),
 *    optionally swept along one config path per row (`sweep`),
 *    reproducing the paper-shaped studies (e.g. the Figure 6 limit
 *    rows) bit-identically to their bench binaries.  `traces` rows
 *    replay recorded `.lttr` files (paths relative to the scenario
 *    file); `trace:<path>` names are also accepted anywhere a kernel
 *    name is.
 *  - **Explicit** — a `jobs` array of (row, series, kernels, full
 *    config); what `sweepSpecToJson` exports, so any in-C++ SweepSpec
 *    round-trips through a file (the benches' `--export-scenario` hook).
 *
 * Malformed scenarios throw std::runtime_error naming the offending
 * JSON path ("configs[2].set.core.iqq", ...).  README.md documents the
 * full schema.
 */

#ifndef LTP_SIM_SCENARIO_HH
#define LTP_SIM_SCENARIO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "sim/config.hh"
#include "sim/mlp_class.hh"
#include "sim/runner.hh"

namespace ltp {

// ---------------------------------------------------------------------------
// Panels: the paper's four reporting units (two marquee kernels + the
// two runtime-classified groups), shared by benches and scenarios.
// ---------------------------------------------------------------------------

/** The four panels of Figure 6/7: two marquee kernels + two groups. */
struct Panels
{
    std::string astarLike = "graph_walk";
    std::string milcLike = "indirect_stream_fp";
    SuiteGroups groups;
};

/**
 * Classify the registered suite with the Section 4.1 runtime criteria
 * (detail capped at 20k instructions, as all panel consumers do).
 * @p backend routes the classification cells (null = in-process).
 */
Panels classifyPanels(const RunLengths &lengths, std::uint64_t seed,
                      int threads = 0, ExecBackendPtr backend = nullptr);

/** The kernels behind a panel name (single kernel or a whole group). */
std::vector<std::string> panelKernels(const Panels &panels,
                                      const std::string &panel);

/** The four standard panel identifiers, in paper order. */
std::vector<std::string> panelNames(const Panels &p);

/** Grid key for a (panel, axis point) cell: "<panel>|<point>". */
std::string panelRow(const std::string &panel, const std::string &point);

/** Queue one (row, series) cell running @p cfg over @p panel. */
void addPanelJob(SweepSpec &spec, const std::string &row,
                 const std::string &series, const SimConfig &cfg,
                 const Panels &panels, const std::string &panel);

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/** One series of a declarative scenario: a config template. */
struct ScenarioConfig
{
    std::string series;            ///< grid series key
    std::string preset = "baseline"; ///< baseline | ltpProposal | limitStudy
    bool hasMode = false;
    LtpMode mode = LtpMode::NU;    ///< preset factory argument
    std::string nameOverride;      ///< optional SimConfig::name override
    JsonValue set;                 ///< partial config JSON (dotted or nested)
    std::string where;             ///< error-path prefix ("configs[2]")
};

/** Optional row axis: one config path swept over values. */
struct ScenarioSweep
{
    std::string path;              ///< e.g. "core.iq"
    std::vector<std::string> values; ///< "inf" or number lexemes, in order
    bool hasBaseline = false;      ///< extra "<workload>|base" row
    std::string baselineSeries;
    std::string baselineValue;
};

/** A parsed, validated scenario file. */
struct Scenario
{
    std::string name = "scenario";
    RunLengths lengths;
    /** Optional `sampling` block: interval sampling for every cell
     *  (disabled by default = full detail). */
    SamplePlan sampling;
    std::uint64_t seed = 1;
    /** True when the file (or a driver flag) set the seed explicitly —
     *  only then does it override the per-job seeds of an
     *  explicit-jobs scenario. */
    bool hasSeed = false;

    enum class WorkloadKind { None, Kernels, Panels, Groups, Traces,
                              Pairs };
    WorkloadKind workloadKind = WorkloadKind::None;
    std::vector<std::string> kernels;  ///< WorkloadKind::Kernels
    std::vector<std::string> panels;   ///< Panels; empty = all four
    std::vector<std::pair<std::string, std::vector<std::string>>> groups;
    std::vector<std::string> traces;   ///< Traces: resolved .lttr paths
    /** Pairs: multiprogrammed SMT tuples — one kernel (or trace) per
     *  hardware thread; each tuple compiles to an `smt:<a>+<b>`
     *  workload with core.numThreads forced to the tuple size. */
    std::vector<std::vector<std::string>> pairs;

    std::vector<ScenarioConfig> configs;
    bool hasSweep = false;
    ScenarioSweep sweep;

    bool explicitJobs = false;
    std::vector<SweepJob> jobs;

    /**
     * Compile to a runnable SweepSpec.  Panels scenarios classify the
     * suite first, sharded over @p threads workers (grouping is
     * thread-count independent) and routed through @p backend (null =
     * in-process), so a cached/served sweep also answers its
     * classification matrix from the cache.
     */
    SweepSpec compile(int threads = 1,
                      ExecBackendPtr backend = nullptr) const;

    /** Materialize one series config: preset(mode) + seed + overrides. */
    SimConfig buildConfig(const ScenarioConfig &sc) const;
};

/**
 * Parse and validate scenario JSON.  Relative `.lttr` trace paths are
 * resolved against @p baseDir (empty = the working directory) and the
 * files validated (header/CRC) eagerly.
 * @throws std::runtime_error naming the offending path on unknown
 *         keys, bad types, unknown kernels/presets/config paths, and
 *         missing or corrupt trace files.
 */
Scenario scenarioFromJson(const std::string &text,
                          const std::string &baseDir = "");

/** Read and parse @p path; errors are prefixed with the file name. */
Scenario loadScenarioFile(const std::string &path);

/** Export a SweepSpec as an explicit-jobs scenario file (round-trips
 *  through scenarioFromJson + compile). */
std::string sweepSpecToJson(const SweepSpec &spec);

} // namespace ltp

#endif // LTP_SIM_SCENARIO_HH
