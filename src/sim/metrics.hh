/**
 * @file
 * Aggregated results of one simulation run — everything the paper's
 * figures report, extracted once at the end of the detailed region.
 */

#ifndef LTP_SIM_METRICS_HH
#define LTP_SIM_METRICS_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "energy/energy_model.hh"

namespace ltp {

/**
 * Schema version stamped into every serialized Metrics object
 * (`schemaVersion` in metricsToJson) so cache entries and golden
 * snapshots are forward-checkable.  History:
 *
 *   1 — implicit: the unversioned pre-PR-6 format (no field)
 *   2 — adds the schemaVersion field itself
 *
 * Readers accept any version up to the current one (missing = 1,
 * absent fields keep their zero defaults) and reject newer versions,
 * so an old binary can never silently misread a future cache entry.
 */
inline constexpr int kMetricsSchemaVersion = 2;

/**
 * Per-hardware-thread slice of an SMT run, measured with the standard
 * fixed-instruction-sample methodology: each thread's detail region
 * ends the cycle it commits its instruction quota.  A finished thread
 * then stops fetching and drains (so a bounded `trace:` member never
 * runs off the end of its recording) while co-runners continue to
 * their own quotas.  Single-threaded runs carry exactly one entry
 * whose numbers mirror the aggregate fields.
 */
struct ThreadMetrics
{
    std::string workload;
    std::uint64_t insts = 0;  ///< committed when the quota was reached
    std::uint64_t cycles = 0; ///< detail cycles to reach the quota
    double ipc = 0.0;
};

/**
 * Interval-sampling summary of a sampled run (src/sample/): the plan
 * that produced it, the measured fast-forward rate, and the per-sample
 * IPC distribution reduced to a mean and a Student-t 95% confidence
 * half-width.  `samples == 0` means the run was full-detail and the
 * block is absent from serialized Metrics (full-run JSON unchanged).
 */
struct SamplingStats
{
    int samples = 0;                ///< 0 = not a sampled run
    std::uint64_t fastForward = 0;  ///< plan: functional ops / period
    std::uint64_t warmup = 0;       ///< plan: discarded detail ops
    std::uint64_t detail = 0;       ///< plan: measured ops / sample
    double meanIpc = 0.0;           ///< mean of per-sample IPCs
    double ipcStdDev = 0.0;         ///< sample std-dev (n-1); NaN n<2
    double ci95Half = 0.0;          ///< t(n-1) * s / sqrt(n); NaN n<2
    double ffKips = 0.0;            ///< fast-forward rate, kinsts/sec
    std::vector<double> sampleIpcs; ///< per-sample IPCs, period order

    bool enabled() const { return samples > 0; }

    /**
     * True when the run carries a real confidence interval.  One
     * observation has no dispersion estimate, so a `--samples=1` run
     * (and any group average containing one) reports the CI as
     * unavailable — NaN here, omitted in JSON/CSV — never as a
     * perfectly-confident zero width.
     */
    bool
    hasCi() const
    {
        return samples > 1 && std::isfinite(ci95Half);
    }
};

/** Results of one (config, workload) run over the detailed region. */
struct Metrics
{
    std::string config;
    std::string workload;

    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    double cpi = 0.0;

    /// @name Memory behaviour (Fig 1b, Section 4.1)
    /// @{
    double avgOutstanding = 0.0; ///< mean in-flight DRAM reads per cycle
    double avgLoadLatency = 0.0; ///< mean demand load-to-use latency
    std::uint64_t dramReads = 0;
    /// @}

    /// @name Resource occupancies, mean per cycle (Fig 1c, Fig 7)
    /// @{
    double iqOcc = 0.0;
    double robOcc = 0.0;
    double lqOcc = 0.0;
    double sqOcc = 0.0;
    double rfOcc = 0.0;       ///< INT + FP registers in use
    double ltpOcc = 0.0;      ///< instructions in LTP
    double ltpRegsOcc = 0.0;  ///< parked insts with a destination
    double ltpLoadsOcc = 0.0; ///< parked loads
    double ltpStoresOcc = 0.0;///< parked stores
    /// @}

    /// @name LTP behaviour (Fig 7 bottom, Section 5)
    /// @{
    double ltpEnabledFrac = 0.0;
    double parkedFrac = 0.0; ///< parked / committed
    std::uint64_t parked = 0;
    std::uint64_t unparked = 0;
    std::uint64_t forcedUnparks = 0;
    std::uint64_t pressureUnparks = 0;
    double llpredAccuracy = 0.0;
    double bpAccuracy = 0.0;
    /// @}

    /// @name Energy (Fig 10)
    /// @{
    EnergyBreakdown energy;
    double ed2p = 0.0;
    double edp = 0.0;
    /// @}

    /// @name SMT (multi-context) breakdown
    /// @{
    /** One entry per hardware thread, tid order.  Serialized (and
     *  golden-snapshotted) only when there are two or more — a
     *  single-threaded run's Metrics JSON is unchanged. */
    std::vector<ThreadMetrics> threads;
    /** Sum over threads of IPC_i(SMT) / IPC_i(alone); zero until
     *  computed against standalone baselines (weightedSpeedup()). */
    double weightedSpeedup = 0.0;
    /// @}

    /** Interval-sampling summary; disabled for full-detail runs. */
    SamplingStats sampling;

    /** IPC speedup of this run over @p base, as a fraction. */
    double
    speedupOver(const Metrics &base) const
    {
        return base.ipc != 0.0 ? ipc / base.ipc : 0.0;
    }

    /** Performance delta vs @p base in percent (paper-style axis). */
    double
    perfDeltaPct(const Metrics &base) const
    {
        return (speedupOver(base) - 1.0) * 100.0;
    }

    /** ED2P delta vs @p base in percent. */
    double
    ed2pDeltaPct(const Metrics &base) const
    {
        return base.ed2p != 0.0 ? (ed2p / base.ed2p - 1.0) * 100.0 : 0.0;
    }

    std::string toString() const;
};

/** Arithmetic-mean aggregate of a group of runs (paper group averages). */
Metrics averageMetrics(const std::vector<Metrics> &runs,
                       const std::string &label);

/**
 * Two-sided 95% Student-t critical value for @p df degrees of freedom
 * (exact table through df=30, asymptotic 1.96 beyond) — the multiplier
 * behind every reported sampling confidence interval.  df < 1 (fewer
 * than two observations) has no critical value and returns NaN.
 */
double studentT95(int df);

/**
 * Multiprogrammed weighted speedup: sum over hardware threads of
 * IPC_i(SMT) / IPC_i(alone), where @p alone holds each thread's
 * standalone (single-context) run in tid order.  N identical threads
 * with no interference score N.
 * @throws std::runtime_error when the shapes disagree or a standalone
 *         IPC is zero.
 */
double weightedSpeedup(const Metrics &smt,
                       const std::vector<Metrics> &alone);

} // namespace ltp

#endif // LTP_SIM_METRICS_HH
