/**
 * @file
 * Fixed-stride ring buffer for the simulator's hot FIFO structures.
 *
 * The cycle kernel used to funnel its per-cycle traffic (fetch queue,
 * ROB, trace window) through std::deque, whose segmented storage costs
 * an indirection per access and an allocation every few dozen pushes.
 * Ring is a power-of-two circular array: push/pop at either end are a
 * mask and an increment, and operator[] is one indexed load.
 *
 * Capacity grows by doubling when exhausted (amortized O(1)), so
 * "infinite" limit-study structures still work; callers with a known
 * bound pass it to the constructor so steady state never reallocates.
 */

#ifndef LTP_COMMON_RING_HH
#define LTP_COMMON_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace ltp {

/** Power-of-two circular buffer with deque-style ends. */
template <typename T>
class Ring
{
  public:
    /** @param capacity_hint expected peak size (rounded up to 2^k). */
    explicit Ring(std::size_t capacity_hint = 16)
        : buf_(roundUpPow2(capacity_hint < 2 ? 2 : capacity_hint))
    {
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    std::size_t capacity() const { return buf_.size(); }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }
    T &back() { return buf_[wrap(head_ + count_ - 1)]; }
    const T &back() const { return buf_[wrap(head_ + count_ - 1)]; }

    /** @p i counts from the front (0 = oldest). */
    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void
    push_back(T v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[wrap(head_ + count_)] = std::move(v);
        count_ += 1;
    }

    void
    push_front(T v)
    {
        if (count_ == buf_.size())
            grow();
        head_ = wrap(head_ + buf_.size() - 1);
        buf_[head_] = std::move(v);
        count_ += 1;
    }

    void
    pop_front()
    {
        sim_assert(count_ > 0);
        buf_[head_] = T{}; // drop payload references eagerly
        head_ = wrap(head_ + 1);
        count_ -= 1;
    }

    void
    pop_back()
    {
        sim_assert(count_ > 0);
        buf_[wrap(head_ + count_ - 1)] = T{};
        count_ -= 1;
    }

    void
    clear()
    {
        while (count_ > 0)
            pop_back();
        head_ = 0;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

    void
    grow()
    {
        std::vector<T> bigger(buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = std::move(buf_[wrap(head_ + i)]);
        buf_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> buf_; ///< size always a power of two
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace ltp

#endif // LTP_COMMON_RING_HH
