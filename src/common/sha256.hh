/**
 * @file
 * Self-contained SHA-256 (FIPS 180-4), used to derive content-addressed
 * cell keys for the result cache.  Incremental interface plus a one-shot
 * hex helper; no third-party dependency, byte-order independent.
 */

#ifndef LTP_COMMON_SHA256_HH
#define LTP_COMMON_SHA256_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace ltp {

/** Incremental SHA-256: update() any number of times, then hex(). */
class Sha256
{
  public:
    Sha256();

    void update(const void *data, std::size_t n);
    void update(const std::string &bytes)
    {
        update(bytes.data(), bytes.size());
    }

    /** Finalize and return the 64-char lowercase hex digest.  The
     *  hasher must not be updated afterwards. */
    std::string hex();

  private:
    void compress(const std::uint8_t *block);

    std::uint32_t state_[8];
    std::uint8_t buf_[64];
    std::size_t buffered_ = 0;
    std::uint64_t total_ = 0;
};

/** One-shot hex digest of @p bytes. */
std::string sha256Hex(const std::string &bytes);

} // namespace ltp

#endif // LTP_COMMON_SHA256_HH
