/**
 * @file
 * Small statistics package: counters, means, time-weighted occupancy
 * integrators and histograms, loosely modelled on gem5's Stats.
 *
 * Figures 1c and 7 of the paper report *average resources in use per
 * cycle*; @ref ltp::OccupancyStat integrates an occupancy value over
 * cycles so those averages are exact, not sampled.
 *
 * All stats support reset(), which the simulator invokes at the end of
 * pipeline warm-up so only the detailed region is measured.
 */

#ifndef LTP_COMMON_STATS_HH
#define LTP_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ltp {

/** Plain monotonic event counter. */
class Counter
{
  public:
    void operator++(int) { value_ += 1; }
    void operator+=(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Time-weighted occupancy integrator.
 *
 * Two usage styles, exactly equivalent when every change within a cycle
 * happens at the same timestamp:
 *
 *  - Timed: call set(level, now) whenever the occupancy changes; each
 *    call integrates the old level over the elapsed cycles.
 *  - Clocked: bindClock(&now) once, then call the untimed set/add/sub
 *    mutators freely — each one reads the bound cycle counter and
 *    integrates the old level up to it first.  This keeps structure
 *    code free of `now` plumbing *without* a per-cycle advance pass:
 *    a stat that does not change this cycle costs nothing (the core
 *    binds every structure stat to Core::now_ at construction).
 *
 * mean(now) returns the per-cycle average over the measured window.
 * Integration is exact either way — level * elapsed cycles — because
 * the level is piecewise constant between mutations, so deferring the
 * multiply to the next mutation (or to mean()) loses nothing.
 */
class OccupancyStat
{
  public:
    /** Change the current level at time @p now. */
    void
    set(std::int64_t level, Cycle now)
    {
        accumulate(now);
        level_ = level;
    }

    void add(std::int64_t d, Cycle now) { set(level_ + d, now); }
    void sub(std::int64_t d, Cycle now) { set(level_ - d, now); }

    /// @name Clocked style: bind once, then untimed mutators
    /// @{

    /**
     * Bind the cycle counter the untimed mutators integrate against.
     * Must happen before the first untimed mutation; the pointee must
     * outlive the stat and never move backwards.  Unbound stats fall
     * back to pure level tracking — integrate them explicitly with
     * advanceTo() (standalone structure tests do this).
     */
    void bindClock(const Cycle *clock) { clock_ = clock; }

    /** Explicitly integrate the current level up to @p now. */
    void advanceTo(Cycle now) { accumulate(now); }

    void
    set(std::int64_t level)
    {
        if (clock_)
            accumulate(*clock_);
        level_ = level;
    }

    void add(std::int64_t d) { set(level_ + d); }
    void sub(std::int64_t d) { set(level_ - d); }
    /// @}

    std::int64_t level() const { return level_; }

    /** Average level from the last reset until @p now. */
    double
    mean(Cycle now)
    {
        accumulate(now);
        Cycle elapsed = now - start_;
        return elapsed ? static_cast<double>(integral_) / elapsed : 0.0;
    }

    /** Restart the measurement window at @p now, keeping the level. */
    void
    reset(Cycle now)
    {
        integral_ = 0;
        start_ = now;
        last_ = now;
    }

  private:
    void
    accumulate(Cycle now)
    {
        sim_assert(now >= last_);
        integral_ += level_ * static_cast<std::int64_t>(now - last_);
        last_ = now;
    }

    std::int64_t level_ = 0;
    std::int64_t integral_ = 0;
    Cycle start_ = 0;
    Cycle last_ = 0;
    const Cycle *clock_ = nullptr; ///< untimed mutators' time source
};

/** Fixed-bucket histogram with overflow bucket. */
class Histogram
{
  public:
    /** @param buckets number of buckets; @param width bucket width. */
    explicit Histogram(int buckets = 16, std::uint64_t width = 1)
        : width_(width), counts_(buckets + 1, 0)
    {
        sim_assert(buckets > 0 && width > 0);
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t b = v / width_;
        if (b >= counts_.size() - 1)
            b = counts_.size() - 1;
        counts_[b] += 1;
        total_ += 1;
        sum_ += v;
    }

    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }
    double mean() const { return total_ ? double(sum_) / total_ : 0.0; }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        sum_ = 0;
    }

    std::string toString(const std::string &name) const;

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/** Ratio helper that is safe against zero denominators. */
inline double
safeDiv(double num, double den)
{
    return den != 0.0 ? num / den : 0.0;
}

/** Percent change of @p value relative to @p base (paper-style deltas). */
inline double
pctDelta(double value, double base)
{
    return base != 0.0 ? (value / base - 1.0) * 100.0 : 0.0;
}

} // namespace ltp

#endif // LTP_COMMON_STATS_HH
