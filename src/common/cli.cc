#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ltp {

Cli::Cli(int argc, char **argv, const std::set<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);

        std::string key, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            key = arg;
            // `--key value` form only if the next token isn't a flag.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)) {
                value = argv[++i];
            } else {
                value = "1"; // boolean switch
            }
        }
        if (!known.count(key))
            fatal("unknown flag --%s", key.c_str());
        values_[key] = value;
    }
}

bool
Cli::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Cli::str(const std::string &key, const std::string &dflt) const
{
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
}

std::int64_t
Cli::integer(const std::string &key, std::int64_t dflt) const
{
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::strtoll(it->second.c_str(),
                                                     nullptr, 0);
}

double
Cli::real(const std::string &key, double dflt) const
{
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::strtod(it->second.c_str(),
                                                    nullptr);
}

bool
Cli::flag(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return false;
    return it->second != "0" && it->second != "false";
}

} // namespace ltp
