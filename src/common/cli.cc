#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace ltp {

namespace {

[[noreturn]] void
printHelp(const char *prog, const std::set<std::string> &known,
          const std::string &summary)
{
    if (!summary.empty())
        std::printf("%s\n\n", summary.c_str());
    std::printf("usage: %s [--flag[=value]]...\n", prog);
    std::printf("known flags:\n");
    for (const std::string &key : known)
        std::printf("  --%s\n", key.c_str());
    std::exit(0);
}

} // namespace

Cli::Cli(int argc, char **argv, const std::set<std::string> &known,
         const std::string &summary)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            printHelp(argv[0], known, summary);
        if (arg.rfind("--", 0) != 0)
            fatal("%s: unexpected positional argument '%s'", argv[0],
                  arg.c_str());
        arg = arg.substr(2);

        std::string key, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            key = arg;
            // `--key value` form only if the next token isn't a flag.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)) {
                value = argv[++i];
            } else {
                value = "1"; // boolean switch
            }
        }
        if (key == "help")
            printHelp(argv[0], known, summary);
        // argv[0] names the subcommand ("ltp sweep"), so a typo'd
        // flag in a long pipeline says exactly where it happened.
        if (!known.count(key))
            fatal("%s: unknown flag --%s (try %s --help)", argv[0],
                  key.c_str(), argv[0]);
        values_[key].push_back(value);
    }
}

const std::string *
Cli::last(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second.back();
}

bool
Cli::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Cli::str(const std::string &key, const std::string &dflt) const
{
    const std::string *v = last(key);
    return v ? *v : dflt;
}

std::int64_t
Cli::integer(const std::string &key, std::int64_t dflt) const
{
    const std::string *v = last(key);
    return v ? std::strtoll(v->c_str(), nullptr, 0) : dflt;
}

double
Cli::real(const std::string &key, double dflt) const
{
    const std::string *v = last(key);
    return v ? std::strtod(v->c_str(), nullptr) : dflt;
}

bool
Cli::flag(const std::string &key) const
{
    const std::string *v = last(key);
    return v && *v != "0" && *v != "false";
}

std::vector<std::string>
Cli::list(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>{}
                               : it->second;
}

} // namespace ltp
