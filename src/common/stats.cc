#include "common/stats.hh"

#include <sstream>

namespace ltp {

std::string
Histogram::toString(const std::string &name) const
{
    std::ostringstream os;
    os << name << ": total=" << total_ << " mean=" << mean() << " [";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << counts_[i];
    }
    os << "]";
    return os.str();
}

} // namespace ltp
