/**
 * @file
 * Hierarchical timing wheel for commutative simulator events.
 *
 * A two-level wheel (256 one-cycle slots backed by 256 slots of 256
 * cycles, with an overflow list beyond that) replaces a binary min-heap
 * for event streams whose same-cycle processing order is immaterial:
 * schedule and fire are O(1) amortised instead of O(log n), and the
 * per-tick idle cost is a single slot load — no comparator, no sift.
 *
 * Events due at or before the current cycle are deferred to the next
 * one, matching the heap-based scheduler's behaviour of only draining
 * events at the top of each tick (an event scheduled *during* cycle N
 * for cycle N is observed at N+1).
 *
 * NOT suitable for events whose equal-timestamp pop order is
 * observable (e.g. width-budgeted completion draining): the wheel
 * fires same-cycle events in slot insertion order, which differs from
 * a heap's tie order.
 */

#ifndef LTP_COMMON_TIMING_WHEEL_HH
#define LTP_COMMON_TIMING_WHEEL_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ltp {

template <typename Ev>
class TimingWheel
{
  public:
    /** Schedule @p ev to fire at cycle max(@p when, now + 1). */
    void
    schedule(Cycle when, const Ev &ev)
    {
        if (when <= now_)
            when = now_ + 1;
        place(when, ev);
        size_ += 1;
    }

    /**
     * Advance to cycle @p now (monotone), invoking @p fn on every
     * event that comes due.  Same-cycle events fire in insertion
     * order.
     */
    template <typename Fn>
    void
    advanceTo(Cycle now, Fn &&fn)
    {
        sim_assert(now >= now_);
        while (now_ < now) {
            now_ += 1;
            if ((now_ & kMask) == 0)
                cascade();
            auto &slot = l0_[now_ & kMask];
            for (Entry &e : slot) {
                size_ -= 1;
                fn(e.ev);
            }
            slot.clear();
        }
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    Cycle now() const { return now_; }

  private:
    struct Entry
    {
        Cycle when;
        Ev ev;
    };

    static constexpr Cycle kSlots = 256;
    static constexpr Cycle kMask = kSlots - 1;
    static constexpr Cycle kHorizon = kSlots * kSlots;

    void
    place(Cycle when, const Ev &ev)
    {
        // Level 1 holds strictly *future* epochs only: an event a full
        // revolution ahead shares its slot index with the current
        // (already-cascaded) epoch and would fire a revolution late.
        if (when - now_ < kSlots)
            l0_[when & kMask].push_back(Entry{when, ev});
        else if ((when >> 8) - (now_ >> 8) < kSlots)
            l1_[(when >> 8) & kMask].push_back(Entry{when, ev});
        else
            overflow_.push_back(Entry{when, ev});
    }

    /** Entering a new level-1 epoch: spill its slot down to level 0
     *  (and, once per full revolution, re-place the overflow list). */
    void
    cascade()
    {
        auto &slot = l1_[(now_ >> 8) & kMask];
        for (const Entry &e : slot)
            l0_[e.when & kMask].push_back(e);
        slot.clear();
        if ((now_ & (kHorizon - 1)) == 0 && !overflow_.empty()) {
            std::vector<Entry> spill;
            spill.swap(overflow_);
            for (const Entry &e : spill)
                place(e.when, e.ev);
        }
    }

    Cycle now_ = 0;
    std::size_t size_ = 0;
    std::vector<Entry> l0_[kSlots];
    std::vector<Entry> l1_[kSlots];
    std::vector<Entry> overflow_;
};

} // namespace ltp

#endif // LTP_COMMON_TIMING_WHEEL_HH
