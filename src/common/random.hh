/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the workload generators and tests goes
 * through @ref ltp::Rng so that a (kernel, seed) pair always produces the
 * identical instruction stream — a hard requirement for the oracle
 * classification pre-pass, which replays the trace from the beginning.
 *
 * The generator is xorshift64*, which is small, fast, and has easily
 * reproducible cross-platform behaviour (unlike std::mt19937 plus
 * std::uniform_int_distribution, whose output is implementation defined).
 */

#ifndef LTP_COMMON_RANDOM_HH
#define LTP_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace ltp {

/** xorshift64* PRNG with convenience range helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        sim_assert(bound > 0);
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        sim_assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability p (0..1). */
    bool
    chance(double p)
    {
        return static_cast<double>(next() >> 11) *
            (1.0 / 9007199254740992.0) < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace ltp

#endif // LTP_COMMON_RANDOM_HH
