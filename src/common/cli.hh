/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries.
 *
 * Supports `--key=value` and `--key value` forms plus boolean switches
 * (`--fast`).  Unknown flags are fatal so typos in experiment scripts
 * cannot silently fall back to defaults.
 */

#ifndef LTP_COMMON_CLI_HH
#define LTP_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace ltp {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Parse argv.  @p known lists every accepted flag name; passing a
     * flag outside this set terminates with fatal().
     */
    Cli(int argc, char **argv, const std::set<std::string> &known);

    bool has(const std::string &key) const;
    std::string str(const std::string &key, const std::string &dflt) const;
    std::int64_t integer(const std::string &key, std::int64_t dflt) const;
    double real(const std::string &key, double dflt) const;
    bool flag(const std::string &key) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace ltp

#endif // LTP_COMMON_CLI_HH
