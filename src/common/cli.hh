/**
 * @file
 * Minimal command-line flag parser for the bench, tool, and example
 * binaries.
 *
 * Supports `--key=value` and `--key value` forms plus boolean switches
 * (`--fast`).  `--help` (or `-h`) prints the known-flag set and exits
 * with status 0; any other unknown flag is fatal so typos in experiment
 * scripts cannot silently fall back to defaults.
 */

#ifndef LTP_COMMON_CLI_HH
#define LTP_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ltp {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Parse argv.  @p known lists every accepted flag name; passing a
     * flag outside this set terminates with fatal(), except `--help`,
     * which prints usage (plus @p summary when given) and exits 0.
     */
    Cli(int argc, char **argv, const std::set<std::string> &known,
        const std::string &summary = "");

    bool has(const std::string &key) const;
    std::string str(const std::string &key, const std::string &dflt) const;
    std::int64_t integer(const std::string &key, std::int64_t dflt) const;
    double real(const std::string &key, double dflt) const;
    bool flag(const std::string &key) const;

    /** Every value of a repeatable flag (e.g. `--set a=1 --set b=2`),
     *  in command-line order; empty if absent. */
    std::vector<std::string> list(const std::string &key) const;

  private:
    /** Scalar accessors read the last occurrence of a flag. */
    const std::string *last(const std::string &key) const;

    std::map<std::string, std::vector<std::string>> values_;
};

} // namespace ltp

#endif // LTP_COMMON_CLI_HH
