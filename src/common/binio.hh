/**
 * @file
 * Little-endian binary I/O helpers shared by the trace subsystem:
 * byte-string appenders, a bounds-checked reader, and CRC-32.
 *
 * Everything is explicitly little-endian so `.lttr` trace files are
 * portable across hosts; the appenders and reader never reinterpret
 * memory, so they are also alignment- and strict-aliasing-safe.
 */

#ifndef LTP_COMMON_BINIO_HH
#define LTP_COMMON_BINIO_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace ltp {

/// @name Little-endian appenders onto a byte string
/// @{
inline void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

inline void
putU16le(std::string &out, std::uint16_t v)
{
    putU8(out, static_cast<std::uint8_t>(v));
    putU8(out, static_cast<std::uint8_t>(v >> 8));
}

inline void
putU32le(std::string &out, std::uint32_t v)
{
    putU16le(out, static_cast<std::uint16_t>(v));
    putU16le(out, static_cast<std::uint16_t>(v >> 16));
}

inline void
putU64le(std::string &out, std::uint64_t v)
{
    putU32le(out, static_cast<std::uint32_t>(v));
    putU32le(out, static_cast<std::uint32_t>(v >> 32));
}
/// @}

/**
 * Bounds-checked little-endian reader over an in-memory byte buffer
 * (the mmap-style access pattern: the whole file is resident, records
 * are decoded in place on demand).
 *
 * @throws std::runtime_error on any read past the end of the buffer.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes, std::size_t offset = 0)
        : bytes_(bytes), off_(offset)
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();

    /** Read @p n raw bytes. */
    std::string raw(std::size_t n);

    /** Skip @p n bytes (bounds-checked like a read). */
    void skip(std::size_t n);

    std::size_t offset() const { return off_; }

    std::size_t
    remaining() const
    {
        return off_ > bytes_.size() ? 0 : bytes_.size() - off_;
    }

  private:
    /** Check that @p n more bytes exist; throws otherwise. */
    void need(std::size_t n) const;

    const std::string &bytes_;
    std::size_t off_;
};

/** Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). */
class Crc32
{
  public:
    void update(const void *data, std::size_t n);
    void update(const std::string &bytes)
    {
        update(bytes.data(), bytes.size());
    }

    /** Finalized checksum of everything seen so far. */
    std::uint32_t value() const { return state_ ^ 0xffffffffu; }

  private:
    std::uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC-32 of @p bytes. */
std::uint32_t crc32(const std::string &bytes);

} // namespace ltp

#endif // LTP_COMMON_BINIO_HH
