/**
 * @file
 * Aligned ASCII table and CSV output used by the benchmark harnesses to
 * print paper-style result tables (one table per figure/table of the
 * paper; see bench/).
 */

#ifndef LTP_COMMON_TABLE_HH
#define LTP_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace ltp {

/** Column-aligned text table with an optional CSV rendering. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Convenience: "+x.x%" style percentage cell. */
    static std::string pct(double v, int precision = 1);

    /** Render with padded columns, a header rule, and `|` separators. */
    std::string toString() const;

    /** Render as comma-separated values (for EXPERIMENTS.md capture). */
    std::string toCsv() const;

    /** Print toString() to stdout with a title line. */
    void print(const std::string &title) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ltp

#endif // LTP_COMMON_TABLE_HH
