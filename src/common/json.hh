/**
 * @file
 * Self-contained JSON reader/writer shared by result archiving
 * (sim/report), config serialization (sim/config), and scenario files
 * (sim/scenario).  No third-party dependency.
 *
 * The dialect is full JSON minus unicode escapes: objects, arrays,
 * strings, numbers (including the nan/inf spellings %.17g can emit),
 * booleans, and null.  Numbers keep their source lexeme alongside the
 * parsed double so integer fields round-trip exactly even above 2^53.
 */

#ifndef LTP_COMMON_JSON_HH
#define LTP_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ltp {

/** One parsed JSON value (tree node). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    /** String payload; for Kind::Number, the source lexeme. */
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Human name of @p kind for error messages ("a string", ...). */
    static const char *kindName(Kind kind);
};

/**
 * Parse @p text into a value tree.
 * @throws std::runtime_error naming the byte offset on malformed input.
 */
JsonValue parseJson(const std::string &text);

/**
 * Render a value tree; objects render with sorted keys (map order),
 * nested 2-space indentation starting at column @p indent.
 */
std::string writeJson(const JsonValue &v, int indent = 0);

/**
 * Single-line rendering with sorted keys and no whitespace.  Because
 * key order is canonical (map order) and numbers keep their shortest
 * round-trip lexeme, two value trees with equal content always render
 * to equal bytes — the canonical form hashed for cell keys and the
 * framing used by the newline-delimited serve wire protocol.
 */
std::string writeJsonCompact(const JsonValue &v);

/** Shortest representation that parses back to the identical double. */
std::string jsonNum(double v);

/**
 * Exact unsigned 64-bit value from a number lexeme.  @return false on
 * signs, fractions, exponents, or out-of-range values (callers decide
 * how to report; the lexeme form keeps integers above 2^53 exact).
 */
bool u64FromLexeme(const std::string &s, std::uint64_t *out);

/** Quote and escape @p s as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/**
 * Flat key → JSON-fragment builder keeping insertion order, for
 * writers that want stable, hand-ordered output (reports, configs).
 */
class JsonObjectBuilder
{
  public:
    void
    field(const std::string &key, const std::string &fragment)
    {
        fields_.emplace_back(key, fragment);
    }

    void str(const std::string &k, const std::string &v)
    {
        field(k, jsonQuote(v));
    }
    void num(const std::string &k, double v) { field(k, jsonNum(v)); }
    void
    u64(const std::string &k, std::uint64_t v)
    {
        field(k, std::to_string(v));
    }
    void
    boolean(const std::string &k, bool v)
    {
        field(k, v ? "true" : "false");
    }

    bool empty() const { return fields_.empty(); }

    std::string render(int indent) const;

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

} // namespace ltp

#endif // LTP_COMMON_JSON_HH
