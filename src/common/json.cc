#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ltp {

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "a boolean";
      case Kind::Number: return "a number";
      case Kind::String: return "a string";
      case Kind::Array: return "an array";
      case Kind::Object: return "an object";
    }
    return "?";
}

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
u64FromLexeme(const std::string &s, std::uint64_t *out)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        return false;
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string
JsonObjectBuilder::render(int indent) const
{
    std::string pad(static_cast<std::size_t>(indent), ' ');
    std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += inner + jsonQuote(fields_[i].first) + ": " +
               fields_[i].second;
        if (i + 1 < fields_.size())
            out += ",";
        out += "\n";
    }
    out += pad + "}";
    return out;
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent
// ---------------------------------------------------------------------------

namespace {

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_ += 1;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_ += 1;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    value()
    {
        char c = peek();
        if (c == '{')
            return objectValue();
        if (c == '[')
            return arrayValue();
        if (c == '"')
            return stringValue();
        if (c == 't' || c == 'f') {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = (c == 't');
            if (!literal(v.boolean ? "true" : "false"))
                fail("bad literal");
            return v;
        }
        if (c == 'n' && literal("null")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Null;
            return v;
        }
        return numberValue(); // numbers, including nan/inf spellings
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            pos_ += 1;
            return v;
        }
        for (;;) {
            JsonValue key = stringValue();
            expect(':');
            v.object[key.str] = value();
            char c = peek();
            pos_ += 1;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            pos_ += 1;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            char c = peek();
            pos_ += 1;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    JsonValue
    stringValue()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                pos_ += 1;
                if (pos_ >= text_.size())
                    fail("bad escape");
                switch (text_[pos_]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default: fail("unsupported escape");
                }
            }
            v.str += c;
            pos_ += 1;
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        pos_ += 1; // closing quote
        return v;
    }

    JsonValue
    numberValue()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == 'n' ||
                text_[pos_] == 'i' || text_[pos_] == 'f' ||
                text_[pos_] == 'a'))
            pos_ += 1;
        if (pos_ == start)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.str = text_.substr(start, pos_ - start);
        // Full-lexeme parse: partial consumption ("4..25", "1e") is a
        // typo, not a number.
        char *end = nullptr;
        v.num = std::strtod(v.str.c_str(), &end);
        if (end == v.str.c_str() || *end != '\0')
            fail("bad number '" + v.str + "'");
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

void
writeValue(const JsonValue &v, int indent, std::string &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        return;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        return;
      case JsonValue::Kind::Number:
        out += v.str.empty() ? jsonNum(v.num) : v.str;
        return;
      case JsonValue::Kind::String:
        out += jsonQuote(v.str);
        return;
      case JsonValue::Kind::Array: {
        if (v.array.empty()) {
            out += "[]";
            return;
        }
        out += "[";
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                out += ", ";
            writeValue(v.array[i], indent, out);
        }
        out += "]";
        return;
      }
      case JsonValue::Kind::Object: {
        if (v.object.empty()) {
            out += "{}";
            return;
        }
        std::string pad(static_cast<std::size_t>(indent), ' ');
        std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
        out += "{\n";
        std::size_t i = 0;
        for (const auto &[key, value] : v.object) {
            out += inner + jsonQuote(key) + ": ";
            writeValue(value, indent + 2, out);
            if (++i < v.object.size())
                out += ",";
            out += "\n";
        }
        out += pad + "}";
        return;
      }
    }
}

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

std::string
writeJson(const JsonValue &v, int indent)
{
    std::string out;
    writeValue(v, indent, out);
    return out;
}

namespace {

void
writeCompact(const JsonValue &v, std::string &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        return;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        return;
      case JsonValue::Kind::Number:
        out += v.str.empty() ? jsonNum(v.num) : v.str;
        return;
      case JsonValue::Kind::String:
        out += jsonQuote(v.str);
        return;
      case JsonValue::Kind::Array: {
        out += "[";
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                out += ",";
            writeCompact(v.array[i], out);
        }
        out += "]";
        return;
      }
      case JsonValue::Kind::Object: {
        out += "{";
        std::size_t i = 0;
        for (const auto &[key, value] : v.object) {
            if (i++)
                out += ",";
            out += jsonQuote(key) + ":";
            writeCompact(value, out);
        }
        out += "}";
        return;
      }
    }
}

} // namespace

std::string
writeJsonCompact(const JsonValue &v)
{
    std::string out;
    writeCompact(v, out);
    return out;
}

} // namespace ltp
