/**
 * @file
 * Fixed-size worker pool with std::future results.
 *
 * Deliberately minimal — no work stealing, no task priorities: sweep
 * jobs are coarse (one whole simulation each, milliseconds to seconds),
 * so a single locked FIFO queue is nowhere near contention-bound.
 * Determinism note: the pool guarantees nothing about execution order;
 * callers that need reproducible results must make each task a pure
 * function of its inputs (the Runner's jobs are — every Simulator owns
 * its Rng, seeded from the job's config).
 */

#ifndef LTP_COMMON_THREAD_POOL_HH
#define LTP_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ltp {

/** Fixed-size thread pool; tasks run FIFO, results via std::future. */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 selects defaultThreads(). */
    explicit ThreadPool(int threads = 0);

    /** Drains the queue: blocks until every submitted task has run. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Hardware concurrency, with a floor of 1. */
    static int defaultThreads();

    /** Enqueue @p fn; the future reports its result (or exception). */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace ltp

#endif // LTP_COMMON_THREAD_POOL_HH
