#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ltp {

namespace {

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace ltp
