/**
 * @file
 * gem5-style status and error reporting: panic/fatal/warn/inform.
 *
 *  - panic():  an internal invariant was violated (a simulator bug).
 *              Aborts so that a debugger/core dump is available.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, impossible parameter combination).
 *              Exits with status 1.
 *  - warn():   something is modelled approximately; simulation continues.
 *  - inform(): plain status output.
 */

#ifndef LTP_COMMON_LOGGING_HH
#define LTP_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ltp {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ltp

#define panic(...) ::ltp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::ltp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::ltp::warnImpl(__VA_ARGS__)
#define inform(...) ::ltp::informImpl(__VA_ARGS__)

/**
 * Simulator-internal invariant check.  Unlike assert() this is always
 * compiled in: experiments are run in release builds and silent state
 * corruption in a performance model produces wrong *numbers*, not crashes.
 */
#define sim_assert(cond)                                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            panic("assertion failed: %s", #cond);                           \
    } while (0)

#endif // LTP_COMMON_LOGGING_HH
