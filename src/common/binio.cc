#include "common/binio.hh"

#include <array>
#include <stdexcept>

namespace ltp {

void
ByteReader::need(std::size_t n) const
{
    // Guard off_ first: a construction offset past the end would make
    // the size_t subtraction wrap and defeat the bounds check.
    if (off_ > bytes_.size() || n > bytes_.size() - off_)
        throw std::runtime_error(
            "binio: read of " + std::to_string(n) + " bytes at offset " +
            std::to_string(off_) + " past end of " +
            std::to_string(bytes_.size()) + "-byte buffer");
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(bytes_[off_++]);
}

std::uint16_t
ByteReader::u16()
{
    std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (std::uint16_t(u8()) << 8));
}

std::uint32_t
ByteReader::u32()
{
    std::uint32_t lo = u16();
    return lo | (std::uint32_t(u16()) << 16);
}

std::uint64_t
ByteReader::u64()
{
    std::uint64_t lo = u32();
    return lo | (std::uint64_t(u32()) << 32);
}

std::string
ByteReader::raw(std::size_t n)
{
    need(n);
    std::string out = bytes_.substr(off_, n);
    off_ += n;
    return out;
}

void
ByteReader::skip(std::size_t n)
{
    need(n);
    off_ += n;
}

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

void
Crc32::update(const void *data, std::size_t n)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    state_ = c;
}

std::uint32_t
crc32(const std::string &bytes)
{
    Crc32 crc;
    crc.update(bytes);
    return crc.value();
}

} // namespace ltp
