#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace ltp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    sim_assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    sim_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
Table::pct(double v, int precision)
{
    return strprintf("%+.*f%%", precision, v);
}

std::string
Table::toString() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? " | " : "| ");
            os << row[c];
            os << std::string(width[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };

    std::ostringstream os;
    emit_row(os, headers_);
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << '|';
    os << '\n';
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print(const std::string &title) const
{
    std::printf("\n== %s ==\n%s", title.c_str(), toString().c_str());
    std::fflush(stdout);
}

} // namespace ltp
