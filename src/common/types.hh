/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 *
 * The simulator is cycle driven: all points in time are expressed as a
 * @ref ltp::Cycle counted from the beginning of the simulation.  Dynamic
 * instructions are identified by a monotonically increasing @ref
 * ltp::SeqNum (the "global sequence number" in gem5 terminology) which is
 * also the index of the instruction in the input trace.
 */

#ifndef LTP_COMMON_TYPES_HH
#define LTP_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ltp {

/** Byte address in the simulated (virtual == physical) address space. */
using Addr = std::uint64_t;

/** Absolute time in CPU clock cycles. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number == position in the input trace. */
using SeqNum = std::uint64_t;

/** Sentinel for "no cycle scheduled / never". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid sequence number. */
inline constexpr SeqNum kSeqNone = std::numeric_limits<SeqNum>::max();

/**
 * Capacity value used to model the limit study's "effectively unlimited"
 * structures.  Large enough that no experiment ever fills it, small enough
 * that naive `std::vector(capacity)` allocations stay cheap.
 */
inline constexpr int kInfiniteSize = 1 << 20;

/** True if a configured structure size means "unlimited". */
inline constexpr bool
isInfinite(int size)
{
    return size >= kInfiniteSize;
}

/** Cache block size used throughout the hierarchy (Table 1: 64B). */
inline constexpr int kBlockBytes = 64;

/** Block address (cache line granularity) of a byte address. */
inline constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(kBlockBytes - 1);
}

} // namespace ltp

#endif // LTP_COMMON_TYPES_HH
