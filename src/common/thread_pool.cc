#include "common/thread_pool.hh"

namespace ltp {

int
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : defaultThreads();
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
            // Keep draining after stop: submitted futures must complete.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace ltp
