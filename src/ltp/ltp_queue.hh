/**
 * @file
 * The Long Term Parking structure itself — Sections 5.2 and Appendix A.
 *
 * For the Non-Urgent-only design the LTP is a plain FIFO queue: parked
 * instructions are inserted at rename in program order and only ever
 * leave from the head (ROB-position wakeup is in program order) — this
 * is the property that makes the structure "enormously more efficient"
 * than an IQ.
 *
 * For the Non-Ready modes the structure additionally supports
 * CAM-style extraction: any entry whose ticket vector has been fully
 * cleared may leave out of order (the paper's ticket bit-matrix).  The
 * energy model charges the two modes differently.
 *
 * The model is event-driven, mirroring the IQ's dependents-list
 * scheduler: parked instructions live on an intrusive seq-ordered list
 * (O(1) park / extract / squash, no allocation), and each instruction
 * carries a count of its still-pending tickets.  Every ticket keeps a
 * *subscriber* cohort — the parked instructions waiting on it — so a
 * ticket-clear broadcast (one DRAM return) wakes its whole cohort in
 * one pass instead of the core re-scanning every parked instruction
 * every cycle.  Instructions whose count reaches zero move onto one of
 * two seq-ordered ready lists (urgent / non-urgent); wakeup selection
 * is a bounded merge walk of those lists, never a scan of the queue.
 *
 * Subscriptions are never eagerly torn down: liveness is checked
 * against the instruction's park-episode counter (DynInst::ltpGen) on
 * each walk, and stale entries are compacted in place.  A subscription
 * deliberately outlives the ticket's *clear* — if the ticket id is
 * released and reallocated to a new long-latency instruction while the
 * subscriber is still parked, the reused id re-blocks it, exactly as
 * the per-cycle liveSubset scan used to observe.
 *
 * Capacity and insert/extract port counts are configurable — the
 * subject of Figure 10's sweep.
 */

#ifndef LTP_LTP_LTP_QUEUE_HH
#define LTP_LTP_LTP_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** Bounded parking queue with per-cycle port limits. */
class LtpQueue
{
  public:
    /**
     * @param entries       capacity (kInfiniteSize for the limit study)
     * @param insert_ports  parks accepted per cycle
     * @param extract_ports wakeups served per cycle
     */
    LtpQueue(int entries, int insert_ports, int extract_ports);

    /**
     * Replenish port budgets explicitly (standalone/test use).  A
     * clock-bound queue (bindClock) replenishes lazily instead: every
     * port consumer checks the bound cycle and refreshes stale budgets
     * in place, so the core's per-cycle begin pass is gone.
     */
    void beginCycle();

    /** Bind the cycle counter for lazy port replenishment. */
    void bindClock(const Cycle *clock) { clock_ = clock; }

    /** Can another instruction be parked this cycle? */
    bool canInsert() const;

    /**
     * Park @p inst (callers park in program order).  Subscribes it to
     * every ticket in its mask; all mask bits are pending at park time
     * (rename live-filters the mask in the same cycle), so the pending
     * count starts at the mask population.
     */
    void push(DynInst *inst);

    /** Can another instruction be woken this cycle? */
    bool canExtract() const;

    /** Oldest parked instruction, or nullptr. */
    DynInst *front() const { return head_; }

    /** Remove the head (FIFO extraction; consumes an extract port). */
    void popFront();

    /**
     * CAM extraction for Non-Ready wakeup: remove @p inst wherever it
     * sits in the queue (consumes an extract port).
     */
    void remove(DynInst *inst);

    /** Squash support: drop every entry younger than @p seq. */
    void squashYoungerThan(SeqNum seq);

    /// @name Ticket-event hooks (the batched-unpark path)
    /// @{
    /**
     * Ticket @p t transitioned pending → cleared: decrement every live
     * subscriber's pending count; those reaching zero join a ready
     * list.  Call only on an actual transition.
     */
    void onTicketCleared(int t);

    /**
     * Ticket @p t was (re)allocated, so its pending bit is set again:
     * any still-parked subscriber from a previous life of the id is
     * re-blocked (the ticket-aliasing case the per-cycle scan handled
     * implicitly).
     */
    void onTicketPending(int t);
    /// @}

    /// @name Ready-list access for wakeup selection (seq-ordered)
    /// @{
    DynInst *urgentReadyFront() const { return uready_head_; }
    DynInst *nonUrgentReadyFront() const { return ready_head_; }
    static DynInst *readyNext(const DynInst *i) { return i->ltpReadyNext; }
    /// @}

    /** Visit entries oldest-first (brute-force checks, inspection). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (DynInst *i = head_; i; i = i->ltpNext)
            fn(i);
    }

    int size() const { return size_; }
    bool empty() const { return size_ == 0; }
    int capacity() const { return capacity_; }

    /// @name Statistics (Figure 7 utilisation, Figure 10 activity)
    /// @{
    Counter pushes;
    Counter pops;
    Counter camExtractions;
    Counter insertPortStalls;
    Counter extractPortStalls;
    Counter fullStalls;
    OccupancyStat occupancy;
    OccupancyStat parkedWithDest; ///< "Regs in LTP"  (Fig 7)
    OccupancyStat parkedLoads;    ///< "Loads in LTP" (Fig 7)
    OccupancyStat parkedStores;   ///< "Stores in LTP"(Fig 7)
    void resetStats(Cycle now);
    /// @}

  private:
    /** One parked instruction waiting on a ticket; `gen` snapshots
     *  DynInst::ltpGen so recycled pool slots self-invalidate. */
    struct Subscriber
    {
        DynInst *inst;
        std::uint64_t gen;
    };

    bool subscriberLive(const Subscriber &s) const
    {
        return s.inst->ltpGen == s.gen && s.inst->inLtp;
    }

    void unlink(DynInst *inst);
    void readyInsert(DynInst *inst);
    void readyRemove(DynInst *inst);
    void accountRemove(DynInst *inst);

    /** Lazy port replenishment for clock-bound queues (see beginCycle). */
    void
    refreshPorts() const
    {
        if (clock_ && port_stamp_ != *clock_) {
            port_stamp_ = *clock_;
            inserts_left_ = insert_ports_;
            extracts_left_ = extract_ports_;
        }
    }

    int capacity_;
    int insert_ports_;
    int extract_ports_;
    const Cycle *clock_ = nullptr;   ///< lazy-replenish time source
    mutable Cycle port_stamp_ = 0;   ///< cycle the budgets refer to
    mutable int inserts_left_ = 0;
    mutable int extracts_left_ = 0;
    int size_ = 0;

    DynInst *head_ = nullptr; ///< seq-ordered parked list
    DynInst *tail_ = nullptr;
    DynInst *uready_head_ = nullptr; ///< urgent, tickets clear
    DynInst *uready_tail_ = nullptr;
    DynInst *ready_head_ = nullptr; ///< non-urgent, tickets clear
    DynInst *ready_tail_ = nullptr;

    std::vector<std::vector<Subscriber>> subs_; ///< per-ticket cohorts
};

} // namespace ltp

#endif // LTP_LTP_LTP_QUEUE_HH
