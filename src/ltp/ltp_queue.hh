/**
 * @file
 * The Long Term Parking structure itself — Sections 5.2 and Appendix A.
 *
 * For the Non-Urgent-only design the LTP is a plain FIFO queue: parked
 * instructions are inserted at rename in program order and only ever
 * leave from the head (ROB-position wakeup is in program order) — this
 * is the property that makes the structure "enormously more efficient"
 * than an IQ.
 *
 * For the Non-Ready modes the structure additionally supports
 * CAM-style extraction: any entry whose ticket vector has been fully
 * cleared may leave out of order (the paper's ticket bit-matrix).  The
 * energy model charges the two modes differently.
 *
 * Capacity and insert/extract port counts are configurable — the
 * subject of Figure 10's sweep.
 */

#ifndef LTP_LTP_LTP_QUEUE_HH
#define LTP_LTP_LTP_QUEUE_HH

#include <deque>
#include <functional>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** Bounded parking queue with per-cycle port limits. */
class LtpQueue
{
  public:
    /**
     * @param entries       capacity (kInfiniteSize for the limit study)
     * @param insert_ports  parks accepted per cycle
     * @param extract_ports wakeups served per cycle
     */
    LtpQueue(int entries, int insert_ports, int extract_ports);

    /** Start-of-cycle: replenish port budgets. */
    void beginCycle();

    /** Can another instruction be parked this cycle? */
    bool canInsert() const;

    /** Park @p inst (callers park in program order). */
    void push(DynInst *inst);

    /** Can another instruction be woken this cycle? */
    bool canExtract() const;

    /** Oldest parked instruction, or nullptr. */
    DynInst *front() const;

    /** Remove the head (FIFO extraction; consumes an extract port). */
    void popFront();

    /**
     * CAM extraction for Non-Ready wakeup: remove @p inst wherever it
     * sits in the queue (consumes an extract port).
     */
    void remove(DynInst *inst);

    /** Squash support: drop every entry younger than @p seq. */
    void squashYoungerThan(SeqNum seq);

    /** Visit entries oldest-first (for ticket-cleared scans). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (DynInst *inst : entries_)
            fn(inst);
    }

    int size() const { return static_cast<int>(entries_.size()); }
    bool empty() const { return entries_.empty(); }
    int capacity() const { return capacity_; }

    /// @name Statistics (Figure 7 utilisation, Figure 10 activity)
    /// @{
    Counter pushes;
    Counter pops;
    Counter camExtractions;
    Counter insertPortStalls;
    Counter extractPortStalls;
    Counter fullStalls;
    OccupancyStat occupancy;
    OccupancyStat parkedWithDest; ///< "Regs in LTP"  (Fig 7)
    OccupancyStat parkedLoads;    ///< "Loads in LTP" (Fig 7)
    OccupancyStat parkedStores;   ///< "Stores in LTP"(Fig 7)
    void resetStats(Cycle now);
    /// @}

  private:
    void accountRemove(DynInst *inst);

    int capacity_;
    int insert_ports_;
    int extract_ports_;
    int inserts_left_ = 0;
    int extracts_left_ = 0;
    std::deque<DynInst *> entries_;
};

} // namespace ltp

#endif // LTP_LTP_LTP_QUEUE_HH
