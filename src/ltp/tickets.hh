/**
 * @file
 * Ticket machinery for Non-Ready tracking — Appendix A.
 *
 * Every predicted long-latency instruction is assigned a *ticket*.
 * Descendants inherit the union of their sources' tickets through the
 * RAT; an instruction with a non-empty (live) ticket set is Non-Ready.
 * When the long-latency instruction is about to finish (the phased
 * cache tag-hit early signal), its ticket is broadcast-cleared in the
 * LTP and the pool.
 *
 * "The Tickets field is a vector of tickets containing all the tickets
 *  that the instruction needs to wait for since an instruction can
 *  depend on several long latency instructions."
 */

#ifndef LTP_LTP_TICKETS_HH
#define LTP_LTP_TICKETS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** Maximum tickets supported by the mask type (Fig 11 sweeps to 128). */
inline constexpr int kMaxTickets = 256;

/** Fixed-width ticket bit vector. */
class TicketMask
{
  public:
    void
    set(int t)
    {
        w_[idx(t)] |= bit(t);
    }

    void
    clear(int t)
    {
        w_[idx(t)] &= ~bit(t);
    }

    bool
    test(int t) const
    {
        return (w_[idx(t)] & bit(t)) != 0;
    }

    void
    orWith(const TicketMask &o)
    {
        for (std::size_t i = 0; i < w_.size(); ++i)
            w_[i] |= o.w_[i];
    }

    void
    andWith(const TicketMask &o)
    {
        for (std::size_t i = 0; i < w_.size(); ++i)
            w_[i] &= o.w_[i];
    }

    bool
    any() const
    {
        for (auto v : w_)
            if (v)
                return true;
        return false;
    }

    int
    count() const
    {
        int n = 0;
        for (auto v : w_)
            n += __builtin_popcountll(v);
        return n;
    }

    /** Invoke @p fn with each set ticket id, ascending. */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t i = 0; i < w_.size(); ++i) {
            std::uint64_t v = w_[i];
            while (v) {
                fn(static_cast<int>(i * 64 +
                                    std::size_t(__builtin_ctzll(v))));
                v &= v - 1;
            }
        }
    }

    void
    reset()
    {
        w_.fill(0);
    }

    bool
    operator==(const TicketMask &o) const
    {
        return w_ == o.w_;
    }

  private:
    static std::size_t idx(int t) { return static_cast<std::size_t>(t) / 64; }
    static std::uint64_t bit(int t) { return 1ull << (t % 64); }

    std::array<std::uint64_t, kMaxTickets / 64> w_{};
};

/**
 * Bounded ticket pool.
 *
 * A ticket's life cycle: allocate (predicted-LL instruction renames) →
 * pending → cleared (broadcast when the data is about to arrive) →
 * released (the owning instruction commits or squashes).  Exhaustion is
 * graceful: the load is simply treated as short-latency (descendants
 * are not marked Non-Ready), which is how the paper's Figure 11 ticket
 * sweep degrades.
 */
class TicketPool
{
  public:
    explicit TicketPool(int num_tickets);

    /** Allocate a ticket; returns -1 when the pool is exhausted. */
    int allocate();

    /** Broadcast-clear: the value is (about to be) available. */
    void clearPending(int t);

    /** Return the ticket to the pool for reuse. */
    void release(int t);

    /** Mask of tickets still pending (not yet cleared). */
    const TicketMask &pending() const { return pending_; }

    /** Live-filter a stale mask: keep only still-pending tickets. */
    TicketMask
    liveSubset(TicketMask m) const
    {
        m.andWith(pending_);
        return m;
    }

    int capacity() const { return capacity_; }
    int availableCount() const { return static_cast<int>(free_.size()); }

    Counter allocations;
    Counter exhaustions;
    Counter broadcasts;

    void resetStats();

  private:
    int capacity_;
    std::vector<int> free_;
    std::vector<bool> allocated_;
    TicketMask pending_;
};

} // namespace ltp

#endif // LTP_LTP_TICKETS_HH
