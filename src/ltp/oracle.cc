#include "ltp/oracle.hh"

#include <memory>

#include "common/logging.hh"
#include "isa/reg.hh"

namespace ltp {

OracleClassification
oracleClassify(Workload &workload, std::uint64_t seed, std::uint64_t n,
               const MemConfig &mem_cfg, const OracleParams &params)
{
    OracleClassification out;
    out.flags_.assign(n, 0);
    if (n == 0)
        return out;

    // ---- Pass 1 (forward): functional cache simulation marks the
    // long-latency seeds, and per-register "non-ready horizons"
    // propagate descendant status.
    auto mem = std::make_unique<MemSystem>(mem_cfg);
    workload.reset(seed);
    std::vector<MicroOp> trace(n);

    // nr_until[reg]: consumers of this register are Non-Ready while
    // their seq is below this horizon.
    std::vector<SeqNum> nr_until(kTotalArchRegs, 0);

    for (SeqNum s = 0; s < n; ++s) {
        MicroOp op = workload.next();
        trace[s] = op;

        bool long_lat = false;
        if (op.isMem()) {
            HitLevel level =
                mem->warmAccess(op.pc, op.effAddr, op.isStore(),
                                /*now=*/s * 2);
            long_lat = op.isLoad() && level == HitLevel::Dram;
        }
        if (isFixedLongLat(op.opc))
            long_lat = true;
        if (long_lat)
            out.flags_[s] |= OracleClassification::kLongLat;

        // Non-Ready: reads a register whose value is still in flight.
        SeqNum horizon = 0;
        for (const auto &src : op.srcs)
            if (src.valid())
                horizon = std::max(horizon, nr_until[src.flat()]);
        if (horizon > s)
            out.flags_[s] |= OracleClassification::kNonReady;

        if (op.hasDst()) {
            SeqNum h = horizon > s ? horizon : 0;
            if (long_lat)
                h = std::max(h, s + params.readinessWindow);
            nr_until[op.dst.flat()] = h;
        }
    }

    // ---- Pass 2 (backward): urgency closure.  need_at[reg] is the seq
    // of the nearest (oldest seen so far, walking backward) urgent
    // consumer of the register; a write kills the demand.
    std::vector<SeqNum> need_at(kTotalArchRegs, kSeqNone);

    for (SeqNum s = n; s-- > 0;) {
        const MicroOp &op = trace[s];
        bool urgent = (out.flags_[s] & OracleClassification::kLongLat) != 0;

        if (op.hasDst()) {
            SeqNum consumer = need_at[op.dst.flat()];
            if (consumer != kSeqNone &&
                consumer - s <= static_cast<SeqNum>(params.urgencyWindow))
                urgent = true;
            // This write kills older values of the register.
            need_at[op.dst.flat()] = kSeqNone;
        }

        if (urgent) {
            out.flags_[s] |= OracleClassification::kUrgent;
            for (const auto &src : op.srcs)
                if (src.valid())
                    need_at[src.flat()] = s;
        }
    }

    return out;
}

} // namespace ltp
