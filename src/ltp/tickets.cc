#include "ltp/tickets.hh"

#include "common/logging.hh"

namespace ltp {

TicketPool::TicketPool(int num_tickets)
    : capacity_(std::min(num_tickets, kMaxTickets)),
      allocated_(static_cast<std::size_t>(capacity_), false)
{
    sim_assert(num_tickets > 0);
    free_.reserve(capacity_);
    for (int t = capacity_ - 1; t >= 0; --t)
        free_.push_back(t);
}

int
TicketPool::allocate()
{
    if (free_.empty()) {
        exhaustions++;
        return -1;
    }
    int t = free_.back();
    free_.pop_back();
    allocated_[t] = true;
    pending_.set(t);
    allocations++;
    return t;
}

void
TicketPool::clearPending(int t)
{
    sim_assert(t >= 0 && t < capacity_ && allocated_[t]);
    pending_.clear(t);
    broadcasts++;
}

void
TicketPool::release(int t)
{
    sim_assert(t >= 0 && t < capacity_ && allocated_[t]);
    allocated_[t] = false;
    pending_.clear(t);
    free_.push_back(t);
}

void
TicketPool::resetStats()
{
    allocations.reset();
    exhaustions.reset();
    broadcasts.reset();
}

} // namespace ltp
