/**
 * @file
 * Urgent Instruction Table (UIT) — Section 5.2.
 *
 * A PC-indexed, set-associative tag table recording which static
 * instructions are Urgent (ancestors of long-latency loads).  Seeding:
 * when a long-latency load commits its PC is inserted.  Propagation:
 * at rename, an instruction that hits in the UIT inserts the producer
 * PCs of its sources (read from the RAT's producer-PC extension) —
 * Iterative Backward Dependency Analysis, which converges over loop
 * iterations (93% of urgent instructions after 4 iterations on SPEC,
 * per the paper).
 *
 * A Non-Urgent instruction is simply one that misses in the UIT.
 */

#ifndef LTP_LTP_UIT_HH
#define LTP_LTP_UIT_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** Set-associative urgent-PC tag table with an unbounded mode. */
class Uit
{
  public:
    /**
     * @param entries total capacity (kInfiniteSize => exact set mode,
     *                used by the Section 5.6 "unlimited UIT" point)
     * @param assoc   associativity of the finite configuration
     */
    explicit Uit(int entries, int assoc = 4);

    /** Is @p pc recorded as Urgent?  Counts a lookup. */
    bool lookup(Addr pc);

    /** Record @p pc as Urgent. */
    void insert(Addr pc);

    /** Forget everything (used when the monitor power-gates LTP). */
    void clear();

    Counter lookups;
    Counter hits;
    Counter inserts;
    Counter conflictEvictions;

    void resetStats();

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    bool infinite_;
    int sets_ = 0;
    int assoc_ = 0;
    std::uint64_t use_stamp_ = 0;
    std::vector<Entry> table_;
    std::unordered_set<Addr> exact_;
};

} // namespace ltp

#endif // LTP_LTP_UIT_HH
