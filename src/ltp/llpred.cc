#include "ltp/llpred.hh"

#include "common/logging.hh"

namespace ltp {

LoadLatencyPredictor::LoadLatencyPredictor(int history_entries,
                                           int table_entries)
    : history_(history_entries, 0),
      counters_(table_entries, 1), // weakly "short"
      lastPrediction_(history_entries, 0)
{
    sim_assert(history_entries > 0 && table_entries > 0);
}

std::size_t
LoadLatencyPredictor::historyIndex(Addr pc) const
{
    return (pc >> 2) % history_.size();
}

std::size_t
LoadLatencyPredictor::tableIndex(Addr pc) const
{
    std::uint64_t hist = history_[historyIndex(pc)] & 0xf;
    return ((pc >> 2) ^ (hist * 0x9e37)) % counters_.size();
}

bool
LoadLatencyPredictor::predictLong(Addr pc)
{
    predictions++;
    bool pred = counters_[tableIndex(pc)] >= 2;
    lastPrediction_[historyIndex(pc)] = pred;
    return pred;
}

void
LoadLatencyPredictor::update(Addr pc, bool was_long)
{
    std::uint8_t &ctr = counters_[tableIndex(pc)];
    if (was_long) {
        if (ctr < 3)
            ctr++;
    } else {
        if (ctr > 0)
            ctr--;
    }
    // Track accuracy against the most recent prediction for this PC.
    if (lastPrediction_[historyIndex(pc)] == was_long)
        correct++;
    else
        mispredicts++;
    // Shift the outcome into the per-PC history register.
    std::uint8_t &h = history_[historyIndex(pc)];
    h = static_cast<std::uint8_t>(((h << 1) | (was_long ? 1 : 0)) & 0xf);
}

double
LoadLatencyPredictor::accuracy() const
{
    std::uint64_t n = correct.value() + mispredicts.value();
    return n ? double(correct.value()) / n : 0.0;
}

void
LoadLatencyPredictor::resetStats()
{
    predictions.reset();
    correct.reset();
    mispredicts.reset();
}

} // namespace ltp
