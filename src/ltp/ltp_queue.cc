#include "ltp/ltp_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ltp {

LtpQueue::LtpQueue(int entries, int insert_ports, int extract_ports)
    : capacity_(entries),
      insert_ports_(insert_ports),
      extract_ports_(extract_ports)
{
    sim_assert(entries > 0 && insert_ports > 0 && extract_ports > 0);
}

void
LtpQueue::beginCycle()
{
    inserts_left_ = insert_ports_;
    extracts_left_ = extract_ports_;
}

bool
LtpQueue::canInsert() const
{
    return inserts_left_ > 0 && size() < capacity_;
}

void
LtpQueue::push(DynInst *inst)
{
    sim_assert(canInsert());
    sim_assert(entries_.empty() || entries_.back()->seq < inst->seq);
    inserts_left_ -= 1;
    entries_.push_back(inst);
    inst->inLtp = true;
    pushes++;
    occupancy.add(1);
    if (inst->hasDst())
        parkedWithDest.add(1);
    if (inst->op.isLoad())
        parkedLoads.add(1);
    if (inst->op.isStore())
        parkedStores.add(1);
}

bool
LtpQueue::canExtract() const
{
    return extracts_left_ > 0;
}

DynInst *
LtpQueue::front() const
{
    return entries_.empty() ? nullptr : entries_.front();
}

void
LtpQueue::accountRemove(DynInst *inst)
{
    inst->inLtp = false;
    occupancy.sub(1);
    if (inst->hasDst())
        parkedWithDest.sub(1);
    if (inst->op.isLoad())
        parkedLoads.sub(1);
    if (inst->op.isStore())
        parkedStores.sub(1);
}

void
LtpQueue::popFront()
{
    sim_assert(!entries_.empty() && extracts_left_ > 0);
    extracts_left_ -= 1;
    DynInst *inst = entries_.front();
    entries_.pop_front();
    accountRemove(inst);
    pops++;
}

void
LtpQueue::remove(DynInst *inst)
{
    sim_assert(extracts_left_ > 0);
    auto it = std::find(entries_.begin(), entries_.end(), inst);
    sim_assert(it != entries_.end());
    extracts_left_ -= 1;
    entries_.erase(it);
    accountRemove(inst);
    pops++;
    camExtractions++;
}

void
LtpQueue::squashYoungerThan(SeqNum seq)
{
    while (!entries_.empty() && entries_.back()->seq > seq) {
        accountRemove(entries_.back());
        entries_.pop_back();
    }
}

void
LtpQueue::resetStats(Cycle now)
{
    pushes.reset();
    pops.reset();
    camExtractions.reset();
    insertPortStalls.reset();
    extractPortStalls.reset();
    fullStalls.reset();
    occupancy.reset(now);
    parkedWithDest.reset(now);
    parkedLoads.reset(now);
    parkedStores.reset(now);
}

} // namespace ltp
