#include "ltp/ltp_queue.hh"

#include "common/logging.hh"
#include "ltp/tickets.hh"

namespace ltp {

LtpQueue::LtpQueue(int entries, int insert_ports, int extract_ports)
    : capacity_(entries),
      insert_ports_(insert_ports),
      extract_ports_(extract_ports),
      subs_(std::size_t(kMaxTickets))
{
    sim_assert(entries > 0 && insert_ports > 0 && extract_ports > 0);
}

void
LtpQueue::beginCycle()
{
    inserts_left_ = insert_ports_;
    extracts_left_ = extract_ports_;
}

bool
LtpQueue::canInsert() const
{
    refreshPorts();
    return inserts_left_ > 0 && size_ < capacity_;
}

void
LtpQueue::push(DynInst *inst)
{
    sim_assert(canInsert()); // also refreshes stale port budgets
    sim_assert(!tail_ || tail_->seq < inst->seq);
    inserts_left_ -= 1;

    inst->ltpPrev = tail_;
    inst->ltpNext = nullptr;
    if (tail_)
        tail_->ltpNext = inst;
    else
        head_ = inst;
    tail_ = inst;
    size_ += 1;

    inst->inLtp = true;
    inst->ltpGen += 1;

    // All mask bits are pending at park time (rename live-filtered the
    // mask this same cycle), so the count is the mask population; the
    // subscriptions are what keep it current from here on.
    inst->pendingTickets = inst->tickets.count();
    inst->tickets.forEachSet([&](int t) {
        subs_[std::size_t(t)].push_back(Subscriber{inst, inst->ltpGen});
    });
    if (inst->pendingTickets == 0)
        readyInsert(inst);

    pushes++;
    occupancy.add(1);
    if (inst->hasDst())
        parkedWithDest.add(1);
    if (inst->op.isLoad())
        parkedLoads.add(1);
    if (inst->op.isStore())
        parkedStores.add(1);
}

bool
LtpQueue::canExtract() const
{
    refreshPorts();
    return extracts_left_ > 0;
}

void
LtpQueue::unlink(DynInst *inst)
{
    if (inst->ltpPrev)
        inst->ltpPrev->ltpNext = inst->ltpNext;
    else
        head_ = inst->ltpNext;
    if (inst->ltpNext)
        inst->ltpNext->ltpPrev = inst->ltpPrev;
    else
        tail_ = inst->ltpPrev;
    inst->ltpPrev = nullptr;
    inst->ltpNext = nullptr;
    size_ -= 1;
}

void
LtpQueue::readyInsert(DynInst *inst)
{
    DynInst *&rhead = inst->urgent ? uready_head_ : ready_head_;
    DynInst *&rtail = inst->urgent ? uready_tail_ : ready_tail_;

    // Insert from the tail: the common case (a newly parked or newly
    // cleared instruction is among the youngest) is O(1).
    DynInst *after = rtail;
    while (after && inst->seq < after->seq)
        after = after->ltpReadyPrev;

    inst->ltpReadyPrev = after;
    if (after) {
        inst->ltpReadyNext = after->ltpReadyNext;
        after->ltpReadyNext = inst;
    } else {
        inst->ltpReadyNext = rhead;
        rhead = inst;
    }
    if (inst->ltpReadyNext)
        inst->ltpReadyNext->ltpReadyPrev = inst;
    else
        rtail = inst;
}

void
LtpQueue::readyRemove(DynInst *inst)
{
    DynInst *&rhead = inst->urgent ? uready_head_ : ready_head_;
    DynInst *&rtail = inst->urgent ? uready_tail_ : ready_tail_;

    if (inst->ltpReadyPrev)
        inst->ltpReadyPrev->ltpReadyNext = inst->ltpReadyNext;
    else
        rhead = inst->ltpReadyNext;
    if (inst->ltpReadyNext)
        inst->ltpReadyNext->ltpReadyPrev = inst->ltpReadyPrev;
    else
        rtail = inst->ltpReadyPrev;
    inst->ltpReadyPrev = nullptr;
    inst->ltpReadyNext = nullptr;
}

void
LtpQueue::accountRemove(DynInst *inst)
{
    if (inst->pendingTickets == 0)
        readyRemove(inst);
    inst->inLtp = false;
    occupancy.sub(1);
    if (inst->hasDst())
        parkedWithDest.sub(1);
    if (inst->op.isLoad())
        parkedLoads.sub(1);
    if (inst->op.isStore())
        parkedStores.sub(1);
}

void
LtpQueue::popFront()
{
    refreshPorts();
    sim_assert(head_ && extracts_left_ > 0);
    extracts_left_ -= 1;
    DynInst *inst = head_;
    unlink(inst);
    accountRemove(inst);
    pops++;
}

void
LtpQueue::remove(DynInst *inst)
{
    refreshPorts();
    sim_assert(extracts_left_ > 0);
    sim_assert(inst->inLtp);
    extracts_left_ -= 1;
    unlink(inst);
    accountRemove(inst);
    pops++;
    camExtractions++;
}

void
LtpQueue::squashYoungerThan(SeqNum seq)
{
    while (tail_ && tail_->seq > seq) {
        DynInst *inst = tail_;
        unlink(inst);
        accountRemove(inst);
    }
}

void
LtpQueue::onTicketCleared(int t)
{
    auto &v = subs_[std::size_t(t)];
    std::size_t i = 0;
    while (i < v.size()) {
        if (!subscriberLive(v[i])) {
            v[i] = v.back();
            v.pop_back();
            continue;
        }
        DynInst *inst = v[i].inst;
        sim_assert(inst->pendingTickets > 0);
        inst->pendingTickets -= 1;
        if (inst->pendingTickets == 0)
            readyInsert(inst);
        ++i;
    }
}

void
LtpQueue::onTicketPending(int t)
{
    auto &v = subs_[std::size_t(t)];
    std::size_t i = 0;
    while (i < v.size()) {
        if (!subscriberLive(v[i])) {
            v[i] = v.back();
            v.pop_back();
            continue;
        }
        DynInst *inst = v[i].inst;
        if (inst->pendingTickets == 0)
            readyRemove(inst);
        inst->pendingTickets += 1;
        ++i;
    }
}

void
LtpQueue::resetStats(Cycle now)
{
    pushes.reset();
    pops.reset();
    camExtractions.reset();
    insertPortStalls.reset();
    extractPortStalls.reset();
    fullStalls.reset();
    occupancy.reset(now);
    parkedWithDest.reset(now);
    parkedLoads.reset(now);
    parkedStores.reset(now);
}

} // namespace ltp
