/**
 * @file
 * Oracle instruction classification for the limit study (Section 4).
 *
 * "For the limit study we model an infinite-sized LTP with perfect
 *  instruction classification ... and an oracle to predict long-latency
 *  instructions."
 *
 * The oracle replays the (deterministic) trace once through a
 * functional copy of the memory hierarchy to find the long-latency
 * loads, then computes per-dynamic-instruction:
 *
 *  - URGENT:   ancestor of a long-latency instruction within the
 *              urgency window (backward dataflow closure over register
 *              dependences, killed by redefinition);
 *  - NONREADY: descendant of a long-latency instruction while that
 *              value is still "in flight" (forward closure bounded by
 *              the readiness window, approximating the instruction
 *              window lifetime of the miss);
 *  - LONGLAT:  the long-latency seeds themselves (LLC-missing loads and
 *              fixed-long-latency div/sqrt ops).
 */

#ifndef LTP_LTP_ORACLE_HH
#define LTP_LTP_ORACLE_HH

#include <cstdint>
#include <vector>

#include "mem/mem_system.hh"
#include "trace/workload.hh"

namespace ltp {

/** Per-dynamic-instruction oracle classification flags. */
class OracleClassification
{
  public:
    static constexpr std::uint8_t kUrgent = 1 << 0;
    static constexpr std::uint8_t kNonReady = 1 << 1;
    static constexpr std::uint8_t kLongLat = 1 << 2;

    /**
     * Shift lookups by a trace offset: the simulator's seq 0 maps to
     * trace position @p base (instructions before it were consumed by
     * the functional cache warm-up).
     */
    void setBase(SeqNum base) { base_ = base; }

    bool urgent(SeqNum seq) const { return flag(seq, kUrgent); }
    bool nonReady(SeqNum seq) const { return flag(seq, kNonReady); }
    bool longLatency(SeqNum seq) const { return flag(seq, kLongLat); }

    bool valid() const { return !flags_.empty(); }
    std::size_t size() const { return flags_.size(); }

    std::vector<std::uint8_t> flags_;

  private:
    bool
    flag(SeqNum seq, std::uint8_t bit) const
    {
        SeqNum pos = seq + base_;
        return pos < flags_.size() && (flags_[pos] & bit);
    }

    SeqNum base_ = 0;
};

/** Tuning knobs of the oracle pre-pass. */
struct OracleParams
{
    /** Ancestor window: how far ahead (in dynamic instructions) a
     *  long-latency consumer may be for this producer to count as
     *  Urgent.  ~2x ROB covers cross-iteration address chains. */
    int urgencyWindow = 512;
    /** Descendant window: how long (in dynamic instructions) a
     *  long-latency value keeps its consumers Non-Ready, approximating
     *  the miss lifetime inside the instruction window. */
    int readinessWindow = 512;
};

/**
 * Run the oracle pre-pass over the first @p n instructions of
 * (@p workload, @p seed), using a fresh hierarchy built from @p mem_cfg.
 */
OracleClassification
oracleClassify(Workload &workload, std::uint64_t seed, std::uint64_t n,
               const MemConfig &mem_cfg,
               const OracleParams &params = OracleParams{});

} // namespace ltp

#endif // LTP_LTP_ORACLE_HH
