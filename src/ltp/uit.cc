#include "ltp/uit.hh"

#include "common/logging.hh"

namespace ltp {

namespace {

int
floorPow2(int v)
{
    int p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

Uit::Uit(int entries, int assoc)
    : infinite_(isInfinite(entries))
{
    if (!infinite_) {
        sim_assert(entries > 0 && assoc > 0);
        assoc_ = std::min(assoc, entries);
        sets_ = floorPow2(std::max(1, entries / assoc_));
        table_.resize(static_cast<std::size_t>(sets_) * assoc_);
    }
}

bool
Uit::lookup(Addr pc)
{
    lookups++;
    if (infinite_) {
        bool hit = exact_.count(pc) != 0;
        if (hit)
            hits++;
        return hit;
    }
    std::size_t set = (pc >> 2) & (sets_ - 1);
    Entry *base = &table_[set * assoc_];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            base[w].lastUse = ++use_stamp_;
            hits++;
            return true;
        }
    }
    return false;
}

void
Uit::insert(Addr pc)
{
    if (infinite_) {
        if (exact_.insert(pc).second)
            inserts++;
        return;
    }
    std::size_t set = (pc >> 2) & (sets_ - 1);
    Entry *base = &table_[set * assoc_];
    Entry *victim = &base[0];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            base[w].lastUse = ++use_stamp_;
            return; // already present
        }
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid)
        conflictEvictions++;
    victim->valid = true;
    victim->tag = pc;
    victim->lastUse = ++use_stamp_;
    inserts++;
}

void
Uit::clear()
{
    exact_.clear();
    for (auto &e : table_)
        e.valid = false;
}

void
Uit::resetStats()
{
    lookups.reset();
    hits.reset();
    inserts.reset();
    conflictEvictions.reset();
}

} // namespace ltp
