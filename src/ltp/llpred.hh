/**
 * @file
 * Two-level load hit/miss (long-latency) predictor — Appendix A.
 *
 * "For variable-latency instructions (e.g., loads) we use a two-level
 *  hit/miss predictor that accesses a history table with the last four
 *  outcomes of the PC and then hashes these bits with the PC to access
 *  the prediction table."
 *
 * The prediction table holds 2-bit saturating counters.  The paper
 * reports the predictor costs < 2 percentage points of performance
 * versus an oracle; bench_fig6 exposes both modes.
 */

#ifndef LTP_LTP_LLPRED_HH
#define LTP_LTP_LLPRED_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** Two-level PC+history long-latency predictor. */
class LoadLatencyPredictor
{
  public:
    LoadLatencyPredictor(int history_entries = 1024,
                         int table_entries = 4096);

    /** Predict whether the load at @p pc will be long latency. */
    bool predictLong(Addr pc);

    /** Train with the observed outcome. */
    void update(Addr pc, bool was_long);

    /** Fraction of correct predictions since reset. */
    double accuracy() const;

    Counter predictions;
    Counter correct;
    Counter mispredicts;

    void resetStats();

  private:
    std::size_t historyIndex(Addr pc) const;
    std::size_t tableIndex(Addr pc) const;

    std::vector<std::uint8_t> history_;  ///< 4-bit outcome shift registers
    std::vector<std::uint8_t> counters_; ///< 2-bit saturating counters
    std::vector<std::uint8_t> lastPrediction_; ///< for accuracy stats
};

} // namespace ltp

#endif // LTP_LTP_LLPRED_HH
