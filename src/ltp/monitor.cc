#include "ltp/monitor.hh"

namespace ltp {

LtpMonitor::LtpMonitor(bool use_timer, Cycle timeout)
    : use_timer_(use_timer), timeout_(timeout)
{
}

} // namespace ltp
