#include "ltp/monitor.hh"

namespace ltp {

LtpMonitor::LtpMonitor(bool use_timer, Cycle timeout)
    : use_timer_(use_timer), timeout_(timeout)
{
    // Always-on mode never sees a rearm edge, so the level must start
    // at 1 for the integral to read "enabled the whole window".
    if (!use_timer_)
        on_.set(1, 0);
}

} // namespace ltp
