/**
 * @file
 * Timer-based DRAM monitor — Section 5.2 "Runtime Management".
 *
 * "On a demand access that miss in L3, a timer (set to the DRAM
 *  latency) is started or restarted, and LTP is enabled.  If the timer
 *  expires, LTP is turned off [power gated]."
 *
 * This keeps compute-bound phases (where *every* instruction misses in
 * the UIT and would be parked pointlessly) from paying LTP overheads —
 * the bottom row of Figure 7 reports the resulting enabled fraction.
 */

#ifndef LTP_LTP_MONITOR_HH
#define LTP_LTP_MONITOR_HH

#include <algorithm>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** LTP on/off controller driven by demand DRAM misses. */
class LtpMonitor
{
  public:
    /**
     * @param use_timer false => LTP is always on (the limit study keeps
     *                  the monitor, but tests use this to isolate it)
     * @param timeout   timer duration, nominally the DRAM latency
     */
    LtpMonitor(bool use_timer, Cycle timeout);

    /** Demand access missed in the L3: (re)arm the timer. */
    void
    onDramDemandMiss(Cycle now)
    {
        settle(now);
        deadline_ = now + timeout_;
        if (on_.level() == 0)
            on_.set(1, now);
    }

    /** Is LTP enabled at cycle @p now? */
    bool
    enabled(Cycle now) const
    {
        return !use_timer_ || now < deadline_;
    }

    /** Fraction of cycles LTP was powered on (Fig 7 bottom). */
    double
    enabledFraction(Cycle now)
    {
        settle(now);
        return on_.mean(now);
    }

    void
    resetStats(Cycle now)
    {
        settle(now);
        on_.reset(now);
        floor_ = now;
    }

    Cycle timeout() const { return timeout_; }

  private:
    /**
     * Record the pending enable→disable edge, if any, at the cycle it
     * actually happened.  The enabled level is piecewise constant —
     * it rises only at a miss (rearm) and falls only at the deadline —
     * so settling the fall edge lazily before any rearm or read makes
     * the integral exactly equal to the old per-cycle sampling, with
     * no work at all on the per-cycle path.
     */
    void
    settle(Cycle now)
    {
        if (use_timer_ && deadline_ <= now && on_.level() == 1)
            on_.set(0, std::max(deadline_, floor_));
    }

    bool use_timer_;
    Cycle timeout_;
    Cycle deadline_ = 0;
    Cycle floor_ = 0; ///< last resetStats cycle (edge clamp)
    OccupancyStat on_;
};

} // namespace ltp

#endif // LTP_LTP_MONITOR_HH
