/**
 * @file
 * Timer-based DRAM monitor — Section 5.2 "Runtime Management".
 *
 * "On a demand access that miss in L3, a timer (set to the DRAM
 *  latency) is started or restarted, and LTP is enabled.  If the timer
 *  expires, LTP is turned off [power gated]."
 *
 * This keeps compute-bound phases (where *every* instruction misses in
 * the UIT and would be parked pointlessly) from paying LTP overheads —
 * the bottom row of Figure 7 reports the resulting enabled fraction.
 */

#ifndef LTP_LTP_MONITOR_HH
#define LTP_LTP_MONITOR_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** LTP on/off controller driven by demand DRAM misses. */
class LtpMonitor
{
  public:
    /**
     * @param use_timer false => LTP is always on (the limit study keeps
     *                  the monitor, but tests use this to isolate it)
     * @param timeout   timer duration, nominally the DRAM latency
     */
    LtpMonitor(bool use_timer, Cycle timeout);

    /** Demand access missed in the L3: (re)arm the timer. */
    void
    onDramDemandMiss(Cycle now)
    {
        deadline_ = now + timeout_;
    }

    /** Is LTP enabled at cycle @p now? */
    bool
    enabled(Cycle now) const
    {
        return !use_timer_ || now < deadline_;
    }

    /** Per-cycle bookkeeping for the enabled-fraction statistic. */
    void
    tick(Cycle now)
    {
        on_.set(enabled(now) ? 1 : 0, now);
    }

    /** Fraction of cycles LTP was powered on (Fig 7 bottom). */
    double enabledFraction(Cycle now) { return on_.mean(now); }

    void resetStats(Cycle now) { on_.reset(now); }

    Cycle timeout() const { return timeout_; }

  private:
    bool use_timer_;
    Cycle timeout_;
    Cycle deadline_ = 0;
    OccupancyStat on_;
};

} // namespace ltp

#endif // LTP_LTP_MONITOR_HH
