/**
 * @file
 * Interval-sampling plan: the repeating fast-forward / warmup / detail
 * period of a sampled simulation (SMARTS-style systematic sampling).
 *
 * A sampled run replaces the single long detail region with
 * `samples` short ones spread evenly through the stream:
 *
 *   [ ff | warm | detail ] [ ff | warm | detail ] ... x samples
 *
 * Fast-forward retires instructions functionally (registers, memory
 * image, branch-predictor training — no pipeline timing), warmup runs
 * the detailed core with stats discarded, and each detail region is
 * measured.  Per-sample IPCs aggregate into a mean and a Student-t
 * 95% confidence interval (Metrics::sampling).
 *
 * The plan is deliberately *not* part of SimConfig: sampling is a
 * measurement strategy, not an architecture under test.  It joins the
 * result-cache key separately (cellKeyFor's `sampling:` line) so a
 * sampled run can never alias a full-detail run of the same config.
 */

#ifndef LTP_SAMPLE_SAMPLE_PLAN_HH
#define LTP_SAMPLE_SAMPLE_PLAN_HH

#include <cstdint>
#include <string>

namespace ltp {

/** The repeating period of a sampled run (per thread under SMT). */
struct SamplePlan
{
    std::uint64_t fastForward = 0; ///< functional-only instructions
    std::uint64_t warmup = 0;      ///< detailed, stats discarded
    std::uint64_t detail = 0;      ///< measured instructions
    int samples = 0;               ///< 0 = sampling disabled

    bool enabled() const { return samples > 0; }

    /** Span of one period, in per-thread instructions. */
    std::uint64_t
    period() const
    {
        return fastForward + warmup + detail;
    }

    /** Canonical `ff/warm/detail x samples` spelling (cache keys,
     *  progress lines, error messages). */
    std::string toString() const;

    /** Default plan for `ltp sample` when no flags are given. */
    static SamplePlan
    defaults()
    {
        return SamplePlan{40000, 2000, 10000, 8};
    }
};

} // namespace ltp

#endif // LTP_SAMPLE_SAMPLE_PLAN_HH
