#include "sample/fast_forward.hh"

#include <chrono>

#include "cpu/core.hh"
#include "trace/suite.hh"

namespace ltp {

FastForward::FastForward(const SimConfig &cfg,
                         const std::vector<std::string> &members,
                         MemSystem &mem)
    : mem_(mem)
{
    threads_.reserve(members.size());
    for (const std::string &member : members) {
        threads_.emplace_back(makeKernel(member), cfg.core);
        threads_.back().stream->reset(cfg.seed);
    }
}

void
FastForward::retireOne(int tid)
{
    ThreadState &t = threads_[std::size_t(tid)];
    std::uint64_t pos = t.stream->consumed(); // position of this op
    MicroOp op = t.stream->next();
    if (op.isBranch())
        t.bpred.predict(op.pc, op.taken, op.target);
    if (op.isMem())
        mem_.warmAccess(op.pc + threadAddrBase(tid),
                        op.effAddr + threadAddrBase(tid), op.isStore(),
                        0);
    if (op.hasDst())
        t.last_writer[std::size_t(op.dst.flat())] = pos;
    retired_ += 1;
}

void
FastForward::advanceTo(std::uint64_t target)
{
    auto start = std::chrono::steady_clock::now();
    // Round-robin rounds: one op per lagging thread per round, so the
    // shared hierarchy interleaves the same way the warm phase of a
    // full run does.  Threads already past target (detailed-sample
    // fetch-ahead overshoot) simply sit the rounds out.
    bool any = true;
    while (any) {
        any = false;
        for (int tid = 0; tid < numThreads(); ++tid) {
            if (consumed(tid) < target) {
                retireOne(tid);
                any = true;
            }
        }
    }
    elapsed_sec_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
}

double
FastForward::kips() const
{
    if (elapsed_sec_ <= 0.0)
        return 0.0;
    return double(retired_) / elapsed_sec_ / 1000.0;
}

} // namespace ltp
