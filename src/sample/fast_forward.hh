/**
 * @file
 * Functional fast-forward engine: retires instructions architecturally
 * — branch-predictor training, cache/prefetcher image, architectural
 * register writers — with no pipeline modeling (no IQ/ROB/LSQ/LTP, no
 * cycles), so the stream position advances at an order of magnitude
 * higher rate than detailed simulation.
 *
 * The engine owns the master per-thread workload streams of a sampled
 * run.  Detailed samples consume the *same* streams through counting
 * wrappers (stream()), so the position bookkeeping is exact: whatever
 * a sample's trace window fetched ahead is already counted, and the
 * next advanceTo() continues from there rather than re-playing it.
 *
 * Warming fidelity, per op:
 *  - branches: BranchPredictor::predict trains tables + history in
 *    stream order, exactly as detailed fetch does (raw PC — the core
 *    indexes its predictor with unoffset PCs);
 *  - loads/stores: MemSystem::warmAccess with the per-thread address
 *    base, warming tags/LRU/dirty bits/prefetcher without timing;
 *  - register writes: per-thread last-writer positions (the
 *    architectural register image of a timing-only simulation).
 */

#ifndef LTP_SAMPLE_FAST_FORWARD_HH
#define LTP_SAMPLE_FAST_FORWARD_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/branch_pred.hh"
#include "isa/reg.hh"
#include "mem/mem_system.hh"
#include "sim/config.hh"
#include "trace/workload.hh"

namespace ltp {

/**
 * A workload wrapper that counts every micro-op pulled from the master
 * stream — by the fast-forward loop *and* by a detailed sample's trace
 * window — so the stream position is a single shared number.
 */
class CountingStream : public Workload
{
  public:
    explicit CountingStream(WorkloadPtr master)
        : master_(std::move(master))
    {
    }

    std::string name() const override { return master_->name(); }

    void
    reset(std::uint64_t seed) override
    {
        master_->reset(seed);
        consumed_ = 0;
    }

    MicroOp
    next() override
    {
        ++consumed_;
        return master_->next();
    }

    void
    skip(std::uint64_t n) override
    {
        master_->skip(n);
        consumed_ += n;
    }

    /** Micro-ops pulled from the master since the last reset(). */
    std::uint64_t consumed() const { return consumed_; }

  private:
    WorkloadPtr master_;
    std::uint64_t consumed_ = 0;
};

/** Functional-only fast-forward over one run's thread streams. */
class FastForward
{
  public:
    /**
     * Build the engine over freshly-reset streams (position 0) for
     * @p members (one workload name per thread, tid order), warming
     * into the shared @p mem hierarchy.
     */
    FastForward(const SimConfig &cfg,
                const std::vector<std::string> &members, MemSystem &mem);

    /**
     * Functionally retire until every thread's stream position reaches
     * @p target, round-robin interleaved across threads (the shared
     * hierarchy warms under the same mix it will serve).  Threads
     * already past @p target — a detailed sample's fetch-ahead
     * overshoot — are left untouched.
     */
    void advanceTo(std::uint64_t target);

    int numThreads() const { return int(threads_.size()); }

    /** The counting stream a detailed sample's trace window feeds from. */
    CountingStream &stream(int tid) { return *threads_[std::size_t(tid)].stream; }

    /** Current stream position of @p tid (ops pulled from the master). */
    std::uint64_t
    consumed(int tid) const
    {
        return threads_[std::size_t(tid)].stream->consumed();
    }

    /** The functionally-warmed predictor (copied into each sample core). */
    BranchPredictor &branchPred(int tid) { return threads_[std::size_t(tid)].bpred; }
    const BranchPredictor &branchPred(int tid) const
    {
        return threads_[std::size_t(tid)].bpred;
    }

    /** Last-writer stream positions, flat arch-reg order (checkpoints). */
    const std::array<std::uint64_t, kTotalArchRegs> &
    lastWriters(int tid) const
    {
        return threads_[std::size_t(tid)].last_writer;
    }

    std::array<std::uint64_t, kTotalArchRegs> &
    lastWriters(int tid)
    {
        return threads_[std::size_t(tid)].last_writer;
    }

    /** Functionally-retired instructions (excludes detailed samples). */
    std::uint64_t retired() const { return retired_; }

    /** Measured fast-forward rate over all advanceTo() calls so far,
     *  in thousands of instructions per wall-clock second. */
    double kips() const;

  private:
    struct ThreadState
    {
        std::unique_ptr<CountingStream> stream;
        BranchPredictor bpred;
        std::array<std::uint64_t, kTotalArchRegs> last_writer{};

        ThreadState(WorkloadPtr master, const CoreConfig &cfg)
            : stream(std::make_unique<CountingStream>(std::move(master))),
              bpred(cfg.bpTableBits, cfg.btbEntries)
        {
        }
    };

    /** Pull and functionally retire one op on thread @p tid. */
    void retireOne(int tid);

    MemSystem &mem_;
    std::vector<ThreadState> threads_;
    std::uint64_t retired_ = 0;
    double elapsed_sec_ = 0.0; ///< wall time inside advanceTo()
};

} // namespace ltp

#endif // LTP_SAMPLE_FAST_FORWARD_HH
