#include "sample/sampler.hh"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace ltp {

std::string
SamplePlan::toString() const
{
    return strprintf("%llu/%llu/%llu x%d",
                     (unsigned long long)fastForward,
                     (unsigned long long)warmup,
                     (unsigned long long)detail, samples);
}

Sampler::Sampler(const SimConfig &cfg, const std::string &kernel,
                 const SamplePlan &plan)
    : cfg_(cfg), plan_(plan), kernel_(kernel)
{
    if (!plan_.enabled() || plan_.detail == 0)
        throw std::runtime_error(
            "sampling plan needs samples > 0 and a nonzero detail "
            "length (got " + plan_.toString() + ")");

    members_ = resolveWorkloadMembers(cfg_, kernel_);
    mem_ = std::make_unique<MemSystem>(cfg_.mem);
    ff_ = std::make_unique<FastForward>(cfg_, members_, *mem_);

    workload_name_ = ff_->stream(0).name();
    for (int tid = 1; tid < ff_->numThreads(); ++tid)
        workload_name_ += "+" + ff_->stream(tid).name();
}

void
Sampler::restoreFrom(const Checkpoint &ckpt)
{
    sim_assert(!ran_);
    restoreCheckpoint(ckpt, *ff_, *mem_, workload_name_, cfg_.seed);
}

Metrics
Sampler::run(const PhaseFn &phase)
{
    sim_assert(!ran_);
    ran_ = true;

    int n = cfg_.core.numThreads;
    std::uint64_t start = 0;
    for (int tid = 0; tid < n; ++tid)
        start = std::max(start, ff_->consumed(tid));

    // Trace-window bound, exactly as the full Simulator computes it;
    // it doubles as the per-sample fetch-ahead overshoot allowance.
    std::size_t max_window = 0;
    if (!isInfinite(cfg_.core.robSize) &&
        !isInfinite(cfg_.core.fetchQueueCap)) {
        max_window = std::size_t(cfg_.core.robSize) +
                     std::size_t(cfg_.core.fetchQueueCap) +
                     std::size_t(cfg_.core.fetchWidth);
    }
    std::uint64_t overshoot = max_window ? max_window : 16384;

    // Oracle pre-pass (limit study): one classification per thread
    // covering every position any sample can reach; each sample then
    // rebases lookups to its own start position.  Out-of-range
    // lookups fail safe (classified as none), so the slack terms only
    // need to cover the realistic fetch-ahead.
    oracles_.resize(members_.size());
    if (cfg_.core.ltp.mode != LtpMode::Off &&
        cfg_.core.ltp.classifier == ClassifierKind::Oracle) {
        std::uint64_t span =
            start +
            std::uint64_t(plan_.samples) * (plan_.period() + overshoot) +
            kTraceFetchSlack;
        for (std::size_t tid = 0; tid < members_.size(); ++tid) {
            WorkloadPtr oracle_wl = makeKernel(members_[tid]);
            oracles_[tid] =
                oracleClassify(*oracle_wl, cfg_.seed, span, cfg_.mem);
        }
    }

    std::vector<Metrics> runs;
    runs.reserve(std::size_t(plan_.samples));
    for (int i = 0; i < plan_.samples; ++i) {
        std::string tag = std::to_string(i + 1) + "/" +
                          std::to_string(plan_.samples);
        if (phase)
            phase("fast-forward " + tag);

        // Advance every thread to this period's sample start.  A
        // thread already past it (the previous sample's fetch-ahead)
        // keeps its position — the measured region simply shifts by
        // the overshoot, which systematic sampling tolerates.
        std::uint64_t target =
            start + std::uint64_t(i + 1) * plan_.fastForward +
            std::uint64_t(i) * (plan_.warmup + plan_.detail);
        ff_->advanceTo(target);

        // Sample boundary: collapse in-flight timing so the fresh
        // core (cycle 0) observes a settled hierarchy.
        mem_->settle();

        std::vector<std::unique_ptr<TraceWindow>> windows;
        std::vector<InstSource *> sources;
        std::vector<const OracleClassification *> oracle_ptrs;
        std::vector<Workload *> wl_ptrs;
        for (int tid = 0; tid < n; ++tid) {
            if (oracles_[std::size_t(tid)].valid())
                oracles_[std::size_t(tid)].setBase(ff_->consumed(tid));
            windows.push_back(std::make_unique<TraceWindow>(
                ff_->stream(tid), max_window));
            sources.push_back(windows.back().get());
            oracle_ptrs.push_back(oracles_[std::size_t(tid)].valid()
                                      ? &oracles_[std::size_t(tid)]
                                      : nullptr);
            wl_ptrs.push_back(&ff_->stream(tid));
        }

        Core core(cfg_.core, *mem_, sources, oracle_ptrs);
        for (int tid = 0; tid < n; ++tid)
            core.branchPred(tid).restore(
                ff_->branchPred(tid).image());

        std::function<void(const char *)> inner;
        if (phase)
            inner = [&phase, tag](const char *p) {
                phase((std::strcmp(p, "warmup") == 0 ? "warmup "
                                                     : "sample ") +
                      tag);
            };
        runs.push_back(runDetailPhases(cfg_, core, *mem_, wl_ptrs,
                                       plan_.warmup, plan_.detail,
                                       inner));

        // Detailed fetch trained the predictors in stream order right
        // up to the consumed position — copy them back so training is
        // continuous into the next fast-forward stretch.
        for (int tid = 0; tid < n; ++tid)
            ff_->branchPred(tid).restore(
                core.branchPred(tid).image());
    }

    Metrics agg = averageMetrics(runs, runs.front().workload);
    SamplingStats &s = agg.sampling;
    s.samples = plan_.samples;
    s.fastForward = plan_.fastForward;
    s.warmup = plan_.warmup;
    s.detail = plan_.detail;
    s.ffKips = ff_->kips();
    s.sampleIpcs.reserve(runs.size());
    for (const Metrics &m : runs)
        s.sampleIpcs.push_back(m.ipc);
    double mean = 0.0;
    for (double ipc : s.sampleIpcs)
        mean += ipc / double(s.sampleIpcs.size());
    s.meanIpc = mean;
    if (s.sampleIpcs.size() > 1) {
        double ss = 0.0;
        for (double ipc : s.sampleIpcs)
            ss += (ipc - mean) * (ipc - mean);
        s.ipcStdDev =
            std::sqrt(ss / double(s.sampleIpcs.size() - 1));
        s.ci95Half = studentT95(int(s.sampleIpcs.size()) - 1) *
                     s.ipcStdDev /
                     std::sqrt(double(s.sampleIpcs.size()));
    } else {
        // One observation: no dispersion estimate exists.  NaN (not
        // 0.0) so a --samples=1 run reports "CI unavailable" instead
        // of a zero-width interval, and so any aggregate or gate that
        // touches it is forced to notice (SamplingStats::hasCi).
        s.ipcStdDev = std::numeric_limits<double>::quiet_NaN();
        s.ci95Half = std::numeric_limits<double>::quiet_NaN();
    }
    return agg;
}

Metrics
Sampler::runOnce(const SimConfig &cfg, const std::string &kernel,
                 const SamplePlan &plan, const PhaseFn &phase)
{
    Sampler sampler(cfg, kernel, plan);
    return sampler.run(phase);
}

} // namespace ltp
