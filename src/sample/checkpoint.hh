/**
 * @file
 * Architectural checkpoints (`.ltcp`): everything a sampled run's
 * fast-forward phase accumulates — per-thread stream positions,
 * branch-predictor images, architectural register writers, and the
 * warmed memory image (cache tag arrays + prefetcher table) — in a
 * portable, CRC-checked binary file, so a long fast-forward can be
 * paid once and resumed from many times (`ltp checkpoint create` /
 * `ltp sample --from=<ckpt>`).
 *
 * On-disk layout (all integers little-endian), version 1:
 *
 *   magic   8B   "LTPCKPT\0"
 *   u32          version (1)
 *   u32          reserved (0)
 *   u64          seed
 *   u16          workload name length, + that many bytes
 *   u32          numThreads
 *   per thread:
 *     u64        stream position (micro-ops consumed)
 *     bp image:  u32 tableBits, u64 history,
 *                u32 counterCount + counters (1B each, value <= 3),
 *                u32 btbCount x { u64 pc, u64 target, u8 valid }
 *     u64 x 64   last-writer stream positions, flat arch-reg order
 *   mem image:
 *     4 caches (l1i, l1d, l2, l3), each:
 *       u32 numSets, u32 assoc, u64 useStamp,
 *       lines x { u8 flags (valid|dirty<<1|prefetched<<2),
 *                 u64 tag, u64 lastUse }
 *     prefetcher: u32 entryCount x { u64 pc, u64 lastAddr,
 *                 i64 stride, u32 confidence, u8 valid }
 *   u32          CRC-32 (IEEE) of everything above
 *
 * Transient timing state (in-flight fills, MSHRs, DRAM banks) is
 * deliberately *not* stored: the capture boundary is a settled
 * hierarchy, exactly the state a fresh detailed phase starts from.
 *
 * Readers reject — with a thrown std::runtime_error naming the defect
 * — bad magic, unsupported versions, truncation, trailing garbage,
 * CRC mismatches, and semantically invalid (CRC-valid but crafted)
 * fields, mirroring the `.lttr` trace reader's posture.
 */

#ifndef LTP_SAMPLE_CHECKPOINT_HH
#define LTP_SAMPLE_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/branch_pred.hh"
#include "isa/reg.hh"
#include "mem/cache.hh"
#include "mem/mem_system.hh"
#include "mem/prefetcher.hh"
#include "sample/fast_forward.hh"

namespace ltp {

/** File magic ("LTPCKPT\0") and the version this build reads/writes. */
inline constexpr char kCheckpointMagic[8] = {'L', 'T', 'P', 'C',
                                            'K', 'P', 'T', '\0'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

/** One cache level's architectural image. */
struct CacheImage
{
    std::uint32_t numSets = 0;
    std::uint32_t assoc = 0;
    std::uint64_t useStamp = 0;
    std::vector<Cache::Line> lines; ///< dataReady always 0 (settled)
};

/** Per-thread architectural state. */
struct ThreadImage
{
    std::uint64_t position = 0; ///< micro-ops consumed from the stream
    BranchPredictor::Image bpred;
    std::array<std::uint64_t, kTotalArchRegs> lastWriters{};
};

/** A complete architectural checkpoint. */
struct Checkpoint
{
    std::string workload; ///< run workload name (kernel / trace / smt:)
    std::uint64_t seed = 0;
    std::vector<ThreadImage> threads;
    CacheImage l1i, l1d, l2, l3;
    std::vector<StridePrefetcher::Entry> prefetcher;
};

/// @name Serialization (byte-exact round trip)
/// @{

/** Encode @p ckpt into the on-disk byte layout, CRC footer included. */
std::string checkpointToBytes(const Checkpoint &ckpt);

/**
 * Decode and fully validate a checkpoint image.
 * @throws std::runtime_error naming the first defect found.
 */
Checkpoint checkpointFromBytes(const std::string &bytes);

/** Load + decode; errors are prefixed with @p path. */
Checkpoint loadCheckpointFile(const std::string &path);

/** Write @p bytes to @p path (binary, truncating). */
void writeCheckpointFile(const std::string &path,
                         const std::string &bytes);

/// @}

/// @name Capture / restore against a live fast-forward engine
/// @{

/**
 * Capture the architectural state of @p ff and @p mem (which must be
 * settle()d — asserted via the cache images' dataReady fields).
 */
Checkpoint captureCheckpoint(const FastForward &ff, MemSystem &mem,
                             const std::string &workload,
                             std::uint64_t seed);

/**
 * Install @p ckpt into @p ff and @p mem: advances each thread's stream
 * to its stored position (O(1) for trace replays), restores predictor
 * and register-writer images, and installs the memory image.
 * @throws std::runtime_error when the checkpoint's workload, seed, or
 *         geometry (threads, predictor tables, cache shapes) disagree
 *         with the run being restored into.
 */
void restoreCheckpoint(const Checkpoint &ckpt, FastForward &ff,
                       MemSystem &mem, const std::string &workload,
                       std::uint64_t seed);

/// @}

/** One-line human summary (`ltp checkpoint ls`). */
std::string checkpointSummary(const Checkpoint &ckpt);

} // namespace ltp

#endif // LTP_SAMPLE_CHECKPOINT_HH
