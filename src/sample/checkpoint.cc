#include "sample/checkpoint.hh"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/binio.hh"
#include "common/logging.hh"

namespace ltp {

namespace {

[[noreturn]] void
badCheckpoint(const std::string &what)
{
    throw std::runtime_error("checkpoint: " + what);
}

void
encodeCache(std::string &out, const CacheImage &img)
{
    putU32le(out, img.numSets);
    putU32le(out, img.assoc);
    putU64le(out, img.useStamp);
    for (const Cache::Line &line : img.lines) {
        std::uint8_t flags =
            std::uint8_t((line.valid ? 1 : 0) | (line.dirty ? 2 : 0) |
                         (line.prefetched ? 4 : 0));
        putU8(out, flags);
        putU64le(out, line.tag);
        putU64le(out, line.lastUse);
    }
}

CacheImage
decodeCache(ByteReader &in, const char *which)
{
    CacheImage img;
    img.numSets = in.u32();
    img.assoc = in.u32();
    img.useStamp = in.u64();
    if (img.numSets == 0 || img.numSets > (1u << 22))
        badCheckpoint(std::string(which) + " image has invalid set "
                      "count " + std::to_string(img.numSets));
    if (img.assoc == 0 || img.assoc > 64)
        badCheckpoint(std::string(which) + " image has invalid "
                      "associativity " + std::to_string(img.assoc));
    std::uint64_t count =
        std::uint64_t(img.numSets) * std::uint64_t(img.assoc);
    img.lines.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint8_t flags = in.u8();
        if (flags > 7)
            badCheckpoint(std::string(which) + " line " +
                          std::to_string(i) + " has invalid flags " +
                          std::to_string(flags));
        Cache::Line line;
        line.valid = (flags & 1) != 0;
        line.dirty = (flags & 2) != 0;
        line.prefetched = (flags & 4) != 0;
        line.tag = in.u64();
        line.dataReady = 0; // settled by construction
        line.lastUse = in.u64();
        img.lines.push_back(line);
    }
    return img;
}

CacheImage
snapshotCache(const Cache &cache)
{
    CacheImage img;
    img.numSets = std::uint32_t(cache.numSets());
    img.assoc = std::uint32_t(cache.assoc());
    img.useStamp = cache.useStamp();
    img.lines = cache.lines();
    return img;
}

void
restoreCache(Cache &cache, const CacheImage &img, const char *which)
{
    if (std::uint32_t(cache.numSets()) != img.numSets ||
        std::uint32_t(cache.assoc()) != img.assoc)
        badCheckpoint(strprintf(
            "%s geometry mismatch: checkpoint has %ux%u, this config "
            "has %dx%d (sets x ways)",
            which, img.numSets, img.assoc, cache.numSets(),
            cache.assoc()));
    cache.restoreLines(img.lines, img.useStamp);
}

} // namespace

std::string
checkpointToBytes(const Checkpoint &ckpt)
{
    std::string out;
    out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
    putU32le(out, kCheckpointVersion);
    putU32le(out, 0); // reserved
    putU64le(out, ckpt.seed);
    if (ckpt.workload.size() > 0xffff)
        badCheckpoint("workload name too long to encode");
    putU16le(out, std::uint16_t(ckpt.workload.size()));
    out += ckpt.workload;
    putU32le(out, std::uint32_t(ckpt.threads.size()));
    for (const ThreadImage &t : ckpt.threads) {
        putU64le(out, t.position);
        putU32le(out, std::uint32_t(t.bpred.tableBits));
        putU64le(out, t.bpred.history);
        putU32le(out, std::uint32_t(t.bpred.counters.size()));
        for (std::uint8_t c : t.bpred.counters)
            putU8(out, c);
        putU32le(out, std::uint32_t(t.bpred.btb.size()));
        for (const BranchPredictor::BtbEntry &e : t.bpred.btb) {
            putU64le(out, e.pc);
            putU64le(out, e.target);
            putU8(out, e.valid ? 1 : 0);
        }
        for (std::uint64_t w : t.lastWriters)
            putU64le(out, w);
    }
    encodeCache(out, ckpt.l1i);
    encodeCache(out, ckpt.l1d);
    encodeCache(out, ckpt.l2);
    encodeCache(out, ckpt.l3);
    putU32le(out, std::uint32_t(ckpt.prefetcher.size()));
    for (const StridePrefetcher::Entry &e : ckpt.prefetcher) {
        putU64le(out, e.pc);
        putU64le(out, e.lastAddr);
        putU64le(out, std::uint64_t(e.stride));
        putU32le(out, std::uint32_t(e.confidence));
        putU8(out, e.valid ? 1 : 0);
    }
    putU32le(out, crc32(out));
    return out;
}

Checkpoint
checkpointFromBytes(const std::string &bytes)
{
    // Fixed prefix + name length + thread count + CRC footer.
    constexpr std::size_t min_size = 8 + 4 + 4 + 8 + 2 + 4 + 4;
    if (bytes.size() < min_size)
        badCheckpoint("truncated file (" +
                      std::to_string(bytes.size()) +
                      " bytes, header alone needs " +
                      std::to_string(min_size) + ")");

    ByteReader in(bytes);
    if (std::memcmp(in.raw(sizeof(kCheckpointMagic)).data(),
                    kCheckpointMagic, sizeof(kCheckpointMagic)) != 0)
        badCheckpoint("bad magic (not a .ltcp checkpoint file)");
    std::uint32_t version = in.u32();
    if (version != kCheckpointVersion)
        badCheckpoint("unsupported version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kCheckpointVersion) + ")");
    in.u32(); // reserved

    std::uint32_t stored = ByteReader(bytes, bytes.size() - 4).u32();
    Crc32 crc;
    crc.update(bytes.data(), bytes.size() - 4);
    if (crc.value() != stored)
        badCheckpoint(strprintf("CRC mismatch (stored %08x, computed "
                                "%08x): file is corrupt",
                                stored, crc.value()));

    Checkpoint ckpt;
    ckpt.seed = in.u64();
    std::uint16_t name_len = in.u16();
    if (in.remaining() < name_len + 4u)
        badCheckpoint("truncated file inside the workload name");
    ckpt.workload = in.raw(name_len);

    // The CRC gate above already rejects truncation and appended
    // garbage; parsing after it can still overrun on absurd (but
    // CRC-resealed) counts, which ByteReader turns into a thrown
    // bounds error.
    std::uint32_t threads = in.u32();
    if (threads == 0 || threads > 256)
        badCheckpoint("invalid thread count " + std::to_string(threads));
    {
        for (std::uint32_t tid = 0; tid < threads; ++tid) {
            ThreadImage t;
            t.position = in.u64();
            std::uint32_t table_bits = in.u32();
            if (table_bits == 0 || table_bits > 28)
                badCheckpoint("thread " + std::to_string(tid) +
                              " has invalid predictor table bits " +
                              std::to_string(table_bits));
            t.bpred.tableBits = int(table_bits);
            t.bpred.history = in.u64();
            std::uint32_t counters = in.u32();
            if (counters != (1u << table_bits))
                badCheckpoint(
                    "thread " + std::to_string(tid) + " counter count " +
                    std::to_string(counters) + " does not match 2^" +
                    std::to_string(table_bits));
            t.bpred.counters.reserve(counters);
            for (std::uint32_t i = 0; i < counters; ++i) {
                std::uint8_t c = in.u8();
                if (c > 3)
                    badCheckpoint("thread " + std::to_string(tid) +
                                  " counter " + std::to_string(i) +
                                  " out of 2-bit range (" +
                                  std::to_string(c) + ")");
                t.bpred.counters.push_back(c);
            }
            std::uint32_t btb = in.u32();
            if (btb > (1u << 24))
                badCheckpoint("thread " + std::to_string(tid) +
                              " has absurd BTB size " +
                              std::to_string(btb));
            t.bpred.btb.reserve(btb);
            for (std::uint32_t i = 0; i < btb; ++i) {
                BranchPredictor::BtbEntry e;
                e.pc = in.u64();
                e.target = in.u64();
                std::uint8_t valid = in.u8();
                if (valid > 1)
                    badCheckpoint("thread " + std::to_string(tid) +
                                  " BTB entry " + std::to_string(i) +
                                  " has invalid valid flag " +
                                  std::to_string(valid));
                e.valid = valid != 0;
                t.bpred.btb.push_back(e);
            }
            for (std::uint64_t &w : t.lastWriters)
                w = in.u64();
            ckpt.threads.push_back(std::move(t));
        }
        ckpt.l1i = decodeCache(in, "l1i");
        ckpt.l1d = decodeCache(in, "l1d");
        ckpt.l2 = decodeCache(in, "l2");
        ckpt.l3 = decodeCache(in, "l3");
        std::uint32_t pf = in.u32();
        if (pf > (1u << 20))
            badCheckpoint("absurd prefetcher table size " +
                          std::to_string(pf));
        ckpt.prefetcher.reserve(pf);
        for (std::uint32_t i = 0; i < pf; ++i) {
            StridePrefetcher::Entry e;
            e.pc = in.u64();
            e.lastAddr = in.u64();
            e.stride = std::int64_t(in.u64());
            e.confidence = int(in.u32());
            std::uint8_t valid = in.u8();
            if (valid > 1)
                badCheckpoint("prefetcher entry " + std::to_string(i) +
                              " has invalid valid flag " +
                              std::to_string(valid));
            e.valid = valid != 0;
            ckpt.prefetcher.push_back(e);
        }
    }

    if (in.offset() != bytes.size() - 4)
        badCheckpoint("trailing garbage after the state records (" +
                      std::to_string(bytes.size() - 4 - in.offset()) +
                      " bytes)");
    return ckpt;
}

Checkpoint
loadCheckpointFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        badCheckpoint("cannot open '" + path + "'");
    std::ostringstream data;
    data << in.rdbuf();
    try {
        return checkpointFromBytes(data.str());
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

void
writeCheckpointFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        badCheckpoint("cannot open '" + path + "' for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out)
        badCheckpoint("short write to '" + path + "'");
}

Checkpoint
captureCheckpoint(const FastForward &ff, MemSystem &mem,
                  const std::string &workload, std::uint64_t seed)
{
    // The capture boundary is a settled hierarchy — collapse any
    // in-flight fill timing before snapshotting the tag arrays.
    mem.settle();

    Checkpoint ckpt;
    ckpt.workload = workload;
    ckpt.seed = seed;
    for (int tid = 0; tid < ff.numThreads(); ++tid) {
        ThreadImage t;
        t.position = ff.consumed(tid);
        t.bpred = ff.branchPred(tid).image();
        t.lastWriters = ff.lastWriters(tid);
        ckpt.threads.push_back(std::move(t));
    }
    ckpt.l1i = snapshotCache(mem.l1i());
    ckpt.l1d = snapshotCache(mem.l1d());
    ckpt.l2 = snapshotCache(mem.l2());
    ckpt.l3 = snapshotCache(mem.l3());
    ckpt.prefetcher = mem.prefetcher().table();
    return ckpt;
}

void
restoreCheckpoint(const Checkpoint &ckpt, FastForward &ff,
                  MemSystem &mem, const std::string &workload,
                  std::uint64_t seed)
{
    if (ckpt.workload != workload)
        badCheckpoint("was taken for workload '" + ckpt.workload +
                      "', not '" + workload + "'");
    if (ckpt.seed != seed)
        badCheckpoint("was taken at seed " + std::to_string(ckpt.seed) +
                      ", not " + std::to_string(seed));
    if (int(ckpt.threads.size()) != ff.numThreads())
        badCheckpoint("has " + std::to_string(ckpt.threads.size()) +
                      " thread(s), this run has " +
                      std::to_string(ff.numThreads()));

    for (int tid = 0; tid < ff.numThreads(); ++tid) {
        const ThreadImage &t = ckpt.threads[std::size_t(tid)];
        const BranchPredictor::Image live =
            ff.branchPred(tid).image();
        if (live.tableBits != t.bpred.tableBits ||
            live.btb.size() != t.bpred.btb.size())
            badCheckpoint(strprintf(
                "thread %d predictor geometry mismatch: checkpoint has "
                "%d table bits / %zu BTB entries, this config has "
                "%d / %zu",
                tid, t.bpred.tableBits, t.bpred.btb.size(),
                live.tableBits, live.btb.size()));
        std::uint64_t consumed = ff.consumed(tid);
        if (consumed > t.position)
            badCheckpoint(strprintf(
                "thread %d stream is already at position %llu, past "
                "the checkpoint's %llu (restore requires fresh "
                "streams)",
                tid, (unsigned long long)consumed,
                (unsigned long long)t.position));
        ff.stream(tid).skip(t.position - consumed);
        ff.branchPred(tid).restore(t.bpred);
        ff.lastWriters(tid) = t.lastWriters;
    }

    restoreCache(mem.l1i(), ckpt.l1i, "l1i");
    restoreCache(mem.l1d(), ckpt.l1d, "l1d");
    restoreCache(mem.l2(), ckpt.l2, "l2");
    restoreCache(mem.l3(), ckpt.l3, "l3");
    if (ckpt.prefetcher.size() != mem.prefetcher().table().size())
        badCheckpoint(strprintf(
            "prefetcher table size mismatch: checkpoint has %zu "
            "entries, this config has %zu",
            ckpt.prefetcher.size(), mem.prefetcher().table().size()));
    mem.prefetcher().restoreTable(ckpt.prefetcher);
}

std::string
checkpointSummary(const Checkpoint &ckpt)
{
    auto validLines = [](const CacheImage &img) {
        std::size_t n = 0;
        for (const Cache::Line &line : img.lines)
            n += line.valid;
        return n;
    };
    std::size_t pf_live = 0;
    for (const StridePrefetcher::Entry &e : ckpt.prefetcher)
        pf_live += e.valid;

    std::string pos;
    for (const ThreadImage &t : ckpt.threads) {
        if (!pos.empty())
            pos += ",";
        pos += std::to_string(t.position);
    }
    return strprintf(
        "workload %s, seed %llu, %zu thread(s) @ position %s; "
        "bp 2^%d counters, %zu-entry BTB; valid lines "
        "l1i %zu/%zu l1d %zu/%zu l2 %zu/%zu l3 %zu/%zu; "
        "prefetcher %zu/%zu live",
        ckpt.workload.c_str(), (unsigned long long)ckpt.seed,
        ckpt.threads.size(), pos.c_str(),
        ckpt.threads.empty() ? 0 : ckpt.threads[0].bpred.tableBits,
        ckpt.threads.empty() ? std::size_t(0)
                             : ckpt.threads[0].bpred.btb.size(),
        validLines(ckpt.l1i), ckpt.l1i.lines.size(),
        validLines(ckpt.l1d), ckpt.l1d.lines.size(),
        validLines(ckpt.l2), ckpt.l2.lines.size(),
        validLines(ckpt.l3), ckpt.l3.lines.size(), pf_live,
        ckpt.prefetcher.size());
}

} // namespace ltp
