/**
 * @file
 * Interval-sampling controller: drives a sampled run through its
 * repeating [fast-forward | warmup | detail] periods and aggregates
 * the per-sample Metrics into a mean IPC with a Student-t 95%
 * confidence interval (Metrics::sampling).
 *
 * Period i (0-based) measures the detail region starting at
 * per-thread stream position
 *
 *   S_i = start + (i+1)*ff + i*(warmup + detail)
 *
 * where `start` is 0 or a restored checkpoint's position.  Between
 * samples the warmed structures carry forward exactly:
 *
 *  - streams: samples consume the engine's own counting streams, so a
 *    sample's fetch-ahead overshoot is part of the position and the
 *    next fast-forward continues from it (no rewind, no replay);
 *  - branch predictors: trained functionally during fast-forward,
 *    copied into each sample's fresh core, and copied back out after
 *    (detailed fetch trains them in stream order, so training is
 *    continuous across the whole run);
 *  - memory image: the shared hierarchy persists; settle() collapses
 *    in-flight timing at each sample boundary so a fresh core can
 *    restart at cycle 0.
 *
 * Each sample runs on a *fresh* Core: pipeline state is rebuilt by the
 * warmup ops (stats discarded), mirroring the full run's detailed
 * pipeline warm.
 */

#ifndef LTP_SAMPLE_SAMPLER_HH
#define LTP_SAMPLE_SAMPLER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ltp/oracle.hh"
#include "sample/checkpoint.hh"
#include "sample/fast_forward.hh"
#include "sample/sample_plan.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"

namespace ltp {

/** Progress callback: called at each phase boundary with a label like
 *  "fast-forward 3/8", "warmup 3/8", "sample 3/8". */
using PhaseFn = std::function<void(const std::string &)>;

/** Owns one sampled run: streams, fast-forward engine, hierarchy. */
class Sampler
{
  public:
    /** @throws std::runtime_error unless @p plan.enabled() with a
     *  nonzero detail length. */
    Sampler(const SimConfig &cfg, const std::string &kernel,
            const SamplePlan &plan);

    /**
     * Start from an architectural checkpoint instead of stream
     * position 0: each thread's stream seeks to the stored position
     * and the predictor/memory images are installed.  Must be called
     * before run().
     * @throws std::runtime_error when the checkpoint does not match
     *         this run (workload, seed, geometry).
     */
    void restoreFrom(const Checkpoint &ckpt);

    /** Execute the full sampling schedule and aggregate. */
    Metrics run(const PhaseFn &phase = {});

    /** One-shot convenience mirroring Simulator::runOnce. */
    static Metrics runOnce(const SimConfig &cfg,
                           const std::string &kernel,
                           const SamplePlan &plan,
                           const PhaseFn &phase = {});

    /** The workload name the run reports (members joined under SMT). */
    const std::string &workloadName() const { return workload_name_; }

    /// @name Mid-run access for tests and `ltp checkpoint create`
    /// @{
    FastForward &fastForward() { return *ff_; }
    MemSystem &mem() { return *mem_; }
    /// @}

  private:
    SimConfig cfg_;
    SamplePlan plan_;
    std::string kernel_;
    std::string workload_name_;
    std::vector<std::string> members_;
    std::vector<OracleClassification> oracles_;
    std::unique_ptr<MemSystem> mem_;
    std::unique_ptr<FastForward> ff_;
    bool ran_ = false;
};

} // namespace ltp

#endif // LTP_SAMPLE_SAMPLER_HH
