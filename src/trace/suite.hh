/**
 * @file
 * Kernel suite registry: name → factory, plus the intended
 * MLP-sensitivity grouping used as a sanity anchor by tests.
 *
 * Benchmarks never trust the intent: they group kernels with the
 * Section 4.1 runtime classifier (src/sim/mlp_class.*), exactly as the
 * paper groups SimPoints.
 */

#ifndef LTP_TRACE_SUITE_HH
#define LTP_TRACE_SUITE_HH

#include <string>
#include <vector>

#include "trace/workload.hh"

namespace ltp {

/** Intended sensitivity group of a kernel (design-time expectation). */
enum class MlpIntent { Sensitive, Insensitive, Example };

/** One registered kernel. */
struct SuiteEntry
{
    std::string name;
    MlpIntent intent;
    WorkloadPtr (*factory)();
};

/** The full registered suite (paper_loop + 7 sensitive + 7 insensitive). */
const std::vector<SuiteEntry> &kernelSuite();

/**
 * Instantiate a workload by name; fatal() on unknown names.  Besides
 * registered kernels, `trace:<path>` names replay a recorded `.lttr`
 * trace (src/trace/trace_workload.hh), so traces participate in every
 * string-keyed surface (SweepSpec kernels, scenario files) unchanged.
 */
WorkloadPtr makeKernel(const std::string &name);

/** Names of all kernels with the given intent. */
std::vector<std::string> kernelNames(MlpIntent intent);

/** Names of all kernels excluding the example loop. */
std::vector<std::string> allKernelNames();

} // namespace ltp

#endif // LTP_TRACE_SUITE_HH
