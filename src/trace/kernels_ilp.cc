/**
 * @file
 * MLP-insensitive kernels (SPEC stand-ins; see kernels.hh).
 *
 * These kernels either fit in the upper cache levels or stream in
 * prefetcher-friendly patterns, so a larger instruction window buys no
 * additional outstanding misses — the population for which the paper
 * shows an IQ of 32 already extracts nearly all ILP (Figure 1).
 */

#include "trace/kernel_dsl.hh"
#include "trace/kernels.hh"

namespace ltp {

namespace {

/** Dense FP compute over L1-resident data: high ILP, zero misses. */
class DenseCompute : public LoopKernel
{
  public:
    DenseCompute() : LoopKernel("dense_compute") {}

  protected:
    void
    init() override
    {
        a_ = region(8 << 10);
        b_ = region(8 << 10);
        c_ = region(8 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId ai = intReg(1), i = intReg(10), t = intReg(11);
        const RegId x = fpReg(1), y = fpReg(2), z = fpReg(3),
                    w = fpReg(4), u = fpReg(5), v = fpReg(6);

        emitOp(0, OpClass::IntAlu, ai, i);
        emitLoad(1, x, a_.elem(i_, 8), ai);
        emitLoad(2, y, b_.elem(i_, 8), ai);
        // Two independent FMA-like chains: plenty of ILP.
        emitOp(3, OpClass::FpMul, z, x, y);
        emitOp(4, OpClass::FpAlu, w, z, x);
        emitOp(5, OpClass::FpMul, u, x, x);
        emitOp(6, OpClass::FpAlu, v, u, y);
        emitOp(7, OpClass::FpAlu, w, w, v);
        emitStore(8, c_.elem(i_, 8), w, ai);
        emitOp(9, OpClass::IntAlu, i, i);
        emitOp(10, OpClass::IntAlu, t, i);
        emitBranch(11, true, 0, t);
        i_ += 1;
    }

  private:
    Region a_, b_, c_;
    std::uint64_t i_ = 0;
};

/** Branch-dense integer code with small lookup tables. */
class BranchyInt : public LoopKernel
{
  public:
    BranchyInt() : LoopKernel("branchy_int") {}

  protected:
    void
    init() override
    {
        tbl_ = region(16 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId v = intReg(1), w = intReg(2), x = intReg(3),
                    i = intReg(10);

        emitLoad(0, v, tbl_.randElem(rng_, 8), i);       // L1 hit
        emitOp(1, OpClass::IntAlu, w, v);
        bool skip_a = rng_.chance(0.7);                  // data dependent
        emitBranch(2, skip_a, 5, w);
        if (!skip_a) {
            emitOp(3, OpClass::IntAlu, x, w);
            emitOp(4, OpClass::IntAlu, x, x);
        }
        emitOp(5, OpClass::IntAlu, x, w, v);
        bool skip_b = rng_.chance(0.6);
        emitBranch(6, skip_b, 8, x);
        if (!skip_b)
            emitOp(7, OpClass::IntAlu, v, x);
        emitOp(8, OpClass::IntAlu, i, i);
        emitBranch(9, true, 0, i);
        i_ += 1;
    }

  private:
    Region tbl_;
    std::uint64_t i_ = 0;
};

/** FP chains with occasional divides; L1-resident working set. */
class FpKernel : public LoopKernel
{
  public:
    FpKernel() : LoopKernel("fp_kernel") {}

  protected:
    void
    init() override
    {
        buf_ = region(16 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId ai = intReg(1), i = intReg(10);
        const RegId x = fpReg(1), y = fpReg(2), z = fpReg(3),
                    r = fpReg(4);

        emitOp(0, OpClass::IntAlu, ai, i);
        emitLoad(1, x, buf_.elem(i_, 8), ai);
        emitOp(2, OpClass::FpMul, y, x, x);
        emitOp(3, OpClass::FpAlu, z, y, x);
        if (iter_ % 32 == 0)
            emitOp(4, OpClass::FpDiv, r, z, y);   // long fixed latency
        else
            emitOp(5, OpClass::FpMul, r, z, y);
        emitOp(6, OpClass::FpAlu, r, r, x);
        emitStore(7, buf_.elem(i_, 8), r, ai);
        emitOp(8, OpClass::IntAlu, i, i);
        emitBranch(9, true, 0, i);
        i_ += 1;
    }

  private:
    Region buf_;
    std::uint64_t i_ = 0;
};

/** Sequential sweep of an L2-resident buffer with compare/accumulate. */
class CacheResidentStream : public LoopKernel
{
  public:
    CacheResidentStream() : LoopKernel("cache_stream") {}

  protected:
    void
    init() override
    {
        buf_ = region(128 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId a = intReg(1), v = intReg(2), w = intReg(3),
                    acc = intReg(4), i = intReg(10);

        emitOp(0, OpClass::IntAlu, a, i);
        emitLoad(1, v, buf_.elem(i_, 8), a);
        emitLoad(2, w, buf_.elem(i_ + 8, 8), a);
        emitOp(3, OpClass::IntAlu, acc, acc, v);
        emitOp(4, OpClass::IntAlu, acc, acc, w);
        bool skip = rng_.chance(0.9);
        emitBranch(5, skip, 7, acc);
        if (!skip)
            emitOp(6, OpClass::IntAlu, acc, acc);
        emitOp(7, OpClass::IntAlu, i, i);
        emitBranch(8, true, 0, i);
        i_ += 1;
    }

  private:
    Region buf_;
    std::uint64_t i_ = 0;
};

/** Serial accumulation: low ILP by construction, but no misses. */
class Reduction : public LoopKernel
{
  public:
    Reduction() : LoopKernel("reduction") {}

  protected:
    void
    init() override
    {
        buf_ = region(8 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId a = intReg(1), i = intReg(10);
        const RegId v = fpReg(1), acc = fpReg(2);

        emitOp(0, OpClass::IntAlu, a, i);
        emitLoad(1, v, buf_.elem(i_, 8), a);
        emitOp(2, OpClass::FpAlu, acc, acc, v);  // serial chain
        emitOp(3, OpClass::IntAlu, i, i);
        emitBranch(4, true, 0, i);
        i_ += 1;
    }

  private:
    Region buf_;
    std::uint64_t i_ = 0;
};

/**
 * gcc flavour: mixed integer work plus a sequential sweep of a large
 * array.  The sweep *would* miss, but its perfectly regular stride is
 * covered by the L2 prefetcher — so with prefetching enabled (as in all
 * of the paper's experiments) the kernel stays MLP-insensitive.
 */
class IntMix : public LoopKernel
{
  public:
    IntMix() : LoopKernel("int_mix") {}

  protected:
    void
    init() override
    {
        big_ = region(32 << 20);
        tbl_ = region(8 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId a = intReg(1), v = intReg(2), w = intReg(3),
                    x = intReg(4), i = intReg(10);

        emitOp(0, OpClass::IntAlu, a, i);
        emitLoad(1, v, big_.elem(i_, 8), a);      // sequential: prefetched
        emitLoad(2, w, tbl_.randElem(rng_, 8), a); // L1 hit
        emitOp(3, OpClass::IntAlu, x, v, w);
        emitOp(4, OpClass::IntMul, x, x);
        bool skip = rng_.chance(0.8);
        emitBranch(5, skip, 7, x);
        if (!skip)
            emitOp(6, OpClass::IntAlu, x, x);
        emitStore(7, tbl_.elem(i_ & 255, 8), x, a);
        emitOp(8, OpClass::IntAlu, i, i);
        emitBranch(9, true, 0, i);
        i_ += 1;
    }

  private:
    Region big_, tbl_;
    std::uint64_t i_ = 0;
};

/**
 * Divide/sqrt heavy: the "long-latency instruction" class that is not a
 * memory miss (Section 2 counts division and square root).  No DRAM
 * traffic, so the DRAM-timer monitor keeps LTP powered off here.
 */
class DivHeavy : public LoopKernel
{
  public:
    DivHeavy() : LoopKernel("div_heavy") {}

  protected:
    void
    init() override
    {
        buf_ = region(8 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId a = intReg(1), q = intReg(2), i = intReg(10);
        const RegId x = fpReg(1), y = fpReg(2), r = fpReg(3);

        emitOp(0, OpClass::IntAlu, a, i);
        emitLoad(1, x, buf_.elem(i_, 8), a);
        emitOp(2, OpClass::FpDiv, y, x, x);
        emitOp(3, OpClass::FpSqrt, r, y);
        emitOp(4, OpClass::FpAlu, r, r, x);      // consumer of LL op
        emitOp(5, OpClass::IntDiv, q, a, a);
        emitOp(6, OpClass::IntAlu, q, q);        // consumer of LL op
        emitStore(7, buf_.elem(i_, 8), r, a);
        emitOp(8, OpClass::IntAlu, i, i);
        emitBranch(9, true, 0, i);
        i_ += 1;
    }

  private:
    Region buf_;
    std::uint64_t i_ = 0;
};

} // namespace

WorkloadPtr makeDenseCompute() { return std::make_unique<DenseCompute>(); }
WorkloadPtr makeBranchyInt() { return std::make_unique<BranchyInt>(); }
WorkloadPtr makeFpKernel() { return std::make_unique<FpKernel>(); }
WorkloadPtr makeCacheResidentStream()
{
    return std::make_unique<CacheResidentStream>();
}
WorkloadPtr makeReduction() { return std::make_unique<Reduction>(); }
WorkloadPtr makeIntMix() { return std::make_unique<IntMix>(); }
WorkloadPtr makeDivHeavy() { return std::make_unique<DivHeavy>(); }

} // namespace ltp
