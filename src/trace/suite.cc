#include "trace/suite.hh"

#include <stdexcept>

#include "common/logging.hh"
#include "trace/kernels.hh"
#include "trace/trace_workload.hh"

namespace ltp {

const std::vector<SuiteEntry> &
kernelSuite()
{
    static const std::vector<SuiteEntry> suite = {
        {"paper_loop", MlpIntent::Example, &makePaperLoop},
        // MLP sensitive
        {"graph_walk", MlpIntent::Sensitive, &makeGraphWalk},
        {"indirect_stream_fp", MlpIntent::Sensitive, &makeIndirectStreamFp},
        {"sparse_gather", MlpIntent::Sensitive, &makeSparseGather},
        {"hash_probe", MlpIntent::Sensitive, &makeHashProbe},
        {"linked_list", MlpIntent::Sensitive, &makeLinkedList},
        {"bucket_shuffle", MlpIntent::Sensitive, &makeBucketShuffle},
        {"btree_lookup", MlpIntent::Sensitive, &makeBtreeLookup},
        // MLP insensitive
        {"dense_compute", MlpIntent::Insensitive, &makeDenseCompute},
        {"branchy_int", MlpIntent::Insensitive, &makeBranchyInt},
        {"fp_kernel", MlpIntent::Insensitive, &makeFpKernel},
        {"cache_stream", MlpIntent::Insensitive, &makeCacheResidentStream},
        {"reduction", MlpIntent::Insensitive, &makeReduction},
        {"int_mix", MlpIntent::Insensitive, &makeIntMix},
        {"div_heavy", MlpIntent::Insensitive, &makeDivHeavy},
    };
    return suite;
}

WorkloadPtr
makeKernel(const std::string &name)
{
    // `trace:<path>` replays a recorded .lttr trace (trace_workload.hh)
    // through the same front-end as any DSL kernel.
    if (isTraceName(name)) {
        try {
            return makeTraceWorkload(name);
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
    }
    for (const auto &e : kernelSuite())
        if (e.name == name)
            return e.factory();
    fatal("unknown kernel '%s'", name.c_str());
}

std::vector<std::string>
kernelNames(MlpIntent intent)
{
    std::vector<std::string> out;
    for (const auto &e : kernelSuite())
        if (e.intent == intent)
            out.push_back(e.name);
    return out;
}

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> out;
    for (const auto &e : kernelSuite())
        if (e.intent != MlpIntent::Example)
            out.push_back(e.name);
    return out;
}

} // namespace ltp
