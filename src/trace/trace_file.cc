#include "trace/trace_file.hh"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/binio.hh"
#include "common/logging.hh"
#include "trace/suite.hh"

namespace ltp {

namespace {

[[noreturn]] void
badTrace(const std::string &what)
{
    throw std::runtime_error("trace: " + what);
}

/** Register <-> u16 wire form: regClass << 8 | index. */
std::uint16_t
packReg(const RegId &r)
{
    return static_cast<std::uint16_t>((std::uint16_t(r.cls) << 8) |
                                      r.idx);
}

RegId
unpackReg(std::uint16_t wire)
{
    RegId r;
    r.cls = static_cast<std::uint8_t>(wire >> 8);
    r.idx = static_cast<std::uint8_t>(wire & 0xffu);
    return r;
}

std::string
encodeHeader(const TraceInfo &info, std::uint64_t count)
{
    std::string out;
    out.append(kTraceMagic, sizeof(kTraceMagic));
    putU32le(out, info.version);
    putU32le(out, 0); // reserved
    putU64le(out, info.seed);
    putU64le(out, info.funcWarm);
    putU64le(out, info.pipeWarm);
    putU64le(out, info.detail);
    putU64le(out, count);
    if (info.kernel.size() > 0xffff)
        badTrace("kernel name too long to encode");
    putU16le(out, static_cast<std::uint16_t>(info.kernel.size()));
    out += info.kernel;
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TraceWriter::TraceWriter(const TraceInfo &info) : info_(info)
{
    records_.reserve(info.recordLength() * kTraceRecordBytes);
}

void
TraceWriter::append(const MicroOp &op)
{
    putU64le(records_, op.pc);
    putU64le(records_, op.effAddr);
    putU64le(records_, op.target);
    putU8(records_, static_cast<std::uint8_t>(op.opc));
    putU8(records_, op.memSize);
    putU8(records_, op.taken ? 1 : 0);
    putU16le(records_, packReg(op.dst));
    for (const RegId &src : op.srcs)
        putU16le(records_, packReg(src));
    count_ += 1;
}

std::string
TraceWriter::finish() const
{
    std::string out = encodeHeader(info_, count_);
    out += records_;
    putU32le(out, crc32(out));
    return out;
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

TraceReader::TraceReader(std::string bytes) : bytes_(std::move(bytes))
{
    // Fixed header prefix + name length field + CRC footer.
    constexpr std::size_t min_size = 8 + 4 + 4 + 5 * 8 + 2 + 4;
    if (bytes_.size() < min_size)
        badTrace("truncated file (" + std::to_string(bytes_.size()) +
                 " bytes, header alone needs " +
                 std::to_string(min_size) + ")");

    ByteReader in(bytes_);
    if (std::memcmp(in.raw(sizeof(kTraceMagic)).data(), kTraceMagic,
                    sizeof(kTraceMagic)) != 0)
        badTrace("bad magic (not a .lttr trace file)");
    info_.version = in.u32();
    if (info_.version != kTraceVersion)
        badTrace("unsupported version " + std::to_string(info_.version) +
                 " (this build reads version " +
                 std::to_string(kTraceVersion) + ")");
    in.u32(); // reserved
    info_.seed = in.u64();
    info_.funcWarm = in.u64();
    info_.pipeWarm = in.u64();
    info_.detail = in.u64();
    info_.count = in.u64();
    std::uint16_t name_len = in.u16();
    if (in.remaining() < name_len + 4u)
        badTrace("truncated file inside the kernel name");
    info_.kernel = in.raw(name_len);
    recordsOff_ = in.offset();

    // Divide instead of multiplying the (untrusted) count so an absurd
    // header value cannot wrap the size check mod 2^64.
    std::size_t payload = bytes_.size() - recordsOff_ - 4;
    if (payload % kTraceRecordBytes != 0 ||
        info_.count != payload / kTraceRecordBytes)
        badTrace("size mismatch: header promises " +
                 std::to_string(info_.count) + " records, file has " +
                 std::to_string(payload) + " payload bytes (" +
                 std::to_string(payload / kTraceRecordBytes) +
                 " records)");

    std::uint32_t stored =
        ByteReader(bytes_, bytes_.size() - 4).u32();
    Crc32 crc;
    crc.update(bytes_.data(), bytes_.size() - 4);
    if (crc.value() != stored)
        badTrace(strprintf("CRC mismatch (stored %08x, computed %08x): "
                           "file is corrupt",
                           stored, crc.value()));

    // Validate every record's enum-like fields up front: a CRC-valid
    // but crafted file must be rejected here, not fed to the pipeline
    // (an out-of-range register would index the rename table out of
    // bounds; an out-of-range op class would index the property table).
    for (std::uint64_t i = 0; i < info_.count; ++i) {
        ByteReader rec(bytes_, recordsOff_ + i * kTraceRecordBytes);
        rec.skip(24); // pc, effAddr, target
        std::uint8_t opc = rec.u8();
        if (opc >= kNumOpClasses)
            badTrace("record " + std::to_string(i) +
                     " has invalid op class " + std::to_string(opc));
        rec.skip(2); // memSize, taken
        for (int r = 0; r < 1 + kMaxSrcs; ++r) {
            RegId reg = unpackReg(rec.u16());
            if (reg.valid() && (reg.cls >= kNumRegClasses ||
                                reg.idx >= kArchRegsPerClass))
                badTrace("record " + std::to_string(i) +
                         " has invalid register " +
                         std::to_string(reg.cls) + ":" +
                         std::to_string(reg.idx));
        }
    }
}

MicroOp
TraceReader::record(std::uint64_t i) const
{
    sim_assert(i < info_.count);
    ByteReader in(bytes_, recordsOff_ + i * kTraceRecordBytes);
    MicroOp op;
    op.pc = in.u64();
    op.effAddr = in.u64();
    op.target = in.u64();
    std::uint8_t opc = in.u8();
    sim_assert(opc < kNumOpClasses);
    op.opc = static_cast<OpClass>(opc);
    op.memSize = in.u8();
    op.taken = in.u8() != 0;
    op.dst = unpackReg(in.u16());
    for (RegId &src : op.srcs)
        src = unpackReg(in.u16());
    return op;
}

TraceReader
loadTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        badTrace("cannot open '" + path + "'");
    std::ostringstream data;
    data << in.rdbuf();
    try {
        return TraceReader(data.str());
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

void
writeTraceFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        badTrace("cannot open '" + path + "' for writing");
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        badTrace("short write to '" + path + "'");
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

std::string
recordTrace(const TraceInfo &info)
{
    bool known = false;
    for (const SuiteEntry &e : kernelSuite())
        known = known || e.name == info.kernel;
    if (!known)
        badTrace("cannot record unknown kernel '" + info.kernel +
                 "' (see `ltp list-kernels`)");

    WorkloadPtr wl = makeKernel(info.kernel);
    wl->reset(info.seed);
    TraceWriter writer(info);
    for (std::uint64_t i = 0, n = info.recordLength(); i < n; ++i)
        writer.append(wl->next());
    return writer.finish();
}

} // namespace ltp
