/**
 * @file
 * A tiny "assembler" for writing synthetic kernels.
 *
 * Kernels subclass @ref ltp::LoopKernel and implement emitIteration(),
 * appending one loop iteration's micro-ops with the emit helpers.  Each
 * static position in the loop body (a "slot") maps to a stable PC, which
 * is what allows the UIT and the hit/miss predictor to learn — exactly
 * as they would on real SPEC code where the same static loads miss
 * repeatedly.
 *
 * Memory footprints are expressed as @ref ltp::Region objects carved out
 * of a per-kernel address range; a region's size relative to the cache
 * hierarchy (32kB L1 / 256kB L2 / 1MB L3) determines where its accesses
 * hit, and its access pattern (sequential vs. random) determines whether
 * the stride prefetcher can cover it.
 */

#ifndef LTP_TRACE_KERNEL_DSL_HH
#define LTP_TRACE_KERNEL_DSL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/workload.hh"

namespace ltp {

/** A contiguous memory footprint with wrapping element addressing. */
struct Region
{
    Addr base = 0;
    std::uint64_t bytes = 0;

    /** Address of element @p index of size @p elem_size, wrapping. */
    Addr
    elem(std::uint64_t index, int elem_size) const
    {
        sim_assert(bytes >= static_cast<std::uint64_t>(elem_size));
        std::uint64_t n = bytes / elem_size;
        return base + (index % n) * elem_size;
    }

    /** A uniformly random element address. */
    Addr
    randElem(Rng &rng, int elem_size) const
    {
        return elem(rng.below(bytes / elem_size), elem_size);
    }
};

/**
 * Base class for loop-shaped kernels.
 *
 * Handles stream buffering, per-slot PC assignment, region allocation,
 * and deterministic reset.  Subclasses implement:
 *   - init():          reset kernel state (indices, pointers) and carve
 *                      regions (idempotent: called on every reset)
 *   - emitIteration(): append one iteration of micro-ops
 */
class LoopKernel : public Workload
{
  public:
    explicit LoopKernel(std::string name);

    std::string name() const override { return name_; }
    void reset(std::uint64_t seed) override;
    MicroOp next() override;

    /** Number of completed emitIteration() calls since reset. */
    std::uint64_t iteration() const { return iter_; }

  protected:
    virtual void init() = 0;
    virtual void emitIteration() = 0;

    /** PC of body slot @p slot (stable across iterations). */
    Addr pcOf(int slot) const { return pc_base_ + slot * 4; }

    /** Carve a region of @p bytes out of the kernel's address space. */
    Region region(std::uint64_t bytes);

    /// @name Emit helpers (append to the current iteration).
    /// @{
    void emitOp(int slot, OpClass c, RegId dst, RegId s1 = RegId(),
                RegId s2 = RegId(), RegId s3 = RegId());
    void emitLoad(int slot, RegId dst, Addr addr, RegId a1 = RegId(),
                  RegId a2 = RegId(), int size = 8);
    void emitStore(int slot, Addr addr, RegId data, RegId a1 = RegId(),
                   RegId a2 = RegId(), int size = 8);
    /** Conditional branch to @p target_slot; direction from the trace. */
    void emitBranch(int slot, bool taken, int target_slot,
                    RegId cond = RegId());
    /// @}

    Rng rng_;       ///< deterministic per-kernel randomness
    std::uint64_t iter_ = 0;

  private:
    std::string name_;
    Addr pc_base_;
    Addr next_region_;
    std::vector<MicroOp> buf_;
    std::size_t pos_ = 0;
};

/** FNV-1a hash used to derive per-kernel seeds and PC bases. */
std::uint64_t hashName(const std::string &s);

} // namespace ltp

#endif // LTP_TRACE_KERNEL_DSL_HH
