#include "trace/trace_workload.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"

namespace ltp {

bool
isTraceName(const std::string &name)
{
    return name.rfind(kTraceNamePrefix, 0) == 0;
}

std::string
traceName(const std::string &path)
{
    return kTraceNamePrefix + path;
}

std::string
tracePath(const std::string &name)
{
    return isTraceName(name)
               ? name.substr(std::string(kTraceNamePrefix).size())
               : name;
}

std::string
traceLabel(const std::string &path)
{
    std::size_t slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = base.find_last_of('.');
    return dot == std::string::npos || dot == 0 ? base
                                                : base.substr(0, dot);
}

std::shared_ptr<const TraceReader>
loadTraceCached(const std::string &path)
{
    static std::mutex mutex;
    static std::map<std::string, std::shared_ptr<const TraceReader>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(path);
    if (it != cache.end())
        return it->second;
    auto trace = std::make_shared<const TraceReader>(loadTraceFile(path));
    cache.emplace(path, trace);
    return trace;
}

void
TraceWorkload::reset(std::uint64_t seed)
{
    const TraceInfo &info = trace_->info();
    if (seed != info.seed)
        warn("trace '%s' was recorded with seed %llu; replay cannot "
             "re-seed to %llu (the recorded stream is replayed as is)",
             info.kernel.c_str(),
             static_cast<unsigned long long>(info.seed),
             static_cast<unsigned long long>(seed));
    pos_ = 0;
}

MicroOp
TraceWorkload::next()
{
    const TraceInfo &info = trace_->info();
    if (pos_ >= info.count)
        fatal("trace '%s' exhausted after %llu records; re-record with "
              "a staging plan at least as long as the replay run "
              "(recorded funcWarm=%llu pipeWarm=%llu detail=%llu)",
              info.kernel.c_str(),
              static_cast<unsigned long long>(info.count),
              static_cast<unsigned long long>(info.funcWarm),
              static_cast<unsigned long long>(info.pipeWarm),
              static_cast<unsigned long long>(info.detail));
    return trace_->record(pos_++);
}

WorkloadPtr
makeTraceWorkload(const std::string &nameOrPath)
{
    return std::make_unique<TraceWorkload>(
        loadTraceCached(tracePath(nameOrPath)));
}

} // namespace ltp
