/**
 * @file
 * Factory functions for the synthetic kernel suite.
 *
 * SPEC CPU2006 stand-ins (DESIGN.md section 1).  Seven kernels are
 * constructed to be MLP-sensitive under the Section 4.1 criteria and
 * seven to be MLP-insensitive; `paper_loop` is the exact example of the
 * paper's Figure 2.  Group membership is *verified at runtime* by the
 * Section 4.1 classifier (src/sim/mlp_class.*) — the intent recorded
 * here is only used by tests as a sanity anchor.
 */

#ifndef LTP_TRACE_KERNELS_HH
#define LTP_TRACE_KERNELS_HH

#include "trace/workload.hh"

namespace ltp {

/// Figure 2: for(i..){ d = B[A[j--]]; C[i] = d + 5; }  B misses, A/C hit.
WorkloadPtr makePaperLoop();

/// @name MLP-sensitive kernels
/// @{
/// astar/rivers stand-in: serial pointer chase + dependent fan-out loads.
WorkloadPtr makeGraphWalk();
/// milc stand-in: indirect FP stream, B[A[i]] misses, long FP consumer
/// chains (Non-Ready mostly also Non-Urgent).
WorkloadPtr makeIndirectStreamFp();
/// soplex/sphinx stand-in: sparse gather y += M[col[j]] * x[j].
WorkloadPtr makeSparseGather();
/// omnetpp stand-in: hash table probe with short dependent chains.
WorkloadPtr makeHashProbe();
/// mcf stand-in: linked-list walk with per-node field loads.
WorkloadPtr makeLinkedList();
/// permutation walk over a DRAM-sized array: maximal independent misses.
WorkloadPtr makeBucketShuffle();
/// B-tree root-to-leaf descent: upper levels cached, leaves miss.
WorkloadPtr makeBtreeLookup();
/// @}

/// @name MLP-insensitive kernels
/// @{
/// dense FP compute, L1-resident (povray/calculix flavour).
WorkloadPtr makeDenseCompute();
/// branchy integer with small tables (crafty/gobmk flavour).
WorkloadPtr makeBranchyInt();
/// FP dependence chains with occasional divides (namd flavour).
WorkloadPtr makeFpKernel();
/// sequential sweep of an L2-resident buffer (hmmer flavour).
WorkloadPtr makeCacheResidentStream();
/// serial accumulation chain, L1-resident.
WorkloadPtr makeReduction();
/// mixed integer + prefetch-friendly streaming (gcc flavour).
WorkloadPtr makeIntMix();
/// divide/sqrt-heavy: long fixed-latency ops without memory misses.
WorkloadPtr makeDivHeavy();
/// @}

} // namespace ltp

#endif // LTP_TRACE_KERNELS_HH
