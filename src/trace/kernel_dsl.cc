#include "trace/kernel_dsl.hh"

namespace ltp {

std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

LoopKernel::LoopKernel(std::string name)
    : name_(std::move(name))
{
    // Distinct text and data ranges per kernel so suites can be compared
    // without accidental cache sharing between configurations.
    pc_base_ = 0x400000 + (hashName(name_) & 0xffff) * 0x1000;
    next_region_ = 0;
}

void
LoopKernel::reset(std::uint64_t seed)
{
    rng_ = Rng(seed ^ hashName(name_));
    buf_.clear();
    pos_ = 0;
    iter_ = 0;
    next_region_ = 0x10000000;
    init();
}

MicroOp
LoopKernel::next()
{
    while (pos_ >= buf_.size()) {
        buf_.clear();
        pos_ = 0;
        emitIteration();
        iter_ += 1;
        sim_assert(!buf_.empty());
    }
    return buf_[pos_++];
}

Region
LoopKernel::region(std::uint64_t bytes)
{
    // Page-align and pad so distinct regions never share a cache block.
    std::uint64_t aligned = (bytes + 4095) & ~std::uint64_t(4095);
    Region r{next_region_, bytes};
    next_region_ += aligned + 4096;
    return r;
}

void
LoopKernel::emitOp(int slot, OpClass c, RegId dst, RegId s1, RegId s2,
                   RegId s3)
{
    OpBuilder b(c);
    b.pc(pcOf(slot));
    if (dst.valid())
        b.dst(dst);
    if (s1.valid())
        b.src(s1);
    if (s2.valid())
        b.src(s2);
    if (s3.valid())
        b.src(s3);
    buf_.push_back(b.build());
}

void
LoopKernel::emitLoad(int slot, RegId dst, Addr addr, RegId a1, RegId a2,
                     int size)
{
    OpBuilder b(OpClass::Load);
    b.pc(pcOf(slot)).dst(dst).mem(addr, size);
    if (a1.valid())
        b.src(a1);
    if (a2.valid())
        b.src(a2);
    buf_.push_back(b.build());
}

void
LoopKernel::emitStore(int slot, Addr addr, RegId data, RegId a1, RegId a2,
                      int size)
{
    OpBuilder b(OpClass::Store);
    b.pc(pcOf(slot)).mem(addr, size);
    if (data.valid())
        b.src(data);
    if (a1.valid())
        b.src(a1);
    if (a2.valid())
        b.src(a2);
    buf_.push_back(b.build());
}

void
LoopKernel::emitBranch(int slot, bool taken, int target_slot, RegId cond)
{
    OpBuilder b(OpClass::Branch);
    b.pc(pcOf(slot)).branch(taken, pcOf(target_slot));
    if (cond.valid())
        b.src(cond);
    buf_.push_back(b.build());
}

} // namespace ltp
