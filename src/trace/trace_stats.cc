#include "trace/trace_stats.hh"

#include <set>
#include <sstream>

namespace ltp {

std::string
TraceMix::toString() const
{
    std::ostringstream os;
    os << "insts=" << insts
       << strprintf(" loads=%.1f%%", 100 * frac(loads))
       << strprintf(" stores=%.1f%%", 100 * frac(stores))
       << strprintf(" branches=%.1f%%", 100 * frac(branches))
       << strprintf(" fp=%.1f%%", 100 * frac(fpOps))
       << " uniquePCs=" << uniquePcs;
    return os.str();
}

TraceMix
measureMix(Workload &w, std::uint64_t n, std::uint64_t seed)
{
    w.reset(seed);
    TraceMix mix;
    std::set<Addr> pcs;
    for (std::uint64_t k = 0; k < n; ++k) {
        MicroOp op = w.next();
        mix.insts += 1;
        mix.loads += op.isLoad();
        mix.stores += op.isStore();
        mix.branches += op.isBranch();
        mix.takenBranches += op.isBranch() && op.taken;
        bool fp = op.opc == OpClass::FpAlu || op.opc == OpClass::FpMul ||
                  op.opc == OpClass::FpDiv || op.opc == OpClass::FpSqrt;
        mix.fpOps += fp;
        mix.longFixedOps += isFixedLongLat(op.opc);
        mix.withDest += op.hasDst();
        pcs.insert(op.pc);
    }
    mix.uniquePcs = pcs.size();
    return mix;
}

} // namespace ltp
