/**
 * @file
 * The example loop of the paper's Figure 2:
 *
 *   for (i = 0; i < 10,000; i++) {
 *       d = B[A[j--]];
 *       C[i] = d + 5;
 *   }
 *
 * B[] misses in the cache (random indices into a DRAM-sized array);
 * A[] and C[] hit thanks to their prefetch-friendly access patterns.
 *
 * Slot letters follow the paper exactly:
 *   A  addrA = baseA + j     U+R
 *   B  t1 = load A[j]        U+R   (hit)
 *   C  addrB = baseB + t1    U+R
 *   D  d = load B[t1]        U+R   (miss -> the long-latency seed)
 *   E  j = j - 1             U+R
 *   F  d = d + 5             NU+NR
 *   G  addrC = baseC + i     NU+R
 *   H  store d -> C[i]       NU+NR (hit)
 *   I  i = i + 1             NU+R
 *   J  t2 = i - 10000        NU+R
 *   K  bltz t2, loop         NU+R
 */

#include "trace/kernel_dsl.hh"
#include "trace/kernels.hh"

namespace ltp {

namespace {

class PaperLoop : public LoopKernel
{
  public:
    PaperLoop() : LoopKernel("paper_loop") {}

    /** Slot indices named after the paper's instruction letters. */
    enum Slot { A, B, C, D, E, F, G, H, I, J, K };

  protected:
    void
    init() override
    {
        arr_a_ = region(8 << 20);  // descending sequential: prefetched
        arr_b_ = region(64 << 20); // random: misses to DRAM
        arr_c_ = region(512 << 10); // ascending stores: L3 resident
        j_ = arr_a_.bytes / 8;
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId addr_a = intReg(1), t1 = intReg(2), addr_b = intReg(3),
                    d = intReg(4), d2 = intReg(5), addr_c = intReg(6),
                    j = intReg(10), i = intReg(11), t2 = intReg(12);

        j_ -= 1;
        emitOp(A, OpClass::IntAlu, addr_a, j);
        emitLoad(B, t1, arr_a_.elem(j_, 8), addr_a);
        emitOp(C, OpClass::IntAlu, addr_b, t1);
        emitLoad(D, d, arr_b_.randElem(rng_, 8), addr_b);
        emitOp(E, OpClass::IntAlu, j, j);
        emitOp(F, OpClass::IntAlu, d2, d);
        emitOp(G, OpClass::IntAlu, addr_c, i);
        emitStore(H, arr_c_.elem(i_, 8), d2, addr_c);
        emitOp(I, OpClass::IntAlu, i, i);
        emitOp(J, OpClass::IntAlu, t2, i);
        emitBranch(K, true, A, t2);
        i_ += 1;
    }

  private:
    Region arr_a_, arr_b_, arr_c_;
    std::uint64_t j_ = 0;
    std::uint64_t i_ = 0;
};

} // namespace

WorkloadPtr
makePaperLoop()
{
    return std::make_unique<PaperLoop>();
}

} // namespace ltp
