/**
 * @file
 * The `.lttr` micro-op trace file format: a compact, versioned,
 * CRC-protected binary encoding of a recorded workload stream, so a
 * kernel is executed through the DSL front-end once and replayed many
 * times (sweeps, golden regression runs, CI determinism smoke).
 *
 * On-disk layout (all integers little-endian):
 *
 *   header   magic "LTPTRACE" (8 bytes)
 *            u32 version (currently 1)
 *            u32 reserved (0)
 *            u64 seed            — workload seed the stream was
 *                                  recorded with
 *            u64 funcWarm        — staging plan at record time, so
 *            u64 pipeWarm          `ltp replay` can reproduce the
 *            u64 detail            recording run exactly
 *            u64 recordCount
 *            u16 kernelNameLen + that many name bytes
 *   records  recordCount fixed 35-byte records:
 *            u64 pc, u64 effAddr, u64 target,
 *            u8 opClass, u8 memSize, u8 taken,
 *            u16 dst, u16 src0, u16 src1, u16 src2
 *            (each register is regClass << 8 | index; 0xff index =
 *             invalid/unused slot)
 *   footer   u32 CRC-32 (IEEE) over header + records
 *
 * The reader keeps the raw file bytes resident and decodes records in
 * place on demand (memory-mapped-style access), so replay costs no
 * up-front decode pass and no second copy of the stream.
 */

#ifndef LTP_TRACE_TRACE_FILE_HH
#define LTP_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <string>

#include "isa/microop.hh"

namespace ltp {

/** File magic, version, and fixed record size of the current format. */
inline constexpr char kTraceMagic[8] = {'L', 'T', 'P', 'T',
                                        'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceRecordBytes = 35;

/**
 * Fetch-ahead slack recorded (and classified by the oracle) beyond the
 * staged instruction count: the front end can run this far past the
 * last committed instruction of the detail region.
 */
inline constexpr std::uint64_t kTraceFetchSlack = 16384;

/** Decoded `.lttr` header. */
struct TraceInfo
{
    std::uint32_t version = kTraceVersion;
    std::string kernel;       ///< source kernel name (Workload::name())
    std::uint64_t seed = 1;   ///< workload seed at record time
    std::uint64_t funcWarm = 0; ///< staging plan at record time
    std::uint64_t pipeWarm = 0;
    std::uint64_t detail = 0;
    std::uint64_t count = 0;  ///< number of records

    /** Instructions to record for this staging plan (incl. slack). */
    std::uint64_t
    recordLength() const
    {
        return funcWarm + pipeWarm + detail + kTraceFetchSlack;
    }
};

/** Streaming `.lttr` encoder: construct, append(), finish(). */
class TraceWriter
{
  public:
    /** @p info.count is ignored; the appended count is written. */
    explicit TraceWriter(const TraceInfo &info);

    void append(const MicroOp &op);

    std::uint64_t count() const { return count_; }

    /** Assemble header + records + CRC footer. */
    std::string finish() const;

  private:
    TraceInfo info_;
    std::string records_;
    std::uint64_t count_ = 0;
};

/**
 * Validated `.lttr` view over an in-memory file image.  Construction
 * checks magic, version, structural sizes, the CRC footer, and every
 * record's enum-like fields (op class, register class/index), so a
 * reader that constructs can be replayed without further checking.
 *
 * @throws std::runtime_error naming the defect on malformed input.
 */
class TraceReader
{
  public:
    /** Parse and validate a whole-file byte image. */
    explicit TraceReader(std::string bytes);

    const TraceInfo &info() const { return info_; }

    /** Decode record @p i; panics when out of range (caller checks). */
    MicroOp record(std::uint64_t i) const;

    /** The raw validated file image (byte-identity tests). */
    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
    TraceInfo info_;
    std::size_t recordsOff_ = 0; ///< byte offset of record 0
};

/** Read @p path and validate it; errors are prefixed with the path. */
TraceReader loadTraceFile(const std::string &path);

/** Write an encoded trace image to @p path (binary-safe).
 *  @throws std::runtime_error when the file cannot be written. */
void writeTraceFile(const std::string &path, const std::string &bytes);

/**
 * Execute @p kernel through the DSL front-end and encode the stream the
 * staging plan in @p info can reach (recordLength() micro-ops).
 * @p info.kernel/seed/staging describe the recording; count is derived.
 * @throws std::runtime_error on unknown kernels.
 */
std::string recordTrace(const TraceInfo &info);

} // namespace ltp

#endif // LTP_TRACE_TRACE_FILE_HH
