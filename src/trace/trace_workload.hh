/**
 * @file
 * Replay front-end: a Workload backed by a recorded `.lttr` trace, plus
 * the `trace:<path>` workload-name convention that lets recorded traces
 * flow through every string-keyed surface (makeKernel, SweepSpec job
 * kernel lists, scenario files) exactly like DSL kernels.
 *
 * name() returns the *source kernel name* embedded in the trace header,
 * so a replayed run produces Metrics bit-identical to the execute-mode
 * run it was recorded from — including the `workload` field.
 *
 * Loaded traces are cached process-wide (thread-safe), so a sweep that
 * replays the same file across many (config, seed) cells reads and
 * validates it once.
 */

#ifndef LTP_TRACE_TRACE_WORKLOAD_HH
#define LTP_TRACE_TRACE_WORKLOAD_HH

#include <memory>
#include <string>

#include "trace/trace_file.hh"
#include "trace/workload.hh"

namespace ltp {

/** Prefix turning a trace file path into a workload name. */
inline constexpr const char *kTraceNamePrefix = "trace:";

/** True if @p name is a `trace:<path>` workload name. */
bool isTraceName(const std::string &name);

/** The `trace:<path>` workload name for @p path. */
std::string traceName(const std::string &path);

/** The file path inside a `trace:<path>` workload name. */
std::string tracePath(const std::string &name);

/** Human label for result rows: the file stem ("dir/a.lttr" -> "a"). */
std::string traceLabel(const std::string &path);

/**
 * Load (via the process-wide cache) and validate @p path.
 * @throws std::runtime_error naming the path and defect.
 */
std::shared_ptr<const TraceReader> loadTraceCached(
    const std::string &path);

/** A Workload replaying one recorded trace. */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(std::shared_ptr<const TraceReader> trace)
        : trace_(std::move(trace))
    {
    }

    /** The source kernel name embedded in the trace header. */
    std::string name() const override { return trace_->info().kernel; }

    /**
     * Rewind to record 0.  The stream is fixed at record time, so
     * @p seed cannot re-randomize it; a mismatch against the recorded
     * seed warns (the replay then reproduces the *recorded* seed).
     */
    void reset(std::uint64_t seed) override;

    /** Next record; fatal() with re-record guidance when exhausted. */
    MicroOp next() override;

    /** O(1) seek past @p n records (random-access trace storage). */
    void skip(std::uint64_t n) override { pos_ += n; }

  private:
    std::shared_ptr<const TraceReader> trace_;
    std::uint64_t pos_ = 0;
};

/**
 * Instantiate a replay workload for `trace:<path>` (or a bare path).
 * @throws std::runtime_error on unreadable or malformed files.
 */
WorkloadPtr makeTraceWorkload(const std::string &nameOrPath);

} // namespace ltp

#endif // LTP_TRACE_TRACE_WORKLOAD_HH
