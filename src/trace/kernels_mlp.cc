/**
 * @file
 * MLP-sensitive kernels (SPEC stand-ins; see kernels.hh).
 *
 * Each kernel is built so a larger instruction window exposes more
 * outstanding misses: iterations carry independent long-latency loads
 * whose consumers (the parkable Non-Urgent / Non-Ready slices) would
 * otherwise clog the IQ and register file.
 */

#include "trace/kernel_dsl.hh"
#include "trace/kernels.hh"

namespace ltp {

namespace {

/**
 * astar/rivers stand-in.  Four independent search fronts walk the node
 * array round-robin; each visit is a pointer chase (Urgent + Non-Ready
 * load) with a dependent fan-out load and cost accumulation.  A bigger
 * window overlaps more fronts' misses, and because the chase and
 * fan-out loads are Urgent *and* Non-Ready, Non-Ready parking matters
 * more than Non-Urgent here -- mirroring the paper's astar discussion.
 */
class GraphWalk : public LoopKernel
{
  public:
    GraphWalk() : LoopKernel("graph_walk") {}

  protected:
    void
    init() override
    {
        nodes_ = region(24 << 20);  // chase footprint: DRAM
        data_ = region(32 << 20);   // fan-out loads: DRAM
        work_ = region(8 << 10);    // open list: L1 resident
        wi_ = 0;
    }

    void
    emitIteration() override
    {
        // Six architectural walker pointers: independent chase chains
        // the window can overlap (parallel search fronts).
        int front = int(iter_ % 6);
        const RegId p = intReg(1 + front);
        const RegId v0 = intReg(12), h0 = intReg(13), sum = intReg(14),
                    wa = intReg(15), i = intReg(10), t = intReg(11);
        const int base = 16 * front; // per-front static code

        // Serial within a front: the next node depends on this load.
        emitLoad(base + 0, p, nodes_.randElem(rng_, 8), p);
        // Dependent fan-out load (miss): Urgent (an LL load itself) but
        // Non-Ready (its address hangs off the chase pointer).
        emitOp(base + 1, OpClass::IntAlu, h0, p);
        emitLoad(base + 2, v0, data_.randElem(rng_, 8), h0);
        // Cost accumulation: consumers of the fan-out load (NU+NR).
        emitOp(base + 3, OpClass::IntAlu, sum, v0, p);
        emitOp(base + 4, OpClass::IntAlu, sum, sum);
        // Open-list bookkeeping: cache-resident store + loop overhead.
        emitOp(base + 5, OpClass::IntAlu, wa, i);
        emitStore(base + 6, work_.elem(wi_, 8), sum, wa);
        emitOp(base + 7, OpClass::IntAlu, i, i);
        emitOp(base + 8, OpClass::IntAlu, t, i);
        emitBranch(base + 9, true, 16 * int((iter_ + 1) % 6), t);
        wi_ += 1;
    }

  private:
    Region nodes_, data_, work_;
    std::uint64_t wi_ = 0;
};

/**
 * milc stand-in.  d = B[A[i]] with a prefetch-friendly index stream and
 * a DRAM-sized B, followed by a five-deep FP consumer chain and a
 * streaming store.  Nearly every Non-Ready instruction is also
 * Non-Urgent, so NU-only parking covers the NR ones too — the property
 * the paper highlights for milc.
 */
class IndirectStreamFp : public LoopKernel
{
  public:
    IndirectStreamFp() : LoopKernel("indirect_stream_fp") {}

  protected:
    void
    init() override
    {
        idx_ = region(8 << 20);   // A[]: sequential, prefetched
        grid_ = region(64 << 20); // B[]: random, misses
        out_ = region(512 << 10); // C[]: streaming stores, L3 resident
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId ai = intReg(1), t1 = intReg(2), ab = intReg(3),
                    i = intReg(10), t2 = intReg(11), ac = intReg(12);
        const RegId d = fpReg(1), f1 = fpReg(2), f2 = fpReg(3),
                    f3 = fpReg(4), f4 = fpReg(5), c0 = fpReg(10);

        emitOp(0, OpClass::IntAlu, ai, i);
        emitLoad(1, t1, idx_.elem(i_, 8), ai);          // A[i]: hit
        emitOp(2, OpClass::IntAlu, ab, t1);
        emitLoad(3, d, grid_.randElem(rng_, 8), ab);    // B[A[i]]: miss
        // SU(3) flavoured consumer chain: all NU+NR.
        emitOp(4, OpClass::FpMul, f1, d, c0);
        emitOp(5, OpClass::FpAlu, f2, f1, c0);
        emitOp(6, OpClass::FpMul, f3, f2, f1);
        emitOp(7, OpClass::FpAlu, f4, f3, c0);
        emitOp(8, OpClass::IntAlu, ac, i);
        emitStore(9, out_.elem(i_, 8), f4, ac);
        emitOp(10, OpClass::IntAlu, i, i);
        emitOp(11, OpClass::IntAlu, t2, i);
        emitBranch(12, true, 0, t2);
        i_ += 1;
    }

  private:
    Region idx_, grid_, out_;
    std::uint64_t i_ = 0;
};

/**
 * soplex/sphinx stand-in: sparse matrix-vector product
 * y[i] += M[j] * x[col[j]] — col[] streams (hits), x[] gathers (misses).
 */
class SparseGather : public LoopKernel
{
  public:
    SparseGather() : LoopKernel("sparse_gather") {}

  protected:
    void
    init() override
    {
        col_ = region(8 << 20);  // column indices: sequential
        mat_ = region(8 << 20);  // matrix values: sequential
        vec_ = region(24 << 20); // gathered vector: random, misses
        acc_ = region(4 << 10);  // y accumulator: L1 resident
        j_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId aj = intReg(1), cj = intReg(2), ax = intReg(3),
                    j = intReg(10), t = intReg(11);
        const RegId m = fpReg(1), x = fpReg(2), p = fpReg(3),
                    y = fpReg(4);

        emitOp(0, OpClass::IntAlu, aj, j);
        emitLoad(1, cj, col_.elem(j_, 8), aj);           // col[j]: hit
        emitLoad(2, m, mat_.elem(j_, 8), aj);            // M[j]: hit
        emitOp(3, OpClass::IntAlu, ax, cj);
        emitLoad(4, x, vec_.randElem(rng_, 8), ax);      // x[col[j]]: miss
        emitOp(5, OpClass::FpMul, p, m, x);              // NU+NR
        emitOp(6, OpClass::FpAlu, y, y, p);              // NU+NR
        emitStore(7, acc_.elem(j_ & 63, 8), y, aj);
        emitOp(8, OpClass::IntAlu, j, j);
        emitOp(9, OpClass::IntAlu, t, j);
        emitBranch(10, true, 0, t);
        j_ += 1;
    }

  private:
    Region col_, mat_, vec_, acc_;
    std::uint64_t j_ = 0;
};

/**
 * omnetpp stand-in: event-queue / hash probing.  Hash computation is the
 * Urgent slice; the bucket load misses; a short chain walk follows with
 * a data-dependent (poorly predictable) branch.
 */
class HashProbe : public LoopKernel
{
  public:
    HashProbe() : LoopKernel("hash_probe") {}

  protected:
    void
    init() override
    {
        table_ = region(48 << 20); // bucket heads: random, misses
        keys_ = region(16 << 10);  // key staging: L1 resident
        k_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId key = intReg(1), h = intReg(2), ab = intReg(3),
                    node = intReg(4), val = intReg(5), cnt = intReg(6),
                    i = intReg(10);

        emitLoad(0, key, keys_.elem(k_, 8), i);         // key: hit
        emitOp(1, OpClass::IntAlu, h, key);             // hash: urgent
        emitOp(2, OpClass::IntMul, h, h);
        emitOp(3, OpClass::IntAlu, ab, h);
        emitLoad(4, node, table_.randElem(rng_, 8), ab); // bucket: miss
        // Probe the chain one hop (also a miss, dependent on the first).
        // Branch behaviour is periodic, hence predictable: random
        // directions would cap MLP at the mispredict distance and hide
        // the window effects this kernel exists to show (the paper's
        // omnetpp phases that classify sensitive are the predictable
        // ones for the same reason).
        bool second_hop = (iter_ % 4) == 1;
        emitBranch(5, !second_hop, 7, key);
        if (second_hop)
            emitLoad(6, node, table_.randElem(rng_, 8), node);
        // Four-deep payload processing: the Non-Ready slice that holds
        // IQ entries for the whole miss latency when not parked.
        emitOp(7, OpClass::IntAlu, val, node);          // NU+NR
        emitOp(8, OpClass::IntAlu, val, val, node);     // NU+NR
        emitOp(9, OpClass::IntAlu, val, val);           // NU+NR
        emitOp(10, OpClass::IntAlu, cnt, cnt, val);     // NU+NR
        // Match check: periodic rare "hit" path.
        emitBranch(11, (iter_ % 16) == 7, 12, key);
        emitOp(12, OpClass::IntAlu, i, i);
        emitBranch(13, true, 0, i);
        k_ += 1;
    }

  private:
    Region table_, keys_;
    std::uint64_t k_ = 0;
};

/**
 * mcf stand-in: six independent arc lists walked round-robin.  Each
 * next-pointer load is a serial chain of misses within its list
 * (Urgent + Non-Ready); three field loads per node provide fan-out,
 * and the window determines how many lists' misses overlap.
 */
class LinkedList : public LoopKernel
{
  public:
    LinkedList() : LoopKernel("linked_list") {}

  protected:
    void
    init() override
    {
        list_ = region(32 << 20);
        fields_ = region(32 << 20);
        out_ = region(8 << 10);
        n_ = 0;
    }

    void
    emitIteration() override
    {
        int front = int(iter_ % 6);
        const RegId p = intReg(1 + front);
        const RegId f0 = intReg(12), f1 = intReg(13), f2 = intReg(14),
                    s = intReg(15), a = intReg(16), i = intReg(10);
        const int base = 16 * front;

        emitLoad(base + 0, p, list_.randElem(rng_, 8), p); // p = p->next
        emitOp(base + 1, OpClass::IntAlu, a, p);
        emitLoad(base + 2, f0, fields_.randElem(rng_, 8), a); // p->cost
        emitLoad(base + 3, f1, fields_.randElem(rng_, 8), a); // p->flow
        emitLoad(base + 4, f2, fields_.randElem(rng_, 8), a); // p->bound
        emitOp(base + 5, OpClass::IntAlu, s, f0, f1);         // NU+NR
        emitOp(base + 6, OpClass::IntAlu, s, s, f2);          // NU+NR
        emitStore(base + 7, out_.elem(n_ & 255, 8), s, i);
        emitOp(base + 8, OpClass::IntAlu, i, i);
        emitBranch(base + 9, true, 16 * int((iter_ + 1) % 6), i);
        n_ += 1;
    }

  private:
    Region list_, fields_, out_;
    std::uint64_t n_ = 0;
};

/**
 * Permutation walk: every iteration issues one fully independent DRAM
 * miss plus a handful of consumers — the cleanest possible
 * window-limited MLP workload (libquantum-with-irregular-stride
 * flavour).
 */
class BucketShuffle : public LoopKernel
{
  public:
    BucketShuffle() : LoopKernel("bucket_shuffle") {}

  protected:
    void
    init() override
    {
        big_ = region(48 << 20);
        hist_ = region(8 << 10);
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId a = intReg(1), v = intReg(2), b = intReg(3),
                    c = intReg(4), d = intReg(5), e = intReg(6),
                    i = intReg(10), t = intReg(11);

        emitOp(0, OpClass::IntAlu, a, i);
        emitOp(1, OpClass::IntMul, a, a);                 // index hash
        emitLoad(2, v, big_.randElem(rng_, 8), a);        // miss
        // Five dependent consumers: the Non-Ready slice that clogs a
        // small IQ and makes the kernel window-limited rather than
        // DRAM-bandwidth-limited.
        emitOp(3, OpClass::IntAlu, b, v);                 // NU+NR
        emitOp(4, OpClass::IntAlu, c, b);                 // NU+NR
        emitOp(5, OpClass::IntAlu, d, c, v);              // NU+NR
        emitOp(6, OpClass::IntAlu, e, d);                 // NU+NR
        emitStore(7, hist_.elem(i_ & 511, 8), e, i);      // NU+NR
        emitOp(8, OpClass::IntAlu, i, i);
        emitOp(9, OpClass::IntAlu, t, i);
        emitBranch(10, true, 0, t);
        i_ += 1;
    }

  private:
    Region big_, hist_;
    std::uint64_t i_ = 0;
};

/**
 * B-tree descent: three dependent levels.  Root and inner nodes are
 * cache resident (hits); leaves live in a DRAM-sized region (miss).
 * Exercises mixed-readiness chains: the leaf load is Urgent + Non-Ready.
 */
class BtreeLookup : public LoopKernel
{
  public:
    BtreeLookup() : LoopKernel("btree_lookup") {}

  protected:
    void
    init() override
    {
        root_ = region(4 << 10);    // L1 resident
        inner_ = region(192 << 10); // L2 resident
        leaves_ = region(40 << 20); // DRAM
        i_ = 0;
    }

    void
    emitIteration() override
    {
        const RegId key = intReg(1), n0 = intReg(2), n1 = intReg(3),
                    leaf = intReg(4), cmp = intReg(5), acc = intReg(6),
                    i = intReg(10);

        emitOp(0, OpClass::IntAlu, key, i);               // next key
        emitOp(1, OpClass::IntMul, key, key);
        emitLoad(2, n0, root_.randElem(rng_, 8), key);    // root: hit
        emitLoad(3, n1, inner_.randElem(rng_, 8), n0);    // inner: ~hit
        emitLoad(4, leaf, leaves_.randElem(rng_, 8), n1); // leaf: miss
        // Record-processing chain off the leaf: NU+NR slice.
        emitOp(5, OpClass::IntAlu, cmp, leaf);            // NU+NR
        emitOp(6, OpClass::IntAlu, cmp, cmp, leaf);       // NU+NR
        emitOp(7, OpClass::IntAlu, cmp, cmp);             // NU+NR
        // Branch on key bits (fast to resolve); a leaf-fed branch would
        // serialise every lookup on the miss latency.
        bool skip = rng_.chance(0.1);
        emitBranch(8, skip, 10, key);
        if (!skip)
            emitOp(9, OpClass::IntAlu, acc, acc, cmp);    // NU+NR
        emitOp(10, OpClass::IntAlu, i, i);
        emitBranch(11, true, 0, i);
        i_ += 1;
    }

  private:
    Region root_, inner_, leaves_;
    std::uint64_t i_ = 0;
};

} // namespace

WorkloadPtr makeGraphWalk() { return std::make_unique<GraphWalk>(); }
WorkloadPtr makeIndirectStreamFp()
{
    return std::make_unique<IndirectStreamFp>();
}
WorkloadPtr makeSparseGather() { return std::make_unique<SparseGather>(); }
WorkloadPtr makeHashProbe() { return std::make_unique<HashProbe>(); }
WorkloadPtr makeLinkedList() { return std::make_unique<LinkedList>(); }
WorkloadPtr makeBucketShuffle() { return std::make_unique<BucketShuffle>(); }
WorkloadPtr makeBtreeLookup() { return std::make_unique<BtreeLookup>(); }

} // namespace ltp
