/**
 * @file
 * Workload interface: a deterministic, restartable micro-op stream.
 *
 * The paper evaluates on SPEC CPU2006 SimPoint traces.  Those traces are
 * proprietary, so this reproduction substitutes a suite of synthetic
 * kernels (DESIGN.md section 1) whose dependence topology and memory
 * footprints span the same MLP-sensitive / MLP-insensitive space.
 *
 * Determinism contract: after reset(seed), the sequence returned by
 * next() is a pure function of (kernel, seed).  The oracle classifier
 * (src/ltp/oracle.*) relies on this to replay the exact trace the timing
 * simulation consumes.
 */

#ifndef LTP_TRACE_WORKLOAD_HH
#define LTP_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "isa/microop.hh"

namespace ltp {

/** An infinite, deterministic stream of micro-ops. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Stable kernel name used by the suite registry and result tables. */
    virtual std::string name() const = 0;

    /** Restart the stream from the beginning with the given seed. */
    virtual void reset(std::uint64_t seed) = 0;

    /** Produce the next micro-op.  Streams never terminate. */
    virtual MicroOp next() = 0;

    /**
     * Advance the stream by @p n micro-ops without observing them.
     * Equivalent to n calls to next() with the results dropped;
     * sources with random access (trace replays) override this with
     * an O(1) seek.  Used by the fast-forward engine to resume from
     * an architectural checkpoint.
     */
    virtual void
    skip(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            (void)next();
    }
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace ltp

#endif // LTP_TRACE_WORKLOAD_HH
