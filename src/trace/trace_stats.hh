/**
 * @file
 * Static/dynamic instruction-mix statistics over a trace prefix.
 * Used by tests (mix sanity) and the classification inspector example.
 */

#ifndef LTP_TRACE_TRACE_STATS_HH
#define LTP_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <string>

#include "trace/workload.hh"

namespace ltp {

/** Aggregated mix of a trace prefix. */
struct TraceMix
{
    std::uint64_t insts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t fpOps = 0;
    std::uint64_t longFixedOps = 0; ///< div/sqrt
    std::uint64_t uniquePcs = 0;
    std::uint64_t withDest = 0;

    double frac(std::uint64_t n) const { return insts ? double(n) / insts : 0.0; }
    std::string toString() const;
};

/** Generate @p n micro-ops from @p w (after reset(seed)) and tally. */
TraceMix measureMix(Workload &w, std::uint64_t n, std::uint64_t seed);

} // namespace ltp

#endif // LTP_TRACE_TRACE_STATS_HH
