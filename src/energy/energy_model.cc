#include "energy/energy_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace ltp {

namespace {

// Per-event coefficients (pJ).  See the header for the scaling laws.
constexpr double kCamPerEntry = 0.10;      // wakeup tag compare
constexpr double kSelectPerEntry = 0.03;   // select tree
constexpr double kIqRwPerSqrtEntry = 0.40; // entry read/write
constexpr double kRfPerSqrtEntry = 0.55;   // port access
constexpr double kLtpPerSqrtEntry = 0.10;  // FIFO push/pop
constexpr double kLtpPortFactor = 0.10;    // extra area per extra port
constexpr double kUitPerSqrtEntry = 0.02;  // small tag probe
constexpr double kPredAccess = 0.05;
constexpr double kTicketCamPerEntry = 0.05;

// Leakage (pJ per cycle per entry).
constexpr double kIqLeak = 0.012;
constexpr double kRfLeak = 0.004;
constexpr double kLtpLeak = 0.0015;

} // namespace

std::string
EnergyBreakdown::toString() const
{
    return strprintf("iq=%.3gpJ rf=%.3gpJ ltp=%.3gpJ total=%.3gpJ", iq, rf,
                     ltp, total());
}

EnergyBreakdown
computeEnergy(const EnergyInputs &in)
{
    EnergyBreakdown out;
    double cycles = double(in.cycles);

    // ---- Issue queue ----
    double iq_entries = double(in.iqEntries);
    double wakeup = double(in.wakeupBroadcasts) * kCamPerEntry * iq_entries;
    double select = double(in.iqIssues) * kSelectPerEntry * iq_entries;
    double rw = double(in.iqInserts + in.iqIssues) * kIqRwPerSqrtEntry *
                std::sqrt(iq_entries);
    double iq_leak = cycles * kIqLeak * iq_entries;
    out.iq = wakeup + select + rw + iq_leak;

    // ---- Register file ----
    double rf_access = double(in.rfReads + in.rfWrites) * kRfPerSqrtEntry *
                       std::sqrt(double(in.totalRegs));
    double rf_leak = cycles * kRfLeak * double(in.totalRegs);
    out.rf = rf_access + rf_leak;

    // ---- LTP support structures ----
    if (in.ltpEntries > 0) {
        double port_factor =
            1.0 + kLtpPortFactor * std::max(0, in.ltpPorts - 1);
        double fifo = double(in.ltpPushes + in.ltpPops) *
                      kLtpPerSqrtEntry * std::sqrt(double(in.ltpEntries)) *
                      port_factor;
        double uit = double(in.uitLookups + in.uitInserts) *
                     kUitPerSqrtEntry *
                     std::sqrt(double(std::max(1, in.uitEntries)));
        double pred = double(in.predLookups) * kPredAccess;
        double cam = in.ltpCam ? double(in.ticketBroadcasts) *
                                     kTicketCamPerEntry *
                                     double(in.ltpEntries)
                               : 0.0;
        // Power gating: leakage only while the monitor keeps LTP on.
        double leak = cycles * kLtpLeak * double(in.ltpEntries) *
                      in.ltpEnabledFraction;
        out.ltp = fifo + uit + pred + cam + leak;
    }
    return out;
}

} // namespace ltp
