/**
 * @file
 * First-order McPAT/CACTI-style energy model for the structures the
 * paper's ED2P claim covers: IQ + RF + the LTP support structures
 * (queue, UIT, hit/miss predictor, ticket CAM).
 *
 * Scaling laws (the *relative* behaviour is what matters for Fig 10):
 *  - IQ wakeup: one tag broadcast across all entries per completing
 *    instruction => energy ∝ entries per broadcast (CAM comparators,
 *    entries × issue-width total, paper Section 5.5).
 *  - IQ select: ∝ entries per issued instruction.
 *  - IQ entry read/write: ∝ sqrt(entries) per dispatch/issue (RAM
 *    bitline/wordline scaling).
 *  - RF port access: ∝ sqrt(registers) per operand read / result write.
 *  - LTP queue: narrow-port RAM FIFO, ∝ sqrt(entries) per push/pop with
 *    a port-count area factor — no wakeup CAM in NU-only mode.
 *  - Ticket CAM (NR modes only): ∝ entries per ticket broadcast.
 *  - Static leakage ∝ entries (× enabled fraction for the power-gated
 *    LTP structures, Section 5.2).
 *
 * Absolute numbers are calibrated loosely to the paper's citation that
 * the IQ consumes ~18% of core energy [Gowan et al.]; only ratios and
 * percent deltas are reported by the benches.
 */

#ifndef LTP_ENERGY_ENERGY_MODEL_HH
#define LTP_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>

namespace ltp {

/** Structure sizes and activity counts for one simulation run. */
struct EnergyInputs
{
    std::uint64_t cycles = 0;

    // structure sizes
    int iqEntries = 64;
    int issueWidth = 6;
    int totalRegs = 256; ///< INT + FP available registers
    int ltpEntries = 0;  ///< 0 => no LTP
    int ltpPorts = 0;
    int uitEntries = 0;
    bool ltpCam = false; ///< NR modes need the ticket CAM

    // activity
    std::uint64_t iqInserts = 0;
    std::uint64_t iqIssues = 0;
    std::uint64_t wakeupBroadcasts = 0; ///< completions
    std::uint64_t rfReads = 0;
    std::uint64_t rfWrites = 0;
    std::uint64_t ltpPushes = 0;
    std::uint64_t ltpPops = 0;
    std::uint64_t ticketBroadcasts = 0;
    std::uint64_t uitLookups = 0;
    std::uint64_t uitInserts = 0;
    std::uint64_t predLookups = 0;
    double ltpEnabledFraction = 0.0; ///< leakage gating (Section 5.2)
};

/** Energy breakdown in picojoules. */
struct EnergyBreakdown
{
    double iq = 0.0;
    double rf = 0.0;
    double ltp = 0.0; ///< queue + UIT + predictor + ticket CAM

    double total() const { return iq + rf + ltp; }

    /** Energy-delay-squared product (pJ * cycles^2). */
    double
    ed2p(std::uint64_t cycles) const
    {
        return total() * double(cycles) * double(cycles);
    }

    /** Energy-delay product. */
    double
    edp(std::uint64_t cycles) const
    {
        return total() * double(cycles);
    }

    std::string toString() const;
};

/** Evaluate the model. */
EnergyBreakdown computeEnergy(const EnergyInputs &in);

} // namespace ltp

#endif // LTP_ENERGY_ENERGY_MODEL_HH
