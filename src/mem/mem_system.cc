#include "mem/mem_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ltp {

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::L3: return "L3";
      case HitLevel::Dram: return "DRAM";
      case HitLevel::Inflight: return "inflight";
    }
    return "?";
}

MemSystem::MemSystem(const MemConfig &cfg)
    : cfg_(cfg),
      l1i_("l1i", cfg.l1i),
      l1d_("l1d", cfg.l1d),
      l2_("l2", cfg.l2),
      l3_("l3", cfg.l3),
      dram_(cfg.dram),
      l1d_mshrs_(cfg.l1dMshrs),
      prefetcher_(cfg.prefetchEnabled ? cfg.prefetchDegree : 0)
{
}

void
MemSystem::writeback(int from_level, Addr block, Cycle now)
{
    // Mostly-inclusive hierarchy: a victim usually hits the level below;
    // when it does not (silent inclusion break), the dirty data goes
    // straight to the next level that has it, or to memory.
    if (from_level <= 1 && l2_.contains(block)) {
        l2_.setDirty(block);
        return;
    }
    if (from_level <= 2 && l3_.contains(block)) {
        l3_.setDirty(block);
        return;
    }
    dram_.access(block, now, /*is_write=*/true);
}

Cycle
MemSystem::lookupBelowL1(Addr block, Cycle now, HitLevel *level)
{
    Cycle line_ready;
    if (l2_.lookup(block, now, &line_ready)) {
        *level = line_ready > now ? HitLevel::Inflight : HitLevel::L2;
        return std::max(line_ready, now + l2_.hitLatency());
    }
    if (l3_.lookup(block, now, &line_ready)) {
        Cycle ready = std::max(line_ready, now + l3_.hitLatency());
        *level = line_ready > now ? HitLevel::Inflight : HitLevel::L3;
        auto v2 = l2_.fill(block, now, ready, false);
        if (v2.valid && v2.dirty)
            writeback(2, v2.addr, now);
        return ready;
    }
    // DRAM: the request reaches the controller after the L3 tag check.
    Cycle ready = dram_.access(block, now, false, l3_.hitLatency());
    *level = HitLevel::Dram;
    auto v3 = l3_.fill(block, now, ready, false);
    if (v3.valid && v3.dirty)
        writeback(3, v3.addr, now);
    auto v2 = l2_.fill(block, now, ready, false);
    if (v2.valid && v2.dirty)
        writeback(2, v2.addr, now);
    return ready;
}

void
MemSystem::trainPrefetcher(Addr pc, Addr addr, Cycle now)
{
    if (!cfg_.prefetchEnabled)
        return;
    pf_scratch_.clear();
    prefetcher_.observe(pc, addr, pf_scratch_);
    for (Addr block : pf_scratch_) {
        if (l1d_.contains(block) || l2_.contains(block))
            continue;
        Cycle line_ready;
        Cycle ready;
        if (l3_.lookup(block, now, &line_ready)) {
            ready = std::max(line_ready, now + l3_.hitLatency());
        } else {
            ready = dram_.access(block, now, false, l3_.hitLatency());
            auto v3 = l3_.fill(block, now, ready, true);
            if (v3.valid && v3.dirty)
                writeback(3, v3.addr, now);
        }
        auto v2 = l2_.fill(block, now, ready, true);
        if (v2.valid && v2.dirty)
            writeback(2, v2.addr, now);
    }
}

std::optional<MemAccessResult>
MemSystem::access(Addr pc, Addr addr, bool is_write, Cycle now)
{
    Addr block = blockAlign(addr);
    MemAccessResult res;

    Cycle line_ready;
    if (l1d_.lookup(block, now, &line_ready)) {
        if (line_ready <= now) {
            res.dataReady = now + l1d_.hitLatency();
            res.earlyWakeup = res.dataReady;
            res.level = HitLevel::L1;
        } else {
            // Merge with the in-flight fill (MSHR secondary miss).
            res.dataReady = std::max(line_ready, now + l1d_.hitLatency());
            res.earlyWakeup =
                std::max(now, res.dataReady - cfg_.earlyLead);
            res.level = HitLevel::Inflight;
        }
        if (is_write)
            l1d_.setDirty(block);
        if (!is_write)
            load_lat_.sample(double(res.dataReady - now));
        return res;
    }

    if (!l1d_mshrs_.available(now))
        return std::nullopt;

    // Train the prefetcher on the L1-miss (i.e. L2 demand) stream.
    trainPrefetcher(pc, addr, now);

    HitLevel level;
    Cycle ready = lookupBelowL1(block, now, &level);
    auto v1 = l1d_.fill(block, now, ready, false);
    if (v1.valid && v1.dirty)
        writeback(1, v1.addr, now);
    l1d_mshrs_.allocate(block, now, ready);
    if (is_write)
        l1d_.setDirty(block);

    res.dataReady = ready;
    res.earlyWakeup = std::max(now, ready - cfg_.earlyLead);
    res.level = level;
    if (!is_write)
        load_lat_.sample(double(res.dataReady - now));
    return res;
}

MemAccessResult
MemSystem::fetchAccess(Addr pc, Cycle now)
{
    Addr block = blockAlign(pc);
    MemAccessResult res;

    if (block == last_ifetch_block_) {
        res.dataReady =
            std::max(last_ifetch_ready_, now + l1i_.hitLatency());
        res.level = last_ifetch_ready_ > now ? HitLevel::Inflight
                                             : HitLevel::L1;
        res.earlyWakeup = res.dataReady;
        return res;
    }

    Cycle line_ready;
    if (l1i_.lookup(block, now, &line_ready)) {
        res.dataReady = std::max(line_ready, now + l1i_.hitLatency());
        res.level = line_ready > now ? HitLevel::Inflight : HitLevel::L1;
        last_ifetch_ready_ = line_ready;
    } else {
        HitLevel level;
        Cycle ready = lookupBelowL1(block, now, &level);
        l1i_.fill(block, now, ready, false); // I-side lines: never dirty
        res.dataReady = ready;
        res.level = level;
        last_ifetch_ready_ = ready;
    }
    last_ifetch_block_ = block;
    res.earlyWakeup = res.dataReady;
    return res;
}

HitLevel
MemSystem::warmAccess(Addr pc, Addr addr, bool is_write, Cycle now)
{
    // Fully functional: install resident lines with data_ready=0 and
    // keep LRU and prefetcher training warm; never touch MSHR or DRAM
    // timing state so a detailed phase can follow at any clock value.
    (void)now;
    Addr block = blockAlign(addr);
    Cycle line_ready;
    HitLevel level = HitLevel::L1;
    if (!l1d_.lookup(block, 0, &line_ready)) {
        // Functional prefetch: train and install into L2 directly.
        if (cfg_.prefetchEnabled) {
            pf_scratch_.clear();
            prefetcher_.observe(pc, addr, pf_scratch_);
            for (Addr pf : pf_scratch_) {
                if (!l1d_.contains(pf) && !l2_.contains(pf))
                    l2_.fill(pf, 0, 0, true);
            }
        }
        if (l2_.lookup(block, 0, &line_ready)) {
            level = HitLevel::L2;
        } else {
            if (l3_.lookup(block, 0, &line_ready)) {
                level = HitLevel::L3;
            } else {
                level = HitLevel::Dram;
                auto v3 = l3_.fill(block, 0, 0, false);
                (void)v3; // functional warm: drop write-back traffic
            }
            l2_.fill(block, 0, 0, false);
        }
        l1d_.fill(block, 0, 0, false);
    }
    if (is_write)
        l1d_.setDirty(block);
    return level;
}

void
MemSystem::settle()
{
    last_ifetch_block_ = ~Addr(0); // line-ready cycles are re-zeroed
    l1i_.settle();
    l1d_.settle();
    l2_.settle();
    l3_.settle();
    dram_.settle();
    l1d_mshrs_.settle();
    load_lat_.reset();
}

void
MemSystem::resetStats(Cycle now)
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    l3_.resetStats();
    dram_.resetStats(now);
    l1d_mshrs_.resetStats(now);
    l1d_mshrs_.allocations.reset();
    l1d_mshrs_.fullStalls.reset();
    prefetcher_.issued.reset();
    prefetcher_.trainings.reset();
    load_lat_.reset();
}

} // namespace ltp
