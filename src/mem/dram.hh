/**
 * @file
 * DDR3-1600 11-11-11 main-memory model (Table 1).
 *
 * Bank/row-buffer timing at CPU-cycle resolution: a 3.4 GHz core clock
 * against an 800 MHz DRAM command clock gives ~4.25 CPU cycles per DRAM
 * cycle.  Row-buffer hits pay CAS + burst; conflicts pay precharge +
 * activate + CAS.  A shared data bus serializes bursts, providing the
 * bandwidth wall that bounds achievable MLP, and per-bank next-free
 * times provide the bank-level parallelism that makes overlapped misses
 * (the paper's whole subject) profitable.
 *
 * The model also integrates the number of in-flight reads per cycle —
 * the "average outstanding requests" metric of Figure 1b.
 */

#ifndef LTP_MEM_DRAM_HH
#define LTP_MEM_DRAM_HH

#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** DDR3-1600 11-11-11 timing expressed in CPU cycles. */
struct DramConfig
{
    int channels = 2; ///< independent channels (high-end desktop config)
    int banks = 8;    ///< banks per channel
    double cpuCyclesPerDramCycle = 4.25; ///< 3.4GHz / 800MHz
    int clCk = 11;    ///< CAS latency (DRAM cycles)
    int rcdCk = 11;   ///< RAS-to-CAS (DRAM cycles)
    int rpCk = 11;    ///< precharge (DRAM cycles)
    int burstCk = 4;  ///< BL8 on a DDR bus (DRAM cycles)
    int rowBytes = 8192;
    Cycle controllerLatency = 20; ///< queue/PHY overhead (CPU cycles)
};

/** Single-channel, multi-bank DRAM with open-page policy. */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg);

    /**
     * Issue a read or write for @p addr at CPU cycle @p now.
     * @param path_delay cycles before the request reaches the
     *        controller (the L3 tag-check path); @p now itself must be
     *        the core clock so the in-flight integration stays
     *        monotonic.
     * @return the cycle the data burst completes.
     */
    Cycle access(Addr addr, Cycle now, bool is_write,
                 Cycle path_delay = 0);

    /** Outstanding reads at cycle @p now (Fig 1b numerator). */
    int inflightReads(Cycle now);

    /** Average outstanding reads per cycle since the last reset. */
    double meanInflightReads(Cycle now);

    /** Typical random-access read latency (used to set the LTP
     *  monitor's timer, Section 5.2). */
    Cycle typicalLatency() const;

    void resetStats(Cycle now);

    /**
     * Drop all transient timing state — open rows, bank/bus next-free
     * times, in-flight reads — so the model can serve a fresh detailed
     * phase starting at cycle 0.  DRAM timing is deliberately *not*
     * checkpointed: it decays within one access anyway.
     */
    void settle();

    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowConflicts;

  private:
    void expireReads(Cycle now);

    struct Bank
    {
        bool open = false;
        Addr row = 0;
        Cycle nextFree = 0;
    };

    Cycle dramCk(int ck) const;

    DramConfig cfg_;
    std::vector<Bank> banks_; ///< channels * banks, channel-major
    std::vector<Cycle> bus_next_free_; ///< per channel
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        read_completions_;
    OccupancyStat inflight_;
};

} // namespace ltp

#endif // LTP_MEM_DRAM_HH
