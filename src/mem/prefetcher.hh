/**
 * @file
 * PC-indexed stride prefetcher, degree 4, sitting at the L2 (Table 1:
 * "L2 Prefetcher: Stride prefetcher, degree 4").
 *
 * Trains on the demand stream reaching the L2 (i.e. L1 misses).  After
 * two consecutive accesses from the same PC with the same non-zero
 * stride it emits up to `degree` block addresses ahead of the stream.
 * Handles negative strides (the paper-loop A[] array walks downward).
 */

#ifndef LTP_MEM_PREFETCHER_HH
#define LTP_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** Classic per-PC stride prefetcher. */
class StridePrefetcher
{
  public:
    StridePrefetcher(int degree, int table_entries = 256);

    /**
     * Train on a demand access and collect prefetch candidates.
     *
     * @param pc   static PC of the triggering load/store
     * @param addr byte address of the access
     * @param out  receives block-aligned prefetch addresses
     */
    void observe(Addr pc, Addr addr, std::vector<Addr> &out);

    struct Entry
    {
        Addr pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        int confidence = 0;
        bool valid = false;
    };

    /// @name Architectural checkpointing
    /// @{
    const std::vector<Entry> &table() const { return table_; }

    /** Install a checkpointed table (size must match). */
    void
    restoreTable(const std::vector<Entry> &table)
    {
        sim_assert(table.size() == table_.size());
        table_ = table;
    }
    /// @}

    Counter issued;
    Counter trainings;

  private:
    int degree_;
    std::vector<Entry> table_;
};

} // namespace ltp

#endif // LTP_MEM_PREFETCHER_HH
