#include "mem/mshr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ltp {

MshrFile::MshrFile(int entries)
    : capacity_(entries)
{
    sim_assert(entries > 0);
}

void
MshrFile::expire(Cycle now)
{
    auto dead = std::remove_if(live_.begin(), live_.end(),
                               [now](const Entry &e) {
                                   return e.ready <= now;
                               });
    if (dead != live_.end()) {
        live_.erase(dead, live_.end());
        occ_.set(static_cast<std::int64_t>(live_.size()), now);
    }
}

bool
MshrFile::available(Cycle now)
{
    if (isInfinite(capacity_))
        return true;
    expire(now);
    bool ok = static_cast<int>(live_.size()) < capacity_;
    if (!ok)
        fullStalls++;
    return ok;
}

void
MshrFile::allocate(Addr block, Cycle now, Cycle ready)
{
    expire(now);
    sim_assert(isInfinite(capacity_) ||
               static_cast<int>(live_.size()) < capacity_);
    live_.push_back(Entry{block, ready});
    occ_.set(static_cast<std::int64_t>(live_.size()), now);
    allocations++;
}

int
MshrFile::occupancy(Cycle now)
{
    expire(now);
    return static_cast<int>(live_.size());
}

} // namespace ltp
