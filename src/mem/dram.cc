#include "mem/dram.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ltp {

Dram::Dram(const DramConfig &cfg)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.channels) * cfg.banks),
      bus_next_free_(cfg.channels, 0)
{
    sim_assert(cfg.banks > 0 && cfg.channels > 0);
}

Cycle
Dram::dramCk(int ck) const
{
    return static_cast<Cycle>(
        std::llround(ck * cfg_.cpuCyclesPerDramCycle));
}

void
Dram::expireReads(Cycle now)
{
    while (!read_completions_.empty() && read_completions_.top() <= now) {
        Cycle t = read_completions_.top();
        read_completions_.pop();
        inflight_.sub(1, t);
    }
}

Cycle
Dram::access(Addr addr, Cycle now, bool is_write, Cycle path_delay)
{
    expireReads(now);

    // Channel/bank interleave on block address bits; row = higher bits.
    Addr block = addr / kBlockBytes;
    std::size_t channel = block % cfg_.channels;
    std::size_t bank_idx = (block / cfg_.channels) % cfg_.banks;
    Addr row = addr / cfg_.rowBytes / (cfg_.channels * cfg_.banks);
    Bank &bank = banks_[channel * cfg_.banks + bank_idx];

    Cycle arrive = now + path_delay + cfg_.controllerLatency;
    Cycle start = std::max(arrive, bank.nextFree);

    Cycle service;
    if (bank.open && bank.row == row) {
        service = dramCk(cfg_.clCk);
        rowHits++;
    } else {
        service = dramCk(bank.open ? cfg_.rpCk + cfg_.rcdCk + cfg_.clCk
                                   : cfg_.rcdCk + cfg_.clCk);
        rowConflicts++;
        bank.open = true;
        bank.row = row;
    }

    // The data burst occupies the channel's bus after the CAS completes.
    Cycle &bus = bus_next_free_[channel];
    Cycle data_start = std::max(start + service, bus);
    Cycle burst = dramCk(cfg_.burstCk);
    Cycle complete = data_start + burst;

    bus = data_start + burst;
    bank.nextFree = complete;

    if (is_write) {
        writes++;
    } else {
        reads++;
        inflight_.add(1, now);
        read_completions_.push(complete);
    }
    return complete;
}

int
Dram::inflightReads(Cycle now)
{
    expireReads(now);
    return static_cast<int>(inflight_.level());
}

double
Dram::meanInflightReads(Cycle now)
{
    expireReads(now);
    return inflight_.mean(now);
}

Cycle
Dram::typicalLatency() const
{
    // Controller + activate + CAS + burst: the row-conflict common case
    // for the random miss streams that matter to the monitor.
    return cfg_.controllerLatency +
           dramCk(cfg_.rpCk + cfg_.rcdCk + cfg_.clCk + cfg_.burstCk);
}

void
Dram::settle()
{
    for (Bank &bank : banks_)
        bank = Bank{};
    std::fill(bus_next_free_.begin(), bus_next_free_.end(), 0);
    read_completions_ = {};
    inflight_ = OccupancyStat{};
}

void
Dram::resetStats(Cycle now)
{
    reads.reset();
    writes.reset();
    rowHits.reset();
    rowConflicts.reset();
    expireReads(now);
    inflight_.reset(now);
}

} // namespace ltp
