/**
 * @file
 * Set-associative cache tag array with true LRU, write-back/allocate.
 *
 * Timing convention: this is a latency-returning ("Sniper-style") model.
 * On a miss the line is installed immediately with a @c dataReady cycle
 * in the future; a subsequent access to the same block before that cycle
 * observes the in-flight fill and is merged (the MSHR-secondary-miss
 * case).  Installing the tag at request time rather than fill time makes
 * evictions marginally early; DESIGN.md documents this approximation.
 */

#ifndef LTP_MEM_CACHE_HH
#define LTP_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** Static parameters of one cache level. */
struct CacheConfig
{
    int sizeKB = 32;
    int assoc = 8;
    Cycle hitLatency = 4; ///< total load-to-use latency at this level
};

/** One cache level (tags + per-line fill timing, no data). */
class Cache
{
  public:
    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Demand lookup at cycle @p now, updating LRU.
     *
     * @param block     block-aligned address
     * @param now       current cycle
     * @param data_ready out: cycle the line's data is available
     *                  (<= now for resident lines, > now for in-flight
     *                  fills being merged with)
     * @retval true on tag hit
     */
    bool lookup(Addr block, Cycle now, Cycle *data_ready);

    /** Tag-only peek without LRU update (used by prefetch filtering). */
    bool contains(Addr block) const;

    /** Evicted line descriptor returned by fill(). */
    struct Victim
    {
        bool valid = false;
        bool dirty = false;
        Addr addr = 0;
    };

    /**
     * Install @p block with data arriving at @p data_ready.
     * @param prefetch marks the line as prefetched (for accuracy stats).
     * @return the victim line, if a valid one was evicted.
     */
    Victim fill(Addr block, Cycle now, Cycle data_ready, bool prefetch);

    /** Mark a (present) block dirty; no-op if absent. */
    void setDirty(Addr block);

    /** Drop a block if present. */
    void invalidate(Addr block);

    Cycle hitLatency() const { return cfg_.hitLatency; }
    int numSets() const { return num_sets_; }
    int assoc() const { return cfg_.assoc; }
    const std::string &name() const { return name_; }

    /** One tag-array line (exposed for architectural checkpoints). */
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        Addr tag = 0;
        Cycle dataReady = 0;
        std::uint64_t lastUse = 0;
    };

    /// @name Architectural checkpointing and inter-sample settling
    /// @{

    /** The raw tag array, set-major (numSets * assoc lines). */
    const std::vector<Line> &lines() const { return lines_; }

    /** LRU clock value (restored with the lines it stamped). */
    std::uint64_t useStamp() const { return use_stamp_; }

    /**
     * Install a checkpointed tag array.  @p lines must match this
     * cache's geometry; in-flight fill timing is settled (every
     * restored line reads as resident at cycle 0).
     */
    void restoreLines(const std::vector<Line> &lines,
                      std::uint64_t use_stamp);

    /**
     * Collapse transient fill timing: every valid line becomes
     * resident now, so a detailed phase can restart at cycle 0
     * without observing data-ready cycles from a previous clock.
     */
    void settle();

    /// @}

    /// @name Statistics
    /// @{
    Counter demandHits;
    Counter demandMisses;
    Counter mergedInflight; ///< hits on lines whose fill is in flight
    Counter prefetchFills;
    Counter usefulPrefetches; ///< demand hit on a prefetched line
    Counter evictions;
    Counter dirtyEvictions;
    void resetStats();
    /// @}

  private:
    Line *findLine(Addr block);
    const Line *findLine(Addr block) const;

    std::string name_;
    CacheConfig cfg_;
    int num_sets_;
    std::uint64_t use_stamp_ = 0;
    std::vector<Line> lines_; ///< num_sets_ * assoc, set-major
};

} // namespace ltp

#endif // LTP_MEM_CACHE_HH
