#include "mem/cache.hh"

#include "common/logging.hh"

namespace ltp {

namespace {

bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    std::int64_t bytes = std::int64_t(cfg_.sizeKB) * 1024;
    num_sets_ = static_cast<int>(bytes / (cfg_.assoc * kBlockBytes));
    if (num_sets_ <= 0 || !isPow2(num_sets_))
        fatal("%s: size %dkB / assoc %d gives non-power-of-2 sets",
              name_.c_str(), cfg_.sizeKB, cfg_.assoc);
    lines_.resize(static_cast<std::size_t>(num_sets_) * cfg_.assoc);
}

Cache::Line *
Cache::findLine(Addr block)
{
    std::size_t set = (block / kBlockBytes) & (num_sets_ - 1);
    Line *base = &lines_[set * cfg_.assoc];
    for (int w = 0; w < cfg_.assoc; ++w)
        if (base[w].valid && base[w].tag == block)
            return &base[w];
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr block) const
{
    return const_cast<Cache *>(this)->findLine(block);
}

bool
Cache::lookup(Addr block, Cycle now, Cycle *data_ready)
{
    sim_assert(block == blockAlign(block));
    Line *line = findLine(block);
    if (!line) {
        demandMisses++;
        return false;
    }
    line->lastUse = ++use_stamp_;
    if (line->prefetched) {
        usefulPrefetches++;
        line->prefetched = false;
    }
    if (line->dataReady > now)
        mergedInflight++;
    else
        demandHits++;
    *data_ready = line->dataReady;
    return true;
}

bool
Cache::contains(Addr block) const
{
    return findLine(block) != nullptr;
}

Cache::Victim
Cache::fill(Addr block, Cycle now, Cycle data_ready, bool prefetch)
{
    sim_assert(block == blockAlign(block));
    (void)now;
    // Refill of a present line (e.g. upgrade): just refresh timing.
    if (Line *line = findLine(block)) {
        line->dataReady = std::max(line->dataReady, data_ready);
        return Victim{};
    }

    std::size_t set = (block / kBlockBytes) & (num_sets_ - 1);
    Line *base = &lines_[set * cfg_.assoc];
    Line *victim = &base[0];
    for (int w = 0; w < cfg_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    Victim out;
    if (victim->valid) {
        out.valid = true;
        out.dirty = victim->dirty;
        out.addr = victim->tag;
        evictions++;
        if (victim->dirty)
            dirtyEvictions++;
    }

    victim->valid = true;
    victim->dirty = false;
    victim->prefetched = prefetch;
    victim->tag = block;
    victim->dataReady = data_ready;
    victim->lastUse = ++use_stamp_;
    if (prefetch)
        prefetchFills++;
    return out;
}

void
Cache::setDirty(Addr block)
{
    if (Line *line = findLine(block))
        line->dirty = true;
}

void
Cache::invalidate(Addr block)
{
    if (Line *line = findLine(block))
        line->valid = false;
}

void
Cache::restoreLines(const std::vector<Line> &lines,
                    std::uint64_t use_stamp)
{
    sim_assert(lines.size() == lines_.size());
    lines_ = lines;
    use_stamp_ = use_stamp;
    settle();
}

void
Cache::settle()
{
    for (Line &line : lines_)
        line.dataReady = 0;
}

void
Cache::resetStats()
{
    demandHits.reset();
    demandMisses.reset();
    mergedInflight.reset();
    prefetchFills.reset();
    usefulPrefetches.reset();
    evictions.reset();
    dirtyEvictions.reset();
}

} // namespace ltp
