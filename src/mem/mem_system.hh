/**
 * @file
 * Three-level cache hierarchy front door (Table 1):
 *   L1I/L1D 32kB 8-way 4c | L2 256kB 8-way 12c + stride prefetcher
 *   | L3 1MB 16-way 36c | DDR3-1600.
 *
 * The core calls access() for demand loads (at execute) and stores (at
 * SQ drain) and fetchAccess() for instruction fetch.  Results carry two
 * timestamps: when the data arrives, and the *early wakeup* cycle — the
 * phased L2/L3 tag-hit (or DRAM-controller) signal the paper uses to
 * move Non-Ready instructions from LTP to the IQ just in time
 * (Section 3.2).
 *
 * A `std::nullopt` result means the L1D MSHR file is full and the access
 * must be retried (only possible when MSHRs are configured finite).
 */

#ifndef LTP_MEM_MEM_SYSTEM_HH
#define LTP_MEM_MEM_SYSTEM_HH

#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "mem/prefetcher.hh"

namespace ltp {

/** Where in the hierarchy an access was satisfied. */
enum class HitLevel { L1, L2, L3, Dram, Inflight };

const char *hitLevelName(HitLevel level);

/** Timing outcome of one memory access. */
struct MemAccessResult
{
    Cycle dataReady = 0;   ///< data available to dependents
    Cycle earlyWakeup = 0; ///< LTP wakeup signal (<= dataReady)
    HitLevel level = HitLevel::L1;
};

/** Hierarchy configuration (defaults = Table 1). */
struct MemConfig
{
    CacheConfig l1i{32, 8, 4};
    CacheConfig l1d{32, 8, 4};
    CacheConfig l2{256, 8, 12};
    CacheConfig l3{1024, 16, 36};
    DramConfig dram;
    bool prefetchEnabled = true;
    int prefetchDegree = 4;
    int l1dMshrs = kInfiniteSize; ///< finite only outside the paper runs
    Cycle earlyLead = 8;          ///< tag-phase lead of the wakeup signal
    /**
     * An access counts as long-latency when dataReady - now reaches this
     * bound.  Default 40 > L3 hit latency: LLC misses, per Section 2.
     */
    Cycle llThreshold = 40;
};

/** The full memory hierarchy. */
class MemSystem
{
  public:
    explicit MemSystem(const MemConfig &cfg);

    /** Demand data access; std::nullopt => retry (L1D MSHRs full). */
    std::optional<MemAccessResult> access(Addr pc, Addr addr,
                                          bool is_write, Cycle now);

    /** Instruction fetch probe (no MSHR bound on the I-side). */
    MemAccessResult fetchAccess(Addr pc, Cycle now);

    /**
     * Functional access: warms tags/LRU/prefetcher without timing.
     * @return the level the access would have been satisfied from
     *         (used by the oracle classifier to mark long-latency
     *         loads).
     */
    HitLevel warmAccess(Addr pc, Addr addr, bool is_write, Cycle now);

    /** True if the result latency qualifies as long-latency. */
    bool
    isLongLatency(const MemAccessResult &r, Cycle now) const
    {
        return r.dataReady - now >= cfg_.llThreshold;
    }

    /** Average outstanding DRAM reads per cycle (Figure 1b). */
    double avgOutstanding(Cycle now) { return dram_.meanInflightReads(now); }

    /** Mean demand-load latency (Section 4.1 sensitivity criterion). */
    double avgLoadLatency() const { return load_lat_.mean(); }

    Cycle l2HitLatency() const { return cfg_.l2.hitLatency; }
    Cycle dramLatency() const { return dram_.typicalLatency(); }

    void resetStats(Cycle now);

    /**
     * Collapse every transient timing artifact — in-flight cache
     * fills, MSHR entries, DRAM bank/bus state, latency averages — so
     * the warmed hierarchy can serve a fresh detailed phase starting
     * at cycle 0.  Tag contents, LRU order, dirty bits, and prefetcher
     * training all survive; this is the boundary between one detailed
     * sample and the next fast-forward stretch.
     */
    void settle();

    /// @name Component access for stats reporting and tests
    /// @{
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }
    Dram &dram() { return dram_; }
    MshrFile &l1dMshrs() { return l1d_mshrs_; }
    StridePrefetcher &prefetcher() { return prefetcher_; }
    /// @}

  private:
    /** Satisfy a block from L2 and below; fills L2/L3 as needed. */
    Cycle lookupBelowL1(Addr block, Cycle now, HitLevel *level);

    /** Write back a dirty victim to the next level down from @p from. */
    void writeback(int from_level, Addr block, Cycle now);

    void trainPrefetcher(Addr pc, Addr addr, Cycle now);

    MemConfig cfg_;
    Cache l1i_;
    /**
     * Straight-line fetch memo: the last I-block looked up and its
     * line-ready cycle.  Only fetchAccess touches the I-cache, so a
     * repeat of the same block must hit with the same line state —
     * the set walk and LRU restamp (the line is already MRU) can be
     * skipped.  Fills of a different block and settle() reset it.
     */
    Addr last_ifetch_block_ = ~Addr(0);
    Cycle last_ifetch_ready_ = 0;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    Dram dram_;
    MshrFile l1d_mshrs_;
    StridePrefetcher prefetcher_;
    std::vector<Addr> pf_scratch_;
    Average load_lat_;
};

} // namespace ltp

#endif // LTP_MEM_MEM_SYSTEM_HH
