#include "mem/prefetcher.hh"

namespace ltp {

StridePrefetcher::StridePrefetcher(int degree, int table_entries)
    : degree_(degree), table_(table_entries)
{
    sim_assert(degree >= 0 && table_entries > 0);
}

void
StridePrefetcher::observe(Addr pc, Addr addr, std::vector<Addr> &out)
{
    if (degree_ == 0)
        return;

    Entry &e = table_[(pc >> 2) % table_.size()];
    trainings++;

    if (!e.valid || e.pc != pc) {
        e = Entry{pc, addr, 0, 0, true};
        return;
    }

    std::int64_t stride = static_cast<std::int64_t>(addr) -
                          static_cast<std::int64_t>(e.lastAddr);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 3)
            e.confidence++;
    } else {
        e.confidence = stride != 0 && e.stride == 0 ? 1 : 0;
    }
    e.stride = stride;
    e.lastAddr = addr;

    if (e.confidence >= 2 && e.stride != 0) {
        for (int k = 1; k <= degree_; ++k) {
            Addr target = static_cast<Addr>(
                static_cast<std::int64_t>(addr) + k * e.stride);
            out.push_back(blockAlign(target));
            issued++;
        }
    }
}

} // namespace ltp
