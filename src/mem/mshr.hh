/**
 * @file
 * Miss Status Holding Register file: bounds the number of outstanding
 * misses a cache level may have in flight and tracks their occupancy.
 *
 * Merge detection itself lives in the cache (in-flight lines carry their
 * fill time); the MSHR file adds the *capacity* constraint and the
 * occupancy statistic.  Entries self-free when their fill completes
 * (lazily, on the next operation).
 */

#ifndef LTP_MEM_MSHR_HH
#define LTP_MEM_MSHR_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** Bounded set of in-flight misses with lazy expiry. */
class MshrFile
{
  public:
    /** @param entries capacity; kInfiniteSize for the limit study. */
    explicit MshrFile(int entries);

    /** True if a new miss can be accepted at cycle @p now. */
    bool available(Cycle now);

    /** Register a miss on @p block completing at @p ready. */
    void allocate(Addr block, Cycle now, Cycle ready);

    /** Number of live entries at cycle @p now. */
    int occupancy(Cycle now);

    /** Average occupancy per cycle since the last stats reset. */
    double meanOccupancy(Cycle now) { return occ_.mean(now); }

    void resetStats(Cycle now) { occ_.reset(now); }

    /** Drop all in-flight entries (inter-sample settling; the fills
     *  they tracked are settled to "resident" in the caches). */
    void
    settle()
    {
        live_.clear();
        occ_ = OccupancyStat{};
    }

    Counter allocations;
    Counter fullStalls; ///< times available() returned false

  private:
    void expire(Cycle now);

    struct Entry
    {
        Addr block;
        Cycle ready;
    };

    int capacity_;
    std::vector<Entry> live_;
    OccupancyStat occ_;
};

} // namespace ltp

#endif // LTP_MEM_MSHR_HH
