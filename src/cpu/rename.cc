#include "cpu/rename.hh"

#include "common/logging.hh"

namespace ltp {

LtpRat::LtpRat(int ids)
    : slots_(ids)
{
    sim_assert(ids > 0);
    free_.reserve(ids);
    for (int i = ids - 1; i >= 0; --i)
        free_.push_back(i);
}

int
LtpRat::allocate()
{
    if (free_.empty()) {
        exhaustions++;
        return -1;
    }
    int id = free_.back();
    free_.pop_back();
    slots_[id] = Slot{true, -1};
    allocations++;
    return id;
}

void
LtpRat::resolve(int id, std::int32_t phys)
{
    sim_assert(id >= 0 && id < static_cast<int>(slots_.size()));
    sim_assert(slots_[id].live && slots_[id].phys < 0);
    slots_[id].phys = phys;
}

std::int32_t
LtpRat::lookup(int id) const
{
    sim_assert(id >= 0 && id < static_cast<int>(slots_.size()));
    sim_assert(slots_[id].live);
    return slots_[id].phys;
}

void
LtpRat::release(int id)
{
    sim_assert(id >= 0 && id < static_cast<int>(slots_.size()));
    sim_assert(slots_[id].live);
    slots_[id].live = false;
    free_.push_back(id);
}

} // namespace ltp
