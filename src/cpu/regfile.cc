#include "cpu/regfile.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ltp {

PhysRegFile::PhysRegFile(int available, int reserve)
    : capacity_(available), reserve_(reserve), free_count_(available)
{
    sim_assert(available > 0 && reserve >= 0 && reserve < available);
    ready_.assign(std::size_t(std::min(capacity_, 1024)), false);
}

int
PhysRegFile::freeFor(AllocPriority prio) const
{
    switch (prio) {
      case AllocPriority::Rename:
        return std::max(0, free_count_ - reserve_);
      case AllocPriority::Unpark:
        // Hold one register back for a forced head unpark.
        return std::max(0, free_count_ - (reserve_ > 0 ? 1 : 0));
      case AllocPriority::Forced:
        return free_count_;
    }
    return 0;
}

std::int32_t
PhysRegFile::allocate(AllocPriority prio)
{
    if (freeFor(prio) <= 0)
        return -1;
    // Released registers are reused LIFO; otherwise hand out the next
    // never-used index.  This matches a pre-seeded [capacity-1 .. 0]
    // stack exactly (fresh registers ascend, releases stack on top)
    // without materialising megabytes of free list for an "infinite"
    // limit-study file that only ever touches a dense prefix.
    std::int32_t phys;
    if (!free_list_.empty()) {
        phys = free_list_.back();
        free_list_.pop_back();
    } else {
        phys = next_fresh_;
        next_fresh_ += 1;
    }
    free_count_ -= 1;
    if (std::size_t(phys) >= ready_.size())
        ready_.resize(std::size_t(phys) + 1, false);
    ready_[phys] = false;
    clearDependents(phys); // stale squashed consumers, if any
    occupancy.set(allocatedCount());
    allocations++;
    if (prio != AllocPriority::Rename)
        reserveAllocations++;
    return phys;
}

void
PhysRegFile::release(std::int32_t phys)
{
    sim_assert(phys >= 0 && phys < capacity_);
    sim_assert(free_count_ < capacity_);
    free_list_.push_back(phys);
    free_count_ += 1;
    ready_[phys] = false;
    occupancy.set(allocatedCount());
}

void
PhysRegFile::resetStats(Cycle now)
{
    occupancy.reset(now);
    allocations.reset();
    reserveAllocations.reset();
}

} // namespace ltp
