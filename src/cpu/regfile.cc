#include "cpu/regfile.hh"

#include "common/logging.hh"

namespace ltp {

PhysRegFile::PhysRegFile(int available, int reserve)
    : capacity_(available), reserve_(reserve), free_count_(available)
{
    sim_assert(available > 0 && reserve >= 0 && reserve < available);
    free_list_.reserve(capacity_);
    for (std::int32_t r = capacity_ - 1; r >= 0; --r)
        free_list_.push_back(r);
    ready_.assign(capacity_, false);
}

int
PhysRegFile::freeFor(AllocPriority prio) const
{
    switch (prio) {
      case AllocPriority::Rename:
        return std::max(0, free_count_ - reserve_);
      case AllocPriority::Unpark:
        // Hold one register back for a forced head unpark.
        return std::max(0, free_count_ - (reserve_ > 0 ? 1 : 0));
      case AllocPriority::Forced:
        return free_count_;
    }
    return 0;
}

std::int32_t
PhysRegFile::allocate(AllocPriority prio)
{
    if (freeFor(prio) <= 0)
        return -1;
    std::int32_t phys = free_list_.back();
    free_list_.pop_back();
    free_count_ -= 1;
    ready_[phys] = false;
    clearDependents(phys); // stale squashed consumers, if any
    occupancy.set(allocatedCount());
    allocations++;
    if (prio != AllocPriority::Rename)
        reserveAllocations++;
    return phys;
}

void
PhysRegFile::release(std::int32_t phys)
{
    sim_assert(phys >= 0 && phys < capacity_);
    sim_assert(free_count_ < capacity_);
    free_list_.push_back(phys);
    free_count_ += 1;
    ready_[phys] = false;
    occupancy.set(allocatedCount());
}

void
PhysRegFile::resetStats(Cycle now)
{
    occupancy.reset(now);
    allocations.reset();
    reserveAllocations.reset();
}

} // namespace ltp
