#include "cpu/dyn_inst.hh"

#include <sstream>

namespace ltp {

std::string
DynInst::toString() const
{
    std::ostringstream os;
    os << "#" << seq << " " << op.toString();
    os << " [" << (urgent ? "U" : "NU") << "+" << (nonReady ? "NR" : "R")
       << "]";
    if (parked)
        os << " parked";
    if (completed)
        os << " done";
    return os.str();
}

} // namespace ltp
