/**
 * @file
 * Load and store queues.
 *
 * Entries are allocated at rename in program order and freed at commit
 * (loads) or after post-commit drain (stores) — the lifetimes of
 * Section 3.1.  When the limit study delays LQ/SQ allocation for parked
 * instructions (`delayLqSq`), entries are instead allocated when the
 * instruction leaves the LTP; the queues are sequence-sorted vectors,
 * which models the age-CAM order recovery of late-binding LSQs
 * (Sethumadhavan et al., cited in Section 6).
 *
 * Memory disambiguation uses exact trace addresses ("oracle"
 * disambiguation): a load conflicts with the youngest older overlapping
 * store; if that store has not produced its data the load waits, else
 * it forwards.  Parked stores are visible to disambiguation through a
 * shadow list so delayed allocation can never miss an ordering
 * dependence.
 */

#ifndef LTP_CPU_LSQ_HH
#define LTP_CPU_LSQ_HH

#include <vector>

#include "common/stats.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** Combined load/store queue pair. */
class Lsq
{
  public:
    Lsq(int lq_size, int sq_size, int lq_reserve, int sq_reserve);

    /// @name Capacity (reserve-aware, Section 5.4)
    /// @{
    bool lqHasSpace(bool from_reserve) const;
    bool sqHasSpace(bool from_reserve) const;
    /// @}

    void insertLoad(DynInst *inst);
    void insertStore(DynInst *inst);

    /** Free the LQ entry at commit. */
    void removeLoad(DynInst *inst);

    /** Free the SQ entry after the post-commit drain. */
    void removeStore(DynInst *inst);

    /** Oldest committed store still occupying the SQ, or nullptr. */
    DynInst *oldestDrainableStore() const;

    /**
     * Youngest store older than @p load whose byte range overlaps, or
     * nullptr.  Considers both SQ residents and (if provided) the
     * shadow list of parked stores.
     */
    DynInst *olderStoreConflict(const DynInst *load) const;

    /** Track a parked store not yet in the SQ (delayed allocation). */
    void addShadowStore(DynInst *inst);
    void removeShadowStore(DynInst *inst);

    /** Loads waiting on @p store_seq, ready for re-disambiguation. */
    void collectLoadsWaitingOn(SeqNum store_seq,
                               std::vector<DynInst *> &out) const;

    void squashYoungerThan(SeqNum keep);

    int lqSize() const { return static_cast<int>(lq_.size()); }
    int sqSize() const { return static_cast<int>(sq_.size()); }

    OccupancyStat lqOccupancy;
    OccupancyStat sqOccupancy;
    Counter forwards;

  private:
    static bool overlaps(const DynInst *a, const DynInst *b);

    int lq_capacity_;
    int sq_capacity_;
    int lq_reserve_;
    int sq_reserve_;
    std::vector<DynInst *> lq_; ///< sorted by seq
    std::vector<DynInst *> sq_; ///< sorted by seq
    std::vector<DynInst *> shadow_stores_; ///< parked, sorted by seq
};

} // namespace ltp

#endif // LTP_CPU_LSQ_HH
