/**
 * @file
 * Reorder buffer: program-ordered window of in-flight instructions.
 *
 * Parked instructions hold their ROB entry from rename (in-order commit
 * is guaranteed, Section 3), so the ROB bounds the total of IQ + LTP +
 * executing instructions.  The paper never scales the ROB (256 across
 * all experiments).
 */

#ifndef LTP_CPU_ROB_HH
#define LTP_CPU_ROB_HH

#include <deque>

#include "common/stats.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** FIFO reorder buffer. */
class Rob
{
  public:
    explicit Rob(int capacity) : capacity_(capacity) {}

    bool full() const { return size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }

    DynInst *head() const { return entries_.empty() ? nullptr : entries_.front(); }
    DynInst *tail() const { return entries_.empty() ? nullptr : entries_.back(); }

    void
    push(DynInst *inst, Cycle now)
    {
        sim_assert(!full());
        sim_assert(entries_.empty() || entries_.back()->seq < inst->seq);
        entries_.push_back(inst);
        occupancy.add(1, now);
    }

    void
    popHead(Cycle now)
    {
        sim_assert(!entries_.empty());
        entries_.pop_front();
        occupancy.sub(1, now);
    }

    /** Squash support: visit tail..head while seq > keep, then drop. */
    template <typename Fn>
    void
    squashYoungerThan(SeqNum keep, Cycle now, Fn &&undo)
    {
        while (!entries_.empty() && entries_.back()->seq > keep) {
            undo(entries_.back());
            entries_.pop_back();
            occupancy.sub(1, now);
        }
    }

    /** Iterate oldest-first. */
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

    OccupancyStat occupancy;

  private:
    int capacity_;
    std::deque<DynInst *> entries_;
};

} // namespace ltp

#endif // LTP_CPU_ROB_HH
