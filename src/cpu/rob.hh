/**
 * @file
 * Reorder buffer: program-ordered window of in-flight instructions.
 *
 * Parked instructions hold their ROB entry from rename (in-order commit
 * is guaranteed, Section 3), so the ROB bounds the total of IQ + LTP +
 * executing instructions.  The paper never scales the ROB (256 across
 * all experiments).
 *
 * Backed by a ring buffer: push/pop at both ends are index arithmetic,
 * no per-segment allocation (this is per-instruction hot-path work).
 */

#ifndef LTP_CPU_ROB_HH
#define LTP_CPU_ROB_HH

#include <algorithm>

#include "common/ring.hh"
#include "common/stats.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** FIFO reorder buffer. */
class Rob
{
  public:
    explicit Rob(int capacity)
        : capacity_(capacity),
          entries_(std::size_t(std::min(capacity, 512)))
    {
    }

    bool full() const { return size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }

    DynInst *head() const { return entries_.empty() ? nullptr : entries_.front(); }
    DynInst *tail() const { return entries_.empty() ? nullptr : entries_.back(); }

    void
    push(DynInst *inst)
    {
        sim_assert(!full());
        sim_assert(entries_.empty() || entries_.back()->seq < inst->seq);
        entries_.push_back(inst);
        occupancy.add(1);
    }

    void
    popHead()
    {
        sim_assert(!entries_.empty());
        entries_.pop_front();
        occupancy.sub(1);
    }

    /** Squash support: visit tail..head while seq > keep, then drop. */
    template <typename Fn>
    void
    squashYoungerThan(SeqNum keep, Fn &&undo)
    {
        while (!entries_.empty() && entries_.back()->seq > keep) {
            undo(entries_.back());
            entries_.pop_back();
            occupancy.sub(1);
        }
    }

    OccupancyStat occupancy;

  private:
    int capacity_;
    Ring<DynInst *> entries_;
};

} // namespace ltp

#endif // LTP_CPU_ROB_HH
