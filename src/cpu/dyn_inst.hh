/**
 * @file
 * The in-flight dynamic instruction record.
 *
 * One DynInst exists per fetched micro-op from fetch until commit (or
 * squash).  It carries the renamed operands, LTP classification state
 * (urgent / non-ready / parked, tickets, internal LTP register id), the
 * saved previous RAT state of its destination (for rollback and for
 * commit-time register freeing), and per-stage timestamps.
 *
 * Everything is inline: the LTP queue (src/ltp/ltp_queue.*) stores
 * DynInst pointers without needing to link against the cpu library.
 */

#ifndef LTP_CPU_DYN_INST_HH
#define LTP_CPU_DYN_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/microop.hh"
#include "ltp/tickets.hh"
#include "mem/mem_system.hh"

namespace ltp {

/**
 * In-flight sequence-number window: live instructions always span less
 * than this many sequence numbers (the core's instruction pool is this
 * size and asserts slots are dead on reuse), so seq % kInstWindow is a
 * collision-free index for per-inflight-instruction bitmasks.
 */
inline constexpr std::size_t kInstWindow = 8192;

/**
 * A renamed source operand.  Exactly one of three states:
 *  - none:   no register source (slot unused)
 *  - phys:   resolved physical register
 *  - ltp id: the producer is parked; the physical register will be
 *            looked up in the LTP RAT (RAT_LTP) when this instruction
 *            leaves the LTP (Section 5.2 / Appendix A)
 */
struct SrcRef
{
    RegClass cls = RegClass::Int;
    std::int32_t phys = -1;
    std::int32_t ltpId = -1;

    bool isNone() const { return phys < 0 && ltpId < 0; }
    bool isPhys() const { return phys >= 0; }
    bool isLtp() const { return ltpId >= 0; }
};

/** Saved previous RAT mapping of an instruction's destination. */
struct PrevMapping
{
    enum class Kind : std::uint8_t { None, Phys, Ltp };
    Kind kind = Kind::None;
    std::int32_t idx = -1; ///< phys reg or LTP id, per kind
};

/** One in-flight dynamic instruction. */
struct DynInst
{
    MicroOp op;
    SeqNum seq = kSeqNone;
    int tid = 0; ///< hardware thread (SMT context) this belongs to

    /// @name Classification (Section 2)
    /// @{
    bool classified = false;  ///< table lookups done (memoized: hardware
                              ///< classifies once when the group enters
                              ///< rename, not on every stall retry)
    bool urgent = false;      ///< ancestor of a long-latency instruction
    bool nonReady = false;    ///< descendant of one (live tickets)
    bool predictedLL = false; ///< predicted long-latency at rename
    bool actualLL = false;    ///< observed long-latency at execute
    TicketMask tickets;       ///< live ticket dependences at rename
    int ownTicket = -1;       ///< ticket allocated to this instruction
    /// @}

    /// @name Parking state
    /// @{
    bool parked = false; ///< went through LTP
    bool inLtp = false;  ///< currently parked
    int ltpId = -1;      ///< internal LTP register id for the dest
    /// @}

    /// @name Rename state
    /// @{
    SrcRef srcs[kMaxSrcs];
    std::int32_t dstPhys = -1;
    PrevMapping prevMap;      ///< what the dest arch reg mapped to before
    Addr prevProducerPc = 0;  ///< RAT rollback: producer-PC extension
    bool prevParkedBit = false;
    TicketMask prevTickets;
    /// @}

    /// @name Structure indices
    /// @{
    bool inIq = false;
    bool inLq = false;
    bool inSq = false;
    /// @}

    /// @name Scheduler linkage (event-driven IQ)
    /// @{
    DynInst *iqPrev = nullptr;    ///< seq-ordered IQ list
    DynInst *iqNext = nullptr;
    DynInst *readyPrev = nullptr; ///< seq-ordered ready list
    DynInst *readyNext = nullptr;
    int pendingSrcs = 0; ///< physical sources not yet ready
    /// @}

    /// @name LTP queue linkage (event-driven parking structure)
    /// @{
    DynInst *ltpPrev = nullptr;      ///< seq-ordered parked list
    DynInst *ltpNext = nullptr;
    DynInst *ltpReadyPrev = nullptr; ///< seq-ordered ticket-clear list
    DynInst *ltpReadyNext = nullptr;
    int pendingTickets = 0; ///< still-pending tickets in `tickets`
    /**
     * Park-episode counter: incremented every time this pool slot is
     * parked, never reset.  Ticket subscriber entries snapshot it, so
     * a subscription survives as long as (and only as long as) the
     * park it was made for — a recycled slot re-parked under a new
     * identity does not inherit stale subscriptions.
     */
    std::uint64_t ltpGen = 0;
    /// @}

    /// @name Status
    /// @{
    bool dispatched = false;
    bool issued = false;
    bool executed = false;  ///< stores: address+data staged in the SQ
    bool completed = false; ///< result available (loads: data arrived)
    bool committed = false;
    bool squashed = false;
    bool mispredicted = false; ///< branch direction/target mispredict
    /// @}

    /// @name Memory state
    /// @{
    bool waitingOnStore = false;
    SeqNum waitStoreSeq = kSeqNone;
    HitLevel memLevel = HitLevel::L1;
    /// @}

    /// @name Timing
    /// @{
    Cycle fetchCycle = 0;
    Cycle renameCycle = 0;
    Cycle earliestIssue = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;
    Cycle unparkCycle = 0;
    /// @}

    bool hasDst() const { return op.hasDst(); }
    RegClass dstClass() const { return op.dst.regClass(); }

    /** Reset for reuse from the instruction pool. */
    void
    init(const MicroOp &o, SeqNum s, Cycle fetch_cycle, int thread = 0)
    {
        std::uint64_t keep_ltp_gen = ltpGen; // park-episode counter
        *this = DynInst{};                   // survives slot reuse
        ltpGen = keep_ltp_gen;
        op = o;
        seq = s;
        tid = thread;
        fetchCycle = fetch_cycle;
    }

    /**
     * Age order across hardware threads: per-thread sequence numbers
     * are only comparable within a thread, so cross-thread structures
     * (the shared IQ) order by (seq, tid) — identical to plain seq
     * order on a single-threaded machine.
     */
    bool
    olderThan(const DynInst &o) const
    {
        return seq < o.seq || (seq == o.seq && tid < o.tid);
    }

    std::string toString() const;
};

} // namespace ltp

#endif // LTP_CPU_DYN_INST_HH
