/**
 * @file
 * Physical register file: per-class free lists, ready scoreboard, and
 * the LTP register reserve.
 *
 * Table 1 footnote semantics: the configured size is the number of
 * *available* (renameable) registers; the architectural base copies are
 * implicit.  The free list therefore starts with exactly `size`
 * entries.
 *
 * Deadlock avoidance (Section 5.4): a configurable number of registers
 * is reserved for instructions leaving the LTP — normal rename may not
 * dip below the reserve, the unpark path may.
 */

#ifndef LTP_CPU_REGFILE_HH
#define LTP_CPU_REGFILE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/reg.hh"

namespace ltp {

/**
 * Allocation priority levels (Section 5.4 deadlock avoidance):
 *  - Rename: normal front-end rename; may not dip into the reserve.
 *  - Unpark: instructions leaving the LTP; may use the reserve except
 *    for one register held back for Forced.
 *  - Forced: the forced unpark of a parked ROB head; may take the very
 *    last free register, guaranteeing forward progress.
 */
enum class AllocPriority { Rename, Unpark, Forced };

/** One register class's physical file. */
class PhysRegFile
{
  public:
    /**
     * @param available number of renameable registers (Table 1 style)
     * @param reserve   registers only the LTP-unpark path may take
     */
    PhysRegFile(int available, int reserve);

    /** Registers obtainable at priority @p prio right now. */
    int freeFor(AllocPriority prio) const;

    /**
     * Allocate a register at the given priority.
     * @return physical index, or -1 if none available to this path.
     */
    std::int32_t allocate(AllocPriority prio, Cycle now);

    /** Return a register to the free list. */
    void release(std::int32_t phys, Cycle now);

    bool ready(std::int32_t phys) const { return ready_[phys]; }
    void setReady(std::int32_t phys) { ready_[phys] = true; }

    int capacity() const { return capacity_; }
    int allocatedCount() const { return capacity_ - free_count_; }

    /** Average registers in use per cycle (Figure 1c / Figure 6 RF). */
    OccupancyStat occupancy;

    Counter allocations;
    Counter reserveAllocations;

    void resetStats(Cycle now);

  private:
    int capacity_;
    int reserve_;
    int free_count_;
    std::vector<std::int32_t> free_list_;
    std::vector<bool> ready_;
};

} // namespace ltp

#endif // LTP_CPU_REGFILE_HH
