/**
 * @file
 * Physical register file: per-class free lists, ready scoreboard, the
 * LTP register reserve, and the event-driven wakeup dependents lists.
 *
 * Table 1 footnote semantics: the configured size is the number of
 * *available* (renameable) registers; the architectural base copies are
 * implicit.  The free list therefore starts with exactly `size`
 * entries.
 *
 * Wakeup: instead of the scheduler polling every waiting instruction's
 * ready bits each cycle, each physical register carries a list of the
 * consumers waiting on it.  Writeback marks the register ready and the
 * core walks exactly that list (dependency-linked wakeup).  Entries are
 * (instruction, pool generation) pairs: squashed consumers are never
 * unlinked eagerly, they are filtered by generation when the register
 * finally becomes ready — and cleared wholesale when it is reallocated.
 *
 * Deadlock avoidance (Section 5.4): a configurable number of registers
 * is reserved for instructions leaving the LTP — normal rename may not
 * dip below the reserve, the unpark path may.
 */

#ifndef LTP_CPU_REGFILE_HH
#define LTP_CPU_REGFILE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/reg.hh"

namespace ltp {

struct DynInst;

/**
 * Allocation priority levels (Section 5.4 deadlock avoidance):
 *  - Rename: normal front-end rename; may not dip into the reserve.
 *  - Unpark: instructions leaving the LTP; may use the reserve except
 *    for one register held back for Forced.
 *  - Forced: the forced unpark of a parked ROB head; may take the very
 *    last free register, guaranteeing forward progress.
 */
enum class AllocPriority { Rename, Unpark, Forced };

/** One consumer waiting in the scheduler for a register to turn ready. */
struct RegDependent
{
    DynInst *inst;
    std::uint64_t gen; ///< instruction-pool generation (stale guard)
};

/** One register class's physical file. */
class PhysRegFile
{
  public:
    /**
     * @param available number of renameable registers (Table 1 style)
     * @param reserve   registers only the LTP-unpark path may take
     */
    PhysRegFile(int available, int reserve);

    /** Registers obtainable at priority @p prio right now. */
    int freeFor(AllocPriority prio) const;

    /**
     * Allocate a register at the given priority.  Clears the ready bit
     * and any stale dependents left by squashed consumers.
     * @return physical index, or -1 if none available to this path.
     */
    std::int32_t allocate(AllocPriority prio);

    /** Return a register to the free list. */
    void release(std::int32_t phys);

    bool ready(std::int32_t phys) const { return ready_[phys]; }
    void setReady(std::int32_t phys) { ready_[phys] = true; }

    /** Link a waiting consumer onto @p phys (event-driven wakeup). */
    void
    addDependent(std::int32_t phys, DynInst *inst, std::uint64_t gen)
    {
        depsSlot(phys).push_back(RegDependent{inst, gen});
    }

    /**
     * The consumers registered on @p phys.  The caller (writeback)
     * walks the list and then calls clearDependents(); the walk never
     * re-registers on the same register, so iteration is safe.
     */
    const std::vector<RegDependent> &
    dependents(std::int32_t phys) const
    {
        static const std::vector<RegDependent> kNone;
        return std::size_t(phys) < dependents_.size()
                   ? dependents_[phys]
                   : kNone;
    }

    void
    clearDependents(std::int32_t phys)
    {
        if (std::size_t(phys) < dependents_.size())
            dependents_[phys].clear();
    }

    int capacity() const { return capacity_; }
    int allocatedCount() const { return capacity_ - free_count_; }

    /** Average registers in use per cycle (Figure 1c / Figure 6 RF). */
    OccupancyStat occupancy;

    Counter allocations;
    Counter reserveAllocations;

    void resetStats(Cycle now);

  private:
    /**
     * Dependents slot for @p phys, grown on demand.  The free list
     * hands out low indices first, so even an "infinite" limit-study
     * file (kInfiniteSize) only ever touches a dense prefix bounded by
     * peak concurrent allocations — sizing eagerly to capacity would
     * memset megabytes per Simulator construction.
     */
    std::vector<RegDependent> &
    depsSlot(std::int32_t phys)
    {
        if (std::size_t(phys) >= dependents_.size())
            dependents_.resize(std::size_t(phys) + 1);
        return dependents_[phys];
    }

    int capacity_;
    int reserve_;
    int free_count_;
    std::int32_t next_fresh_ = 0; ///< lowest never-allocated index
    std::vector<std::int32_t> free_list_; ///< released registers (LIFO)
    std::vector<bool> ready_;
    std::vector<std::vector<RegDependent>> dependents_;
};

} // namespace ltp

#endif // LTP_CPU_REGFILE_HH
