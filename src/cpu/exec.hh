/**
 * @file
 * Functional-unit pool.
 *
 * Groups (units / ops):
 *   ALU x4   IntAlu, Branch, Nop        (1c, pipelined)
 *   MUL x2   IntMul (3c pipelined), IntDiv (20c unpipelined)
 *   FP  x2   FpAlu/FpMul pipelined, FpDiv/FpSqrt unpipelined
 *   LD  x2   load address generation + cache port
 *   ST  x1   store address/data staging
 *
 * Total selected per cycle is additionally bounded by the core's issue
 * width (Table 1: 6).
 */

#ifndef LTP_CPU_EXEC_HH
#define LTP_CPU_EXEC_HH

#include <array>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/opclass.hh"

namespace ltp {

/** Functional-unit counts. */
struct FuConfig
{
    int alu = 4;
    int mul = 2;
    int fp = 2;
    int ld = 2;
    int st = 1;
};

/** Per-cycle functional-unit arbiter. */
class FuPool
{
  public:
    explicit FuPool(const FuConfig &cfg);

    /**
     * Can an op of class @p c start at cycle @p now?  Per-cycle issue
     * counts are stamped with the cycle they were taken in and expire
     * implicitly when @p now moves on — there is no per-cycle reset
     * pass, and @p now must never move backwards.
     */
    bool canIssue(OpClass c, Cycle now) const;

    /** Claim a unit; returns the execute latency of the op. */
    int issue(OpClass c, Cycle now);

  private:
    enum Group { kAlu, kMul, kFp, kLd, kSt, kNumGroups };

    static Group groupOf(OpClass c);

    struct GroupState
    {
        std::vector<Cycle> busyUntil;
        Cycle stamp = 0;          ///< cycle issuedThisCycle refers to
        int issuedThisCycle = 0;
    };

    std::array<GroupState, kNumGroups> groups_;
};

} // namespace ltp

#endif // LTP_CPU_EXEC_HH
