/**
 * @file
 * Register Allocation Table (RAT) with the LTP extensions, plus the
 * second-level RAT_LTP.
 *
 * Each architectural register entry carries, beyond the mapping:
 *  - the producer PC        (UIT backward propagation, Section 5.2)
 *  - the Parked bit         (dependants of parked producers must park)
 *  - the ticket vector      (Non-Ready propagation, Appendix A)
 *
 * A mapping is either a physical register or an *internal LTP register
 * id* when the producer is parked and has not yet been assigned a
 * physical register.  RAT_LTP resolves LTP ids to physical registers
 * once the producer leaves the LTP; ids live until the next writer of
 * the architectural register commits (the same lifetime as the
 * physical register the id resolves to).
 */

#ifndef LTP_CPU_RENAME_HH
#define LTP_CPU_RENAME_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "cpu/dyn_inst.hh"
#include "isa/reg.hh"
#include "ltp/tickets.hh"

namespace ltp {

/** One architectural register's rename state. */
struct RatEntry
{
    PrevMapping map;      ///< current producer mapping (None/Phys/Ltp)
    Addr producerPc = 0;  ///< PC of the current producer
    bool parked = false;  ///< producer is parked (propagates parking)
    TicketMask tickets;   ///< long-latency deps of the current value
};

/** The front-end RAT: kTotalArchRegs entries. */
class RenameTable
{
  public:
    RenameTable() : entries_(kTotalArchRegs) {}

    RatEntry &operator[](RegId r) { return entries_[r.flat()]; }
    const RatEntry &operator[](RegId r) const { return entries_[r.flat()]; }

  private:
    std::vector<RatEntry> entries_;
};

/**
 * RAT_LTP: internal LTP register ids and their eventual physical
 * mappings (Section 5.2 "Wakeup", Appendix A "Parking").
 */
class LtpRat
{
  public:
    /** @param ids pool size; the paper notes roughly |LTP| ids needed,
     *  we provision generously and treat exhaustion as LTP-full. */
    explicit LtpRat(int ids);

    /** Allocate an id for a parked instruction's destination; -1 if
     *  exhausted. */
    int allocate();

    /** The parked producer left LTP: record its physical register. */
    void resolve(int id, std::int32_t phys);

    /** Physical register for @p id, or -1 while unresolved. */
    std::int32_t lookup(int id) const;

    /** Release an id (next-writer commit, or squash of the owner). */
    void release(int id);

    int availableCount() const { return static_cast<int>(free_.size()); }

    Counter allocations;
    Counter exhaustions;

  private:
    struct Slot
    {
        bool live = false;
        std::int32_t phys = -1;
    };

    std::vector<Slot> slots_;
    std::vector<int> free_;
};

} // namespace ltp

#endif // LTP_CPU_RENAME_HH
