#include "cpu/lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ltp {

namespace {

void
insertSorted(std::vector<DynInst *> &v, DynInst *inst)
{
    auto it = v.end();
    while (it != v.begin() && (*(it - 1))->seq > inst->seq)
        --it;
    v.insert(it, inst);
}

void
eraseFrom(std::vector<DynInst *> &v, DynInst *inst, const char *what)
{
    auto it = std::find(v.begin(), v.end(), inst);
    if (it == v.end())
        panic("%s: instruction not present", what);
    v.erase(it);
}

} // namespace

Lsq::Lsq(int lq_size, int sq_size, int lq_reserve, int sq_reserve)
    : lq_capacity_(lq_size),
      sq_capacity_(sq_size),
      lq_reserve_(lq_reserve),
      sq_reserve_(sq_reserve)
{
    sim_assert(lq_size > 0 && sq_size > 0);
    sim_assert(lq_reserve >= 0 && lq_reserve < lq_size);
    sim_assert(sq_reserve >= 0 && sq_reserve < sq_size);
}

bool
Lsq::lqHasSpace(bool from_reserve) const
{
    int limit = from_reserve ? lq_capacity_ : lq_capacity_ - lq_reserve_;
    return lqSize() < limit;
}

bool
Lsq::sqHasSpace(bool from_reserve) const
{
    int limit = from_reserve ? sq_capacity_ : sq_capacity_ - sq_reserve_;
    return sqSize() < limit;
}

void
Lsq::insertLoad(DynInst *inst)
{
    sim_assert(!inst->inLq);
    insertSorted(lq_, inst);
    inst->inLq = true;
    lqOccupancy.add(1);
}

void
Lsq::insertStore(DynInst *inst)
{
    sim_assert(!inst->inSq);
    insertSorted(sq_, inst);
    inst->inSq = true;
    sqOccupancy.add(1);
}

void
Lsq::removeLoad(DynInst *inst)
{
    sim_assert(inst->inLq);
    eraseFrom(lq_, inst, "LQ remove");
    inst->inLq = false;
    lqOccupancy.sub(1);
}

void
Lsq::removeStore(DynInst *inst)
{
    sim_assert(inst->inSq);
    eraseFrom(sq_, inst, "SQ remove");
    inst->inSq = false;
    sqOccupancy.sub(1);
}

DynInst *
Lsq::oldestDrainableStore() const
{
    if (!sq_.empty() && sq_.front()->committed)
        return sq_.front();
    return nullptr;
}

bool
Lsq::overlaps(const DynInst *a, const DynInst *b)
{
    Addr a_lo = a->op.effAddr, a_hi = a_lo + a->op.memSize;
    Addr b_lo = b->op.effAddr, b_hi = b_lo + b->op.memSize;
    return a_lo < b_hi && b_lo < a_hi;
}

DynInst *
Lsq::olderStoreConflict(const DynInst *load) const
{
    DynInst *best = nullptr;
    for (DynInst *st : sq_) {
        if (st->seq >= load->seq)
            break;
        if (overlaps(st, load))
            best = st;
    }
    for (DynInst *st : shadow_stores_) {
        if (st->seq >= load->seq)
            break;
        if (overlaps(st, load) && (!best || st->seq > best->seq))
            best = st;
    }
    return best;
}

void
Lsq::addShadowStore(DynInst *inst)
{
    insertSorted(shadow_stores_, inst);
}

void
Lsq::removeShadowStore(DynInst *inst)
{
    eraseFrom(shadow_stores_, inst, "shadow store remove");
}

void
Lsq::collectLoadsWaitingOn(SeqNum store_seq,
                           std::vector<DynInst *> &out) const
{
    for (DynInst *ld : lq_)
        if (ld->waitingOnStore && ld->waitStoreSeq == store_seq)
            out.push_back(ld);
}

void
Lsq::squashYoungerThan(SeqNum keep)
{
    while (!lq_.empty() && lq_.back()->seq > keep) {
        lq_.back()->inLq = false;
        lq_.pop_back();
        lqOccupancy.sub(1);
    }
    while (!sq_.empty() && sq_.back()->seq > keep) {
        sq_.back()->inSq = false;
        sq_.pop_back();
        sqOccupancy.sub(1);
    }
    while (!shadow_stores_.empty() && shadow_stores_.back()->seq > keep)
        shadow_stores_.pop_back();
}

} // namespace ltp
