#include "cpu/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ltp {

namespace {

/** In-flight instruction pool size: must exceed ROB + front end + SQ
 *  drain backlog by a wide margin so slots are never live on reuse.
 *  Shared with the IQ's seq-indexed ready bitmask (kInstWindow). */
constexpr std::size_t kPoolSize = kInstWindow;

} // namespace

const char *
ltpModeName(LtpMode mode)
{
    switch (mode) {
      case LtpMode::Off: return "off";
      case LtpMode::NU: return "NU";
      case LtpMode::NR: return "NR";
      case LtpMode::NRNU: return "NR+NU";
    }
    return "?";
}

void
CoreStats::reset()
{
    *this = CoreStats{};
}

Core::Core(const CoreConfig &cfg, MemSystem &mem, InstSource &source,
           const OracleClassification *oracle)
    : cfg_(cfg),
      mem_(mem),
      source_(source),
      oracle_(oracle),
      bpred_(cfg.bpTableBits, cfg.btbEntries),
      front_queue_(std::size_t(std::min(cfg.fetchQueueCap, 512))),
      ltp_rat_(4 * (std::min(cfg.ltp.entries, cfg.robSize) + cfg.robSize)),
      int_regs_(cfg.intRegs,
                cfg.ltp.mode != LtpMode::Off ? cfg.ltp.reservedRegs : 0),
      fp_regs_(cfg.fpRegs,
               cfg.ltp.mode != LtpMode::Off ? cfg.ltp.reservedRegs : 0),
      rob_(cfg.robSize),
      iq_(cfg.iqSize),
      lsq_(cfg.lqSize, cfg.sqSize,
           cfg.ltp.mode != LtpMode::Off && cfg.ltp.delayLqSq
               ? cfg.ltp.reservedLqSq : 0,
           cfg.ltp.mode != LtpMode::Off && cfg.ltp.delayLqSq
               ? cfg.ltp.reservedLqSq : 0),
      fu_(cfg.fu),
      ltp_(cfg.ltp.entries, cfg.ltp.insertPorts, cfg.ltp.extractPorts),
      uit_(cfg.ltp.uitEntries, cfg.ltp.uitAssoc),
      llpred_(),
      tickets_(cfg.ltp.numTickets),
      monitor_(cfg.ltp.useMonitor, mem.dramLatency()),
      pool_(kPoolSize),
      pool_gen_(kPoolSize, 0)
{
    if (cfg.ltp.classifier == ClassifierKind::Oracle && !oracle_)
        fatal("oracle classifier selected but no oracle provided");
    ticket_epoch_.assign(tickets_.capacity(), 0);
}

bool
Core::ltpOn() const
{
    return cfg_.ltp.mode != LtpMode::Off && monitor_.enabled(now_);
}

// ---------------------------------------------------------------------
// Instruction pool

DynInst *
Core::slotFor(SeqNum seq)
{
    return &pool_[seq % kPoolSize];
}

DynInst *
Core::allocInst(const MicroOp &op, SeqNum seq)
{
    DynInst *inst = slotFor(seq);
    sim_assert(inst->seq == kSeqNone || inst->committed ||
               inst->squashed);
    sim_assert(!inst->inIq && !inst->inLtp && !inst->inLq && !inst->inSq);
    pool_gen_[seq % kPoolSize] += 1;
    inst->init(op, seq, now_);
    return inst;
}

bool
Core::eventInstValid(SeqNum seq, std::uint64_t gen) const
{
    const DynInst &inst = pool_[seq % kPoolSize];
    return inst.seq == seq && pool_gen_[seq % kPoolSize] == gen &&
           !inst.squashed;
}

// ---------------------------------------------------------------------
// Event scheduling

void
Core::scheduleCompletion(DynInst *inst, Cycle when)
{
    sim_assert(when >= now_);
    completions_.push(
        CompletionEv{when, inst->seq, pool_gen_[inst->seq % kPoolSize]});
}

void
Core::scheduleTicketClear(int ticket, Cycle when)
{
    ticket_events_.push(TicketEv{when, ticket, ticket_epoch_[ticket]});
}

void
Core::processTicketEvents()
{
    while (!ticket_events_.empty() && ticket_events_.top().when <= now_) {
        TicketEv ev = ticket_events_.top();
        ticket_events_.pop();
        if (ticket_epoch_[ev.ticket] == ev.epoch)
            tickets_.clearPending(ev.ticket);
    }
}

// ---------------------------------------------------------------------
// Writeback

void
Core::completeInst(DynInst *inst)
{
    sim_assert(!inst->completed);
    inst->completed = true;
    inst->executed = true;
    inst->completeCycle = now_;
    stats_.wbWrites++;

    if (inst->dstPhys >= 0) {
        wakeDependents(regs(inst->dstClass()), inst->dstPhys);
        stats_.rfWrites++;
    }

    // A store's data is now staged: re-disambiguate loads that waited.
    if (inst->op.isStore()) {
        scratch_loads_.clear();
        lsq_.collectLoadsWaitingOn(inst->seq, scratch_loads_);
        for (DynInst *ld : scratch_loads_) {
            ld->waitingOnStore = false;
            ld->waitStoreSeq = kSeqNone;
            executeLoad(ld, now_);
        }
    }

    // Resolved the branch the front end was blocked on?
    if (fetch_blocked_on_ == inst->seq) {
        fetch_blocked_on_ = kSeqNone;
        fetch_resume_at_ = now_ + cfg_.redirectPenalty;
    }

    ll_inflight_.erase(inst->seq);
}

void
Core::writeback()
{
    int budget = cfg_.wbWidth;
    while (budget > 0 && !completions_.empty() &&
           completions_.top().when <= now_) {
        CompletionEv ev = completions_.top();
        completions_.pop();
        if (!eventInstValid(ev.seq, ev.gen))
            continue;
        completeInst(slotFor(ev.seq));
        budget -= 1;
    }
}

// ---------------------------------------------------------------------
// Event-driven scheduling: dependents-list wakeup + ready-list insert

/**
 * Writeback broadcast for one destination register: mark it ready and
 * wake exactly the consumers linked on it.  Stale links (squashed and
 * possibly refetched consumers) are filtered by pool generation; a
 * consumer whose last outstanding source this was moves onto the IQ
 * ready list.
 */
void
Core::wakeDependents(PhysRegFile &rf, std::int32_t phys)
{
    rf.setReady(phys);
    for (const RegDependent &d : rf.dependents(phys)) {
        DynInst *consumer = d.inst;
        if (pool_gen_[consumer->seq % kPoolSize] != d.gen ||
            !consumer->inIq)
            continue;
        sim_assert(consumer->pendingSrcs > 0);
        consumer->pendingSrcs -= 1;
        if (consumer->pendingSrcs == 0)
            iq_.markReady(consumer);
    }
    rf.clearDependents(phys);
}

/**
 * IQ insert with wakeup subscription: count the not-yet-ready physical
 * sources and link this instruction onto each one's dependents list.
 * An instruction arriving with every source ready goes straight onto
 * the ready list.
 */
void
Core::enqueueIq(DynInst *inst, bool emergency)
{
    iq_.insert(inst, emergency);
    int pending = 0;
    for (const auto &src : inst->srcs) {
        sim_assert(!src.isLtp()); // resolved before dispatch, always
        if (src.isPhys() && !regs(src.cls).ready(src.phys)) {
            regs(src.cls).addDependent(
                src.phys, inst, pool_gen_[inst->seq % kPoolSize]);
            pending += 1;
        }
    }
    inst->pendingSrcs = pending;
    if (pending == 0)
        iq_.markReady(inst);
}

// ---------------------------------------------------------------------
// Commit

void
Core::commit()
{
    bool learned = cfg_.ltp.classifier == ClassifierKind::Learned;

    for (int i = 0; i < cfg_.commitWidth; ++i) {
        DynInst *head = rob_.head();
        if (!head)
            break;
        if (head->inLtp) {
            // Forced unpark will handle it this cycle (Section 5.4).
            stats_.commitStallOther++;
            break;
        }
        if (!head->completed) {
            if (head->op.isLoad())
                stats_.commitStallLoad++;
            else
                stats_.commitStallOther++;
            break;
        }

        // Free the previous mapping of the destination register.
        switch (head->prevMap.kind) {
          case PrevMapping::Kind::Phys:
            regs(head->dstClass()).release(head->prevMap.idx);
            break;
          case PrevMapping::Kind::Ltp: {
            std::int32_t phys = ltp_rat_.lookup(head->prevMap.idx);
            sim_assert(phys >= 0);
            regs(head->dstClass()).release(phys);
            ltp_rat_.release(head->prevMap.idx);
            break;
          }
          case PrevMapping::Kind::None:
            break;
        }

        // LTP learning (Section 5.2): long-latency loads seed the UIT;
        // the hit/miss predictor trains on every load outcome.
        if (head->op.isLoad() && cfg_.ltp.mode != LtpMode::Off &&
            learned) {
            llpred_.update(head->op.pc, head->actualLL);
            if (head->actualLL)
                uit_.insert(head->op.pc);
        }

        if (head->ownTicket >= 0) {
            ticket_epoch_[head->ownTicket] += 1;
            tickets_.release(head->ownTicket);
        }

        if (head->op.isLoad() && head->inLq)
            lsq_.removeLoad(head);

        head->committed = true;
        rob_.popHead();
        stats_.committed++;
        source_.retire(head->seq);
    }
}

// ---------------------------------------------------------------------
// LTP wakeup (Sections 3.2, 5.2, 5.4, Appendix A)

SeqNum
Core::nuWakeupBoundary() const
{
    switch (cfg_.ltp.wakeup) {
      case WakeupPolicy::Eager:
        return kSeqNone; // everything is always "in the window"
      case WakeupPolicy::Lazy:
        return 0; // nothing qualifies; forced/pressure paths only
      case WakeupPolicy::RobProximity:
        break;
    }
    // Wake everything older than the *second* long-latency instruction
    // in the ROB: when the blocking (first) one finishes, all of it can
    // retire in a burst.
    if (ll_inflight_.size() < 2)
        return kSeqNone; // unbounded
    auto it = ll_inflight_.begin();
    ++it;
    return *it;
}

bool
Core::tryUnpark(DynInst *inst, bool forced)
{
    // Sources produced by still-parked instructions cannot be resolved.
    std::int32_t resolved[kMaxSrcs];
    for (int i = 0; i < kMaxSrcs; ++i) {
        resolved[i] = -1;
        if (inst->srcs[i].isLtp()) {
            resolved[i] = ltp_rat_.lookup(inst->srcs[i].ltpId);
            if (resolved[i] < 0)
                return false;
        }
    }

    if (forced ? !iq_.hasEmergencySpace() : !iq_.hasSpace())
        return false;

    std::int32_t dst = -1;
    if (inst->hasDst()) {
        dst = regs(inst->dstClass())
                  .allocate(forced ? AllocPriority::Forced
                                   : AllocPriority::Unpark);
        if (dst < 0)
            return false;
    }

    // Late LQ/SQ allocation (limit study).
    bool need_lq = cfg_.ltp.delayLqSq && inst->op.isLoad();
    bool need_sq = cfg_.ltp.delayLqSq && inst->op.isStore();
    if ((need_lq && !lsq_.lqHasSpace(true)) ||
        (need_sq && !lsq_.sqHasSpace(true))) {
        if (dst >= 0)
            regs(inst->dstClass()).release(dst);
        return false;
    }

    // ---- commit the unpark ----
    for (int i = 0; i < kMaxSrcs; ++i) {
        if (inst->srcs[i].isLtp()) {
            inst->srcs[i].phys = resolved[i];
            inst->srcs[i].ltpId = -1;
        }
    }
    if (dst >= 0) {
        inst->dstPhys = dst;
        ltp_rat_.resolve(inst->ltpId, dst);
        // If no younger writer renamed the register since, clear the
        // Parked bit so future consumers need not park.  The mapping
        // itself stays Ltp(id): readSrc() resolves it through RAT_LTP,
        // and the id is released when the next writer commits — the
        // same lifetime as the physical register it now names.
        RatEntry &e = rat_[inst->op.dst];
        if (e.map.kind == PrevMapping::Kind::Ltp &&
            e.map.idx == inst->ltpId)
            e.parked = false;
    }
    if (need_lq)
        lsq_.insertLoad(inst);
    if (need_sq) {
        lsq_.removeShadowStore(inst);
        lsq_.insertStore(inst);
    }

    enqueueIq(inst, forced && !iq_.hasSpace());
    inst->earliestIssue = now_ + 1;
    inst->unparkCycle = now_;
    stats_.unparked++;
    return true;
}

void
Core::ltpWakeup()
{
    if (cfg_.ltp.mode == LtpMode::Off || ltp_.empty())
        return;

    // 1) Forced: a parked ROB head must leave immediately or nothing
    //    can ever commit again (Section 5.4).
    DynInst *head = rob_.head();
    if (head && head->inLtp) {
        sim_assert(ltp_.front() == head);
        if (ltp_.canExtract() && tryUnpark(head, /*forced=*/true)) {
            ltp_.popFront();
            stats_.forcedUnparks++;
        }
    }

    // 2) Pressure: rename starved for a committed-freed resource last
    //    cycle; draining the oldest parked instruction frees resources
    //    at its commit.
    if (rename_pressure_ && !ltp_.empty() && ltp_.canExtract()) {
        DynInst *front = ltp_.front();
        if (tryUnpark(front, /*forced=*/false)) {
            ltp_.popFront();
            stats_.pressureUnparks++;
        }
    }
    rename_pressure_ = false;

    // 3) Policy wakeup.
    SeqNum boundary = nuWakeupBoundary();
    LtpMode mode = cfg_.ltp.mode;

    if (mode == LtpMode::NU) {
        // Strict FIFO: eligibility is monotone in seq, so head-only
        // extraction loses nothing.
        while (ltp_.canExtract() && !ltp_.empty()) {
            DynInst *front = ltp_.front();
            if (boundary != kSeqNone && front->seq >= boundary)
                break;
            if (!tryUnpark(front, false))
                break;
            ltp_.popFront();
            stats_.boundaryUnparks++;
        }
        return;
    }

    // NR and NR+NU: CAM-style extraction, oldest first.
    scratch_select_.clear();
    auto &selected = scratch_select_;
    ltp_.forEach([&](DynInst *inst) {
        if (!ltp_.canExtract() ||
            static_cast<int>(selected.size()) >= cfg_.ltp.extractPorts)
            return;
        bool tickets_clear = !tickets_.liveSubset(inst->tickets).any();
        bool in_window = boundary == kSeqNone || inst->seq < boundary;
        bool eligible;
        if (mode == LtpMode::NR) {
            eligible = tickets_clear;
        } else { // NRNU
            if (inst->urgent) {
                eligible = tickets_clear; // U+NR: leave the moment ready
            } else if (inst->nonReady) {
                eligible = tickets_clear && in_window; // NU+NR
            } else {
                eligible = in_window; // NU+R
            }
        }
        if (eligible && static_cast<int>(selected.size()) <
                            cfg_.ltp.extractPorts)
            selected.push_back(inst);
    });
    for (DynInst *inst : selected) {
        if (!ltp_.canExtract())
            break;
        if (tryUnpark(inst, false)) {
            ltp_.remove(inst);
            if (!tickets_.liveSubset(inst->tickets).any() &&
                inst->nonReady)
                stats_.ticketUnparks++;
            else
                stats_.boundaryUnparks++;
        }
    }
}

// ---------------------------------------------------------------------
// Rename / dispatch

SrcRef
Core::readSrc(RegId reg) const
{
    const RatEntry &e = rat_[reg];
    SrcRef ref;
    ref.cls = reg.regClass();
    switch (e.map.kind) {
      case PrevMapping::Kind::None:
        break; // architectural base copy: always ready
      case PrevMapping::Kind::Phys:
        ref.phys = e.map.idx;
        break;
      case PrevMapping::Kind::Ltp: {
        // The producer may have unparked without repointing the RAT
        // (a younger writer took over the mapping cannot happen here —
        // this *is* the current mapping), resolve eagerly if possible.
        std::int32_t phys = ltp_rat_.lookup(e.map.idx);
        if (phys >= 0)
            ref.phys = phys;
        else
            ref.ltpId = e.map.idx;
        break;
      }
    }
    return ref;
}

Core::Classification
Core::classify(DynInst *inst)
{
    Classification c;
    const MicroOp &op = inst->op;
    bool on = ltpOn();

    // Table lookups happen once per instruction (when its group first
    // reaches rename); stall retries reuse the memoized answer.
    if (!inst->classified) {
        if (cfg_.ltp.classifier == ClassifierKind::Oracle) {
            inst->urgent = oracle_->urgent(inst->seq);
            inst->predictedLL = oracle_->longLatency(inst->seq);
            inst->classified = true;
        } else if (on) {
            inst->urgent = uit_.lookup(op.pc);
            // The hit/miss prediction also feeds the ROB long-latency
            // tracking the Non-Urgent wakeup boundary needs, so it runs
            // in every LTP mode.
            if (op.isLoad())
                inst->predictedLL = llpred_.predictLong(op.pc);
            inst->classified = true;
        } else {
            // LTP powered off: nothing parks, so skip the lookups and
            // treat the instruction as urgent *without* memoizing —
            // a placeholder must never feed backward propagation.
            inst->urgent = true;
        }
        if (isFixedLongLat(op.opc))
            inst->predictedLL = true;
        if (inst->classified && inst->urgent)
            stats_.classUrgent++;
    }
    c.urgent = inst->urgent;
    c.predictedLL = inst->predictedLL;

    // Ticket inheritance: union of live source tickets (Appendix A).
    // Recomputed on retries — tickets may have cleared while stalled.
    for (const auto &src : op.srcs)
        if (src.valid())
            c.tickets.orWith(rat_[src].tickets);
    c.tickets = tickets_.liveSubset(c.tickets);
    c.nonReady = c.tickets.any();

    switch (cfg_.ltp.mode) {
      case LtpMode::Off:
        c.parkEligible = false;
        break;
      case LtpMode::NU:
        c.parkEligible = !c.urgent;
        break;
      case LtpMode::NR:
        c.parkEligible = c.nonReady;
        break;
      case LtpMode::NRNU:
        c.parkEligible = !c.urgent || c.nonReady;
        break;
    }
    return c;
}

bool
Core::renameOne(DynInst *inst)
{
    const MicroOp &op = inst->op;
    rename_stall_commit_freed_ = false;

    // A ROB-full stall is *not* a pressure trigger: parked instructions
    // keep their ROB entries (Section 3), so draining the LTP cannot
    // free ROB space — the forced unpark of a parked ROB head is the
    // rule that guarantees progress there.
    if (rob_.full()) {
        stats_.renameStallRob++;
        return false;
    }

    Classification cls = classify(inst);

    bool src_parked = false;
    for (const auto &src : op.srcs)
        if (src.valid() && rat_[src].parked)
            src_parked = true;

    bool on = ltpOn();
    bool must_park = src_parked; // no physical source to wait on
    bool park = must_park || (on && cls.parkEligible);
    if (!on && cls.parkEligible)
        stats_.parkSkippedOff++;

    if (park) {
        bool ltp_ok = ltp_.canInsert() &&
                      (!inst->hasDst() || ltp_rat_.availableCount() > 0);
        if (!ltp_ok) {
            if (must_park) {
                stats_.renameStallLtp++;
                ltp_.fullStalls++;
                rename_stall_commit_freed_ = true;
                return false;
            }
            park = false;
        }
    }

    if (!park) {
        if (!iq_.hasSpace()) {
            stats_.renameStallIq++;
            return false;
        }
        if (inst->hasDst() &&
            regs(inst->dstClass()).freeFor(AllocPriority::Rename) <= 0) {
            stats_.renameStallRegs++;
            return false;
        }
    }

    bool delay = cfg_.ltp.delayLqSq;
    bool need_lq = op.isLoad() && !(park && delay);
    bool need_sq = op.isStore() && !(park && delay);
    if (need_lq && !lsq_.lqHasSpace(false)) {
        stats_.renameStallLq++;
        return false;
    }
    if (need_sq && !lsq_.sqHasSpace(false)) {
        stats_.renameStallSq++;
        return false;
    }

    // ---- all checks passed: perform the rename ----
    inst->nonReady = cls.nonReady;
    inst->tickets = cls.tickets;
    if (cls.nonReady)
        stats_.classNonReady++;

    // Read sources (and their producer PCs) before touching the RAT:
    // an instruction may read and write the same architectural register.
    Addr producer_pcs[kMaxSrcs] = {0, 0, 0};
    for (int i = 0; i < kMaxSrcs; ++i) {
        if (op.srcs[i].valid()) {
            inst->srcs[i] = readSrc(op.srcs[i]);
            producer_pcs[i] = rat_[op.srcs[i]].producerPc;
        }
    }

    // Backward urgency propagation (Section 5.2, step 2).
    if (cfg_.ltp.classifier == ClassifierKind::Learned && cls.urgent &&
        on) {
        for (Addr ppc : producer_pcs)
            if (ppc != 0)
                uit_.insert(ppc);
    }

    // Own ticket for predicted long-latency instructions.
    bool tickets_enabled = cfg_.ltp.mode == LtpMode::NR ||
                           cfg_.ltp.mode == LtpMode::NRNU;
    TicketMask dst_tickets = cls.tickets;
    if (tickets_enabled && cls.predictedLL) {
        int t = tickets_.allocate();
        if (t >= 0) {
            ticket_epoch_[t] += 1;
            inst->ownTicket = t;
            dst_tickets.reset();
            dst_tickets.set(t);
        }
    }

    // Destination rename.
    if (inst->hasDst()) {
        RatEntry &e = rat_[op.dst];
        inst->prevMap = e.map;
        inst->prevProducerPc = e.producerPc;
        inst->prevParkedBit = e.parked;
        inst->prevTickets = e.tickets;

        if (park) {
            inst->ltpId = ltp_rat_.allocate();
            sim_assert(inst->ltpId >= 0);
            e.map = PrevMapping{PrevMapping::Kind::Ltp, inst->ltpId};
            e.parked = true;
        } else {
            inst->dstPhys =
                regs(inst->dstClass()).allocate(AllocPriority::Rename);
            sim_assert(inst->dstPhys >= 0);
            e.map = PrevMapping{PrevMapping::Kind::Phys, inst->dstPhys};
            e.parked = false;
        }
        e.producerPc = op.pc;
        e.tickets = dst_tickets;
    }

    rob_.push(inst);
    if (need_lq)
        lsq_.insertLoad(inst);
    if (need_sq)
        lsq_.insertStore(inst);
    if (park && delay && op.isStore())
        lsq_.addShadowStore(inst);

    if (park) {
        ltp_.push(inst);
        inst->parked = true;
        stats_.parked++;
    } else {
        enqueueIq(inst, false);
    }

    if (inst->predictedLL)
        ll_inflight_.insert(inst->seq);

    inst->dispatched = true;
    inst->renameCycle = now_;
    inst->earliestIssue = now_ + 1;
    return true;
}

void
Core::rename()
{
    int budget = cfg_.renameWidth;
    while (budget > 0 && !front_queue_.empty()) {
        FrontEntry &fe = front_queue_.front();
        if (fe.readyAt > now_)
            break;
        if (!renameOne(fe.inst)) {
            // Commit-freed resource stall: nudge the LTP to drain so
            // the oldest parked instruction can commit (Section 5.4).
            if (rename_stall_commit_freed_ && !ltp_.empty())
                rename_pressure_ = true;
            break;
        }
        front_queue_.pop_front();
        budget -= 1;
        stats_.renamed++;
    }
}

// ---------------------------------------------------------------------
// Execute

bool
Core::srcsReady(const DynInst *inst) const
{
    for (const auto &src : inst->srcs) {
        if (src.isLtp())
            panic("unresolved LTP source in the IQ (seq %llu)",
                  static_cast<unsigned long long>(inst->seq));
        if (src.isPhys() && !regs(src.cls).ready(src.phys))
            return false;
    }
    return true;
}

void
Core::executeLoad(DynInst *inst, Cycle now)
{
    DynInst *conflict = lsq_.olderStoreConflict(inst);
    if (conflict && !conflict->executed) {
        // Exact-address (oracle) disambiguation: wait for the store's
        // data instead of speculating and squashing.
        inst->waitingOnStore = true;
        inst->waitStoreSeq = conflict->seq;
        return;
    }
    if (conflict) {
        // Store-to-load forwarding out of the SQ.
        lsq_.forwards++;
        inst->memLevel = HitLevel::L1;
        Cycle ready = now + mem_.l1d().hitLatency();
        scheduleCompletion(inst, ready);
        if (inst->ownTicket >= 0)
            scheduleTicketClear(inst->ownTicket, ready);
        return;
    }

    auto res = mem_.access(inst->op.pc, inst->op.effAddr, false, now);
    if (!res) {
        retry_events_.push(RetryEv{now + 1, inst->seq,
                                   pool_gen_[inst->seq % kPoolSize]});
        return;
    }
    inst->memLevel = res->level;
    inst->actualLL = mem_.isLongLatency(*res, now);
    if (inst->actualLL)
        ll_inflight_.insert(inst->seq);
    if (res->level == HitLevel::Dram)
        monitor_.onDramDemandMiss(now);
    scheduleCompletion(inst, res->dataReady);
    if (inst->ownTicket >= 0)
        scheduleTicketClear(inst->ownTicket, res->earlyWakeup);
}

void
Core::execute()
{
    // Load retries first (they were selected in an earlier cycle).
    while (!retry_events_.empty() && retry_events_.top().when <= now_) {
        RetryEv ev = retry_events_.top();
        retry_events_.pop();
        if (!eventInstValid(ev.seq, ev.gen))
            continue;
        DynInst *inst = slotFor(ev.seq);
        if (!inst->completed && !inst->waitingOnStore)
            executeLoad(inst, now_);
    }

    // Select walks only the ready list (oldest first) — readiness was
    // established by the dependents-list wakeup at writeback, so the
    // per-cycle srcsReady poll over the whole window is gone.
    int budget = cfg_.issueWidth;
    scratch_select_.clear();
    auto &selected = scratch_select_;
    iq_.forEachReady([&](DynInst *inst) {
        if (budget <= 0)
            return;
        if (inst->earliestIssue > now_)
            return;
        if (!fu_.canIssue(inst->op.opc, now_))
            return;
        fu_.issue(inst->op.opc, now_);
        selected.push_back(inst);
        budget -= 1;
    });

    for (DynInst *inst : selected) {
        iq_.remove(inst);
        inst->issued = true;
        inst->issueCycle = now_;
        stats_.iqIssued++;
        for (const auto &src : inst->srcs)
            if (src.isPhys())
                stats_.rfReads++;

        const MicroOp &op = inst->op;
        if (op.isLoad()) {
            stats_.loadsExecuted++;
            executeLoad(inst, now_);
        } else if (op.isStore()) {
            stats_.storesExecuted++;
            scheduleCompletion(inst, now_ + 1);
        } else {
            int lat = opInfo(op.opc).latency;
            Cycle done = now_ + lat;
            scheduleCompletion(inst, done);
            if (inst->ownTicket >= 0) {
                Cycle lead = std::min<Cycle>(done - now_, 8);
                scheduleTicketClear(inst->ownTicket, done - lead);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Store drain (post-commit)

void
Core::drainStores()
{
    for (int i = 0; i < cfg_.sqDrainWidth; ++i) {
        DynInst *st = lsq_.oldestDrainableStore();
        if (!st)
            break;
        auto res = mem_.access(st->op.pc, st->op.effAddr, true, now_);
        if (!res)
            break; // MSHRs full: retry next cycle
        lsq_.removeStore(st);
    }
}

// ---------------------------------------------------------------------
// Fetch

void
Core::fetch()
{
    if (!fetch_enabled_ || fetch_blocked_on_ != kSeqNone ||
        now_ < fetch_resume_at_)
        return;

    int budget = cfg_.fetchWidth;
    while (budget > 0 &&
           static_cast<int>(front_queue_.size()) < cfg_.fetchQueueCap) {
        MicroOp op = source_.fetch(next_fetch_seq_);

        MemAccessResult fr = mem_.fetchAccess(op.pc, now_);
        if (fr.dataReady > now_ + mem_.l1i().hitLatency()) {
            fetch_resume_at_ = fr.dataReady; // I-cache miss
            break;
        }

        DynInst *inst = allocInst(op, next_fetch_seq_);
        next_fetch_seq_ += 1;
        stats_.fetched++;

        bool fetch_break = false;
        if (op.isBranch()) {
            bool correct = bpred_.predict(op.pc, op.taken, op.target);
            if (!correct) {
                inst->mispredicted = true;
                fetch_blocked_on_ = inst->seq;
                fetch_break = true;
            } else if (op.taken) {
                fetch_break = true; // taken branch ends the fetch group
            }
        }

        front_queue_.push_back(
            FrontEntry{inst, now_ + cfg_.frontendDepth});
        budget -= 1;
        if (fetch_break)
            break;
    }
}

// ---------------------------------------------------------------------
// Squash (memory-order violations; exercised by the store-set mode and
// by tests — the default oracle disambiguation never violates)

void
Core::squashAfter(SeqNum keep)
{
    stats_.squashes++;

    rob_.squashYoungerThan(keep, [&](DynInst *inst) {
        if (inst->hasDst()) {
            RatEntry &e = rat_[inst->op.dst];
            e.map = inst->prevMap;
            e.producerPc = inst->prevProducerPc;
            e.parked = inst->prevParkedBit;
            e.tickets = inst->prevTickets;
            if (inst->dstPhys >= 0)
                regs(inst->dstClass()).release(inst->dstPhys);
            if (inst->ltpId >= 0)
                ltp_rat_.release(inst->ltpId);
        }
        if (inst->ownTicket >= 0) {
            ticket_epoch_[inst->ownTicket] += 1;
            tickets_.release(inst->ownTicket);
        }
        ll_inflight_.erase(inst->seq);
        inst->squashed = true;
    });

    iq_.squashYoungerThan(keep);
    lsq_.squashYoungerThan(keep);
    ltp_.squashYoungerThan(keep);

    while (!front_queue_.empty() &&
           front_queue_.back().inst->seq > keep) {
        front_queue_.back().inst->squashed = true;
        front_queue_.pop_back();
    }

    if (next_fetch_seq_ > keep + 1)
        next_fetch_seq_ = keep + 1;

    if (fetch_blocked_on_ != kSeqNone && fetch_blocked_on_ > keep) {
        fetch_blocked_on_ = kSeqNone;
        fetch_resume_at_ = now_ + cfg_.redirectPenalty;
    }
}

// ---------------------------------------------------------------------
// Top level

void
Core::tick()
{
    now_ += 1;
    advanceOccupancyStats();
    fu_.beginCycle();
    ltp_.beginCycle();

    processTicketEvents();
    writeback();
    commit();
    ltpWakeup();
    rename();
    execute();
    drainStores();
    fetch();

    monitor_.tick(now_);
}

void
Core::runUntilCommitted(std::uint64_t n, Cycle max_cycles)
{
    std::uint64_t last_committed = committedInsts();
    Cycle last_progress = now_;
    while (committedInsts() < n) {
        tick();
        if (committedInsts() != last_committed) {
            last_committed = committedInsts();
            last_progress = now_;
        }
        if (now_ - last_progress > 200000)
            panic("no commit progress for 200k cycles at cycle %llu "
                  "(likely deadlock; %llu committed)",
                  static_cast<unsigned long long>(now_),
                  static_cast<unsigned long long>(committedInsts()));
        if (now_ >= max_cycles)
            break;
    }
}

void
Core::drain()
{
    fetch_enabled_ = false;
    Cycle start = now_;
    while (!rob_.empty() || !front_queue_.empty()) {
        tick();
        if (now_ - start > 500000)
            panic("drain did not converge");
    }
    fetch_enabled_ = true;
}

/**
 * The one place per-cycle occupancy sampling happens: integrate every
 * core-structure occupancy stat up to the new cycle *before* any stage
 * mutates a level.  Structure mutators are untimed — they no longer
 * thread `now` through every call (see OccupancyStat's sampled style).
 */
void
Core::advanceOccupancyStats()
{
    iq_.occupancy.advanceTo(now_);
    rob_.occupancy.advanceTo(now_);
    lsq_.lqOccupancy.advanceTo(now_);
    lsq_.sqOccupancy.advanceTo(now_);
    ltp_.occupancy.advanceTo(now_);
    ltp_.parkedWithDest.advanceTo(now_);
    ltp_.parkedLoads.advanceTo(now_);
    ltp_.parkedStores.advanceTo(now_);
    int_regs_.occupancy.advanceTo(now_);
    fp_regs_.occupancy.advanceTo(now_);
}

void
Core::resetStats()
{
    stats_.reset();
    iq_.inserts.reset();
    iq_.occupancy.reset(now_);
    rob_.occupancy.reset(now_);
    lsq_.lqOccupancy.reset(now_);
    lsq_.sqOccupancy.reset(now_);
    lsq_.forwards.reset();
    ltp_.resetStats(now_);
    int_regs_.resetStats(now_);
    fp_regs_.resetStats(now_);
    uit_.resetStats();
    llpred_.resetStats();
    tickets_.resetStats();
    monitor_.resetStats(now_);
    bpred_.lookups.reset();
    bpred_.mispredicts.reset();
}

} // namespace ltp
