#include "cpu/core.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace ltp {

namespace {

/** In-flight instruction pool size, per thread: must exceed ROB +
 *  front end + SQ drain backlog by a wide margin so slots are never
 *  live on reuse.  Shared with the IQ's (tid, seq)-indexed ready
 *  bitmask (kInstWindow). */
constexpr std::size_t kPoolSize = kInstWindow;

} // namespace

const char *
ltpModeName(LtpMode mode)
{
    switch (mode) {
      case LtpMode::Off: return "off";
      case LtpMode::NU: return "NU";
      case LtpMode::NR: return "NR";
      case LtpMode::NRNU: return "NR+NU";
    }
    return "?";
}

const char *
fetchPolicyName(FetchPolicy p)
{
    switch (p) {
      case FetchPolicy::RoundRobin: return "roundRobin";
      case FetchPolicy::ICount: return "icount";
    }
    return "?";
}

void
CoreStats::reset()
{
    *this = CoreStats{};
}

Core::ThreadContext::ThreadContext(int tid_, const CoreConfig &cfg,
                                   InstSource &source_,
                                   const OracleClassification *oracle_,
                                   Cycle dram_latency)
    : tid(tid_),
      source(&source_),
      oracle(oracle_),
      bpred(cfg.bpTableBits, cfg.btbEntries),
      front_queue(std::size_t(std::min(cfg.fetchQueueCap, 512))),
      ltp_rat(4 * (std::min(cfg.ltp.entries, cfg.robSize) + cfg.robSize)),
      rob(cfg.robSize),
      lsq(cfg.lqSize, cfg.sqSize,
          cfg.ltp.mode != LtpMode::Off && cfg.ltp.delayLqSq
              ? cfg.ltp.reservedLqSq : 0,
          cfg.ltp.mode != LtpMode::Off && cfg.ltp.delayLqSq
              ? cfg.ltp.reservedLqSq : 0),
      ltp(cfg.ltp.entries, cfg.ltp.insertPorts, cfg.ltp.extractPorts),
      uit(cfg.ltp.uitEntries, cfg.ltp.uitAssoc),
      llpred(),
      tickets(cfg.ltp.numTickets),
      monitor(cfg.ltp.useMonitor, dram_latency),
      pool(kPoolSize),
      pool_gen(kPoolSize, 0),
      mem_base(threadAddrBase(tid_))
{
    ticket_epoch.assign(tickets.capacity(), 0);
}

Core::Core(const CoreConfig &cfg, MemSystem &mem, InstSource &source,
           const OracleClassification *oracle)
    : Core(cfg, mem, std::vector<InstSource *>{&source},
           std::vector<const OracleClassification *>{oracle})
{
}

Core::Core(const CoreConfig &cfg, MemSystem &mem,
           const std::vector<InstSource *> &sources,
           const std::vector<const OracleClassification *> &oracles)
    : cfg_(cfg),
      mem_(mem),
      int_regs_(cfg.intRegs,
                cfg.ltp.mode != LtpMode::Off ? cfg.ltp.reservedRegs : 0),
      fp_regs_(cfg.fpRegs,
               cfg.ltp.mode != LtpMode::Off ? cfg.ltp.reservedRegs : 0),
      iq_(cfg.iqSize, std::max(cfg.numThreads, 1)),
      fu_(cfg.fu)
{
    int n = std::max(cfg.numThreads, 1);
    if (static_cast<int>(sources.size()) != n)
        fatal("core.numThreads=%d but %d instruction source(s) provided",
              n, static_cast<int>(sources.size()));
    for (int tid = 0; tid < n; ++tid) {
        const OracleClassification *oracle =
            tid < static_cast<int>(oracles.size()) ? oracles[tid]
                                                   : nullptr;
        if (cfg.ltp.classifier == ClassifierKind::Oracle && !oracle)
            fatal("oracle classifier selected but no oracle provided "
                  "for thread %d", tid);
        threads_.push_back(std::make_unique<ThreadContext>(
            tid, cfg, *sources[std::size_t(tid)], oracle,
            mem.dramLatency()));
    }
    bindOccupancyClocks();
}

Core::~Core() = default;

// ---------------------------------------------------------------------
// Per-thread component accessors

CoreStats &Core::stats(int tid) { return thread(tid).stats; }
Rob &Core::rob(int tid) { return thread(tid).rob; }
Lsq &Core::lsq(int tid) { return thread(tid).lsq; }
LtpQueue &Core::ltpQueue(int tid) { return thread(tid).ltp; }
Uit &Core::uit(int tid) { return thread(tid).uit; }
TicketPool &Core::tickets(int tid) { return thread(tid).tickets; }
LoadLatencyPredictor &Core::llpred(int tid) { return thread(tid).llpred; }
LtpMonitor &Core::monitor(int tid) { return thread(tid).monitor; }
BranchPredictor &Core::branchPred(int tid) { return thread(tid).bpred; }

const RatEntry &
Core::ratEntry(RegId r, int tid) const
{
    return thread(tid).rat[r];
}

std::uint64_t
Core::committedInsts(int tid) const
{
    return thread(tid).stats.committed.value();
}

bool
Core::ltpOn(const ThreadContext &t) const
{
    return cfg_.ltp.mode != LtpMode::Off && t.monitor.enabled(now_);
}

// ---------------------------------------------------------------------
// Instruction pool (one per thread)

DynInst *
Core::slotFor(ThreadContext &t, SeqNum seq)
{
    return &t.pool[seq % kPoolSize];
}

DynInst *
Core::allocInst(ThreadContext &t, const MicroOp &op, SeqNum seq)
{
    DynInst *inst = slotFor(t, seq);
    sim_assert(inst->seq == kSeqNone || inst->committed ||
               inst->squashed);
    sim_assert(!inst->inIq && !inst->inLtp && !inst->inLq && !inst->inSq);
    t.pool_gen[seq % kPoolSize] += 1;
    inst->init(op, seq, now_, t.tid);
    return inst;
}

bool
Core::eventInstValid(const ThreadContext &t, SeqNum seq,
                     std::uint64_t gen) const
{
    const DynInst &inst = t.pool[seq % kPoolSize];
    return inst.seq == seq && t.pool_gen[seq % kPoolSize] == gen &&
           !inst.squashed;
}

std::uint64_t
Core::poolGen(const DynInst *inst) const
{
    return thread(inst->tid).pool_gen[inst->seq % kPoolSize];
}

// ---------------------------------------------------------------------
// Event scheduling

void
Core::scheduleCompletion(DynInst *inst, Cycle when)
{
    sim_assert(when >= now_);
    completions_.push(
        CompletionEv{when, inst->seq, poolGen(inst), inst->tid});
}

void
Core::scheduleTicketClear(ThreadContext &t, int ticket, Cycle when)
{
    ticket_events_.schedule(
        when, TicketEv{when, ticket,
                       t.ticket_epoch[std::size_t(ticket)], t.tid});
}

void
Core::processTicketEvents()
{
    ticket_events_.advanceTo(now_, [this](const TicketEv &ev) {
        ThreadContext &t = thread(ev.tid);
        if (t.ticket_epoch[std::size_t(ev.ticket)] != ev.epoch)
            return;
        // The broadcast counter charges every (epoch-valid) clear, but
        // only an actual pending→cleared transition wakes the ticket's
        // parked subscriber cohort.
        bool was_pending = t.tickets.pending().test(ev.ticket);
        t.tickets.clearPending(ev.ticket);
        if (was_pending)
            t.ltp.onTicketCleared(ev.ticket);
    });
}

// ---------------------------------------------------------------------
// Writeback

void
Core::completeInst(DynInst *inst)
{
    ThreadContext &t = threadOf(inst);
    sim_assert(!inst->completed);
    inst->completed = true;
    inst->executed = true;
    inst->completeCycle = now_;
    t.stats.wbWrites++;

    if (inst->dstPhys >= 0) {
        wakeDependents(regs(inst->dstClass()), inst->dstPhys);
        t.stats.rfWrites++;
    }

    // A store's data is now staged: re-disambiguate loads that waited.
    if (inst->op.isStore()) {
        scratch_loads_.clear();
        t.lsq.collectLoadsWaitingOn(inst->seq, scratch_loads_);
        for (DynInst *ld : scratch_loads_) {
            ld->waitingOnStore = false;
            ld->waitStoreSeq = kSeqNone;
            executeLoad(ld, now_);
        }
    }

    // Resolved the branch the front end was blocked on?
    if (t.fetch_blocked_on == inst->seq) {
        t.fetch_blocked_on = kSeqNone;
        t.fetch_resume_at = now_ + cfg_.redirectPenalty;
    }

    // Only predicted/actual long-latency instructions ever enter the
    // set — everything else skips the lookup.
    if (inst->predictedLL || inst->actualLL)
        t.ll_inflight.erase(inst->seq);
}

void
Core::writeback()
{
    int budget = cfg_.wbWidth;
    while (budget > 0 && !completions_.empty() &&
           completions_.top().when <= now_) {
        CompletionEv ev = completions_.top();
        completions_.pop();
        ThreadContext &t = thread(ev.tid);
        if (!eventInstValid(t, ev.seq, ev.gen))
            continue;
        completeInst(slotFor(t, ev.seq));
        budget -= 1;
    }
}

// ---------------------------------------------------------------------
// Event-driven scheduling: dependents-list wakeup + ready-list insert

/**
 * Writeback broadcast for one destination register: mark it ready and
 * wake exactly the consumers linked on it.  Stale links (squashed and
 * possibly refetched consumers) are filtered by pool generation; a
 * consumer whose last outstanding source this was moves onto the IQ
 * ready list.
 */
void
Core::wakeDependents(PhysRegFile &rf, std::int32_t phys)
{
    rf.setReady(phys);
    for (const RegDependent &d : rf.dependents(phys)) {
        DynInst *consumer = d.inst;
        if (poolGen(consumer) != d.gen || !consumer->inIq)
            continue;
        sim_assert(consumer->pendingSrcs > 0);
        consumer->pendingSrcs -= 1;
        if (consumer->pendingSrcs == 0)
            iq_.markReady(consumer);
    }
    rf.clearDependents(phys);
}

/**
 * IQ insert with wakeup subscription: count the not-yet-ready physical
 * sources and link this instruction onto each one's dependents list.
 * An instruction arriving with every source ready goes straight onto
 * the ready list.
 */
void
Core::enqueueIq(DynInst *inst, bool emergency)
{
    iq_.insert(inst, emergency);
    int pending = 0;
    for (const auto &src : inst->srcs) {
        sim_assert(!src.isLtp()); // resolved before dispatch, always
        if (src.isPhys() && !regs(src.cls).ready(src.phys)) {
            regs(src.cls).addDependent(src.phys, inst, poolGen(inst));
            pending += 1;
        }
    }
    inst->pendingSrcs = pending;
    if (pending == 0)
        iq_.markReady(inst);
}

// ---------------------------------------------------------------------
// Commit (per thread; retirement ports are per-context)

void
Core::commit(ThreadContext &t)
{
    bool learned = cfg_.ltp.classifier == ClassifierKind::Learned;
    SeqNum last_committed = kSeqNone;

    for (int i = 0; i < cfg_.commitWidth; ++i) {
        DynInst *head = t.rob.head();
        if (!head)
            break;
        if (head->inLtp) {
            // Forced unpark will handle it this cycle (Section 5.4).
            t.stats.commitStallOther++;
            break;
        }
        if (!head->completed) {
            if (head->op.isLoad())
                t.stats.commitStallLoad++;
            else
                t.stats.commitStallOther++;
            break;
        }

        // Free the previous mapping of the destination register.
        switch (head->prevMap.kind) {
          case PrevMapping::Kind::Phys:
            regs(head->dstClass()).release(head->prevMap.idx);
            break;
          case PrevMapping::Kind::Ltp: {
            std::int32_t phys = t.ltp_rat.lookup(head->prevMap.idx);
            sim_assert(phys >= 0);
            regs(head->dstClass()).release(phys);
            t.ltp_rat.release(head->prevMap.idx);
            break;
          }
          case PrevMapping::Kind::None:
            break;
        }

        // LTP learning (Section 5.2): long-latency loads seed the UIT;
        // the hit/miss predictor trains on every load outcome.
        if (head->op.isLoad() && cfg_.ltp.mode != LtpMode::Off &&
            learned) {
            t.llpred.update(head->op.pc, head->actualLL);
            if (head->actualLL)
                t.uit.insert(head->op.pc);
        }

        if (head->ownTicket >= 0) {
            t.ticket_epoch[std::size_t(head->ownTicket)] += 1;
            if (t.tickets.pending().test(head->ownTicket))
                t.ltp.onTicketCleared(head->ownTicket);
            t.tickets.release(head->ownTicket);
        }

        if (head->op.isLoad() && head->inLq)
            t.lsq.removeLoad(head);

        head->committed = true;
        t.rob.popHead();
        t.stats.committed++;
        last_committed = head->seq;
    }

    // Retirement is a prefix trim, so one call with the youngest
    // committed seq releases the whole group's trace storage.
    if (last_committed != kSeqNone)
        t.source->retire(last_committed);
}

// ---------------------------------------------------------------------
// LTP wakeup (Sections 3.2, 5.2, 5.4, Appendix A) — per thread

SeqNum
Core::nuWakeupBoundary(const ThreadContext &t) const
{
    switch (cfg_.ltp.wakeup) {
      case WakeupPolicy::Eager:
        return kSeqNone; // everything is always "in the window"
      case WakeupPolicy::Lazy:
        return 0; // nothing qualifies; forced/pressure paths only
      case WakeupPolicy::RobProximity:
        break;
    }
    // Wake everything older than the *second* long-latency instruction
    // in the ROB: when the blocking (first) one finishes, all of it can
    // retire in a burst.
    if (t.ll_inflight.size() < 2)
        return kSeqNone; // unbounded
    return t.ll_inflight.nth(1);
}

bool
Core::tryUnpark(ThreadContext &t, DynInst *inst, bool forced)
{
    if (forced ? !iq_.hasEmergencySpace() : !iq_.hasSpace())
        return false;

    // Sources produced by still-parked instructions cannot be resolved.
    std::int32_t resolved[kMaxSrcs];
    for (int i = 0; i < kMaxSrcs; ++i) {
        resolved[i] = -1;
        if (inst->srcs[i].isLtp()) {
            resolved[i] = t.ltp_rat.lookup(inst->srcs[i].ltpId);
            if (resolved[i] < 0)
                return false;
        }
    }

    std::int32_t dst = -1;
    if (inst->hasDst()) {
        dst = regs(inst->dstClass())
                  .allocate(forced ? AllocPriority::Forced
                                   : AllocPriority::Unpark);
        if (dst < 0)
            return false;
    }

    // Late LQ/SQ allocation (limit study).
    bool need_lq = cfg_.ltp.delayLqSq && inst->op.isLoad();
    bool need_sq = cfg_.ltp.delayLqSq && inst->op.isStore();
    if ((need_lq && !t.lsq.lqHasSpace(true)) ||
        (need_sq && !t.lsq.sqHasSpace(true))) {
        if (dst >= 0)
            regs(inst->dstClass()).release(dst);
        return false;
    }

    // ---- commit the unpark ----
    for (int i = 0; i < kMaxSrcs; ++i) {
        if (inst->srcs[i].isLtp()) {
            inst->srcs[i].phys = resolved[i];
            inst->srcs[i].ltpId = -1;
        }
    }
    if (dst >= 0) {
        inst->dstPhys = dst;
        t.ltp_rat.resolve(inst->ltpId, dst);
        // If no younger writer renamed the register since, clear the
        // Parked bit so future consumers need not park.  The mapping
        // itself stays Ltp(id): readSrc() resolves it through RAT_LTP,
        // and the id is released when the next writer commits — the
        // same lifetime as the physical register it now names.
        RatEntry &e = t.rat[inst->op.dst];
        if (e.map.kind == PrevMapping::Kind::Ltp &&
            e.map.idx == inst->ltpId)
            e.parked = false;
    }
    if (need_lq)
        t.lsq.insertLoad(inst);
    if (need_sq) {
        t.lsq.removeShadowStore(inst);
        t.lsq.insertStore(inst);
    }

    enqueueIq(inst, forced && !iq_.hasSpace());
    inst->earliestIssue = now_ + 1;
    inst->unparkCycle = now_;
    t.stats.unparked++;
    return true;
}

void
Core::ltpWakeup(ThreadContext &t)
{
    if (cfg_.ltp.mode == LtpMode::Off || t.ltp.empty())
        return;

    // 1) Forced: a parked ROB head must leave immediately or nothing
    //    can ever commit again (Section 5.4).
    DynInst *head = t.rob.head();
    if (head && head->inLtp) {
        sim_assert(t.ltp.front() == head);
        if (t.ltp.canExtract() && tryUnpark(t, head, /*forced=*/true)) {
            t.ltp.popFront();
            t.stats.forcedUnparks++;
        }
    }

    // Everything below unparks with forced=false, which requires
    // regular IQ space — with none, every attempt fails without side
    // effects, so skip the selection work outright.
    if (!iq_.hasSpace()) {
        t.rename_pressure = false;
        return;
    }

    // 2) Pressure: rename starved for a committed-freed resource last
    //    cycle; draining the oldest parked instruction frees resources
    //    at its commit.
    if (t.rename_pressure && !t.ltp.empty() && t.ltp.canExtract()) {
        DynInst *front = t.ltp.front();
        if (tryUnpark(t, front, /*forced=*/false)) {
            t.ltp.popFront();
            t.stats.pressureUnparks++;
        }
    }
    t.rename_pressure = false;

    // 3) Policy wakeup.
    SeqNum boundary = nuWakeupBoundary(t);
    LtpMode mode = cfg_.ltp.mode;

    if (mode == LtpMode::NU) {
        // Strict FIFO: eligibility is monotone in seq, so head-only
        // extraction loses nothing.
        while (t.ltp.canExtract() && !t.ltp.empty()) {
            DynInst *front = t.ltp.front();
            if (boundary != kSeqNone && front->seq >= boundary)
                break;
            if (!tryUnpark(t, front, false))
                break;
            t.ltp.popFront();
            t.stats.boundaryUnparks++;
        }
        return;
    }

    // NR and NR+NU: CAM-style extraction, oldest first.  Eligibility
    // decomposes onto the queue's two ticket-clear ready lists:
    //
    //   NR:   eligible = tickets clear                (window ignored)
    //   NRNU: urgent     → tickets clear
    //         non-urgent → tickets clear && in window
    //
    // (A parked instruction that was not Non-Ready has an empty ticket
    // mask, so "tickets clear" holds trivially — the old per-entry
    // scan's NU+R case folds into the non-urgent list.)  Candidates
    // come from a seq-ordered merge of the two lists, bounded by the
    // extract ports; the non-urgent side stops at the wakeup boundary
    // since its list is seq-ordered too.
    scratch_select_.clear();
    auto &selected = scratch_select_;
    if (t.ltp.canExtract()) {
        DynInst *u = t.ltp.urgentReadyFront();
        DynInst *r = t.ltp.nonUrgentReadyFront();
        while (static_cast<int>(selected.size()) < cfg_.ltp.extractPorts) {
            if (mode == LtpMode::NRNU && r && boundary != kSeqNone &&
                r->seq >= boundary)
                r = nullptr;
            if (u && (!r || u->seq < r->seq)) {
                selected.push_back(u);
                u = LtpQueue::readyNext(u);
            } else if (r) {
                selected.push_back(r);
                r = LtpQueue::readyNext(r);
            } else {
                break;
            }
        }
    }
    for (DynInst *inst : selected) {
        if (!t.ltp.canExtract())
            break;
        if (tryUnpark(t, inst, false)) {
            t.ltp.remove(inst);
            // Selected instructions have clear tickets by construction;
            // the old scan's ticket/boundary attribution reduces to the
            // Non-Ready classification.
            if (inst->nonReady)
                t.stats.ticketUnparks++;
            else
                t.stats.boundaryUnparks++;
        }
    }
}

// ---------------------------------------------------------------------
// Rename / dispatch

SrcRef
Core::readSrc(const ThreadContext &t, RegId reg) const
{
    const RatEntry &e = t.rat[reg];
    SrcRef ref;
    ref.cls = reg.regClass();
    switch (e.map.kind) {
      case PrevMapping::Kind::None:
        break; // architectural base copy: always ready
      case PrevMapping::Kind::Phys:
        ref.phys = e.map.idx;
        break;
      case PrevMapping::Kind::Ltp: {
        // The producer may have unparked without repointing the RAT
        // (a younger writer took over the mapping cannot happen here —
        // this *is* the current mapping), resolve eagerly if possible.
        std::int32_t phys = t.ltp_rat.lookup(e.map.idx);
        if (phys >= 0)
            ref.phys = phys;
        else
            ref.ltpId = e.map.idx;
        break;
      }
    }
    return ref;
}

Core::Classification
Core::classify(ThreadContext &t, DynInst *inst)
{
    Classification c;
    const MicroOp &op = inst->op;
    bool on = ltpOn(t);

    // Table lookups happen once per instruction (when its group first
    // reaches rename); stall retries reuse the memoized answer.
    if (!inst->classified) {
        if (cfg_.ltp.classifier == ClassifierKind::Oracle) {
            inst->urgent = t.oracle->urgent(inst->seq);
            inst->predictedLL = t.oracle->longLatency(inst->seq);
            inst->classified = true;
        } else if (on) {
            inst->urgent = t.uit.lookup(op.pc);
            // The hit/miss prediction also feeds the ROB long-latency
            // tracking the Non-Urgent wakeup boundary needs, so it runs
            // in every LTP mode.
            if (op.isLoad())
                inst->predictedLL = t.llpred.predictLong(op.pc);
            inst->classified = true;
        } else {
            // LTP powered off: nothing parks, so skip the lookups and
            // treat the instruction as urgent *without* memoizing —
            // a placeholder must never feed backward propagation.
            inst->urgent = true;
        }
        if (isFixedLongLat(op.opc))
            inst->predictedLL = true;
        if (inst->classified && inst->urgent)
            t.stats.classUrgent++;
    }
    c.urgent = inst->urgent;
    c.predictedLL = inst->predictedLL;

    // Ticket inheritance: union of live source tickets (Appendix A).
    // Recomputed on retries — tickets may have cleared while stalled.
    for (const auto &src : op.srcs)
        if (src.valid())
            c.tickets.orWith(t.rat[src].tickets);
    c.tickets = t.tickets.liveSubset(c.tickets);
    c.nonReady = c.tickets.any();

    switch (cfg_.ltp.mode) {
      case LtpMode::Off:
        c.parkEligible = false;
        break;
      case LtpMode::NU:
        c.parkEligible = !c.urgent;
        break;
      case LtpMode::NR:
        c.parkEligible = c.nonReady;
        break;
      case LtpMode::NRNU:
        c.parkEligible = !c.urgent || c.nonReady;
        break;
    }
    return c;
}

bool
Core::renameOne(ThreadContext &t, DynInst *inst)
{
    const MicroOp &op = inst->op;
    t.rename_stall_commit_freed = false;

    // A ROB-full stall is *not* a pressure trigger: parked instructions
    // keep their ROB entries (Section 3), so draining the LTP cannot
    // free ROB space — the forced unpark of a parked ROB head is the
    // rule that guarantees progress there.
    if (t.rob.full()) {
        t.stats.renameStallRob++;
        return false;
    }

    Classification cls = classify(t, inst);

    bool src_parked = false;
    for (const auto &src : op.srcs)
        if (src.valid() && t.rat[src].parked)
            src_parked = true;

    bool on = ltpOn(t);
    bool must_park = src_parked; // no physical source to wait on
    bool park = must_park || (on && cls.parkEligible);
    if (!on && cls.parkEligible)
        t.stats.parkSkippedOff++;

    if (park) {
        bool ltp_ok = t.ltp.canInsert() &&
                      (!inst->hasDst() || t.ltp_rat.availableCount() > 0);
        if (!ltp_ok) {
            if (must_park) {
                t.stats.renameStallLtp++;
                t.ltp.fullStalls++;
                t.rename_stall_commit_freed = true;
                return false;
            }
            park = false;
        }
    }

    if (!park) {
        if (!iq_.hasSpace()) {
            t.stats.renameStallIq++;
            return false;
        }
        if (inst->hasDst() &&
            regs(inst->dstClass()).freeFor(AllocPriority::Rename) <= 0) {
            t.stats.renameStallRegs++;
            return false;
        }
    }

    bool delay = cfg_.ltp.delayLqSq;
    bool need_lq = op.isLoad() && !(park && delay);
    bool need_sq = op.isStore() && !(park && delay);
    if (need_lq && !t.lsq.lqHasSpace(false)) {
        t.stats.renameStallLq++;
        return false;
    }
    if (need_sq && !t.lsq.sqHasSpace(false)) {
        t.stats.renameStallSq++;
        return false;
    }

    // ---- all checks passed: perform the rename ----
    inst->nonReady = cls.nonReady;
    inst->tickets = cls.tickets;
    if (cls.nonReady)
        t.stats.classNonReady++;

    // Read sources (and their producer PCs) before touching the RAT:
    // an instruction may read and write the same architectural register.
    Addr producer_pcs[kMaxSrcs] = {0, 0, 0};
    for (int i = 0; i < kMaxSrcs; ++i) {
        if (op.srcs[i].valid()) {
            inst->srcs[i] = readSrc(t, op.srcs[i]);
            producer_pcs[i] = t.rat[op.srcs[i]].producerPc;
        }
    }

    // Backward urgency propagation (Section 5.2, step 2).
    if (cfg_.ltp.classifier == ClassifierKind::Learned && cls.urgent &&
        on) {
        for (Addr ppc : producer_pcs)
            if (ppc != 0)
                t.uit.insert(ppc);
    }

    // Own ticket for predicted long-latency instructions.
    bool tickets_enabled = cfg_.ltp.mode == LtpMode::NR ||
                           cfg_.ltp.mode == LtpMode::NRNU;
    TicketMask dst_tickets = cls.tickets;
    if (tickets_enabled && cls.predictedLL) {
        int ticket = t.tickets.allocate();
        if (ticket >= 0) {
            t.ticket_epoch[std::size_t(ticket)] += 1;
            inst->ownTicket = ticket;
            // The reused id's pending bit is set again: any still-
            // parked subscriber from a previous life of this ticket is
            // re-blocked until the new owner clears it.
            t.ltp.onTicketPending(ticket);
            dst_tickets.reset();
            dst_tickets.set(ticket);
        }
    }

    // Destination rename.
    if (inst->hasDst()) {
        RatEntry &e = t.rat[op.dst];
        inst->prevMap = e.map;
        inst->prevProducerPc = e.producerPc;
        inst->prevParkedBit = e.parked;
        inst->prevTickets = e.tickets;

        if (park) {
            inst->ltpId = t.ltp_rat.allocate();
            sim_assert(inst->ltpId >= 0);
            e.map = PrevMapping{PrevMapping::Kind::Ltp, inst->ltpId};
            e.parked = true;
        } else {
            inst->dstPhys =
                regs(inst->dstClass()).allocate(AllocPriority::Rename);
            sim_assert(inst->dstPhys >= 0);
            e.map = PrevMapping{PrevMapping::Kind::Phys, inst->dstPhys};
            e.parked = false;
        }
        e.producerPc = op.pc;
        e.tickets = dst_tickets;
    }

    t.rob.push(inst);
    if (need_lq)
        t.lsq.insertLoad(inst);
    if (need_sq)
        t.lsq.insertStore(inst);
    if (park && delay && op.isStore())
        t.lsq.addShadowStore(inst);

    if (park) {
        t.ltp.push(inst);
        inst->parked = true;
        t.stats.parked++;
    } else {
        enqueueIq(inst, false);
    }

    if (inst->predictedLL)
        t.ll_inflight.insert(inst->seq);

    inst->dispatched = true;
    inst->renameCycle = now_;
    inst->earliestIssue = now_ + 1;
    return true;
}

/**
 * Thread visit order for this cycle's front-end arbitration.  A
 * single-threaded core always yields {0}; round-robin rotates the
 * starting thread every cycle; ICOUNT sorts by front-end + IQ
 * occupancy (fewest first, ties to the lower tid) so window hogs
 * yield bandwidth.
 */
const std::vector<int> &
Core::threadOrder()
{
    int n = numThreads();
    scratch_order_.clear();
    if (n == 1 || cfg_.fetchPolicy == FetchPolicy::RoundRobin) {
        int idx = n == 1 ? 0 : static_cast<int>(now_ % Cycle(n));
        for (int i = 0; i < n; ++i) {
            scratch_order_.push_back(idx);
            idx += 1;
            if (idx == n)
                idx = 0;
        }
        return scratch_order_;
    }
    for (int i = 0; i < n; ++i)
        scratch_order_.push_back(i);
    auto icount = [&](int tid) {
        return static_cast<int>(thread(tid).front_queue.size()) +
               iq_.sizeOf(tid);
    };
    std::stable_sort(scratch_order_.begin(), scratch_order_.end(),
                     [&](int a, int b) { return icount(a) < icount(b); });
    return scratch_order_;
}

void
Core::renameThread(ThreadContext &t, int &budget)
{
    while (budget > 0 && !t.front_queue.empty()) {
        ThreadContext::FrontEntry &fe = t.front_queue.front();
        if (fe.readyAt > now_)
            break;
        if (!renameOne(t, fe.inst)) {
            // Commit-freed resource stall: nudge the LTP to drain so
            // the oldest parked instruction can commit (Section 5.4).
            if (t.rename_stall_commit_freed && !t.ltp.empty())
                t.rename_pressure = true;
            break;
        }
        t.front_queue.pop_front();
        budget -= 1;
        t.stats.renamed++;
    }
}

void
Core::rename()
{
    // The rename width is shared: threads are offered the remaining
    // budget in policy order, so a stalled thread's leftover bandwidth
    // flows to the next context instead of idling.
    int budget = cfg_.renameWidth;
    if (threads_.size() == 1) {
        renameThread(*threads_[0], budget);
        return;
    }
    for (int tid : threadOrder()) {
        if (budget <= 0)
            break;
        renameThread(thread(tid), budget);
    }
}

// ---------------------------------------------------------------------
// Execute

bool
Core::srcsReady(const DynInst *inst) const
{
    for (const auto &src : inst->srcs) {
        if (src.isLtp())
            panic("unresolved LTP source in the IQ (seq %llu)",
                  static_cast<unsigned long long>(inst->seq));
        if (src.isPhys() && !regs(src.cls).ready(src.phys))
            return false;
    }
    return true;
}

void
Core::executeLoad(DynInst *inst, Cycle now)
{
    ThreadContext &t = threadOf(inst);
    DynInst *conflict = t.lsq.olderStoreConflict(inst);
    if (conflict && !conflict->executed) {
        // Exact-address (oracle) disambiguation: wait for the store's
        // data instead of speculating and squashing.
        inst->waitingOnStore = true;
        inst->waitStoreSeq = conflict->seq;
        return;
    }
    if (conflict) {
        // Store-to-load forwarding out of the SQ.
        t.lsq.forwards++;
        inst->memLevel = HitLevel::L1;
        Cycle ready = now + mem_.l1d().hitLatency();
        scheduleCompletion(inst, ready);
        if (inst->ownTicket >= 0)
            scheduleTicketClear(t, inst->ownTicket, ready);
        return;
    }

    auto res = mem_.access(inst->op.pc + t.mem_base,
                           inst->op.effAddr + t.mem_base, false, now);
    if (!res) {
        retry_events_.push(
            RetryEv{now + 1, inst->seq, poolGen(inst), inst->tid});
        return;
    }
    inst->memLevel = res->level;
    inst->actualLL = mem_.isLongLatency(*res, now);
    if (inst->actualLL)
        t.ll_inflight.insert(inst->seq);
    if (res->level == HitLevel::Dram)
        t.monitor.onDramDemandMiss(now);
    scheduleCompletion(inst, res->dataReady);
    if (inst->ownTicket >= 0)
        scheduleTicketClear(t, inst->ownTicket, res->earlyWakeup);
}

void
Core::execute()
{
    // Load retries first (they were selected in an earlier cycle).
    while (!retry_events_.empty() && retry_events_.top().when <= now_) {
        RetryEv ev = retry_events_.top();
        retry_events_.pop();
        ThreadContext &t = thread(ev.tid);
        if (!eventInstValid(t, ev.seq, ev.gen))
            continue;
        DynInst *inst = slotFor(t, ev.seq);
        if (!inst->completed && !inst->waitingOnStore)
            executeLoad(inst, now_);
    }

    // Select walks only the ready list (oldest first across threads) —
    // readiness was established by the dependents-list wakeup at
    // writeback, so the per-cycle srcsReady poll over the whole window
    // is gone.
    int budget = cfg_.issueWidth;
    scratch_select_.clear();
    auto &selected = scratch_select_;
    iq_.forEachReady([&](DynInst *inst) {
        if (inst->earliestIssue > now_)
            return true;
        if (!fu_.canIssue(inst->op.opc, now_))
            return true;
        fu_.issue(inst->op.opc, now_);
        selected.push_back(inst);
        budget -= 1;
        return budget > 0;
    });

    for (DynInst *inst : selected) {
        ThreadContext &t = threadOf(inst);
        iq_.remove(inst);
        inst->issued = true;
        inst->issueCycle = now_;
        t.stats.iqIssued++;
        for (const auto &src : inst->srcs)
            if (src.isPhys())
                t.stats.rfReads++;

        const MicroOp &op = inst->op;
        if (op.isLoad()) {
            t.stats.loadsExecuted++;
            executeLoad(inst, now_);
        } else if (op.isStore()) {
            t.stats.storesExecuted++;
            scheduleCompletion(inst, now_ + 1);
        } else {
            int lat = opInfo(op.opc).latency;
            Cycle done = now_ + lat;
            scheduleCompletion(inst, done);
            if (inst->ownTicket >= 0) {
                Cycle lead = std::min<Cycle>(done - now_, 8);
                scheduleTicketClear(t, inst->ownTicket, done - lead);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Store drain (post-commit, per thread)

void
Core::drainStores(ThreadContext &t)
{
    for (int i = 0; i < cfg_.sqDrainWidth; ++i) {
        DynInst *st = t.lsq.oldestDrainableStore();
        if (!st)
            break;
        auto res = mem_.access(st->op.pc + t.mem_base,
                               st->op.effAddr + t.mem_base, true, now_);
        if (!res)
            break; // MSHRs full: retry next cycle
        t.lsq.removeStore(st);
    }
}

// ---------------------------------------------------------------------
// Fetch

bool
Core::fetchEligible(const ThreadContext &t) const
{
    return t.fetch_enabled && t.fetch_blocked_on == kSeqNone &&
           now_ >= t.fetch_resume_at &&
           static_cast<int>(t.front_queue.size()) < cfg_.fetchQueueCap;
}

void
Core::fetchThread(ThreadContext &t)
{
    int budget = cfg_.fetchWidth;
    while (budget > 0 &&
           static_cast<int>(t.front_queue.size()) < cfg_.fetchQueueCap) {
        MicroOp op = t.source->fetch(t.next_fetch_seq);

        MemAccessResult fr = mem_.fetchAccess(op.pc + t.mem_base, now_);
        if (fr.dataReady > now_ + mem_.l1i().hitLatency()) {
            t.fetch_resume_at = fr.dataReady; // I-cache miss
            break;
        }

        DynInst *inst = allocInst(t, op, t.next_fetch_seq);
        t.next_fetch_seq += 1;
        t.stats.fetched++;

        bool fetch_break = false;
        if (op.isBranch()) {
            bool correct = t.bpred.predict(op.pc, op.taken, op.target);
            if (!correct) {
                inst->mispredicted = true;
                t.fetch_blocked_on = inst->seq;
                fetch_break = true;
            } else if (op.taken) {
                fetch_break = true; // taken branch ends the fetch group
            }
        }

        t.front_queue.push_back(
            ThreadContext::FrontEntry{inst, now_ + cfg_.frontendDepth});
        budget -= 1;
        if (fetch_break)
            break;
    }
}

void
Core::fetch()
{
    // Coarse-grained front-end multiplexing: one thread owns the whole
    // fetch engine each cycle (the policy picks which); a thread that
    // cannot fetch at all — redirecting, I-miss stalled, queue full —
    // yields the slot to the next one in order.
    if (threads_.size() == 1) {
        ThreadContext &t = *threads_[0];
        if (fetchEligible(t))
            fetchThread(t);
        return;
    }
    for (int tid : threadOrder()) {
        ThreadContext &t = thread(tid);
        if (!fetchEligible(t))
            continue;
        fetchThread(t);
        break;
    }
}

// ---------------------------------------------------------------------
// Squash (memory-order violations; exercised by the store-set mode and
// by tests — the default oracle disambiguation never violates).
// Squashes are a per-thread event: only thread @p tid's window rewinds.

void
Core::squashAfter(SeqNum keep, int tid)
{
    ThreadContext &t = thread(tid);
    t.stats.squashes++;

    t.rob.squashYoungerThan(keep, [&](DynInst *inst) {
        if (inst->hasDst()) {
            RatEntry &e = t.rat[inst->op.dst];
            e.map = inst->prevMap;
            e.producerPc = inst->prevProducerPc;
            e.parked = inst->prevParkedBit;
            e.tickets = inst->prevTickets;
            if (inst->dstPhys >= 0)
                regs(inst->dstClass()).release(inst->dstPhys);
            if (inst->ltpId >= 0)
                t.ltp_rat.release(inst->ltpId);
        }
        if (inst->ownTicket >= 0) {
            t.ticket_epoch[std::size_t(inst->ownTicket)] += 1;
            if (t.tickets.pending().test(inst->ownTicket))
                t.ltp.onTicketCleared(inst->ownTicket);
            t.tickets.release(inst->ownTicket);
        }
        if (inst->predictedLL || inst->actualLL)
            t.ll_inflight.erase(inst->seq);
        inst->squashed = true;
    });

    iq_.squashYoungerThan(keep, tid);
    t.lsq.squashYoungerThan(keep);
    t.ltp.squashYoungerThan(keep);

    while (!t.front_queue.empty() &&
           t.front_queue.back().inst->seq > keep) {
        t.front_queue.back().inst->squashed = true;
        t.front_queue.pop_back();
    }

    if (t.next_fetch_seq > keep + 1)
        t.next_fetch_seq = keep + 1;

    if (t.fetch_blocked_on != kSeqNone && t.fetch_blocked_on > keep) {
        t.fetch_blocked_on = kSeqNone;
        t.fetch_resume_at = now_ + cfg_.redirectPenalty;
    }
}

// ---------------------------------------------------------------------
// Top level

const char *
TickProfile::stageName(int s)
{
    switch (s) {
      case BeginCycle: return "beginCycle";
      case TicketEvents: return "ticketEvents";
      case Writeback: return "writeback";
      case Commit: return "commit";
      case LtpWakeup: return "ltpWakeup";
      case Rename: return "rename";
      case Execute: return "execute";
      case DrainStores: return "drainStores";
      case Fetch: return "fetch";
      case Monitor: return "monitor";
    }
    return "?";
}

void
Core::tick()
{
    if (profile_) {
        tickProfiled();
        return;
    }

    // FU issue counts and LTP port budgets replenish lazily off the
    // advanced cycle stamp — no begin-of-cycle pass at all.
    now_ += 1;

    processTicketEvents();
    writeback();
    for (auto &t : threads_)
        commit(*t);
    for (auto &t : threads_)
        ltpWakeup(*t);
    rename();
    execute();
    for (auto &t : threads_)
        drainStores(*t);
    fetch();
}

/**
 * The profiled twin of tick(): identical stage sequence, with a
 * steady_clock sample between stages accumulating into the attached
 * TickProfile.  A separate function (rather than inline conditionals)
 * keeps the unprofiled hot loop free of clock reads entirely.
 */
void
Core::tickProfiled()
{
    using Clock = std::chrono::steady_clock;
    TickProfile &p = *profile_;
    Clock::time_point mark = Clock::now();
    auto lap = [&mark, &p](TickProfile::Stage s) {
        Clock::time_point t = Clock::now();
        p.ns[s] += std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t - mark)
                .count());
        mark = t;
    };

    now_ += 1;
    lap(TickProfile::BeginCycle);

    processTicketEvents();
    lap(TickProfile::TicketEvents);
    writeback();
    lap(TickProfile::Writeback);
    for (auto &t : threads_)
        commit(*t);
    lap(TickProfile::Commit);
    for (auto &t : threads_)
        ltpWakeup(*t);
    lap(TickProfile::LtpWakeup);
    rename();
    lap(TickProfile::Rename);
    execute();
    lap(TickProfile::Execute);
    for (auto &t : threads_)
        drainStores(*t);
    lap(TickProfile::DrainStores);
    fetch();
    lap(TickProfile::Fetch);
    // Monitor bookkeeping went event-driven (LtpMonitor::settle); the
    // stage slot stays so archived profiles keep a stable schema.
    p.ticks += 1;
}

namespace {

/** Commit-progress watchdog shared by every run loop. */
constexpr Cycle kNoProgressWindow = 200000;

[[noreturn]] void
panicNoProgress(Cycle now, std::uint64_t committed)
{
    panic("no commit progress for 200k cycles at cycle %llu "
          "(likely deadlock; %llu committed)",
          static_cast<unsigned long long>(now),
          static_cast<unsigned long long>(committed));
}

} // namespace

void
Core::runUntilCommitted(std::uint64_t n, Cycle max_cycles,
                        const TickHook &on_tick)
{
    // Single-threaded fast path: one counter, read straight off the
    // context — this is the whole-simulation driver loop, so it must
    // not pay per-thread aggregation (or an indirect hook call) on
    // every tick.
    if (threads_.size() == 1 && !on_tick) {
        const Counter &committed = threads_[0]->stats.committed;
        std::uint64_t last_committed = committed.value();
        Cycle last_progress = now_;
        while (committed.value() < n) {
            tick();
            if (committed.value() != last_committed) {
                last_committed = committed.value();
                last_progress = now_;
            }
            if (now_ - last_progress > kNoProgressWindow)
                panicNoProgress(now_, last_committed);
            if (now_ >= max_cycles)
                break;
        }
        return;
    }

    auto leastCommitted = [&] {
        std::uint64_t least = thread(0).stats.committed.value();
        for (const auto &t : threads_)
            least = std::min(least, t->stats.committed.value());
        return least;
    };
    auto totalCommitted = [&] {
        std::uint64_t total = 0;
        for (const auto &t : threads_)
            total += t->stats.committed.value();
        return total;
    };

    std::uint64_t last_committed = totalCommitted();
    Cycle last_progress = now_;
    while (leastCommitted() < n) {
        tick();
        if (on_tick)
            on_tick();
        if (totalCommitted() != last_committed) {
            last_committed = totalCommitted();
            last_progress = now_;
        }
        if (now_ - last_progress > kNoProgressWindow)
            panicNoProgress(now_, last_committed);
        if (now_ >= max_cycles)
            break;
    }
}

void
Core::setFetchEnabled(int tid, bool on)
{
    thread(tid).fetch_enabled = on;
}

void
Core::drain()
{
    for (auto &t : threads_)
        t->fetch_enabled = false;
    auto windowEmpty = [&] {
        for (const auto &t : threads_)
            if (!t->rob.empty() || !t->front_queue.empty())
                return false;
        return true;
    };
    Cycle start = now_;
    while (!windowEmpty()) {
        tick();
        if (now_ - start > 500000)
            panic("drain did not converge");
    }
    for (auto &t : threads_)
        t->fetch_enabled = true;
}

/**
 * Point every core-structure occupancy stat at the core clock, so the
 * untimed mutators integrate lazily on change (see OccupancyStat's
 * clocked style) and quiet cycles cost nothing — there is no per-cycle
 * advance pass in tick().
 */
void
Core::bindOccupancyClocks()
{
    iq_.occupancy.bindClock(&now_);
    for (auto &tp : threads_) {
        ThreadContext &t = *tp;
        t.rob.occupancy.bindClock(&now_);
        t.lsq.lqOccupancy.bindClock(&now_);
        t.lsq.sqOccupancy.bindClock(&now_);
        t.ltp.bindClock(&now_); // lazy port replenishment
        t.ltp.occupancy.bindClock(&now_);
        t.ltp.parkedWithDest.bindClock(&now_);
        t.ltp.parkedLoads.bindClock(&now_);
        t.ltp.parkedStores.bindClock(&now_);
    }
    int_regs_.occupancy.bindClock(&now_);
    fp_regs_.occupancy.bindClock(&now_);
}

void
Core::resetStats()
{
    iq_.inserts.reset();
    iq_.occupancy.reset(now_);
    int_regs_.resetStats(now_);
    fp_regs_.resetStats(now_);
    for (auto &tp : threads_) {
        ThreadContext &t = *tp;
        t.stats.reset();
        t.rob.occupancy.reset(now_);
        t.lsq.lqOccupancy.reset(now_);
        t.lsq.sqOccupancy.reset(now_);
        t.lsq.forwards.reset();
        t.ltp.resetStats(now_);
        t.uit.resetStats();
        t.llpred.resetStats();
        t.tickets.resetStats();
        t.monitor.resetStats(now_);
        t.bpred.lookups.reset();
        t.bpred.mispredicts.reset();
    }
}

} // namespace ltp
