#include "cpu/branch_pred.hh"

#include "common/logging.hh"

namespace ltp {

BranchPredictor::BranchPredictor(int table_bits, int btb_entries)
    : counters_(std::size_t(1) << table_bits, 1),
      btb_(btb_entries),
      table_bits_(table_bits)
{
    sim_assert(table_bits > 0 && table_bits < 28 && btb_entries > 0);
}

std::size_t
BranchPredictor::index(Addr pc) const
{
    std::uint64_t mask = (std::uint64_t(1) << table_bits_) - 1;
    return ((pc >> 2) ^ history_) & mask;
}

bool
BranchPredictor::predict(Addr pc, bool actual_taken, Addr actual_target)
{
    lookups++;
    std::size_t idx = index(pc);
    bool pred_taken = counters_[idx] >= 2;

    bool correct = pred_taken == actual_taken;
    if (correct && actual_taken) {
        // Direction right, but the front end also needs the target.
        const BtbEntry &e = btb_[(pc >> 2) % btb_.size()];
        if (!e.valid || e.pc != pc || e.target != actual_target)
            correct = false;
    }
    if (!correct)
        mispredicts++;

    // Train the entry that produced the prediction.  Training at
    // prediction time (rather than at resolve) is exact here because
    // the trace carries the correct-path outcome; the timing of the
    // *penalty* is what the core models.
    trainEntry(idx, pc, actual_taken, actual_target);

    // Trace-driven: history tracks the actual (correct-path) outcome.
    history_ = (history_ << 1) | (actual_taken ? 1 : 0);
    return correct;
}

void
BranchPredictor::trainEntry(std::size_t idx, Addr pc, bool taken,
                            Addr target)
{
    std::uint8_t &ctr = counters_[idx];
    if (taken) {
        if (ctr < 3)
            ctr++;
    } else {
        if (ctr > 0)
            ctr--;
    }
    if (taken) {
        BtbEntry &e = btb_[(pc >> 2) % btb_.size()];
        e.pc = pc;
        e.target = target;
        e.valid = true;
    }
}

void
BranchPredictor::update(Addr pc, bool taken, Addr target)
{
    trainEntry(index(pc), pc, taken, target);
}

BranchPredictor::Image
BranchPredictor::image() const
{
    Image img;
    img.tableBits = table_bits_;
    img.history = history_;
    img.counters = counters_;
    img.btb = btb_;
    return img;
}

void
BranchPredictor::restore(const Image &img)
{
    sim_assert(img.tableBits == table_bits_);
    sim_assert(img.counters.size() == counters_.size());
    sim_assert(img.btb.size() == btb_.size());
    history_ = img.history;
    counters_ = img.counters;
    btb_ = img.btb;
}

double
BranchPredictor::accuracy() const
{
    return lookups.value()
               ? 1.0 - double(mispredicts.value()) / lookups.value()
               : 1.0;
}

} // namespace ltp
