#include "cpu/exec.hh"

#include "common/logging.hh"

namespace ltp {

FuPool::FuPool(const FuConfig &cfg)
{
    auto init = [this](Group g, int units) {
        sim_assert(units > 0);
        groups_[g].busyUntil.assign(units, 0);
    };
    init(kAlu, cfg.alu);
    init(kMul, cfg.mul);
    init(kFp, cfg.fp);
    init(kLd, cfg.ld);
    init(kSt, cfg.st);
}

FuPool::Group
FuPool::groupOf(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Nop:
        return kAlu;
      case OpClass::IntMul:
      case OpClass::IntDiv:
        return kMul;
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        return kFp;
      case OpClass::Load:
        return kLd;
      case OpClass::Store:
        return kSt;
      default:
        panic("unknown op class %d", static_cast<int>(c));
    }
}

bool
FuPool::canIssue(OpClass c, Cycle now) const
{
    const GroupState &g = groups_[groupOf(c)];
    // The per-cycle issue count resets implicitly when the cycle moves
    // on (stale stamp), so no per-cycle begin pass is needed.
    int issued = g.stamp == now ? g.issuedThisCycle : 0;
    if (issued >= static_cast<int>(g.busyUntil.size()))
        return false;
    for (Cycle busy : g.busyUntil)
        if (busy <= now)
            return true;
    return false;
}

int
FuPool::issue(OpClass c, Cycle now)
{
    GroupState &g = groups_[groupOf(c)];
    if (g.stamp != now) {
        g.stamp = now;
        g.issuedThisCycle = 0;
    }
    const OpClassInfo &info = opInfo(c);
    for (Cycle &busy : g.busyUntil) {
        if (busy <= now) {
            g.issuedThisCycle += 1;
            if (!info.pipelined)
                busy = now + info.latency;
            return info.latency;
        }
    }
    panic("FuPool::issue without canIssue");
}

} // namespace ltp
