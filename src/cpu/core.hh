/**
 * @file
 * The out-of-order core with integrated Long Term Parking.
 *
 * A cycle-driven model of the Table 1 machine: 8-wide fetch/decode/
 * rename, 6-wide issue, 8-wide writeback/commit, ROB 256, IQ 64, LQ 64,
 * SQ 32, 128 INT + 128 FP rename registers, gshare+BTB front end,
 * backed by the src/mem hierarchy.
 *
 * LTP integration points (Figure 8):
 *  - rename: UIT/oracle classification, parked-bit and ticket
 *    propagation, park decision, LTP-id allocation;
 *  - a wakeup stage ahead of rename (LTP-first register priority):
 *    forced unpark of a parked ROB head, ROB-proximity Non-Urgent
 *    wakeup, ticket-cleared Non-Ready wakeup;
 *  - execute: long-latency detection, early-wakeup ticket clears,
 *    DRAM-monitor arming;
 *  - commit: UIT seeding from committed long-latency loads, hit/miss
 *    predictor training, register/LTP-id freeing.
 */

#ifndef LTP_CPU_CORE_HH
#define LTP_CPU_CORE_HH

#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "common/ring.hh"
#include "common/stats.hh"
#include "cpu/branch_pred.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/exec.hh"
#include "cpu/iq.hh"
#include "cpu/lsq.hh"
#include "cpu/regfile.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "ltp/llpred.hh"
#include "ltp/ltp_queue.hh"
#include "ltp/monitor.hh"
#include "ltp/oracle.hh"
#include "ltp/tickets.hh"
#include "ltp/uit.hh"
#include "mem/mem_system.hh"

namespace ltp {

/** Which instruction classes LTP parks (Figure 6 curves). */
enum class LtpMode { Off, NU, NR, NRNU };

const char *ltpModeName(LtpMode mode);

/** Classification source: learned hardware tables vs. the oracle. */
enum class ClassifierKind { Learned, Oracle };

/**
 * Non-Urgent wakeup policy (ablation of the Section 3.2 design choice):
 *  - RobProximity: the paper's policy — wake between the ROB head and
 *    the second long-latency instruction.
 *  - Eager: wake as soon as ports allow (parking barely holds).
 *  - Lazy: only the deadlock machinery wakes instructions (forced head
 *    unpark + resource pressure).
 */
enum class WakeupPolicy { RobProximity, Eager, Lazy };

/** LTP-specific configuration. */
struct LtpConfig
{
    LtpMode mode = LtpMode::Off;
    ClassifierKind classifier = ClassifierKind::Learned;
    int entries = 128;      ///< LTP queue capacity (Fig 10 sweep)
    int insertPorts = 4;    ///< parks per cycle (Fig 10 sweep)
    int extractPorts = 4;   ///< wakeups per cycle (Fig 10 sweep)
    int uitEntries = 256;   ///< Section 5.6
    int uitAssoc = 4;
    int numTickets = 64;    ///< Appendix A / Fig 11 sweep
    bool useMonitor = true; ///< DRAM-timer power gating (Section 5.2)
    WakeupPolicy wakeup = WakeupPolicy::RobProximity;
    bool delayLqSq = false; ///< limit-study late LQ/SQ allocation
    int reservedRegs = 8;   ///< Section 5.4 deadlock reserve
    int reservedLqSq = 4;   ///< only meaningful with delayLqSq
};

/** Full core configuration (defaults = Table 1 baseline). */
struct CoreConfig
{
    int fetchWidth = 8;
    int decodeWidth = 8;
    int renameWidth = 8;
    int issueWidth = 6;
    int wbWidth = 8;
    int commitWidth = 8;

    int robSize = 256;
    int iqSize = 64;
    int lqSize = 64;
    int sqSize = 32;
    int intRegs = 128; ///< available (renameable) registers
    int fpRegs = 128;

    int frontendDepth = 3;   ///< fetch-to-rename latency
    int fetchQueueCap = 64;
    int redirectPenalty = 8; ///< extra cycles after branch resolve
    int bpTableBits = 14;
    int btbEntries = 4096;
    int sqDrainWidth = 2;

    FuConfig fu;
    LtpConfig ltp;
};

/** Random-access trace source (supports squash rewind by seq). */
class InstSource
{
  public:
    virtual ~InstSource() = default;
    /** The micro-op at trace position @p seq. */
    virtual MicroOp fetch(SeqNum seq) = 0;
    /** All seq <= @p upto are committed; storage may be trimmed. */
    virtual void retire(SeqNum upto) { (void)upto; }
};

/** Behavioural counters exported by the core. */
struct CoreStats
{
    Counter committed;
    Counter fetched;
    Counter renamed;
    Counter parked;
    Counter unparked;
    Counter forcedUnparks;
    Counter pressureUnparks;
    Counter boundaryUnparks;
    Counter ticketUnparks;

    Counter iqIssued;
    Counter wbWrites;   ///< completions (wakeup broadcasts)
    Counter rfReads;    ///< operand reads at issue
    Counter rfWrites;   ///< result writes

    Counter loadsExecuted;
    Counter storesExecuted;
    Counter squashes;
    Counter memViolations;

    Counter classUrgent;
    Counter classNonReady;
    Counter parkSkippedOff; ///< monitor had LTP powered off

    Counter renameStallRob;
    Counter renameStallRegs;
    Counter renameStallIq;
    Counter renameStallLq;
    Counter renameStallSq;
    Counter renameStallLtp;
    Counter commitStallLoad;
    Counter commitStallOther;

    void reset();
};

/** The OOO core. */
class Core
{
  public:
    /**
     * @param oracle optional per-dynamic-instruction classification for
     *               limit-study runs (ClassifierKind::Oracle).
     */
    Core(const CoreConfig &cfg, MemSystem &mem, InstSource &source,
         const OracleClassification *oracle = nullptr);

    /** Advance one cycle. */
    void tick();

    /** Run until @p n instructions have committed (or @p max_cycles). */
    void runUntilCommitted(std::uint64_t n,
                           Cycle max_cycles = kCycleNever);

    /** Stop fetching and run until the window is empty (tests). */
    void drain();

    /**
     * Squash every instruction younger than @p keep and rewind fetch.
     * Exercised by memory-order-violation recovery and by tests.
     */
    void squashAfter(SeqNum keep);

    /** Inspect the rename table (tests, classification inspector). */
    const RatEntry &ratEntry(RegId r) const { return rat_[r]; }

    /**
     * Brute-force source-readiness scan.  The scheduler no longer polls
     * this per cycle — wakeup is event-driven via the register
     * dependents lists — but it remains the reference predicate the
     * property tests validate the ready list against.
     */
    bool srcsReady(const DynInst *inst) const;

    Cycle cycle() const { return now_; }
    std::uint64_t committedInsts() const { return stats_.committed.value(); }

    /** Reset measurement state at the start of the detailed region. */
    void resetStats();

    /// @name Component access (tests, metrics extraction)
    /// @{
    CoreStats &stats() { return stats_; }
    IssueQueue &iq() { return iq_; }
    Rob &rob() { return rob_; }
    Lsq &lsq() { return lsq_; }
    LtpQueue &ltpQueue() { return ltp_; }
    Uit &uit() { return uit_; }
    TicketPool &tickets() { return tickets_; }
    LoadLatencyPredictor &llpred() { return llpred_; }
    LtpMonitor &monitor() { return monitor_; }
    BranchPredictor &branchPred() { return bpred_; }
    PhysRegFile &regs(RegClass cls)
    {
        return cls == RegClass::Int ? int_regs_ : fp_regs_;
    }
    const PhysRegFile &regs(RegClass cls) const
    {
        return cls == RegClass::Int ? int_regs_ : fp_regs_;
    }
    const CoreConfig &config() const { return cfg_; }
    /// @}

  private:
    // ---- pipeline stages (tick order) ----
    void processTicketEvents();
    void writeback();
    void commit();
    void ltpWakeup();
    void rename();
    void execute();
    void drainStores();
    void fetch();

    // ---- helpers ----
    DynInst *slotFor(SeqNum seq);
    DynInst *allocInst(const MicroOp &op, SeqNum seq);
    bool eventInstValid(SeqNum seq, std::uint64_t gen) const;

    struct Classification
    {
        bool urgent = false;
        bool nonReady = false;
        bool predictedLL = false;
        TicketMask tickets;
        bool parkEligible = false; ///< class-based park wanted
    };
    Classification classify(DynInst *inst);

    bool renameOne(DynInst *inst);
    SrcRef readSrc(RegId reg) const;
    bool tryUnpark(DynInst *inst, bool forced);
    void enqueueIq(DynInst *inst, bool emergency);
    void wakeDependents(PhysRegFile &rf, std::int32_t phys);
    void advanceOccupancyStats();
    SeqNum nuWakeupBoundary() const;
    void executeLoad(DynInst *inst, Cycle now);
    void scheduleCompletion(DynInst *inst, Cycle when);
    void scheduleTicketClear(int ticket, Cycle when);
    void completeInst(DynInst *inst);
    bool ltpOn() const;

    // ---- configuration & wiring ----
    CoreConfig cfg_;
    MemSystem &mem_;
    InstSource &source_;
    const OracleClassification *oracle_;

    // ---- time ----
    Cycle now_ = 0;

    // ---- front end ----
    BranchPredictor bpred_;
    struct FrontEntry
    {
        DynInst *inst;
        Cycle readyAt;
    };
    Ring<FrontEntry> front_queue_;
    SeqNum next_fetch_seq_ = 0;
    SeqNum fetch_blocked_on_ = kSeqNone; ///< unresolved mispredict
    Cycle fetch_resume_at_ = 0;
    bool fetch_enabled_ = true;

    // ---- rename ----
    RenameTable rat_;
    LtpRat ltp_rat_;
    PhysRegFile int_regs_;
    PhysRegFile fp_regs_;

    // ---- window ----
    Rob rob_;
    IssueQueue iq_;
    Lsq lsq_;
    FuPool fu_;

    // ---- LTP ----
    LtpQueue ltp_;
    Uit uit_;
    LoadLatencyPredictor llpred_;
    TicketPool tickets_;
    LtpMonitor monitor_;
    std::set<SeqNum> ll_inflight_; ///< incomplete long-latency insts
    bool rename_pressure_ = false; ///< resource-stall unpark trigger
    /** Whether the last rename stall was on a *full LTP* with a
     *  must-park instruction — the one stall that draining the LTP
     *  relieves directly, and hence the only pressure trigger.
     *  Register/LQ/SQ recovery is what the ROB-proximity wakeup
     *  already provides (waking more than the about-to-commit region
     *  early measurably wastes the registers parking saved), and a
     *  parked ROB head is handled by the forced unpark. */
    bool rename_stall_commit_freed_ = false;
    std::vector<std::uint64_t> ticket_epoch_; ///< stale-event guard

    // ---- events ----
    /** Result-ready event (drained by writeback, width-limited). */
    struct CompletionEv
    {
        Cycle when;
        SeqNum seq;
        std::uint64_t gen;
        bool operator>(const CompletionEv &o) const { return when > o.when; }
    };
    /** Early-wakeup broadcast clearing a ticket (Appendix A). */
    struct TicketEv
    {
        Cycle when;
        int ticket;
        std::uint64_t epoch; ///< guards against cleared-then-reused ids
        bool operator>(const TicketEv &o) const { return when > o.when; }
    };
    /** Retry of a load whose L1D MSHR allocation failed. */
    struct RetryEv
    {
        Cycle when;
        SeqNum seq;
        std::uint64_t gen;
        bool operator>(const RetryEv &o) const { return when > o.when; }
    };
    template <typename T>
    using MinHeap = std::priority_queue<T, std::vector<T>, std::greater<T>>;
    MinHeap<CompletionEv> completions_;
    MinHeap<TicketEv> ticket_events_;
    MinHeap<RetryEv> retry_events_;

    // ---- instruction pool ----
    std::vector<DynInst> pool_;
    std::vector<std::uint64_t> pool_gen_;

    // ---- stats ----
    CoreStats stats_;
    std::vector<DynInst *> scratch_loads_;  ///< store-wake collection
    std::vector<DynInst *> scratch_select_; ///< per-cycle select list
};

} // namespace ltp

#endif // LTP_CPU_CORE_HH
