/**
 * @file
 * The out-of-order core with integrated Long Term Parking — an N-way
 * SMT machine (N = 1 reproduces the paper's single-threaded Table 1
 * core bit-for-bit).
 *
 * A cycle-driven model of the Table 1 machine: 8-wide fetch/decode/
 * rename, 6-wide issue, 8-wide writeback/commit, ROB 256, IQ 64, LQ 64,
 * SQ 32, 128 INT + 128 FP rename registers, gshare+BTB front end,
 * backed by the src/mem hierarchy.
 *
 * SMT partitioning (the Criticality-Aware-Multiprocessors / QoSMT
 * setting): each hardware thread owns a ThreadContext holding its whole
 * front end and in-order window — fetch queue, branch predictor, RAT,
 * ROB, LSQ — plus its private LTP machinery (parking queue, tickets,
 * UIT, hit/miss predictor, DRAM monitor) and instruction pool.  The
 * issue queue, physical register files, functional units, and the
 * memory hierarchy are shared: that contention is what parking
 * non-critical instructions relieves.  Fetch and rename bandwidth are
 * arbitrated by a pluggable policy (round-robin or ICOUNT).
 *
 * LTP integration points (Figure 8):
 *  - rename: UIT/oracle classification, parked-bit and ticket
 *    propagation, park decision, LTP-id allocation;
 *  - a wakeup stage ahead of rename (LTP-first register priority):
 *    forced unpark of a parked ROB head, ROB-proximity Non-Urgent
 *    wakeup, ticket-cleared Non-Ready wakeup;
 *  - execute: long-latency detection, early-wakeup ticket clears,
 *    DRAM-monitor arming;
 *  - commit: UIT seeding from committed long-latency loads, hit/miss
 *    predictor training, register/LTP-id freeing.
 */

#ifndef LTP_CPU_CORE_HH
#define LTP_CPU_CORE_HH

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/ring.hh"
#include "common/stats.hh"
#include "common/timing_wheel.hh"
#include "cpu/branch_pred.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/exec.hh"
#include "cpu/iq.hh"
#include "cpu/lsq.hh"
#include "cpu/regfile.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "ltp/llpred.hh"
#include "ltp/ltp_queue.hh"
#include "ltp/monitor.hh"
#include "ltp/oracle.hh"
#include "ltp/tickets.hh"
#include "ltp/uit.hh"
#include "mem/mem_system.hh"

namespace ltp {

/** Which instruction classes LTP parks (Figure 6 curves). */
enum class LtpMode { Off, NU, NR, NRNU };

const char *ltpModeName(LtpMode mode);

/** Classification source: learned hardware tables vs. the oracle. */
enum class ClassifierKind { Learned, Oracle };

/**
 * SMT fetch/rename arbitration policy:
 *  - RoundRobin: threads take turns owning the front end, rotating
 *    every cycle.
 *  - ICount: the classic Tullsen policy — the thread with the fewest
 *    instructions in its front-end queue plus the shared IQ goes
 *    first, starving threads that hog the scheduling window.
 * Irrelevant (and bit-invisible) on a single-threaded core.
 */
enum class FetchPolicy { RoundRobin, ICount };

const char *fetchPolicyName(FetchPolicy p);

/**
 * Non-Urgent wakeup policy (ablation of the Section 3.2 design choice):
 *  - RobProximity: the paper's policy — wake between the ROB head and
 *    the second long-latency instruction.
 *  - Eager: wake as soon as ports allow (parking barely holds).
 *  - Lazy: only the deadlock machinery wakes instructions (forced head
 *    unpark + resource pressure).
 */
enum class WakeupPolicy { RobProximity, Eager, Lazy };

/** LTP-specific configuration. */
struct LtpConfig
{
    LtpMode mode = LtpMode::Off;
    ClassifierKind classifier = ClassifierKind::Learned;
    int entries = 128;      ///< LTP queue capacity (Fig 10 sweep)
    int insertPorts = 4;    ///< parks per cycle (Fig 10 sweep)
    int extractPorts = 4;   ///< wakeups per cycle (Fig 10 sweep)
    int uitEntries = 256;   ///< Section 5.6
    int uitAssoc = 4;
    int numTickets = 64;    ///< Appendix A / Fig 11 sweep
    bool useMonitor = true; ///< DRAM-timer power gating (Section 5.2)
    WakeupPolicy wakeup = WakeupPolicy::RobProximity;
    bool delayLqSq = false; ///< limit-study late LQ/SQ allocation
    int reservedRegs = 8;   ///< Section 5.4 deadlock reserve
    int reservedLqSq = 4;   ///< only meaningful with delayLqSq
};

/** Full core configuration (defaults = Table 1 baseline). */
struct CoreConfig
{
    int fetchWidth = 8;
    int decodeWidth = 8;
    int renameWidth = 8;
    int issueWidth = 6;
    int wbWidth = 8;
    int commitWidth = 8;

    int robSize = 256;
    int iqSize = 64;
    int lqSize = 64;
    int sqSize = 32;
    int intRegs = 128; ///< available (renameable) registers
    int fpRegs = 128;

    int frontendDepth = 3;   ///< fetch-to-rename latency
    int fetchQueueCap = 64;
    int redirectPenalty = 8; ///< extra cycles after branch resolve
    int bpTableBits = 14;
    int btbEntries = 4096;
    int sqDrainWidth = 2;

    /// @name SMT (multi-context) shape
    /// @{
    int numThreads = 1; ///< hardware contexts sharing IQ/RF/FUs/memory
    FetchPolicy fetchPolicy = FetchPolicy::RoundRobin;
    /// @}

    FuConfig fu;
    LtpConfig ltp;
};

/** Random-access trace source (supports squash rewind by seq). */
class InstSource
{
  public:
    virtual ~InstSource() = default;
    /** The micro-op at trace position @p seq. */
    virtual MicroOp fetch(SeqNum seq) = 0;
    /** All seq <= @p upto are committed; storage may be trimmed. */
    virtual void retire(SeqNum upto) { (void)upto; }
};

/** Behavioural counters exported by the core, one set per thread. */
struct CoreStats
{
    Counter committed;
    Counter fetched;
    Counter renamed;
    Counter parked;
    Counter unparked;
    Counter forcedUnparks;
    Counter pressureUnparks;
    Counter boundaryUnparks;
    Counter ticketUnparks;

    Counter iqIssued;
    Counter wbWrites;   ///< completions (wakeup broadcasts)
    Counter rfReads;    ///< operand reads at issue
    Counter rfWrites;   ///< result writes

    Counter loadsExecuted;
    Counter storesExecuted;
    Counter squashes;
    Counter memViolations;

    Counter classUrgent;
    Counter classNonReady;
    Counter parkSkippedOff; ///< monitor had LTP powered off

    Counter renameStallRob;
    Counter renameStallRegs;
    Counter renameStallIq;
    Counter renameStallLq;
    Counter renameStallSq;
    Counter renameStallLtp;
    Counter commitStallLoad;
    Counter commitStallOther;

    void reset();
};

/**
 * Per-thread simulated address-space stride.  Multiprogrammed SMT
 * contexts model distinct programs: offsetting each thread's PCs and
 * data addresses far above any kernel's footprint keeps their streams
 * from aliasing in the shared hierarchy while leaving the set indexing
 * (and the power-of-two DRAM channel/bank mapping) of each individual
 * stream unchanged.  Thread 0's base is zero, so a single-threaded
 * core touches exactly the paper's addresses.
 */
inline constexpr Addr kThreadAddrStride = Addr(1) << 40;

/** The simulated address-space base of hardware thread @p tid. */
inline constexpr Addr
threadAddrBase(int tid)
{
    return Addr(tid) * kThreadAddrStride;
}

/**
 * Per-stage wall-clock attribution of Core::tick, filled in when a
 * profile is attached via Core::setProfiler (the `ltp bench --profile`
 * path).  When no profile is attached the profiled tick variant is
 * never entered, so measurement costs nothing in normal runs.
 */
struct TickProfile
{
    enum Stage
    {
        BeginCycle,
        TicketEvents,
        Writeback,
        Commit,
        LtpWakeup,
        Rename,
        Execute,
        DrainStores,
        Fetch,
        Monitor,
        kNumStages
    };

    std::array<std::uint64_t, kNumStages> ns{}; ///< per-stage wall ns
    std::uint64_t ticks = 0;                    ///< ticks attributed

    static const char *stageName(int s);

    std::uint64_t
    totalNs() const
    {
        std::uint64_t t = 0;
        for (auto v : ns)
            t += v;
        return t;
    }
};

/**
 * Sorted-unique flat set of sequence numbers.
 *
 * Backs the per-thread in-flight long-latency tracking, whose access
 * pattern a node-based set serves badly: inserts at rename arrive in
 * program order (amortised O(1) push_back), out-of-order inserts and
 * erases touch one contiguous cache-resident array bounded by the
 * window size, and the ROB-proximity wakeup boundary reads are just
 * the first two elements.  No allocation after warm-up.
 */
class SeqFlatSet
{
  public:
    void
    insert(SeqNum s)
    {
        if (v_.empty() || s > v_.back()) {
            v_.push_back(s);
            return;
        }
        auto it = std::lower_bound(v_.begin(), v_.end(), s);
        if (it == v_.end() || *it != s)
            v_.insert(it, s);
    }

    void
    erase(SeqNum s)
    {
        auto it = std::lower_bound(v_.begin(), v_.end(), s);
        if (it != v_.end() && *it == s)
            v_.erase(it);
    }

    std::size_t size() const { return v_.size(); }
    /** The i-th smallest element; i < size(). */
    SeqNum nth(std::size_t i) const { return v_[i]; }

  private:
    std::vector<SeqNum> v_;
};

/** The OOO core: one shared back end, N hardware-thread contexts. */
class Core
{
  public:
    /**
     * Single-threaded convenience constructor (the paper's machine).
     * @param oracle optional per-dynamic-instruction classification for
     *               limit-study runs (ClassifierKind::Oracle).
     */
    Core(const CoreConfig &cfg, MemSystem &mem, InstSource &source,
         const OracleClassification *oracle = nullptr);

    /**
     * SMT constructor: one InstSource (and optionally one oracle) per
     * hardware thread; cfg.numThreads must equal sources.size().
     */
    Core(const CoreConfig &cfg, MemSystem &mem,
         const std::vector<InstSource *> &sources,
         const std::vector<const OracleClassification *> &oracles = {});

    ~Core();

    /** Advance one cycle. */
    void tick();

    /** Hook run after every tick of a multi-thread run loop. */
    using TickHook = std::function<void()>;

    /**
     * Run until every thread has committed @p n instructions (or
     * @p max_cycles).  On a single-threaded core this is the classic
     * "run until n committed".  @p on_tick, if set, runs after every
     * tick — the Simulator's SMT staging uses it to detect per-thread
     * quota crossings without a second driver loop.
     */
    void runUntilCommitted(std::uint64_t n,
                           Cycle max_cycles = kCycleNever,
                           const TickHook &on_tick = {});

    /**
     * Gate one thread's fetch (SMT staging: a context that has
     * committed its phase quota stops consuming its instruction
     * stream and drains, instead of running arbitrarily far ahead —
     * which would walk off the end of a bounded `trace:` replay).
     */
    void setFetchEnabled(int tid, bool on);

    /** Stop fetching and run until every window is empty (tests). */
    void drain();

    /**
     * Squash every thread-@p tid instruction younger than @p keep and
     * rewind that thread's fetch.  Exercised by memory-order-violation
     * recovery and by tests.
     */
    void squashAfter(SeqNum keep, int tid = 0);

    /** Inspect a thread's rename table (tests, inspector). */
    const RatEntry &ratEntry(RegId r, int tid = 0) const;

    /**
     * Brute-force source-readiness scan.  The scheduler no longer polls
     * this per cycle — wakeup is event-driven via the register
     * dependents lists — but it remains the reference predicate the
     * property tests validate the ready list against.
     */
    bool srcsReady(const DynInst *inst) const;

    Cycle cycle() const { return now_; }
    int numThreads() const { return static_cast<int>(threads_.size()); }
    std::uint64_t committedInsts(int tid = 0) const;

    /** Reset measurement state at the start of the detailed region. */
    void resetStats();

    /**
     * Attach (or detach, with nullptr) a per-stage tick profile.  While
     * attached, every tick's stage wall times accumulate into it.
     */
    void setProfiler(TickProfile *profile) { profile_ = profile; }

    /// @name Component access (tests, metrics extraction).  Thread-
    /// owned structures take a tid (default 0 keeps every existing
    /// single-threaded caller working unchanged).
    /// @{
    CoreStats &stats(int tid = 0);
    IssueQueue &iq() { return iq_; }
    Rob &rob(int tid = 0);
    Lsq &lsq(int tid = 0);
    LtpQueue &ltpQueue(int tid = 0);
    Uit &uit(int tid = 0);
    TicketPool &tickets(int tid = 0);
    LoadLatencyPredictor &llpred(int tid = 0);
    LtpMonitor &monitor(int tid = 0);
    BranchPredictor &branchPred(int tid = 0);
    PhysRegFile &regs(RegClass cls)
    {
        return cls == RegClass::Int ? int_regs_ : fp_regs_;
    }
    const PhysRegFile &regs(RegClass cls) const
    {
        return cls == RegClass::Int ? int_regs_ : fp_regs_;
    }
    const CoreConfig &config() const { return cfg_; }
    /// @}

  private:
    /**
     * Everything one hardware thread owns: the in-order front end and
     * window, the per-thread LTP machinery, and the instruction pool.
     * The shared back end (IQ, register files, FUs, memory) lives on
     * the Core itself.
     */
    struct ThreadContext
    {
        ThreadContext(int tid, const CoreConfig &cfg, InstSource &source,
                      const OracleClassification *oracle,
                      Cycle dram_latency);

        int tid;
        InstSource *source;
        const OracleClassification *oracle;

        // ---- front end ----
        BranchPredictor bpred;
        struct FrontEntry
        {
            DynInst *inst;
            Cycle readyAt;
        };
        Ring<FrontEntry> front_queue;
        SeqNum next_fetch_seq = 0;
        SeqNum fetch_blocked_on = kSeqNone; ///< unresolved mispredict
        Cycle fetch_resume_at = 0;
        bool fetch_enabled = true;

        // ---- rename / window ----
        RenameTable rat;
        LtpRat ltp_rat;
        Rob rob;
        Lsq lsq;

        // ---- LTP ----
        LtpQueue ltp;
        Uit uit;
        LoadLatencyPredictor llpred;
        TicketPool tickets;
        LtpMonitor monitor;
        SeqFlatSet ll_inflight; ///< incomplete long-latency insts
        bool rename_pressure = false; ///< resource-stall unpark trigger
        /** Whether the last rename stall was on a *full LTP* with a
         *  must-park instruction — the one stall that draining the LTP
         *  relieves directly, and hence the only pressure trigger.
         *  Register/LQ/SQ recovery is what the ROB-proximity wakeup
         *  already provides (waking more than the about-to-commit
         *  region early measurably wastes the registers parking
         *  saved), and a parked ROB head is handled by the forced
         *  unpark. */
        bool rename_stall_commit_freed = false;
        std::vector<std::uint64_t> ticket_epoch; ///< stale-event guard

        // ---- instruction pool ----
        std::vector<DynInst> pool;
        std::vector<std::uint64_t> pool_gen;

        /**
         * Per-thread simulated address-space base: multiprogrammed
         * contexts run distinct programs, so their memory streams must
         * not alias in the shared hierarchy.  Zero for thread 0 — a
         * single-threaded core touches exactly the paper's addresses.
         */
        Addr mem_base;

        // ---- stats ----
        CoreStats stats;
    };

    // ---- pipeline stages (tick order) ----
    void processTicketEvents();
    void writeback();
    void commit(ThreadContext &t);
    void ltpWakeup(ThreadContext &t);
    void rename();
    void execute();
    void drainStores(ThreadContext &t);
    void fetch();

    // ---- helpers ----
    ThreadContext &thread(int tid) { return *threads_[std::size_t(tid)]; }
    const ThreadContext &thread(int tid) const
    {
        return *threads_[std::size_t(tid)];
    }
    ThreadContext &threadOf(const DynInst *inst)
    {
        return thread(inst->tid);
    }
    DynInst *slotFor(ThreadContext &t, SeqNum seq);
    DynInst *allocInst(ThreadContext &t, const MicroOp &op, SeqNum seq);
    bool eventInstValid(const ThreadContext &t, SeqNum seq,
                        std::uint64_t gen) const;
    std::uint64_t poolGen(const DynInst *inst) const;

    /**
     * Thread visit order for this cycle's fetch/rename arbitration,
     * per cfg.fetchPolicy.  Always {0} on a single-threaded core.
     */
    const std::vector<int> &threadOrder();

    void renameThread(ThreadContext &t, int &budget);
    bool fetchEligible(const ThreadContext &t) const;
    void fetchThread(ThreadContext &t);

    struct Classification
    {
        bool urgent = false;
        bool nonReady = false;
        bool predictedLL = false;
        TicketMask tickets;
        bool parkEligible = false; ///< class-based park wanted
    };
    Classification classify(ThreadContext &t, DynInst *inst);

    bool renameOne(ThreadContext &t, DynInst *inst);
    SrcRef readSrc(const ThreadContext &t, RegId reg) const;
    bool tryUnpark(ThreadContext &t, DynInst *inst, bool forced);
    void enqueueIq(DynInst *inst, bool emergency);
    void wakeDependents(PhysRegFile &rf, std::int32_t phys);
    void bindOccupancyClocks();
    SeqNum nuWakeupBoundary(const ThreadContext &t) const;
    void executeLoad(DynInst *inst, Cycle now);
    void scheduleCompletion(DynInst *inst, Cycle when);
    void scheduleTicketClear(ThreadContext &t, int ticket, Cycle when);
    void completeInst(DynInst *inst);
    bool ltpOn(const ThreadContext &t) const;

    // ---- configuration & wiring ----
    CoreConfig cfg_;
    MemSystem &mem_;

    // ---- time ----
    Cycle now_ = 0;

    // ---- hardware threads ----
    std::vector<std::unique_ptr<ThreadContext>> threads_;

    // ---- shared rename targets ----
    PhysRegFile int_regs_;
    PhysRegFile fp_regs_;

    // ---- shared window / execution ----
    IssueQueue iq_;
    FuPool fu_;

    // ---- events (shared clock, tid-tagged payloads) ----
    /** Result-ready event (drained by writeback, width-limited). */
    struct CompletionEv
    {
        Cycle when;
        SeqNum seq;
        std::uint64_t gen;
        int tid;
        bool operator>(const CompletionEv &o) const { return when > o.when; }
    };
    /** Early-wakeup broadcast clearing a ticket (Appendix A). */
    struct TicketEv
    {
        Cycle when;
        int ticket;
        std::uint64_t epoch; ///< guards against cleared-then-reused ids
        int tid;
        bool operator>(const TicketEv &o) const { return when > o.when; }
    };
    /** Retry of a load whose L1D MSHR allocation failed. */
    struct RetryEv
    {
        Cycle when;
        SeqNum seq;
        std::uint64_t gen;
        int tid;
        bool operator>(const RetryEv &o) const { return when > o.when; }
    };
    template <typename T>
    using MinHeap = std::priority_queue<T, std::vector<T>, std::greater<T>>;
    MinHeap<CompletionEv> completions_;
    MinHeap<RetryEv> retry_events_;
    /**
     * Ticket-expiry events ride a timing wheel, not a heap: clears are
     * commutative within a cycle (the epoch guard plus the pending-bit
     * transition check make processing order immaterial), which is
     * exactly the property the wheel's insertion-order firing needs.
     * The completion/retry heaps must stay heaps — their equal-cycle
     * pop order is observable through the writeback width budget and
     * MSHR allocation order.
     */
    TimingWheel<TicketEv> ticket_events_;

    // ---- scratch ----
    std::vector<DynInst *> scratch_loads_;  ///< store-wake collection
    std::vector<DynInst *> scratch_select_; ///< per-cycle select list
    std::vector<int> scratch_order_;        ///< per-cycle thread order

    // ---- profiling ----
    void tickProfiled();
    TickProfile *profile_ = nullptr;
};

} // namespace ltp

#endif // LTP_CPU_CORE_HH
