/**
 * @file
 * Front-end branch prediction: gshare direction predictor + BTB.
 *
 * Trace-driven convention: the trace contains only the correct path, so
 * a misprediction is modelled as a fetch break — fetch stalls after the
 * mispredicted branch until it resolves plus a redirect penalty.  The
 * global history is updated with the actual outcome at predict time
 * (the fetched stream *is* the correct path), while the pattern tables
 * train normally; DESIGN.md documents this standard approximation.
 */

#ifndef LTP_CPU_BRANCH_PRED_HH
#define LTP_CPU_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ltp {

/** gshare + BTB front-end predictor. */
class BranchPredictor
{
  public:
    /**
     * @param table_bits log2 of the gshare pattern table size
     * @param btb_entries direct-mapped BTB capacity
     */
    BranchPredictor(int table_bits = 14, int btb_entries = 4096);

    /**
     * Predict the branch at @p pc; compares against the trace-resolved
     * outcome and returns true if the prediction (direction and, for
     * taken branches, BTB target) is correct.
     */
    bool predict(Addr pc, bool actual_taken, Addr actual_target);

    /** Explicitly train the tables (predict() already self-trains). */
    void update(Addr pc, bool taken, Addr target);

    double accuracy() const;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };

    /**
     * Checkpointable predictor state: pattern table, BTB, and global
     * history — everything the next prediction depends on.  The
     * lookup/mispredict counters are *statistics*, not architecture,
     * and are excluded (a restored predictor starts counting fresh).
     */
    struct Image
    {
        int tableBits = 0;
        std::uint64_t history = 0;
        std::vector<std::uint8_t> counters;
        std::vector<BtbEntry> btb;
    };

    Image image() const;

    /** Install @p img; geometry must match this predictor's config. */
    void restore(const Image &img);

    Counter lookups;
    Counter mispredicts;

  private:
    std::size_t index(Addr pc) const;
    void trainEntry(std::size_t idx, Addr pc, bool taken, Addr target);

    std::vector<std::uint8_t> counters_; ///< 2-bit saturating
    std::vector<BtbEntry> btb_;
    std::uint64_t history_ = 0;
    int table_bits_;
};

} // namespace ltp

#endif // LTP_CPU_BRANCH_PRED_HH
