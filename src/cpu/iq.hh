/**
 * @file
 * Issue Queue: out-of-order scheduling window.
 *
 * Entries are allocated at dispatch and freed at issue (Figure 4) —
 * this early deallocation is why Non-Ready instructions waiting on
 * misses are what actually fills the IQ, the observation LTP builds on.
 *
 * Select policy: oldest-first among ready entries, bounded by issue
 * width and functional-unit availability (checked by the core via the
 * visitor).  One *emergency slot* beyond the nominal capacity is
 * reserved for the forced unpark of a parked ROB head (Section 5.4
 * deadlock avoidance).
 */

#ifndef LTP_CPU_IQ_HH
#define LTP_CPU_IQ_HH

#include <vector>

#include "common/stats.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** The issue queue (scheduling window). */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity) : capacity_(capacity) {}

    /** Space for a normal dispatch? */
    bool hasSpace() const { return size() < capacity_; }

    /** Space for a forced unpark (may use the emergency slot)? */
    bool hasEmergencySpace() const { return size() < capacity_ + 1; }

    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }
    bool empty() const { return entries_.empty(); }

    /** Insert in sequence order (unparked entries arrive "late"). */
    void
    insert(DynInst *inst, Cycle now, bool emergency = false)
    {
        sim_assert(emergency ? hasEmergencySpace() : hasSpace());
        sim_assert(!inst->inIq);
        auto it = entries_.end();
        while (it != entries_.begin() && (*(it - 1))->seq > inst->seq)
            --it;
        entries_.insert(it, inst);
        inst->inIq = true;
        inserts++;
        occupancy.add(1, now);
    }

    /** Remove at issue (frees the entry, per Figure 4). */
    void
    remove(DynInst *inst, Cycle now)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (*it == inst) {
                entries_.erase(it);
                inst->inIq = false;
                occupancy.sub(1, now);
                return;
            }
        }
        panic("IQ remove: instruction not present");
    }

    /** Visit entries oldest-first (select scan). */
    template <typename Fn>
    void
    forEachInOrder(Fn &&fn) const
    {
        for (DynInst *inst : entries_)
            fn(inst);
    }

    void
    squashYoungerThan(SeqNum keep, Cycle now)
    {
        std::size_t kept = 0;
        for (DynInst *inst : entries_) {
            if (inst->seq <= keep) {
                entries_[kept++] = inst;
            } else {
                inst->inIq = false;
                occupancy.sub(1, now);
            }
        }
        entries_.resize(kept);
    }

    Counter inserts;
    OccupancyStat occupancy;

  private:
    int capacity_;
    std::vector<DynInst *> entries_; ///< sorted by seq
};

} // namespace ltp

#endif // LTP_CPU_IQ_HH
