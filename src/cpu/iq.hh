/**
 * @file
 * Issue Queue: out-of-order scheduling window, event-driven, shared by
 * every hardware thread of an SMT core.
 *
 * Entries are allocated at dispatch and freed at issue (Figure 4) —
 * this early deallocation is why Non-Ready instructions waiting on
 * misses are what actually fills the IQ, the observation LTP builds on.
 * Under SMT the queue is a single shared structure: co-running threads
 * compete for its entries, which is exactly the contention LTP's
 * parking relieves.
 *
 * Structure: entries live on an intrusive doubly-linked list kept in
 * age order (DynInst::iqPrev/iqNext), so insert is O(1) amortized —
 * dispatch arrives in program order and appends at the tail; only a
 * late unpark walks backwards.  Age across threads is the (seq, tid)
 * pair (per-thread sequence numbers are incomparable between threads);
 * on a single-threaded machine this degenerates to plain seq order.
 * Ready entries additionally sit on a second age-ordered intrusive
 * list (readyPrev/readyNext) mirrored by a (tid, seq)-indexed ready
 * bitmask.  Wakeup (the core's dependents-list walk) calls markReady()
 * exactly once per instruction when its last source turns ready;
 * select then pops oldest-ready directly off the ready list instead of
 * polling every entry's scoreboard bits each cycle.
 *
 * Select policy: oldest-first among ready entries, bounded by issue
 * width and functional-unit availability (checked by the core via the
 * visitor).  One *emergency slot* beyond the nominal capacity is
 * reserved for the forced unpark of a parked ROB head (Section 5.4
 * deadlock avoidance).
 */

#ifndef LTP_CPU_IQ_HH
#define LTP_CPU_IQ_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "cpu/dyn_inst.hh"

namespace ltp {

/** The issue queue (scheduling window), shared across SMT contexts. */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity, int num_threads = 1)
        : capacity_(capacity),
          ready_bits_((kInstWindow / 64) * std::size_t(num_threads), 0),
          tid_size_(std::size_t(num_threads), 0)
    {
    }

    /** Space for a normal dispatch? */
    bool hasSpace() const { return size_ < capacity_; }

    /** Space for a forced unpark (may use the emergency slot)? */
    bool hasEmergencySpace() const { return size_ < capacity_ + 1; }

    int size() const { return size_; }
    int capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }

    /** Entries belonging to thread @p tid (ICOUNT fetch policy). */
    int sizeOf(int tid) const { return tid_size_[std::size_t(tid)]; }

    /** Insert in age order (unparked entries arrive "late"). */
    void
    insert(DynInst *inst, bool emergency = false)
    {
        sim_assert(emergency ? hasEmergencySpace() : hasSpace());
        sim_assert(!inst->inIq);
        DynInst *after = tail_;
        while (after && inst->olderThan(*after))
            after = after->iqPrev;
        linkAfter(inst, after);
        inst->inIq = true;
        size_ += 1;
        tid_size_[std::size_t(inst->tid)] += 1;
        inserts++;
        occupancy.add(1);
    }

    /**
     * The wakeup notification: @p inst's last outstanding source turned
     * ready.  Must fire exactly once per residency — waking an entry
     * twice is a scheduling bug, caught by the bitmask assert.
     */
    void
    markReady(DynInst *inst)
    {
        sim_assert(inst->inIq);
        sim_assert(!testReadyBit(inst));
        setReadyBit(inst);
        DynInst *after = ready_tail_;
        while (after && inst->olderThan(*after))
            after = after->readyPrev;
        linkReadyAfter(inst, after);
    }

    /** Is @p inst on the ready list? */
    bool
    isReady(const DynInst *inst) const
    {
        return inst->inIq && testReadyBit(inst);
    }

    /** Remove at issue (frees the entry, per Figure 4). */
    void
    remove(DynInst *inst)
    {
        sim_assert(inst->inIq);
        unlink(inst);
        if (testReadyBit(inst)) {
            clearReadyBit(inst);
            unlinkReady(inst);
        }
        inst->inIq = false;
        size_ -= 1;
        tid_size_[std::size_t(inst->tid)] -= 1;
        occupancy.sub(1);
    }

    /** Visit all entries oldest-first (validation, introspection). */
    template <typename Fn>
    void
    forEachInOrder(Fn &&fn) const
    {
        for (DynInst *inst = head_; inst; inst = inst->iqNext)
            fn(inst);
    }

    /** Visit ready entries oldest-first (the select scan). */
    template <typename Fn>
    void
    forEachReady(Fn &&fn) const
    {
        // fn returns false to stop the walk (issue budget exhausted).
        for (DynInst *inst = ready_head_; inst; inst = inst->readyNext)
            if (!fn(inst))
                break;
    }

    /**
     * Drop thread @p tid's entries younger than @p keep.  The list is
     * age-ordered, so every removable entry sits in the tail region
     * where seq > keep (other threads' younger entries interleave there
     * and are skipped); the scan stops at the first entry with
     * seq <= keep, exactly as the single-threaded tail-pop did.
     */
    void
    squashYoungerThan(SeqNum keep, int tid = 0)
    {
        DynInst *it = tail_;
        while (it && it->seq > keep) {
            DynInst *prev = it->iqPrev;
            if (it->tid == tid)
                remove(it);
            it = prev;
        }
    }

    Counter inserts;
    OccupancyStat occupancy;

  private:
    void
    linkAfter(DynInst *inst, DynInst *after)
    {
        inst->iqPrev = after;
        inst->iqNext = after ? after->iqNext : head_;
        if (inst->iqNext)
            inst->iqNext->iqPrev = inst;
        else
            tail_ = inst;
        if (after)
            after->iqNext = inst;
        else
            head_ = inst;
    }

    void
    unlink(DynInst *inst)
    {
        if (inst->iqPrev)
            inst->iqPrev->iqNext = inst->iqNext;
        else
            head_ = inst->iqNext;
        if (inst->iqNext)
            inst->iqNext->iqPrev = inst->iqPrev;
        else
            tail_ = inst->iqPrev;
        inst->iqPrev = inst->iqNext = nullptr;
    }

    void
    linkReadyAfter(DynInst *inst, DynInst *after)
    {
        inst->readyPrev = after;
        inst->readyNext = after ? after->readyNext : ready_head_;
        if (inst->readyNext)
            inst->readyNext->readyPrev = inst;
        else
            ready_tail_ = inst;
        if (after)
            after->readyNext = inst;
        else
            ready_head_ = inst;
    }

    void
    unlinkReady(DynInst *inst)
    {
        if (inst->readyPrev)
            inst->readyPrev->readyNext = inst->readyNext;
        else
            ready_head_ = inst->readyNext;
        if (inst->readyNext)
            inst->readyNext->readyPrev = inst->readyPrev;
        else
            ready_tail_ = inst->readyPrev;
        inst->readyPrev = inst->readyNext = nullptr;
    }

    // The bitmask is indexed by (tid, seq modulo the in-flight window);
    // each thread's instruction pool guarantees its live sequence
    // numbers never collide within kInstWindow slots, and the per-tid
    // stripe keeps threads from colliding with each other.
    std::size_t bitWord(const DynInst *inst) const
    {
        return std::size_t(inst->tid) * (kInstWindow / 64) +
               ((inst->seq & (kInstWindow - 1)) >> 6);
    }
    std::uint64_t bitMask(const DynInst *inst) const
    {
        return std::uint64_t(1) << (inst->seq & 63);
    }
    bool testReadyBit(const DynInst *inst) const
    {
        return ready_bits_[bitWord(inst)] & bitMask(inst);
    }
    void setReadyBit(const DynInst *inst)
    {
        ready_bits_[bitWord(inst)] |= bitMask(inst);
    }
    void clearReadyBit(const DynInst *inst)
    {
        ready_bits_[bitWord(inst)] &= ~bitMask(inst);
    }

    int capacity_;
    int size_ = 0;
    DynInst *head_ = nullptr; ///< oldest entry
    DynInst *tail_ = nullptr; ///< youngest entry
    DynInst *ready_head_ = nullptr; ///< oldest ready entry
    DynInst *ready_tail_ = nullptr; ///< youngest ready entry
    std::vector<std::uint64_t> ready_bits_; ///< (tid, seq)-indexed mask
    std::vector<int> tid_size_; ///< per-thread entry counts (ICOUNT)
};

} // namespace ltp

#endif // LTP_CPU_IQ_HH
