/**
 * @file
 * Architectural register identifiers for the synthetic micro-op ISA.
 *
 * The trace ISA is a RISC-style micro-op format with 32 integer and 32
 * floating-point architectural registers (comfortably covering x86-64's
 * 16+16 plus renamed temporaries the micro-op cracking would expose).
 * The paper scales INT and FP physical register files together; the
 * rename stage keeps one free list per class.
 */

#ifndef LTP_ISA_REG_HH
#define LTP_ISA_REG_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace ltp {

/** Register class: integer or floating point (Table 1: 128 + 128). */
enum class RegClass : std::uint8_t { Int = 0, Fp = 1 };

inline constexpr int kNumRegClasses = 2;
inline constexpr int kArchRegsPerClass = 32;

/** An architectural register: class + index, or the invalid sentinel. */
struct RegId
{
    std::uint8_t cls = 0;   // RegClass
    std::uint8_t idx = 0xff; // 0xff == invalid

    constexpr RegId() = default;
    constexpr RegId(RegClass c, int i)
        : cls(static_cast<std::uint8_t>(c)), idx(static_cast<std::uint8_t>(i))
    {}

    constexpr bool valid() const { return idx != 0xff; }
    constexpr RegClass regClass() const { return static_cast<RegClass>(cls); }

    /** Flat index over both classes: [0, 2*kArchRegsPerClass). */
    constexpr int
    flat() const
    {
        return cls * kArchRegsPerClass + idx;
    }

    constexpr bool
    operator==(const RegId &o) const
    {
        return cls == o.cls && idx == o.idx;
    }

    std::string
    toString() const
    {
        if (!valid())
            return "r:-";
        return strprintf("%c%d", regClass() == RegClass::Int ? 'r' : 'f',
                         idx);
    }
};

/** Total number of architectural registers across classes. */
inline constexpr int kTotalArchRegs = kNumRegClasses * kArchRegsPerClass;

/** Shorthand constructors. */
inline constexpr RegId
intReg(int i)
{
    return RegId(RegClass::Int, i);
}

inline constexpr RegId
fpReg(int i)
{
    return RegId(RegClass::Fp, i);
}

} // namespace ltp

#endif // LTP_ISA_REG_HH
