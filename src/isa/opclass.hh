/**
 * @file
 * Micro-op operation classes and their execution properties.
 *
 * Latencies follow the gem5 O3 defaults for a large core (and the
 * paper's premise that divide/sqrt are "long-latency instructions"
 * alongside LLC misses: see Section 2).
 */

#ifndef LTP_ISA_OPCLASS_HH
#define LTP_ISA_OPCLASS_HH

#include <cstdint>

namespace ltp {

/** Operation class of a micro-op. */
enum class OpClass : std::uint8_t
{
    IntAlu = 0,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    FpSqrt,
    Load,
    Store,
    Branch,
    Nop,
    NumOpClasses
};

inline constexpr int kNumOpClasses =
    static_cast<int>(OpClass::NumOpClasses);

/** Execution properties of one op class. */
struct OpClassInfo
{
    const char *name;
    int latency;     ///< execute latency in cycles
    bool pipelined;  ///< false => FU busy for `latency` cycles per op
    bool fixedLong;  ///< intrinsically long latency (div/sqrt): LTP
                     ///< treats these like misses with known latency
};

/** Property table lookup. */
const OpClassInfo &opInfo(OpClass c);

inline bool
isLoad(OpClass c)
{
    return c == OpClass::Load;
}

inline bool
isStore(OpClass c)
{
    return c == OpClass::Store;
}

inline bool
isMem(OpClass c)
{
    return isLoad(c) || isStore(c);
}

inline bool
isBranch(OpClass c)
{
    return c == OpClass::Branch;
}

/** Division and square root: long fixed-latency ops (Section 2). */
inline bool
isFixedLongLat(OpClass c)
{
    return opInfo(c).fixedLong;
}

const char *opClassName(OpClass c);

} // namespace ltp

#endif // LTP_ISA_OPCLASS_HH
