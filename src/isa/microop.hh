/**
 * @file
 * The trace element: one dynamic micro-op.
 *
 * A MicroOp carries everything the timing model needs and nothing it
 * does not: the static PC (identity for the UIT and predictors), the
 * operation class, up to three architectural sources and one
 * destination, the exact effective address for memory ops, and the
 * resolved direction/target for branches.  Data *values* are not
 * simulated — this is a timing model, exactly like trace-driven use of
 * the paper's own infrastructure.
 */

#ifndef LTP_ISA_MICROOP_HH
#define LTP_ISA_MICROOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opclass.hh"
#include "isa/reg.hh"

namespace ltp {

inline constexpr int kMaxSrcs = 3;

/** One dynamic micro-op as produced by a workload generator. */
struct MicroOp
{
    Addr pc = 0;              ///< static instruction address
    OpClass opc = OpClass::Nop;
    RegId srcs[kMaxSrcs];     ///< invalid entries are unused slots
    RegId dst;                ///< invalid => no destination register

    Addr effAddr = 0;         ///< byte address for loads/stores
    std::uint8_t memSize = 0; ///< access size in bytes

    bool taken = false;       ///< resolved direction for branches
    Addr target = 0;          ///< resolved target for taken branches

    int
    numSrcs() const
    {
        int n = 0;
        for (const auto &s : srcs)
            n += s.valid();
        return n;
    }

    bool hasDst() const { return dst.valid(); }
    bool isLoad() const { return ltp::isLoad(opc); }
    bool isStore() const { return ltp::isStore(opc); }
    bool isMem() const { return ltp::isMem(opc); }
    bool isBranch() const { return ltp::isBranch(opc); }

    /** Human-readable one-liner for debugging and example output. */
    std::string toString() const;
};

/** Fluent builder so kernels read like tiny assembly listings. */
class OpBuilder
{
  public:
    explicit OpBuilder(OpClass c) { op_.opc = c; }

    OpBuilder &pc(Addr a) { op_.pc = a; return *this; }
    OpBuilder &dst(RegId r) { op_.dst = r; return *this; }

    OpBuilder &
    src(RegId r)
    {
        for (auto &s : op_.srcs) {
            if (!s.valid()) {
                s = r;
                return *this;
            }
        }
        panic("micro-op has more than %d sources", kMaxSrcs);
    }

    OpBuilder &
    mem(Addr a, int size)
    {
        op_.effAddr = a;
        op_.memSize = static_cast<std::uint8_t>(size);
        return *this;
    }

    OpBuilder &
    branch(bool taken, Addr target)
    {
        op_.taken = taken;
        op_.target = target;
        return *this;
    }

    MicroOp build() const { return op_; }

  private:
    MicroOp op_;
};

} // namespace ltp

#endif // LTP_ISA_MICROOP_HH
