#include "isa/microop.hh"

#include <sstream>

namespace ltp {

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << strprintf("0x%06llx ", static_cast<unsigned long long>(pc));
    os << opClassName(opc);
    if (hasDst())
        os << " " << dst.toString() << " <-";
    for (const auto &s : srcs)
        if (s.valid())
            os << " " << s.toString();
    if (isMem())
        os << strprintf(" [0x%llx,%d]",
                        static_cast<unsigned long long>(effAddr), memSize);
    if (isBranch())
        os << strprintf(" %s->0x%llx", taken ? "T" : "N",
                        static_cast<unsigned long long>(target));
    return os.str();
}

} // namespace ltp
