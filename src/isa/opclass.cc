#include "isa/opclass.hh"

#include "common/logging.hh"

namespace ltp {

namespace {

// name, latency, pipelined, fixedLong
constexpr OpClassInfo kOpInfo[kNumOpClasses] = {
    {"IntAlu", 1, true, false},
    {"IntMul", 3, true, false},
    {"IntDiv", 20, false, true},
    {"FpAlu", 3, true, false},
    {"FpMul", 4, true, false},
    {"FpDiv", 18, false, true},
    {"FpSqrt", 24, false, true},
    {"Load", 1, true, false},   // address generation; memory adds latency
    {"Store", 1, true, false},  // address generation; write happens at SQ
    {"Branch", 1, true, false},
    {"Nop", 1, true, false},
};

} // namespace

const OpClassInfo &
opInfo(OpClass c)
{
    int i = static_cast<int>(c);
    sim_assert(i >= 0 && i < kNumOpClasses);
    return kOpInfo[i];
}

const char *
opClassName(OpClass c)
{
    return opInfo(c).name;
}

} // namespace ltp
