/**
 * @file
 * `ltp` — the unified experiment driver.  Experiments are data: any
 * cell of the paper's design space is reachable from the command line
 * (presets + dotted --set overrides), and whole studies ship as JSON
 * scenario files compiled onto the sharded Runner.
 *
 *   ltp run [--preset=... --mode=... --kernel=a,b --set core.iq=32 ...]
 *   ltp sweep <scenario.json> [--threads=N --progress --json=... --csv=...]
 *   ltp bench [--quick --scenario=f.json --baseline=f.json --check]
 *   ltp record <kernel|scenario.json|all> --out=dir [--seed=N ...]
 *   ltp replay <trace.lttr|dir> [--verify --preset=... --set ...]
 *   ltp list-kernels
 *   ltp classify [--seed=N --threads=N ...]
 *   ltp print-config <preset> [--mode=... --set k=v ...] | --paths
 *
 * All simulation commands take --warm/--pipewarm/--detail staging
 * overrides, --seed, --threads=N (0 = all cores), --json=… and --csv=…
 * result archiving, and --help.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sample/checkpoint.hh"
#include "sample/sampler.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/worker_pool.hh"
#include "sim/config.hh"
#include "sim/exec_backend.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/simspeed.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"
#include "trace/trace_workload.hh"

using namespace ltp;

namespace {

int
usage(int status)
{
    std::printf(
        "ltp — declarative LTP experiment driver\n"
        "\n"
        "usage: ltp <command> [args] [--flags]\n"
        "\n"
        "commands:\n"
        "  run            simulate one config over one or more kernels\n"
        "  sweep <file>   compile and run a JSON scenario file\n"
        "                 (--progress prints a cells-done heartbeat;\n"
        "                 --submit ships the whole scenario to an\n"
        "                 `ltp serve` daemon in one request instead)\n"
        "  bench          measure simulator throughput (kIPS) over\n"
        "                 kernels and scenarios -> BENCH_simspeed.json;\n"
        "                 --baseline=<file> --check gates regressions\n"
        "  record <what>  record .lttr traces (a kernel list, a\n"
        "                 scenario file, or 'all') into --out=<dir>\n"
        "  replay <path>  replay .lttr traces (a file or directory);\n"
        "                 --verify re-executes and diffs the Metrics\n"
        "  sample <kernel>  interval-sampled simulation: repeating\n"
        "                 fast-forward/warmup/detail periods, mean IPC\n"
        "                 with a 95%% confidence interval; `ltp sample\n"
        "                 compare --full=a.json --sampled=b.json` gates\n"
        "                 a sampled report against a full-detail one\n"
        "  checkpoint <create|ls|verify>   architectural .ltcp\n"
        "                 checkpoints (fast-forwarded register/predictor/\n"
        "                 cache state) for `ltp sample --from=<file>`\n"
        "  list-kernels   print the registered kernel suite\n"
        "  classify       Section 4.1 MLP-sensitivity classification\n"
        "  print-config <preset>   print a preset's config as JSON\n"
        "  cache <ls|stat|gc|clear>   inspect / prune the result cache\n"
        "  serve [ping|stats|stop]    run (or control) the cell daemon;\n"
        "                 repeatable --worker=host:port (or a\n"
        "                 --workers=<file> list) makes the daemon a\n"
        "                 distributed frontend over remote workers\n"
        "\n"
        "every command accepts --help and the shared global flags:\n"
        "--warm/--pipewarm/--detail staging, --seed, --threads=N\n"
        "(0 = all cores), --json/--csv result archiving, repeatable\n"
        "--set <dotted.path>=<value> config overrides (see `ltp\n"
        "print-config --paths`), and the execution-backend flags:\n"
        "  --no-cache          bypass the content-addressed result cache\n"
        "  --cache-dir=<dir>   cache root (default $LTP_CACHE_DIR or\n"
        "                      ~/.cache/ltp)\n"
        "  --backend=local|serve   where cells run (default local)\n"
        "  --server=host:port  serve daemon address (implies\n"
        "                      --backend=serve; default 127.0.0.1:%d)\n"
        "  --server-timeout=<ms>  max server silence per request\n"
        "                      before the sweep fails (default 300000)\n",
        kDefaultServePort);
    return status;
}

/** Apply every --set key=value onto @p cfg; fatal on bad paths. */
void
applySets(SimConfig &cfg, const Cli &cli)
{
    for (const std::string &kv : cli.list("set")) {
        auto eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("--set needs <dotted.path>=<value>, got '%s'",
                  kv.c_str());
        try {
            applyOverride(cfg, kv.substr(0, eq), kv.substr(eq + 1));
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
    }
}

/** Build a preset by name, with optional --mode. */
SimConfig
presetConfig(const std::string &preset, const Cli &cli)
{
    bool has_mode = cli.has("mode");
    LtpMode mode = LtpMode::NU;
    if (has_mode) {
        try {
            mode = parseLtpMode(cli.str("mode", ""), "--mode");
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
    }
    if (preset == "baseline")
        return SimConfig::baseline();
    if (preset == "ltpProposal")
        return SimConfig::ltpProposal(mode);
    if (preset == "limitStudy") {
        if (!has_mode)
            fatal("preset limitStudy requires --mode=off|NU|NR|NR+NU");
        return SimConfig::limitStudy(mode);
    }
    fatal("unknown preset '%s' (expected "
          "baseline|ltpProposal|limitStudy)",
          preset.c_str());
}

/**
 * The execution backend the shared flags select: an `ltp serve` client
 * (--backend=serve / --server=...), the cache-wrapped local backend
 * (the default — sweeps are answered from ~/.cache/ltp when the exact
 * cell was run before), or the bare local backend (--no-cache).
 * Returning nullptr lets the Runner use its zero-overhead default.
 */
ExecBackendPtr
makeBackend(const Cli &cli)
{
    std::string kind =
        cli.str("backend", cli.has("server") ? "serve" : "local");
    if (kind == "serve") {
        std::string host = "127.0.0.1";
        int port = kDefaultServePort;
        try {
            parseHostPort(cli.str("server", ""), &host, &port);
            ServeClientOptions topts;
            topts.replyTimeoutMs = int(cli.integer(
                "server-timeout", topts.replyTimeoutMs));
            return std::make_shared<ServeBackend>(host, port, topts);
        } catch (const std::exception &e) {
            fatal("%s", e.what());
        }
    }
    if (kind != "local")
        fatal("unknown --backend '%s' (expected local|serve)",
              kind.c_str());
    if (cli.flag("no-cache"))
        return nullptr;
    try {
        return std::make_shared<CachedBackend>(
            LocalBackend::instance(),
            std::make_shared<ResultCache>(cli.str("cache-dir", "")));
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
}

/** One stderr line of cache effectiveness for non-local backends. */
void
printBackendSummary(const SweepResult &result)
{
    if (result.backend != "local")
        std::fprintf(stderr,
                     "backend %s: %zu/%zu cells answered from cache\n",
                     result.backend.c_str(), result.cacheHits,
                     result.simulations);
}

void
maybeArchive(const Cli &cli, const SweepResult &result)
{
    std::string json = cli.str("json", "");
    if (!json.empty())
        writeJsonReport(result, json);
    std::string csv = cli.str("csv", "");
    if (!csv.empty())
        writeCsvReport(result, csv);
}

/** The shared "--flag=1 means the conventional BENCH_ name" rule for
 *  artifacts that are not a SweepResult report. */
std::string
archiveTarget(const std::string &path, const std::string &dflt)
{
    return path == "1" ? dflt : path;
}

/** Generic grid rendering: rows × series, IPC per cell. */
void
printGrid(const SweepResult &result)
{
    // Column set: union of series across rows (usually identical).
    std::vector<std::string> series;
    for (const std::string &row : result.grid.rows())
        for (const std::string &s : result.grid.series(row))
            if (std::find(series.begin(), series.end(), s) ==
                series.end())
                series.push_back(s);

    std::vector<std::string> header = {"row"};
    header.insert(header.end(), series.begin(), series.end());
    Table t(header);
    for (const std::string &row : result.grid.rows()) {
        std::vector<std::string> cells = {row};
        for (const std::string &s : series)
            cells.push_back(result.grid.has(row, s)
                                ? Table::num(result.grid.at(row, s).ipc,
                                             4)
                                : "-");
        t.addRow(std::move(cells));
    }
    t.print(strprintf("%s: IPC by (row, series) — %zu sims, %d "
                      "threads, %.0f ms",
                      result.name.c_str(), result.simulations,
                      result.threads, result.wallMs));
}

SamplePlan samplePlanFromCli(const Cli &cli, SamplePlan base);
std::string readFileText(const std::string &path);

/** Commands without a positional must not silently swallow one. */
void
rejectPositional(const std::string &cmd, const std::string &positional)
{
    if (!positional.empty())
        fatal("ltp %s takes no positional argument, got '%s'",
              cmd.c_str(), positional.c_str());
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

int
cmdRun(const Cli &cli)
{
    SimConfig cfg = presetConfig(cli.str("preset", "baseline"), cli);
    cfg.seed = cli.integer("seed", 1);
    applySets(cfg, cli);

    std::vector<std::string> kernels =
        splitCommas(cli.str("kernel", "paper_loop"));
    if (kernels.empty())
        fatal("--kernel needs at least one kernel name");

    SweepSpec spec;
    spec.name = "run:" + cfg.name;
    spec.lengths = stagingLengths(cli, RunLengths::bench());
    for (const std::string &k : kernels)
        spec.add(k, cfg.name, cfg, k);

    SweepResult result =
        Runner(int(cli.integer("threads", 0)), makeBackend(cli))
            .run(spec);

    Table t({"kernel", "IPC", "CPI", "cycles", "parked", "LTP occ"});
    for (const std::string &k : kernels) {
        const Metrics &m = result.grid.at(k, cfg.name);
        t.addRow({k, Table::num(m.ipc, 4), Table::num(m.cpi, 4),
                  std::to_string(m.cycles),
                  Table::num(100.0 * m.parkedFrac, 1) + "%",
                  Table::num(m.ltpOcc, 1)});
    }
    t.print(strprintf("config %s (seed %llu)", cfg.name.c_str(),
                      static_cast<unsigned long long>(cfg.seed)));
    printBackendSummary(result);
    maybeArchive(cli, result);
    return 0;
}

/**
 * `ltp sweep --submit`: ship the scenario file to a serve daemon in
 * ONE `scenario` frame instead of compiling it locally — the daemon
 * compiles and runs it server-side (trace paths resolve against its
 * --trace-dir) and replies with the complete grid.  The shared
 * staging/seed/sampling flags edit the scenario JSON before it ships,
 * so the daemon compiles exactly what a local sweep with the same
 * flags would.
 */
int
cmdSubmitSweep(const std::string &path, const Cli &cli)
{
    if (cli.has("set"))
        fatal("--set is not supported with --submit; put the overrides "
              "in the scenario file");

    JsonValue root;
    try {
        root = parseJson(readFileText(path));
    } catch (const std::runtime_error &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
    if (!root.isObject())
        fatal("%s: scenario root is not an object", path.c_str());

    auto jnum = [](std::uint64_t n) {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.num = double(n);
        v.str = std::to_string(n);
        return v;
    };
    auto u64In = [](const JsonValue &obj, const char *key,
                    std::uint64_t dflt) {
        auto it = obj.object.find(key);
        std::uint64_t out = dflt;
        if (it != obj.object.end() && it->second.isNumber())
            u64FromLexeme(it->second.str, &out);
        return out;
    };

    if (cli.has("seed"))
        root.object["seed"] = jnum(cli.integer("seed", 1));

    if (cli.has("warm") || cli.has("pipewarm") || cli.has("detail")) {
        // Re-derive the file's staging base the way scenarioFromJson
        // does (preset name or partial object), layer the flags, and
        // write the full object back.
        RunLengths base;
        auto it = root.object.find("lengths");
        if (it != root.object.end()) {
            const JsonValue &l = it->second;
            if (l.isString() && l.str == "quick")
                base = RunLengths::quick();
            else if (l.isString() && l.str == "bench")
                base = RunLengths::bench();
            else if (l.isObject()) {
                base.funcWarm = u64In(l, "funcWarm", base.funcWarm);
                base.pipeWarm = u64In(l, "pipeWarm", base.pipeWarm);
                base.detail = u64In(l, "detail", base.detail);
            }
        }
        RunLengths lengths = stagingLengths(cli, base);
        JsonValue l;
        l.kind = JsonValue::Kind::Object;
        l.object["funcWarm"] = jnum(lengths.funcWarm);
        l.object["pipeWarm"] = jnum(lengths.pipeWarm);
        l.object["detail"] = jnum(lengths.detail);
        root.object["lengths"] = std::move(l);
    }

    if (cli.has("samples") || cli.has("sample-ff") ||
        cli.has("sample-warmup") || cli.has("sample-detail")) {
        SamplePlan base;
        auto it = root.object.find("sampling");
        if (it != root.object.end()) {
            const JsonValue &sp = it->second;
            if ((sp.isString() && sp.str == "default") ||
                sp.isObject())
                base = SamplePlan::defaults();
            if (sp.isObject()) {
                base.fastForward =
                    u64In(sp, "fastForward", base.fastForward);
                base.warmup = u64In(sp, "warmup", base.warmup);
                base.detail = u64In(sp, "detail", base.detail);
                base.samples = int(u64In(
                    sp, "samples", std::uint64_t(base.samples)));
            }
        }
        SamplePlan plan = samplePlanFromCli(cli, base);
        JsonValue sp;
        sp.kind = JsonValue::Kind::Object;
        sp.object["fastForward"] = jnum(plan.fastForward);
        sp.object["warmup"] = jnum(plan.warmup);
        sp.object["detail"] = jnum(plan.detail);
        sp.object["samples"] = jnum(std::uint64_t(plan.samples));
        root.object["sampling"] = std::move(sp);
    }

    std::string host = "127.0.0.1";
    int port = kDefaultServePort;
    try {
        parseHostPort(cli.str("server", ""), &host, &port);
        ServeClientOptions topts;
        topts.replyTimeoutMs =
            int(cli.integer("server-timeout", topts.replyTimeoutMs));
        ServeBackend client(host, port, topts);
        if (cli.flag("progress")) {
            // The daemon streams progress during the run; render it as
            // the same heartbeat a local --progress sweep prints.
            auto start = std::chrono::steady_clock::now();
            client.setProgressHandler(
                [start](std::uint64_t done, std::uint64_t total,
                        std::uint64_t hits) {
                    double secs =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
                    std::fprintf(
                        stderr,
                        "\r%llu/%llu cells, %llu hits, %.1fs elapsed   ",
                        static_cast<unsigned long long>(done),
                        static_cast<unsigned long long>(total),
                        static_cast<unsigned long long>(hits), secs);
                    std::fflush(stderr);
                });
        }
        SweepResult result = client.submitScenario(root);
        if (cli.flag("progress"))
            std::fprintf(stderr, "\n");
        std::printf("scenario %s: ran on %s:%d (%zu simulations, %d "
                    "daemon threads)\n",
                    result.name.c_str(), host.c_str(), port,
                    result.simulations, result.threads);
        printGrid(result);
        printBackendSummary(result);
        maybeArchive(cli, result);
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return 0;
}

int
cmdSweep(const std::string &path, const Cli &cli)
{
    if (cli.flag("submit"))
        return cmdSubmitSweep(path, cli);

    Scenario scenario;
    try {
        scenario = loadScenarioFile(path);
    } catch (const std::runtime_error &e) {
        fatal("%s", e.what());
    }
    scenario.lengths = stagingLengths(cli, scenario.lengths);
    // Overrides the file's seed before compile, so it also reseeds the
    // panel classification (unlike --set seed=N, which applies after).
    if (cli.has("seed")) {
        scenario.seed = cli.integer("seed", scenario.seed);
        scenario.hasSeed = true;
    }

    int threads = int(cli.integer("threads", 0));
    ExecBackendPtr backend = makeBackend(cli);
    SweepSpec spec;
    try {
        // The backend also serves the classification matrix a panels
        // scenario runs at compile time, so a warm cache answers the
        // whole invocation without simulating.
        spec = scenario.compile(threads, backend);
    } catch (const std::runtime_error &e) {
        fatal("%s", e.what());
    }

    // --set overrides apply to every job of the compiled spec; the
    // --samples/--sample-* flags override the scenario's sampling plan.
    for (SweepJob &job : spec.jobs)
        applySets(job.cfg, cli);
    spec.sampling = samplePlanFromCli(cli, spec.sampling);

    std::printf("scenario %s: %zu jobs, %zu simulations%s\n",
                spec.name.c_str(), spec.jobs.size(),
                spec.simulationCount(),
                spec.sampling.enabled()
                    ? strprintf(" (sampled, plan %s)",
                                spec.sampling.toString().c_str())
                          .c_str()
                    : "");
    ProgressFn progress;
    bool caching = backend && backend->wantsKey();
    if (cli.flag("progress")) {
        // Heartbeat for long runs (serial and sharded alike): cells
        // done / total, cache hits when a caching backend is in play,
        // and the live sampling phase label under a sampled plan.
        auto start = std::chrono::steady_clock::now();
        std::string name = spec.name;
        progress = [start, name, caching](const Progress &p) {
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
            std::string hits =
                caching ? strprintf(", %zu hits", p.hits) : "";
            std::string phase =
                p.phase.empty() ? "" : " [" + p.phase + "]";
            // Trailing spaces wipe a longer previous phase label.
            std::fprintf(stderr,
                         "\r%s: %zu/%zu cells%s, %.1fs elapsed%s      %s",
                         name.c_str(), p.done, p.total, hits.c_str(),
                         secs, phase.c_str(),
                         p.done == p.total ? "\n" : "");
            std::fflush(stderr);
        };
    }
    SweepResult result = Runner(threads, backend).run(spec, progress);
    printGrid(result);
    printBackendSummary(result);
    maybeArchive(cli, result);
    return 0;
}

/**
 * `--perf-record=<out.data>`: attach `perf record -g` to this process
 * for the duration of the bench, so the call-graph profile and the
 * per-stage attribution come from the same run.  Returns the perf pid
 * (-1 when not requested); stopPerf() reaps it.
 */
pid_t
startPerf(const std::string &out)
{
    pid_t pid = ::fork();
    if (pid < 0)
        fatal("--perf-record: fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        std::string target = std::to_string(::getppid());
        ::execlp("perf", "perf", "record", "-g", "-o", out.c_str(),
                 "-p", target.c_str(), (char *)nullptr);
        _exit(127); // perf not installed
    }
    // Give perf a beat to attach so the bench's first cells are in
    // the profile too.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return pid;
}

void
stopPerf(pid_t pid, const std::string &out)
{
    ::kill(pid, SIGINT);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 127)
        std::fprintf(stderr,
                     "--perf-record: `perf` is not installed; no "
                     "profile written\n");
    else
        std::printf("perf profile written to %s (inspect with "
                    "`perf report -i %s`)\n",
                    out.c_str(), out.c_str());
}

int
cmdBench(const Cli &cli)
{
    SimSpeedOptions opts;
    opts.quick = cli.flag("quick");
    opts.profile = cli.flag("profile");
    opts.reps = int(cli.integer("reps", 1));
    opts.seed = cli.integer("seed", 1);
    opts.lengths = stagingLengths(
        cli, opts.quick ? RunLengths::quick() : RunLengths::bench());

    // Scenario sweeps to time (their own staging plans); default is
    // the perf-trajectory anchor, fig6_iq_quick.
    std::vector<std::string> scenarios = cli.list("scenario");
    if (scenarios.empty())
        scenarios.push_back("scenarios/fig6_iq_quick.json");
    for (const std::string &path : scenarios) {
        if (!std::filesystem::exists(path))
            fatal("bench scenario not found: '%s' (run from the repo "
                  "root or pass --scenario=<path>)",
                  path.c_str());
        opts.scenarios.push_back(path);
    }
    // The SMT pairs sweep is a gated cell: its trajectory stabilised
    // over PRs 5-7, so it now counts toward the total the perf-smoke
    // gate compares (promoted from report_only_scenarios when the
    // LTP hot path was rebuilt event-driven).  Like the fig6 default
    // above, it is required when the default cell list is in play — a
    // missing file must not silently punch a hole in the trajectory.
    if (cli.list("scenario").empty()) {
        const char *smt = "scenarios/smt_pairs.json";
        if (!std::filesystem::exists(smt))
            fatal("bench scenario not found: '%s' (run from the repo "
                  "root, or pass --scenario=<path> to choose the "
                  "cells explicitly)",
                  smt);
        opts.scenarios.push_back(smt);
    }

    std::string perf_out = cli.str("perf-record", "");
    pid_t perf_pid = perf_out.empty() ? -1 : startPerf(perf_out);

    std::string baseline = cli.str("baseline", "");
    SimSpeedReport report;
    try {
        report = runSimSpeedBench(opts);
        if (!baseline.empty())
            report.referenceKips = loadReferenceKips(baseline);
    } catch (const std::runtime_error &e) {
        if (perf_pid > 0)
            ::kill(perf_pid, SIGKILL);
        fatal("%s", e.what());
    }
    if (perf_pid > 0)
        stopPerf(perf_pid, perf_out);

    Table t({"cell", "config", "sims", "insts", "wall ms", "kIPS"});
    auto addRows = [&](const std::vector<SimSpeedCell> &cells) {
        for (const SimSpeedCell &c : cells)
            t.addRow({c.label, c.config, std::to_string(c.simulations),
                      std::to_string(c.detailedInsts),
                      Table::num(c.wallMs, 1), Table::num(c.kips, 1)});
    };
    addRows(report.kernelCells);
    addRows(report.scenarioCells);
    addRows(report.reportOnlyCells);
    t.print(strprintf("simulator throughput (%s, seed %llu): %.1f kIPS "
                      "over %llu detailed insts",
                      report.quick ? "quick" : "full",
                      static_cast<unsigned long long>(report.seed),
                      report.totalKips,
                      static_cast<unsigned long long>(report.totalInsts)));
    for (const SimSpeedCell &c : report.scenarioCells) {
        auto ref = report.referenceKips.find(c.label);
        if (ref != report.referenceKips.end() && ref->second > 0.0)
            std::printf("%s: %.1f kIPS vs %.1f reference = %.2fx\n",
                        c.label.c_str(), c.kips, ref->second,
                        c.kips / ref->second);
    }

    // --profile: per-stage wall-time attribution, aggregated over the
    // kernel cells of each config, so "which stage regressed, and
    // only under LTP?" is answerable from the bench output alone.
    if (opts.profile) {
        std::vector<std::string> cfgs;
        std::map<std::string, TickProfile> byCfg;
        for (const SimSpeedCell &c : report.kernelCells) {
            if (!c.profiled())
                continue;
            if (!byCfg.count(c.config))
                cfgs.push_back(c.config);
            TickProfile &agg = byCfg[c.config];
            for (int s = 0; s < TickProfile::kNumStages; ++s)
                agg.ns[std::size_t(s)] += c.profile.ns[std::size_t(s)];
            agg.ticks += c.profile.ticks;
        }
        std::vector<std::string> head = {"stage"};
        for (const std::string &cfg : cfgs) {
            head.push_back(cfg + " ms");
            head.push_back("%");
        }
        Table pt(head);
        for (int s = 0; s < TickProfile::kNumStages; ++s) {
            std::vector<std::string> row = {TickProfile::stageName(s)};
            for (const std::string &cfg : cfgs) {
                const TickProfile &p = byCfg[cfg];
                double ms = double(p.ns[std::size_t(s)]) / 1e6;
                double pct = p.totalNs()
                                 ? 100.0 * double(p.ns[std::size_t(s)]) /
                                       double(p.totalNs())
                                 : 0.0;
                row.push_back(Table::num(ms, 1));
                row.push_back(Table::num(pct, 1));
            }
            pt.addRow(row);
        }
        pt.print("per-stage tick attribution (kernel cells, "
                 "aggregated per config)");
    }

    std::string json = cli.str("json", "");
    if (!json.empty()) {
        std::string target = archiveTarget(json, "BENCH_simspeed.json");
        writeFile(target, report.toJson());
        std::printf("json written to %s\n", target.c_str());
    }

    if (cli.flag("check")) {
        if (baseline.empty())
            fatal("bench --check needs --baseline=<file>");
        try {
            if (!checkSimSpeedBaseline(report, baseline))
                return 1;
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
    }
    return 0;
}

/** The DSL kernels a `record` target names: a kernel list, 'all', or
 *  every (non-trace) kernel a scenario file's compiled spec touches. */
std::vector<std::string>
recordTargets(const std::string &what, const Cli &cli,
              RunLengths &lengths, std::uint64_t &seed)
{
    if (what == "all") {
        std::vector<std::string> kernels;
        for (const SuiteEntry &e : kernelSuite())
            kernels.push_back(e.name);
        return kernels;
    }
    if (what.size() > 5 && what.compare(what.size() - 5, 5, ".json") == 0) {
        Scenario scenario;
        try {
            scenario = loadScenarioFile(what);
        } catch (const std::runtime_error &e) {
            // A scenario that replays traces validates them eagerly —
            // which cannot succeed before they exist.  Point at the
            // bootstrap path instead of just echoing the parse error.
            if (std::string(e.what()).find(".lttr") != std::string::npos)
                fatal("%s\n(`ltp record <scenario>` records the DSL "
                      "kernels a scenario touches; it cannot bootstrap "
                      "a scenario that replays traces — record their "
                      "source kernels directly: ltp record "
                      "<kernel,...> --out=<dir>)",
                      e.what());
            fatal("%s", e.what());
        }
        // The scenario's own staging/seed become the recording defaults
        // (still overridable by the standard flags).
        lengths = stagingLengths(cli, scenario.lengths);
        if (!cli.has("seed"))
            seed = scenario.seed;
        SweepSpec spec;
        try {
            spec = scenario.compile(int(cli.integer("threads", 0)),
                                    makeBackend(cli));
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
        std::set<std::string> uniq;
        for (const SweepJob &job : spec.jobs)
            for (const std::string &k : job.kernels) {
                // SMT tuples decompose into their member kernels:
                // traces are per-thread streams, so a pairs scenario
                // records each co-runner separately.
                std::vector<std::string> members =
                    isSmtName(k) ? smtMembers(k)
                                 : std::vector<std::string>{k};
                for (const std::string &member : members)
                    if (!isTraceName(member))
                        uniq.insert(member);
            }
        if (uniq.empty())
            fatal("scenario '%s' references no DSL kernels to record",
                  what.c_str());
        return std::vector<std::string>(uniq.begin(), uniq.end());
    }
    return splitCommas(what);
}

int
cmdRecord(const std::string &what, const Cli &cli)
{
    if (what.empty())
        fatal("record needs a target: ltp record "
              "<kernel[,kernel...]|scenario.json|all> --out=<dir>");
    std::string out_dir = cli.str("out", "");
    if (out_dir.empty())
        fatal("record needs --out=<dir> for the .lttr files");

    RunLengths lengths = stagingLengths(cli, RunLengths::bench());
    std::uint64_t seed = cli.integer("seed", 1);
    std::vector<std::string> kernels =
        recordTargets(what, cli, lengths, seed);

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec)
        fatal("cannot create '%s': %s", out_dir.c_str(),
              ec.message().c_str());

    Table t({"kernel", "file", "records", "bytes"});
    for (const std::string &kernel : kernels) {
        TraceInfo info;
        info.kernel = kernel;
        info.seed = seed;
        info.funcWarm = lengths.funcWarm;
        info.pipeWarm = lengths.pipeWarm;
        info.detail = lengths.detail;
        std::string path = out_dir + "/" + kernel + ".lttr";
        try {
            std::string bytes = recordTrace(info);
            writeTraceFile(path, bytes);
            t.addRow({kernel, path, std::to_string(info.recordLength()),
                      std::to_string(bytes.size())});
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
    }
    t.print(strprintf("recorded %zu trace(s), seed %llu, staging "
                      "%llu/%llu/%llu (+%llu slack)",
                      kernels.size(),
                      static_cast<unsigned long long>(seed),
                      static_cast<unsigned long long>(lengths.funcWarm),
                      static_cast<unsigned long long>(lengths.pipeWarm),
                      static_cast<unsigned long long>(lengths.detail),
                      static_cast<unsigned long long>(kTraceFetchSlack)));
    return 0;
}

int
cmdReplay(const std::string &what, const Cli &cli)
{
    namespace fs = std::filesystem;
    if (what.empty())
        fatal("replay needs a trace: ltp replay <trace.lttr|dir>");

    std::vector<std::string> paths;
    if (fs::is_directory(what)) {
        for (const auto &entry : fs::directory_iterator(what))
            if (entry.path().extension() == ".lttr")
                paths.push_back(entry.path().string());
        std::sort(paths.begin(), paths.end());
        if (paths.empty())
            fatal("no .lttr files under '%s'", what.c_str());
    } else {
        paths.push_back(what);
    }

    bool verify = cli.flag("verify");
    SimConfig base_cfg = presetConfig(cli.str("preset", "baseline"), cli);
    applySets(base_cfg, cli);
    // Like --seed below, `--set seed=N` cannot re-seed a recorded
    // stream; reject it instead of silently mislabelling results.
    for (const std::string &kv : cli.list("set"))
        if (kv.rfind("seed=", 0) == 0)
            fatal("replay cannot re-seed a recorded stream; drop "
                  "'--set %s' (re-record with the desired seed)",
                  kv.c_str());

    std::vector<std::string> header = {"trace", "kernel", "IPC",
                                       "cycles", "parked"};
    if (verify)
        header.push_back("verify");
    Table t(header);

    int failures = 0;
    for (const std::string &path : paths) {
        std::shared_ptr<const TraceReader> trace;
        try {
            trace = loadTraceCached(path);
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
        const TraceInfo &info = trace->info();

        // Defaults reproduce the recording run exactly: the recorded
        // staging plan and seed, unless explicitly overridden.
        RunLengths recorded;
        recorded.funcWarm = info.funcWarm;
        recorded.pipeWarm = info.pipeWarm;
        recorded.detail = info.detail;
        RunLengths lengths = stagingLengths(cli, recorded);
        SimConfig cfg = base_cfg;
        cfg.seed = info.seed;
        // The recorded stream cannot be re-seeded, so a conflicting
        // --seed could only mislabel results (and with --verify would
        // compare against a differently-seeded execute run — a
        // guaranteed false mismatch).  Reject it outright.
        if (cli.has("seed") &&
            std::uint64_t(cli.integer("seed", 1)) != info.seed)
            fatal("--seed=%llu conflicts with the seed %llu recorded "
                  "in '%s'; re-record with the desired seed",
                  static_cast<unsigned long long>(
                      cli.integer("seed", 1)),
                  static_cast<unsigned long long>(info.seed),
                  path.c_str());

        Metrics replayed =
            Simulator::runOnce(cfg, traceName(path), lengths);
        std::vector<std::string> row = {
            traceLabel(path), info.kernel, Table::num(replayed.ipc, 4),
            std::to_string(replayed.cycles),
            Table::num(100.0 * replayed.parkedFrac, 1) + "%"};
        if (verify) {
            Metrics executed =
                Simulator::runOnce(cfg, info.kernel, lengths);
            bool ok =
                metricsToJson(replayed) == metricsToJson(executed);
            row.push_back(ok ? "OK" : "MISMATCH");
            if (!ok) {
                failures += 1;
                std::fprintf(stderr,
                             "replay mismatch for %s:\n"
                             "--- replayed ---\n%s\n"
                             "--- executed ---\n%s\n",
                             path.c_str(),
                             metricsToJson(replayed).c_str(),
                             metricsToJson(executed).c_str());
            }
        }
        t.addRow(std::move(row));
    }
    t.print(strprintf("replay of %zu trace(s), config %s%s",
                      paths.size(), base_cfg.name.c_str(),
                      verify ? " (verified against execute mode)" : ""));
    if (failures) {
        std::fprintf(stderr,
                     "replay: %d trace(s) diverged from execute mode\n",
                     failures);
        return 1;
    }
    return 0;
}

int
cmdListKernels()
{
    Table t({"kernel", "intent"});
    for (const SuiteEntry &e : kernelSuite()) {
        const char *intent =
            e.intent == MlpIntent::Sensitive
                ? "mlp-sensitive"
                : e.intent == MlpIntent::Insensitive ? "mlp-insensitive"
                                                     : "example";
        t.addRow({e.name, intent});
    }
    t.print("registered kernel suite");
    return 0;
}

int
cmdClassify(const Cli &cli)
{
    RunLengths lengths = stagingLengths(cli, RunLengths::bench());
    std::uint64_t seed = cli.integer("seed", 1);
    int threads = int(cli.integer("threads", 0));

    Panels p = classifyPanels(lengths, seed, threads, makeBackend(cli));
    Table t({"kernel", "class", "speedup", "outstanding x",
             "avg load lat"});
    for (const auto &d : p.groups.details)
        t.addRow({d.kernel, d.sensitive ? "SENSITIVE" : "insensitive",
                  Table::num(d.speedup, 2),
                  Table::num(d.outstandingRatio, 2),
                  Table::num(d.avgLoadLatency, 1)});
    t.print("Section 4.1 classification (IQ32 vs IQ256)");

    std::string csv = cli.str("csv", "");
    if (!csv.empty()) {
        std::string target = archiveTarget(csv, "BENCH_classify.csv");
        writeFile(target, t.toCsv());
        std::printf("csv written to %s\n", target.c_str());
    }
    std::string json = cli.str("json", "");
    if (!json.empty()) {
        std::string out = "[\n";
        for (std::size_t i = 0; i < p.groups.details.size(); ++i) {
            const MlpClassification &d = p.groups.details[i];
            JsonObjectBuilder o;
            o.str("kernel", d.kernel);
            o.boolean("sensitive", d.sensitive);
            o.num("speedup", d.speedup);
            o.num("outstandingRatio", d.outstandingRatio);
            o.num("avgLoadLatency", d.avgLoadLatency);
            out += "  " + o.render(2);
            if (i + 1 < p.groups.details.size())
                out += ",";
            out += "\n";
        }
        out += "]\n";
        std::string target = archiveTarget(json, "BENCH_classify.json");
        writeFile(target, out);
        std::printf("json written to %s\n", target.c_str());
    }
    return 0;
}

/** The sampling plan the shared --samples/--sample-* flags select,
 *  layered over @p base (a scenario's plan or the defaults). */
SamplePlan
samplePlanFromCli(const Cli &cli, SamplePlan base)
{
    if (cli.has("samples"))
        base.samples = int(cli.integer("samples", base.samples));
    if (cli.has("sample-ff"))
        base.fastForward =
            std::uint64_t(cli.integer("sample-ff", 0));
    if (cli.has("sample-warmup"))
        base.warmup = std::uint64_t(cli.integer("sample-warmup", 0));
    if (cli.has("sample-detail"))
        base.detail = std::uint64_t(cli.integer("sample-detail", 0));
    return base;
}

/** Phase-labelled stderr heartbeat shared by sample and sweep. */
ProgressFn
sampleProgressFn(const Cli &cli, const std::string &name, bool caching)
{
    if (!cli.flag("progress"))
        return {};
    auto start = std::chrono::steady_clock::now();
    return [start, name, caching](const Progress &p) {
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        std::string hits = caching ? strprintf(", %zu hits", p.hits) : "";
        std::string phase =
            p.phase.empty() ? "" : " [" + p.phase + "]";
        // The trailing spaces wipe a longer previous phase label.
        std::fprintf(stderr,
                     "\r%s: %zu/%zu cells%s, %.1fs elapsed%s      %s",
                     name.c_str(), p.done, p.total, hits.c_str(), secs,
                     phase.c_str(), p.done == p.total ? "\n" : "");
        std::fflush(stderr);
    };
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Gate a sampled report against a full-detail one (CI smoke). */
int
cmdSampleCompare(const Cli &cli)
{
    std::string full_path = cli.str("full", "");
    std::string sampled_path = cli.str("sampled", "");
    if (full_path.empty() || sampled_path.empty())
        fatal("sample compare needs --full=<report.json> and "
              "--sampled=<report.json> (both from --json=<file>)");
    double min_speedup = cli.real("min-speedup", 0.0);
    double rtol = cli.real("rtol", 0.05);

    struct Report
    {
        double wallMs = 0.0;
        std::map<std::string, Metrics> cells; ///< "row|series" keyed
    };
    auto load = [](const std::string &path) {
        Report r;
        JsonValue root;
        try {
            root = parseJson(readFileText(path));
        } catch (const std::runtime_error &e) {
            fatal("%s: %s", path.c_str(), e.what());
        }
        if (!root.isObject())
            fatal("%s: not a JSON report", path.c_str());
        auto wall = root.object.find("wall_ms");
        if (wall != root.object.end() && wall->second.isNumber())
            r.wallMs = wall->second.num;
        auto results = root.object.find("results");
        if (results == root.object.end() ||
            !results->second.isArray())
            fatal("%s: missing 'results' array", path.c_str());
        for (const JsonValue &cell : results->second.array) {
            if (!cell.isObject())
                fatal("%s: non-object result cell", path.c_str());
            auto get = [&](const char *key) -> const JsonValue & {
                auto it = cell.object.find(key);
                if (it == cell.object.end())
                    fatal("%s: result cell missing '%s'", path.c_str(),
                          key);
                return it->second;
            };
            r.cells[get("row").str + "|" + get("series").str] =
                metricsFromJson(writeJsonCompact(get("metrics")));
        }
        return r;
    };
    Report full = load(full_path);
    Report sampled = load(sampled_path);

    Table t({"cell", "full IPC", "sampled IPC", "ci95", "tolerance",
             "state"});
    int failures = 0;
    for (const auto &[key, sm] : sampled.cells) {
        auto it = full.cells.find(key);
        if (it == full.cells.end())
            fatal("cell '%s' in %s has no counterpart in %s",
                  key.c_str(), sampled_path.c_str(), full_path.c_str());
        const Metrics &fm = it->second;
        // Gating a sampled cell is a statistical statement; a cell
        // with no interval (--samples=1) cannot make one, so refuse
        // outright rather than trivially passing on the rtol floor.
        if (sm.sampling.enabled() && !sm.sampling.hasCi())
            fatal("cell '%s' in %s has no confidence interval "
                  "(%d sample%s) — rerun with --samples>=2 to gate "
                  "a sampled result",
                  key.c_str(), sampled_path.c_str(),
                  sm.sampling.samples,
                  sm.sampling.samples == 1 ? "" : "s");
        double sampled_ipc =
            sm.sampling.enabled() ? sm.sampling.meanIpc : sm.ipc;
        // The statistical tolerance is the sample CI; the rtol floor
        // covers low-variance runs whose CI collapses below the bias
        // the phase model introduces (cold-start, period alignment).
        double tol = std::max(sm.sampling.ci95Half, rtol * fm.ipc);
        bool ok = std::fabs(sampled_ipc - fm.ipc) <= tol;
        failures += ok ? 0 : 1;
        t.addRow({key, Table::num(fm.ipc, 4), Table::num(sampled_ipc, 4),
                  Table::num(sm.sampling.ci95Half, 4),
                  Table::num(tol, 4), ok ? "ok" : "OUT OF TOLERANCE"});
    }
    double speedup =
        sampled.wallMs > 0.0 ? full.wallMs / sampled.wallMs : 0.0;
    t.print(strprintf("sampled vs full: %zu cells, wall %.0f ms vs "
                      "%.0f ms = %.2fx",
                      sampled.cells.size(), sampled.wallMs, full.wallMs,
                      speedup));
    if (failures) {
        std::fprintf(stderr,
                     "sample compare: %d cell(s) out of tolerance\n",
                     failures);
        return 1;
    }
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "sample compare: speedup %.2fx below required "
                     "%.2fx\n",
                     speedup, min_speedup);
        return 1;
    }
    return 0;
}

int
cmdSample(const std::string &positional, const Cli &cli)
{
    if (positional == "compare")
        return cmdSampleCompare(cli);

    std::string what =
        positional.empty() ? cli.str("kernel", "") : positional;
    if (what.empty())
        fatal("sample needs a workload: ltp sample <kernel[,kernel...]>"
              " (or `ltp sample compare --full=... --sampled=...`)");
    std::vector<std::string> kernels = splitCommas(what);

    SimConfig cfg = presetConfig(cli.str("preset", "baseline"), cli);
    cfg.seed = cli.integer("seed", 1);
    applySets(cfg, cli);

    SamplePlan plan = samplePlanFromCli(cli, SamplePlan::defaults());
    if (plan.samples <= 0 || plan.detail == 0)
        fatal("sampling needs --samples > 0 and --sample-detail > 0 "
              "(got %s)", plan.toString().c_str());

    std::string from = cli.str("from", "");
    SweepResult result;
    if (!from.empty()) {
        // Checkpoint restore binds the run to one concrete stream
        // state, so it bypasses the backends (a cached or remote cell
        // could not see the local file) and runs in-process.
        if (kernels.size() != 1)
            fatal("sample --from restores one workload, got %zu",
                  kernels.size());
        auto start = std::chrono::steady_clock::now();
        Checkpoint ckpt;
        try {
            ckpt = loadCheckpointFile(from);
            Sampler sampler(cfg, kernels[0], plan);
            sampler.restoreFrom(ckpt);
            PhaseFn phase;
            if (cli.flag("progress"))
                phase = [](const std::string &p) {
                    std::fprintf(stderr, "\r[%s]        ", p.c_str());
                    std::fflush(stderr);
                };
            Metrics m = sampler.run(phase);
            if (phase)
                std::fprintf(stderr, "\n");
            result.grid.put(kernels[0], cfg.name, m);
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
        result.name = "sample:" + cfg.name;
        result.threads = 1;
        result.backend = "local";
        result.simulations = 1;
        result.wallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    } else {
        SweepSpec spec;
        spec.name = "sample:" + cfg.name;
        spec.lengths = stagingLengths(cli, RunLengths::bench());
        spec.sampling = plan;
        for (const std::string &k : kernels)
            spec.add(k, cfg.name, cfg, k);
        ExecBackendPtr backend = makeBackend(cli);
        bool caching = backend && backend->wantsKey();
        result = Runner(int(cli.integer("threads", 0)), backend)
                     .run(spec, sampleProgressFn(cli, spec.name,
                                                 caching));
    }

    Table t({"kernel", "samples", "mean IPC", "±95% CI", "stddev",
             "ff kIPS"});
    for (const std::string &k : kernels) {
        const Metrics &m = result.grid.at(k, cfg.name);
        bool ci = m.sampling.hasCi();
        t.addRow({k, std::to_string(m.sampling.samples),
                  Table::num(m.sampling.meanIpc, 4),
                  ci ? Table::num(m.sampling.ci95Half, 4) : "n/a",
                  ci ? Table::num(m.sampling.ipcStdDev, 4) : "n/a",
                  Table::num(m.sampling.ffKips, 0)});
    }
    t.print(strprintf("sampled %s (plan %s, seed %llu, %.0f ms)",
                      cfg.name.c_str(), plan.toString().c_str(),
                      static_cast<unsigned long long>(cfg.seed),
                      result.wallMs));
    printBackendSummary(result);
    maybeArchive(cli, result);
    return 0;
}

int
cmdCheckpoint(const std::string &action, const Cli &cli)
{
    if (action == "create") {
        std::string kernel = cli.str("kernel", "");
        if (kernel.empty())
            fatal("checkpoint create needs --kernel=<workload>");
        std::string out = cli.str("out", "");
        if (out.empty())
            fatal("checkpoint create needs --out=<file.ltcp>");
        std::uint64_t at = std::uint64_t(cli.integer("at", 0));
        if (at == 0)
            fatal("checkpoint create needs --at=<instructions> > 0");

        SimConfig cfg = presetConfig(cli.str("preset", "baseline"), cli);
        cfg.seed = cli.integer("seed", 1);
        applySets(cfg, cli);
        try {
            std::vector<std::string> members =
                resolveWorkloadMembers(cfg, kernel);
            MemSystem mem(cfg.mem);
            FastForward ff(cfg, members, mem);
            ff.advanceTo(at);
            std::string name = ff.stream(0).name();
            for (int tid = 1; tid < ff.numThreads(); ++tid)
                name += "+" + ff.stream(tid).name();
            Checkpoint ckpt =
                captureCheckpoint(ff, mem, name, cfg.seed);
            std::string bytes = checkpointToBytes(ckpt);
            writeCheckpointFile(out, bytes);
            std::printf("%s: %s (%zu bytes, fast-forward %.0f kIPS)\n",
                        out.c_str(), checkpointSummary(ckpt).c_str(),
                        bytes.size(), ff.kips());
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
        return 0;
    }
    if (action == "ls" || action == "verify") {
        std::string file = cli.str("file", "");
        if (file.empty())
            fatal("checkpoint %s needs --file=<file.ltcp>",
                  action.c_str());
        try {
            std::string bytes = readFileText(file);
            Checkpoint ckpt = checkpointFromBytes(bytes);
            if (action == "ls") {
                std::printf("%s: %s\n", file.c_str(),
                            checkpointSummary(ckpt).c_str());
                return 0;
            }
            // verify: the decode above already validated magic,
            // version, CRC, and semantics; a byte-exact re-encode
            // proves the file is canonical (no mutation survives).
            if (checkpointToBytes(ckpt) != bytes) {
                std::fprintf(stderr,
                             "%s: decodes but re-encodes differently "
                             "(non-canonical)\n",
                             file.c_str());
                return 1;
            }
            std::printf("%s: OK (%zu bytes, CRC + round-trip verified)\n",
                        file.c_str(), bytes.size());
        } catch (const std::runtime_error &e) {
            fatal("%s", e.what());
        }
        return 0;
    }
    fatal("unknown checkpoint action '%s' (expected create|ls|verify)",
          action.c_str());
}

int
cmdCache(const std::string &action, const Cli &cli)
{
    ResultCache cache(cli.str("cache-dir", ""));

    if (action.empty() || action == "stat") {
        CacheStats s = cache.stats();
        std::printf("cache %s: %llu entries (%llu invalid), %llu "
                    "bytes\n",
                    cache.dir().c_str(),
                    static_cast<unsigned long long>(s.entries),
                    static_cast<unsigned long long>(s.invalid),
                    static_cast<unsigned long long>(s.bytes));
        return 0;
    }
    if (action == "ls") {
        Table t({"key", "config", "workload", "staging", "bytes",
                 "state"});
        for (const CacheEntryInfo &e : cache.list())
            t.addRow({e.key.substr(0, 12), e.config, e.workload,
                      strprintf("%llu/%llu/%llu",
                                static_cast<unsigned long long>(
                                    e.funcWarm),
                                static_cast<unsigned long long>(
                                    e.pipeWarm),
                                static_cast<unsigned long long>(
                                    e.detail)),
                      std::to_string(e.bytes),
                      e.valid ? "ok" : "INVALID"});
        t.print(strprintf("result cache at %s", cache.dir().c_str()));
        return 0;
    }
    if (action == "gc") {
        double days = cli.real("max-age-days", 0.0);
        std::uint64_t max_bytes =
            std::uint64_t(cli.integer("max-bytes", 0));
        std::size_t removed = cache.gc(days, max_bytes);
        std::string why = " (invalid";
        if (days > 0.0)
            why += strprintf(", older than %g days", days);
        if (max_bytes > 0)
            why += strprintf(", evicted down to %llu bytes",
                             static_cast<unsigned long long>(max_bytes));
        why += ")";
        std::printf("cache gc: removed %zu entr%s%s\n", removed,
                    removed == 1 ? "y" : "ies", why.c_str());
        return 0;
    }
    if (action == "clear") {
        std::size_t removed = cache.clear();
        std::printf("cache clear: removed %zu entr%s from %s\n",
                    removed, removed == 1 ? "y" : "ies",
                    cache.dir().c_str());
        return 0;
    }
    fatal("unknown cache action '%s' (expected ls|stat|gc|clear)",
          action.c_str());
}

int
cmdServe(const std::string &action, const Cli &cli)
{
    if (!action.empty()) {
        // Control plane: one-shot RPCs against a running daemon.
        if (action != "ping" && action != "stats" && action != "stop")
            fatal("unknown serve action '%s' (expected ping|stats|stop "
                  "or no action to run the daemon)",
                  action.c_str());
        std::string host = "127.0.0.1";
        int port = int(cli.integer("port", kDefaultServePort));
        try {
            parseHostPort(cli.str("server", ""), &host, &port);
            ServeClientOptions topts;
            topts.replyTimeoutMs = int(cli.integer(
                "server-timeout", topts.replyTimeoutMs));
            ServeBackend client(host, port, topts);
            JsonValue reply =
                client.rpc(action == "stop" ? "shutdown" : action);
            reply.object.erase("id");
            // The per-worker counters read better as a table; keep the
            // machine-readable JSON to the scalar fields.
            JsonValue workers;
            auto wIt = reply.object.find("workers");
            if (wIt != reply.object.end() && wIt->second.isArray()) {
                workers = std::move(wIt->second);
                reply.object.erase("workers");
            }
            std::printf("%s\n", writeJson(reply).c_str());
            if (workers.isArray()) {
                Table t({"worker", "capacity", "up", "dispatched",
                         "completed", "retried", "failed",
                         "peer hits"});
                for (const JsonValue &w : workers.array) {
                    auto f = [&w](const char *key) -> std::string {
                        auto it = w.object.find(key);
                        if (it == w.object.end())
                            return "-";
                        if (it->second.isBool())
                            return it->second.boolean ? "yes" : "NO";
                        return it->second.str;
                    };
                    t.addRow({f("worker"), f("capacity"), f("up"),
                              f("dispatched"), f("completed"),
                              f("retried"), f("failed"),
                              f("peerHits")});
                }
                t.print("remote workers");
            }
            if (action == "stop") {
                auto dIt = reply.object.find("drained");
                if (dIt != reply.object.end() &&
                    dIt->second.isNumber() && dIt->second.num > 0)
                    std::printf("drained %s in-flight cell(s) before "
                                "shutdown\n",
                                dIt->second.str.c_str());
            }
        } catch (const std::exception &e) {
            fatal("%s", e.what());
        }
        return 0;
    }

    ServeOptions opts;
    opts.port = int(cli.integer("port", kDefaultServePort));
    opts.threads = int(cli.integer("threads", 0));
    opts.cacheDir = cli.str("cache-dir", "");
    opts.useCache = !cli.flag("no-cache");
    opts.quiet = cli.flag("quiet");
    opts.workers = cli.list("worker");
    std::string workers_file = cli.str("workers", "");
    if (!workers_file.empty()) {
        try {
            for (const std::string &w : loadWorkerSpecs(workers_file))
                opts.workers.push_back(w);
        } catch (const std::exception &e) {
            fatal("%s", e.what());
        }
    }
    opts.traceDir = cli.str("trace-dir", "");
    opts.drainTimeoutMs =
        int(cli.integer("drain-timeout", opts.drainTimeoutMs));
    try {
        Server server(opts);
        server.start();
        server.waitForShutdown();
        server.stop();
    } catch (const std::exception &e) {
        fatal("%s", e.what());
    }
    return 0;
}

int
cmdPrintConfig(const std::string &preset, const Cli &cli)
{
    if (cli.flag("paths")) {
        for (const std::string &p : configPaths())
            std::printf("%s\n", p.c_str());
        return 0;
    }
    if (preset.empty())
        fatal("print-config needs a preset "
              "(baseline|ltpProposal|limitStudy) or --paths");
    SimConfig cfg = presetConfig(preset, cli);
    applySets(cfg, cli);
    std::printf("%s\n", configToJson(cfg).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(1);
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(0);

    // Extract at most one positional argument, applying the same
    // `--key value` consumption rule Cli uses so a bare token after a
    // valueless flag is read as that flag's value, not the positional.
    // Boolean switches never take a value, so a bare token after one
    // (e.g. `ltp replay --verify traces/`) stays the positional.
    const std::set<std::string> boolean_flags = {
        "--verify", "--paths", "--progress", "--quick", "--check",
        "--no-cache", "--quiet", "--submit"};
    std::string positional;
    std::vector<char *> args;
    std::string prog = std::string(argv[0]) + " " + cmd;
    args.push_back(prog.data());
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0 || arg == "-h") {
            args.push_back(argv[i]);
            // `--key value`: the next bare token belongs to the flag.
            if (arg.rfind('=') == std::string::npos && arg != "-h" &&
                !boolean_flags.count(arg) && i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0)
                args.push_back(argv[++i]);
            continue;
        }
        if (!positional.empty()) {
            std::fprintf(stderr,
                         "ltp %s: unexpected extra argument '%s' "
                         "(already got '%s')\n",
                         cmd.c_str(), argv[i], positional.c_str());
            return 1;
        }
        positional = arg;
    }
    int nargs = static_cast<int>(args.size());

    // Every subcommand accepts the same global flag set through the
    // same parser — staging, seed, threading, archiving, overrides,
    // and the execution-backend/caching flags — so a flag learned on
    // one command works on all of them (commands that have no use for
    // a given global simply don't consult it).
    const std::set<std::string> global = {
        "warm",     "pipewarm",  "detail", "seed",    "threads",
        "set",      "json",      "csv",    "no-cache", "cache-dir",
        "backend",  "server",    "server-timeout"};
    auto flags = [&](std::set<std::string> extra) {
        extra.insert(global.begin(), global.end());
        return extra;
    };

    if (cmd == "run") {
        Cli cli(nargs, args.data(),
                flags({"preset", "mode", "kernel"}),
                "ltp run — simulate one config over kernels");
        rejectPositional(cmd, positional);
        return cmdRun(cli);
    }
    if (cmd == "sweep") {
        Cli cli(nargs, args.data(),
                flags({"progress", "samples", "sample-ff",
                       "sample-warmup", "sample-detail", "submit"}),
                "ltp sweep <scenario.json> — compile and run a "
                "scenario file; --samples/--sample-* override the "
                "scenario's sampling plan; --submit ships the whole "
                "scenario to an `ltp serve` daemon (--server=host:port) "
                "in one request");
        if (positional.empty())
            fatal("sweep needs a scenario file: ltp sweep "
                  "<scenario.json>");
        return cmdSweep(positional, cli);
    }
    if (cmd == "bench") {
        Cli cli(nargs, args.data(),
                flags({"quick", "scenario", "baseline", "check",
                       "profile", "perf-record", "reps"}),
                "ltp bench — measure simulator throughput (kIPS) and "
                "write BENCH_simspeed.json; --baseline + --check fails "
                "on >25% regression (always runs in-process and "
                "uncached: it times the simulator, not the cache).\n"
                "--reps=N keeps the best-of-N wall time per cell "
                "(strips host scheduler noise from ~25 ms cells; the "
                "committed artifact uses --reps=3).\n"
                "--profile attributes each kernel cell's wall time to "
                "pipeline stages (table + JSON `profile` blocks); "
                "--perf-record=<out.data> additionally wraps the bench "
                "in `perf record -g` when perf is installed");
        rejectPositional(cmd, positional);
        return cmdBench(cli);
    }
    if (cmd == "record") {
        Cli cli(nargs, args.data(), flags({"out"}),
                "ltp record <kernel[,kernel...]|scenario.json|all> "
                "--out=<dir> — record .lttr micro-op traces");
        return cmdRecord(positional, cli);
    }
    if (cmd == "replay") {
        Cli cli(nargs, args.data(),
                flags({"preset", "mode", "verify"}),
                "ltp replay <trace.lttr|dir> — replay recorded traces; "
                "--verify diffs the Metrics against execute mode");
        return cmdReplay(positional, cli);
    }
    if (cmd == "list-kernels") {
        Cli cli(nargs, args.data(), flags({}),
                "ltp list-kernels — print the registered kernel suite");
        rejectPositional(cmd, positional);
        return cmdListKernels();
    }
    if (cmd == "classify") {
        Cli cli(nargs, args.data(), flags({}),
                "ltp classify — Section 4.1 MLP-sensitivity "
                "classification");
        rejectPositional(cmd, positional);
        return cmdClassify(cli);
    }
    if (cmd == "print-config") {
        Cli cli(nargs, args.data(), flags({"mode", "paths"}),
                "ltp print-config <preset> — print a preset's config "
                "as JSON");
        return cmdPrintConfig(positional, cli);
    }
    if (cmd == "sample") {
        Cli cli(nargs, args.data(),
                flags({"preset", "mode", "kernel", "samples",
                       "sample-ff", "sample-warmup", "sample-detail",
                       "from", "progress", "full", "sampled",
                       "min-speedup", "rtol"}),
                "ltp sample <kernel[,kernel...]> — interval-sampled "
                "simulation (mean IPC + 95% CI); --samples/--sample-ff/"
                "--sample-warmup/--sample-detail set the plan, "
                "--from=<file.ltcp> restores a checkpoint; `ltp sample "
                "compare --full=a.json --sampled=b.json "
                "[--min-speedup=N --rtol=X]` gates a sampled report "
                "against a full-detail one");
        return cmdSample(positional, cli);
    }
    if (cmd == "checkpoint") {
        Cli cli(nargs, args.data(),
                flags({"preset", "mode", "kernel", "at", "out", "file"}),
                "ltp checkpoint <create|ls|verify> — architectural "
                ".ltcp checkpoints: create --kernel=<w> --at=<insts> "
                "--out=<file>; ls/verify take --file=<file>");
        return cmdCheckpoint(positional, cli);
    }
    if (cmd == "cache") {
        Cli cli(nargs, args.data(),
                flags({"max-age-days", "max-bytes"}),
                "ltp cache <ls|stat|gc|clear> — inspect or prune the "
                "content-addressed result cache; --cache-dir selects "
                "the root, gc takes --max-age-days=N and "
                "--max-bytes=N (oldest-first size eviction)");
        return cmdCache(positional, cli);
    }
    if (cmd == "serve") {
        Cli cli(nargs, args.data(),
                flags({"port", "quiet", "worker", "workers",
                       "trace-dir", "drain-timeout"}),
                "ltp serve [ping|stats|stop] — run the shared "
                "simulation daemon (no action), or control a running "
                "one; --port/--server address it, --threads sizes the "
                "pool, --no-cache disables the shared result cache.\n"
                "Distributed mode: repeatable --worker=host:port (or "
                "--workers=<file>, one host:port per line) fans cells "
                "out to remote worker daemons; --trace-dir resolves "
                "submitted scenarios' trace paths; --drain-timeout=<ms> "
                "bounds the graceful shutdown drain (default 10000)");
        return cmdServe(positional, cli);
    }

    std::fprintf(stderr, "ltp: unknown command '%s'\n\n", cmd.c_str());
    return usage(1);
}
