/**
 * @file
 * Quickstart: simulate one kernel on the Table 1 baseline and on the
 * paper's LTP proposal (IQ 32 / RF 96 + 128-entry 4-port NU-only LTP),
 * and print the comparison.
 *
 *   ./examples/quickstart [--kernel=indirect_stream_fp] [--detail=50000]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace ltp;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"kernel", "detail", "seed"});
    std::string kernel = cli.str("kernel", "indirect_stream_fp");

    RunLengths lengths;
    lengths.detail =
        static_cast<std::uint64_t>(cli.integer("detail", 50000));
    std::uint64_t seed = cli.integer("seed", 1);

    std::printf("LTP quickstart: kernel '%s', %llu detailed instructions\n",
                kernel.c_str(),
                static_cast<unsigned long long>(lengths.detail));

    Metrics base = Simulator::runOnce(
        SimConfig::baseline().withSeed(seed), kernel, lengths);
    Metrics small = Simulator::runOnce(
        SimConfig::baseline().withIq(32).withRegs(96).withSeed(seed)
            .withName("small-iq32-rf96"),
        kernel, lengths);
    Metrics ltp = Simulator::runOnce(
        SimConfig::ltpProposal().withSeed(seed), kernel, lengths);

    Table t({"config", "IPC", "perf vs base", "avg outstanding",
             "IQ occ", "RF occ", "LTP occ", "IQ/RF+LTP ED2P vs base"});
    auto row = [&](const Metrics &m) {
        t.addRow({m.config, Table::num(m.ipc, 3),
                  Table::pct(m.perfDeltaPct(base)),
                  Table::num(m.avgOutstanding, 2), Table::num(m.iqOcc, 1),
                  Table::num(m.rfOcc, 1), Table::num(m.ltpOcc, 1),
                  Table::pct(m.ed2pDeltaPct(base))});
    };
    row(base);
    row(small);
    row(ltp);
    t.print("baseline (Table 1) vs naive shrink vs LTP proposal");

    std::printf("\nThe LTP row should recover most of the naive-shrink "
                "performance loss\nwhile spending far less IQ/RF energy "
                "(Figure 10 of the paper).\n");
    return 0;
}
