/**
 * @file
 * Walkthrough of the paper's running example (Figures 2 and 3).
 *
 * Shows, step by step:
 *   1. the example loop's micro-ops and their dependence structure;
 *   2. the oracle classification (ground truth per Figure 2);
 *   3. the classification the hardware *learns* (UIT + backward
 *      propagation) and how many loop iterations that takes;
 *   4. the end-to-end effect: IQ occupancy and MLP with and without
 *      parking, on a deliberately small IQ (Figure 3's illustration).
 *
 *   ./examples/paper_loop [--iterations=200]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "ltp/oracle.hh"
#include "sim/runner.hh"
#include "trace/kernels.hh"

using namespace ltp;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"iterations", "threads"});
    int iters = int(cli.integer("iterations", 200));
    int threads = int(cli.integer("threads", 0));

    // ---- 1. the loop itself -------------------------------------------
    std::printf("The paper's example loop (Figure 2):\n"
                "    for (i = 0; i < 10,000; i++) {\n"
                "        d = B[A[j--]];   // B misses, A hits\n"
                "        C[i] = d + 5;    // C hits\n"
                "    }\n\n");

    WorkloadPtr w = makePaperLoop();
    w->reset(1);
    std::vector<MicroOp> body;
    for (int s = 0; s < 11; ++s)
        body.push_back(w->next());

    // ---- 2. oracle classification -------------------------------------
    WorkloadPtr w2 = makePaperLoop();
    OracleClassification oracle =
        oracleClassify(*w2, 1, 11ull * (iters + 50), MemConfig{});

    // ---- 3. learned classification ------------------------------------
    RunLengths lengths;
    lengths.funcWarm = 11ull * 50;
    lengths.pipeWarm = 500;
    lengths.detail = 11ull * iters;
    Simulator sim(SimConfig::ltpProposal(), "paper_loop", lengths);
    sim.run();

    const char *names = "ABCDEFGHIJK";
    Table t({"slot", "instruction", "oracle", "learned UIT"});
    for (int s = 0; s < 11; ++s) {
        SeqNum mid = 11ull * (iters / 2) + s; // steady-state instance
        std::string ocls =
            std::string(oracle.urgent(mid) ? "U" : "NU") + "+" +
            (oracle.nonReady(mid) ? "NR" : "R") +
            (oracle.longLatency(mid) ? " (LL)" : "");
        bool urgent = sim.core().uit().lookup(body[s].pc);
        t.addRow({std::string(1, names[s]), body[s].toString(), ocls,
                  urgent ? "Urgent" : "Non-Urgent"});
    }
    t.print("Classification: oracle vs learned (must match Figure 2)");

    // ---- 4. the Figure 3 effect ---------------------------------------
    auto tiny = [&](SimConfig cfg, const char *name) {
        return cfg.withIq(8)
            .withRegs(kInfiniteSize)
            .withLq(kInfiniteSize)
            .withSq(kInfiniteSize)
            .withName(name);
    };
    SweepSpec spec;
    spec.name = "paper_loop_fig3";
    spec.lengths = lengths;
    spec.add("fig3", "traditional",
             tiny(SimConfig::baseline(), "traditional, IQ:8"),
             "paper_loop");
    spec.add("fig3", "ltp", tiny(SimConfig::ltpProposal(), "LTP, IQ:8"),
             "paper_loop");
    SweepResult fig3 = Runner(threads).run(spec);
    const Metrics &trad = fig3.grid.at("fig3", "traditional");
    const Metrics &ltp = fig3.grid.at("fig3", "ltp");

    Table fx({"pipeline", "IPC", "MLP (outstanding)", "IQ in use",
              "in LTP"});
    for (const Metrics &m : {trad, ltp})
        fx.addRow({m.config, Table::num(m.ipc, 3),
                   Table::num(m.avgOutstanding, 2),
                   Table::num(m.iqOcc, 1), Table::num(m.ltpOcc, 1)});
    fx.print("Figure 3: the IQ fills with Non-Ready work unless parked");

    std::printf("\nWith parking, the F/H-class instructions wait in the "
                "LTP queue instead of\nthe IQ, so further iterations can "
                "issue their urgent loads: MLP %.1fx.\n",
                safeDiv(ltp.avgOutstanding, trad.avgOutstanding));
    return 0;
}
