/**
 * @file
 * Classification inspector: for every static instruction of a kernel,
 * compare the oracle's dynamic classification statistics against the
 * state the hardware tables (UIT, hit/miss predictor) learn.
 *
 * This is the debugging lens used while reproducing the paper: if a PC
 * shows high oracle urgency but misses in the UIT (or vice versa), the
 * backward propagation is broken.
 *
 *   ./examples/classification_inspector [--kernel=graph_walk]
 */

#include <cstdio>

#include <map>

#include "common/cli.hh"
#include "common/table.hh"
#include "ltp/oracle.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

using namespace ltp;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"kernel", "detail", "seed"});
    std::string kernel = cli.str("kernel", "graph_walk");
    std::uint64_t seed = cli.integer("seed", 1);
    std::uint64_t n = cli.integer("detail", 40000);

    // Oracle statistics per PC.
    WorkloadPtr w = makeKernel(kernel);
    OracleClassification oracle = oracleClassify(*w, seed, n,
                                                 MemConfig{});
    struct PcStats
    {
        MicroOp op;
        std::uint64_t count = 0, urgent = 0, nonReady = 0, longLat = 0;
    };
    std::map<Addr, PcStats> pcs;
    WorkloadPtr scan = makeKernel(kernel);
    scan->reset(seed);
    for (SeqNum s = 0; s < n; ++s) {
        MicroOp op = scan->next();
        PcStats &st = pcs[op.pc];
        st.op = op;
        st.count += 1;
        st.urgent += oracle.urgent(s);
        st.nonReady += oracle.nonReady(s);
        st.longLat += oracle.longLatency(s);
    }

    // Learned state after an LTP run.
    RunLengths lengths = RunLengths::quick();
    Simulator sim(SimConfig::ltpProposal(LtpMode::NRNU).withSeed(seed),
                  kernel, lengths);
    sim.run();

    Table t({"instruction", "dyn count", "oracle U%", "oracle NR%",
             "oracle LL%", "UIT", "LL pred"});
    for (auto &[pc, st] : pcs) {
        bool uit = sim.core().uit().lookup(pc);
        bool pred = st.op.isLoad() && sim.core().llpred().predictLong(pc);
        auto pct = [&](std::uint64_t v) {
            return Table::num(100.0 * v / st.count, 0) + "%";
        };
        t.addRow({st.op.toString(), std::to_string(st.count),
                  pct(st.urgent), pct(st.nonReady), pct(st.longLat),
                  uit ? "urgent" : "-", pred ? "long" : "-"});
    }
    t.print(strprintf("oracle vs learned classification: %s",
                      kernel.c_str()));

    std::printf("\nllpred accuracy: %.3f | UIT hit rate: %.3f | "
                "branch pred: %.3f\n",
                sim.core().llpred().accuracy(),
                safeDiv(double(sim.core().uit().hits.value()),
                        double(sim.core().uit().lookups.value())),
                sim.core().branchPred().accuracy());
    return 0;
}
