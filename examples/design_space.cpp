/**
 * @file
 * Design-space exploration: sweep IQ size x LTP configuration for one
 * kernel and print an IPC / ED2P matrix — the kind of study Figure 10
 * distils.  Useful as a template for driving the library from your own
 * harness: declare every cell in a SweepSpec, shard it across the
 * Runner's pool, then read the grid.
 *
 *   ./examples/design_space [--kernel=bucket_shuffle] [--detail=30000]
 *                           [--mode=NU|NR|NRNU] [--threads=N]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/runner.hh"

using namespace ltp;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"kernel", "detail", "seed", "mode", "threads"});
    std::string kernel = cli.str("kernel", "bucket_shuffle");
    std::string mode_str = cli.str("mode", "NU");
    LtpMode mode = mode_str == "NRNU"
                       ? LtpMode::NRNU
                       : (mode_str == "NR" ? LtpMode::NR : LtpMode::NU);

    RunLengths lengths = RunLengths::quick();
    lengths.detail = cli.integer("detail", 30000);
    std::uint64_t seed = cli.integer("seed", 1);
    int threads = int(cli.integer("threads", 0));

    const std::vector<int> iq_sweep = {64, 48, 32, 24, 16};
    const std::vector<int> reg_sweep = {128, 96};

    // Declare the whole (IQ x regs x {off,on}) matrix plus the Table 1
    // baseline, then run it in one sharded pass.
    SweepSpec spec;
    spec.name = "design_space";
    spec.lengths = lengths;
    spec.add("base", "base", SimConfig::baseline().withSeed(seed),
             kernel);
    auto cell = [](int iq, int regs) {
        return std::to_string(iq) + "/" + std::to_string(regs);
    };
    for (int iq : iq_sweep) {
        for (int regs : reg_sweep) {
            spec.add(cell(iq, regs), "off",
                     SimConfig::baseline()
                         .withIq(iq)
                         .withRegs(regs)
                         .withSeed(seed),
                     kernel);
            spec.add(cell(iq, regs), "on",
                     SimConfig::ltpProposal(mode)
                         .withIq(iq)
                         .withRegs(regs)
                         .withSeed(seed),
                     kernel);
        }
    }
    SweepResult result = Runner(threads).run(spec);

    const Metrics &base = result.grid.at("base", "base");
    std::printf("kernel %s: Table-1 baseline IPC %.3f (%zu sims, %d "
                "threads, %.0f ms)\n",
                kernel.c_str(), base.ipc, result.simulations,
                result.threads, result.wallMs);

    Table t({"IQ", "regs", "no-LTP IPC", "LTP IPC", "LTP perf vs base",
             "LTP ED2P vs base", "parked", "in LTP"});
    for (int iq : iq_sweep) {
        for (int regs : reg_sweep) {
            const Metrics &off = result.grid.at(cell(iq, regs), "off");
            const Metrics &on = result.grid.at(cell(iq, regs), "on");
            t.addRow({std::to_string(iq), std::to_string(regs),
                      Table::num(off.ipc, 3), Table::num(on.ipc, 3),
                      Table::pct(on.perfDeltaPct(base)),
                      Table::pct(on.ed2pDeltaPct(base)),
                      Table::num(on.parkedFrac, 2),
                      Table::num(on.ltpOcc, 1)});
        }
    }
    t.print(strprintf("design space for %s (LTP mode %s)",
                      kernel.c_str(), ltpModeName(mode)));
    return 0;
}
