/**
 * @file
 * Design-space exploration: sweep IQ size x LTP configuration for one
 * kernel and print an IPC / ED2P matrix — the kind of study Figure 10
 * distils.  Useful as a template for driving the library from your own
 * harness.
 *
 *   ./examples/design_space [--kernel=bucket_shuffle] [--detail=30000]
 *                           [--mode=NU|NR|NRNU]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace ltp;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"kernel", "detail", "seed", "mode"});
    std::string kernel = cli.str("kernel", "bucket_shuffle");
    std::string mode_str = cli.str("mode", "NU");
    LtpMode mode = mode_str == "NRNU"
                       ? LtpMode::NRNU
                       : (mode_str == "NR" ? LtpMode::NR : LtpMode::NU);

    RunLengths lengths = RunLengths::quick();
    lengths.detail = cli.integer("detail", 30000);
    std::uint64_t seed = cli.integer("seed", 1);

    Metrics base =
        Simulator::runOnce(SimConfig::baseline().withSeed(seed), kernel,
                           lengths);
    std::printf("kernel %s: Table-1 baseline IPC %.3f\n", kernel.c_str(),
                base.ipc);

    Table t({"IQ", "regs", "no-LTP IPC", "LTP IPC", "LTP perf vs base",
             "LTP ED2P vs base", "parked", "in LTP"});
    for (int iq : {64, 48, 32, 24, 16}) {
        for (int regs : {128, 96}) {
            Metrics off = Simulator::runOnce(SimConfig::baseline()
                                                 .withIq(iq)
                                                 .withRegs(regs)
                                                 .withSeed(seed),
                                             kernel, lengths);
            SimConfig on_cfg = SimConfig::ltpProposal(mode)
                                   .withIq(iq)
                                   .withRegs(regs)
                                   .withSeed(seed);
            Metrics on = Simulator::runOnce(on_cfg, kernel, lengths);
            t.addRow({std::to_string(iq), std::to_string(regs),
                      Table::num(off.ipc, 3), Table::num(on.ipc, 3),
                      Table::pct(on.perfDeltaPct(base)),
                      Table::pct(on.ed2pDeltaPct(base)),
                      Table::num(on.parkedFrac, 2),
                      Table::num(on.ltpOcc, 1)});
        }
    }
    t.print(strprintf("design space for %s (LTP mode %s)",
                      kernel.c_str(), ltpModeName(mode)));
    return 0;
}
