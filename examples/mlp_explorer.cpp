/**
 * @file
 * MLP sensitivity explorer: applies the paper's Section 4.1 criteria
 * to every kernel in the suite and reports the measurements behind the
 * split (speedup IQ256/IQ32, outstanding-request ratio, average load
 * latency), then shows what LTP does for each kernel.
 *
 *   ./examples/mlp_explorer [--detail=30000]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "sim/mlp_class.hh"
#include "trace/suite.hh"

using namespace ltp;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"detail", "seed"});
    RunLengths lengths = RunLengths::quick();
    lengths.detail = cli.integer("detail", 30000);
    std::uint64_t seed = cli.integer("seed", 1);

    Table t({"kernel", "class", "speedup 256/32", "outstanding ratio",
             "avg load lat", "LTP perf vs shrink", "parked frac"});

    for (const std::string &name : allKernelNames()) {
        MlpClassification c = classifyMlp(name, lengths, seed);

        Metrics shrink = Simulator::runOnce(
            SimConfig::baseline().withIq(32).withRegs(96).withSeed(seed),
            name, lengths);
        Metrics ltp = Simulator::runOnce(
            SimConfig::ltpProposal().withSeed(seed), name, lengths);

        t.addRow({name, c.sensitive ? "SENSITIVE" : "insensitive",
                  Table::num(c.speedup, 2),
                  Table::num(c.outstandingRatio, 2),
                  Table::num(c.avgLoadLatency, 1),
                  Table::pct(ltp.perfDeltaPct(shrink)),
                  Table::num(ltp.parkedFrac, 2)});
    }
    t.print("Section 4.1 MLP classification + LTP effect per kernel");

    std::printf("\nReading guide: SENSITIVE kernels meet all three "
                "criteria (latency > L2,\nspeedup > 5%%, outstanding "
                "+10%%).  'LTP perf vs shrink' compares the paper's\n"
                "proposal (IQ32/RF96+LTP) against the naive shrink "
                "(IQ32/RF96, no LTP).\n");
    return 0;
}
