/**
 * @file
 * Tests for the parallel experiment runner: the thread pool, sweep
 * declaration, parallel-vs-serial bit-identity, concurrent ResultGrid
 * access, and the JSON report round-trip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/runner.hh"

namespace ltp {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran]() { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 100);
}

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

TEST(SweepSpec, CrossProductShape)
{
    std::vector<SimConfig> configs = {
        SimConfig::baseline().withName("a"),
        SimConfig::baseline().withName("b")};
    SweepSpec spec = SweepSpec::cross("x", configs, {"k1", "k2", "k3"},
                                      RunLengths::quick());
    EXPECT_EQ(spec.jobs.size(), 6u);
    EXPECT_EQ(spec.simulationCount(), 6u);
}

TEST(SweepSpec, GroupJobsCountPerKernel)
{
    SweepSpec spec;
    spec.addGroup("row", "series", SimConfig::baseline(), {"k1", "k2"},
                  "grp");
    spec.add("row2", "series", SimConfig::baseline(), "k3");
    EXPECT_EQ(spec.jobs.size(), 2u);
    EXPECT_EQ(spec.simulationCount(), 3u);
}

// ---------------------------------------------------------------------------
// Runner determinism: parallel must be bit-identical to serial
// ---------------------------------------------------------------------------

void
expectIdentical(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.cycles, b.cycles);
    // Bit-identity, not approximate equality.
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cpi, b.cpi);
    EXPECT_EQ(a.avgOutstanding, b.avgOutstanding);
    EXPECT_EQ(a.avgLoadLatency, b.avgLoadLatency);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.iqOcc, b.iqOcc);
    EXPECT_EQ(a.rfOcc, b.rfOcc);
    EXPECT_EQ(a.ltpOcc, b.ltpOcc);
    EXPECT_EQ(a.parked, b.parked);
    EXPECT_EQ(a.unparked, b.unparked);
    EXPECT_EQ(a.energy.iq, b.energy.iq);
    EXPECT_EQ(a.energy.rf, b.energy.rf);
    EXPECT_EQ(a.energy.ltp, b.energy.ltp);
    EXPECT_EQ(a.ed2p, b.ed2p);
}

TEST(Runner, ParallelBitIdenticalToSerial)
{
    // 2 configs x 4 kernels, as the issue prescribes.
    std::vector<SimConfig> configs = {
        SimConfig::baseline().withSeed(7).withName("baseline"),
        SimConfig::ltpProposal().withSeed(7).withName("ltp")};
    std::vector<std::string> kernels = {"paper_loop", "hash_probe",
                                        "dense_compute", "graph_walk"};
    SweepSpec spec = SweepSpec::cross("bitident", configs, kernels,
                                      RunLengths::quick());

    SweepResult serial = Runner(1).run(spec);
    SweepResult parallel = Runner(4).run(spec);

    EXPECT_EQ(serial.threads, 1);
    EXPECT_EQ(parallel.threads, 4);
    EXPECT_EQ(serial.simulations, 8u);
    EXPECT_EQ(parallel.simulations, 8u);
    for (const std::string &k : kernels)
        for (const SimConfig &cfg : configs)
            expectIdentical(serial.grid.at(k, cfg.name),
                            parallel.grid.at(k, cfg.name));
}

TEST(Runner, GroupAveragesBitIdenticalToSerial)
{
    SweepSpec spec;
    spec.name = "groups";
    spec.lengths = RunLengths::quick();
    spec.addGroup("g", "ilp", SimConfig::baseline(),
                  {"dense_compute", "reduction", "div_heavy"}, "ilp");
    spec.addGroup("g", "mlp", SimConfig::baseline(),
                  {"graph_walk", "hash_probe"}, "mlp");

    SweepResult serial = Runner(1).run(spec);
    SweepResult parallel = Runner(3).run(spec);
    expectIdentical(serial.grid.at("g", "ilp"),
                    parallel.grid.at("g", "ilp"));
    expectIdentical(serial.grid.at("g", "mlp"),
                    parallel.grid.at("g", "mlp"));

    // The average label is preserved and the runner matches the
    // experiment-layer helper.
    EXPECT_EQ(serial.grid.at("g", "ilp").workload, "ilp");
    Metrics direct = runGroupAverage(
        SimConfig::baseline(), {"dense_compute", "reduction", "div_heavy"},
        "ilp", RunLengths::quick());
    expectIdentical(serial.grid.at("g", "ilp"), direct);
}

TEST(Runner, SerialPathReportsProgressPerCell)
{
    // --threads=1 sweeps go through the same ProgressFn as sharded
    // ones: one callback per completed cell, done climbing to total.
    SweepSpec spec = SweepSpec::cross(
        "serial_progress", {SimConfig::baseline()},
        {"paper_loop", "dense_compute", "graph_walk"}, RunLengths::quick());

    std::vector<Progress> seen;
    Runner(1).run(spec,
                  [&seen](const Progress &p) { seen.push_back(p); });

    ASSERT_EQ(seen.size(), spec.simulationCount());
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i].done, i + 1);
        EXPECT_EQ(seen[i].total, spec.simulationCount());
        EXPECT_EQ(seen[i].hits, 0u); // local backend: nothing cached
    }
}

TEST(Runner, ThreadedPathReportsFinalProgress)
{
    SweepSpec spec = SweepSpec::cross(
        "threaded_progress", {SimConfig::baseline()},
        {"paper_loop", "dense_compute"}, RunLengths::quick());

    std::vector<Progress> seen;
    Runner(2).run(spec,
                  [&seen](const Progress &p) { seen.push_back(p); });

    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.back().done, spec.simulationCount());
    EXPECT_EQ(seen.back().total, spec.simulationCount());
}

TEST(Runner, ExperimentHelpersMatchDirectSimulation)
{
    std::vector<Metrics> suite =
        runSuite(SimConfig::baseline(), {"paper_loop", "hash_probe"},
                 RunLengths::quick(), 2);
    ASSERT_EQ(suite.size(), 2u);
    expectIdentical(suite[0],
                    Simulator::runOnce(SimConfig::baseline(), "paper_loop",
                                       RunLengths::quick()));
    expectIdentical(suite[1],
                    Simulator::runOnce(SimConfig::baseline(), "hash_probe",
                                       RunLengths::quick()));
}

// ---------------------------------------------------------------------------
// ResultGrid
// ---------------------------------------------------------------------------

TEST(ResultGrid, ConcurrentPutFromPool)
{
    ResultGrid grid;
    ThreadPool pool(8);
    const int rows = 16, series = 8;

    std::vector<std::future<void>> futures;
    for (int r = 0; r < rows; ++r) {
        for (int s = 0; s < series; ++s) {
            futures.push_back(pool.submit([&grid, r, s]() {
                Metrics m;
                m.ipc = r + s * 0.01;
                m.cycles = std::uint64_t(r * 1000 + s);
                grid.put("row" + std::to_string(r),
                         "s" + std::to_string(s), m);
            }));
        }
    }
    for (auto &f : futures)
        f.get();

    EXPECT_EQ(grid.size(), std::size_t(rows * series));
    for (int r = 0; r < rows; ++r)
        for (int s = 0; s < series; ++s)
            EXPECT_EQ(grid.at("row" + std::to_string(r),
                              "s" + std::to_string(s))
                          .cycles,
                      std::uint64_t(r * 1000 + s));
}

// ResultGrid::at's descriptive std::out_of_range is covered in
// test_sim.cc (Experiment.ResultGridMissingKeyNamesTheKey).

TEST(ResultGrid, RowsAndSeriesEnumerate)
{
    ResultGrid grid;
    Metrics m;
    grid.put("b", "s1", m);
    grid.put("a", "s2", m);
    grid.put("a", "s1", m);
    EXPECT_EQ(grid.rows(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(grid.series("a"), (std::vector<std::string>{"s1", "s2"}));
    EXPECT_TRUE(grid.series("zz").empty());
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

Metrics
distinctiveMetrics()
{
    Metrics m;
    m.config = "cfg \"quoted\"";
    m.workload = "kernel\\path";
    m.insts = 123456789012345ull;
    m.cycles = 987654321ull;
    m.ipc = 1.2345678901234567;
    m.cpi = 1.0 / m.ipc;
    m.avgOutstanding = 3.75;
    m.avgLoadLatency = 142.625;
    m.dramReads = 42;
    m.iqOcc = 17.5;
    m.robOcc = 201.25;
    m.lqOcc = 33.0;
    m.sqOcc = 12.5;
    m.rfOcc = 99.875;
    m.ltpOcc = 64.125;
    m.ltpRegsOcc = 21.5;
    m.ltpLoadsOcc = 3.25;
    m.ltpStoresOcc = 1.125;
    m.ltpEnabledFrac = 0.9375;
    m.parkedFrac = 0.4375;
    m.parked = 1111;
    m.unparked = 1110;
    m.forcedUnparks = 7;
    m.pressureUnparks = 13;
    m.llpredAccuracy = 0.8125;
    m.bpAccuracy = 0.96875;
    m.energy.iq = 1234.5678;
    m.energy.rf = 8765.4321;
    m.energy.ltp = 111.222;
    m.ed2p = 1e18;
    m.edp = 2.5e9;
    return m;
}

TEST(Report, MetricsJsonRoundTripIsExact)
{
    Metrics m = distinctiveMetrics();
    Metrics back = metricsFromJson(metricsToJson(m));
    expectIdentical(m, back);
    EXPECT_EQ(back.config, "cfg \"quoted\"");
    EXPECT_EQ(back.workload, "kernel\\path");
    EXPECT_EQ(back.robOcc, m.robOcc);
    EXPECT_EQ(back.llpredAccuracy, m.llpredAccuracy);
    EXPECT_EQ(back.forcedUnparks, m.forcedUnparks);
    EXPECT_EQ(back.pressureUnparks, m.pressureUnparks);
    EXPECT_EQ(back.edp, m.edp);
}

TEST(Report, MalformedJsonThrows)
{
    EXPECT_THROW(metricsFromJson("{\"ipc\": "), std::runtime_error);
    EXPECT_THROW(metricsFromJson("not json at all"), std::runtime_error);
    EXPECT_THROW(metricsFromJson("{\"a\": 1} trailing"),
                 std::runtime_error);
}

TEST(Report, SweepReportContainsEveryCell)
{
    SweepResult result;
    result.name = "mini";
    result.threads = 3;
    result.simulations = 2;
    result.wallMs = 12.5;
    result.grid.put("r1", "s1", distinctiveMetrics());
    result.grid.put("r2", "s1", distinctiveMetrics());

    std::string json = reportToJson(result);
    EXPECT_NE(json.find("\"sweep\": \"mini\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"r1\""), std::string::npos);
    EXPECT_NE(json.find("\"r2\""), std::string::npos);

    std::string csv = reportToCsv(result);
    // Header + one line per cell.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

} // namespace
} // namespace ltp
