/**
 * @file
 * SMT (multi-context) core tests.
 *
 * The two contracts under test:
 *  1. **N=1 invisibility** — a single-threaded machine (the paper's
 *     configuration) is bit-identical to the pre-SMT simulator: the
 *     numThreads/fetchPolicy fields, the smt: workload plumbing, and
 *     the per-thread metrics machinery must not perturb a single
 *     context's Metrics in any field.
 *  2. **2-way integrity** — a multiprogrammed pair completes under
 *     both fetch policies, reports per-thread slices whose commit
 *     counts match the same kernels run standalone (fixed instruction
 *     samples: counts are exact up to commit-width crossing jitter,
 *     IPC is *expected* to differ — that is the contention being
 *     modelled).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"
#include "trace/trace_workload.hh"

#ifndef LTP_SCENARIO_DIR
#define LTP_SCENARIO_DIR "scenarios"
#endif

namespace ltp {
namespace {

RunLengths
tiny()
{
    return RunLengths{3000, 500, 1500};
}

// ---------------------------------------------------------------------
// smt: workload-tuple names

TEST(SmtNames, RoundTripAndMembership)
{
    EXPECT_TRUE(isSmtName("smt:a+b"));
    EXPECT_FALSE(isSmtName("graph_walk"));
    EXPECT_FALSE(isSmtName("trace:foo.lttr"));

    std::vector<std::string> members = {"graph_walk", "dense_compute"};
    std::string name = smtName(members);
    EXPECT_EQ(name, "smt:graph_walk+dense_compute");
    EXPECT_EQ(smtMembers(name), members);

    EXPECT_EQ(smtMembers("smt:solo"),
              std::vector<std::string>{"solo"});
    EXPECT_THROW(smtMembers("smt:"), std::runtime_error);
    // Malformed tuples must not silently drop members.
    EXPECT_THROW(smtMembers("smt:a+"), std::runtime_error);
    EXPECT_THROW(smtMembers("smt:a++b"), std::runtime_error);
    // '+' is the separator and cannot appear inside a member.
    EXPECT_THROW(smtName({"a", "dir+x/b.lttr"}), std::runtime_error);
    EXPECT_THROW(smtName({""}), std::runtime_error);
}

// ---------------------------------------------------------------------
// N=1 invisibility

TEST(SmtNEquals1, ExplicitSingleThreadConfigIsBitIdentical)
{
    // numThreads=1 spelled out, under either fetch policy, must not
    // change a single field of the Metrics JSON.
    Metrics base = Simulator::runOnce(SimConfig::ltpProposal(LtpMode::NRNU),
                                      "graph_walk", tiny());
    for (const char *policy : {"roundRobin", "icount"}) {
        SimConfig cfg = SimConfig::ltpProposal(LtpMode::NRNU);
        applyOverride(cfg, "core.numThreads", "1");
        applyOverride(cfg, "core.fetchPolicy", policy);
        Metrics m = Simulator::runOnce(cfg, "graph_walk", tiny());
        EXPECT_EQ(metricsToJson(base), metricsToJson(m)) << policy;
    }
}

TEST(SmtNEquals1, SingleMemberTupleIsBitIdentical)
{
    // The smt: plumbing with one member is the member.
    Metrics plain = Simulator::runOnce(SimConfig::baseline(),
                                       "dense_compute", tiny());
    Metrics tuple = Simulator::runOnce(SimConfig::baseline(),
                                       "smt:dense_compute", tiny());
    EXPECT_EQ(metricsToJson(plain), metricsToJson(tuple));
}

TEST(SmtNEquals1, SingleThreadJsonHasNoSmtBlock)
{
    Metrics m = Simulator::runOnce(SimConfig::baseline(), "paper_loop",
                                   tiny());
    ASSERT_EQ(m.threads.size(), 1u);
    EXPECT_EQ(metricsToJson(m).find("\"smt\""), std::string::npos);
    // The one per-thread slice mirrors the aggregate numbers.
    EXPECT_EQ(m.threads[0].insts, m.insts);
    EXPECT_EQ(m.threads[0].cycles, m.cycles);
}

// ---------------------------------------------------------------------
// 2-way multiprogrammed runs

class SmtPairProp : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SmtPairProp, PairCompletesAndThreadCountsMatchStandalone)
{
    const std::string kernelA = "graph_walk";
    const std::string kernelB = "dense_compute";

    SimConfig cfg = SimConfig::ltpProposal(LtpMode::NRNU);
    applyOverride(cfg, "core.fetchPolicy", GetParam());
    Metrics smt = Simulator::runOnce(
        cfg, smtName({kernelA, kernelB}), tiny());

    ASSERT_EQ(smt.threads.size(), 2u);
    EXPECT_EQ(smt.workload, kernelA + "+" + kernelB);
    EXPECT_EQ(smt.threads[0].workload, kernelA);
    EXPECT_EQ(smt.threads[1].workload, kernelB);

    // Per-thread commit counts are fixed instruction samples: each
    // thread commits its quota exactly, plus at most one commit
    // group's crossing jitter — the *same* contract its standalone
    // run obeys.  (IPC differs under contention by design; counts do
    // not.)
    Metrics aloneA = Simulator::runOnce(cfg, kernelA, tiny());
    Metrics aloneB = Simulator::runOnce(cfg, kernelB, tiny());
    std::uint64_t quota = tiny().detail;
    std::uint64_t width = std::uint64_t(cfg.core.commitWidth);
    for (const Metrics *alone : {&aloneA, &aloneB}) {
        ASSERT_EQ(alone->threads.size(), 1u);
        EXPECT_GE(alone->threads[0].insts, quota);
        EXPECT_LT(alone->threads[0].insts, quota + width);
    }
    for (const ThreadMetrics &tm : smt.threads) {
        EXPECT_GE(tm.insts, quota);
        EXPECT_LT(tm.insts, quota + width);
        EXPECT_GT(tm.ipc, 0.0);
        EXPECT_GE(tm.cycles, quota / std::uint64_t(cfg.core.commitWidth));
    }
    std::uint64_t diffA = smt.threads[0].insts > aloneA.threads[0].insts
                              ? smt.threads[0].insts -
                                    aloneA.threads[0].insts
                              : aloneA.threads[0].insts -
                                    smt.threads[0].insts;
    std::uint64_t diffB = smt.threads[1].insts > aloneB.threads[0].insts
                              ? smt.threads[1].insts -
                                    aloneB.threads[0].insts
                              : aloneB.threads[0].insts -
                                    smt.threads[1].insts;
    EXPECT_LE(diffA, width);
    EXPECT_LE(diffB, width);

    // Contention can only stretch a thread relative to running alone.
    EXPECT_GE(smt.threads[0].cycles, aloneA.threads[0].cycles);
    EXPECT_GE(smt.threads[1].cycles, aloneB.threads[0].cycles);

    // Weighted speedup: bounded by the thread count, positive, and
    // computable from the standalone runs.
    double ws = weightedSpeedup(smt, {aloneA, aloneB});
    EXPECT_GT(ws, 0.0);
    EXPECT_LE(ws, 2.0 + 1e-9);

    // The aggregate region closes when the last thread closes.
    EXPECT_EQ(smt.cycles,
              std::max(smt.threads[0].cycles, smt.threads[1].cycles));
    EXPECT_EQ(smt.insts, smt.threads[0].insts + smt.threads[1].insts);
}

INSTANTIATE_TEST_SUITE_P(Policies, SmtPairProp,
                         ::testing::Values("roundRobin", "icount"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             return std::string(info.param);
                         });

TEST(SmtRun, HomogeneousPairReplicatesTheKernel)
{
    // A plain kernel name on a 2-context core runs two copies.
    SimConfig cfg = SimConfig::baseline();
    applyOverride(cfg, "core.numThreads", "2");
    Metrics m = Simulator::runOnce(cfg, "paper_loop", tiny());
    ASSERT_EQ(m.threads.size(), 2u);
    EXPECT_EQ(m.threads[0].workload, "paper_loop");
    EXPECT_EQ(m.threads[1].workload, "paper_loop");
    EXPECT_EQ(m.workload, "paper_loop+paper_loop");
}

TEST(SmtRun, TupleSizeConflictsWithNumThreads)
{
    SimConfig cfg = SimConfig::baseline();
    applyOverride(cfg, "core.numThreads", "3");
    EXPECT_THROW(Simulator::runOnce(
                     cfg, "smt:paper_loop+graph_walk", tiny()),
                 std::runtime_error);
}

TEST(SmtRun, ParkingFreesSharedWindowForTheCoRunner)
{
    // The paper's claim, in the SMT setting: parking the memory-bound
    // thread's stalled instructions must not slow the compute-bound
    // co-runner down vs. the same pair with LTP off — the parked
    // thread stops squatting on the shared IQ.  (Round-robin keeps
    // fetch bandwidth fair so the comparison isolates window
    // contention.)
    Metrics off = Simulator::runOnce(
        SimConfig::baseline(), "smt:graph_walk+dense_compute", tiny());
    Metrics on = Simulator::runOnce(
        SimConfig::ltpProposal(LtpMode::NRNU).withIq(64).withRegs(128),
        "smt:graph_walk+dense_compute", tiny());
    ASSERT_EQ(off.threads.size(), 2u);
    ASSERT_EQ(on.threads.size(), 2u);
    EXPECT_GT(on.parked, 0u);
    // dense_compute (thread 1) must run at least as fast with the
    // co-runner parked, with headroom for second-order noise.
    EXPECT_LE(on.threads[1].cycles,
              off.threads[1].cycles * 11 / 10 + 50);
}

TEST(SmtRun, BoundedTraceMembersSurviveCoRunnerSkew)
{
    // Regression: a fast thread must not keep consuming its stream
    // while a much slower co-runner finishes — a bounded trace member
    // recorded at exactly this staging would be walked off its end.
    // The quota fetch-gate caps every thread at its recorded region.
    namespace fs = std::filesystem;
    std::string dir = ::testing::TempDir() + "ltp_smt_traces";
    fs::create_directories(dir);
    RunLengths l = tiny();
    auto record = [&](const std::string &kernel) {
        TraceInfo info;
        info.kernel = kernel;
        info.seed = 1;
        info.funcWarm = l.funcWarm;
        info.pipeWarm = l.pipeWarm;
        info.detail = l.detail;
        std::string path = dir + "/" + kernel + ".lttr";
        writeTraceFile(path, recordTrace(info));
        return traceName(path);
    };
    // dense_compute finishes its quota many times faster than
    // graph_walk — the exact skew that used to exhaust its trace.
    std::string pair = smtName({record("graph_walk"),
                                record("dense_compute")});
    Metrics m = Simulator::runOnce(SimConfig::baseline(), pair, l);
    ASSERT_EQ(m.threads.size(), 2u);
    EXPECT_EQ(m.workload, "graph_walk+dense_compute");
    EXPECT_GE(m.threads[0].insts, l.detail);
    EXPECT_GE(m.threads[1].insts, l.detail);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Metrics serialization of the SMT breakdown

TEST(SmtMetricsJson, RoundTripCoversPerThreadFields)
{
    Metrics m;
    m.config = "cfg";
    m.workload = "a+b";
    m.insts = 3000;
    m.cycles = 1234;
    m.ipc = 2.431;
    m.weightedSpeedup = 1.625;
    ThreadMetrics t0;
    t0.workload = "a";
    t0.insts = 1500;
    t0.cycles = 1234;
    t0.ipc = 1.2156;
    ThreadMetrics t1;
    t1.workload = "b";
    t1.insts = 1500;
    t1.cycles = 987;
    t1.ipc = 1.5198;
    m.threads = {t0, t1};

    std::string json = metricsToJson(m);
    EXPECT_NE(json.find("\"smt\""), std::string::npos);
    Metrics back = metricsFromJson(json);
    ASSERT_EQ(back.threads.size(), 2u);
    EXPECT_EQ(back.threads[0].workload, "a");
    EXPECT_EQ(back.threads[1].workload, "b");
    EXPECT_EQ(back.threads[0].insts, 1500u);
    EXPECT_EQ(back.threads[1].cycles, 987u);
    EXPECT_DOUBLE_EQ(back.threads[0].ipc, 1.2156);
    EXPECT_DOUBLE_EQ(back.weightedSpeedup, 1.625);
    // Second trip is textually stable.
    EXPECT_EQ(json, metricsToJson(back));
}

TEST(SmtMetricsJson, WeightedSpeedupRejectsShapeMismatch)
{
    Metrics smt;
    smt.threads.resize(2);
    smt.threads[0].ipc = 1.0;
    smt.threads[1].ipc = 1.0;
    EXPECT_THROW(weightedSpeedup(smt, {}), std::runtime_error);
    Metrics alone;
    alone.ipc = 0.0;
    EXPECT_THROW(weightedSpeedup(smt, {alone, alone}),
                 std::runtime_error);
    alone.ipc = 2.0;
    EXPECT_DOUBLE_EQ(weightedSpeedup(smt, {alone, alone}), 1.0);
}

// ---------------------------------------------------------------------
// Scenario schema: workloads.pairs

TEST(SmtScenario, PairsCompileToSmtJobs)
{
    Scenario sc = loadScenarioFile(std::string(LTP_SCENARIO_DIR) +
                                   "/smt_pairs.json");
    ASSERT_EQ(sc.workloadKind, Scenario::WorkloadKind::Pairs);
    SweepSpec spec = sc.compile(1);
    ASSERT_FALSE(spec.jobs.empty());
    for (const SweepJob &job : spec.jobs) {
        ASSERT_EQ(job.kernels.size(), 1u);
        EXPECT_TRUE(isSmtName(job.kernels[0])) << job.kernels[0];
        EXPECT_GE(smtMembers(job.kernels[0]).size(), 2u);
    }
    // The fetch-policy sweep names both policies.
    bool saw_rr = false, saw_icount = false;
    for (const SweepJob &job : spec.jobs) {
        saw_rr = saw_rr ||
                 job.cfg.core.fetchPolicy == FetchPolicy::RoundRobin;
        saw_icount = saw_icount ||
                     job.cfg.core.fetchPolicy == FetchPolicy::ICount;
    }
    EXPECT_TRUE(saw_rr);
    EXPECT_TRUE(saw_icount);
}

TEST(SmtScenario, PairsRejectSingletonsAndUnknownKernels)
{
    auto parse = [](const std::string &pairs) {
        scenarioFromJson("{\"name\": \"x\", \"workloads\": {\"pairs\": " +
                         pairs +
                         "}, \"configs\": [{\"series\": \"s\"}]}");
    };
    EXPECT_THROW(parse("[[\"paper_loop\"]]"), std::runtime_error);
    EXPECT_THROW(parse("[]"), std::runtime_error);
    EXPECT_THROW(parse("[[\"paper_loop\", \"nope\"]]"),
                 std::runtime_error);
    EXPECT_NO_THROW(parse("[[\"paper_loop\", \"graph_walk\"]]"));
}

TEST(SmtScenario, PairSweepRunsBothSeries)
{
    // A miniature in-C++ pairs study: baseline vs LTP over one pair,
    // sharded — per-thread columns land in the grid.
    SweepSpec spec;
    spec.name = "smt_mini";
    spec.lengths = tiny();
    std::string pair = smtName({"indirect_stream_fp", "div_heavy"});
    spec.add("pair", "base", SimConfig::baseline(), pair);
    spec.add("pair", "ltp", SimConfig::ltpProposal(LtpMode::NRNU), pair);
    SweepResult result = Runner(2).run(spec);
    for (const char *series : {"base", "ltp"}) {
        const Metrics &m = result.grid.at("pair", series);
        ASSERT_EQ(m.threads.size(), 2u) << series;
        EXPECT_GT(m.threads[0].ipc, 0.0);
        EXPECT_GT(m.threads[1].ipc, 0.0);
    }
}

} // namespace
} // namespace ltp
