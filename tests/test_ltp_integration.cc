/**
 * @file
 * End-to-end LTP behaviour: learned classification convergence on the
 * paper's example loop, parking and wakeup flows, performance
 * relations the paper reports, monitor gating on compute-bound code,
 * deadlock-freedom under pathological resource pressure, and the
 * Non-Ready ticket machinery.
 */

#include <gtest/gtest.h>

#include "sim/mlp_class.hh"
#include "sim/simulator.hh"
#include "trace/kernels.hh"

namespace ltp {
namespace {

RunLengths
quick()
{
    return RunLengths::quick();
}

TEST(LtpIntegration, UitConvergesToFigure2OnPaperLoop)
{
    Simulator sim(SimConfig::ltpProposal(), "paper_loop", quick());
    sim.run();
    Uit &uit = sim.core().uit();

    // Recover the static PCs of one iteration.
    WorkloadPtr w = makePaperLoop();
    w->reset(1);
    std::vector<MicroOp> iter;
    for (int i = 0; i < 11; ++i)
        iter.push_back(w->next());

    // Figure 2: A,B,C,D,E urgent; F,G,H,I,J,K not.
    const bool expect_urgent[11] = {true, true, true, true, true,
                                    false, false, false, false, false,
                                    false};
    for (int s = 0; s < 11; ++s)
        EXPECT_EQ(uit.lookup(iter[s].pc), expect_urgent[s])
            << "slot " << s << ": " << iter[s].toString();
}

TEST(LtpIntegration, ParksMajorityOfNonUrgentWork)
{
    Metrics m = Simulator::runOnce(SimConfig::ltpProposal(),
                                   "indirect_stream_fp", quick());
    // 8 of 13 instructions per iteration are Non-Urgent.
    EXPECT_GT(m.parkedFrac, 0.4);
    EXPECT_LT(m.parkedFrac, 0.8);
    EXPECT_GT(m.ltpOcc, 10.0);
    EXPECT_GT(m.ltpEnabledFrac, 0.8);
}

TEST(LtpIntegration, RecoversSmallIqPerformance)
{
    // The paper's headline: IQ 32 + RF 96 + LTP ~= IQ 64 + RF 128
    // baseline on MLP-sensitive code, far better than the naive shrink.
    Metrics base = Simulator::runOnce(SimConfig::baseline(),
                                      "indirect_stream_fp", quick());
    Metrics small = Simulator::runOnce(
        SimConfig::baseline().withIq(32).withRegs(96),
        "indirect_stream_fp", quick());
    Metrics ltp = Simulator::runOnce(SimConfig::ltpProposal(),
                                     "indirect_stream_fp", quick());
    EXPECT_GT(ltp.ipc, small.ipc * 1.05); // clearly better than shrink
    EXPECT_GT(ltp.ipc, base.ipc * 0.90);  // close to the big baseline
}

TEST(LtpIntegration, MlpIncreasesWithLtp)
{
    // Figure 1b: LTP raises the number of outstanding requests at a
    // fixed small IQ.
    Metrics small = Simulator::runOnce(
        SimConfig::baseline().withIq(32).withRegs(96),
        "indirect_stream_fp", quick());
    Metrics ltp = Simulator::runOnce(SimConfig::ltpProposal(),
                                     "indirect_stream_fp", quick());
    EXPECT_GT(ltp.avgOutstanding, small.avgOutstanding * 1.1);
}

TEST(LtpIntegration, MonitorPowersOffOnComputeBoundCode)
{
    // Figure 7 bottom: compute-bound phases keep LTP power-gated, so
    // nothing is parked despite everything missing in the UIT.
    Metrics m = Simulator::runOnce(SimConfig::ltpProposal(),
                                   "dense_compute", quick());
    EXPECT_LT(m.ltpEnabledFrac, 0.1);
    EXPECT_LT(m.parkedFrac, 0.05);

    // And performance is unharmed relative to the same small core.
    Metrics small = Simulator::runOnce(
        SimConfig::baseline().withIq(32).withRegs(96), "dense_compute",
        quick());
    EXPECT_GT(m.ipc, small.ipc * 0.97);
}

TEST(LtpIntegration, MonitorDisabledParksEverythingOnComputeCode)
{
    // With the monitor forced off (always enabled), compute-bound code
    // parks nearly everything — the waste Section 5.2 warns about.
    Metrics m = Simulator::runOnce(
        SimConfig::ltpProposal().withMonitor(false), "dense_compute",
        quick());
    // Bounded by the 4 insert ports at IPC ~5, and with no long-latency
    // instructions in the ROB everything unparks immediately — pure
    // parking churn (the energy waste Section 5.2 gates away), far more
    // than the ~0 a working monitor leaves.
    EXPECT_GT(m.parkedFrac, 0.10);
    EXPECT_GT(m.ltpOcc, 1.0);
}

TEST(LtpIntegration, ForcedUnparkKeepsTinyLtpCoreLive)
{
    // Pathological configuration: tiny IQ, tiny register files, tiny
    // LTP.  The Section 5.4 machinery (reserved registers, forced
    // unpark, emergency IQ slot) must keep the core making progress.
    SimConfig cfg = SimConfig::ltpProposal();
    cfg.core.iqSize = 4;
    cfg.core.intRegs = 40;
    cfg.core.fpRegs = 40;
    cfg.core.ltp.entries = 8;
    cfg.core.ltp.reservedRegs = 4;
    RunLengths lengths = quick();
    lengths.detail = 5000;
    Metrics m = Simulator::runOnce(cfg, "indirect_stream_fp", lengths);
    EXPECT_GE(m.insts, 5000u); // no deadlock panic
    EXPECT_LT(m.insts, 5008u);
    EXPECT_GT(m.ipc, 0.0);
}

TEST(LtpIntegration, DeadlockStressAllKernels)
{
    // Sweep the stress configuration across the kernels with the most
    // varied dependence shapes; the watchdog panics on any deadlock.
    for (const char *kernel :
         {"paper_loop", "graph_walk", "hash_probe", "div_heavy"}) {
        SimConfig cfg = SimConfig::ltpProposal(LtpMode::NRNU);
        cfg.core.iqSize = 6;
        cfg.core.intRegs = 44;
        cfg.core.fpRegs = 44;
        cfg.core.ltp.entries = 12;
        cfg.core.ltp.numTickets = 4;
        RunLengths lengths = quick();
        lengths.detail = 3000;
        Metrics m = Simulator::runOnce(cfg, kernel, lengths);
        EXPECT_GE(m.insts, 3000u) << kernel; // no deadlock panic
        EXPECT_LT(m.insts, 3008u) << kernel;
    }
}

TEST(LtpIntegration, NrModeParksDependentLoads)
{
    // graph_walk's fan-out loads are Urgent + Non-Ready: NU-only
    // parking cannot touch them, NR parking can (the paper's astar
    // observation).
    Metrics nu = Simulator::runOnce(
        SimConfig::ltpProposal(LtpMode::NU).withOracle(), "graph_walk",
        quick());
    Metrics nr = Simulator::runOnce(
        SimConfig::ltpProposal(LtpMode::NR).withOracle().withTickets(128),
        "graph_walk", quick());
    EXPECT_GT(nr.ltpLoadsOcc, nu.ltpLoadsOcc);
}

TEST(LtpIntegration, TicketsClearViaEarlyWakeup)
{
    SimConfig cfg = SimConfig::ltpProposal(LtpMode::NRNU);
    cfg.core.ltp.numTickets = 64;
    Simulator sim(cfg, "indirect_stream_fp", quick());
    Metrics m = sim.run();
    EXPECT_GT(sim.core().tickets().broadcasts.value(), 100u);
    EXPECT_GT(m.insts, 0u);
}

TEST(LtpIntegration, FewTicketsDegradeGracefully)
{
    // Figure 11: shrinking the ticket pool loses performance but never
    // correctness.
    SimConfig few = SimConfig::ltpProposal(LtpMode::NRNU).withTickets(4);
    SimConfig many =
        SimConfig::ltpProposal(LtpMode::NRNU).withTickets(128);
    Metrics m_few = Simulator::runOnce(few, "graph_walk", quick());
    Metrics m_many = Simulator::runOnce(many, "graph_walk", quick());
    EXPECT_NEAR(double(m_few.insts), double(m_many.insts), 8.0);
    EXPECT_GT(m_few.ipc, 0.0);
    // Allow noise, but a tiny pool must not be *better*.
    EXPECT_LE(m_few.ipc, m_many.ipc * 1.05);
}

TEST(LtpIntegration, OracleModeRunsLimitConfig)
{
    Metrics m = Simulator::runOnce(SimConfig::limitStudy(LtpMode::NRNU),
                                   "indirect_stream_fp", quick());
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_GT(m.parkedFrac, 0.3);
}

TEST(LtpIntegration, LimitStudyLtpBeatsNoLtpAtTinyIq)
{
    // Figure 6 row 1 at IQ 16: parking recovers most of the loss.
    RunLengths lengths = quick();
    Metrics no_ltp = Simulator::runOnce(
        SimConfig::limitStudy(LtpMode::Off).withIq(16),
        "indirect_stream_fp", lengths);
    Metrics ltp = Simulator::runOnce(
        SimConfig::limitStudy(LtpMode::NRNU).withIq(16),
        "indirect_stream_fp", lengths);
    EXPECT_GT(ltp.ipc, no_ltp.ipc * 1.15);
}

TEST(LtpIntegration, ParkedStoreOrdersDependentLoad)
{
    // Section 5.3: a load must not bypass an older parked store to the
    // same address.  hash-probe-like custom stream: store to X parked
    // (non-urgent), load from X follows.
    Metrics m = Simulator::runOnce(SimConfig::ltpProposal(),
                                   "cache_stream", quick());
    // cache_stream stores and reloads its buffer; correctness here is
    // "no panic / full commit", timing sanity below.
    EXPECT_GT(m.ipc, 0.5);
}

TEST(LtpIntegration, UnparkPortsBoundWakeups)
{
    SimConfig one_port = SimConfig::ltpProposal();
    one_port.core.ltp.insertPorts = 1;
    one_port.core.ltp.extractPorts = 1;
    Metrics m1 = Simulator::runOnce(one_port, "indirect_stream_fp",
                                    quick());
    Metrics m4 = Simulator::runOnce(SimConfig::ltpProposal(),
                                    "indirect_stream_fp", quick());
    // Fewer ports => no faster (Figure 10's port sweep direction).
    EXPECT_LE(m1.ipc, m4.ipc * 1.03);
}

TEST(LtpIntegration, LtpOffMatchesPlainCore)
{
    // LtpMode::Off must behave identically to a never-parking config.
    Metrics off = Simulator::runOnce(
        SimConfig::baseline().withIq(32).withRegs(96), "sparse_gather",
        quick());
    SimConfig off2 = SimConfig::ltpProposal();
    off2.core.ltp.mode = LtpMode::Off;
    Metrics off2m = Simulator::runOnce(off2, "sparse_gather", quick());
    EXPECT_EQ(off2m.parked, 0u);
    EXPECT_NEAR(off2m.ipc, off.ipc, off.ipc * 0.01);
}

} // namespace
} // namespace ltp
