/**
 * @file
 * Unit tests for the common substrate: stats, RNG, tables, CLI, types,
 * binary I/O.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/binio.hh"
#include "common/cli.hh"
#include "common/ring.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace ltp {
namespace {

TEST(BinIo, LittleEndianRoundTrip)
{
    std::string b;
    putU8(b, 0xab);
    putU16le(b, 0x1234);
    putU32le(b, 0xdeadbeefu);
    putU64le(b, 0x0123456789abcdefull);
    ASSERT_EQ(b.size(), 1u + 2 + 4 + 8);
    // Explicit little-endian byte order on the wire.
    EXPECT_EQ(static_cast<unsigned char>(b[1]), 0x34);
    EXPECT_EQ(static_cast<unsigned char>(b[2]), 0x12);
    ByteReader r(b);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinIo, ReaderBoundsChecked)
{
    std::string b = "abc";
    EXPECT_THROW((void)ByteReader(b).u32(), std::runtime_error);
    ByteReader r(b);
    r.skip(3);
    EXPECT_THROW((void)r.u8(), std::runtime_error);
    // A construction offset past the end must not wrap the check.
    ByteReader past(b, b.size() + 1);
    EXPECT_EQ(past.remaining(), 0u);
    EXPECT_THROW((void)past.u8(), std::runtime_error);
    EXPECT_THROW((void)ByteReader(b, 2).raw(2), std::runtime_error);
}

TEST(BinIo, Crc32KnownVectors)
{
    // The classic check value for "123456789" (IEEE 802.3).
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(crc32(""), 0x00000000u);
    // Incremental == one-shot.
    Crc32 inc;
    inc.update("1234");
    inc.update("56789");
    EXPECT_EQ(inc.value(), 0xcbf43926u);
}

TEST(Types, BlockAlign)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
}

TEST(Types, InfiniteSentinel)
{
    EXPECT_TRUE(isInfinite(kInfiniteSize));
    EXPECT_TRUE(isInfinite(kInfiniteSize + 5));
    EXPECT_FALSE(isInfinite(256));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Counter, Accumulates)
{
    Counter c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanAndReset)
{
    Average a;
    a.sample(1.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.count(), 2u);
    a.reset();
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(OccupancyStat, ExactIntegration)
{
    OccupancyStat occ;
    occ.set(2, 0);   // level 2 over [0,10)
    occ.set(6, 10);  // level 6 over [10,20)
    EXPECT_DOUBLE_EQ(occ.mean(20), (2 * 10 + 6 * 10) / 20.0);
}

TEST(OccupancyStat, AddSub)
{
    OccupancyStat occ;
    occ.add(3, 0);
    occ.sub(1, 5);
    EXPECT_EQ(occ.level(), 2);
    EXPECT_DOUBLE_EQ(occ.mean(10), (3 * 5 + 2 * 5) / 10.0);
}

TEST(OccupancyStat, ResetKeepsLevel)
{
    OccupancyStat occ;
    occ.set(4, 0);
    occ.reset(100);
    EXPECT_EQ(occ.level(), 4);
    EXPECT_DOUBLE_EQ(occ.mean(110), 4.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10); // buckets [0,10) [10,20) [20,30) [30,40) + ovf
    h.sample(5);
    h.sample(15);
    h.sample(39);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow
    EXPECT_EQ(h.total(), 4u);
}

TEST(SafeDiv, ZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeDiv(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(6.0, 2.0), 3.0);
}

TEST(PctDelta, Basics)
{
    EXPECT_NEAR(pctDelta(110, 100), 10.0, 1e-9);
    EXPECT_NEAR(pctDelta(90, 100), -10.0, 1e-9);
}

TEST(Table, RendersAllRows)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::string s = t.toString();
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("a,bb"), std::string::npos);
    EXPECT_NE(csv.find("333,4"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(-12.345, 1), "-12.3%");
    EXPECT_EQ(Table::pct(4.2, 1), "+4.2%");
}

TEST(Cli, ParsesForms)
{
    const char *argv[] = {"prog", "--alpha=3", "--beta", "7", "--gamma"};
    Cli cli(5, const_cast<char **>(argv), {"alpha", "beta", "gamma"});
    EXPECT_EQ(cli.integer("alpha", 0), 3);
    EXPECT_EQ(cli.integer("beta", 0), 7);
    EXPECT_TRUE(cli.flag("gamma"));
    EXPECT_EQ(cli.integer("missing", 9), 9);
    EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, RepeatedFlagsCollectInOrder)
{
    const char *argv[] = {"prog", "--set=a=1", "--set", "b=2",
                          "--set=c=3"};
    Cli cli(5, const_cast<char **>(argv), {"set"});
    EXPECT_EQ(cli.list("set"),
              (std::vector<std::string>{"a=1", "b=2", "c=3"}));
    // The scalar accessor sees the last occurrence.
    EXPECT_EQ(cli.str("set", ""), "c=3");
    EXPECT_TRUE(cli.list("missing").empty());
}

TEST(CliDeathTest, HelpPrintsKnownFlagsAndExitsZero)
{
    const char *argv[] = {"prog", "--help"};
    EXPECT_EXIT(
        {
            Cli cli(2, const_cast<char **>(argv), {"alpha", "beta"});
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, UnknownFlagStaysFatal)
{
    const char *argv[] = {"prog", "--alhpa=3"};
    EXPECT_EXIT(
        {
            Cli cli(2, const_cast<char **>(argv), {"alpha"});
        },
        ::testing::ExitedWithCode(1), "unknown flag --alhpa");
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 5, "z"), "x=5 y=z");
    EXPECT_EQ(strprintf("empty"), "empty");
}

// ---------------------------------------------------------------------
// Ring buffer

TEST(Ring, PushPopBothEndsAndIndexing)
{
    Ring<int> r(4);
    EXPECT_TRUE(r.empty());
    r.push_back(1);
    r.push_back(2);
    r.push_back(3);
    EXPECT_EQ(r.front(), 1);
    EXPECT_EQ(r.back(), 3);
    EXPECT_EQ(r[1], 2);
    r.pop_front();
    EXPECT_EQ(r.front(), 2);
    r.push_front(0);
    EXPECT_EQ(r.front(), 0);
    EXPECT_EQ(r.size(), 3u);
    r.pop_back();
    EXPECT_EQ(r.back(), 2);
    EXPECT_EQ(r.size(), 2u);
}

TEST(Ring, GrowsPastCapacityHintPreservingOrder)
{
    Ring<int> r(2);
    // Force wraparound before growth: cycle the head off zero.
    r.push_back(-1);
    r.pop_front();
    for (int i = 0; i < 100; ++i)
        r.push_back(i);
    ASSERT_EQ(r.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r[std::size_t(i)], i);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.front(), i);
        r.pop_front();
    }
    EXPECT_TRUE(r.empty());
}

TEST(Ring, MixedEndTrafficWrapsCleanly)
{
    Ring<int> r(4);
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 3; ++i)
            r.push_back(next_in++);
        for (int i = 0; i < 2; ++i) {
            EXPECT_EQ(r.front(), next_out);
            r.pop_front();
            next_out += 1;
        }
    }
    EXPECT_EQ(r.size(), std::size_t(next_in - next_out));
}

TEST(Ring, InterleavedStreamsStayFifoAcrossWraps)
{
    // SMT-style use: two logical streams (tid 0 / tid 1) share one
    // ring, pushed and popped at different rates, so entries of both
    // streams straddle every wrap boundary.  Each stream must still
    // come out in its own FIFO order.
    struct Entry
    {
        int tid;
        int value;
    };
    Ring<Entry> r(4); // small capacity: wraps and grows repeatedly
    int next_in[2] = {0, 0};
    int next_out[2] = {0, 0};
    int pending = 0;
    for (int round = 0; round < 200; ++round) {
        // Uneven production: stream 0 pushes two, stream 1 pushes one.
        r.push_back(Entry{0, next_in[0]++});
        r.push_back(Entry{1, next_in[1]++});
        r.push_back(Entry{0, next_in[0]++});
        pending += 3;
        // Drain two per round, whichever stream is at the head.
        for (int i = 0; i < 2; ++i) {
            Entry e = r.front();
            r.pop_front();
            pending -= 1;
            ASSERT_EQ(e.value, next_out[e.tid]) << "round " << round;
            next_out[e.tid] += 1;
        }
    }
    EXPECT_EQ(r.size(), std::size_t(pending));
    while (!r.empty()) {
        Entry e = r.front();
        r.pop_front();
        EXPECT_EQ(e.value, next_out[e.tid]);
        next_out[e.tid] += 1;
    }
    EXPECT_EQ(next_out[0], next_in[0]);
    EXPECT_EQ(next_out[1], next_in[1]);
}

TEST(Ring, ClearMidIterationResetsForReuse)
{
    // A squash can clear a queue while a stage is walking it by
    // index; the walk must stop at the (now zero) size and the ring
    // must be immediately reusable, wherever the head had wrapped to.
    Ring<int> r(4);
    for (int spin = 0; spin < 7; ++spin) {
        // Rotate the head off zero before filling.
        r.push_back(-1);
        r.pop_front();
        for (int i = 0; i < 5; ++i)
            r.push_back(i);
        std::size_t visited = 0;
        for (std::size_t i = 0; i < r.size(); ++i) {
            visited += 1;
            if (i == 2) {
                r.clear();
                // Size is re-read by the loop condition: the walk
                // terminates instead of indexing freed slots.
            }
        }
        EXPECT_EQ(visited, 3u);
        EXPECT_TRUE(r.empty());
        EXPECT_EQ(r.size(), 0u);
        // Reuse after clear: order is fresh.
        r.push_back(10);
        r.push_front(9);
        EXPECT_EQ(r.front(), 9);
        EXPECT_EQ(r.back(), 10);
        r.pop_front();
        r.pop_front();
        EXPECT_TRUE(r.empty());
    }
}

TEST(Ring, CapacityAssertsOnEmptyPops)
{
    // sim_assert is compiled into release builds: popping an empty
    // ring must die loudly, not corrupt the head index.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Ring<int> r(2);
    EXPECT_DEATH(r.pop_front(), "assertion failed");
    EXPECT_DEATH(r.pop_back(), "assertion failed");
    r.push_back(1);
    r.pop_front();
    EXPECT_DEATH(r.pop_front(), "assertion failed");
    // After surviving the (forked) death tests, the parent's ring is
    // still coherent.
    r.push_back(2);
    EXPECT_EQ(r.front(), 2);
}

} // namespace
} // namespace ltp
