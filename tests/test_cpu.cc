/**
 * @file
 * Unit tests for the core's structural components: register file with
 * the LTP reserve, RAT_LTP, ROB, IQ (ordering + emergency slot), LSQ
 * (forwarding conflicts, drain order), branch predictor, FU pool.
 */

#include <gtest/gtest.h>

#include "cpu/branch_pred.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/exec.hh"
#include "cpu/iq.hh"
#include "cpu/lsq.hh"
#include "cpu/regfile.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"

namespace ltp {
namespace {

DynInst
makeInst(SeqNum seq, OpClass opc = OpClass::IntAlu, Addr addr = 0,
         int size = 8)
{
    DynInst inst;
    OpBuilder b(opc);
    b.pc(0x1000 + seq * 4);
    if (opc != OpClass::Store && opc != OpClass::Branch)
        b.dst(intReg(1));
    if (isMem(opc))
        b.mem(addr, size);
    inst.init(b.build(), seq, 0);
    return inst;
}

// ---------------------------------------------------------------------
// PhysRegFile

TEST(RegFile, AllocationPriorities)
{
    PhysRegFile rf(10, 4); // 4 reserved
    EXPECT_EQ(rf.freeFor(AllocPriority::Rename), 6);
    EXPECT_EQ(rf.freeFor(AllocPriority::Unpark), 9);
    EXPECT_EQ(rf.freeFor(AllocPriority::Forced), 10);

    // Rename can take only 6.
    for (int i = 0; i < 6; ++i)
        EXPECT_GE(rf.allocate(AllocPriority::Rename), 0);
    EXPECT_EQ(rf.allocate(AllocPriority::Rename), -1);
    // Unpark can take 3 more (one held for Forced).
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(rf.allocate(AllocPriority::Unpark), 0);
    EXPECT_EQ(rf.allocate(AllocPriority::Unpark), -1);
    // Forced takes the very last one.
    EXPECT_GE(rf.allocate(AllocPriority::Forced), 0);
    EXPECT_EQ(rf.allocate(AllocPriority::Forced), -1);
}

TEST(RegFile, ReleaseRecycles)
{
    PhysRegFile rf(4, 0);
    std::int32_t a = rf.allocate(AllocPriority::Rename);
    std::int32_t b = rf.allocate(AllocPriority::Rename);
    EXPECT_EQ(rf.allocatedCount(), 2);
    rf.release(a);
    rf.release(b);
    EXPECT_EQ(rf.allocatedCount(), 0);
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(rf.allocate(AllocPriority::Rename), 0);
}

TEST(RegFile, ReadyBitLifecycle)
{
    PhysRegFile rf(4, 0);
    std::int32_t r = rf.allocate(AllocPriority::Rename);
    EXPECT_FALSE(rf.ready(r));
    rf.setReady(r);
    EXPECT_TRUE(rf.ready(r));
    rf.release(r);
    std::int32_t r2 = rf.allocate(AllocPriority::Rename);
    // Freshly allocated registers are never ready, even when recycled.
    if (r2 == r) {
        EXPECT_FALSE(rf.ready(r2));
    }
}

TEST(RegFile, OccupancyIntegrates)
{
    // Sampled style: mutators are untimed; advanceTo integrates the
    // level up to each cycle boundary (Core::tick does this).
    PhysRegFile rf(8, 0);
    auto a = rf.allocate(AllocPriority::Rename); // level 1 from cycle 0
    rf.occupancy.advanceTo(10);                  // [0,10) at level 1
    rf.release(a);                               // level 0 from cycle 10
    EXPECT_NEAR(rf.occupancy.mean(20), 0.5, 1e-9);
}

// ---------------------------------------------------------------------
// LtpRat

TEST(LtpRat, ResolveLifecycle)
{
    LtpRat rat(4);
    int id = rat.allocate();
    ASSERT_GE(id, 0);
    EXPECT_EQ(rat.lookup(id), -1);
    rat.resolve(id, 17);
    EXPECT_EQ(rat.lookup(id), 17);
    rat.release(id);
    EXPECT_EQ(rat.availableCount(), 4);
}

TEST(LtpRat, Exhaustion)
{
    LtpRat rat(2);
    EXPECT_GE(rat.allocate(), 0);
    EXPECT_GE(rat.allocate(), 0);
    EXPECT_EQ(rat.allocate(), -1);
    EXPECT_EQ(rat.exhaustions.value(), 1u);
}

// ---------------------------------------------------------------------
// ROB

TEST(Rob, FifoOrder)
{
    Rob rob(4);
    DynInst a = makeInst(1), b = makeInst(2);
    rob.push(&a);
    rob.push(&b);
    EXPECT_EQ(rob.head(), &a);
    rob.popHead();
    EXPECT_EQ(rob.head(), &b);
    EXPECT_EQ(rob.size(), 1);
}

TEST(Rob, SquashWalksYoungestFirst)
{
    Rob rob(8);
    DynInst insts[5];
    for (int i = 0; i < 5; ++i) {
        insts[i] = makeInst(i + 1);
        rob.push(&insts[i]);
    }
    std::vector<SeqNum> undone;
    rob.squashYoungerThan(2, [&](DynInst *inst) {
        undone.push_back(inst->seq);
    });
    ASSERT_EQ(undone.size(), 3u);
    EXPECT_EQ(undone[0], 5u); // reverse order
    EXPECT_EQ(undone[2], 3u);
    EXPECT_EQ(rob.size(), 2);
}

// ---------------------------------------------------------------------
// IssueQueue

TEST(Iq, InsertKeepsSeqOrder)
{
    IssueQueue iq(8);
    DynInst a = makeInst(5), b = makeInst(2), c = makeInst(9);
    iq.insert(&a);
    iq.insert(&b);
    iq.insert(&c);
    std::vector<SeqNum> order;
    iq.forEachInOrder([&](DynInst *i) { order.push_back(i->seq); });
    EXPECT_EQ(order, (std::vector<SeqNum>{2, 5, 9}));
}

TEST(Iq, EmergencySlotBeyondCapacity)
{
    IssueQueue iq(2);
    DynInst a = makeInst(1), b = makeInst(2), c = makeInst(3);
    iq.insert(&a);
    iq.insert(&b);
    EXPECT_FALSE(iq.hasSpace());
    EXPECT_TRUE(iq.hasEmergencySpace());
    iq.insert(&c, /*emergency=*/true);
    EXPECT_FALSE(iq.hasEmergencySpace());
    EXPECT_EQ(iq.size(), 3);
}

TEST(Iq, RemoveAndSquash)
{
    IssueQueue iq(8);
    DynInst insts[4];
    for (int i = 0; i < 4; ++i) {
        insts[i] = makeInst(i + 1);
        iq.insert(&insts[i]);
    }
    iq.remove(&insts[1]);
    EXPECT_FALSE(insts[1].inIq);
    iq.squashYoungerThan(2);
    EXPECT_EQ(iq.size(), 1);
    EXPECT_TRUE(insts[0].inIq);
    EXPECT_FALSE(insts[3].inIq);
}

// ---------------------------------------------------------------------
// LSQ

TEST(Lsq, ConflictYoungestOlderStore)
{
    Lsq lsq(8, 8, 0, 0);
    DynInst st1 = makeInst(1, OpClass::Store, 0x1000, 8);
    DynInst st2 = makeInst(2, OpClass::Store, 0x1000, 8);
    DynInst st3 = makeInst(3, OpClass::Store, 0x2000, 8);
    DynInst ld = makeInst(4, OpClass::Load, 0x1000, 8);
    lsq.insertStore(&st1);
    lsq.insertStore(&st2);
    lsq.insertStore(&st3);
    lsq.insertLoad(&ld);
    EXPECT_EQ(lsq.olderStoreConflict(&ld), &st2); // youngest older match
}

TEST(Lsq, PartialOverlapConflicts)
{
    Lsq lsq(8, 8, 0, 0);
    DynInst st = makeInst(1, OpClass::Store, 0x1004, 8); // [0x1004,0x100c)
    DynInst ld = makeInst(2, OpClass::Load, 0x1008, 8);  // [0x1008,0x1010)
    lsq.insertStore(&st);
    lsq.insertLoad(&ld);
    EXPECT_EQ(lsq.olderStoreConflict(&ld), &st);
    DynInst ld2 = makeInst(3, OpClass::Load, 0x100c, 8); // disjoint
    lsq.insertLoad(&ld2);
    EXPECT_EQ(lsq.olderStoreConflict(&ld2), nullptr);
}

TEST(Lsq, YoungerStoreNeverConflicts)
{
    Lsq lsq(8, 8, 0, 0);
    DynInst ld = makeInst(1, OpClass::Load, 0x1000, 8);
    DynInst st = makeInst(2, OpClass::Store, 0x1000, 8);
    lsq.insertLoad(&ld);
    lsq.insertStore(&st);
    EXPECT_EQ(lsq.olderStoreConflict(&ld), nullptr);
}

TEST(Lsq, ShadowStoresVisible)
{
    // A parked store (delayed SQ allocation) must still order loads.
    Lsq lsq(8, 8, 0, 0);
    DynInst st = makeInst(1, OpClass::Store, 0x3000, 8);
    DynInst ld = makeInst(2, OpClass::Load, 0x3000, 8);
    lsq.addShadowStore(&st);
    lsq.insertLoad(&ld);
    EXPECT_EQ(lsq.olderStoreConflict(&ld), &st);
    lsq.removeShadowStore(&st);
    EXPECT_EQ(lsq.olderStoreConflict(&ld), nullptr);
}

TEST(Lsq, DrainOnlyCommittedHead)
{
    Lsq lsq(8, 8, 0, 0);
    DynInst st1 = makeInst(1, OpClass::Store, 0x1000, 8);
    DynInst st2 = makeInst(2, OpClass::Store, 0x2000, 8);
    lsq.insertStore(&st1);
    lsq.insertStore(&st2);
    EXPECT_EQ(lsq.oldestDrainableStore(), nullptr);
    st2.committed = true; // younger committed, head not: no drain
    EXPECT_EQ(lsq.oldestDrainableStore(), nullptr);
    st1.committed = true;
    EXPECT_EQ(lsq.oldestDrainableStore(), &st1);
    lsq.removeStore(&st1);
    EXPECT_EQ(lsq.oldestDrainableStore(), &st2);
}

TEST(Lsq, ReserveLimits)
{
    Lsq lsq(4, 4, 2, 2);
    EXPECT_TRUE(lsq.lqHasSpace(false));
    DynInst a = makeInst(1, OpClass::Load, 0x0, 8);
    DynInst b = makeInst(2, OpClass::Load, 0x8, 8);
    lsq.insertLoad(&a);
    lsq.insertLoad(&b);
    EXPECT_FALSE(lsq.lqHasSpace(false)); // reserve blocks rename
    EXPECT_TRUE(lsq.lqHasSpace(true));   // unpark may proceed
}

TEST(Lsq, CollectWaitingLoads)
{
    Lsq lsq(8, 8, 0, 0);
    DynInst ld1 = makeInst(2, OpClass::Load, 0x1000, 8);
    DynInst ld2 = makeInst(3, OpClass::Load, 0x1000, 8);
    ld1.waitingOnStore = true;
    ld1.waitStoreSeq = 1;
    ld2.waitingOnStore = true;
    ld2.waitStoreSeq = 7;
    lsq.insertLoad(&ld1);
    lsq.insertLoad(&ld2);
    std::vector<DynInst *> out;
    lsq.collectLoadsWaitingOn(1, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], &ld1);
}

// ---------------------------------------------------------------------
// Branch predictor

TEST(BranchPred, LearnsLoopBranch)
{
    BranchPredictor bp;
    // Always-taken loop branch: once the global history register has
    // saturated (~14 outcomes) and the counter trained, predictions
    // are correct.
    int correct_late = 0;
    for (int i = 0; i < 100; ++i) {
        bool ok = bp.predict(0x4000, true, 0x3000);
        if (i >= 20)
            correct_late += ok;
    }
    EXPECT_EQ(correct_late, 80);
}

TEST(BranchPred, BtbMissIsMispredict)
{
    BranchPredictor bp;
    // Train direction via a different PC mapping to the same counter is
    // unlikely; first taken encounter must be wrong (no BTB target).
    EXPECT_FALSE(bp.predict(0x5000, true, 0x100));
}

TEST(BranchPred, NotTakenDefaultCorrect)
{
    BranchPredictor bp;
    // Counters initialise weakly not-taken: a never-taken branch is
    // predicted correctly from the start.
    EXPECT_TRUE(bp.predict(0x6000, false, 0));
    EXPECT_TRUE(bp.predict(0x6000, false, 0));
}

TEST(BranchPred, AccuracyStat)
{
    BranchPredictor bp;
    for (int i = 0; i < 300; ++i)
        bp.predict(0x7000, true, 0x6000);
    EXPECT_GT(bp.accuracy(), 0.9);
}

// ---------------------------------------------------------------------
// FU pool

TEST(FuPool, WidthPerGroup)
{
    FuConfig cfg;
    cfg.alu = 2;
    FuPool fu(cfg);
    EXPECT_TRUE(fu.canIssue(OpClass::IntAlu, 0));
    fu.issue(OpClass::IntAlu, 0);
    fu.issue(OpClass::IntAlu, 0);
    EXPECT_FALSE(fu.canIssue(OpClass::IntAlu, 0));
    // Other groups unaffected.
    EXPECT_TRUE(fu.canIssue(OpClass::Load, 0));
    EXPECT_TRUE(fu.canIssue(OpClass::IntAlu, 1));
}

TEST(FuPool, UnpipelinedDivOccupiesUnit)
{
    FuConfig cfg;
    cfg.mul = 1;
    FuPool fu(cfg);
    int lat = fu.issue(OpClass::IntDiv, 10);
    EXPECT_EQ(lat, opInfo(OpClass::IntDiv).latency);
    EXPECT_FALSE(fu.canIssue(OpClass::IntMul, 11)); // unit busy
    EXPECT_TRUE(fu.canIssue(OpClass::IntMul, 10 + lat));
}

TEST(FuPool, PipelinedMulBackToBack)
{
    FuConfig cfg;
    cfg.mul = 1;
    FuPool fu(cfg);
    fu.issue(OpClass::IntMul, 0);
    EXPECT_TRUE(fu.canIssue(OpClass::IntMul, 1)); // pipelined
}

TEST(FuPool, BranchUsesAluGroup)
{
    FuConfig cfg;
    cfg.alu = 1;
    FuPool fu(cfg);
    fu.issue(OpClass::Branch, 0);
    EXPECT_FALSE(fu.canIssue(OpClass::IntAlu, 0));
}

} // namespace
} // namespace ltp
