/**
 * @file
 * Record/replay equivalence: for EVERY kernel in the registered suite,
 * replaying a freshly recorded `.lttr` trace must reproduce the
 * execute-mode Metrics bit-identically (the exact JSON dump, every
 * field) — under plain LTP, with the oracle classifier (which replays
 * the workload a second time), and through the sharded Runner.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"
#include "trace/trace_workload.hh"

namespace ltp {
namespace {

RunLengths
tiny()
{
    RunLengths l;
    l.funcWarm = 2000;
    l.pipeWarm = 400;
    l.detail = 1000;
    return l;
}

/** Per-process scratch dir; traces are recorded once and cached.
 *  Recreated fresh on first use (a recycled pid must not replay stale
 *  traces from an earlier build) and removed on test exit. */
std::string
scratchDir()
{
    static const std::string dir = [] {
        std::filesystem::path p =
            std::filesystem::temp_directory_path() /
            ("ltp_replay_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(p);
        std::filesystem::create_directories(p);
        return p.string();
    }();
    return dir;
}

class ScratchCleanup : public ::testing::Environment
{
  public:
    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(scratchDir(), ec);
    }
};

const auto *const scratch_cleanup =
    ::testing::AddGlobalTestEnvironment(new ScratchCleanup);

/** Record @p kernel at tiny() staging with @p seed; returns the path. */
std::string
recordedPath(const std::string &kernel, std::uint64_t seed = 1)
{
    RunLengths l = tiny();
    TraceInfo info;
    info.kernel = kernel;
    info.seed = seed;
    info.funcWarm = l.funcWarm;
    info.pipeWarm = l.pipeWarm;
    info.detail = l.detail;
    std::string path = scratchDir() + "/" + kernel + "_s" +
                       std::to_string(seed) + ".lttr";
    if (!std::filesystem::exists(path))
        writeTraceFile(path, recordTrace(info));
    return path;
}

// ---------------------------------------------------------------------------
// Every suite kernel: replay == execute, bit for bit.
// ---------------------------------------------------------------------------

class ReplayIdentity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ReplayIdentity, LtpProposalMetricsBitIdentical)
{
    const std::string kernel = GetParam();
    std::string path = recordedPath(kernel);

    SimConfig cfg = SimConfig::ltpProposal(LtpMode::NU);
    Metrics executed = Simulator::runOnce(cfg, kernel, tiny());
    Metrics replayed =
        Simulator::runOnce(cfg, traceName(path), tiny());
    EXPECT_EQ(metricsToJson(executed), metricsToJson(replayed));
}

TEST_P(ReplayIdentity, BaselineMetricsBitIdentical)
{
    const std::string kernel = GetParam();
    std::string path = recordedPath(kernel);

    SimConfig cfg = SimConfig::baseline();
    Metrics executed = Simulator::runOnce(cfg, kernel, tiny());
    Metrics replayed =
        Simulator::runOnce(cfg, traceName(path), tiny());
    EXPECT_EQ(metricsToJson(executed), metricsToJson(replayed));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, ReplayIdentity,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const SuiteEntry &e : kernelSuite())
            names.push_back(e.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------------
// The oracle classifier replays the workload a second time; a trace
// must survive that double consumption too.
// ---------------------------------------------------------------------------

TEST(Replay, OracleLimitStudyBitIdentical)
{
    std::string path = recordedPath("graph_walk");
    SimConfig cfg = SimConfig::limitStudy(LtpMode::NRNU);
    Metrics executed = Simulator::runOnce(cfg, "graph_walk", tiny());
    Metrics replayed =
        Simulator::runOnce(cfg, traceName(path), tiny());
    EXPECT_EQ(metricsToJson(executed), metricsToJson(replayed));
}

// ---------------------------------------------------------------------------
// Traces flow through the string-keyed sweep machinery unchanged.
// ---------------------------------------------------------------------------

TEST(Replay, TraceJobsInShardedSweepMatchExecuteJobs)
{
    std::vector<std::string> kernels = {"paper_loop", "hash_probe"};
    SweepSpec execute, replay;
    execute.lengths = replay.lengths = tiny();
    SimConfig cfg = SimConfig::ltpProposal();
    for (const std::string &k : kernels) {
        execute.add(k, "ltp", cfg, k);
        replay.add(k, "ltp", cfg, traceName(recordedPath(k)));
    }
    SweepResult from_dsl = Runner(1).run(execute);
    SweepResult from_trace = Runner(2).run(replay);
    for (const std::string &k : kernels)
        EXPECT_EQ(metricsToJson(from_dsl.grid.at(k, "ltp")),
                  metricsToJson(from_trace.grid.at(k, "ltp")));
}

TEST(Replay, TracesScenarioCompilesOntoTraceKernels)
{
    std::string path = recordedPath("paper_loop");
    Scenario sc = scenarioFromJson(
        "{\"name\": \"rp\","
        " \"lengths\": {\"funcWarm\": 2000, \"pipeWarm\": 400, "
        "\"detail\": 1000},"
        " \"workloads\": {\"traces\": [" + jsonQuote(path) + "]},"
        " \"configs\": [{\"series\": \"base\", \"preset\": "
        "\"baseline\"}]}");
    ASSERT_EQ(sc.workloadKind, Scenario::WorkloadKind::Traces);
    SweepSpec spec = sc.compile(1);
    ASSERT_EQ(spec.jobs.size(), 1u);
    EXPECT_EQ(spec.jobs[0].kernels,
              (std::vector<std::string>{traceName(path)}));
    // The row label is the file stem, not the raw path.
    EXPECT_EQ(spec.jobs[0].row, traceLabel(path));

    SweepResult run = Runner(1).run(spec);
    Metrics executed =
        Simulator::runOnce(sc.buildConfig(sc.configs[0]), "paper_loop",
                           tiny());
    EXPECT_EQ(metricsToJson(run.grid.at(spec.jobs[0].row, "base")),
              metricsToJson(executed));
}

TEST(Replay, DuplicateTraceRowLabelsAreRejected)
{
    // Two files with the same stem in different directories would
    // collide on the grid row key; the compile must refuse, not
    // silently overwrite cells.
    std::string a = recordedPath("paper_loop");
    std::string sub = scratchDir() + "/dup";
    std::filesystem::create_directories(sub);
    std::string b =
        sub + "/" + std::filesystem::path(a).filename().string();
    std::filesystem::copy_file(
        a, b, std::filesystem::copy_options::overwrite_existing);

    Scenario sc = scenarioFromJson(
        "{\"name\": \"dup\","
        " \"workloads\": {\"traces\": [" + jsonQuote(a) + ", " +
        jsonQuote(b) + "]},"
        " \"configs\": [{\"series\": \"base\", \"preset\": "
        "\"baseline\"}]}");
    try {
        (void)sc.compile(1);
        FAIL() << "duplicate row labels not rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate workload row"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------------
// Replay front-end behaviour.
// ---------------------------------------------------------------------------

TEST(Replay, WorkloadReportsSourceKernelName)
{
    std::string path = recordedPath("dense_compute");
    WorkloadPtr w = makeKernel(traceName(path));
    EXPECT_EQ(w->name(), "dense_compute");
}

TEST(Replay, HeaderCarriesRecordingParameters)
{
    std::string path = recordedPath("paper_loop", 7);
    auto trace = loadTraceCached(path);
    const TraceInfo &info = trace->info();
    EXPECT_EQ(info.version, kTraceVersion);
    EXPECT_EQ(info.kernel, "paper_loop");
    EXPECT_EQ(info.seed, 7u);
    EXPECT_EQ(info.funcWarm, tiny().funcWarm);
    EXPECT_EQ(info.pipeWarm, tiny().pipeWarm);
    EXPECT_EQ(info.detail, tiny().detail);
    EXPECT_EQ(info.count, info.recordLength());
}

TEST(Replay, RecordedStreamMatchesDslStream)
{
    std::string path = recordedPath("int_mix");
    WorkloadPtr dsl = makeKernel("int_mix");
    dsl->reset(1);
    WorkloadPtr replay = makeKernel(traceName(path));
    replay->reset(1);
    auto trace = loadTraceCached(path);
    for (std::uint64_t i = 0; i < trace->info().count; ++i) {
        MicroOp a = dsl->next();
        MicroOp b = replay->next();
        ASSERT_EQ(a.toString(), b.toString()) << "record " << i;
        ASSERT_EQ(a.taken, b.taken) << "record " << i;
        ASSERT_EQ(a.target, b.target) << "record " << i;
        ASSERT_EQ(a.memSize, b.memSize) << "record " << i;
    }
}

TEST(ReplayDeath, ExhaustedTraceIsFatalWithGuidance)
{
    std::string path = recordedPath("paper_loop");
    EXPECT_EXIT(
        {
            WorkloadPtr w = makeKernel(traceName(path));
            w->reset(1);
            auto trace = loadTraceCached(path);
            for (std::uint64_t i = 0; i <= trace->info().count; ++i)
                (void)w->next();
        },
        ::testing::ExitedWithCode(1), "exhausted");
}

TEST(Replay, UnreadableTraceFileThrows)
{
    EXPECT_THROW((void)loadTraceFile(scratchDir() + "/missing.lttr"),
                 std::runtime_error);
    EXPECT_THROW((void)makeTraceWorkload(scratchDir() + "/missing.lttr"),
                 std::runtime_error);
}

TEST(Replay, RecordingUnknownKernelThrows)
{
    TraceInfo info;
    info.kernel = "no_such_kernel";
    EXPECT_THROW((void)recordTrace(info), std::runtime_error);
}

} // namespace
} // namespace ltp
