/**
 * @file
 * Tests for the serializable SimConfig: exact JSON round trips of every
 * preset and fluent mutator, the dotted-path override setter, and the
 * descriptive errors required of malformed input (always naming the
 * offending path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/config.hh"

namespace ltp {
namespace {

/** configToJson covers every registered field, so equality of the two
 *  dumps is equality of the two configs. */
void
expectExactRoundTrip(const SimConfig &c)
{
    std::string json = configToJson(c);
    SimConfig back = configFromJson(json);
    EXPECT_EQ(configToJson(back), json) << json;
}

template <typename Fn>
std::string
messageOf(Fn &&fn)
{
    try {
        fn();
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(ConfigJson, RoundTripAllPresets)
{
    expectExactRoundTrip(SimConfig::baseline());
    for (LtpMode mode :
         {LtpMode::Off, LtpMode::NU, LtpMode::NR, LtpMode::NRNU}) {
        expectExactRoundTrip(SimConfig::ltpProposal(mode));
        expectExactRoundTrip(SimConfig::limitStudy(mode));
    }
}

TEST(ConfigJson, RoundTripEveryFluentMutator)
{
    SimConfig c = SimConfig::baseline()
                      .withName("mutated \"config\"")
                      .withIq(48)
                      .withRegs(112)
                      .withLq(40)
                      .withSq(24)
                      .withRob(192)
                      .withLtp(LtpMode::NRNU, 96, 3)
                      .withOracle()
                      .withUit(512)
                      .withTickets(17)
                      .withMonitor(false)
                      .withPrefetcher(false)
                      .withSeed(0xdeadbeefcafe1234ull);
    expectExactRoundTrip(c);

    SimConfig back = configFromJson(configToJson(c));
    EXPECT_EQ(back.name, "mutated \"config\"");
    EXPECT_EQ(back.core.iqSize, 48);
    EXPECT_EQ(back.core.intRegs, 112);
    EXPECT_EQ(back.core.fpRegs, 112);
    EXPECT_EQ(back.core.lqSize, 40);
    EXPECT_EQ(back.core.sqSize, 24);
    EXPECT_EQ(back.core.robSize, 192);
    EXPECT_EQ(back.core.ltp.mode, LtpMode::NRNU);
    EXPECT_EQ(back.core.ltp.entries, 96);
    EXPECT_EQ(back.core.ltp.insertPorts, 3);
    EXPECT_EQ(back.core.ltp.extractPorts, 3);
    EXPECT_EQ(back.core.ltp.classifier, ClassifierKind::Oracle);
    EXPECT_EQ(back.core.ltp.uitEntries, 512);
    EXPECT_EQ(back.core.ltp.numTickets, 17);
    EXPECT_FALSE(back.core.ltp.useMonitor);
    EXPECT_FALSE(back.mem.prefetchEnabled);
    EXPECT_EQ(back.seed, 0xdeadbeefcafe1234ull);

    expectExactRoundTrip(
        SimConfig::ltpProposal().withLearned().withLtpOff());
}

TEST(ConfigJson, InfiniteSizesSpellInf)
{
    SimConfig c = SimConfig::limitStudy(LtpMode::NRNU);
    std::string json = configToJson(c);
    EXPECT_NE(json.find("\"iq\": \"inf\""), std::string::npos) << json;

    SimConfig back = configFromJson(json);
    EXPECT_EQ(back.core.iqSize, kInfiniteSize);
    EXPECT_EQ(back.core.intRegs, kInfiniteSize);
    EXPECT_EQ(back.mem.l1dMshrs, kInfiniteSize);
}

TEST(ConfigJson, PartialJsonAppliesOntoDefaults)
{
    SimConfig c = configFromJson(
        "{\"core\": {\"iq\": 24, \"ltp\": {\"mode\": \"NR+NU\"}},"
        " \"mem\": {\"prefetchEnabled\": false}}");
    EXPECT_EQ(c.core.iqSize, 24);
    EXPECT_EQ(c.core.ltp.mode, LtpMode::NRNU);
    EXPECT_FALSE(c.mem.prefetchEnabled);
    // Untouched fields keep their defaults.
    EXPECT_EQ(c.core.robSize, 256);
    EXPECT_EQ(c.mem.l2.sizeKB, 256);
}

TEST(ConfigJson, FlatDottedKeysAreEquivalentToNesting)
{
    SimConfig nested = configFromJson("{\"core\": {\"iq\": 24}}");
    SimConfig flat = configFromJson("{\"core.iq\": 24}");
    EXPECT_EQ(configToJson(nested), configToJson(flat));
}

// ---------------------------------------------------------------------------
// applyOverride
// ---------------------------------------------------------------------------

TEST(ConfigJson, ApplyOverrideReachesEveryLayer)
{
    SimConfig c = SimConfig::baseline();
    applyOverride(c, "name", "renamed");
    applyOverride(c, "seed", "42");
    applyOverride(c, "core.iq", "32");
    applyOverride(c, "core.ltp.mode", "nrnu");
    applyOverride(c, "core.ltp.classifier", "oracle");
    applyOverride(c, "core.ltp.monitor", "false");
    applyOverride(c, "core.ltp.wakeup", "lazy");
    applyOverride(c, "mem.l1d.sizeKB", "64");
    applyOverride(c, "mem.dram.cpuCyclesPerDramCycle", "5.5");
    applyOverride(c, "mem.llThreshold", "55");
    applyOverride(c, "core.lq", "inf");

    EXPECT_EQ(c.name, "renamed");
    EXPECT_EQ(c.seed, 42u);
    EXPECT_EQ(c.core.iqSize, 32);
    EXPECT_EQ(c.core.ltp.mode, LtpMode::NRNU);
    EXPECT_EQ(c.core.ltp.classifier, ClassifierKind::Oracle);
    EXPECT_FALSE(c.core.ltp.useMonitor);
    EXPECT_EQ(c.core.ltp.wakeup, WakeupPolicy::Lazy);
    EXPECT_EQ(c.mem.l1d.sizeKB, 64);
    EXPECT_DOUBLE_EQ(c.mem.dram.cpuCyclesPerDramCycle, 5.5);
    EXPECT_EQ(c.mem.llThreshold, 55u);
    EXPECT_EQ(c.core.lqSize, kInfiniteSize);

    expectExactRoundTrip(c);
}

TEST(ConfigJson, ApplyOverrideUnknownPathNamesThePath)
{
    SimConfig c;
    EXPECT_THROW(applyOverride(c, "core.iqq", "32"), std::runtime_error);
    std::string msg =
        messageOf([&]() { applyOverride(c, "core.iqq", "32"); });
    EXPECT_NE(msg.find("core.iqq"), std::string::npos) << msg;

    msg = messageOf([&]() { applyOverride(c, "", "1"); });
    EXPECT_NE(msg.find("unknown config path"), std::string::npos) << msg;
}

TEST(ConfigJson, ApplyOverrideSuggestsTheNearestPath)
{
    SimConfig c;
    // One-edit typos resolve to the intended path.
    std::string msg =
        messageOf([&]() { applyOverride(c, "core.iqq", "32"); });
    EXPECT_NE(msg.find("did you mean 'core.iq'"), std::string::npos)
        << msg;

    msg = messageOf(
        [&]() { applyOverride(c, "core.numThread", "2"); });
    EXPECT_NE(msg.find("did you mean 'core.numThreads'"),
              std::string::npos)
        << msg;

    msg = messageOf(
        [&]() { applyOverride(c, "mem.l1d.sizeKb", "64"); });
    EXPECT_NE(msg.find("did you mean 'mem.l1d.sizeKB'"),
              std::string::npos)
        << msg;

    // Garbage nowhere near any path gets no misleading suggestion,
    // but still the canonical error.
    msg = messageOf(
        [&]() { applyOverride(c, "zzz.qqq.www.unrelated", "1"); });
    EXPECT_NE(msg.find("unknown config path"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
}

TEST(ConfigJson, OutOfRangeAndFractionalValuesAreRejected)
{
    SimConfig c;
    std::string msg = messageOf(
        [&]() { applyOverride(c, "core.iq", "4294967296"); });
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core.iq"), std::string::npos) << msg;

    msg = messageOf([&]() { applyOverride(c, "seed", "-1"); });
    EXPECT_NE(msg.find("seed"), std::string::npos) << msg;

    // Zero-padded values are decimal, not octal.
    applyOverride(c, "core.iq", "010");
    EXPECT_EQ(c.core.iqSize, 10);

    msg = messageOf([]() { configFromJson("{\"seed\": 2.5}"); });
    EXPECT_NE(msg.find("seed"), std::string::npos) << msg;

    msg = messageOf([]() { configFromJson("{\"seed\": -1}"); });
    EXPECT_NE(msg.find("seed"), std::string::npos) << msg;
}

TEST(ConfigJson, ApplyOverrideBadValueNamesThePath)
{
    SimConfig c;
    std::string msg =
        messageOf([&]() { applyOverride(c, "core.iq", "many"); });
    EXPECT_NE(msg.find("core.iq"), std::string::npos) << msg;
    EXPECT_NE(msg.find("many"), std::string::npos) << msg;

    msg = messageOf(
        [&]() { applyOverride(c, "core.ltp.mode", "sideways"); });
    EXPECT_NE(msg.find("core.ltp.mode"), std::string::npos) << msg;

    msg = messageOf(
        [&]() { applyOverride(c, "core.ltp.monitor", "perhaps"); });
    EXPECT_NE(msg.find("core.ltp.monitor"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// configFromJson errors
// ---------------------------------------------------------------------------

TEST(ConfigJson, UnknownKeyNamesThePath)
{
    std::string msg = messageOf([]() {
        configFromJson("{\"core\": {\"iqq\": 32}}");
    });
    EXPECT_NE(msg.find("core.iqq"), std::string::npos) << msg;

    msg = messageOf([]() { configFromJson("{\"cores\": {}}"); });
    EXPECT_NE(msg.find("cores"), std::string::npos) << msg;
}

TEST(ConfigJson, WrongTypeNamesThePath)
{
    std::string msg = messageOf([]() {
        configFromJson("{\"core\": {\"iq\": true}}");
    });
    EXPECT_NE(msg.find("core.iq"), std::string::npos) << msg;
    EXPECT_NE(msg.find("number"), std::string::npos) << msg;

    msg = messageOf([]() {
        configFromJson("{\"mem\": {\"prefetchEnabled\": 3}}");
    });
    EXPECT_NE(msg.find("mem.prefetchEnabled"), std::string::npos) << msg;

    msg = messageOf([]() { configFromJson("{\"core\": 7}"); });
    EXPECT_NE(msg.find("core"), std::string::npos) << msg;
}

TEST(ConfigJson, MalformedJsonThrows)
{
    EXPECT_THROW(configFromJson("{\"core\": "), std::runtime_error);
    EXPECT_THROW(configFromJson("[1, 2]"), std::runtime_error);
    // Partially-parseable number lexemes are typos, not numbers.
    EXPECT_THROW(configFromJson("{\"mem\": {\"dram\": "
                                "{\"cpuCyclesPerDramCycle\": 4..25}}}"),
                 std::runtime_error);
    EXPECT_THROW(configFromJson("{\"seed\": 1e}"), std::runtime_error);
}

TEST(ConfigJson, ConfigPathsEnumerateTheSchema)
{
    std::vector<std::string> paths = configPaths();
    EXPECT_GT(paths.size(), 50u);
    auto has = [&](const char *p) {
        return std::find(paths.begin(), paths.end(), p) != paths.end();
    };
    EXPECT_TRUE(has("name"));
    EXPECT_TRUE(has("core.iq"));
    EXPECT_TRUE(has("core.ltp.tickets"));
    EXPECT_TRUE(has("core.fu.alu"));
    EXPECT_TRUE(has("mem.dram.rowBytes"));
    EXPECT_TRUE(has("mem.llThreshold"));
    EXPECT_FALSE(has("core.iqSize")); // schema names, not member names
}

} // namespace
} // namespace ltp
