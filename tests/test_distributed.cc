/**
 * @file
 * Distributed serve mode, in-process: a frontend daemon fanning cells
 * out to two localhost worker daemons.  Asserts the tentpole
 * guarantees — byte-identity with a local sweep, exactly-once compute
 * under concurrent identical submissions, re-dispatch around a killed
 * worker, in-process fallback when every worker is down, cache peer
 * lookup, one-frame whole-scenario submission, and the graceful
 * shutdown drain.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/cell_key.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/simulator.hh"

namespace {

using namespace ltp;

RunLengths
tiny()
{
    RunLengths l;
    l.funcWarm = 2000;
    l.pipeWarm = 400;
    l.detail = 1000;
    return l;
}

std::uint64_t
statU64(const JsonValue &stats, const std::string &key)
{
    auto it = stats.object.find(key);
    if (it == stats.object.end() || !it->second.isNumber())
        return 0;
    std::uint64_t out = 0;
    u64FromLexeme(it->second.str, &out);
    return out;
}

/** Two worker daemons + one frontend dispatching to them, each with
 *  its own scratch cache dir, all on ephemeral ports. */
class DistributedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = (std::filesystem::temp_directory_path() /
                 ("ltp_dist_test_" + std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
                    .string();
        std::filesystem::remove_all(base_);

        worker1_ = startWorker("w1");
        worker2_ = startWorker("w2");

        ServeOptions fo;
        fo.port = 0;
        fo.threads = 4;
        fo.cacheDir = base_ + "/frontend";
        fo.quiet = true;
        fo.workers = {workerAddress(worker1_.get()),
                      workerAddress(worker2_.get())};
        frontend_ = std::make_unique<Server>(fo);
        frontend_->start();
    }

    void
    TearDown() override
    {
        frontend_->stop();
        frontend_.reset(); // closes the WorkerPool's connections
        worker1_->stop();
        worker2_->stop();
        worker1_.reset();
        worker2_.reset();
        std::error_code ec;
        std::filesystem::remove_all(base_, ec);
    }

    std::unique_ptr<Server>
    startWorker(const std::string &name)
    {
        ServeOptions opts;
        opts.port = 0;
        opts.threads = 2;
        opts.cacheDir = base_ + "/" + name;
        opts.quiet = true;
        auto server = std::make_unique<Server>(opts);
        server->start();
        return server;
    }

    static std::string
    workerAddress(const Server *server)
    {
        return "127.0.0.1:" + std::to_string(server->port());
    }

    std::unique_ptr<ServeBackend>
    frontendClient()
    {
        return std::make_unique<ServeBackend>("127.0.0.1",
                                              frontend_->port());
    }

    std::unique_ptr<ServeBackend>
    workerClient(const Server *server)
    {
        return std::make_unique<ServeBackend>("127.0.0.1",
                                              server->port());
    }

    /** Per-worker counter summed over the frontend's `workers` stats
     *  array. */
    std::uint64_t
    workerStatSum(const std::string &key)
    {
        auto client = frontendClient();
        JsonValue stats = client->rpc("stats");
        auto it = stats.object.find("workers");
        if (it == stats.object.end() || !it->second.isArray())
            return 0;
        std::uint64_t sum = 0;
        for (const JsonValue &w : it->second.array)
            sum += statU64(w, key);
        return sum;
    }

    std::string base_;
    std::unique_ptr<Server> worker1_;
    std::unique_ptr<Server> worker2_;
    std::unique_ptr<Server> frontend_;
};

TEST_F(DistributedTest, SweepThroughWorkersMatchesLocal)
{
    SweepSpec spec = SweepSpec::cross(
        "dist_sweep",
        {SimConfig::baseline().withName("base"),
         SimConfig::baseline().withIq(32).withName("iq32")},
        {"paper_loop", "graph_walk"}, tiny());

    SweepResult local = Runner(1).run(spec);
    SweepResult dist =
        Runner(4, std::make_shared<ServeBackend>(
                      "127.0.0.1", frontend_->port()))
            .run(spec);

    for (const std::string &row : local.grid.rows())
        for (const std::string &series : local.grid.series(row))
            EXPECT_EQ(metricsToJson(dist.grid.at(row, series)),
                      metricsToJson(local.grid.at(row, series)))
                << row << "/" << series;

    // Every cell was simulated on a worker, none on the frontend: the
    // workers' own compute counters account for all four cells.
    auto w1 = workerClient(worker1_.get());
    auto w2 = workerClient(worker2_.get());
    EXPECT_EQ(statU64(w1->rpc("stats"), "computed") +
                  statU64(w2->rpc("stats"), "computed"),
              4u);
    EXPECT_EQ(workerStatSum("completed"), 4u);
    EXPECT_GE(workerStatSum("dispatched"), 4u);
    EXPECT_EQ(workerStatSum("failed"), 0u);
}

TEST_F(DistributedTest, ConcurrentIdenticalScenarioSubmissionsComputeOnce)
{
    // One explicit-jobs scenario, submitted twice at the same moment:
    // the frontend's in-flight dedupe (claim-before-cache) must make
    // the cluster simulate each cell exactly once.
    SweepSpec spec;
    spec.name = "dist_scenario";
    spec.lengths = tiny();
    spec.add("paper_loop", "base", SimConfig::baseline().withSeed(41),
             "paper_loop");
    spec.add("graph_walk", "base", SimConfig::baseline().withSeed(42),
             "graph_walk");
    spec.add("linked_list", "base", SimConfig::baseline().withSeed(43),
             "linked_list");
    spec.add("sparse_gather", "base",
             SimConfig::baseline().withSeed(44), "sparse_gather");
    JsonValue root = parseJson(sweepSpecToJson(spec));

    std::vector<SweepResult> results(2);
    std::vector<std::thread> threads;
    for (int i = 0; i < 2; ++i)
        threads.emplace_back([this, i, &results, &root]() {
            ServeBackend client("127.0.0.1", frontend_->port());
            results[std::size_t(i)] = client.submitScenario(root);
        });
    for (std::thread &t : threads)
        t.join();

    SweepResult local = Runner(1).run(spec);
    for (const SweepResult &res : results) {
        EXPECT_EQ(res.backend, "serve");
        EXPECT_EQ(res.simulations, 4u);
        for (const std::string &row : local.grid.rows())
            for (const std::string &series : local.grid.series(row))
                EXPECT_EQ(metricsToJson(res.grid.at(row, series)),
                          metricsToJson(local.grid.at(row, series)))
                    << row << "/" << series;
    }

    auto w1 = workerClient(worker1_.get());
    auto w2 = workerClient(worker2_.get());
    EXPECT_EQ(statU64(w1->rpc("stats"), "computed") +
                  statU64(w2->rpc("stats"), "computed"),
              4u)
        << "identical concurrent scenarios re-simulated cells";
}

TEST_F(DistributedTest, KilledWorkerIsMarkedDownAndCellsRedispatch)
{
    // Kill worker1 — the dispatcher's tie-break favorite, so the very
    // first dispatch is guaranteed to hit the dead worker, fail fast
    // on the closed connection, mark it down, and re-dispatch.
    std::string dead = workerAddress(worker1_.get());
    worker1_->stop();

    SweepSpec spec = SweepSpec::cross(
        "dist_kill",
        {SimConfig::baseline().withSeed(7).withName("base"),
         SimConfig::baseline().withSeed(7).withIq(32).withName("iq32")},
        {"paper_loop", "graph_walk"}, tiny());

    SweepResult local = Runner(1).run(spec);
    SweepResult dist =
        Runner(4, std::make_shared<ServeBackend>(
                      "127.0.0.1", frontend_->port()))
            .run(spec);
    for (const std::string &row : local.grid.rows())
        for (const std::string &series : local.grid.series(row))
            EXPECT_EQ(metricsToJson(dist.grid.at(row, series)),
                      metricsToJson(local.grid.at(row, series)))
                << row << "/" << series;

    auto client = frontendClient();
    JsonValue stats = client->rpc("stats");
    auto it = stats.object.find("workers");
    ASSERT_TRUE(it != stats.object.end() && it->second.isArray());
    bool saw_dead = false;
    for (const JsonValue &w : it->second.array) {
        if (w.object.at("worker").str != dead)
            continue;
        saw_dead = true;
        EXPECT_FALSE(w.object.at("up").boolean);
        EXPECT_GE(statU64(w, "failed"), 1u);
        EXPECT_EQ(statU64(w, "completed"), 0u);
    }
    EXPECT_TRUE(saw_dead);

    // The survivor carried the whole sweep.
    auto w2 = workerClient(worker2_.get());
    EXPECT_EQ(statU64(w2->rpc("stats"), "computed"), 4u);
}

TEST_F(DistributedTest, AllWorkersDownFallsBackToInProcessCompute)
{
    worker1_->stop();
    worker2_->stop();

    SimConfig cfg = SimConfig::baseline().withSeed(21);
    CellKey key = cellKeyFor(cfg, "paper_loop", tiny());
    auto client = frontendClient();
    CellResult r =
        client->runCell(key, cfg, "paper_loop", tiny(), SamplePlan{});
    EXPECT_FALSE(r.cacheHit);
    EXPECT_EQ(metricsToJson(r.metrics),
              metricsToJson(Simulator::runOnce(cfg, "paper_loop",
                                               tiny())));

    JsonValue stats = client->rpc("stats");
    EXPECT_GE(statU64(stats, "computed"), 1u);
    auto it = stats.object.find("workers");
    ASSERT_TRUE(it != stats.object.end() && it->second.isArray());
    for (const JsonValue &w : it->second.array)
        EXPECT_FALSE(w.object.at("up").boolean)
            << w.object.at("worker").str;
}

TEST_F(DistributedTest, PeerCacheLookupAvoidsRecompute)
{
    SimConfig cfg = SimConfig::baseline().withSeed(31);
    CellKey key = cellKeyFor(cfg, "graph_walk", tiny());

    // Warm worker1's cache directly, bypassing the frontend.
    auto w1 = workerClient(worker1_.get());
    CellResult first =
        w1->runCell(key, cfg, "graph_walk", tiny(), SamplePlan{});
    EXPECT_FALSE(first.cacheHit);

    // Through the frontend: local miss, answered by worker1's cache
    // via the lookup frame — no dispatch, no recompute anywhere.
    auto client = frontendClient();
    CellResult via =
        client->runCell(key, cfg, "graph_walk", tiny(), SamplePlan{});
    EXPECT_TRUE(via.cacheHit);
    EXPECT_EQ(metricsToJson(via.metrics), metricsToJson(first.metrics));
    JsonValue stats = client->rpc("stats");
    EXPECT_EQ(statU64(stats, "peerHits"), 1u);
    EXPECT_EQ(statU64(stats, "computed"), 0u);

    // The hit replicated into the frontend's own cache: the next
    // request is answered locally, without another peer probe.
    CellResult again =
        client->runCell(key, cfg, "graph_walk", tiny(), SamplePlan{});
    EXPECT_TRUE(again.cacheHit);
    stats = client->rpc("stats");
    EXPECT_EQ(statU64(stats, "peerHits"), 1u);
    EXPECT_EQ(statU64(stats, "cacheHits"), 2u);
}

TEST_F(DistributedTest, ScenarioSubmissionIsOneRequestFrame)
{
    SweepSpec spec;
    spec.name = "dist_one_frame";
    spec.lengths = tiny();
    spec.add("paper_loop", "base", SimConfig::baseline().withSeed(51),
             "paper_loop");
    spec.add("linked_list", "base",
             SimConfig::baseline().withSeed(52), "linked_list");
    JsonValue root = parseJson(sweepSpecToJson(spec));

    auto client = frontendClient();
    std::uint64_t before = statU64(client->rpc("stats"), "requests");
    SweepResult res = client->submitScenario(root);
    std::uint64_t after = statU64(client->rpc("stats"), "requests");

    // The whole 2-cell scenario cost the frontend ONE request frame
    // (the delta's second frame is the stats call itself).
    EXPECT_EQ(after - before, 2u);

    EXPECT_EQ(res.backend, "serve");
    EXPECT_EQ(res.simulations, 2u);
    SweepResult local = Runner(1).run(spec);
    for (const std::string &row : local.grid.rows())
        for (const std::string &series : local.grid.series(row))
            EXPECT_EQ(metricsToJson(res.grid.at(row, series)),
                      metricsToJson(local.grid.at(row, series)))
                << row << "/" << series;
}

TEST(DistributedShutdownTest, ShutdownDrainsInflightCells)
{
    // A standalone daemon with one long cell in flight: shutdown must
    // wait for it (bounded) and report it drained, and the client must
    // still receive the result.
    std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("ltp_dist_drain_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(cache_dir);

    ServeOptions opts;
    opts.port = 0;
    opts.threads = 2;
    opts.cacheDir = cache_dir;
    opts.quiet = true;
    Server server(opts);
    server.start();

    RunLengths big = tiny();
    big.detail = 1500000; // long enough for the stats poll to see it
    SimConfig cfg = SimConfig::baseline().withSeed(61);
    CellKey key = cellKeyFor(cfg, "paper_loop", big);

    std::string result_json;
    std::thread runner([&]() {
        ServeBackend client("127.0.0.1", server.port());
        result_json = metricsToJson(
            client.runCell(key, cfg, "paper_loop", big, SamplePlan{})
                .metrics);
    });

    // Wait until the cell is actually executing (activeCells in the
    // stats reply), then ask for shutdown.
    ServeBackend control("127.0.0.1", server.port());
    bool saw_active = false;
    for (int i = 0; i < 2500 && !saw_active; ++i) {
        saw_active =
            statU64(control.rpc("stats"), "activeCells") >= 1;
        if (!saw_active)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(saw_active) << "cell never showed up as in-flight";

    JsonValue ok = control.rpc("shutdown");
    EXPECT_EQ(ok.object.at("type").str, "ok");
    EXPECT_EQ(statU64(ok, "drained"), 1u);
    server.waitForShutdown();

    runner.join();
    EXPECT_EQ(result_json,
              metricsToJson(Simulator::runOnce(cfg, "paper_loop", big)));

    server.stop();
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
}

} // namespace
