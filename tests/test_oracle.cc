/**
 * @file
 * Tests for the limit-study oracle classifier, anchored on the paper's
 * Figure 2 example: the oracle must reproduce the published
 * classification of the example loop exactly.
 */

#include <gtest/gtest.h>

#include "ltp/oracle.hh"
#include "trace/kernels.hh"

namespace ltp {
namespace {

/** Classify paper_loop and return flags for iteration @p iter. */
struct IterClass
{
    bool urgent[11];
    bool nonReady[11];
    bool longLat[11];
};

IterClass
classifyIteration(const OracleClassification &oc, int iter)
{
    IterClass out{};
    for (int s = 0; s < 11; ++s) {
        SeqNum seq = SeqNum(iter) * 11 + s;
        out.urgent[s] = oc.urgent(seq);
        out.nonReady[s] = oc.nonReady(seq);
        out.longLat[s] = oc.longLatency(seq);
    }
    return out;
}

class OracleOnPaperLoop : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        WorkloadPtr w = makePaperLoop();
        MemConfig mem;
        oc_ = oracleClassify(*w, 1, 11 * 400, mem);
    }

    OracleClassification oc_;
};

// Slot letters: 0=A 1=B 2=C 3=D 4=E 5=F 6=G 7=H 8=I 9=J 10=K.

TEST_F(OracleOnPaperLoop, Figure2Urgency)
{
    // Use a mid-stream iteration (caches and prefetcher warmed, and
    // urgency's forward window fully populated).
    IterClass c = classifyIteration(oc_, 100);
    EXPECT_TRUE(c.urgent[0]) << "A addrA=baseA+j";
    EXPECT_TRUE(c.urgent[1]) << "B t1=load A[j]";
    EXPECT_TRUE(c.urgent[2]) << "C addrB=baseB+t1";
    EXPECT_TRUE(c.urgent[3]) << "D d=load B[t1]";
    EXPECT_TRUE(c.urgent[4]) << "E j=j-1";
    EXPECT_FALSE(c.urgent[5]) << "F d=d+5";
    EXPECT_FALSE(c.urgent[6]) << "G addrC=baseC+i";
    EXPECT_FALSE(c.urgent[7]) << "H store";
    EXPECT_FALSE(c.urgent[8]) << "I i=i+1";
    EXPECT_FALSE(c.urgent[9]) << "J t2=i-10000";
    EXPECT_FALSE(c.urgent[10]) << "K bltz";
}

TEST_F(OracleOnPaperLoop, Figure2Readiness)
{
    IterClass c = classifyIteration(oc_, 100);
    // A-E are Ready (A[] hits thanks to the prefetcher).
    for (int s = 0; s <= 4; ++s)
        EXPECT_FALSE(c.nonReady[s]) << "slot " << s;
    EXPECT_TRUE(c.nonReady[5]) << "F consumes the missing load";
    EXPECT_FALSE(c.nonReady[6]) << "G only reads i";
    EXPECT_TRUE(c.nonReady[7]) << "H stores the missing value";
    EXPECT_FALSE(c.nonReady[8]);
    EXPECT_FALSE(c.nonReady[9]);
    EXPECT_FALSE(c.nonReady[10]);
}

TEST_F(OracleOnPaperLoop, OnlyDIsLongLatency)
{
    IterClass c = classifyIteration(oc_, 100);
    for (int s = 0; s < 11; ++s) {
        if (s == 3)
            EXPECT_TRUE(c.longLat[s]) << "D misses to DRAM";
        else
            EXPECT_FALSE(c.longLat[s]) << "slot " << s;
    }
}

TEST_F(OracleOnPaperLoop, StableAcrossIterations)
{
    // Classification must be identical for all steady-state iterations.
    IterClass a = classifyIteration(oc_, 50);
    IterClass b = classifyIteration(oc_, 300);
    for (int s = 0; s < 11; ++s) {
        EXPECT_EQ(a.urgent[s], b.urgent[s]) << "slot " << s;
        EXPECT_EQ(a.nonReady[s], b.nonReady[s]) << "slot " << s;
    }
}

TEST_F(OracleOnPaperLoop, BaseOffsetShiftsLookups)
{
    SeqNum probe = 11 * 100 + 3; // D of iteration 100
    bool before = oc_.longLatency(probe);
    oc_.setBase(11); // one iteration offset
    EXPECT_EQ(oc_.longLatency(probe - 11), before);
    oc_.setBase(0);
}

TEST(Oracle, EmptyTraceValid)
{
    WorkloadPtr w = makePaperLoop();
    MemConfig mem;
    OracleClassification oc = oracleClassify(*w, 1, 0, mem);
    EXPECT_FALSE(oc.valid());
    EXPECT_FALSE(oc.urgent(0));
    EXPECT_FALSE(oc.nonReady(123456));
}

TEST(Oracle, OutOfRangeLookupsAreFalse)
{
    WorkloadPtr w = makePaperLoop();
    MemConfig mem;
    OracleClassification oc = oracleClassify(*w, 1, 110, mem);
    EXPECT_FALSE(oc.urgent(110));
    EXPECT_FALSE(oc.nonReady(1 << 20));
}

TEST(Oracle, UrgencyWindowBoundsPropagation)
{
    // With a tiny urgency window the cross-iteration chain (E feeds the
    // next iteration's A) must still be caught — the consumer is only
    // ~11 instructions ahead — but with window 1 nothing qualifies.
    WorkloadPtr w = makePaperLoop();
    MemConfig mem;
    OracleParams tight;
    tight.urgencyWindow = 1;
    OracleClassification oc = oracleClassify(*w, 1, 11 * 50, mem, tight);
    int urgents = 0;
    for (SeqNum s = 0; s < oc.size(); ++s)
        urgents += oc.urgent(s);
    // Only the long-latency loads themselves stay urgent.
    WorkloadPtr w2 = makePaperLoop();
    OracleClassification full = oracleClassify(*w2, 1, 11 * 50, mem);
    int full_urgents = 0;
    for (SeqNum s = 0; s < full.size(); ++s)
        full_urgents += full.urgent(s);
    EXPECT_LT(urgents, full_urgents);
}

TEST(Oracle, ReadinessWindowExpires)
{
    // A value produced by a long-latency load stops making consumers
    // Non-Ready once the readiness window has passed (the miss has
    // returned by then).
    WorkloadPtr w = makePaperLoop();
    OracleParams p;
    p.readinessWindow = 1; // expires immediately
    MemConfig mem;
    (void)mem;
    OracleClassification oc = oracleClassify(*w, 1, 11 * 50,
                                             MemConfig{}, p);
    int non_ready = 0;
    for (SeqNum s = 0; s < oc.size(); ++s)
        non_ready += oc.nonReady(s);
    EXPECT_EQ(non_ready, 0);
}

TEST(Oracle, GraphWalkChaseIsUrgentAndNonReady)
{
    // graph_walk slot 0 is a serial pointer chase: each instance is a
    // long-latency load whose address depends on the previous one —
    // the Urgent + Non-Ready class of the paper's astar discussion.
    WorkloadPtr w = makeGraphWalk();
    OracleClassification oc = oracleClassify(*w, 1, 12 * 300,
                                             MemConfig{});
    // Find the chase load PCs dynamically: slot 0 of each iteration.
    WorkloadPtr probe = makeGraphWalk();
    probe->reset(1);
    MicroOp first = probe->next();
    ASSERT_TRUE(first.isLoad());

    WorkloadPtr scan = makeGraphWalk();
    scan->reset(1);
    int urgent_chase = 0, nonready_chase = 0, total_chase = 0;
    for (SeqNum s = 0; s < oc.size(); ++s) {
        MicroOp op = scan->next();
        if (op.pc != first.pc || s < 100)
            continue;
        total_chase += 1;
        urgent_chase += oc.urgent(s);
        nonready_chase += oc.nonReady(s);
    }
    ASSERT_GT(total_chase, 50);
    EXPECT_GT(double(urgent_chase) / total_chase, 0.9);
    EXPECT_GT(double(nonready_chase) / total_chase, 0.5);
}

} // namespace
} // namespace ltp
