/**
 * @file
 * Property-based tests: invariants that must hold across the whole
 * (kernel x configuration) space, swept with parameterized gtest.
 *
 *  P1  Full completion: every run commits exactly the requested count.
 *  P2  Occupancy bounds: mean occupancies never exceed capacities.
 *  P3  Monotonic resources: an infinite-resource run is at least as
 *      fast as any finite configuration (within noise).
 *  P4  Determinism: identical (config, kernel, seed) => identical
 *      cycle counts.
 *  P5  LTP accounting: parked == unparked after drain-free runs,
 *      forced unparks only under pressure-capable configs.
 *  P6  Oracle closure: urgency is exactly the ancestor closure of
 *      long-latency seeds on random DAG traces.
 *  P7  Trace format round trip: write→read→write of randomized
 *      micro-op streams is byte-identical and record-identical, and
 *      corrupted headers/payloads/CRCs are rejected.
 *  P8  Scheduler invariants: the event-driven ready list equals a
 *      brute-force srcsReady scan every cycle (so every woken
 *      instruction really has all sources ready), stays seq-sorted and
 *      duplicate-free, and survives mid-run squashes.  (Waking an
 *      entry twice trips the IQ's ready-bitmask sim_assert, which is
 *      active in every build.)
 *  P9  LTP wakeup invariants: the ticket-expiry wheel + batched-unpark
 *      ready lists (urgent and non-urgent) equal a brute-force
 *      per-cycle scan of every parked instruction's ticket mask
 *      against the pending bitmask — same membership, same seq order —
 *      and each parked pendingTickets counter equals a fresh recount,
 *      every cycle, including across mid-run squashes.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/binio.hh"
#include "common/random.hh"
#include "ltp/oracle.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"

namespace ltp {
namespace {

RunLengths
tiny()
{
    RunLengths l;
    l.funcWarm = 20000;
    l.pipeWarm = 2000;
    l.detail = 8000;
    return l;
}

// ---------------------------------------------------------------------
// P1/P2/P5 across kernel x LTP-mode.

using KernelMode = std::tuple<std::string, LtpMode>;

class KernelModeProp : public ::testing::TestWithParam<KernelMode>
{
};

TEST_P(KernelModeProp, CompletionOccupancyAndAccounting)
{
    const auto &[kernel, mode] = GetParam();
    SimConfig cfg = mode == LtpMode::Off
                        ? SimConfig::baseline()
                        : SimConfig::ltpProposal(mode);
    RunLengths lengths = tiny();
    Simulator sim(cfg, kernel, lengths);
    Metrics m = sim.run();

    // P1: full completion (commit is 8-wide, so the final cycle may
    // overshoot by up to commitWidth-1).
    EXPECT_GE(m.insts, lengths.detail);
    EXPECT_LT(m.insts, lengths.detail + 8);

    // P2: occupancy bounds.
    EXPECT_LE(m.iqOcc, double(cfg.core.iqSize) + 1.0); // emergency slot
    EXPECT_LE(m.robOcc, double(cfg.core.robSize));
    EXPECT_LE(m.lqOcc, double(cfg.core.lqSize));
    EXPECT_LE(m.sqOcc, double(cfg.core.sqSize));
    EXPECT_LE(m.rfOcc, double(cfg.core.intRegs + cfg.core.fpRegs));
    if (mode != LtpMode::Off)
        EXPECT_LE(m.ltpOcc, double(cfg.core.ltp.entries));
    else
        EXPECT_EQ(m.parked, 0u);

    // P5: parking balance after drain.  Unparks may exceed parks by
    // whatever sat in the LTP when stats were reset at the start of
    // the detail region — never the other way around.
    sim.core().drain();
    EXPECT_EQ(sim.core().ltpQueue().size(), 0);
    std::uint64_t parked = sim.core().stats().parked.value();
    std::uint64_t unparked = sim.core().stats().unparked.value();
    EXPECT_GE(unparked, parked);
    EXPECT_LE(unparked - parked,
              std::uint64_t(std::min(cfg.core.ltp.entries,
                                     cfg.core.robSize)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelModeProp,
    ::testing::Combine(
        ::testing::Values("paper_loop", "graph_walk",
                          "indirect_stream_fp", "sparse_gather",
                          "hash_probe", "linked_list", "bucket_shuffle",
                          "btree_lookup", "dense_compute", "branchy_int",
                          "fp_kernel", "cache_stream", "reduction",
                          "int_mix", "div_heavy"),
        ::testing::Values(LtpMode::Off, LtpMode::NU, LtpMode::NRNU)),
    [](const ::testing::TestParamInfo<KernelMode> &info) {
        std::string mode;
        switch (std::get<1>(info.param)) {
          case LtpMode::Off: mode = "Off"; break;
          case LtpMode::NU: mode = "NU"; break;
          case LtpMode::NR: mode = "NR"; break;
          case LtpMode::NRNU: mode = "NRNU"; break;
        }
        return std::get<0>(info.param) + "_" + mode;
    });

// ---------------------------------------------------------------------
// P3: resource monotonicity.

class MonotonicProp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MonotonicProp, InfiniteResourcesNoSlower)
{
    RunLengths lengths = tiny();
    Metrics finite = Simulator::runOnce(SimConfig::baseline(),
                                        GetParam(), lengths);
    Metrics infinite = Simulator::runOnce(
        SimConfig::baseline()
            .withIq(kInfiniteSize)
            .withRegs(kInfiniteSize)
            .withLq(kInfiniteSize)
            .withSq(kInfiniteSize),
        GetParam(), lengths);
    // Modest tolerance: second-order scheduling interactions exist.
    EXPECT_GE(infinite.ipc, finite.ipc * 0.98) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonotonicProp,
    ::testing::Values("paper_loop", "indirect_stream_fp",
                      "bucket_shuffle", "dense_compute", "hash_probe"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------
// P4: determinism across independent Simulator instances.

class DeterminismProp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DeterminismProp, IdenticalRunsIdenticalCycles)
{
    Metrics a = Simulator::runOnce(SimConfig::ltpProposal(), GetParam(),
                                   tiny());
    Metrics b = Simulator::runOnce(SimConfig::ltpProposal(), GetParam(),
                                   tiny());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.parked, b.parked);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismProp,
    ::testing::Values("graph_walk", "indirect_stream_fp", "div_heavy"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// ---------------------------------------------------------------------
// P8: event-driven scheduler invariants, validated cycle by cycle.

using SchedCase = std::tuple<std::string, LtpMode, int>;

class SchedulerInvariantProp : public ::testing::TestWithParam<SchedCase>
{
};

/**
 * Assert the IQ's ready list is exactly what a brute-force readiness
 * poll would compute: same membership, oldest-first order, no
 * duplicates, consistent bitmask, and pendingSrcs drained to zero.
 */
void
checkSchedulerInvariants(Core &core, Cycle cycle)
{
    IssueQueue &iq = core.iq();

    std::vector<const DynInst *> brute;
    int entries = 0;
    iq.forEachInOrder([&](DynInst *inst) {
        entries += 1;
        bool ready = core.srcsReady(inst); // panics on LTP sources
        ASSERT_EQ(iq.isReady(inst), ready)
            << "entry seq " << inst->seq << " at cycle " << cycle;
        if (ready) {
            brute.push_back(inst);
            EXPECT_EQ(inst->pendingSrcs, 0)
                << "seq " << inst->seq << " at cycle " << cycle;
        }
    });
    ASSERT_EQ(entries, iq.size());

    std::vector<const DynInst *> ready_list;
    SeqNum prev = 0;
    iq.forEachReady([&](DynInst *inst) {
        if (!ready_list.empty()) {
            EXPECT_LT(prev, inst->seq)
                << "ready list out of order at cycle " << cycle;
        }
        prev = inst->seq;
        ready_list.push_back(inst);
        return true;
    });
    ASSERT_EQ(ready_list, brute) << "at cycle " << cycle;
}

TEST_P(SchedulerInvariantProp, ReadyListEqualsBruteForceScan)
{
    const auto &[kernel, mode, seed] = GetParam();
    SimConfig cfg = mode == LtpMode::Off
                        ? SimConfig::baseline()
                        : SimConfig::ltpProposal(mode);
    cfg.seed = seed;
    RunLengths lengths = tiny();
    Simulator sim(cfg, kernel, lengths);
    Core &core = sim.core();

    for (int cycle = 1; cycle <= 3000; ++cycle) {
        core.tick();
        checkSchedulerInvariants(core, core.cycle());
        if (::testing::Test::HasFatalFailure())
            return;
        // Mid-run squashes must tear wakeup subscriptions down
        // consistently (stale dependents links are generation-filtered).
        if (cycle == 1000 || cycle == 2000) {
            DynInst *head = core.rob().head();
            if (head) {
                core.squashAfter(head->seq + 4);
                checkSchedulerInvariants(core, core.cycle());
                if (::testing::Test::HasFatalFailure())
                    return;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerInvariantProp,
    ::testing::Combine(::testing::Values("paper_loop", "graph_walk",
                                         "sparse_gather", "div_heavy"),
                       ::testing::Values(LtpMode::Off, LtpMode::NU,
                                         LtpMode::NRNU),
                       ::testing::Values(1, 7)),
    [](const ::testing::TestParamInfo<SchedCase> &info) {
        std::string mode;
        switch (std::get<1>(info.param)) {
          case LtpMode::Off: mode = "Off"; break;
          case LtpMode::NU: mode = "NU"; break;
          case LtpMode::NR: mode = "NR"; break;
          case LtpMode::NRNU: mode = "NRNU"; break;
        }
        return std::get<0>(info.param) + "_" + mode + "_s" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// P9: LTP wakeup invariants — ticket wheel + batched unpark vs a
// brute-force per-cycle ticket scan.

class LtpWakeupInvariantProp : public ::testing::TestWithParam<SchedCase>
{
};

/**
 * Assert the LTP queue's ready lists are exactly what the pre-wheel
 * per-cycle scan would compute: a parked instruction is wakeup-ready
 * iff no ticket in its mask is still pending, the urgent/non-urgent
 * ready lists partition exactly that set by the urgent bit in seq
 * order, and every parked pendingTickets counter matches a fresh
 * recount against the pending bitmask (the wheel's subscription
 * bookkeeping may never drift from the mask it summarises).
 */
void
checkLtpWakeupInvariants(Core &core, Cycle cycle)
{
    LtpQueue &q = core.ltpQueue();
    const TicketMask &pending = core.tickets().pending();

    std::vector<const DynInst *> brute_urgent, brute_nonurgent;
    SeqNum prev_parked = 0;
    int parked = 0;
    q.forEach([&](DynInst *inst) {
        parked += 1;
        if (parked > 1) {
            EXPECT_LT(prev_parked, inst->seq)
                << "parked list out of order at cycle " << cycle;
        }
        prev_parked = inst->seq;

        int live = 0;
        inst->tickets.forEachSet([&](int t) {
            if (pending.test(t))
                live += 1;
        });
        ASSERT_EQ(inst->pendingTickets, live)
            << "pendingTickets drifted from mask recount, seq "
            << inst->seq << " at cycle " << cycle;
        if (live == 0)
            (inst->urgent ? brute_urgent : brute_nonurgent)
                .push_back(inst);
    });
    ASSERT_EQ(parked, q.size());

    auto collect = [&](const DynInst *head) {
        std::vector<const DynInst *> list;
        SeqNum prev = 0;
        for (const DynInst *i = head; i; i = LtpQueue::readyNext(i)) {
            if (!list.empty()) {
                EXPECT_LT(prev, i->seq)
                    << "ready list out of order at cycle " << cycle;
            }
            prev = i->seq;
            list.push_back(i);
        }
        return list;
    };
    ASSERT_EQ(collect(q.urgentReadyFront()), brute_urgent)
        << "urgent ready list at cycle " << cycle;
    ASSERT_EQ(collect(q.nonUrgentReadyFront()), brute_nonurgent)
        << "non-urgent ready list at cycle " << cycle;
}

TEST_P(LtpWakeupInvariantProp, ReadySetEqualsBruteForceTicketScan)
{
    const auto &[kernel, mode, seed] = GetParam();
    SimConfig cfg = SimConfig::ltpProposal(mode);
    cfg.seed = seed;
    RunLengths lengths = tiny();
    Simulator sim(cfg, kernel, lengths);
    Core &core = sim.core();

    for (int cycle = 1; cycle <= 3000; ++cycle) {
        core.tick();
        checkLtpWakeupInvariants(core, core.cycle());
        if (::testing::Test::HasFatalFailure())
            return;
        // Mid-run squashes must tear ticket subscriptions down
        // consistently (stale cohort entries are generation-filtered,
        // squashed owners bump the ticket epoch so in-flight wheel
        // events go stale).
        if (cycle == 1000 || cycle == 2000) {
            DynInst *head = core.rob().head();
            if (head) {
                core.squashAfter(head->seq + 4);
                checkLtpWakeupInvariants(core, core.cycle());
                if (::testing::Test::HasFatalFailure())
                    return;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LtpWakeupInvariantProp,
    ::testing::Combine(::testing::Values("graph_walk", "sparse_gather",
                                         "linked_list", "btree_lookup"),
                       ::testing::Values(LtpMode::NU, LtpMode::NRNU),
                       ::testing::Values(1, 7)),
    [](const ::testing::TestParamInfo<SchedCase> &info) {
        std::string mode =
            std::get<1>(info.param) == LtpMode::NU ? "NU" : "NRNU";
        return std::get<0>(info.param) + "_" + mode + "_s" +
               std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// P6: oracle closure on random DAG traces.

/** Random dependence-DAG workload for closure checking. */
class RandomDag : public Workload
{
  public:
    explicit RandomDag(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "random_dag"; }

    void
    reset(std::uint64_t seed) override
    {
        rng_ = Rng(seed);
    }

    MicroOp
    next() override
    {
        // 20% loads (some to a DRAM-sized region => long latency),
        // 80% ALU ops with random sources.
        int dst = int(rng_.below(kArchRegsPerClass));
        if (rng_.chance(0.2)) {
            Addr addr = rng_.chance(0.5)
                            ? 0x10000000 + rng_.below(64 << 20)
                            : 0x20000000 + rng_.below(4 << 10);
            return OpBuilder(OpClass::Load)
                .pc(0x1000 + rng_.below(64) * 4)
                .dst(intReg(dst))
                .src(intReg(int(rng_.below(kArchRegsPerClass))))
                .mem(addr, 8)
                .build();
        }
        return OpBuilder(OpClass::IntAlu)
            .pc(0x2000 + rng_.below(256) * 4)
            .dst(intReg(dst))
            .src(intReg(int(rng_.below(kArchRegsPerClass))))
            .src(intReg(int(rng_.below(kArchRegsPerClass))))
            .build();
    }

  private:
    Rng rng_;
};

class OracleClosureProp : public ::testing::TestWithParam<int>
{
};

TEST_P(OracleClosureProp, UrgencyIsAncestorClosure)
{
    const std::uint64_t seed = GetParam();
    const SeqNum n = 4000;
    RandomDag dag(seed);
    OracleParams params;
    OracleClassification oc =
        oracleClassify(dag, seed, n, MemConfig{}, params);

    // Reference closure computed independently: walk backwards keeping,
    // per register, the nearest urgent consumer.
    RandomDag replay(seed);
    replay.reset(seed);
    std::vector<MicroOp> trace(n);
    for (SeqNum s = 0; s < n; ++s)
        trace[s] = replay.next();

    std::vector<SeqNum> need(kTotalArchRegs, kSeqNone);
    std::vector<bool> urgent_ref(n, false);
    for (SeqNum s = n; s-- > 0;) {
        const MicroOp &op = trace[s];
        bool urgent = oc.longLatency(s);
        if (op.hasDst()) {
            SeqNum consumer = need[op.dst.flat()];
            if (consumer != kSeqNone &&
                consumer - s <= SeqNum(params.urgencyWindow))
                urgent = true;
            need[op.dst.flat()] = kSeqNone;
        }
        if (urgent) {
            urgent_ref[s] = true;
            for (const auto &src : op.srcs)
                if (src.valid())
                    need[src.flat()] = s;
        }
    }
    for (SeqNum s = 0; s < n; ++s)
        ASSERT_EQ(oc.urgent(s), urgent_ref[s]) << "seq " << s;
}

TEST_P(OracleClosureProp, NonReadyOnlyFromLongLatencyAncestors)
{
    const std::uint64_t seed = GetParam() + 100;
    const SeqNum n = 4000;
    RandomDag dag(seed);
    OracleClassification oc = oracleClassify(dag, seed, n, MemConfig{});

    RandomDag replay(seed);
    replay.reset(seed);
    // Forward check: an instruction flagged Non-Ready must read at
    // least one register whose last long-latency-tainted write is
    // within the readiness window.
    std::vector<SeqNum> taint(kTotalArchRegs, 0);
    OracleParams params;
    for (SeqNum s = 0; s < n; ++s) {
        MicroOp op = replay.next();
        SeqNum horizon = 0;
        for (const auto &src : op.srcs)
            if (src.valid())
                horizon = std::max(horizon, taint[src.flat()]);
        ASSERT_EQ(oc.nonReady(s), horizon > s) << "seq " << s;
        if (op.hasDst()) {
            SeqNum h = horizon > s ? horizon : 0;
            if (oc.longLatency(s))
                h = std::max(h, s + params.readinessWindow);
            taint[op.dst.flat()] = h;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleClosureProp,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// P7: trace format round trip on randomized micro-op streams.

/** A random micro-op spanning every op class and field combination. */
MicroOp
randomOp(Rng &rng)
{
    auto reg = [&](double p_valid) {
        if (!rng.chance(p_valid))
            return RegId(); // invalid / unused slot
        RegClass cls = rng.chance(0.5) ? RegClass::Int : RegClass::Fp;
        return RegId(cls, int(rng.below(kArchRegsPerClass)));
    };
    OpClass opc = static_cast<OpClass>(rng.below(kNumOpClasses));
    OpBuilder b(opc);
    b.pc(rng.next());
    if (rng.chance(0.9))
        b.dst(reg(1.0));
    for (int i = 0; i < kMaxSrcs; ++i)
        if (rng.chance(0.6)) {
            RegId r = reg(1.0);
            b.src(r);
        }
    if (isMem(opc))
        b.mem(rng.next(), 1 << rng.below(4));
    if (isBranch(opc))
        b.branch(rng.chance(0.5), rng.next());
    return b.build();
}

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    bool same = a.pc == b.pc && a.opc == b.opc &&
                a.effAddr == b.effAddr && a.memSize == b.memSize &&
                a.taken == b.taken && a.target == b.target &&
                a.dst == b.dst;
    for (int i = 0; i < kMaxSrcs; ++i)
        same = same && a.srcs[i] == b.srcs[i];
    return same;
}

class TraceRoundTripProp : public ::testing::TestWithParam<int>
{
};

TEST_P(TraceRoundTripProp, WriteReadWriteIsByteAndRecordIdentical)
{
    Rng rng(GetParam());
    const std::uint64_t n = 500 + rng.below(1500);

    TraceInfo info;
    info.kernel = "random_stream_" + std::to_string(GetParam());
    info.seed = rng.next();
    info.funcWarm = rng.below(10000);
    info.pipeWarm = rng.below(1000);
    info.detail = rng.below(5000);

    std::vector<MicroOp> ops;
    TraceWriter writer(info);
    for (std::uint64_t i = 0; i < n; ++i) {
        ops.push_back(randomOp(rng));
        writer.append(ops.back());
    }
    std::string bytes = writer.finish();

    // Read back: header and every record identical.
    TraceReader reader(bytes);
    EXPECT_EQ(reader.info().kernel, info.kernel);
    EXPECT_EQ(reader.info().seed, info.seed);
    EXPECT_EQ(reader.info().funcWarm, info.funcWarm);
    EXPECT_EQ(reader.info().pipeWarm, info.pipeWarm);
    EXPECT_EQ(reader.info().detail, info.detail);
    ASSERT_EQ(reader.info().count, n);
    for (std::uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(sameOp(ops[i], reader.record(i))) << "record " << i;

    // Re-encode what was read: byte-identical file.
    TraceWriter rewriter(reader.info());
    for (std::uint64_t i = 0; i < n; ++i)
        rewriter.append(reader.record(i));
    EXPECT_EQ(rewriter.finish(), bytes);
}

TEST_P(TraceRoundTripProp, CorruptionIsRejected)
{
    Rng rng(GetParam() + 1000);
    TraceInfo info;
    info.kernel = "corrupt_me";
    TraceWriter writer(info);
    for (int i = 0; i < 64; ++i)
        writer.append(randomOp(rng));
    std::string good = writer.finish();
    ASSERT_NO_THROW((void)TraceReader(good));

    // Bad magic.
    std::string bad_magic = good;
    bad_magic[0] ^= 0x5a;
    EXPECT_THROW((void)TraceReader(bad_magic), std::runtime_error);

    // Unsupported version.
    std::string bad_version = good;
    bad_version[8] = 99; // version u32 follows the 8-byte magic
    EXPECT_THROW((void)TraceReader(bad_version), std::runtime_error);

    // Truncations: mid-header, mid-records, and a clipped footer.
    for (std::size_t keep :
         {std::size_t(10), good.size() / 2, good.size() - 1})
        EXPECT_THROW((void)TraceReader(good.substr(0, keep)),
                     std::runtime_error)
            << "kept " << keep << " bytes";

    // A flipped payload byte must fail the CRC.
    std::string bad_payload = good;
    bad_payload[good.size() / 2] ^= 0x01;
    EXPECT_THROW((void)TraceReader(bad_payload), std::runtime_error);

    // A flipped CRC byte must fail too.
    std::string bad_crc = good;
    bad_crc[good.size() - 1] ^= 0x01;
    EXPECT_THROW((void)TraceReader(bad_crc), std::runtime_error);

    // Trailing garbage is a size mismatch, not silently ignored.
    EXPECT_THROW((void)TraceReader(good + "x"), std::runtime_error);
}

/** Re-seal a tampered image with a fresh CRC so only the semantic
 *  validation can reject it. */
std::string
resealed(std::string bytes)
{
    std::string body = bytes.substr(0, bytes.size() - 4);
    std::string out = body;
    putU32le(out, crc32(body));
    return out;
}

TEST_P(TraceRoundTripProp, CrcValidButCraftedPayloadIsRejected)
{
    Rng rng(GetParam() + 2000);
    TraceInfo info;
    info.kernel = "crafted";
    TraceWriter writer(info);
    for (int i = 0; i < 8; ++i) {
        // All-ALU records with a valid destination, so register
        // tampering below flips a *valid* register to an invalid one.
        writer.append(OpBuilder(OpClass::IntAlu)
                          .pc(0x1000 + i * 4)
                          .dst(intReg(int(rng.below(kArchRegsPerClass))))
                          .build());
    }
    std::string good = writer.finish();
    // Header: magic 8 + version 4 + reserved 4 + 5×u64 + u16 + name.
    const std::size_t records_off = 8 + 4 + 4 + 5 * 8 + 2 +
                                    info.kernel.size();
    const std::size_t count_off = 8 + 4 + 4 + 4 * 8;

    // An absurd record count must fail the (overflow-safe) size check
    // even with a recomputed CRC.
    {
        std::string bad = good;
        for (int b = 0; b < 8; ++b)
            bad[count_off + b] = char(0xff);
        EXPECT_THROW((void)TraceReader(resealed(bad)),
                     std::runtime_error);
    }
    // Out-of-range op class, CRC-valid.
    {
        std::string bad = good;
        bad[records_off + 24] = char(kNumOpClasses);
        EXPECT_THROW((void)TraceReader(resealed(bad)),
                     std::runtime_error);
    }
    // Out-of-range register class on a valid destination, CRC-valid
    // (would index the rename table out of bounds if replayed).
    {
        std::string bad = good;
        bad[records_off + 28] = char(0xff); // dst high byte = regClass
        EXPECT_THROW((void)TraceReader(resealed(bad)),
                     std::runtime_error);
    }
    // Out-of-range register index (valid != 0xff but >= 32), CRC-valid.
    {
        std::string bad = good;
        bad[records_off + 27] = char(0x40); // dst low byte = index
        EXPECT_THROW((void)TraceReader(resealed(bad)),
                     std::runtime_error);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripProp,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace ltp
