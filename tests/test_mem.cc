/**
 * @file
 * Tests for the memory hierarchy: caches (LRU, write-back, in-flight
 * merge), MSHRs, stride prefetcher, DRAM timing, and the MemSystem
 * front door (levels, early wakeup, warm path).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_system.hh"
#include "mem/mshr.hh"
#include "mem/prefetcher.hh"

namespace ltp {
namespace {

TEST(Cache, HitAfterFill)
{
    Cache c("t", CacheConfig{4, 4, 3});
    Cycle ready;
    EXPECT_FALSE(c.lookup(0x1000, 10, &ready));
    c.fill(0x1000, 10, 10, false);
    EXPECT_TRUE(c.lookup(0x1000, 11, &ready));
    EXPECT_LE(ready, 11u);
    EXPECT_EQ(c.demandHits.value(), 1u);
    EXPECT_EQ(c.demandMisses.value(), 1u);
}

TEST(Cache, LruEviction)
{
    // 4kB, 4-way, 64B lines => 16 sets.  Fill 5 ways of one set; the
    // least-recently-used line must be the victim.
    Cache c("t", CacheConfig{4, 4, 3});
    const Addr set_stride = 16 * 64; // same set every stride
    Cycle ready;
    for (int i = 0; i < 4; ++i)
        c.fill(0x10000 + i * set_stride, 0, 0, false);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.lookup(0x10000, 1, &ready));
    auto victim = c.fill(0x10000 + 4 * set_stride, 2, 2, false);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x10000u + set_stride);
    EXPECT_TRUE(c.lookup(0x10000, 3, &ready)); // line 0 retained
}

TEST(Cache, DirtyVictimReported)
{
    Cache c("t", CacheConfig{4, 4, 3});
    const Addr set_stride = 16 * 64;
    for (int i = 0; i < 4; ++i)
        c.fill(0x20000 + i * set_stride, 0, 0, false);
    c.setDirty(0x20000);
    // Evict everything.
    Cache::Victim dirty{};
    for (int i = 4; i < 8; ++i) {
        auto v = c.fill(0x20000 + i * set_stride, 1, 1, false);
        if (v.valid && v.dirty)
            dirty = v;
    }
    EXPECT_TRUE(dirty.valid);
    EXPECT_EQ(dirty.addr, 0x20000u);
    EXPECT_EQ(c.dirtyEvictions.value(), 1u);
}

TEST(Cache, InflightMerge)
{
    Cache c("t", CacheConfig{4, 4, 3});
    c.fill(0x3000, 5, 100, false); // fill arrives at cycle 100
    Cycle ready;
    EXPECT_TRUE(c.lookup(0x3000, 10, &ready));
    EXPECT_EQ(ready, 100u);
    EXPECT_EQ(c.mergedInflight.value(), 1u);
    EXPECT_TRUE(c.lookup(0x3000, 200, &ready));
    EXPECT_EQ(c.demandHits.value(), 1u);
}

TEST(Cache, PrefetchAccounting)
{
    Cache c("t", CacheConfig{4, 4, 3});
    c.fill(0x4000, 0, 0, true);
    EXPECT_EQ(c.prefetchFills.value(), 1u);
    Cycle ready;
    EXPECT_TRUE(c.lookup(0x4000, 1, &ready));
    EXPECT_EQ(c.usefulPrefetches.value(), 1u);
    // Second hit is no longer "prefetched".
    c.lookup(0x4000, 2, &ready);
    EXPECT_EQ(c.usefulPrefetches.value(), 1u);
}

TEST(Cache, InvalidateDropsLine)
{
    Cache c("t", CacheConfig{4, 4, 3});
    c.fill(0x5000, 0, 0, false);
    c.invalidate(0x5000);
    Cycle ready;
    EXPECT_FALSE(c.lookup(0x5000, 1, &ready));
}

TEST(Cache, BadGeometryIsFatal)
{
    EXPECT_EXIT(Cache("t", CacheConfig{3, 7, 1}),
                ::testing::ExitedWithCode(1), "non-power-of-2");
}

TEST(Mshr, CapacityAndExpiry)
{
    MshrFile m(2);
    EXPECT_TRUE(m.available(0));
    m.allocate(0x100, 0, 50);
    m.allocate(0x200, 0, 60);
    EXPECT_FALSE(m.available(10));
    EXPECT_EQ(m.fullStalls.value(), 1u);
    // First entry expires at 50.
    EXPECT_TRUE(m.available(50));
    EXPECT_EQ(m.occupancy(55), 1);
    EXPECT_EQ(m.occupancy(100), 0);
}

TEST(Mshr, InfiniteNeverFull)
{
    MshrFile m(kInfiniteSize);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(m.available(0));
        m.allocate(i * 64, 0, 1000000);
    }
}

TEST(Prefetcher, DetectsPositiveStride)
{
    StridePrefetcher pf(4);
    std::vector<Addr> out;
    pf.observe(0x40, 0x1000, out);
    pf.observe(0x40, 0x1040, out);
    EXPECT_TRUE(out.empty()); // confidence not yet established
    pf.observe(0x40, 0x1080, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], blockAlign(0x1080 + 0x40));
    EXPECT_EQ(out[3], blockAlign(0x1080 + 4 * 0x40));
}

TEST(Prefetcher, DetectsNegativeStride)
{
    // The paper-loop A[] array walks downwards.
    StridePrefetcher pf(4);
    std::vector<Addr> out;
    pf.observe(0x44, 0x2000, out);
    pf.observe(0x44, 0x2000 - 64, out);
    pf.observe(0x44, 0x2000 - 128, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], blockAlign(Addr(0x2000 - 192)));
}

TEST(Prefetcher, RandomAddressesNoPrefetch)
{
    StridePrefetcher pf(4);
    Rng rng(1);
    std::vector<Addr> out;
    for (int i = 0; i < 100; ++i)
        pf.observe(0x48, rng.next() % (1 << 26), out);
    // Random strides: the occasional accidental repeat is possible but
    // sustained confidence is not.
    EXPECT_LT(out.size(), 20u);
}

TEST(Prefetcher, DegreeZeroDisabled)
{
    StridePrefetcher pf(0);
    std::vector<Addr> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(0x4c, 0x1000 + i * 64, out);
    EXPECT_TRUE(out.empty());
}

TEST(Dram, RowHitFasterThanConflict)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banks = 1;
    Dram d(cfg);
    Cycle first = d.access(0x0, 0, false);
    // Same row, issued long after the bank freed.
    Cycle second_start = first + 1000;
    Cycle second = d.access(0x40, second_start, false);
    // Different row on the same bank.
    Cycle third_start = second + 1000;
    Cycle third = d.access(1 << 24, third_start, false);
    Cycle hit_lat = second - second_start;
    Cycle conflict_lat = third - third_start;
    EXPECT_LT(hit_lat, conflict_lat);
    EXPECT_EQ(d.rowHits.value(), 1u);
    EXPECT_EQ(d.rowConflicts.value(), 2u);
}

TEST(Dram, BankQueueingSerializes)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banks = 1;
    Dram d(cfg);
    Cycle c1 = d.access(0x0, 0, false);
    Cycle c2 = d.access(1 << 24, 0, false); // same bank, other row
    EXPECT_GT(c2, c1);
}

TEST(Dram, ChannelsProvideParallelism)
{
    DramConfig one;
    one.channels = 1;
    DramConfig two;
    two.channels = 2;
    Dram d1(one), d2(two);
    // Issue a burst of parallel requests; with more channels the last
    // completion must be no later.
    Cycle last1 = 0, last2 = 0;
    for (int i = 0; i < 32; ++i) {
        Addr a = Addr(i) * 64;
        last1 = std::max(last1, d1.access(a, 0, false));
        last2 = std::max(last2, d2.access(a, 0, false));
    }
    EXPECT_LT(last2, last1);
}

TEST(Dram, InflightTracking)
{
    Dram d(DramConfig{});
    Cycle done = d.access(0x0, 0, false);
    EXPECT_EQ(d.inflightReads(0), 1);
    EXPECT_EQ(d.inflightReads(done), 0);
    EXPECT_GT(d.meanInflightReads(done), 0.0);
}

TEST(Dram, WritesDoNotCountAsReads)
{
    Dram d(DramConfig{});
    d.access(0x0, 0, true);
    EXPECT_EQ(d.inflightReads(0), 0);
    EXPECT_EQ(d.writes.value(), 1u);
    EXPECT_EQ(d.reads.value(), 0u);
}

TEST(Dram, TypicalLatencyPlausible)
{
    Dram d(DramConfig{});
    // DDR3-1600 random access at 3.4GHz: roughly 120-220 CPU cycles.
    EXPECT_GT(d.typicalLatency(), 100u);
    EXPECT_LT(d.typicalLatency(), 300u);
}

// ---------------------------------------------------------------------

class MemSystemTest : public ::testing::Test
{
  protected:
    MemConfig cfg_;
};

TEST_F(MemSystemTest, LevelsAndLatencies)
{
    MemSystem mem(cfg_);
    // Cold access goes to DRAM.
    auto r1 = mem.access(0x40, 0x100000, false, 100);
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->level, HitLevel::Dram);
    EXPECT_GT(r1->dataReady, 100u + 36u);
    EXPECT_TRUE(mem.isLongLatency(*r1, 100));

    // Touch again once resident: L1 hit at the L1 latency.
    Cycle later = r1->dataReady + 10;
    auto r2 = mem.access(0x40, 0x100000, false, later);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->level, HitLevel::L1);
    EXPECT_EQ(r2->dataReady, later + cfg_.l1d.hitLatency);
    EXPECT_FALSE(mem.isLongLatency(*r2, later));
}

TEST_F(MemSystemTest, InflightMergeSharesFill)
{
    MemSystem mem(cfg_);
    auto r1 = mem.access(0x40, 0x200000, false, 0);
    ASSERT_TRUE(r1.has_value());
    // Second access to the same line while the fill is in flight.
    auto r2 = mem.access(0x44, 0x200008, false, 5);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->level, HitLevel::Inflight);
    EXPECT_EQ(r2->dataReady, r1->dataReady);
}

TEST_F(MemSystemTest, EarlyWakeupLeadsData)
{
    MemSystem mem(cfg_);
    auto r = mem.access(0x40, 0x300000, false, 0);
    ASSERT_TRUE(r.has_value());
    EXPECT_LT(r->earlyWakeup, r->dataReady);
    EXPECT_EQ(r->dataReady - r->earlyWakeup, cfg_.earlyLead);
}

TEST_F(MemSystemTest, MshrLimitForcesRetry)
{
    cfg_.l1dMshrs = 2;
    MemSystem mem(cfg_);
    EXPECT_TRUE(mem.access(0x40, 0x40ull << 12, false, 0).has_value());
    EXPECT_TRUE(mem.access(0x40, 0x41ull << 12, false, 0).has_value());
    auto r3 = mem.access(0x40, 0x42ull << 12, false, 0);
    EXPECT_FALSE(r3.has_value()); // retry
}

TEST_F(MemSystemTest, L2HitAfterL1Eviction)
{
    MemSystem mem(cfg_);
    // Fill a line, then evict it from L1 by filling its whole L1 set
    // (64 sets x 8 ways): same-set stride is 64 sets * 64B = 4kB.
    auto first = mem.access(0x40, 0x800000, false, 0);
    Cycle t = first->dataReady + 1;
    for (int i = 1; i <= 8; ++i) {
        auto r = mem.access(0x40, 0x800000 + i * 4096, false, t);
        t = r ? r->dataReady + 1 : t + 1;
    }
    auto back = mem.access(0x40, 0x800000, false, t);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->level, HitLevel::L2);
    EXPECT_EQ(back->dataReady, t + cfg_.l2.hitLatency);
}

TEST_F(MemSystemTest, PrefetcherCoversSequentialStream)
{
    MemSystem mem(cfg_);
    Cycle t = 0;
    std::uint64_t dram_before = 0;
    // Stream 256 sequential lines from one PC.
    for (int i = 0; i < 256; ++i) {
        auto r = mem.access(0x80, 0xc00000 + Addr(i) * 64, false, t);
        ASSERT_TRUE(r.has_value());
        t = std::max(t + 1, r->dataReady);
        if (i == 32)
            dram_before = mem.dram().reads.value();
    }
    std::uint64_t dram_after = mem.dram().reads.value();
    // Later in the stream, demand DRAM reads should be mostly covered
    // by prefetches (reads still occur, but as prefetch fills).
    EXPECT_GT(mem.prefetcher().issued.value(), 100u);
    EXPECT_GT(mem.l2().prefetchFills.value(), 50u);
    (void)dram_before;
    (void)dram_after;
}

TEST_F(MemSystemTest, WarmAccessInstallsWithoutTiming)
{
    MemSystem mem(cfg_);
    EXPECT_EQ(mem.warmAccess(0x40, 0xd00000, false, 0), HitLevel::Dram);
    EXPECT_EQ(mem.warmAccess(0x40, 0xd00000, false, 0), HitLevel::L1);
    EXPECT_EQ(mem.dram().reads.value(), 0u); // no timed traffic
    // A detailed access afterwards hits with sane (non-future) timing.
    auto r = mem.access(0x40, 0xd00000, false, 3);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->level, HitLevel::L1);
    EXPECT_EQ(r->dataReady, 3 + cfg_.l1d.hitLatency);
}

TEST_F(MemSystemTest, FetchPathHitsAfterWarm)
{
    MemSystem mem(cfg_);
    auto cold = mem.fetchAccess(0x400000, 0);
    EXPECT_GT(cold.dataReady, 0u + cfg_.l1i.hitLatency);
    auto warm = mem.fetchAccess(0x400000, cold.dataReady + 1);
    EXPECT_EQ(warm.level, HitLevel::L1);
}

TEST_F(MemSystemTest, StoresMarkDirtyAndWriteBack)
{
    MemSystem mem(cfg_);
    auto w = mem.access(0x40, 0xe00000, true, 0);
    ASSERT_TRUE(w.has_value());
    // Evict through the hierarchy by filling the L1 set, then check a
    // dirty eviction happened somewhere.
    Cycle t = w->dataReady + 1;
    for (int i = 1; i <= 9; ++i) {
        auto r = mem.access(0x40, 0xe00000 + i * 4096, false, t);
        t = r ? r->dataReady + 1 : t + 1;
    }
    EXPECT_GE(mem.l1d().dirtyEvictions.value(), 1u);
}

TEST_F(MemSystemTest, AvgLoadLatencyTracksLevels)
{
    MemSystem mem(cfg_);
    auto r = mem.access(0x40, 0xf00000, false, 0);
    Cycle t = r->dataReady + 1;
    mem.access(0x40, 0xf00000, false, t);
    // One DRAM access and one L1 hit: the mean sits between them.
    EXPECT_GT(mem.avgLoadLatency(), double(cfg_.l1d.hitLatency));
    EXPECT_LT(mem.avgLoadLatency(), double(r->dataReady));
}

} // namespace
} // namespace ltp
