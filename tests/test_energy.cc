/**
 * @file
 * Tests for the first-order energy model: scaling directions that the
 * paper's ED2P argument rests on.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace ltp {
namespace {

EnergyInputs
nominal()
{
    EnergyInputs in;
    in.cycles = 100000;
    in.iqEntries = 64;
    in.totalRegs = 256;
    in.iqInserts = 80000;
    in.iqIssues = 80000;
    in.wakeupBroadcasts = 80000;
    in.rfReads = 120000;
    in.rfWrites = 70000;
    return in;
}

TEST(Energy, SmallerIqCheaper)
{
    EnergyInputs big = nominal();
    EnergyInputs small = nominal();
    small.iqEntries = 32;
    EXPECT_LT(computeEnergy(small).iq, computeEnergy(big).iq);
}

TEST(Energy, SmallerRfCheaper)
{
    EnergyInputs big = nominal();
    EnergyInputs small = nominal();
    small.totalRegs = 192;
    EXPECT_LT(computeEnergy(small).rf, computeEnergy(big).rf);
}

TEST(Energy, IqWakeupScalesLinearlyWithEntries)
{
    // CAM broadcast energy is the entries-proportional term.
    EnergyInputs a = nominal();
    a.cycles = 0; // isolate dynamic terms
    EnergyInputs b = a;
    b.iqEntries = 128;
    double ea = computeEnergy(a).iq;
    double eb = computeEnergy(b).iq;
    EXPECT_GT(eb / ea, 1.6); // dominated by the linear CAM term
}

TEST(Energy, LtpQueueFarCheaperThanIqForSameTraffic)
{
    // The paper's core claim: a 128-entry 4-port FIFO costs much less
    // than a 64-entry IQ moving the same number of instructions.
    EnergyInputs in = nominal();
    in.ltpEntries = 128;
    in.ltpPorts = 4;
    in.uitEntries = 256;
    in.ltpPushes = 80000;
    in.ltpPops = 80000;
    in.uitLookups = 160000;
    in.predLookups = 40000;
    in.ltpEnabledFraction = 1.0;
    EnergyBreakdown e = computeEnergy(in);
    EXPECT_LT(e.ltp, 0.35 * e.iq);
}

TEST(Energy, TicketCamCostsExtra)
{
    EnergyInputs nu = nominal();
    nu.ltpEntries = 128;
    nu.ltpPorts = 4;
    nu.ltpPushes = 50000;
    nu.ltpPops = 50000;
    nu.ltpEnabledFraction = 1.0;
    EnergyInputs nr = nu;
    nr.ltpCam = true;
    nr.ticketBroadcasts = 30000;
    EXPECT_GT(computeEnergy(nr).ltp, computeEnergy(nu).ltp);
}

TEST(Energy, PowerGatingCutsLtpLeakage)
{
    EnergyInputs on = nominal();
    on.ltpEntries = 128;
    on.ltpPorts = 4;
    on.ltpEnabledFraction = 1.0;
    EnergyInputs gated = on;
    gated.ltpEnabledFraction = 0.05;
    EXPECT_LT(computeEnergy(gated).ltp, computeEnergy(on).ltp);
}

TEST(Energy, MorePortsCostMore)
{
    EnergyInputs p1 = nominal();
    p1.ltpEntries = 128;
    p1.ltpPorts = 1;
    p1.ltpPushes = 50000;
    p1.ltpPops = 50000;
    EnergyInputs p8 = p1;
    p8.ltpPorts = 8;
    EXPECT_GT(computeEnergy(p8).ltp, computeEnergy(p1).ltp);
}

TEST(Energy, Ed2pWeighsDelayQuadratically)
{
    EnergyBreakdown e{100.0, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(e.ed2p(10), 100.0 * 100);
    EXPECT_DOUBLE_EQ(e.ed2p(20), 100.0 * 400);
    EXPECT_DOUBLE_EQ(e.edp(10), 100.0 * 10);
}

TEST(Energy, ProposalBeatsBaselineEd2pAtSimilarCycles)
{
    // IQ64/RF128 vs IQ32/RF96+LTP at equal cycle counts and activity:
    // the proposal's structure energy must be clearly lower (Fig 10's
    // ~-40% at iso-performance).
    EnergyInputs base = nominal();
    EnergyInputs prop = nominal();
    prop.iqEntries = 32;
    prop.totalRegs = 192;
    prop.ltpEntries = 128;
    prop.ltpPorts = 4;
    prop.uitEntries = 256;
    prop.ltpPushes = 40000;
    prop.ltpPops = 40000;
    prop.uitLookups = 100000;
    prop.predLookups = 20000;
    prop.ltpEnabledFraction = 1.0;
    // Parked instructions skip the IQ:
    prop.iqInserts = base.iqInserts - 40000;
    prop.iqIssues = base.iqIssues;
    double e_base = computeEnergy(base).total();
    double e_prop = computeEnergy(prop).total();
    EXPECT_LT(e_prop, 0.85 * e_base);
}

TEST(Energy, BreakdownStringMentionsComponents)
{
    EnergyBreakdown e{1.0, 2.0, 3.0};
    std::string s = e.toString();
    EXPECT_NE(s.find("iq="), std::string::npos);
    EXPECT_NE(s.find("total="), std::string::npos);
    EXPECT_DOUBLE_EQ(e.total(), 6.0);
}

} // namespace
} // namespace ltp
