/**
 * @file
 * Tests for the scenario layer: parse errors naming the offending JSON
 * path, declarative compilation onto SweepSpec, the explicit-jobs
 * export round trip, and the golden equivalence of
 * scenarios/fig6_iq_quick.json with the in-C++ Figure 6 IQ SweepSpec —
 * including bit-identical Metrics for every (row, series) cell with
 * the scenario side sharded across threads.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bench_fig6_common.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"

#ifndef LTP_SCENARIO_DIR
#define LTP_SCENARIO_DIR "scenarios"
#endif

namespace ltp {
namespace {

template <typename Fn>
std::string
messageOf(Fn &&fn)
{
    try {
        fn();
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

void
expectParseErrorContains(const std::string &json,
                         const std::string &needle)
{
    std::string msg = messageOf([&]() { (void)scenarioFromJson(json); });
    EXPECT_FALSE(msg.empty()) << "no error for: " << json;
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "error '" << msg << "' does not mention '" << needle << "'";
}

/** Structural equality of two specs: equality of every job's keys,
 *  kernels, and full config dump, plus name and staging. */
void
expectSpecsIdentical(const SweepSpec &a, const SweepSpec &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.lengths.funcWarm, b.lengths.funcWarm);
    EXPECT_EQ(a.lengths.pipeWarm, b.lengths.pipeWarm);
    EXPECT_EQ(a.lengths.detail, b.lengths.detail);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        const SweepJob &ja = a.jobs[i];
        const SweepJob &jb = b.jobs[i];
        EXPECT_EQ(ja.row, jb.row) << "job " << i;
        EXPECT_EQ(ja.series, jb.series) << "job " << i;
        EXPECT_EQ(ja.label, jb.label) << "job " << i;
        EXPECT_EQ(ja.kernels, jb.kernels) << "job " << i;
        EXPECT_EQ(configToJson(ja.cfg), configToJson(jb.cfg))
            << "job " << i << " (" << ja.row << ", " << ja.series << ")";
    }
}

/** Bit-identity of two grids, via the exact Metrics JSON dump. */
void
expectGridsIdentical(const ResultGrid &a, const ResultGrid &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    for (const std::string &row : a.rows()) {
        ASSERT_EQ(a.series(row), b.series(row)) << row;
        for (const std::string &series : a.series(row))
            EXPECT_EQ(metricsToJson(a.at(row, series)),
                      metricsToJson(b.at(row, series)))
                << "(" << row << ", " << series << ")";
    }
}

// ---------------------------------------------------------------------------
// Parse errors name the offending path
// ---------------------------------------------------------------------------

TEST(Scenario, UnknownKeysNameTheirPath)
{
    expectParseErrorContains("{\"name\": \"x\", \"frobnicate\": 1}",
                             "frobnicate");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernel\": []}}",
        "workloads.kernel");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\", "
        "\"spreset\": \"b\"}]}",
        "configs[0].spreset");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\", "
        "\"set\": {\"core\": {\"iqq\": 1}}}]}",
        "configs[0].set.core.iqq");
}

TEST(Scenario, WrongTypesNameTheirPath)
{
    expectParseErrorContains("[1]", "<top level>");
    expectParseErrorContains("{\"name\": 3}", "name");
    expectParseErrorContains(
        "{\"name\": \"x\", \"lengths\": {\"detail\": \"long\"}}",
        "lengths.detail");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": [7]}}",
        "workloads.kernels[0]");
    expectParseErrorContains(
        "{\"name\": \"x\", \"lengths\": {\"detail\": -1}}",
        "lengths.detail");
    expectParseErrorContains("{\"name\": \"x\", \"seed\": 1.5}",
                             "seed");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\", "
        "\"set\": {\"core.iq\": true}}]}",
        "configs[0].set.core.iq");
}

TEST(Scenario, TruncatedAndMalformedJsonFailsLoudly)
{
    // Truncated mid-object / mid-string / mid-array: the JSON reader
    // itself must reject these rather than silently defaulting.
    for (const std::string &text :
         {std::string("{\"name\": \"x\", \"workloads\": {"),
          std::string("{\"name\": \"tru"),
          std::string("{\"name\": \"x\", \"configs\": [{\"series\": "
                      "\"a\"}"),
          std::string("{\"name\": \"x\","), std::string("{"),
          std::string("")}) {
        std::string msg =
            messageOf([&]() { (void)scenarioFromJson(text); });
        EXPECT_FALSE(msg.empty()) << "no error for: '" << text << "'";
    }
}

TEST(Scenario, UnknownSweepKeysNameTheirPath)
{
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\"}], "
        "\"sweep\": {\"path\": \"core.iq\", \"values\": [1], "
        "\"valuess\": [2]}}",
        "sweep.valuess");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\"}], "
        "\"sweep\": {\"path\": \"core.iq\", \"values\": [1], "
        "\"baseline\": {\"series\": \"a\", \"value\": 1, "
        "\"vlaue\": 2}}}",
        "sweep.baseline.vlaue");
}

TEST(Scenario, TraceWorkloadErrorsNameTheirPath)
{
    // Exactly one workload form.
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"], \"traces\": [\"a.lttr\"]}}",
        "exactly one of");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"traces\": []}}",
        "workloads.traces must not be empty");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"traces\": [42]}}",
        "workloads.traces[0]");
    // A missing file is caught eagerly, naming the entry.
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"traces\": "
        "[\"/nonexistent/missing.lttr\"]}}",
        "workloads.traces[0]");
    // `trace:` names inside kernel lists are validated the same way.
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"trace:/nonexistent/missing.lttr\"]}}",
        "workloads.kernels[0]");
}

TEST(Scenario, SemanticErrorsAreDescriptive)
{
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\", \"no_such_kernel\"]}}",
        "workloads.kernels[1]");
    expectParseErrorContains(
        "{\"name\": \"x\", \"lengths\": \"fastish\"}", "fastish");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\", "
        "\"preset\": \"turbo\"}]}",
        "configs[0].preset");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\", "
        "\"preset\": \"limitStudy\"}]}",
        "requires a mode");
    // A mode on the baseline preset would be silently ignored.
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\", "
        "\"mode\": \"NR\"}]}",
        "configs[0].mode");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\"}], "
        "\"sweep\": {\"path\": \"core.iqq\", \"values\": [1]}}",
        "sweep.path");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\"}, "
        "{\"series\": \"a\"}]}",
        "duplicate series");
    expectParseErrorContains(
        "{\"name\": \"x\", \"jobs\": [], \"configs\": []}",
        "mutually exclusive");
    expectParseErrorContains(
        "{\"name\": \"x\", \"workloads\": {\"kernels\": "
        "[\"graph_walk\"]}, \"configs\": [{\"series\": \"a\"}], "
        "\"sweep\": {\"path\": \"core.iq\", \"values\": [1], "
        "\"baseline\": {\"series\": \"nope\", \"value\": 2}}}",
        "sweep.baseline.series");
}

// ---------------------------------------------------------------------------
// Declarative compilation
// ---------------------------------------------------------------------------

TEST(Scenario, DeclarativeCompileMatchesHandBuiltSpec)
{
    Scenario sc = scenarioFromJson(
        "{\"name\": \"mini\","
        " \"lengths\": \"quick\","
        " \"seed\": 7,"
        " \"workloads\": {\"kernels\": [\"graph_walk\", "
        "\"dense_compute\"]},"
        " \"configs\": ["
        "   {\"series\": \"no-LTP\", \"preset\": \"baseline\"},"
        "   {\"series\": \"LTP\", \"preset\": \"ltpProposal\","
        "    \"mode\": \"NU\", \"set\": {\"core.ltp.entries\": 64}}],"
        " \"sweep\": {\"path\": \"core.iq\", \"values\": [16, 32]}}");
    SweepSpec got = sc.compile(1);

    SweepSpec want;
    want.name = "mini";
    want.lengths = RunLengths::quick();
    for (const std::string k : {"graph_walk", "dense_compute"})
        for (int iq : {16, 32}) {
            want.addGroup(k + "|" + std::to_string(iq), "no-LTP",
                          SimConfig::baseline().withSeed(7).withIq(iq),
                          {k}, k);
            want.addGroup(k + "|" + std::to_string(iq), "LTP",
                          SimConfig::ltpProposal(LtpMode::NU)
                              .withSeed(7)
                              .withLtp(LtpMode::NU, 64, 4)
                              .withIq(iq),
                          {k}, k);
        }
    // Hand-built order is per-kernel, per-size, per-series; the
    // compiler emits per-kernel, per-size, per-series too.
    expectSpecsIdentical(got, want);
}

TEST(Scenario, GroupWorkloadsAverageLikeAddGroup)
{
    Scenario sc = scenarioFromJson(
        "{\"name\": \"groups\","
        " \"lengths\": \"quick\","
        " \"workloads\": {\"groups\": {\"ilp\": [\"dense_compute\", "
        "\"reduction\"]}},"
        " \"configs\": [{\"series\": \"base\", \"preset\": "
        "\"baseline\"}]}");
    SweepSpec spec = sc.compile(1);
    ASSERT_EQ(spec.jobs.size(), 1u);
    EXPECT_EQ(spec.jobs[0].row, "ilp");
    EXPECT_EQ(spec.jobs[0].label, "ilp");
    EXPECT_EQ(spec.jobs[0].kernels,
              (std::vector<std::string>{"dense_compute", "reduction"}));
    EXPECT_EQ(spec.simulationCount(), 2u);
}

TEST(Scenario, NameOverrideAndSeedPropagate)
{
    Scenario sc = scenarioFromJson(
        "{\"name\": \"n\", \"seed\": 99,"
        " \"workloads\": {\"kernels\": [\"graph_walk\"]},"
        " \"configs\": [{\"series\": \"s\", \"preset\": \"baseline\","
        "   \"name\": \"relabelled\"}]}");
    SweepSpec spec = sc.compile(1);
    ASSERT_EQ(spec.jobs.size(), 1u);
    EXPECT_EQ(spec.jobs[0].cfg.name, "relabelled");
    EXPECT_EQ(spec.jobs[0].cfg.seed, 99u);
}

// ---------------------------------------------------------------------------
// Explicit-jobs export round trip
// ---------------------------------------------------------------------------

TEST(Scenario, SweepSpecExportRoundTripsAndRunsIdentically)
{
    std::vector<SimConfig> configs = {
        SimConfig::baseline().withSeed(3).withName("base"),
        SimConfig::ltpProposal().withSeed(3).withName("ltp")};
    SweepSpec spec = SweepSpec::cross(
        "export", configs, {"paper_loop", "hash_probe"},
        RunLengths{4000, 800, 2000});
    spec.addGroup("grp", "base", configs[0],
                  {"dense_compute", "reduction"}, "grp");

    Scenario sc = scenarioFromJson(sweepSpecToJson(spec));
    EXPECT_TRUE(sc.explicitJobs);
    SweepSpec back = sc.compile(1);
    expectSpecsIdentical(spec, back);

    // Exported jobs keep their own seeds unless one is forced, in
    // which case it overrides every job (the `ltp sweep --seed` path).
    EXPECT_FALSE(sc.hasSeed);
    sc.seed = 99;
    sc.hasSeed = true;
    for (const SweepJob &job : sc.compile(1).jobs)
        EXPECT_EQ(job.cfg.seed, 99u);

    SweepResult direct = Runner(1).run(spec);
    SweepResult loaded = Runner(2).run(back);
    expectGridsIdentical(direct.grid, loaded.grid);
}

// ---------------------------------------------------------------------------
// Golden scenarios shipped in scenarios/
// ---------------------------------------------------------------------------

TEST(Scenario, GoldenFig6IqQuickMatchesBenchSpec)
{
    Scenario sc =
        loadScenarioFile(std::string(LTP_SCENARIO_DIR) +
                         "/fig6_iq_quick.json");
    EXPECT_EQ(sc.name, "fig6_IQ");
    EXPECT_EQ(sc.lengths.funcWarm, 6000u);
    EXPECT_EQ(sc.lengths.pipeWarm, 1000u);
    EXPECT_EQ(sc.lengths.detail, 3000u);
    EXPECT_EQ(sc.seed, 1u);

    SweepSpec from_json = sc.compile(1);

    // The equivalent spec, built exactly as bench_fig6_limit_iq does.
    Panels panels = classifyPanels(sc.lengths, sc.seed, 1);
    SweepSpec from_cpp = bench::fig6Spec(
        panels, bench::SweptResource::Iq, "IQ",
        {kInfiniteSize, 128, 64, 32, 16}, 64, sc.seed, sc.lengths);

    expectSpecsIdentical(from_json, from_cpp);

    // Same configs, lengths, and seeds => bit-identical Metrics for
    // every (row, series) cell; run at reduced staging to keep the
    // full-grid comparison fast, with the scenario side sharded.
    from_json.lengths = RunLengths{2000, 400, 1000};
    from_cpp.lengths = from_json.lengths;
    SweepResult json_run = Runner(2).run(from_json);
    SweepResult cpp_run = Runner(1).run(from_cpp);
    expectGridsIdentical(json_run.grid, cpp_run.grid);
}

TEST(Scenario, GoldenTable1CompareUsesTheExactPresets)
{
    Scenario sc =
        loadScenarioFile(std::string(LTP_SCENARIO_DIR) +
                         "/table1_compare.json");
    EXPECT_EQ(sc.workloadKind, Scenario::WorkloadKind::Panels);
    EXPECT_EQ(sc.lengths.funcWarm, RunLengths::bench().funcWarm);
    ASSERT_EQ(sc.configs.size(), 2u);
    EXPECT_EQ(configToJson(sc.buildConfig(sc.configs[0])),
              configToJson(SimConfig::baseline().withSeed(sc.seed)));
    EXPECT_EQ(configToJson(sc.buildConfig(sc.configs[1])),
              configToJson(
                  SimConfig::ltpProposal(LtpMode::NU).withSeed(sc.seed)));
}

TEST(Scenario, GoldenIqSweepExampleParses)
{
    Scenario sc =
        loadScenarioFile(std::string(LTP_SCENARIO_DIR) +
                         "/iq_sweep_example.json");
    EXPECT_EQ(sc.workloadKind, Scenario::WorkloadKind::Kernels);
    SweepSpec spec = sc.compile(1);
    // 2 kernels x 4 sizes x 2 configs.
    EXPECT_EQ(spec.jobs.size(), 16u);
    EXPECT_EQ(spec.simulationCount(), 16u);
}

} // namespace
} // namespace ltp
