/**
 * @file
 * Tests for the synthetic workload suite: determinism, instruction mix,
 * branch-path consistency, region layout, registry.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/kernel_dsl.hh"
#include "trace/kernels.hh"
#include "trace/suite.hh"
#include "trace/trace_stats.hh"

namespace ltp {
namespace {

TEST(Region, ElementAddressingWraps)
{
    Region r{0x1000, 64};
    EXPECT_EQ(r.elem(0, 8), 0x1000u);
    EXPECT_EQ(r.elem(7, 8), 0x1038u);
    EXPECT_EQ(r.elem(8, 8), 0x1000u); // wrap
}

TEST(Region, RandElemInsideRegion)
{
    Region r{0x4000, 4096};
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        Addr a = r.randElem(rng, 8);
        EXPECT_GE(a, r.base);
        EXPECT_LT(a, r.base + r.bytes);
    }
}

TEST(Suite, RegistryComplete)
{
    EXPECT_EQ(kernelSuite().size(), 15u); // paper_loop + 7 + 7
    EXPECT_EQ(kernelNames(MlpIntent::Sensitive).size(), 7u);
    EXPECT_EQ(kernelNames(MlpIntent::Insensitive).size(), 7u);
    EXPECT_EQ(allKernelNames().size(), 14u);
}

TEST(Suite, MakeKernelByName)
{
    for (const auto &e : kernelSuite()) {
        WorkloadPtr w = makeKernel(e.name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), e.name);
    }
}

class KernelParam : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelParam, DeterministicStream)
{
    WorkloadPtr a = makeKernel(GetParam());
    WorkloadPtr b = makeKernel(GetParam());
    a->reset(17);
    b->reset(17);
    for (int i = 0; i < 5000; ++i) {
        MicroOp oa = a->next();
        MicroOp ob = b->next();
        ASSERT_EQ(oa.pc, ob.pc) << "at inst " << i;
        ASSERT_EQ(oa.opc, ob.opc);
        ASSERT_EQ(oa.effAddr, ob.effAddr);
        ASSERT_EQ(oa.taken, ob.taken);
    }
}

TEST_P(KernelParam, ResetRestartsStream)
{
    WorkloadPtr w = makeKernel(GetParam());
    w->reset(5);
    std::vector<Addr> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(w->next().pc);
    w->reset(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(w->next().pc, first[i]) << "at inst " << i;
}

TEST_P(KernelParam, SeedChangesAddresses)
{
    WorkloadPtr w = makeKernel(GetParam());
    auto addr_sum = [&](std::uint64_t seed) {
        w->reset(seed);
        Addr sum = 0;
        for (int i = 0; i < 2000; ++i) {
            MicroOp op = w->next();
            if (op.isMem())
                sum += op.effAddr;
        }
        return sum;
    };
    // Kernels with any randomized addressing must differ across seeds;
    // purely sequential kernels may legitimately be identical.
    Addr s1 = addr_sum(1), s2 = addr_sum(2);
    if (GetParam() != "dense_compute" && GetParam() != "reduction" &&
        GetParam() != "cache_stream" && GetParam() != "fp_kernel" &&
        GetParam() != "div_heavy") {
        EXPECT_NE(s1, s2);
    }
}

TEST_P(KernelParam, WellFormedMicroOps)
{
    WorkloadPtr w = makeKernel(GetParam());
    w->reset(7);
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = w->next();
        if (op.isMem()) {
            EXPECT_GT(op.memSize, 0) << op.toString();
            EXPECT_GE(op.effAddr, 0x10000000u) << op.toString();
        }
        if (op.isLoad()) {
            EXPECT_TRUE(op.hasDst()) << op.toString();
        }
        if (op.isStore()) {
            EXPECT_FALSE(op.hasDst()) << op.toString();
        }
        if (op.isBranch()) {
            EXPECT_FALSE(op.hasDst()) << op.toString();
            EXPECT_NE(op.target, 0u) << op.toString();
        }
        for (const auto &s : op.srcs)
            if (s.valid()) {
                EXPECT_LT(s.idx, kArchRegsPerClass);
            }
    }
}

TEST_P(KernelParam, PcStreamConsistentWithBranches)
{
    // Between a non-taken branch (or non-branch) and the next op, the
    // PC must not go backwards within an iteration; after a taken
    // branch the next PC must equal the target.
    WorkloadPtr w = makeKernel(GetParam());
    w->reset(11);
    MicroOp prev = w->next();
    for (int i = 0; i < 5000; ++i) {
        MicroOp cur = w->next();
        if (prev.isBranch() && prev.taken) {
            EXPECT_EQ(cur.pc, prev.target)
                << "taken branch target mismatch at inst " << i;
        }
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelParam,
    ::testing::ValuesIn([] {
        std::vector<std::string> names = allKernelNames();
        names.push_back("paper_loop");
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(PaperLoop, MatchesFigure2Shape)
{
    WorkloadPtr w = makePaperLoop();
    w->reset(1);
    // One iteration: A..K = 11 micro-ops.
    std::vector<MicroOp> iter;
    for (int i = 0; i < 11; ++i)
        iter.push_back(w->next());

    EXPECT_EQ(iter[0].opc, OpClass::IntAlu);  // A addr calc
    EXPECT_EQ(iter[1].opc, OpClass::Load);    // B A[j]
    EXPECT_EQ(iter[2].opc, OpClass::IntAlu);  // C addr calc
    EXPECT_EQ(iter[3].opc, OpClass::Load);    // D B[t1]
    EXPECT_EQ(iter[4].opc, OpClass::IntAlu);  // E j--
    EXPECT_EQ(iter[5].opc, OpClass::IntAlu);  // F d+5
    EXPECT_EQ(iter[6].opc, OpClass::IntAlu);  // G addr calc
    EXPECT_EQ(iter[7].opc, OpClass::Store);   // H store
    EXPECT_EQ(iter[8].opc, OpClass::IntAlu);  // I i++
    EXPECT_EQ(iter[9].opc, OpClass::IntAlu);  // J t2
    EXPECT_EQ(iter[10].opc, OpClass::Branch); // K loop
    EXPECT_TRUE(iter[10].taken);
    EXPECT_EQ(iter[10].target, iter[0].pc);

    // Dependence topology: D's address register comes from C's dest,
    // which comes from B's dest, which comes from A's dest.
    EXPECT_EQ(iter[3].srcs[0], iter[2].dst);
    EXPECT_EQ(iter[2].srcs[0], iter[1].dst);
    EXPECT_EQ(iter[1].srcs[0], iter[0].dst);
}

TEST(PaperLoop, BMissesAndAHitsFootprints)
{
    // The B[] region (random) must be far larger than the LLC; the A[]
    // walk must be sequential (descending) so the prefetcher covers it.
    WorkloadPtr w = makePaperLoop();
    w->reset(1);
    std::vector<Addr> a_addrs, b_addrs;
    for (int i = 0; i < 11 * 50; ++i) {
        MicroOp op = w->next();
        if (!op.isLoad())
            continue;
        // Loads alternate A (slot B) then B (slot D) per iteration.
        if (a_addrs.size() == b_addrs.size())
            a_addrs.push_back(op.effAddr);
        else
            b_addrs.push_back(op.effAddr);
    }
    // A walks descending with stride 8.
    for (std::size_t i = 1; i < a_addrs.size(); ++i)
        EXPECT_EQ(a_addrs[i - 1] - a_addrs[i], 8u);
    // B spans far more than the 1MB L3.
    Addr lo = *std::min_element(b_addrs.begin(), b_addrs.end());
    Addr hi = *std::max_element(b_addrs.begin(), b_addrs.end());
    EXPECT_GT(hi - lo, 8u << 20);
}

TEST(TraceMix, MeasuresPaperLoop)
{
    WorkloadPtr w = makePaperLoop();
    TraceMix mix = measureMix(*w, 1100, 1);
    EXPECT_EQ(mix.insts, 1100u);
    EXPECT_NEAR(mix.frac(mix.loads), 2.0 / 11, 0.01);
    EXPECT_NEAR(mix.frac(mix.stores), 1.0 / 11, 0.01);
    EXPECT_NEAR(mix.frac(mix.branches), 1.0 / 11, 0.01);
    EXPECT_EQ(mix.uniquePcs, 11u);
}

TEST(TraceMix, KernelsHaveReasonableMixes)
{
    for (const std::string &name : allKernelNames()) {
        WorkloadPtr w = makeKernel(name);
        TraceMix mix = measureMix(*w, 5000, 1);
        EXPECT_GT(mix.frac(mix.loads), 0.02) << name;
        EXPECT_LT(mix.frac(mix.loads), 0.6) << name;
        EXPECT_GT(mix.frac(mix.branches), 0.02) << name;
        EXPECT_GT(mix.uniquePcs, 3u) << name;
        EXPECT_LT(mix.uniquePcs, 64u) << name;
    }
}

TEST(KernelDsl, RegionsDoNotOverlap)
{
    // Two regions carved by the same kernel must be disjoint, padded
    // to distinct cache blocks.
    class Probe : public LoopKernel
    {
      public:
        Probe() : LoopKernel("probe") {}
        Region a, b;

      protected:
        void
        init() override
        {
            a = region(1000);
            b = region(1000);
        }
        void
        emitIteration() override
        {
            emitOp(0, OpClass::Nop, RegId());
        }
    };
    Probe p;
    p.reset(1);
    EXPECT_GE(p.b.base, p.a.base + p.a.bytes);
    EXPECT_NE(blockAlign(p.a.base + p.a.bytes - 1), blockAlign(p.b.base));
}

TEST(KernelDsl, HashNameStable)
{
    EXPECT_EQ(hashName("abc"), hashName("abc"));
    EXPECT_NE(hashName("abc"), hashName("abd"));
}

} // namespace
} // namespace ltp
