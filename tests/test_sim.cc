/**
 * @file
 * Tests for the sim layer: config presets, staging, metrics extraction
 * and averaging, the Section 4.1 MLP classifier, and experiment
 * helpers.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.hh"
#include "sim/mlp_class.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

namespace ltp {
namespace {

TEST(Config, BaselineEncodesTable1)
{
    SimConfig cfg = SimConfig::baseline();
    EXPECT_EQ(cfg.core.fetchWidth, 8);
    EXPECT_EQ(cfg.core.issueWidth, 6);
    EXPECT_EQ(cfg.core.robSize, 256);
    EXPECT_EQ(cfg.core.iqSize, 64);
    EXPECT_EQ(cfg.core.lqSize, 64);
    EXPECT_EQ(cfg.core.sqSize, 32);
    EXPECT_EQ(cfg.core.intRegs, 128);
    EXPECT_EQ(cfg.core.fpRegs, 128);
    EXPECT_EQ(cfg.mem.l1d.sizeKB, 32);
    EXPECT_EQ(cfg.mem.l2.sizeKB, 256);
    EXPECT_EQ(cfg.mem.l3.sizeKB, 1024);
    EXPECT_TRUE(cfg.mem.prefetchEnabled);
    EXPECT_EQ(cfg.mem.prefetchDegree, 4);
    EXPECT_EQ(cfg.core.ltp.mode, LtpMode::Off);
}

TEST(Config, ProposalShrinksIqAndRf)
{
    SimConfig cfg = SimConfig::ltpProposal();
    EXPECT_EQ(cfg.core.iqSize, 32);
    EXPECT_EQ(cfg.core.intRegs, 96);
    EXPECT_EQ(cfg.core.ltp.mode, LtpMode::NU);
    EXPECT_EQ(cfg.core.ltp.entries, 128);
    EXPECT_EQ(cfg.core.ltp.insertPorts, 4);
    EXPECT_EQ(cfg.core.ltp.uitEntries, 256);
    EXPECT_TRUE(cfg.core.ltp.useMonitor);
}

TEST(Config, LimitStudyUnbounded)
{
    SimConfig cfg = SimConfig::limitStudy(LtpMode::NRNU);
    EXPECT_TRUE(isInfinite(cfg.core.iqSize));
    EXPECT_TRUE(isInfinite(cfg.core.intRegs));
    EXPECT_TRUE(isInfinite(cfg.core.lqSize));
    EXPECT_TRUE(isInfinite(cfg.core.sqSize));
    EXPECT_TRUE(isInfinite(cfg.core.ltp.entries));
    EXPECT_EQ(cfg.core.ltp.classifier, ClassifierKind::Oracle);
    EXPECT_TRUE(cfg.core.ltp.delayLqSq);
}

TEST(Config, FluentMutatorsChain)
{
    SimConfig cfg = SimConfig::baseline()
                        .withIq(48)
                        .withRegs(112)
                        .withLq(40)
                        .withSq(24)
                        .withSeed(9)
                        .withName("custom");
    EXPECT_EQ(cfg.core.iqSize, 48);
    EXPECT_EQ(cfg.core.intRegs, 112);
    EXPECT_EQ(cfg.core.lqSize, 40);
    EXPECT_EQ(cfg.core.sqSize, 24);
    EXPECT_EQ(cfg.seed, 9u);
    EXPECT_EQ(cfg.name, "custom");
}

TEST(Simulator, RunsDetailLengthWithinCommitWidth)
{
    RunLengths lengths = RunLengths::quick();
    Metrics m = Simulator::runOnce(SimConfig::baseline(), "paper_loop",
                                   lengths);
    EXPECT_GE(m.insts, lengths.detail);
    EXPECT_LT(m.insts, lengths.detail + 8);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_NEAR(m.ipc * m.cpi, 1.0, 1e-6);
    EXPECT_EQ(m.workload, "paper_loop");
}

TEST(Simulator, DeterministicAcrossRuns)
{
    Metrics a = Simulator::runOnce(SimConfig::baseline(), "hash_probe",
                                   RunLengths::quick());
    Metrics b = Simulator::runOnce(SimConfig::baseline(), "hash_probe",
                                   RunLengths::quick());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.avgOutstanding, b.avgOutstanding);
}

TEST(Simulator, SeedChangesTiming)
{
    Metrics a = Simulator::runOnce(SimConfig::baseline().withSeed(1),
                                   "bucket_shuffle", RunLengths::quick());
    Metrics b = Simulator::runOnce(SimConfig::baseline().withSeed(2),
                                   "bucket_shuffle", RunLengths::quick());
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Metrics, AverageAggregates)
{
    Metrics a;
    a.ipc = 1.0;
    a.cycles = 100;
    a.insts = 100;
    a.avgOutstanding = 2.0;
    Metrics b;
    b.ipc = 3.0;
    b.cycles = 300;
    b.insts = 100;
    b.avgOutstanding = 4.0;
    Metrics avg = averageMetrics({a, b}, "group");
    EXPECT_DOUBLE_EQ(avg.ipc, 2.0);
    EXPECT_DOUBLE_EQ(avg.avgOutstanding, 3.0);
    EXPECT_EQ(avg.insts, 200u);
    EXPECT_EQ(avg.workload, "group");
}

TEST(Metrics, DeltasAgainstBase)
{
    Metrics base;
    base.ipc = 2.0;
    base.ed2p = 100.0;
    Metrics x;
    x.ipc = 1.8;
    x.ed2p = 60.0;
    EXPECT_NEAR(x.perfDeltaPct(base), -10.0, 1e-9);
    EXPECT_NEAR(x.ed2pDeltaPct(base), -40.0, 1e-9);
}

TEST(Experiment, ResultGridStoresAndFetches)
{
    ResultGrid grid;
    Metrics m;
    m.ipc = 1.5;
    grid.put("64", "NoLTP", m);
    EXPECT_TRUE(grid.has("64", "NoLTP"));
    EXPECT_FALSE(grid.has("64", "LTP"));
    EXPECT_DOUBLE_EQ(grid.at("64", "NoLTP").ipc, 1.5);
}

TEST(Experiment, ResultGridMissingKeyNamesTheKey)
{
    ResultGrid grid;
    Metrics m;
    grid.put("64", "NoLTP", m);

    // Unknown row: the message names the row.
    try {
        grid.at("256", "NoLTP");
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("row '256'"),
                  std::string::npos);
    }
    // Known row, unknown series: the message names both.
    try {
        grid.at("64", "LTP (NR)");
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("series 'LTP (NR)'"), std::string::npos);
        EXPECT_NE(what.find("row '64'"), std::string::npos);
    }
}

TEST(Experiment, SizeLabels)
{
    EXPECT_EQ(sizeLabel(64), "64");
    EXPECT_EQ(sizeLabel(kInfiniteSize), "inf");
}

TEST(Experiment, GroupAverageRuns)
{
    Metrics avg = runGroupAverage(SimConfig::baseline(),
                                  {"dense_compute", "reduction"}, "ilp",
                                  RunLengths::quick());
    EXPECT_EQ(avg.workload, "ilp");
    EXPECT_GT(avg.ipc, 1.0);
}

TEST(MlpClass, MarqueeKernelsClassifyAsDesigned)
{
    RunLengths lengths = RunLengths::quick();
    // Clearly sensitive: independent DRAM misses window-limited.
    MlpClassification shuffle = classifyMlp("bucket_shuffle", lengths);
    EXPECT_TRUE(shuffle.sensitive)
        << "speedup=" << shuffle.speedup
        << " outstanding=" << shuffle.outstandingRatio
        << " lat=" << shuffle.avgLoadLatency;
    MlpClassification milc = classifyMlp("indirect_stream_fp", lengths);
    EXPECT_TRUE(milc.sensitive);
    // Clearly insensitive: cache-resident compute.
    EXPECT_FALSE(classifyMlp("dense_compute", lengths).sensitive);
    EXPECT_FALSE(classifyMlp("reduction", lengths).sensitive);
    EXPECT_FALSE(classifyMlp("div_heavy", lengths).sensitive);
}

TEST(MlpClass, CriteriaFieldsPopulated)
{
    MlpClassification c =
        classifyMlp("indirect_stream_fp", RunLengths::quick());
    EXPECT_GT(c.speedup, 1.0);
    EXPECT_GT(c.outstandingRatio, 1.0);
    EXPECT_GT(c.avgLoadLatency, 12.0); // beyond the L2 latency
}

} // namespace
} // namespace ltp
