/**
 * @file
 * Tests for the sampled-simulation subsystem: the fast-forward engine,
 * `.ltcp` architectural checkpoints (round-trip byte identity +
 * corruption rejection, mirroring the `.lttr` property tests), the
 * interval Sampler (determinism, checkpoint equivalence, CI
 * aggregation), sampling-aware cell keys and scenario schema, and the
 * result cache's size-based gc.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/binio.hh"
#include "sample/checkpoint.hh"
#include "sample/fast_forward.hh"
#include "sample/sampler.hh"
#include "sim/cell_key.hh"
#include "sim/exec_backend.hh"
#include "sim/report.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"
#include "trace/trace_file.hh"
#include "trace/trace_workload.hh"

namespace ltp {
namespace {

SamplePlan
smallPlan()
{
    SamplePlan p;
    p.fastForward = 4000;
    p.warmup = 800;
    p.detail = 2000;
    p.samples = 4;
    return p;
}

// ---------------------------------------------------------------------------
// SamplePlan
// ---------------------------------------------------------------------------

TEST(SamplePlanTest, EnabledPeriodAndToString)
{
    SamplePlan off;
    EXPECT_FALSE(off.enabled());

    SamplePlan p = smallPlan();
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.period(), 4000u + 800u + 2000u);
    EXPECT_EQ(p.toString(), "4000/800/2000 x4");
    EXPECT_TRUE(SamplePlan::defaults().enabled());
}

// ---------------------------------------------------------------------------
// Workload::skip
// ---------------------------------------------------------------------------

TEST(WorkloadSkipTest, KernelSkipMatchesRepeatedNext)
{
    WorkloadPtr a = makeKernel("graph_walk");
    WorkloadPtr b = makeKernel("graph_walk");
    a->reset(7);
    b->reset(7);
    for (int i = 0; i < 500; ++i)
        (void)a->next();
    b->skip(500);
    for (int i = 0; i < 32; ++i) {
        MicroOp ea = a->next(), eb = b->next();
        ASSERT_EQ(ea.pc, eb.pc) << "op " << i;
        ASSERT_EQ(ea.effAddr, eb.effAddr) << "op " << i;
    }
}

TEST(WorkloadSkipTest, TraceSkipMatchesRepeatedNext)
{
    TraceInfo info;
    info.kernel = "paper_loop";
    info.seed = 3;
    info.funcWarm = 500;
    info.pipeWarm = 100;
    info.detail = 400;
    auto reader =
        std::make_shared<const TraceReader>(recordTrace(info));
    TraceWorkload a(reader), b(reader);
    a.reset(3);
    b.reset(3);
    for (int i = 0; i < 200; ++i)
        (void)a.next();
    b.skip(200);
    for (int i = 0; i < 32; ++i)
        ASSERT_EQ(a.next().pc, b.next().pc) << "op " << i;
}

// ---------------------------------------------------------------------------
// FastForward
// ---------------------------------------------------------------------------

TEST(FastForwardTest, AdvancesToTargetAndCountsRetirement)
{
    SimConfig cfg = SimConfig::baseline();
    MemSystem mem(cfg.mem);
    FastForward ff(cfg, {"graph_walk"}, mem);
    EXPECT_EQ(ff.numThreads(), 1);
    EXPECT_EQ(ff.consumed(0), 0u);

    ff.advanceTo(10000);
    EXPECT_EQ(ff.consumed(0), 10000u);
    EXPECT_EQ(ff.retired(), 10000u);

    // Idempotent: a target at or below the position is a no-op.
    ff.advanceTo(5000);
    EXPECT_EQ(ff.consumed(0), 10000u);
}

TEST(FastForwardTest, DeterministicAcrossRuns)
{
    SimConfig cfg = SimConfig::baseline();
    auto lastWriterSum = [&cfg]() {
        MemSystem mem(cfg.mem);
        FastForward ff(cfg, {"graph_walk"}, mem);
        ff.advanceTo(8000);
        std::uint64_t sum = 0;
        for (std::uint64_t w : ff.lastWriters(0))
            sum += w;
        return sum;
    };
    EXPECT_EQ(lastWriterSum(), lastWriterSum());
}

// ---------------------------------------------------------------------------
// Checkpoint serialization (mirrors the .lttr property tests)
// ---------------------------------------------------------------------------

/** A checkpoint with nontrivial content in every section. */
Checkpoint
makeCheckpoint(std::uint64_t position = 20000)
{
    SimConfig cfg = SimConfig::baseline();
    MemSystem mem(cfg.mem);
    FastForward ff(cfg, {"graph_walk"}, mem);
    ff.advanceTo(position);
    return captureCheckpoint(ff, mem, "graph_walk", cfg.seed);
}

TEST(CheckpointTest, WriteReadWriteIsByteIdentical)
{
    Checkpoint ckpt = makeCheckpoint();
    std::string bytes = checkpointToBytes(ckpt);
    Checkpoint round = checkpointFromBytes(bytes);
    EXPECT_EQ(round.workload, "graph_walk");
    EXPECT_EQ(round.seed, ckpt.seed);
    ASSERT_EQ(round.threads.size(), 1u);
    EXPECT_EQ(round.threads[0].position, ckpt.threads[0].position);
    EXPECT_EQ(checkpointToBytes(round), bytes);
}

TEST(CheckpointTest, CorruptionIsRejected)
{
    std::string good = checkpointToBytes(makeCheckpoint(4000));
    ASSERT_NO_THROW((void)checkpointFromBytes(good));

    // Bad magic.
    std::string bad_magic = good;
    bad_magic[0] ^= 0x5a;
    EXPECT_THROW((void)checkpointFromBytes(bad_magic),
                 std::runtime_error);

    // Unsupported version (the u32 after the 8-byte magic).
    std::string bad_version = good;
    bad_version[8] = 99;
    EXPECT_THROW((void)checkpointFromBytes(bad_version),
                 std::runtime_error);

    // Truncations: mid-header, mid-payload, clipped CRC.
    for (std::size_t keep :
         {std::size_t(10), good.size() / 2, good.size() - 1})
        EXPECT_THROW((void)checkpointFromBytes(good.substr(0, keep)),
                     std::runtime_error)
            << "kept " << keep << " bytes";

    // A flipped payload byte must fail the CRC.
    std::string bad_payload = good;
    bad_payload[good.size() / 2] ^= 0x01;
    EXPECT_THROW((void)checkpointFromBytes(bad_payload),
                 std::runtime_error);

    // A flipped CRC byte must fail too.
    std::string bad_crc = good;
    bad_crc[good.size() - 1] ^= 0x01;
    EXPECT_THROW((void)checkpointFromBytes(bad_crc),
                 std::runtime_error);

    // Trailing garbage breaks the CRC placement.
    EXPECT_THROW((void)checkpointFromBytes(good + "x"),
                 std::runtime_error);
}

/** Re-seal a tampered image with a fresh CRC so only the semantic
 *  validation can reject it. */
std::string
resealed(std::string bytes)
{
    std::string body = bytes.substr(0, bytes.size() - 4);
    std::string out = body;
    putU32le(out, crc32(body));
    return out;
}

TEST(CheckpointTest, CrcValidButCraftedPayloadIsRejected)
{
    std::string good = checkpointToBytes(makeCheckpoint(4000));

    // First bp counter byte: header (8+4+4+8) + name (2+len) +
    // numThreads u32 + position u64 + tableBits u32 + history u64 +
    // counterCount u32.
    const std::size_t wl_len = std::string("graph_walk").size();
    const std::size_t counter0 =
        8 + 4 + 4 + 8 + 2 + wl_len + 4 + 8 + 4 + 8 + 4;

    // A 2-bit counter above 3, CRC re-sealed: semantic reject.
    {
        std::string bad = good;
        bad[counter0] = char(0x7f);
        EXPECT_THROW((void)checkpointFromBytes(resealed(bad)),
                     std::runtime_error);
    }
    // Absurd predictor geometry (tableBits), CRC-valid.
    {
        std::string bad = good;
        const std::size_t table_bits_off = 8 + 4 + 4 + 8 + 2 + wl_len +
                                           4 + 8;
        bad[table_bits_off] = char(0xff);
        EXPECT_THROW((void)checkpointFromBytes(resealed(bad)),
                     std::runtime_error);
    }
    // CRC-valid trailing garbage (payload padded before the footer)
    // must fail the exact-consumption check.
    {
        std::string body = good.substr(0, good.size() - 4) + "abcd";
        std::string bad = body;
        putU32le(bad, crc32(body));
        EXPECT_THROW((void)checkpointFromBytes(bad),
                     std::runtime_error);
    }
}

TEST(CheckpointTest, RestoreRejectsMismatchedRun)
{
    Checkpoint ckpt = makeCheckpoint(4000);

    SimConfig cfg = SimConfig::baseline();
    {
        // Wrong workload.
        MemSystem mem(cfg.mem);
        FastForward ff(cfg, {"paper_loop"}, mem);
        EXPECT_THROW(
            restoreCheckpoint(ckpt, ff, mem, "paper_loop", cfg.seed),
            std::runtime_error);
    }
    {
        // Wrong seed.
        MemSystem mem(cfg.mem);
        FastForward ff(cfg, {"graph_walk"}, mem);
        EXPECT_THROW(
            restoreCheckpoint(ckpt, ff, mem, "graph_walk", 99),
            std::runtime_error);
    }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TEST(SamplerTest, RejectsDisabledPlan)
{
    SimConfig cfg = SimConfig::baseline();
    EXPECT_THROW(Sampler(cfg, "graph_walk", SamplePlan{}),
                 std::runtime_error);
}

TEST(SamplerTest, DeterministicAndAggregatesConfidenceInterval)
{
    SimConfig cfg = SimConfig::baseline();
    SamplePlan plan = smallPlan();
    Metrics a = Sampler::runOnce(cfg, "graph_walk", plan);
    Metrics b = Sampler::runOnce(cfg, "graph_walk", plan);

    ASSERT_TRUE(a.sampling.enabled());
    EXPECT_EQ(a.sampling.samples, plan.samples);
    ASSERT_EQ(a.sampling.sampleIpcs.size(), std::size_t(plan.samples));
    EXPECT_GT(a.sampling.meanIpc, 0.0);
    EXPECT_GE(a.sampling.ci95Half, 0.0);

    // Mean matches the per-sample IPCs it claims to summarize.
    double mean = 0.0;
    for (double ipc : a.sampling.sampleIpcs)
        mean += ipc / double(a.sampling.sampleIpcs.size());
    EXPECT_NEAR(a.sampling.meanIpc, mean, 1e-12);

    // Bit-identical across runs (ffKips is wall-clock; exclude it).
    b.sampling.ffKips = a.sampling.ffKips;
    EXPECT_EQ(metricsToJson(a), metricsToJson(b));
}

TEST(SamplerTest, PhaseCallbackSeesAllThreePhases)
{
    SimConfig cfg = SimConfig::baseline();
    SamplePlan plan = smallPlan();
    plan.samples = 2;
    std::vector<std::string> phases;
    Sampler sampler(cfg, "paper_loop", plan);
    (void)sampler.run([&phases](const std::string &p) {
        phases.push_back(p);
    });
    ASSERT_EQ(phases.size(), 6u); // 3 phases x 2 samples
    EXPECT_EQ(phases[0], "fast-forward 1/2");
    EXPECT_EQ(phases[1], "warmup 1/2");
    EXPECT_EQ(phases[2], "sample 1/2");
    EXPECT_EQ(phases[5], "sample 2/2");
}

TEST(SamplerTest, CheckpointRestoreReproducesFreshRun)
{
    // Learned classifier + LTP on: the checkpoint must carry every
    // input the detailed phase depends on.
    SimConfig cfg = SimConfig::ltpProposal(LtpMode::NU);
    const std::uint64_t P = 12000;

    // Fresh: one sample whose fast-forward phase covers [0, P).
    SamplePlan fresh_plan;
    fresh_plan.fastForward = P;
    fresh_plan.warmup = 800;
    fresh_plan.detail = 2000;
    fresh_plan.samples = 1;
    Metrics fresh = Sampler::runOnce(cfg, "graph_walk", fresh_plan);

    // Checkpointed: pay the same fast-forward once, serialize, then
    // resume with a zero-fast-forward plan.
    std::string bytes;
    {
        MemSystem mem(cfg.mem);
        FastForward ff(cfg, {"graph_walk"}, mem);
        ff.advanceTo(P);
        bytes = checkpointToBytes(
            captureCheckpoint(ff, mem, "graph_walk", cfg.seed));
    }
    SamplePlan resumed_plan = fresh_plan;
    resumed_plan.fastForward = 0;
    Sampler resumed(cfg, "graph_walk", resumed_plan);
    resumed.restoreFrom(checkpointFromBytes(bytes));
    Metrics restored = resumed.run();

    // The plan-bookkeeping fields legitimately differ (the resumed run
    // declared fastForward=0); the *measured* state must not.
    restored.sampling.ffKips = fresh.sampling.ffKips;
    restored.sampling.fastForward = fresh.sampling.fastForward;
    EXPECT_EQ(metricsToJson(restored), metricsToJson(fresh));
}

TEST(SamplerTest, OracleClassifierRunsUnderSampling)
{
    SimConfig cfg = SimConfig::limitStudy(LtpMode::NU);
    SamplePlan plan = smallPlan();
    plan.samples = 2;
    Metrics m = Sampler::runOnce(cfg, "graph_walk", plan);
    EXPECT_GT(m.sampling.meanIpc, 0.0);
    EXPECT_GT(m.insts, 0u);
}

TEST(SamplerTest, SampledIpcTracksFullDetailRun)
{
    SimConfig cfg = SimConfig::baseline();
    RunLengths full;
    full.funcWarm = 20000;
    full.pipeWarm = 2000;
    full.detail = 60000;
    Metrics detailed = Simulator::runOnce(cfg, "paper_loop", full);

    SamplePlan plan;
    plan.fastForward = 8000;
    plan.warmup = 1000;
    plan.detail = 2500;
    plan.samples = 6;
    Metrics sampled = Sampler::runOnce(cfg, "paper_loop", plan);

    // Deterministic, so this is a regression bound, not a flaky
    // statistical assertion: the sampled estimate must land within the
    // larger of its own CI and 10% of the full-detail IPC.
    double tol = std::max(sampled.sampling.ci95Half,
                          0.10 * detailed.ipc);
    EXPECT_NEAR(sampled.sampling.meanIpc, detailed.ipc, tol);
}

// ---------------------------------------------------------------------------
// Metrics aggregation
// ---------------------------------------------------------------------------

TEST(SamplingMetricsTest, StudentTTable)
{
    EXPECT_NEAR(studentT95(1), 12.706, 1e-9);
    EXPECT_NEAR(studentT95(7), 2.365, 1e-9);
    EXPECT_NEAR(studentT95(30), 2.042, 1e-9);
    EXPECT_NEAR(studentT95(31), 1.960, 1e-9);
    EXPECT_NEAR(studentT95(1000), 1.960, 1e-9);
    // No degrees of freedom → no critical value, not "zero": 0.0 once
    // gave --samples=1 runs a perfectly-confident zero-width CI.
    EXPECT_TRUE(std::isnan(studentT95(0)));
    EXPECT_TRUE(std::isnan(studentT95(-3)));
}

TEST(SamplingMetricsTest, SingleSampleReportsCiUnavailable)
{
    SimConfig cfg = SimConfig::baseline();
    SamplePlan plan = smallPlan();
    plan.samples = 1;
    Metrics m = Sampler::runOnce(cfg, "graph_walk", plan);

    ASSERT_TRUE(m.sampling.enabled());
    EXPECT_EQ(m.sampling.samples, 1);
    EXPECT_FALSE(m.sampling.hasCi());
    EXPECT_TRUE(std::isnan(m.sampling.ci95Half));
    EXPECT_TRUE(std::isnan(m.sampling.ipcStdDev));
    EXPECT_GT(m.sampling.meanIpc, 0.0);

    // JSON omits the dispersion keys (NaN is not valid JSON), and the
    // round trip restores "unavailable", never a numeric zero.
    std::string json = metricsToJson(m);
    EXPECT_NE(json.find("\"sampling\""), std::string::npos);
    EXPECT_EQ(json.find("ci95Half"), std::string::npos);
    EXPECT_EQ(json.find("ipcStdDev"), std::string::npos);
    Metrics round = metricsFromJson(json);
    EXPECT_FALSE(round.sampling.hasCi());
    EXPECT_TRUE(std::isnan(round.sampling.ci95Half));

    // CSV leaves the ipcCi95 field empty rather than printing 0/nan.
    SweepResult result;
    result.name = "one-sample";
    result.grid.put("k", "c", m);
    std::string csv = reportToCsv(result);
    std::string last = csv.substr(csv.rfind(',') + 1);
    EXPECT_EQ(last, "\n");
}

TEST(SamplingMetricsTest, GroupAverageWithCiLessMemberDropsCi)
{
    SimConfig cfg = SimConfig::baseline();
    SamplePlan plan = smallPlan();
    Metrics a = Sampler::runOnce(cfg, "graph_walk", plan);
    SamplePlan one = plan;
    one.samples = 1;
    Metrics b = Sampler::runOnce(cfg, "paper_loop", one);

    ASSERT_TRUE(a.sampling.hasCi());
    ASSERT_FALSE(b.sampling.hasCi());

    // One CI-less member must invalidate the group interval — folding
    // its NaN (or a fake 0) into the quadrature sum would poison or
    // silently shrink it.  The mean and sample count stay usable.
    Metrics avg = averageMetrics({a, b}, "mixed-ci");
    ASSERT_TRUE(avg.sampling.enabled());
    EXPECT_FALSE(avg.sampling.hasCi());
    EXPECT_TRUE(std::isnan(avg.sampling.ci95Half));
    EXPECT_TRUE(std::isnan(avg.sampling.ipcStdDev));
    EXPECT_EQ(avg.sampling.samples,
              a.sampling.samples + b.sampling.samples);
    EXPECT_NEAR(avg.sampling.meanIpc,
                (a.sampling.meanIpc + b.sampling.meanIpc) / 2.0, 1e-12);

    // All-CI groups keep the quadrature combination bit-for-bit.
    Metrics c = Sampler::runOnce(cfg, "paper_loop", plan);
    Metrics good = averageMetrics({a, c}, "all-ci");
    EXPECT_TRUE(good.sampling.hasCi());
}

TEST(SamplingMetricsTest, AverageMetricsCombinesSamplingStats)
{
    SimConfig cfg = SimConfig::baseline();
    SamplePlan plan = smallPlan();
    Metrics a = Sampler::runOnce(cfg, "graph_walk", plan);
    Metrics b = Sampler::runOnce(cfg, "paper_loop", plan);

    Metrics avg = averageMetrics({a, b}, "pair");
    ASSERT_TRUE(avg.sampling.enabled());
    EXPECT_EQ(avg.sampling.samples,
              a.sampling.samples + b.sampling.samples);
    EXPECT_NEAR(avg.sampling.meanIpc,
                (a.sampling.meanIpc + b.sampling.meanIpc) / 2.0, 1e-12);
    EXPECT_NEAR(avg.sampling.ci95Half,
                std::sqrt(a.sampling.ci95Half * a.sampling.ci95Half +
                          b.sampling.ci95Half * b.sampling.ci95Half) /
                    2.0,
                1e-12);

    // A mixed group (one sampled, one full) must not claim sampling.
    Metrics full = Simulator::runOnce(cfg, "paper_loop",
                                      RunLengths::quick());
    EXPECT_FALSE(
        averageMetrics({a, full}, "mixed").sampling.enabled());
}

TEST(SamplingMetricsTest, JsonRoundTripPreservesSamplingBlock)
{
    SimConfig cfg = SimConfig::baseline();
    Metrics m = Sampler::runOnce(cfg, "graph_walk", smallPlan());
    Metrics round = metricsFromJson(metricsToJson(m));
    EXPECT_EQ(metricsToJson(round), metricsToJson(m));
    EXPECT_TRUE(round.sampling.enabled());
    EXPECT_EQ(round.sampling.sampleIpcs, m.sampling.sampleIpcs);

    // Non-sampled Metrics stay free of the block entirely.
    Metrics full = Simulator::runOnce(cfg, "paper_loop",
                                      RunLengths::quick());
    EXPECT_EQ(metricsToJson(full).find("sampling"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cell keys
// ---------------------------------------------------------------------------

TEST(SamplingCellKeyTest, EnabledPlanForksTheKey)
{
    SimConfig cfg = SimConfig::baseline();
    RunLengths lengths = RunLengths::quick();
    SamplePlan plan = smallPlan();
    SamplePlan disabled;

    std::string base = cellKeyFor(cfg, "paper_loop", lengths).hex;
    // Null and disabled plans leave every pre-sampling key unchanged.
    EXPECT_EQ(cellKeyFor(cfg, "paper_loop", lengths, nullptr).hex,
              base);
    EXPECT_EQ(cellKeyFor(cfg, "paper_loop", lengths, &disabled).hex,
              base);
    // An enabled plan forks it; different plans fork differently.
    std::string sampled =
        cellKeyFor(cfg, "paper_loop", lengths, &plan).hex;
    EXPECT_NE(sampled, base);
    SamplePlan other = plan;
    other.samples += 1;
    EXPECT_NE(cellKeyFor(cfg, "paper_loop", lengths, &other).hex,
              sampled);
}

// ---------------------------------------------------------------------------
// Scenario schema
// ---------------------------------------------------------------------------

TEST(SamplingScenarioTest, ParsesSamplingBlockIntoSpec)
{
    const char *text = R"({
        "name": "sampled",
        "lengths": "quick",
        "sampling": {"fastForward": 5000, "warmup": 500,
                     "detail": 1500, "samples": 3},
        "workloads": {"kernels": ["paper_loop"]},
        "configs": [{"series": "base"}]
    })";
    Scenario sc = scenarioFromJson(text);
    SweepSpec spec = sc.compile();
    ASSERT_TRUE(spec.sampling.enabled());
    EXPECT_EQ(spec.sampling.fastForward, 5000u);
    EXPECT_EQ(spec.sampling.warmup, 500u);
    EXPECT_EQ(spec.sampling.detail, 1500u);
    EXPECT_EQ(spec.sampling.samples, 3);

    // The explicit-jobs export round-trips the plan.
    Scenario round = scenarioFromJson(sweepSpecToJson(spec));
    EXPECT_EQ(round.compile().sampling.toString(),
              spec.sampling.toString());
}

TEST(SamplingScenarioTest, RejectsBadSamplingBlocks)
{
    auto parse = [](const std::string &sampling) {
        return scenarioFromJson(
            "{\"name\": \"s\", \"sampling\": " + sampling +
            ", \"workloads\": {\"kernels\": [\"paper_loop\"]}, "
            "\"configs\": [{\"series\": \"base\"}]}");
    };
    EXPECT_NO_THROW(parse("\"default\""));
    EXPECT_THROW(parse("{\"samples\": 0}"), std::runtime_error);
    EXPECT_THROW(parse("{\"detail\": 0}"), std::runtime_error);
    EXPECT_THROW(parse("{\"unknown\": 1}"), std::runtime_error);
    EXPECT_THROW(parse("7"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Runner integration + size-based cache gc
// ---------------------------------------------------------------------------

TEST(SamplingRunnerTest, SweepWithSamplingPlanProducesSampledCells)
{
    SweepSpec spec;
    spec.name = "sampled-sweep";
    spec.sampling = smallPlan();
    SimConfig cfg = SimConfig::baseline();
    spec.add("paper_loop", cfg.name, cfg, "paper_loop");
    spec.add("graph_walk", cfg.name, cfg, "graph_walk");

    SweepResult serial = Runner(1).run(spec);
    ASSERT_TRUE(
        serial.grid.at("paper_loop", cfg.name).sampling.enabled());

    // Parallel bit-identity holds for sampled cells too.
    SweepResult parallel = Runner(2).run(spec);
    for (const std::string &row : serial.grid.rows()) {
        Metrics a = serial.grid.at(row, cfg.name);
        Metrics b = parallel.grid.at(row, cfg.name);
        b.sampling.ffKips = a.sampling.ffKips;
        EXPECT_EQ(metricsToJson(a), metricsToJson(b)) << row;
    }
}

class SampleCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (std::filesystem::temp_directory_path() /
                ("ltp_sample_cache_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string
    entryPath(const std::string &key) const
    {
        return dir_ + "/" + key.substr(0, 2) + "/" + key.substr(2, 2) +
               "/" + key + ".json";
    }

    std::string dir_;
};

TEST_F(SampleCacheTest, GcEvictsOldestFirstDownToMaxBytes)
{
    ResultCache cache(dir_);
    RunLengths lengths = RunLengths::quick();
    Metrics m = Simulator::runOnce(SimConfig::baseline(), "paper_loop",
                                   lengths);

    // Three entries with strictly increasing mtimes.
    std::vector<CellKey> keys;
    for (int seed = 1; seed <= 3; ++seed) {
        SimConfig cfg = SimConfig::baseline().withSeed(seed);
        CellKey key = cellKeyFor(cfg, "paper_loop", lengths);
        cache.store(key, cfg, lengths, m);
        keys.push_back(key);
        auto t = std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(3 - seed);
        std::filesystem::last_write_time(entryPath(key.hex), t);
    }

    std::uint64_t total = cache.stats().bytes;
    std::uint64_t per_entry = total / 3;

    // Budget for two entries: the oldest (seed 1) goes, newest stay.
    std::size_t removed = cache.gc(0.0, total - per_entry / 2);
    EXPECT_EQ(removed, 1u);
    Metrics out;
    EXPECT_FALSE(cache.lookup(keys[0], &out));
    EXPECT_TRUE(cache.lookup(keys[1], &out));
    EXPECT_TRUE(cache.lookup(keys[2], &out));

    // maxBytes=0 means no size limit: nothing further to remove.
    EXPECT_EQ(cache.gc(0.0, 0), 0u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST_F(SampleCacheTest, SampledAndFullRunsNeverAlias)
{
    auto cache = std::make_shared<ResultCache>(dir_);
    auto backend = std::make_shared<CachedBackend>(
        LocalBackend::instance(), cache);

    SweepSpec spec;
    spec.name = "alias-check";
    spec.lengths = RunLengths::quick();
    SimConfig cfg = SimConfig::baseline();
    spec.add("paper_loop", cfg.name, cfg, "paper_loop");

    // Full run populates one entry; the sampled variant of the same
    // cell must miss it and store a second entry.
    (void)Runner(1, backend).run(spec);
    EXPECT_EQ(backend->hits(), 0u);
    spec.sampling = smallPlan();
    (void)Runner(1, backend).run(spec);
    EXPECT_EQ(backend->hits(), 0u);
    EXPECT_EQ(cache->stats().entries, 2u);

    // Re-running each form hits its own entry, sampling stats intact.
    SweepResult again = Runner(1, backend).run(spec);
    EXPECT_EQ(backend->hits(), 1u);
    ASSERT_TRUE(
        again.grid.at("paper_loop", cfg.name).sampling.enabled());
    EXPECT_EQ(again.grid.at("paper_loop", cfg.name).sampling.samples,
              spec.sampling.samples);
}

} // namespace
} // namespace ltp
